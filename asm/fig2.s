; Figure 2 of the paper, hand-written in TRIPS assembly.
;   if (i == j) { b = a + 2; } else { b = a + 3; }
;   c = b * 2;          (the shift implements * 2)
; i, j, a arrive in g2, g3, g4; the result c is written to g1.
program (entry main)
block main
  R0  read g2 -> I0.L
  R1  read g3 -> I0.R
  R2  read g4 -> I1.L
  I0   teq -> I2.P -> I3.P
  I1   mov -> I2.L -> I3.L
  I2   addi_t #2 -> I4.L
  I3   addi_f #3 -> I4.L
  I4   slli #1 -> W0
  I5   halt
  W0  write g1
