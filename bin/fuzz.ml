(* fuzz: the differential-fuzzing and ISA-invariant campaign driver.

     dune exec bin/fuzz.exe -- --seed 42 -n 500 -j 4

   Runs n generated programs (seeds seed..seed+n-1, sizes cycling
   min..max) through the full oracle: reference interpreter vs
   functional executor vs cycle simulator under every compiler
   configuration, with the static block validator applied to every
   compiled artifact. The report is deterministic — identical for every
   -j — because each task derives everything from its seed and results
   are folded in seed order.

   Failures are greedily minimized and written to the crash corpus
   (--corpus DIR, default test/corpus), which `dune runtest` replays.

     --workloads   validate the compiled artifacts of every registry
                   workload under every configuration instead of fuzzing
     --replay DIR  re-run every corpus entry through the oracle
     --check-smoke DIR
                   run the per-pass static checker (compile only) over
                   every .k kernel in DIR plus 50 fixed-seed generated
                   kernels, under every configuration; any diagnostic
                   fails
     --analyze-smoke DIR
                   same kernel set, but compile in ineffectuality-lint
                   mode: report ineff[...] findings without applying
                   them, with every verdict re-proved by exhaustive
                   path enumeration; a disproved verdict (false
                   positive) fails
     --max-vars N  enumerator width cutoff: blocks with more than N
                   predicate variables are skipped by exhaustive path
                   enumeration (they still get the lattice checker);
                   skip counts are reported
     --no-check    disable the per-pass static checker in the oracle
     --matrix      run the cycle comparison on every timing backend
                   (tiled grid AND the in-order EDGE core) instead of
                   the grid alone
     --serve       replay generated kernels through the dfpd socket
                   protocol against an in-process job server, diffing
                   every verdict (return value / fault / timeout)
                   against the reference interpreter, then hit the
                   server with a malformed-request battery *)

(* fuzz the server boundary: every generated kernel goes through the
   real socket protocol as a source job, and the server's verdict must
   agree with the in-process oracle — a terminating kernel's return
   value comes back bit-exact, a faulting kernel yields a structured
   "job" error, a non-terminating one a structured "timeout", and no
   request (malformed ones included) ever kills the server *)
let run_serve ~seed ~n ~jobs ~min_size ~max_size =
  let module Server = Edge_serve.Server in
  let module Client = Edge_serve.Client in
  let module Json = Edge_serve.Json in
  let module Oracle = Edge_fuzz.Oracle in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfpd-fuzz-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1000.))
  in
  Unix.mkdir dir 0o755;
  let socket = Filename.concat dir "dfpd.sock" in
  let cache =
    Edge_parallel.Disk_cache.create ~dir:(Filename.concat dir "cache") ()
  in
  let cfg =
    { (Server.default_config ~cache ~socket_path:socket ()) with jobs }
  in
  let srv = Server.start cfg in
  let c = Client.connect_retry socket in
  let rtype v = Option.value (Json.str_member "type" v) ~default:"?" in
  let reason v = Option.value (Json.str_member "reason" v) ~default:"?" in
  let failures = ref 0 in
  let oks = ref 0 and faults = ref 0 and skips = ref 0 in
  let fail i fmt =
    Printf.ksprintf
      (fun s ->
        incr failures;
        Format.printf "FAIL serve seed=%d: %s@." i s)
      fmt
  in
  let config_names = Oracle.config_names in
  for i = 0 to n - 1 do
    let s = seed + i in
    let size = Edge_fuzz.Gen.size_for ~min_size ~max_size i in
    let kernel = Edge_fuzz.Gen.generate ~seed:s ~size in
    let src = Edge_fuzz.Pretty.kernel_to_string kernel in
    let config = List.nth config_names (i mod List.length config_names) in
    let expected =
      match Oracle.run_reference kernel with
      | exception Oracle.Skip -> `Skip
      | Ok o -> if o.Oracle.fault then `Fault else `Ret o.Oracle.ret
      | Error _ -> `Fault
    in
    let job =
      Client.source_job ~fuel:Oracle.interp_fuel ~source:src ~config ()
    in
    match Client.run_job c job with
    | Error e -> fail s "server connection died: %s" e
    | Ok v -> (
        match (expected, rtype v) with
        | `Ret r, "done" ->
            incr oks;
            let got = Option.value (Json.str_member "ret" v) ~default:"?" in
            if got <> Int64.to_string r then
              fail s "config %s: ret %s, reference says %Ld" config got r
        | `Ret r, _ ->
            fail s "config %s: %s, reference says ret %Ld" config
              (Json.to_string v) r
        | `Skip, "error" when reason v = "timeout" -> incr skips
        | `Skip, _ ->
            fail s "non-terminating kernel: expected a timeout error, got %s"
              (Json.to_string v)
        | `Fault, "error" when reason v <> "protocol" -> incr faults
        | `Fault, _ ->
            fail s "faulting kernel: expected a job error, got %s"
              (Json.to_string v))
  done;
  (* malformed and truncated requests: each must produce a structured
     protocol error, and the server must still answer afterwards *)
  let malformed =
    [
      "garbage";
      "{\"op\":";
      "{\"workload\":42,\"config\":\"Both\"}";
      "{\"source\":\"kernel k\",\"config\":7}";
      "{\"config\":\"Both\"}";
      "{\"op\":\"reboot\"}";
      "[1,2,3]";
      "{\"source\":\"x\",\"config\":\"Both\",\"fuel\":-5}";
      String.concat "" (List.init 4096 (fun _ -> "{")) (* deep nesting *);
    ]
  in
  List.iter
    (fun line ->
      Client.send_line c line;
      match Client.recv c with
      | Some (Ok v) when rtype v = "error" && reason v = "protocol" -> ()
      | Some (Ok v) ->
          incr failures;
          Format.printf "FAIL serve: %S answered %s, wanted a protocol error@."
            line (Json.to_string v)
      | Some (Error e) ->
          incr failures;
          Format.printf "FAIL serve: unparseable response to %S: %s@." line e
      | None ->
          incr failures;
          Format.printf "FAIL serve: server hung up on %S@." line)
    malformed;
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok v when rtype v = "pong" -> ()
  | _ ->
      incr failures;
      Format.printf "FAIL serve: no pong after the malformed battery@.");
  Client.close c;
  Server.stop srv;
  (* the server must leave nothing behind *)
  if Sys.file_exists socket then begin
    incr failures;
    Format.printf "FAIL serve: socket file leaked@."
  end;
  Format.printf
    "serve fuzz: %d kernels (%d ok, %d faults, %d timeouts), %d malformed, \
     %d failure(s)@."
    n !oks !faults !skips (List.length malformed) !failures;
  exit (if !failures = 0 then 0 else 1)

let usage =
  "usage: fuzz.exe [--seed S] [-n N] [-j J] [--min-size A] [--max-size B]\n\
  \                [--no-cycle] [--no-validate] [--no-check] [--matrix]\n\
  \                [--no-minimize]\n\
  \                [--max-vars N] [--corpus DIR] [--cache-dir DIR]\n\
  \                [--workloads] [--replay DIR] [--check-smoke DIR]\n\
  \                [--analyze-smoke DIR] [--serve]"

let () =
  let seed = ref 0 in
  let n = ref 100 in
  let jobs = ref (Edge_parallel.Pool.default_jobs ()) in
  let min_size = ref Edge_fuzz.Fuzz.default_min_size in
  let max_size = ref Edge_fuzz.Fuzz.default_max_size in
  let cycle = ref true in
  let machines = ref None in
  let validate = ref true in
  let check = ref true in
  let max_vars = ref None in
  let minimize = ref true in
  let corpus = ref None in
  let cache_dir = ref None in
  let mode = ref `Fuzz in
  let int_arg name v rest k =
    match int_of_string_opt v with
    | Some i -> k i rest
    | None ->
        Printf.eprintf "%s: expected an integer, got %s\n%s\n" name v usage;
        exit 1
  in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest -> int_arg "--seed" v rest (fun i r -> seed := i; parse r)
    | "-n" :: v :: rest -> int_arg "-n" v rest (fun i r -> n := i; parse r)
    | "-j" :: v :: rest -> int_arg "-j" v rest (fun i r -> jobs := max 1 i; parse r)
    | "--min-size" :: v :: rest ->
        int_arg "--min-size" v rest (fun i r -> min_size := i; parse r)
    | "--max-size" :: v :: rest ->
        int_arg "--max-size" v rest (fun i r -> max_size := i; parse r)
    | "--no-cycle" :: rest -> cycle := false; parse rest
    | "--no-validate" :: rest -> validate := false; parse rest
    | "--no-check" :: rest -> check := false; parse rest
    | "--matrix" :: rest ->
        machines := Some Edge_fuzz.Oracle.matrix_machines;
        parse rest
    | "--max-vars" :: v :: rest ->
        int_arg "--max-vars" v rest (fun i r -> max_vars := Some i; parse r)
    | "--no-minimize" :: rest -> minimize := false; parse rest
    | "--corpus" :: dir :: rest -> corpus := Some dir; parse rest
    | "--cache-dir" :: dir :: rest -> cache_dir := Some dir; parse rest
    | "--workloads" :: rest -> mode := `Workloads; parse rest
    | "--replay" :: dir :: rest -> mode := `Replay dir; parse rest
    | "--check-smoke" :: dir :: rest -> mode := `Check_smoke dir; parse rest
    | "--analyze-smoke" :: dir :: rest -> mode := `Analyze_smoke dir; parse rest
    | "--serve" :: rest -> mode := `Serve; parse rest
    | a :: _ ->
        Printf.eprintf "unknown argument %s\n%s\n" a usage;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* opt-in for fuzzing: campaigns that re-test identical kernels across
     runs (fixed seeds in CI) skip every previously-clean verdict *)
  let cache =
    Option.map (fun dir -> Edge_parallel.Disk_cache.create ~dir ()) !cache_dir
  in
  match !mode with
  | `Serve ->
      run_serve ~seed:!seed ~n:!n ~jobs:!jobs ~min_size:!min_size
        ~max_size:!max_size
  | `Workloads -> (
      Format.printf "validating compiled artifacts: %d workloads x %d configs@."
        (List.length Edge_workloads.Registry.all)
        (List.length Edge_fuzz.Oracle.configs);
      match Edge_fuzz.Fuzz.validate_workloads ~jobs:!jobs ?max_vars:!max_vars ()
      with
      | [] ->
          Format.printf "all artifacts pass the block validator@.";
          exit 0
      | errs ->
          List.iter
            (fun (label, e) -> Format.printf "FAIL %s: %s@." label e)
            errs;
          exit 1)
  | `Check_smoke dir -> (
      let sources = Edge_fuzz.Corpus.load_dir dir in
      Format.printf
        "checker smoke: %d kernels from %s + 50 generated, %d configs@."
        (List.length sources) dir
        (List.length Edge_fuzz.Oracle.configs);
      match Edge_fuzz.Fuzz.check_smoke ~jobs:!jobs ~sources () with
      | [] ->
          Format.printf "checker clean on every compile@.";
          exit 0
      | errs ->
          List.iter
            (fun (label, e) -> Format.printf "FAIL %s: %s@." label e)
            errs;
          exit 1)
  | `Analyze_smoke dir -> (
      let sources = Edge_fuzz.Corpus.load_dir dir in
      Format.printf
        "ineffectuality lint smoke: %d kernels from %s + 50 generated, %d \
         configs@."
        (List.length sources) dir
        (List.length Edge_fuzz.Oracle.configs);
      match Edge_fuzz.Fuzz.analyze_smoke ~jobs:!jobs ~sources () with
      | [], found ->
          Format.printf
            "lint clean: %d finding(s), zero false positives (every verdict \
             re-proved by enumeration)@."
            found;
          exit 0
      | errs, _ ->
          List.iter
            (fun (label, e) -> Format.printf "FAIL %s: %s@." label e)
            errs;
          exit 1)
  | `Replay dir -> (
      let entries = Edge_fuzz.Corpus.load_dir dir in
      Format.printf "replaying %d corpus entries from %s@."
        (List.length entries) dir;
      let failed = ref 0 in
      List.iter
        (fun (name, src) ->
          match
            Edge_fuzz.Fuzz.replay_source ~cycle:!cycle ?machines:!machines
              ~validate:!validate ~check:!check ?max_vars:!max_vars ~name src
          with
          | Ok () -> ()
          | Error e ->
              incr failed;
              Format.printf "%s@." e)
        entries;
      if !failed = 0 then Format.printf "all corpus entries pass@.";
      exit (if !failed = 0 then 0 else 1))
  | `Fuzz ->
      let report =
        Edge_fuzz.Fuzz.run ~jobs:!jobs ~cycle:!cycle ?machines:!machines
          ~validate:!validate ~check:!check ?max_vars:!max_vars ?cache
          ~min_size:!min_size ~max_size:!max_size ~seed:!seed ~n:!n ()
      in
      Format.printf "%a" Edge_fuzz.Fuzz.pp_report report;
      (match (report.Edge_fuzz.Fuzz.failures, !corpus) with
      | [], _ -> ()
      | failures, corpus_dir ->
          List.iter
            (fun (f : Edge_fuzz.Fuzz.failure) ->
              let source =
                if !minimize then begin
                  Format.printf "minimizing seed=%d size=%d (%s)...@."
                    f.Edge_fuzz.Fuzz.seed f.Edge_fuzz.Fuzz.size
                    f.Edge_fuzz.Fuzz.config;
                  Edge_fuzz.Pretty.kernel_to_string
                    (Edge_fuzz.Fuzz.minimize_failure ~cycle:!cycle
                       ?machines:!machines ~validate:!validate ~check:!check
                       ?max_vars:!max_vars f)
                end
                else f.Edge_fuzz.Fuzz.source
              in
              Format.printf "--- reproducer seed=%d ---@.%s@."
                f.Edge_fuzz.Fuzz.seed source;
              match corpus_dir with
              | None -> ()
              | Some dir ->
                  let name =
                    Printf.sprintf "seed%d_%s" f.Edge_fuzz.Fuzz.seed
                      (String.lowercase_ascii f.Edge_fuzz.Fuzz.config)
                  in
                  let path =
                    Edge_fuzz.Corpus.save ~dir ~name ~contents:source
                  in
                  Format.printf "saved %s@." path;
                  (* dump the reproducer's cycle-sim trace alongside it
                     (Corpus.load_dir only picks up .k files, so the
                     .trace never affects replay) *)
                  (match Edge_lang.Parser.parse source with
                  | Error _ -> ()
                  | Ok ast -> (
                      match
                        Edge_fuzz.Oracle.trace_kernel
                          ~config:f.Edge_fuzz.Fuzz.config ast
                      with
                      | Ok trace ->
                          let tpath =
                            Filename.remove_extension path ^ ".trace"
                          in
                          let oc = open_out tpath in
                          output_string oc trace;
                          close_out oc;
                          Format.printf "saved %s@." tpath
                      | Error e ->
                          Format.printf "trace skipped: %s@." e)))
            failures);
      exit (if report.Edge_fuzz.Fuzz.failures = [] then 0 else 1)
