(* fuzz: the differential-fuzzing and ISA-invariant campaign driver.

     dune exec bin/fuzz.exe -- --seed 42 -n 500 -j 4

   Runs n generated programs (seeds seed..seed+n-1, sizes cycling
   min..max) through the full oracle: reference interpreter vs
   functional executor vs cycle simulator under every compiler
   configuration, with the static block validator applied to every
   compiled artifact. The report is deterministic — identical for every
   -j — because each task derives everything from its seed and results
   are folded in seed order.

   Failures are greedily minimized and written to the crash corpus
   (--corpus DIR, default test/corpus), which `dune runtest` replays.

     --workloads   validate the compiled artifacts of every registry
                   workload under every configuration instead of fuzzing
     --replay DIR  re-run every corpus entry through the oracle
     --check-smoke DIR
                   run the per-pass static checker (compile only) over
                   every .k kernel in DIR plus 50 fixed-seed generated
                   kernels, under every configuration; any diagnostic
                   fails
     --max-vars N  enumerator width cutoff: blocks with more than N
                   predicate variables are skipped by exhaustive path
                   enumeration (they still get the lattice checker);
                   skip counts are reported
     --no-check    disable the per-pass static checker in the oracle *)

let usage =
  "usage: fuzz.exe [--seed S] [-n N] [-j J] [--min-size A] [--max-size B]\n\
  \                [--no-cycle] [--no-validate] [--no-check] [--no-minimize]\n\
  \                [--max-vars N] [--corpus DIR] [--cache-dir DIR]\n\
  \                [--workloads] [--replay DIR] [--check-smoke DIR]"

let () =
  let seed = ref 0 in
  let n = ref 100 in
  let jobs = ref (Edge_parallel.Pool.default_jobs ()) in
  let min_size = ref Edge_fuzz.Fuzz.default_min_size in
  let max_size = ref Edge_fuzz.Fuzz.default_max_size in
  let cycle = ref true in
  let validate = ref true in
  let check = ref true in
  let max_vars = ref None in
  let minimize = ref true in
  let corpus = ref None in
  let cache_dir = ref None in
  let mode = ref `Fuzz in
  let int_arg name v rest k =
    match int_of_string_opt v with
    | Some i -> k i rest
    | None ->
        Printf.eprintf "%s: expected an integer, got %s\n%s\n" name v usage;
        exit 1
  in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest -> int_arg "--seed" v rest (fun i r -> seed := i; parse r)
    | "-n" :: v :: rest -> int_arg "-n" v rest (fun i r -> n := i; parse r)
    | "-j" :: v :: rest -> int_arg "-j" v rest (fun i r -> jobs := max 1 i; parse r)
    | "--min-size" :: v :: rest ->
        int_arg "--min-size" v rest (fun i r -> min_size := i; parse r)
    | "--max-size" :: v :: rest ->
        int_arg "--max-size" v rest (fun i r -> max_size := i; parse r)
    | "--no-cycle" :: rest -> cycle := false; parse rest
    | "--no-validate" :: rest -> validate := false; parse rest
    | "--no-check" :: rest -> check := false; parse rest
    | "--max-vars" :: v :: rest ->
        int_arg "--max-vars" v rest (fun i r -> max_vars := Some i; parse r)
    | "--no-minimize" :: rest -> minimize := false; parse rest
    | "--corpus" :: dir :: rest -> corpus := Some dir; parse rest
    | "--cache-dir" :: dir :: rest -> cache_dir := Some dir; parse rest
    | "--workloads" :: rest -> mode := `Workloads; parse rest
    | "--replay" :: dir :: rest -> mode := `Replay dir; parse rest
    | "--check-smoke" :: dir :: rest -> mode := `Check_smoke dir; parse rest
    | a :: _ ->
        Printf.eprintf "unknown argument %s\n%s\n" a usage;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* opt-in for fuzzing: campaigns that re-test identical kernels across
     runs (fixed seeds in CI) skip every previously-clean verdict *)
  let cache =
    Option.map (fun dir -> Edge_parallel.Disk_cache.create ~dir) !cache_dir
  in
  match !mode with
  | `Workloads -> (
      Format.printf "validating compiled artifacts: %d workloads x %d configs@."
        (List.length Edge_workloads.Registry.all)
        (List.length Edge_fuzz.Oracle.configs);
      match Edge_fuzz.Fuzz.validate_workloads ~jobs:!jobs ?max_vars:!max_vars ()
      with
      | [] ->
          Format.printf "all artifacts pass the block validator@.";
          exit 0
      | errs ->
          List.iter
            (fun (label, e) -> Format.printf "FAIL %s: %s@." label e)
            errs;
          exit 1)
  | `Check_smoke dir -> (
      let sources = Edge_fuzz.Corpus.load_dir dir in
      Format.printf
        "checker smoke: %d kernels from %s + 50 generated, %d configs@."
        (List.length sources) dir
        (List.length Edge_fuzz.Oracle.configs);
      match Edge_fuzz.Fuzz.check_smoke ~jobs:!jobs ~sources () with
      | [] ->
          Format.printf "checker clean on every compile@.";
          exit 0
      | errs ->
          List.iter
            (fun (label, e) -> Format.printf "FAIL %s: %s@." label e)
            errs;
          exit 1)
  | `Replay dir -> (
      let entries = Edge_fuzz.Corpus.load_dir dir in
      Format.printf "replaying %d corpus entries from %s@."
        (List.length entries) dir;
      let failed = ref 0 in
      List.iter
        (fun (name, src) ->
          match
            Edge_fuzz.Fuzz.replay_source ~cycle:!cycle ~validate:!validate
              ~check:!check ?max_vars:!max_vars ~name src
          with
          | Ok () -> ()
          | Error e ->
              incr failed;
              Format.printf "%s@." e)
        entries;
      if !failed = 0 then Format.printf "all corpus entries pass@.";
      exit (if !failed = 0 then 0 else 1))
  | `Fuzz ->
      let report =
        Edge_fuzz.Fuzz.run ~jobs:!jobs ~cycle:!cycle ~validate:!validate
          ~check:!check ?max_vars:!max_vars ?cache ~min_size:!min_size
          ~max_size:!max_size ~seed:!seed ~n:!n ()
      in
      Format.printf "%a" Edge_fuzz.Fuzz.pp_report report;
      (match (report.Edge_fuzz.Fuzz.failures, !corpus) with
      | [], _ -> ()
      | failures, corpus_dir ->
          List.iter
            (fun (f : Edge_fuzz.Fuzz.failure) ->
              let source =
                if !minimize then begin
                  Format.printf "minimizing seed=%d size=%d (%s)...@."
                    f.Edge_fuzz.Fuzz.seed f.Edge_fuzz.Fuzz.size
                    f.Edge_fuzz.Fuzz.config;
                  Edge_fuzz.Pretty.kernel_to_string
                    (Edge_fuzz.Fuzz.minimize_failure ~cycle:!cycle
                       ~validate:!validate ~check:!check ?max_vars:!max_vars f)
                end
                else f.Edge_fuzz.Fuzz.source
              in
              Format.printf "--- reproducer seed=%d ---@.%s@."
                f.Edge_fuzz.Fuzz.seed source;
              match corpus_dir with
              | None -> ()
              | Some dir ->
                  let name =
                    Printf.sprintf "seed%d_%s" f.Edge_fuzz.Fuzz.seed
                      (String.lowercase_ascii f.Edge_fuzz.Fuzz.config)
                  in
                  let path =
                    Edge_fuzz.Corpus.save ~dir ~name ~contents:source
                  in
                  Format.printf "saved %s@." path;
                  (* dump the reproducer's cycle-sim trace alongside it
                     (Corpus.load_dir only picks up .k files, so the
                     .trace never affects replay) *)
                  (match Edge_lang.Parser.parse source with
                  | Error _ -> ()
                  | Ok ast -> (
                      match
                        Edge_fuzz.Oracle.trace_kernel
                          ~config:f.Edge_fuzz.Fuzz.config ast
                      with
                      | Ok trace ->
                          let tpath =
                            Filename.remove_extension path ^ ".trace"
                          in
                          let oc = open_out tpath in
                          output_string oc trace;
                          close_out oc;
                          Format.printf "saved %s@." tpath
                      | Error e ->
                          Format.printf "trace skipped: %s@." e)))
            failures);
      exit (if report.Edge_fuzz.Fuzz.failures = [] then 0 else 1)
