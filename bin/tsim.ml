(* tsim: run a workload through the functional and cycle simulators.

   Accepts a registered workload name, a path to a `.k` kernel source
   (fuzz-corpus argument conventions), or a `.s` assembly / `.img`
   binary program.

   Observability:
     --trace-out x.json   write a Chrome trace-event JSON of the run
                          (load into Perfetto / chrome://tracing)
     --trace-text x.trace write the compact deterministic text trace
                          (the golden-test format)
     --metrics            print the metrics summary table *)

open Cmdliner

let config_of_name = function
  | "bb" -> Ok ("BB", Dfp.Config.bb)
  | "hyper" -> Ok ("Hyper", Dfp.Config.hyper_baseline)
  | "intra" -> Ok ("Intra", Dfp.Config.intra)
  | "inter" -> Ok ("Inter", Dfp.Config.inter)
  | "both" -> Ok ("Both", Dfp.Config.both)
  | "merge" -> Ok ("Merge", Dfp.Config.merge)
  | "sand" -> Ok ("Sand", Dfp.Config.sand)
  | "hand" -> Ok ("Hand", Dfp.Config.hand_optimized)
  | s -> Error (Printf.sprintf "unknown config %s" s)

(* -- observability plumbing --------------------------------------- *)

type obs_opts = {
  trace_out : string option;  (* Chrome JSON path *)
  trace_text : string option;  (* deterministic text path *)
  metrics : bool;
}

let obs_wanted o = o.trace_out <> None || o.trace_text <> None || o.metrics

(* an Obs bundle + a finisher that writes/prints whatever was asked *)
let make_obs o ~name =
  if not (obs_wanted o) then (None, fun () -> Ok ())
  else begin
    let obs, events, m = Edge_obs.Obs.collector ~level:Edge_obs.Trace.Full () in
    let write path contents =
      match open_out path with
      | oc ->
          output_string oc contents;
          close_out oc;
          Format.printf "wrote %s@." path;
          Ok ()
      | exception Sys_error e -> Error e
    in
    let finish () =
      let ( let* ) = Result.bind in
      let evs = events () in
      let* () =
        match o.trace_out with
        | Some path ->
            write path (Edge_obs.Trace.chrome_to_string ~name evs)
        | None -> Ok ()
      in
      let* () =
        match o.trace_text with
        | Some path ->
            write path (Edge_obs.Trace.render_text ~header:[ ("kernel", name) ] evs)
        | None -> Ok ()
      in
      if o.metrics then Format.printf "%a@." Edge_obs.Metrics.pp_summary m;
      Ok ()
    in
    (Some obs, finish)
  end

(* run a hand-written assembly program: arguments land in the parameter
   registers, g1 is printed on halt *)
let run_asm path args ~arena oopts =
  let parsed =
    if Filename.check_suffix path ".img" then Edge_isa.Image.read_file path
    else begin
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Edge_isa.Asm.parse_program src
    end
  in
  match parsed with
  | Error e -> Error ("program: " ^ e)
  | Ok program -> (
      match Edge_isa.Program.validate program with
      | Error es -> Error ("invalid program: " ^ String.concat "; " es)
      | Ok () -> (
          let regs = Array.make 128 0L in
          List.iteri
            (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v)
            args;
          let mem = Edge_isa.Mem.create ~size:(1 lsl 20) in
          let obs, finish = make_obs oopts ~name:(Filename.basename path) in
          match Edge_sim.Cycle_sim.run ?obs ~arena program ~regs ~mem with
          | Error e -> Error e
          | Ok stats ->
              Format.printf "g1 = %Ld@.%a@."
                regs.(Edge_isa.Conventions.result_reg)
                Edge_sim.Stats.pp stats;
              finish ()))

(* run a `.k` kernel source file under the fuzz-corpus conventions;
   [machine_tag] (the --machine argument, if any) lands in the text
   trace header so traces from different machines are distinguishable *)
let run_kernel path (config_name, config) machine ?machine_tag ~arena oopts =
  let ic = open_in_bin path in
  let source = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  match Edge_harness.Tracekit.compile_source source config with
  | Error e -> Error e
  | Ok compiled -> (
      match Edge_harness.Tracekit.run_traced ~machine ~arena compiled with
      | Error e -> Error e
      | Ok t ->
          let ( let* ) = Result.bind in
          let write path contents =
            match open_out path with
            | oc ->
                output_string oc contents;
                close_out oc;
                Format.printf "wrote %s@." path;
                Ok ()
            | exception Sys_error e -> Error e
          in
          Format.printf "%s/%s@.%a@." name config_name Edge_sim.Stats.pp
            t.Edge_harness.Tracekit.stats;
          let* () =
            match oopts.trace_out with
            | Some p ->
                write p
                  (Edge_obs.Trace.chrome_to_string ~name
                     t.Edge_harness.Tracekit.events)
            | None -> Ok ()
          in
          let* () =
            match oopts.trace_text with
            | Some p ->
                write p
                  (Edge_harness.Tracekit.render ?machine:machine_tag
                     ~kernel:name ~config:config_name t)
            | None -> Ok ()
          in
          if oopts.metrics then
            Format.printf "%a@." Edge_obs.Metrics.pp_summary
              t.Edge_harness.Tracekit.metrics;
          Ok ())

(* --lint: compile-only ineffectuality report.  Findings print as
   ineff[block=... at=... pred=...] lines and nothing is simulated;
   the code the findings describe is left untouched. *)
let run_lint workload config_name =
  let ( let* ) = Result.bind in
  let* _, config = config_of_name config_name in
  let* findings =
    if Filename.check_suffix workload ".k" then begin
      let ic = open_in_bin workload in
      let source = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Edge_harness.Experiment.lint_source source config
    end
    else
      match Edge_workloads.Registry.find workload with
      | Some w -> Edge_harness.Experiment.lint w config
      | None ->
          Error
            (Printf.sprintf "unknown workload %s; available: %s" workload
               (String.concat ", " (Edge_workloads.Registry.names ())))
  in
  List.iter (fun f -> print_endline (Dfp.Opt_ineff.render f)) findings;
  Format.printf "%d finding(s)@." (List.length findings);
  Ok ()

let run workload config_name machine_name functional_only no_early in_order
    no_arena no_jit check lint asm_args trace_out trace_text metrics =
  let ( let* ) = Result.bind in
  let arena = not no_arena in
  if no_jit then Edge_sim.Functional.set_jit false;
  if check then Edge_check.Check.set_enabled true;
  let oopts = { trace_out; trace_text; metrics } in
  let machine_of () =
    (* --machine picks the base description (preset name or compact
       key=value line); the ablation flags override on top of it *)
    let* base =
      match machine_name with
      | None -> Ok Edge_sim.Machine.default
      | Some s -> Edge_sim.Machine.of_compact s
    in
    Ok
      {
        base with
        Edge_sim.Machine.early_termination =
          base.Edge_sim.Machine.early_termination && not no_early;
        aggressive_loads =
          base.Edge_sim.Machine.aggressive_loads && not in_order;
      }
  in
  let compute () =
    if lint then run_lint workload config_name
    else
    let* machine = machine_of () in
    if Filename.check_suffix workload ".s" || Filename.check_suffix workload ".img"
    then
      run_asm workload
        (List.filter_map Int64.of_string_opt
           (String.split_on_char ',' asm_args))
        ~arena oopts
    else if Filename.check_suffix workload ".k" then
      let* name_config = config_of_name config_name in
      run_kernel workload name_config machine
        ?machine_tag:
          (Option.map (fun _ -> Edge_sim.Machine.name machine) machine_name)
        ~arena oopts
    else
    let* w =
      match Edge_workloads.Registry.find workload with
      | Some w -> Ok w
      | None ->
          Error
            (Printf.sprintf "unknown workload %s; available: %s" workload
               (String.concat ", " (Edge_workloads.Registry.names ())))
    in
    let* name_config = config_of_name config_name in
    if functional_only then begin
      let* compiled = Edge_harness.Experiment.compile w (snd name_config) in
      let mem = Edge_isa.Mem.create ~size:w.Edge_workloads.Workload.mem_size in
      let args = w.Edge_workloads.Workload.setup mem in
      let regs = Array.make 128 0L in
      List.iteri
        (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v)
        args;
      let* stats =
        Edge_sim.Functional.run compiled.Dfp.Driver.program ~regs ~mem
      in
      Format.printf "returned %Ld@.%a@."
        regs.(Edge_isa.Conventions.result_reg)
        Edge_sim.Stats.pp stats;
      Ok ()
    end
    else begin
      let obs, finish =
        make_obs oopts ~name:(workload ^ "/" ^ fst name_config)
      in
      let* r =
        Edge_harness.Experiment.run_one ~machine ?obs ~arena w name_config
      in
      Format.printf "%s/%s: verified against the reference interpreter@."
        r.Edge_harness.Experiment.workload r.Edge_harness.Experiment.config;
      Format.printf "%a@." Edge_sim.Stats.pp r.Edge_harness.Experiment.stats;
      if r.Edge_harness.Experiment.pass_counters <> [] && metrics then begin
        Format.printf "compiler pass counters:@.";
        List.iter
          (fun (k, v) -> Format.printf "  %-36s %10d@." k v)
          r.Edge_harness.Experiment.pass_counters
      end;
      finish ()
    end
  in
  let result = compute () in
  (* a checker diagnostic aborts compilation before anything runs; when
     the user also asked for a trace, recompile with the checker off and
     run that artifact so the offending block's schedule lands next to
     the error (the run still exits nonzero) *)
  let result =
    match result with
    | Error e
      when Edge_check.Check.enabled ()
           && obs_wanted oopts
           && Edge_check.Diag.parse_key e <> None ->
        Format.printf
          "checker diagnostic; capturing the trace with the checker off@.";
        (match Edge_check.Check.without_check compute with
        | Ok () -> ()
        | Error e2 -> Format.printf "trace capture also failed: %s@." e2);
        Error e
    | r -> r
  in
  match result with
  | Ok () -> 0
  | Error e ->
      prerr_endline ("tsim: " ^ e);
      1

let asm_args_arg =
  let doc = "Comma-separated integer arguments for .s programs." in
  Arg.(value & opt string "" & info [ "args" ] ~doc)

let workload_arg =
  let doc =
    "Workload name, a path to a .k kernel source, or a path to a .s \
     assembly / .img binary program."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let config_arg =
  let doc = "Compiler configuration." in
  Arg.(value & opt string "both" & info [ "c"; "config" ] ~doc)

let machine_arg =
  let doc =
    "Machine description: a preset name (trips_grid, inorder_edge), a \
     compact key=value line (e.g. rows=8;cols=8;slots=2), or a preset \
     with overrides (e.g. inorder_edge;window=8). Selects the backend: \
     trips_grid machines run the tiled grid simulator, inorder_edge \
     machines the scalar in-order core."
  in
  Arg.(value & opt (some string) None & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let functional_arg =
  let doc = "Run only the functional (untimed) simulator." in
  Arg.(value & flag & info [ "f"; "functional" ] ~doc)

let no_early_arg =
  let doc = "Disable early mispredication termination (Section 4.3 ablation)." in
  Arg.(value & flag & info [ "no-early-termination" ] ~doc)

let in_order_arg =
  let doc = "In-order memory: loads wait for all older stores." in
  Arg.(value & flag & info [ "in-order-memory" ] ~doc)

let check_arg =
  let doc =
    "Run the per-pass static verifier during compilation (equivalent to \
     DFP_CHECK=1): any invariant violation aborts with a \
     check[pass=... invariant=...] diagnostic. With --trace-out or \
     --trace-text, a failing compile is redone with the checker off so \
     the offending program's trace is captured alongside the error."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let lint_arg =
  let doc =
    "Compile-only ineffectuality report: print one \
     ineff[block=... at=... pred=...] line per instruction the \
     analysis proves can never contribute to a block output, store, or \
     branch (and per droppable guard), without deleting anything or \
     simulating. Works on workload names and .k kernels."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

let no_jit_arg =
  let doc =
    "Run the functional simulator through the reference token-pushing \
     interpreter instead of the threaded-code JIT (equivalent to \
     DFP_NO_JIT=1). Results are identical either way; use for \
     differential testing of the JIT."
  in
  Arg.(value & flag & info [ "no-jit" ] ~doc)

let no_arena_arg =
  let doc =
    "Disable the cycle simulator's frame arena: allocate fresh per-block \
     operand/state arrays instead of recycling pooled ones. Results are \
     identical either way; use for differential testing of the arena."
  in
  Arg.(value & flag & info [ "no-arena" ] ~doc)

let trace_out_arg =
  let doc =
    "Write a Chrome trace-event JSON of the cycle-simulator run to \
     $(docv) (viewable in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PATH" ~doc)

let trace_text_arg =
  let doc =
    "Write the compact deterministic text trace (the golden-test format) \
     to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace-text" ] ~docv:"PATH" ~doc)

let metrics_arg =
  let doc = "Print the derived metrics summary (counters and histograms)." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let cmd =
  let doc = "cycle-level TRIPS-like simulator" in
  Cmd.v
    (Cmd.info "tsim" ~doc)
    Term.(
      const run $ workload_arg $ config_arg $ machine_arg $ functional_arg
      $ no_early_arg $ in_order_arg $ no_arena_arg $ no_jit_arg $ check_arg
      $ lint_arg $ asm_args_arg $ trace_out_arg $ trace_text_arg
      $ metrics_arg)

let () = exit (Cmd.eval' cmd)
