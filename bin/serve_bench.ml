(* serve_bench: throughput/latency benchmark and smoke battery for the
   dfpd job server.

   Bench mode (default) spawns a fresh dfpd.exe child per -j in
   {1,2,4}, each with its own empty cache directory, drives one cold
   pass and several warm passes of (workload, config) jobs through 4
   client threads, and writes BENCH_serve.json: jobs/sec cold and warm,
   p50/p99 warm latency, warm:cold throughput ratio, cache counters,
   and whether every server response was byte-identical (same
   run_digest) to a direct in-process Experiment.run_one.

   Smoke mode (--smoke, wired into `make check` as serve-smoke) runs a
   ~20-job mixed battery against a spawned server — cold and warm
   workload jobs, a source job, a traced job, a guaranteed timeout, a
   malformed request, bad config/workload names — then a clean
   shutdown, asserting structured errors (never a dead server), a
   warm:cold ratio >= 10, and zero leaked sockets or cache temp
   files. *)

module Client = Edge_serve.Client
module Json = Edge_serve.Json
module Experiment = Edge_harness.Experiment

(* spawned dfpd children still alive; [die] reaps them so a failed
   assertion can never leave an orphan server holding our pipes open *)
let live_children : int list ref = ref []

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve_bench: FAIL: " ^ s);
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !live_children;
      exit 1)
    fmt

(* -- child server -------------------------------------------------- *)

let dfpd_exe () =
  let candidate =
    Filename.concat (Filename.dirname Sys.executable_name) "dfpd.exe"
  in
  if Sys.file_exists candidate then candidate
  else die "cannot find dfpd.exe next to %s" Sys.executable_name

let spawn_server ~socket ~cache_dir ~j =
  let exe = dfpd_exe () in
  let args =
    [|
      exe; "--socket"; socket; "-j"; string_of_int j; "--cache-dir";
      cache_dir; "--quiet";
    |]
  in
  let pid = Unix.create_process exe args Unix.stdin Unix.stdout Unix.stderr in
  live_children := pid :: !live_children;
  pid

let shutdown_server ~socket pid =
  (match Client.connect_retry ~attempts:20 socket with
  | c ->
      (match Client.rpc c (Json.Obj [ ("op", Json.Str "shutdown") ]) with
      | Ok _ | Error _ -> ());
      Client.close c
  | exception _ -> ());
  let deadline = Unix.gettimeofday () +. 20. in
  live_children := List.filter (fun p -> p <> pid) !live_children;
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          die "server did not shut down within 20s"
        end
        else begin
          Thread.delay 0.02;
          wait ()
        end
    | _, Unix.WEXITED 0 -> ()
    | _, st ->
        die "server exited abnormally (%s)"
          (match st with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
          | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
  in
  wait ()

let fresh_dir tag =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfpd-%s-%d-%.0f" tag (Unix.getpid ())
         (Unix.gettimeofday () *. 1000.))
  in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* -- client passes ------------------------------------------------- *)

(* run every job in [jobs] through [threads] client connections
   (thread k takes indices k, k+T, ...); returns per-job
   (latency_s, terminal response) in submission order *)
let run_pass ~socket ~threads (jobs : (string * Json.t) list array) :
    (float * Json.t) array =
  let n = Array.length jobs in
  let out = Array.make n (0., Json.Null) in
  let worker k () =
    let c = Client.connect_retry socket in
    let i = ref k in
    while !i < n do
      let t0 = Unix.gettimeofday () in
      (match Client.run_job c jobs.(!i) with
      | Ok v -> out.(!i) <- (Unix.gettimeofday () -. t0, v)
      | Error e -> die "job %d: %s" !i e);
      i := !i + threads
    done;
    Client.close c
  in
  let ths = List.init (min threads n) (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  out

let field_exn v name =
  match Json.member name v with
  | Some f -> f
  | None -> die "response %s is missing %S" (Json.to_string v) name

let str_exn v name =
  match Json.str v with
  | Some s -> s
  | None -> die "%S is not a string in %s" name (Json.to_string v)

let rtype v = Option.value (Json.str_member "type" v) ~default:"?"

let expect_done v =
  if rtype v <> "done" then
    die "expected done, got %s" (Json.to_string v);
  v

let digest_of v = str_exn (field_exn v "run_digest") "run_digest"

let is_warm v = Json.bool_member "warm" v = Some true

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

(* -- the job mix --------------------------------------------------- *)

let bench_workloads = [ "tblook01"; "cacheb01"; "pntrch01"; "ttsprk01" ]
let bench_configs = [ "Hyper"; "Both" ]

let specs workloads =
  List.concat_map
    (fun w ->
      List.map (fun c -> (w, c)) bench_configs)
    workloads

let job_of_spec (w, c) = Client.workload_job ~workload:w ~config:c ()

(* digest of a direct, server-free run of the same job — ground truth
   for the byte-identical check *)
let direct_digest (w, c) =
  let workload =
    match Edge_workloads.Registry.find w with
    | Some wl -> wl
    | None -> die "workload %s missing from registry" w
  in
  let config =
    match Edge_serve.Server.find_config c with
    | Some cfg -> cfg
    | None -> die "config %s unknown" c
  in
  match Experiment.run_one workload (c, config) with
  | Ok r -> (Edge_serve.Server.run_digest r, r.Experiment.ret)
  | Error e -> die "direct run %s/%s failed: %s" w c e

(* -- bench mode ---------------------------------------------------- *)

type row = {
  j : int;
  cold_jobs_s : float;
  warm_jobs_s : float;
  warm_p50_ms : float;
  warm_p99_ms : float;
  ratio : float;
  cache_hits : int;
  cache_misses : int;
}

let bench_one ~j ~warm_passes specs =
  let cache_dir = fresh_dir (Printf.sprintf "bench%d" j) in
  let socket = Filename.concat cache_dir "dfpd.sock" in
  let pid = spawn_server ~socket ~cache_dir ~j in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache_dir then rm_rf cache_dir)
    (fun () ->
      let jobs = Array.of_list (List.map job_of_spec specs) in
      let t0 = Unix.gettimeofday () in
      let cold = run_pass ~socket ~threads:4 jobs in
      let cold_wall = Unix.gettimeofday () -. t0 in
      let cold_digests =
        Array.map (fun (_, v) -> digest_of (expect_done v)) cold
      in
      let warm_lat = ref [] in
      let t1 = Unix.gettimeofday () in
      for _ = 1 to warm_passes do
        let warm = run_pass ~socket ~threads:4 jobs in
        Array.iteri
          (fun i (lat, v) ->
            let v = expect_done v in
            if not (is_warm v) then
              die "-j%d: warm pass job %d missed the cache" j i;
            if digest_of v <> cold_digests.(i) then
              die "-j%d: warm digest differs from cold for job %d" j i;
            warm_lat := lat :: !warm_lat)
          warm
      done;
      let warm_wall = Unix.gettimeofday () -. t1 in
      let c = Client.connect_retry socket in
      let stats =
        match Client.rpc c (Json.Obj [ ("op", Json.Str "stats") ]) with
        | Ok v -> v
        | Error e -> die "stats: %s" e
      in
      Client.close c;
      shutdown_server ~socket pid;
      let n_cold = Array.length jobs in
      let n_warm = n_cold * warm_passes in
      let lat = Array.of_list !warm_lat in
      Array.sort compare lat;
      let counter name =
        Option.value (Json.int_member name stats) ~default:0
      in
      ( {
          j;
          cold_jobs_s = float_of_int n_cold /. cold_wall;
          warm_jobs_s = float_of_int n_warm /. warm_wall;
          warm_p50_ms = percentile lat 0.5 *. 1000.;
          warm_p99_ms = percentile lat 0.99 *. 1000.;
          ratio =
            float_of_int n_warm /. warm_wall
            /. (float_of_int n_cold /. cold_wall);
          cache_hits = counter "cache_hits";
          cache_misses = counter "cache_misses";
        },
        cold_digests ))

let write_json path specs rows identical =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"experiment\": \"serve\",\n";
  pf "  \"protocol\": %S,\n" Edge_serve.Proto.protocol;
  pf "  \"identical\": %b,\n" identical;
  pf "  \"specs\": [%s],\n"
    (String.concat ", "
       (List.map (fun (w, c) -> Printf.sprintf "\"%s/%s\"" w c) specs));
  pf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      pf
        "    { \"j\": %d, \"cold_jobs_s\": %.2f, \"warm_jobs_s\": %.2f, \
         \"warm_p50_ms\": %.3f, \"warm_p99_ms\": %.3f, \
         \"warm_cold_ratio\": %.1f, \"cache_hits\": %d, \
         \"cache_misses\": %d }%s\n"
        r.j r.cold_jobs_s r.warm_jobs_s r.warm_p50_ms r.warm_p99_ms r.ratio
        r.cache_hits r.cache_misses
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pf "  ]\n}\n";
  close_out oc

let run_bench ~out ~warm_passes =
  let specs = specs bench_workloads in
  let results =
    List.map (fun j -> bench_one ~j ~warm_passes specs) [ 1; 2; 4 ]
  in
  (* ground truth after the timed passes (a direct run warms the
     in-process memo, which must not contaminate the servers' cold
     passes; child processes would be immune, but stay careful) *)
  let direct = List.map (fun s -> fst (direct_digest s)) specs in
  let identical =
    List.for_all
      (fun (_, cold_digests) ->
        List.for_all2
          (fun d i -> d = cold_digests.(i))
          direct
          (List.init (List.length direct) Fun.id))
      results
  in
  let rows = List.map fst results in
  List.iter
    (fun r ->
      Printf.printf
        "serve -j%d: cold %6.2f jobs/s, warm %8.2f jobs/s (%.0fx), p50 \
         %.3f ms, p99 %.3f ms\n"
        r.j r.cold_jobs_s r.warm_jobs_s r.ratio r.warm_p50_ms r.warm_p99_ms)
    rows;
  Printf.printf "identical to direct run_one: %b\n" identical;
  write_json out specs rows identical;
  Printf.printf "wrote %s\n" out;
  if not identical then die "server results diverge from direct runs";
  if List.exists (fun r -> r.ratio < 10.) rows then
    die "warm throughput below 10x cold"

(* -- smoke mode ---------------------------------------------------- *)

let spin_kernel =
  "kernel serve_spin(int x, int y, int* A, int* B) {\n\
  \  int s = 0;\n\
  \  while (x > 0) { s = s + 1; }\n\
  \  return s;\n\
   }\n"

let sum_kernel =
  "kernel serve_sum(int x, int y, int* A, int* B) {\n\
  \  int s = 0;\n\
  \  int i;\n\
  \  for (i = 0; i < 8; i = i + 1) { s = s + A[i]; }\n\
  \  return s + x + y;\n\
   }\n"

let count_tmp_files dir =
  let n = ref 0 in
  let rec walk d =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            let p = Filename.concat d name in
            if Sys.is_directory p then walk p
            else
              let rec has_tmp i =
                i + 5 <= String.length name
                && (String.sub name i 5 = ".tmp." || has_tmp (i + 1))
              in
              if has_tmp 0 then incr n)
          names
  in
  walk dir;
  !n

let run_smoke () =
  let smoke_specs = specs [ "tblook01"; "cacheb01" ] in
  let cache_dir = fresh_dir "smoke" in
  let socket = Filename.concat cache_dir "dfpd.sock" in
  let pid = spawn_server ~socket ~cache_dir ~j:2 in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache_dir then rm_rf cache_dir)
    (fun () ->
      let jobs = Array.of_list (List.map job_of_spec smoke_specs) in
      (* 4 cold jobs *)
      let t0 = Unix.gettimeofday () in
      let cold = run_pass ~socket ~threads:4 jobs in
      let cold_wall = Unix.gettimeofday () -. t0 in
      Array.iter (fun (_, v) -> ignore (expect_done v)) cold;
      (* 8 warm jobs, byte-identical to the cold ones *)
      let t1 = Unix.gettimeofday () in
      let warm1 = run_pass ~socket ~threads:4 jobs in
      let warm2 = run_pass ~socket ~threads:4 jobs in
      let warm_wall = Unix.gettimeofday () -. t1 in
      Array.iteri
        (fun i (_, v) ->
          let v = expect_done v in
          if not (is_warm v) then die "warm job %d missed the cache" i;
          if digest_of v <> digest_of (snd cold.(i mod Array.length cold))
          then die "warm digest differs from cold for job %d" i)
        (Array.append warm1 warm2);
      let ratio =
        16. /. warm_wall /. (4. /. cold_wall)
      in
      if ratio < 10. then
        die "warm throughput only %.1fx cold (need >= 10x)" ratio;
      let c = Client.connect_retry socket in
      (* job 13: a source kernel with a known answer *)
      (match
         Client.run_job c (Client.source_job ~source:sum_kernel ~config:"Both" ())
       with
      | Ok v ->
          let v = expect_done v in
          let expected =
            (* sum of A[i] = i*37-90 for i<8, plus x+y = 7-3 *)
            Int64.to_string (Int64.of_int ((37 * 28) - (90 * 8) + 4))
          in
          if Json.str_member "ret" v <> Some expected then
            die "source job returned %s, expected %s" (Json.to_string v)
              expected
      | Error e -> die "source job: %s" e);
      (* job 14: same kernel traced — must stream events and metrics *)
      let traces = ref 0 and metrics = ref 0 in
      (match
         Client.run_job c
           ~on_stream:(fun v ->
             match rtype v with
             | "trace" -> incr traces
             | "metrics" -> incr metrics
             | _ -> ())
           (Client.source_job ~trace:true ~source:sum_kernel ~config:"Both" ())
       with
      | Ok v -> ignore (expect_done v)
      | Error e -> die "trace job: %s" e);
      if !traces = 0 then die "traced job streamed no trace lines";
      if !metrics = 0 then die "traced job sent no metrics";
      (* job 15: guaranteed timeout (non-terminating kernel, tiny fuel) *)
      (match
         Client.run_job c
           (Client.source_job ~fuel:10_000 ~max_cycles:100_000
              ~source:spin_kernel ~config:"Both" ())
       with
      | Ok v ->
          if rtype v <> "error" || Json.str_member "reason" v <> Some "timeout"
          then die "spin kernel should time out, got %s" (Json.to_string v)
      | Error e -> die "timeout job: %s" e);
      (* job 16: malformed request — structured error, server survives *)
      Client.send_line c "this is not json at all {";
      (match Client.recv c with
      | Some (Ok v)
        when rtype v = "error" && Json.str_member "reason" v = Some "protocol"
        ->
          ()
      | other ->
          die "malformed line: expected a protocol error, got %s"
            (match other with
            | Some (Ok v) -> Json.to_string v
            | Some (Error e) -> e
            | None -> "EOF"));
      (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
      | Ok v when rtype v = "pong" -> ()
      | _ -> die "server did not answer ping after a malformed request");
      (* jobs 17/18: unknown workload / config — structured errors *)
      (match
         Client.run_job c (Client.workload_job ~workload:"nope" ~config:"Both" ())
       with
      | Ok v when rtype v = "error" && Json.str_member "reason" v = Some "config"
        ->
          ()
      | other ->
          die "unknown workload: expected config error, got %s"
            (match other with Ok v -> Json.to_string v | Error e -> e));
      (match
         Client.run_job c
           (Client.workload_job ~workload:"tblook01" ~config:"NoSuch" ())
       with
      | Ok v when rtype v = "error" && Json.str_member "reason" v = Some "config"
        ->
          ()
      | other ->
          die "unknown config: expected config error, got %s"
            (match other with Ok v -> Json.to_string v | Error e -> e));
      Client.close c;
      (* clean shutdown: no socket, no temp files, cache still populated *)
      shutdown_server ~socket pid;
      if Sys.file_exists socket then die "socket file leaked";
      let tmp = count_tmp_files cache_dir in
      if tmp <> 0 then die "%d cache temp file(s) leaked" tmp;
      Printf.printf
        "serve-smoke: OK (cold %.2fs, warm %.2fs, %.0fx; 20 requests incl. \
         timeout + malformed; no leaks)\n"
        cold_wall warm_wall ratio)

let () =
  let smoke = ref false in
  let out = ref "BENCH_serve.json" in
  let warm_passes = ref 5 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " run the serve-smoke battery");
      ("--out", Arg.Set_string out, "FILE bench output (default BENCH_serve.json)");
      ("--warm-passes", Arg.Set_int warm_passes, "N warm passes per -j (default 5)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "serve_bench [--smoke] [--out FILE]";
  if !smoke then run_smoke () else run_bench ~out:!out ~warm_passes:!warm_passes
