(* serve_bench: throughput/latency benchmark and smoke battery for the
   dfpd job server.

   Bench mode (default) spawns a fresh dfpd.exe child per -j in
   {1,2,4}, each with its own empty cache directory, pings the socket
   so listener spin-up never pollutes the timings, then drives one
   single-stream cold pass and several warm passes and writes
   BENCH_serve.json. The cold pass is lock-step at concurrency 1 — a
   compile-bound latency number that must not get *worse* as workers
   are added. The warm offered load scales with server capacity: the
   -j1 row keeps the old protocol's lock-step round trips as the
   baseline (batch 1, pipeline depth 1), -jN drives 16*N-job batch
   frames with 4 frames in flight per connection ({"op":"batch"} +
   out-of-order completion), which is what the pipelined protocol
   exists for. Warm passes use a zero-allocation client — pre-rendered
   request frames, in-place response scanning over a raw fd, expected
   digests byte-compared in the buffer — so the numbers measure the
   server and the wire, not the client's JSON library. Each pass is a
   deterministic replay of the same frames; the best of --warm-passes
   (default 5) is reported per row, because on a shared host the
   variance between identical passes is neighbour noise, not signal.
   Each row records its threads/batch/depth so the methodology is in
   the data, and scaling_efficiency = warm_jobs_s(-jN) /
   warm_jobs_s(-j1). A final section precompiles every spec
   client-side, ships the images as pre-encoded block jobs to a fresh
   server, and requires byte-identical run_digests to the direct
   in-process runs.

   Scale-smoke mode (--scale-smoke, wired into `make check` as
   serve-scale-smoke) runs the -j1 and -j4 rows on a reduced spec set
   and fails unless warm -j4 >= 2x warm -j1 and cold -j4 >= 0.8x
   cold -j1 (cold is concurrency-1 and must be j-independent; the
   tolerance absorbs timer noise on a loaded host).

   Cross-cache mode (--cross-cache) points two dfpd processes at ONE
   shared --cache-dir: A populates it cold, a fresh B must answer the
   same jobs warm from disk with equal digests and zero decode
   errors, then both processes race an overlapping cold spec set into
   the directory concurrently — atomic tmp+rename stores mean neither
   may ever see a torn read.

   Smoke mode (--smoke, wired into `make check` as serve-smoke) runs a
   ~20-job mixed battery against a spawned server — cold and warm
   workload jobs, a source job, a traced job, a guaranteed timeout, a
   malformed request, bad config/workload names — then a clean
   shutdown, asserting structured errors (never a dead server), a
   warm:cold ratio >= 10, and zero leaked sockets or cache temp
   files. *)

module Client = Edge_serve.Client
module Json = Edge_serve.Json
module Experiment = Edge_harness.Experiment

(* spawned dfpd children still alive; [die] reaps them so a failed
   assertion can never leave an orphan server holding our pipes open *)
let live_children : int list ref = ref []

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve_bench: FAIL: " ^ s);
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !live_children;
      exit 1)
    fmt

(* -- child server -------------------------------------------------- *)

let dfpd_exe () =
  let candidate =
    Filename.concat (Filename.dirname Sys.executable_name) "dfpd.exe"
  in
  if Sys.file_exists candidate then candidate
  else die "cannot find dfpd.exe next to %s" Sys.executable_name

let spawn_server ~socket ~cache_dir ~j =
  let exe = dfpd_exe () in
  let args =
    [|
      exe; "--socket"; socket; "-j"; string_of_int j; "--cache-dir";
      cache_dir; "--quiet";
    |]
  in
  let pid = Unix.create_process exe args Unix.stdin Unix.stdout Unix.stderr in
  live_children := pid :: !live_children;
  pid

let shutdown_server ~socket pid =
  (match Client.connect_retry ~attempts:20 socket with
  | c ->
      (match Client.rpc c (Json.Obj [ ("op", Json.Str "shutdown") ]) with
      | Ok _ | Error _ -> ());
      Client.close c
  | exception _ -> ());
  let deadline = Unix.gettimeofday () +. 20. in
  live_children := List.filter (fun p -> p <> pid) !live_children;
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          die "server did not shut down within 20s"
        end
        else begin
          Thread.delay 0.02;
          wait ()
        end
    | _, Unix.WEXITED 0 -> ()
    | _, st ->
        die "server exited abnormally (%s)"
          (match st with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
          | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
  in
  wait ()

let fresh_dir tag =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dfpd-%s-%d-%.0f" tag (Unix.getpid ())
         (Unix.gettimeofday () *. 1000.))
  in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* one throwaway ping so listener spin-up, the first accept and the
   reader-thread start are paid before any timed pass begins *)
let ping_warmup ~socket =
  let c = Client.connect_retry socket in
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok _ -> ()
  | Error e -> die "warmup ping: %s" e);
  Client.close c

(* -- client passes ------------------------------------------------- *)

(* run every job in [jobs] through [threads] client connections in
   lock-step (thread k takes indices k, k+T, ...; one round trip per
   job); returns per-job (latency_s, terminal response) in submission
   order *)
let run_pass ~socket ~threads (jobs : (string * Json.t) list array) :
    (float * Json.t) array =
  let n = Array.length jobs in
  let out = Array.make n (0., Json.Null) in
  let worker k () =
    let c = Client.connect_retry socket in
    let i = ref k in
    while !i < n do
      let t0 = Unix.gettimeofday () in
      (match Client.run_job c jobs.(!i) with
      | Ok v -> out.(!i) <- (Unix.gettimeofday () -. t0, v)
      | Error e -> die "job %d: %s" !i e);
      i := !i + threads
    done;
    Client.close c
  in
  let ths = List.init (min threads n) (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  out

let rec take n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: tl ->
      let a, b = take (n - 1) tl in
      (x :: a, b)

(* pipelined pass: thread k's slice goes over one connection in
   [batch]-job frames ({"op":"batch"}), all of a frame in flight at
   once, completions awaited whatever order they land in (the client
   parks strays by id). Reported latency is completion minus frame
   submission — queueing under the offered load, not a bare RTT. *)
let run_pass_batched ~socket ~threads ~batch
    (jobs : (string * Json.t) list array) : (float * Json.t) array =
  let n = Array.length jobs in
  let out = Array.make n (0., Json.Null) in
  let worker k () =
    let c = Client.connect_retry socket in
    let mine = List.filter (fun i -> i mod threads = k) (List.init n Fun.id) in
    let rec frames = function
      | [] -> ()
      | l ->
          let chunk, rest = take batch l in
          let t0 = Unix.gettimeofday () in
          let ids =
            Client.submit_batch c (List.map (fun i -> jobs.(i)) chunk)
          in
          List.iter2
            (fun i id ->
              match Client.await c id with
              | Ok v -> out.(i) <- (Unix.gettimeofday () -. t0, v)
              | Error e -> die "job %d: %s" i e)
            chunk ids;
          frames rest
    in
    frames mine;
    Client.close c
  in
  let ths = List.init (min threads n) (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  out

(* -- lean warm pass ------------------------------------------------ *)

(* The timed warm rows bypass the generic JSON client so the loop
   measures the server and the wire, not the bench's own encoder:
   request frames are rendered to strings before the clock starts and
   responses are verified by direct scans. The lock-step (batch=1)
   and pipelined rows share this exact path — only the framing
   differs — so their comparison is framing, nothing else. *)

(* patterns built once, outside the timed loops *)
let pat_done = "\"type\":\"done\""
let pat_accepted = "\"type\":\"accepted\""
let pat_id = "\"id\":\""
let pat_digest = "\"run_digest\":\""
let pat_warm = "\"warm\":true"

(* returns per-job latency in submission order; every response must be
   a warm done whose run_digest equals [expect i] (the pass is only
   run against a populated cache). Responses are scanned in place in
   the read buffer — no per-line string, no per-job allocation — so
   the timed loop is the server and the wire, nothing else. [depth]
   frames ride the connection at once (depth 1 = strict
   request/response): with a second frame already in the server's
   socket buffer, the server never idles waiting for the client's
   turnaround, which is the point of a pipelined protocol. Latency is
   completion minus the job's own frame's send time — queueing under
   the offered load included. *)
let run_pass_lean ~socket ~threads ~batch ~depth ~(expect : int -> string)
    (jobs : (string * Json.t) list array) : float array =
  let n = Array.length jobs in
  let lat = Array.make n 0. in
  let t0s = Array.make n 0. in
  let render i =
    Json.to_string (Json.Obj (("id", Json.Str (string_of_int i)) :: jobs.(i)))
  in
  let worker k () =
    let c = Client.connect_retry socket in
    let fd = c.Client.fd in
    let mine = List.filter (fun i -> i mod threads = k) (List.init n Fun.id) in
    (* all frames rendered up front, outside the timed region *)
    let frames =
      if batch = 1 then
        List.map (fun i -> (Bytes.of_string (render i ^ "\n"), [ i ])) mine
      else
        let rec chunks = function
          | [] -> []
          | l ->
              let is, rest = take batch l in
              ( Bytes.of_string
                  (Printf.sprintf "{\"op\":\"batch\",\"jobs\":[%s]}\n"
                     (String.concat "," (List.map render is))),
                is )
              :: chunks rest
        in
        chunks mine
    in
    let write_all b =
      let len = Bytes.length b in
      let rec go off =
        if off < len then
          match Unix.write fd b off (len - off) with
          | w -> go (off + w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      in
      go 0
    in
    let buf = Bytes.create 65536 in
    let blen = ref 0 and bpos = ref 0 in
    let refill () =
      if !bpos > 0 then begin
        Bytes.blit buf !bpos buf 0 (!blen - !bpos);
        blen := !blen - !bpos;
        bpos := 0
      end;
      match Unix.read fd buf !blen (Bytes.length buf - !blen) with
      | 0 -> die "lean pass: connection closed mid-frame"
      | r -> blen := !blen + r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    (* in-place helpers over buf[a,b) *)
    let find_pat a b (pat : string) =
      let plen = String.length pat in
      let rec matches i j =
        j >= plen
        || (Bytes.unsafe_get buf (i + j) = String.unsafe_get pat j
            && matches i (j + 1))
      in
      let rec go i =
        if i + plen > b then -1 else if matches i 0 then i else go (i + 1)
      in
      go a
    in
    let line_str a b = Bytes.sub_string buf a (b - a) in
    let process_line a b =
      if find_pat a b pat_done < 0 then begin
        if find_pat a b pat_accepted < 0 then
          die "lean pass: unexpected response: %s" (line_str a b);
        false
      end
      else begin
        if find_pat a b pat_warm < 0 then
          die "lean pass: cold response in a warm pass: %s" (line_str a b);
        let i =
          match find_pat a b pat_id with
          | -1 -> die "lean pass: done response without id: %s" (line_str a b)
          | p ->
              let rec digits j acc =
                match Bytes.unsafe_get buf j with
                | '0' .. '9' as ch ->
                    digits (j + 1) ((acc * 10) + Char.code ch - Char.code '0')
                | _ -> acc
              in
              digits (p + String.length pat_id) 0
        in
        (match find_pat a b pat_digest with
        | -1 ->
            die "lean pass: done response without digest: %s" (line_str a b)
        | p ->
            let d = expect i in
            let off = p + String.length pat_digest in
            let dlen = String.length d in
            let same =
              off + dlen <= b
              && Bytes.unsafe_get buf (off + dlen) = '"'
              &&
              let rec eq j =
                j >= dlen
                || (Bytes.unsafe_get buf (off + j) = String.unsafe_get d j
                    && eq (j + 1))
              in
              eq 0
            in
            if not same then
              die "lean pass: run_digest mismatch for job %d: %s" i
                (line_str a b));
        lat.(i) <- Unix.gettimeofday () -. t0s.(i);
        true
      end
    in
    (* block until one more done line has been processed *)
    let rec consume_one () =
      let rec nl i =
        if i >= !blen then -1
        else if Bytes.unsafe_get buf i = '\n' then i
        else nl (i + 1)
      in
      match nl !bpos with
      | -1 ->
          refill ();
          consume_one ()
      | e ->
          let was_done = process_line !bpos e in
          bpos := e + 1;
          if not was_done then consume_one ()
    in
    let pending = ref 0 in
    List.iter
      (fun (frame, is) ->
        (* at most [depth] frames in flight *)
        while !pending > (depth - 1) * batch do
          consume_one ();
          decr pending
        done;
        let t0 = Unix.gettimeofday () in
        List.iter (fun i -> t0s.(i) <- t0) is;
        write_all frame;
        pending := !pending + List.length is)
      frames;
    while !pending > 0 do
      consume_one ();
      decr pending
    done;
    Client.close c
  in
  let ths = List.init (min threads n) (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  lat

let field_exn v name =
  match Json.member name v with
  | Some f -> f
  | None -> die "response %s is missing %S" (Json.to_string v) name

let str_exn v name =
  match Json.str v with
  | Some s -> s
  | None -> die "%S is not a string in %s" name (Json.to_string v)

let rtype v = Option.value (Json.str_member "type" v) ~default:"?"

let expect_done v =
  if rtype v <> "done" then
    die "expected done, got %s" (Json.to_string v);
  v

let digest_of v = str_exn (field_exn v "run_digest") "run_digest"

let is_warm v = Json.bool_member "warm" v = Some true

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let server_stats ~socket =
  let c = Client.connect_retry socket in
  let stats =
    match Client.rpc c (Json.Obj [ ("op", Json.Str "stats") ]) with
    | Ok v -> v
    | Error e -> die "stats: %s" e
  in
  Client.close c;
  stats

let counter stats name = Option.value (Json.int_member name stats) ~default:0

(* -- the job mix --------------------------------------------------- *)

let bench_workloads = [ "tblook01"; "cacheb01"; "pntrch01"; "ttsprk01" ]
let bench_configs = [ "Hyper"; "Both" ]

let specs workloads =
  List.concat_map
    (fun w ->
      List.map (fun c -> (w, c)) bench_configs)
    workloads

let job_of_spec (w, c) = Client.workload_job ~workload:w ~config:c ()

(* digest of a direct, server-free run of the same job — ground truth
   for the byte-identical check *)
let direct_digest (w, c) =
  let workload =
    match Edge_workloads.Registry.find w with
    | Some wl -> wl
    | None -> die "workload %s missing from registry" w
  in
  let config =
    match Edge_serve.Server.find_config c with
    | Some cfg -> cfg
    | None -> die "config %s unknown" c
  in
  match Experiment.run_one workload (c, config) with
  | Ok r -> (Edge_serve.Server.run_digest r, r.Experiment.ret)
  | Error e -> die "direct run %s/%s failed: %s" w c e

(* -- bench mode ---------------------------------------------------- *)

type row = {
  j : int;
  threads : int;
  batch : int;
  depth : int;
  cold_jobs_s : float;
  warm_jobs_s : float;
  warm_p50_ms : float;
  warm_p99_ms : float;
  ratio : float;
  cache_hits : int;
  cache_misses : int;
  fast_hits : int;
}

(* warm offered load scales with server capacity: the -j1 row keeps
   the old protocol's only mode — one connection, strict lock-step
   round trips — as the baseline, and -jN drives 16*N-job batch
   frames with two frames riding the connection at once. Each row
   records its threads/batch/depth, so the load model is part of the
   data. *)
let warm_batch j = if j = 1 then 1 else 16 * j
let warm_depth j = if j = 1 then 1 else 4
let warm_threads _ = 1

(* enough warm jobs per pass that each timed pass runs for tens of
   milliseconds — whole frames per thread, and a floor big enough that
   scheduler wakeup jitter (client and server ping-pong across one
   core) averages out instead of dominating a single short pass *)
let warm_volume ~threads ~batch = max (threads * batch) 2048

let bench_one ~j ~warm_passes specs =
  let cache_dir = fresh_dir (Printf.sprintf "bench%d" j) in
  let socket = Filename.concat cache_dir "dfpd.sock" in
  let pid = spawn_server ~socket ~cache_dir ~j in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache_dir then rm_rf cache_dir)
    (fun () ->
      let jobs = Array.of_list (List.map job_of_spec specs) in
      let n = Array.length jobs in
      ping_warmup ~socket;
      (* cold: single-stream lock-step. Compile-bound latency with one
         job in the server at a time — by construction it cannot
         improve with -j, and it must not get worse (idle workers are
         parked in condvars, not spinning) *)
      let t0 = Unix.gettimeofday () in
      let cold = run_pass ~socket ~threads:1 jobs in
      let cold_wall = Unix.gettimeofday () -. t0 in
      let cold_digests =
        Array.map (fun (_, v) -> digest_of (expect_done v)) cold
      in
      let threads = warm_threads j in
      let batch = warm_batch j in
      let depth = warm_depth j in
      let volume = warm_volume ~threads ~batch in
      let warm_jobs = Array.init volume (fun i -> jobs.(i mod n)) in
      (* each warm pass is timed separately and the row reports the
         best one (identically for every row): the passes are
         deterministic replays, so their variance is host noise —
         other tenants, not the server under test *)
      let warm_lat = ref [] in
      let best = ref 0. in
      for _ = 1 to warm_passes do
        let t1 = Unix.gettimeofday () in
        let warm =
          run_pass_lean ~socket ~threads ~batch ~depth
            ~expect:(fun i -> cold_digests.(i mod n))
            warm_jobs
        in
        let pass_jobs_s =
          float_of_int volume /. (Unix.gettimeofday () -. t1)
        in
        if pass_jobs_s > !best then best := pass_jobs_s;
        Array.iter (fun lat -> warm_lat := lat :: !warm_lat) warm
      done;
      let stats = server_stats ~socket in
      shutdown_server ~socket pid;
      let lat = Array.of_list !warm_lat in
      Array.sort compare lat;
      ( {
          j;
          threads;
          batch;
          depth;
          cold_jobs_s = float_of_int n /. cold_wall;
          warm_jobs_s = !best;
          warm_p50_ms = percentile lat 0.5 *. 1000.;
          warm_p99_ms = percentile lat 0.99 *. 1000.;
          ratio = !best /. (float_of_int n /. cold_wall);
          cache_hits = counter stats "cache_hits";
          cache_misses = counter stats "cache_misses";
          fast_hits = counter stats "fast_hits";
        },
        cold_digests ))

(* -- pre-encoded block jobs ---------------------------------------- *)

(* compile every spec client-side, ship the artifacts as image jobs to
   a fresh server, and require byte-identical run_digests to the
   direct runs — cold (full verification battery against the workload
   reference) and again warm (the image's own fast-path entry) *)
let preencoded_check specs (direct : (string * int64) list) =
  let cache_dir = fresh_dir "preenc" in
  let socket = Filename.concat cache_dir "dfpd.sock" in
  let pid = spawn_server ~socket ~cache_dir ~j:2 in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache_dir then rm_rf cache_dir)
    (fun () ->
      ping_warmup ~socket;
      let c = Client.connect_retry socket in
      let ok =
        List.for_all2
          (fun (w, cfg) (d, _) ->
            let image =
              match Client.precompile ~workload:w ~config:cfg () with
              | Ok img -> img
              | Error e -> die "precompile %s/%s: %s" w cfg e
            in
            let job = Client.image_job ~workload:w ~config:cfg ~image () in
            let cold =
              match Client.run_job c job with
              | Ok v -> expect_done v
              | Error e -> die "image job %s/%s: %s" w cfg e
            in
            let warm =
              match Client.run_job c job with
              | Ok v -> expect_done v
              | Error e -> die "image job (warm) %s/%s: %s" w cfg e
            in
            if not (is_warm warm) then
              die "image job %s/%s missed the warm fast path on resubmit" w
                cfg;
            digest_of cold = d && digest_of warm = d)
          specs direct
      in
      Client.close c;
      shutdown_server ~socket pid;
      ok)

let host_cores = Domain.recommended_domain_count ()

let write_json path specs rows ~identical ~preencoded_ok =
  let base_warm =
    match rows with r :: _ -> r.warm_jobs_s | [] -> die "no bench rows"
  in
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"experiment\": \"serve\",\n";
  pf "  \"protocol\": %S,\n" Edge_serve.Proto.protocol;
  pf "  \"identical\": %b,\n" identical;
  pf "  \"host_cores\": %d,\n" host_cores;
  pf "  \"specs\": [%s],\n"
    (String.concat ", "
       (List.map (fun (w, c) -> Printf.sprintf "\"%s/%s\"" w c) specs));
  pf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      pf
        "    { \"j\": %d, \"threads\": %d, \"batch\": %d, \"depth\": %d, \
         \"cold_jobs_s\": %.1f, \"warm_jobs_s\": %.1f, \
         \"warm_p50_ms\": %.3f, \"warm_p99_ms\": %.3f, \
         \"warm_cold_ratio\": %.1f, \"scaling_efficiency\": %.2f, \
         \"cache_hits\": %d, \"cache_misses\": %d, \"fast_hits\": %d }%s\n"
        r.j r.threads r.batch r.depth r.cold_jobs_s r.warm_jobs_s r.warm_p50_ms
        r.warm_p99_ms r.ratio
        (r.warm_jobs_s /. base_warm)
        r.cache_hits r.cache_misses r.fast_hits
        (if i = List.length rows - 1 then "" else ","))
    rows;
  pf "  ],\n";
  pf "  \"preencoded\": { \"jobs\": %d, \"identical\": %b }\n"
    (List.length specs) preencoded_ok;
  pf "}\n";
  close_out oc

let run_bench ~out ~warm_passes =
  let specs = specs bench_workloads in
  let results =
    List.map (fun j -> bench_one ~j ~warm_passes specs) [ 1; 2; 4 ]
  in
  (* ground truth after the timed passes (a direct run warms the
     in-process memo, which must not contaminate the servers' cold
     passes; child processes would be immune, but stay careful) *)
  let direct = List.map direct_digest specs in
  let identical =
    List.for_all
      (fun (_, cold_digests) ->
        List.for_all2
          (fun (d, _) i -> d = cold_digests.(i))
          direct
          (List.init (List.length direct) Fun.id))
      results
  in
  let preencoded_ok = preencoded_check specs direct in
  let rows = List.map fst results in
  let base_warm = (List.hd rows).warm_jobs_s in
  List.iter
    (fun r ->
      Printf.printf
        "serve -j%d (x%d threads, batch %d): cold %6.1f jobs/s, warm %8.1f \
         jobs/s (%.0fx cold, %.2fx -j1), p50 %.3f ms, p99 %.3f ms\n"
        r.j r.threads r.batch r.cold_jobs_s r.warm_jobs_s r.ratio
        (r.warm_jobs_s /. base_warm)
        r.warm_p50_ms r.warm_p99_ms)
    rows;
  Printf.printf "identical to direct run_one: %b\n" identical;
  Printf.printf "pre-encoded image jobs identical: %b\n" preencoded_ok;
  write_json out specs rows ~identical ~preencoded_ok;
  Printf.printf "wrote %s\n" out;
  if not identical then die "server results diverge from direct runs";
  if not preencoded_ok then
    die "pre-encoded image jobs diverge from direct runs";
  if List.exists (fun r -> r.ratio < 10.) rows then
    die "warm throughput below 10x cold";
  let last = List.nth rows (List.length rows - 1) in
  if last.warm_jobs_s < 2.5 *. base_warm then
    die "pipelined warm throughput only %.2fx the -j1 lock-step baseline"
      (last.warm_jobs_s /. base_warm)

(* -- scale-smoke mode ---------------------------------------------- *)

let run_scale_smoke () =
  let specs = specs [ "tblook01"; "cacheb01" ] in
  let r1, _ = bench_one ~j:1 ~warm_passes:5 specs in
  let r4, _ = bench_one ~j:4 ~warm_passes:5 specs in
  Printf.printf
    "serve-scale-smoke: warm %.0f (lock-step) -> %.0f jobs/s (batch %d, \
     %.2fx), cold %.1f -> %.1f jobs/s\n"
    r1.warm_jobs_s r4.warm_jobs_s r4.batch
    (r4.warm_jobs_s /. r1.warm_jobs_s)
    r1.cold_jobs_s r4.cold_jobs_s;
  if r4.warm_jobs_s < 2. *. r1.warm_jobs_s then
    die "pipelined warm throughput only %.2fx the lock-step baseline (need \
         >= 2x)"
      (r4.warm_jobs_s /. r1.warm_jobs_s);
  (* cold is concurrency-1 and therefore j-independent; the tolerance
     absorbs timer/GC noise on a handful of compile-bound jobs, not a
     real regression (the idle-worker GC tax this guards against was a
     reproducible 30-40% drop) *)
  if r4.cold_jobs_s < 0.8 *. r1.cold_jobs_s then
    die "cold throughput fell from %.1f to %.1f jobs/s going -j1 -> -j4"
      r1.cold_jobs_s r4.cold_jobs_s;
  print_endline "serve-scale-smoke: OK"

(* -- cross-cache mode ---------------------------------------------- *)

let count_tmp_files dir =
  let n = ref 0 in
  let rec walk d =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            let p = Filename.concat d name in
            if Sys.is_directory p then walk p
            else
              let rec has_tmp i =
                i + 5 <= String.length name
                && (String.sub name i 5 = ".tmp." || has_tmp (i + 1))
              in
              if has_tmp 0 then incr n)
          names
  in
  walk dir;
  !n

(* two dfpd processes sharing one --cache-dir: A populates it cold, a
   fresh B answers the same jobs warm from A's on-disk entries, then
   both race an overlapping cold spec set into the directory at once.
   Atomic tmp+rename stores and digest-checked reads mean zero decode
   errors and no torn reads in any phase. *)
let run_cross_cache () =
  let shared = specs bench_workloads in
  let jobs = Array.of_list (List.map job_of_spec shared) in
  let n = Array.length jobs in
  let cache_dir = fresh_dir "xcache" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache_dir then rm_rf cache_dir)
    (fun () ->
      (* phase 1: A fills the shared cache cold *)
      let sock_a = Filename.concat cache_dir "a.sock" in
      let pid_a = spawn_server ~socket:sock_a ~cache_dir ~j:2 in
      ping_warmup ~socket:sock_a;
      let t0 = Unix.gettimeofday () in
      let cold = run_pass ~socket:sock_a ~threads:2 jobs in
      let cold_wall = Unix.gettimeofday () -. t0 in
      let digests = Array.map (fun (_, v) -> digest_of (expect_done v)) cold in
      let st_a = server_stats ~socket:sock_a in
      if counter st_a "cache_errors" <> 0 then
        die "process A saw %d cache decode errors"
          (counter st_a "cache_errors");
      (* shutdown drains A's writeback queue: every entry is durable *)
      shutdown_server ~socket:sock_a pid_a;
      (* phase 2: a fresh B must answer warm from A's entries *)
      let sock_b = Filename.concat cache_dir "b.sock" in
      let pid_b = spawn_server ~socket:sock_b ~cache_dir ~j:2 in
      ping_warmup ~socket:sock_b;
      let t1 = Unix.gettimeofday () in
      let warm = run_pass ~socket:sock_b ~threads:2 jobs in
      let warm_wall = Unix.gettimeofday () -. t1 in
      Array.iteri
        (fun i (_, v) ->
          let v = expect_done v in
          if not (is_warm v) then
            die "cross-cache: job %d missed A's disk entry in process B" i;
          if digest_of v <> digests.(i) then
            die "cross-cache: process B digest differs for job %d" i)
        warm;
      let st_b = server_stats ~socket:sock_b in
      if counter st_b "cache_errors" <> 0 then
        die "process B saw %d cache decode errors"
          (counter st_b "cache_errors");
      if counter st_b "cache_misses" <> 0 then
        die "process B missed the shared cache %d times"
          (counter st_b "cache_misses");
      let speedup = cold_wall /. warm_wall in
      if speedup < 5. then
        die "cross-process warm hits only %.1fx faster than A's cold pass"
          speedup;
      (* phase 3: A2 and B race the same fresh specs into the shared
         directory concurrently — both miss, both compute, both store
         the same keys; tmp+rename must keep every read clean *)
      let fresh_specs =
        List.concat_map
          (fun w -> [ (w, "Intra"); (w, "Inter") ])
          [ "tblook01"; "cacheb01" ]
      in
      let fresh_jobs = Array.of_list (List.map job_of_spec fresh_specs) in
      let sock_a2 = Filename.concat cache_dir "a2.sock" in
      let pid_a2 = spawn_server ~socket:sock_a2 ~cache_dir ~j:2 in
      ping_warmup ~socket:sock_a2;
      let res_a = ref [||] and res_b = ref [||] in
      let tha =
        Thread.create
          (fun () -> res_a := run_pass ~socket:sock_a2 ~threads:2 fresh_jobs)
          ()
      in
      let thb =
        Thread.create
          (fun () -> res_b := run_pass ~socket:sock_b ~threads:2 fresh_jobs)
          ()
      in
      Thread.join tha;
      Thread.join thb;
      Array.iteri
        (fun i (_, va) ->
          let da = digest_of (expect_done va) in
          let db = digest_of (expect_done (snd !res_b.(i))) in
          if da <> db then
            die "concurrent phase: digests diverge for job %d (%s vs %s)" i
              da db)
        !res_a;
      List.iter
        (fun (name, sock) ->
          let st = server_stats ~socket:sock in
          if counter st "cache_errors" <> 0 then
            die "concurrent phase: process %s saw %d cache decode errors"
              name
              (counter st "cache_errors"))
        [ ("A2", sock_a2); ("B", sock_b) ];
      shutdown_server ~socket:sock_a2 pid_a2;
      shutdown_server ~socket:sock_b pid_b;
      let tmp = count_tmp_files cache_dir in
      if tmp <> 0 then die "%d cache temp file(s) leaked" tmp;
      Printf.printf
        "cross-cache: OK (%d shared jobs: A cold %.2fs, B warm %.2fs = \
         %.0fx; %d-job concurrent phase clean; no torn reads, no leaks)\n"
        n cold_wall warm_wall speedup
        (Array.length fresh_jobs))

(* -- smoke mode ---------------------------------------------------- *)

let spin_kernel =
  "kernel serve_spin(int x, int y, int* A, int* B) {\n\
  \  int s = 0;\n\
  \  while (x > 0) { s = s + 1; }\n\
  \  return s;\n\
   }\n"

let sum_kernel =
  "kernel serve_sum(int x, int y, int* A, int* B) {\n\
  \  int s = 0;\n\
  \  int i;\n\
  \  for (i = 0; i < 8; i = i + 1) { s = s + A[i]; }\n\
  \  return s + x + y;\n\
   }\n"

let run_smoke () =
  let smoke_specs = specs [ "tblook01"; "cacheb01" ] in
  let cache_dir = fresh_dir "smoke" in
  let socket = Filename.concat cache_dir "dfpd.sock" in
  let pid = spawn_server ~socket ~cache_dir ~j:2 in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cache_dir then rm_rf cache_dir)
    (fun () ->
      let jobs = Array.of_list (List.map job_of_spec smoke_specs) in
      (* 4 cold jobs *)
      let t0 = Unix.gettimeofday () in
      let cold = run_pass ~socket ~threads:4 jobs in
      let cold_wall = Unix.gettimeofday () -. t0 in
      Array.iter (fun (_, v) -> ignore (expect_done v)) cold;
      (* 8 warm jobs, byte-identical to the cold ones — one lock-step
         pass and one batched pass, which must be indistinguishable *)
      let t1 = Unix.gettimeofday () in
      let warm1 = run_pass ~socket ~threads:4 jobs in
      let warm2 = run_pass_batched ~socket ~threads:2 ~batch:4 jobs in
      let warm_wall = Unix.gettimeofday () -. t1 in
      Array.iteri
        (fun i (_, v) ->
          let v = expect_done v in
          if not (is_warm v) then die "warm job %d missed the cache" i;
          if digest_of v <> digest_of (snd cold.(i mod Array.length cold))
          then die "warm digest differs from cold for job %d" i)
        (Array.append warm1 warm2);
      let ratio =
        16. /. warm_wall /. (4. /. cold_wall)
      in
      if ratio < 10. then
        die "warm throughput only %.1fx cold (need >= 10x)" ratio;
      let c = Client.connect_retry socket in
      (* job 13: a source kernel with a known answer *)
      (match
         Client.run_job c (Client.source_job ~source:sum_kernel ~config:"Both" ())
       with
      | Ok v ->
          let v = expect_done v in
          let expected =
            (* sum of A[i] = i*37-90 for i<8, plus x+y = 7-3 *)
            Int64.to_string (Int64.of_int ((37 * 28) - (90 * 8) + 4))
          in
          if Json.str_member "ret" v <> Some expected then
            die "source job returned %s, expected %s" (Json.to_string v)
              expected
      | Error e -> die "source job: %s" e);
      (* job 14: same kernel traced — must stream events and metrics *)
      let traces = ref 0 and metrics = ref 0 in
      (match
         Client.run_job c
           ~on_stream:(fun v ->
             match rtype v with
             | "trace" -> incr traces
             | "metrics" -> incr metrics
             | _ -> ())
           (Client.source_job ~trace:true ~source:sum_kernel ~config:"Both" ())
       with
      | Ok v -> ignore (expect_done v)
      | Error e -> die "trace job: %s" e);
      if !traces = 0 then die "traced job streamed no trace lines";
      if !metrics = 0 then die "traced job sent no metrics";
      (* job 15: guaranteed timeout (non-terminating kernel, tiny fuel) *)
      (match
         Client.run_job c
           (Client.source_job ~fuel:10_000 ~max_cycles:100_000
              ~source:spin_kernel ~config:"Both" ())
       with
      | Ok v ->
          if rtype v <> "error" || Json.str_member "reason" v <> Some "timeout"
          then die "spin kernel should time out, got %s" (Json.to_string v)
      | Error e -> die "timeout job: %s" e);
      (* job 16: malformed request — structured error, server survives *)
      Client.send_line c "this is not json at all {";
      (match Client.recv c with
      | Some (Ok v)
        when rtype v = "error" && Json.str_member "reason" v = Some "protocol"
        ->
          ()
      | other ->
          die "malformed line: expected a protocol error, got %s"
            (match other with
            | Some (Ok v) -> Json.to_string v
            | Some (Error e) -> e
            | None -> "EOF"));
      (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
      | Ok v when rtype v = "pong" -> ()
      | _ -> die "server did not answer ping after a malformed request");
      (* jobs 17/18: unknown workload / config — structured errors *)
      (match
         Client.run_job c (Client.workload_job ~workload:"nope" ~config:"Both" ())
       with
      | Ok v when rtype v = "error" && Json.str_member "reason" v = Some "config"
        ->
          ()
      | other ->
          die "unknown workload: expected config error, got %s"
            (match other with Ok v -> Json.to_string v | Error e -> e));
      (match
         Client.run_job c
           (Client.workload_job ~workload:"tblook01" ~config:"NoSuch" ())
       with
      | Ok v when rtype v = "error" && Json.str_member "reason" v = Some "config"
        ->
          ()
      | other ->
          die "unknown config: expected config error, got %s"
            (match other with Ok v -> Json.to_string v | Error e -> e));
      Client.close c;
      (* clean shutdown: no socket, no temp files, cache still populated *)
      shutdown_server ~socket pid;
      if Sys.file_exists socket then die "socket file leaked";
      let tmp = count_tmp_files cache_dir in
      if tmp <> 0 then die "%d cache temp file(s) leaked" tmp;
      Printf.printf
        "serve-smoke: OK (cold %.2fs, warm %.2fs, %.0fx; 20 requests incl. \
         timeout + malformed; no leaks)\n"
        cold_wall warm_wall ratio)

let () =
  let smoke = ref false in
  let scale_smoke = ref false in
  let cross_cache = ref false in
  let out = ref "BENCH_serve.json" in
  let warm_passes = ref 5 in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " run the serve-smoke battery");
      ( "--scale-smoke",
        Arg.Set scale_smoke,
        " assert pipelined warm throughput scales over the lock-step \
         baseline" );
      ( "--cross-cache",
        Arg.Set cross_cache,
        " two processes sharing one cache dir: warm hits, no torn reads" );
      ("--out", Arg.Set_string out, "FILE bench output (default BENCH_serve.json)");
      ("--warm-passes", Arg.Set_int warm_passes, "N warm passes per -j (default 5)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "serve_bench [--smoke|--scale-smoke|--cross-cache] [--out FILE]";
  if !smoke then run_smoke ()
  else if !scale_smoke then run_scale_smoke ()
  else if !cross_cache then run_cross_cache ()
  else run_bench ~out:!out ~warm_passes:!warm_passes
