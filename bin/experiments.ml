(* experiments: regenerate every number reported in EXPERIMENTS.md —
   the Figure 7 sweep, the Section 6 dynamic statistics, the genalg case
   study and the ablations.

     dune exec bin/experiments.exe -- -j 4

   -j N fans the independent (workload x config) experiments across N
   domains; simulated cycle counts are identical for every N.

   --trace-out x.json additionally attaches a block-level trace to
   every Figure 7 run and writes one combined Chrome trace-event JSON
   (one Perfetto process per workload/config experiment). *)

let usage () =
  Printf.eprintf
    "usage: experiments.exe [-j N] [--trace-out PATH] [--no-cache] \
     [--cache-dir DIR] [--check]\n";
  exit 1

let write_combined_trace path (fig7 : Edge_harness.Figure7.result) =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun pid ((wname, cname), events) ->
      if pid > 0 then Buffer.add_string buf ",\n";
      Edge_obs.Trace.write_chrome ~pid ~name:(wname ^ "/" ^ cname) buf events)
    fig7.Edge_harness.Figure7.traces;
  Buffer.add_string buf "\n]\n";
  match open_out path with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Format.printf "wrote %s (%d experiment traces)@." path
        (List.length fig7.Edge_harness.Figure7.traces)
  | exception Sys_error e ->
      Printf.eprintf "warning: could not write %s: %s\n%!" path e

let () =
  let jobs = ref (Edge_parallel.Pool.default_jobs ()) in
  let trace_out = ref None in
  let use_cache = ref true in
  let cache_dir = ref "_cache" in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ -> usage ())
    | "--trace-out" :: p :: rest ->
        trace_out := Some p;
        parse rest
    | "--no-cache" :: rest ->
        use_cache := false;
        parse rest
    | "--cache-dir" :: d :: rest ->
        cache_dir := d;
        parse rest
    | "--check" :: rest ->
        (* per-pass static verifier on every compile (also: DFP_CHECK=1);
           checked runs bypass the persistent result cache *)
        Edge_check.Check.set_enabled true;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = !jobs in
  let cache =
    if not !use_cache then None
    else
      match Edge_parallel.Disk_cache.create ~dir:!cache_dir () with
      | c -> Some c
      | exception Sys_error e ->
          Printf.eprintf "warning: cache disabled: %s\n%!" e;
          None
  in
  let t0 = Unix.gettimeofday () in
  Format.printf "== Figure 7 (28 EEMBC-style benchmarks x 5 configurations) ==@.";
  let fig7 =
    Edge_harness.Figure7.run
      ~progress:(fun n -> Printf.eprintf "  %s...\n%!" n)
      ~jobs
      ~trace_blocks:(!trace_out <> None)
      ?cache ()
  in
  Format.printf "%a@.@." Edge_harness.Figure7.pp fig7;
  (match !trace_out with
  | Some path -> write_combined_trace path fig7
  | None -> ());
  Format.printf "== genalg case study (Section 5.3) ==@.";
  (match Edge_harness.Genalg_study.run ~jobs ?cache () with
  | Ok s -> Format.printf "%a@.@." Edge_harness.Genalg_study.pp s
  | Error e -> Format.printf "error: %s@.@." e);
  Format.printf "== ablations ==@.";
  let entries, errors = Edge_harness.Ablation.run ~jobs ?cache () in
  Format.printf "%a@." Edge_harness.Ablation.pp entries;
  List.iter (fun (w, e) -> Format.printf "error %s: %s@." w e) errors;
  Format.printf "@.total time: %.1fs (-j %d)@."
    (Unix.gettimeofday () -. t0)
    jobs
