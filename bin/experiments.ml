(* experiments: regenerate every number reported in EXPERIMENTS.md —
   the Figure 7 sweep, the Section 6 dynamic statistics, the genalg case
   study and the ablations.

     dune exec bin/experiments.exe -- -j 4

   -j N fans the independent (workload x config) experiments across N
   domains; simulated cycle counts are identical for every N. *)

let () =
  let jobs = ref (Edge_parallel.Pool.default_jobs ()) in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ ->
            Printf.eprintf "usage: experiments.exe [-j N]\n";
            exit 1)
    | _ ->
        Printf.eprintf "usage: experiments.exe [-j N]\n";
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = !jobs in
  let t0 = Unix.gettimeofday () in
  Format.printf "== Figure 7 (28 EEMBC-style benchmarks x 5 configurations) ==@.";
  let fig7 =
    Edge_harness.Figure7.run
      ~progress:(fun n -> Printf.eprintf "  %s...\n%!" n)
      ~jobs ()
  in
  Format.printf "%a@.@." Edge_harness.Figure7.pp fig7;
  Format.printf "== genalg case study (Section 5.3) ==@.";
  (match Edge_harness.Genalg_study.run ~jobs () with
  | Ok s -> Format.printf "%a@.@." Edge_harness.Genalg_study.pp s
  | Error e -> Format.printf "error: %s@.@." e);
  Format.printf "== ablations ==@.";
  let entries, errors = Edge_harness.Ablation.run ~jobs () in
  Format.printf "%a@." Edge_harness.Ablation.pp entries;
  List.iter (fun (w, e) -> Format.printf "error %s: %s@." w e) errors;
  Format.printf "@.total time: %.1fs (-j %d)@."
    (Unix.gettimeofday () -. t0)
    jobs
