(* dfpd: the compile-and-simulate job server.

   Listens on a Unix socket for newline-delimited JSON jobs (see
   lib/serve/proto.ml and README "The job server"), schedules them
   across a domain pool with single-flight dedup, and answers from the
   sharded disk cache when it can.

     dfpd --socket /tmp/dfpd.sock -j 4 --cache-dir /tmp/dfpd-cache

   Runs until a client sends {"op":"shutdown"} or the process gets
   SIGINT/SIGTERM; both paths drain the queue and unlink the socket. *)

let () =
  let socket = ref "dfpd.sock" in
  let jobs = ref (max 1 (Domain.recommended_domain_count () - 1)) in
  let queue_cap = ref 64 in
  let cache_dir = ref "" in
  let cache_max_mb = ref 0 in
  let mem_entries = ref 4096 in
  let max_cycles = ref 10_000_000 in
  let quiet = ref false in
  let spec =
    [
      ("--socket", Arg.Set_string socket, "PATH Unix socket path (default dfpd.sock)");
      ("-j", Arg.Set_int jobs, "N worker domains (default: cores-1)");
      ("--queue-cap", Arg.Set_int queue_cap, "N pending-job bound (default 64)");
      ("--cache-dir", Arg.Set_string cache_dir, "DIR persistent result cache (default: no cache)");
      ( "--cache-max-mb",
        Arg.Set_int cache_max_mb,
        "MB evict the cache down to this size (default: uncapped)" );
      ( "--mem-entries",
        Arg.Set_int mem_entries,
        "N in-memory result cache entries (default 4096)" );
      ( "--no-mem-cache",
        Arg.Unit (fun () -> mem_entries := 0),
        " disable the in-memory result cache (and the warm fast path)" );
      ( "--max-cycles",
        Arg.Set_int max_cycles,
        "N watchdog ceiling for submitted-source jobs (default 10M)" );
      ("--quiet", Arg.Set quiet, " no startup/shutdown chatter");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "dfpd [options]";
  let cache =
    if !cache_dir = "" then None
    else
      Some
        (Edge_parallel.Disk_cache.create
           ?max_bytes:
             (if !cache_max_mb > 0 then Some (!cache_max_mb * 1024 * 1024)
              else None)
           ~writeback:true ~dir:!cache_dir ())
  in
  let cfg =
    {
      (Edge_serve.Server.default_config ?cache ~socket_path:!socket ()) with
      jobs = max 1 !jobs;
      queue_cap = max 1 !queue_cap;
      mem_entries = max 0 !mem_entries;
      max_cycles = max 1000 !max_cycles;
    }
  in
  let srv = Edge_serve.Server.start cfg in
  let on_signal _ = Edge_serve.Server.request_shutdown srv in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  if not !quiet then
    Printf.printf "dfpd: listening on %s (%d workers, queue %d, cache %s)\n%!"
      !socket cfg.jobs cfg.queue_cap
      (match cache with
      | Some c -> Edge_parallel.Disk_cache.dir c
      | None -> "off");
  Edge_serve.Server.wait srv;
  Edge_serve.Server.stop srv;
  if not !quiet then print_endline "dfpd: shut down"
