(* bench_compare: diff two BENCH_*.json files.

     bench_compare.exe BASE.json NEW.json

   For figure-7 files, the gates are:
     - any per-benchmark cycle drift in the BB or Hyper baselines (or a
       benchmark/config/backend present in BASE missing from NEW) fails
       — the baselines run no optimization in flux, so they must be
       byte-identical;
     - the Both geomean speedup on the top-level (trips_grid) table
       regressing fails — new optimizations have to pay their way.
   Optimized-config per-bench drift is reported as informational
   "delta" lines, and per-config geomean deltas are printed for the
   top-level table and every per-backend section.  Wall-clock and
   allocation deltas are reported but never fail the comparison: they
   are host-dependent.

   Files whose "experiment" field is "serve" (written by
   serve_bench.exe) hold machine-dependent throughput/latency numbers
   plus two byte-identical flags; latency and ratio drift is reported
   non-fatally, but either identical flag flipping false or warm
   throughput regressing more than 20% for a matching -j fails the
   comparison.

   The parser below is a minimal recursive-descent JSON reader — just
   enough for the bench writer's output — so the tool needs no JSON
   dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'u' ->
              (* keep \uXXXX escapes verbatim: names compared here are
                 plain ASCII, the escape only needs to round-trip *)
              advance ();
              Buffer.add_string b "\\u";
              for _ = 1 to 4 do
                (match peek () with
                | Some c ->
                    Buffer.add_char b c;
                    advance ()
                | None -> fail "bad \\u escape")
              done;
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance ();
              go ()
          | None -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c -> is_num_char c | None -> false do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* -- BENCH-file accessors ------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_num = function Some (Num f) -> Some f | _ -> None

let load path =
  let ic =
    try open_in_bin path
    with Sys_error e ->
      Printf.eprintf "bench_compare: %s\n" e;
      exit 2
  in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match parse_json src with
  | v -> v
  | exception Parse_error e ->
      Printf.eprintf "bench_compare: %s: %s\n" path e;
      exit 2

(* bench name -> (config -> cycles) *)
let cycles_of (v : json) : (string * (string * int) list) list =
  match member "benches" v with
  | Some (Arr rows) ->
      List.filter_map
        (fun row ->
          match (member "bench" row, member "cycles" row) with
          | Some (Str name), Some (Obj cs) ->
              Some
                ( name,
                  List.filter_map
                    (fun (cfg, c) ->
                      match c with
                      | Num f -> Some (cfg, int_of_float f)
                      | _ -> None)
                    cs )
          | _ -> None)
        rows
  | _ -> []

(* backend name -> (bench -> (config -> cycles)); [] when a file
   predates the per-backend sections *)
let backends_of (v : json) : (string * (string * (string * int) list) list) list
    =
  match member "backends" v with
  | Some (Obj sections) ->
      List.map (fun (name, section) -> (name, cycles_of section)) sections
  | _ -> []

let wall_of v = to_num (member "total" (Option.value ~default:Null (member "wall_s" v)))

(* (config, (jit_instrs_s, speedup)) per row of the optional
   fsim_throughput section; [] when a file predates it *)
let fsim_of v =
  match member "fsim_throughput" v with
  | Some (Obj fields) -> (
      match List.assoc_opt "rows" fields with
      | Some (Arr rows) ->
          List.filter_map
            (fun row ->
              match
                ( member "config" row,
                  to_num (member "jit_instrs_s" row),
                  to_num (member "speedup" row) )
              with
              | Some (Str cfg), Some instrs, Some speedup ->
                  Some (cfg, (instrs, speedup))
              | _ -> None)
            rows
      | _ -> [])
  | _ -> []

(* per -j row of a BENCH_serve.json: (j, warm_jobs_s, ratio, p99_ms) *)
let serve_rows v =
  match member "rows" v with
  | Some (Arr rows) ->
      List.filter_map
        (fun row ->
          match
            ( to_num (member "j" row),
              to_num (member "warm_jobs_s" row),
              to_num (member "warm_cold_ratio" row),
              to_num (member "warm_p99_ms" row) )
          with
          | Some j, Some w, Some r, Some p ->
              Some (int_of_float j, (w, r, p))
          | _ -> None)
        rows
  | _ -> []

let is_serve v = member "experiment" v = Some (Str "serve")

(* serve latency/ratio numbers are host-dependent and reported
   non-fatally, but two regressions gate: warm throughput falling by
   more than [warm_tolerance] for a matching -j (the warm path is
   in-memory and deterministic enough that a >20% drop is a code
   regression, not host noise), and either byte-identical flag
   flipping false *)
let warm_tolerance = 0.20

let compare_serve base next new_path =
  let failures = ref 0 in
  List.iter
    (fun (j, (wb, rb, pb)) ->
      match List.assoc_opt j (serve_rows next) with
      | None ->
          incr failures;
          Printf.printf "FAIL: serve -j%d missing from %s\n" j new_path
      | Some (wn, rn, pn) ->
          Printf.printf
            "serve -j%d: warm %.0f -> %.0f jobs/s (%+.1f%%), ratio %.0fx -> \
             %.0fx, p99 %.3f -> %.3f ms\n"
            j wb wn
            (if wb > 0. then (wn -. wb) /. wb *. 100. else 0.)
            rb rn pb pn;
          if wn < wb *. (1. -. warm_tolerance) then begin
            incr failures;
            Printf.printf
              "FAIL: serve -j%d warm throughput regressed %.1f%% (tolerance \
               %.0f%%)\n"
              j
              ((wb -. wn) /. wb *. 100.)
              (warm_tolerance *. 100.)
          end)
    (serve_rows base);
  let identical v = member "identical" v = Some (Bool true) in
  if identical base && not (identical next) then begin
    incr failures;
    Printf.printf
      "FAIL: server responses no longer byte-identical to direct runs\n"
  end;
  let pre_identical v =
    match member "preencoded" v with
    | Some pre -> member "identical" pre = Some (Bool true)
    | None -> false
  in
  if pre_identical base && not (pre_identical next) then begin
    incr failures;
    Printf.printf
      "FAIL: pre-encoded image jobs no longer byte-identical to source jobs\n"
  end;
  if !failures > 0 then exit 1;
  Printf.printf
    "OK: serve identical flags hold, warm throughput within %.0f%% \
     (latency/ratio informational)\n"
    (warm_tolerance *. 100.)

let () =
  let base_path, new_path =
    match Sys.argv with
    | [| _; b; n |] -> (b, n)
    | _ ->
        Printf.eprintf "usage: bench_compare.exe BASE.json NEW.json\n";
        exit 2
  in
  let base = load base_path and next = load new_path in
  if is_serve base || is_serve next then begin
    if not (is_serve base && is_serve next) then begin
      Printf.eprintf "bench_compare: %s and %s are different experiments\n"
        base_path new_path;
      exit 2
    end;
    compare_serve base next new_path;
    exit 0
  end;
  let base_cycles = cycles_of base and new_cycles = cycles_of next in
  if base_cycles = [] then begin
    Printf.eprintf "bench_compare: %s: no benches\n" base_path;
    exit 2
  end;
  let drifts = ref 0 in
  let compared = ref 0 in
  let deltas = ref 0 in
  (* BB and Hyper run no cycle-affecting optimization that is still in
     flux, so any per-bench drift there is a correctness bug and fails;
     the optimized configs are where new optimizations legitimately
     move cycle counts, so their per-bench drift is informational and
     the gate moves to the geomean (below) *)
  let gated_config = function "BB" | "Hyper" -> true | _ -> false in
  let diff_tables ~label base_cycles new_cycles =
    List.iter
      (fun (bench, configs) ->
        match List.assoc_opt bench new_cycles with
        | None ->
            incr drifts;
            Printf.printf "DRIFT %s%-12s missing from %s\n" label bench
              new_path
        | Some new_configs ->
            List.iter
              (fun (cfg, c) ->
                match List.assoc_opt cfg new_configs with
                | None ->
                    incr drifts;
                    Printf.printf "DRIFT %s%-12s %-6s missing from %s\n" label
                      bench cfg new_path
                | Some c' ->
                    incr compared;
                    if c <> c' then
                      if gated_config cfg then begin
                        incr drifts;
                        Printf.printf "DRIFT %s%-12s %-6s %d -> %d (%+d)\n"
                          label bench cfg c c' (c' - c)
                      end
                      else begin
                        incr deltas;
                        Printf.printf "delta %s%-12s %-6s %d -> %d (%+d)\n"
                          label bench cfg c c' (c' - c)
                      end)
              configs)
      base_cycles
  in
  (* per-config geomean of the figure-7 speedup (cycles(Hyper) /
     cycles(config)) over the benches both files share *)
  let geomeans base_table new_table =
    let config_names =
      List.sort_uniq compare
        (List.concat_map (fun (_, cs) -> List.map fst cs) base_table)
    in
    List.filter_map
      (fun cfg ->
        let ratios which_table other_table =
          List.filter_map
            (fun (bench, cs) ->
              match
                ( List.assoc_opt "Hyper" cs,
                  List.assoc_opt cfg cs,
                  List.assoc_opt bench other_table )
              with
              | Some h, Some c, Some _ when h > 0 && c > 0 ->
                  Some (log (float_of_int h /. float_of_int c))
              | _ -> None)
            which_table
        in
        let gm logs =
          if logs = [] then None
          else
            Some
              (exp (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs)))
        in
        match (gm (ratios base_table new_table), gm (ratios new_table base_table)) with
        | Some b, Some n -> Some (cfg, b, n)
        | _ -> None)
      config_names
  in
  let report_geomeans ~label ~gate base_table new_table =
    List.iter
      (fun (cfg, b, n) ->
        Printf.printf "geomean %s%-6s %.4f -> %.4f (%+.4f)\n" label cfg b n
          (n -. b);
        (* the prize gate: the Both geomean on the gating table must
           never regress — new optimizations have to pay their way *)
        if gate && cfg = "Both" && n < b -. 1e-9 then begin
          incr drifts;
          Printf.printf "FAIL: %sBoth geomean regressed %.4f -> %.4f\n" label
            b n
        end)
      (geomeans base_table new_table)
  in
  diff_tables ~label:"" base_cycles new_cycles;
  report_geomeans ~label:"" ~gate:true base_cycles new_cycles;
  (* per-backend sections are diffed independently: a backend present
     in both files gates exactly like the top-level table (except its
     geomeans, which are informational); a backend only the NEW file
     has is informational (it was just added) *)
  let base_backends = backends_of base and new_backends = backends_of next in
  List.iter
    (fun (backend, base_table) ->
      match List.assoc_opt backend new_backends with
      | None ->
          incr drifts;
          Printf.printf "DRIFT backend %s missing from %s\n" backend new_path
      | Some new_table ->
          diff_tables ~label:(backend ^ " ") base_table new_table;
          report_geomeans ~label:(backend ^ " ") ~gate:false base_table
            new_table)
    base_backends;
  List.iter
    (fun (backend, table) ->
      if not (List.mem_assoc backend base_backends) then
        Printf.printf
          "NEW backend %s: %d benches (informational, absent from %s)\n"
          backend (List.length table) base_path)
    new_backends;
  (match (wall_of base, wall_of next) with
  | Some wb, Some wn ->
      Printf.printf "wall: %.3fs -> %.3fs (%+.1f%%)\n" wb wn
        (if wb > 0. then (wn -. wb) /. wb *. 100. else 0.)
  | _ -> ());
  (* throughput is machine-dependent: report, never fail *)
  (match (fsim_of base, fsim_of next) with
  | [], _ | _, [] -> ()
  | base_fsim, new_fsim ->
      List.iter
        (fun (cfg, (ib, sb)) ->
          match List.assoc_opt cfg new_fsim with
          | None -> ()
          | Some (inw, sn) ->
              Printf.printf
                "fsim %-6s jit %.1fM -> %.1fM instr/s (%+.1f%%), speedup \
                 %.2fx -> %.2fx\n"
                cfg (ib /. 1e6) (inw /. 1e6)
                (if ib > 0. then (inw -. ib) /. ib *. 100. else 0.)
                sb sn)
        base_fsim);
  if !drifts > 0 then begin
    Printf.printf "FAIL: %d cycle drift(s) over %d comparisons\n" !drifts
      !compared;
    exit 1
  end
  else
    Printf.printf
      "OK: %d cycle counts compared (%d optimized-config delta(s), \
       informational), baselines identical, Both geomean held\n"
      !compared !deltas
