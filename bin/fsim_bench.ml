(* Functional-simulator throughput microbenchmark (JIT vs interpreter).

     dune exec bin/fsim_bench.exe                -- full table, paper configs
     dune exec bin/fsim_bench.exe -- --smoke     -- 1 workload x 2 configs,
                                                    short time box; used by
                                                    `make perf-smoke`
     ... --min-ratio R                           -- exit 1 unless the JIT is
                                                    at least Rx the interpreter
                                                    on every config
     ... --min-time S                            -- seconds per mode per config

   Reports blocks/sec and instrs/sec per configuration for both
   execution paths. The same measurement backs the `fsim_throughput`
   section of BENCH_fig7.json. *)

let usage () =
  Printf.eprintf
    "usage: fsim_bench.exe [--smoke] [--min-ratio R] [--min-time S]\n";
  exit 2

let () =
  let smoke = ref false in
  let min_ratio = ref 0.0 in
  let min_time = ref 0.15 in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--min-ratio" :: r :: rest -> (
        match float_of_string_opt r with
        | Some r when r > 0.0 ->
            min_ratio := r;
            parse rest
        | _ -> usage ())
    | "--min-time" :: s :: rest -> (
        match float_of_string_opt s with
        | Some s when s > 0.0 ->
            min_time := s;
            parse rest
        | _ -> usage ())
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let benches, configs =
    if not !smoke then (None, None)
    else
      let w =
        match Edge_workloads.Registry.find "tblook01" with
        | Some w -> w
        | None -> failwith "fsim_bench: tblook01 missing from registry"
      in
      let configs =
        List.filter
          (fun (n, _) -> n = "Hyper" || n = "Both")
          Dfp.Config.all_paper_configs
      in
      (Some [ w ], Some configs)
  in
  let r =
    Edge_harness.Fsim_bench.measure ?benches ?configs ~min_time:!min_time ()
  in
  Format.printf "%a@." Edge_harness.Fsim_bench.pp r;
  let worst = Edge_harness.Fsim_bench.min_speedup r in
  Format.printf "min speedup %.2fx@." worst;
  if !min_ratio > 0.0 && worst < !min_ratio then begin
    Printf.eprintf "fsim_bench: JIT speedup %.2fx below required %.2fx\n"
      worst !min_ratio;
    exit 1
  end
