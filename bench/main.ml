(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation.

     dune exec bench/main.exe                 -- everything (Figure 7, Section 6
                                                 statistics, genalg case study,
                                                 ablations)
     dune exec bench/main.exe fig7 -- -j 4    -- Figure 7 sweep only, 4 domains
     dune exec bench/main.exe stats           -- Section 6 dynamic statistics
     dune exec bench/main.exe genalg          -- Section 5.3 case study
     dune exec bench/main.exe ablation        -- mechanism ablations
     dune exec bench/main.exe smoke           -- 1 workload x 2 configs across
                                                 2 domains; fast sanity check
                                                 of the parallel path
     dune exec bench/main.exe micro           -- Bechamel microbenchmarks (one
                                                 Test.make per experiment,
                                                 timing the pipeline itself)

   Flags (valid for every mode that runs the sweep):

     -j N          run experiments across N domains (default: cores - 1)
     --json PATH   where fig7/stats/all write the machine-readable results
                   (default BENCH_fig7.json; "-" disables)
     --no-cache    bypass the persistent result cache
     --cache-dir D persistent cache location (default _cache); unchanged
                   (workload, config) pairs hit the cache across runs and
                   skip recompilation and re-simulation entirely

   The paper-facing numbers are simulated cycle counts, not wall-clock:
   simulated cycles are bit-identical for every -j value.  The Bechamel
   tests exist to track the toolchain's own performance (compile time,
   functional- and cycle-simulation throughput). *)

let fig7 ?(progress = true) ?cache ?machine ~jobs () =
  Edge_harness.Figure7.run
    ~progress:(fun n -> if progress then Printf.eprintf "  %s...\n%!" n)
    ~jobs ?cache ?machine ()

(* -- machine-readable results ------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~wall_s ~alloc ~fsim ~backends
    (r : Edge_harness.Figure7.result) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* multi-line lists indent one entry per line; short objects stay on
     one line with inline separators *)
  let sep xs f = List.iteri (fun i x -> if i > 0 then pf ",\n"; f x) xs in
  let sep_inline xs f = List.iteri (fun i x -> if i > 0 then pf ", "; f x) xs in
  pf "{\n";
  pf "  \"experiment\": \"fig7\",\n";
  pf "  \"jobs\": %d,\n" r.Edge_harness.Figure7.jobs;
  pf "  \"wall_s\": { \"total\": %.3f, \"compile\": %.3f, \"sim\": %.3f },\n"
    wall_s r.Edge_harness.Figure7.compile_s r.Edge_harness.Figure7.sim_s;
  let minor_words, major_words = alloc in
  pf "  \"alloc\": { \"minor_words\": %.0f, \"major_words\": %.0f },\n"
    minor_words major_words;
  (match (fsim : Edge_harness.Fsim_bench.result option) with
  | None -> ()
  | Some f ->
      pf "  \"fsim_throughput\": {\n";
      pf "    \"workloads\": [";
      sep_inline f.Edge_harness.Fsim_bench.workloads (fun w ->
          pf "\"%s\"" (json_escape w));
      pf "],\n    \"rows\": [\n";
      sep f.Edge_harness.Fsim_bench.rows (fun (row : Edge_harness.Fsim_bench.row) ->
          pf
            "      { \"config\": \"%s\", \"jit_blocks_s\": %.0f, \
             \"jit_instrs_s\": %.0f, \"interp_blocks_s\": %.0f, \
             \"interp_instrs_s\": %.0f, \"speedup\": %.2f }"
            (json_escape row.Edge_harness.Fsim_bench.config)
            row.Edge_harness.Fsim_bench.jit_blocks_s
            row.Edge_harness.Fsim_bench.jit_instrs_s
            row.Edge_harness.Fsim_bench.interp_blocks_s
            row.Edge_harness.Fsim_bench.interp_instrs_s
            row.Edge_harness.Fsim_bench.speedup);
      pf "\n    ]\n  },\n");
  pf "  \"geomean_speedups\": {\n";
  sep r.Edge_harness.Figure7.mean_speedups (fun (n, s) ->
      pf "    \"%s\": %.4f" (json_escape n) s);
  pf "\n  },\n";
  pf "  \"benches\": [\n";
  sep r.Edge_harness.Figure7.rows (fun row ->
      pf "    { \"bench\": \"%s\",\n"
        (json_escape row.Edge_harness.Figure7.bench);
      pf "      \"cycles\": { ";
      sep_inline row.Edge_harness.Figure7.cycles (fun (n, c) ->
          pf "\"%s\": %d" (json_escape n) c);
      pf " },\n      \"speedups\": { ";
      sep_inline row.Edge_harness.Figure7.speedups (fun (n, s) ->
          pf "\"%s\": %.4f" (json_escape n) s);
      pf " } }");
  pf "\n  ],\n";
  (* per-backend cycle tables: the top-level "benches" stays the
     default backend for compatibility; each entry here is one machine
     description's own sweep, diffed independently by bench_compare *)
  pf "  \"backends\": {\n";
  sep backends (fun (bname, (br : Edge_harness.Figure7.result)) ->
      pf "    \"%s\": {\n" (json_escape bname);
      pf "      \"geomean_speedups\": { ";
      sep_inline br.Edge_harness.Figure7.mean_speedups (fun (n, s) ->
          pf "\"%s\": %.4f" (json_escape n) s);
      pf " },\n      \"benches\": [\n";
      sep br.Edge_harness.Figure7.rows (fun row ->
          pf "        { \"bench\": \"%s\", \"cycles\": { "
            (json_escape row.Edge_harness.Figure7.bench);
          sep_inline row.Edge_harness.Figure7.cycles (fun (n, c) ->
              pf "\"%s\": %d" (json_escape n) c);
          pf " } }");
      pf "\n      ]\n    }");
  pf "\n  },\n";
  pf "  \"pass_counters\": {\n";
  sep r.Edge_harness.Figure7.pass_totals (fun (config, counters) ->
      pf "    \"%s\": { " (json_escape config);
      sep_inline counters (fun (k, v) -> pf "\"%s\": %d" (json_escape k) v);
      pf " }");
  pf "\n  },\n";
  pf "  \"errors\": [\n";
  sep r.Edge_harness.Figure7.errors (fun (w, e) ->
      pf "    { \"experiment\": \"%s\", \"error\": \"%s\" }" (json_escape w)
        (json_escape e));
  pf "\n  ]\n}\n";
  match open_out path with
  | oc ->
      output_string oc (Buffer.contents buf);
      close_out oc;
      Format.printf "wrote %s@." path
  | exception Sys_error e ->
      (* don't lose a finished sweep to an unwritable path *)
      Printf.eprintf "warning: could not write %s: %s\n%!" path e

(* one sweep shared by fig7/stats/all: `stats` used to re-run all 140
   experiments even when fig7 had just produced them *)
let run_sweep ?cache ~jobs ~json () =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = fig7 ?cache ~jobs () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let alloc =
    ( g1.Gc.minor_words -. g0.Gc.minor_words,
      g1.Gc.major_words -. g0.Gc.major_words )
  in
  if json <> "-" then begin
    (* the same sweep on each non-default backend: the machine axis of
       the experiment matrix, written as its own section so backend
       cycle drift is caught independently of the grid numbers *)
    let backends =
      List.map
        (fun (name, machine) ->
          Printf.eprintf "  backend %s sweep...\n%!" name;
          (name, fig7 ~progress:false ?cache ~machine ~jobs ()))
        [ ("inorder_edge", Edge_sim.Machine.inorder_edge) ]
    in
    (* functional-simulator throughput rides along in the same JSON so
       the committed numbers track the code; measured outside the timed
       sweep window *)
    Printf.eprintf "  fsim throughput (jit vs interpreter)...\n%!";
    let fsim = Some (Edge_harness.Fsim_bench.measure ()) in
    write_json json ~wall_s ~alloc ~fsim ~backends r
  end;
  Format.printf "sweep: %.1fs wall (-j %d; compile %.1fs, sim %.1fs of work)@."
    wall_s r.Edge_harness.Figure7.jobs r.Edge_harness.Figure7.compile_s
    r.Edge_harness.Figure7.sim_s;
  r

let pp_stats ppf (r : Edge_harness.Figure7.result) =
  Format.fprintf ppf
    "@[<v>Section 6 dynamic statistics (Intra vs Hyper, all benchmarks)@,\
     move instructions: -%.1f%% (paper: -14%%)@,\
     total instructions: -%.1f%% (paper: -2%%)@,\
     blocks executed: -%.1f%% (paper: -5%%)@,"
    (100.0 *. r.Edge_harness.Figure7.move_reduction)
    (100.0 *. r.Edge_harness.Figure7.instr_reduction)
    (100.0 *. r.Edge_harness.Figure7.block_reduction);
  Format.fprintf ppf "@,compiler pass counters (summed over benchmarks):@,";
  List.iter
    (fun (config, counters) ->
      Format.fprintf ppf "  %s:@," config;
      List.iter
        (fun (k, v) -> Format.fprintf ppf "    %-36s %10d@," k v)
        counters)
    r.Edge_harness.Figure7.pass_totals;
  Format.fprintf ppf "@]"

let run_genalg ?cache ~jobs () =
  match Edge_harness.Genalg_study.run ~jobs ?cache () with
  | Ok s -> Format.printf "%a@." Edge_harness.Genalg_study.pp s
  | Error e -> Format.printf "genalg: error %s@." e

let run_ablation ?cache ~jobs () =
  let entries, errors = Edge_harness.Ablation.run ~jobs ?cache () in
  Format.printf "%a@." Edge_harness.Ablation.pp entries;
  List.iter (fun (w, e) -> Format.printf "error %s: %s@." w e) errors

(* a deliberately tiny sweep (1 workload x 2 configs) across 2 domains:
   exercises the pool, the compile memo and the deterministic reassembly
   in a couple of seconds *)
let run_smoke ?cache () =
  let w =
    match Edge_workloads.Registry.find "tblook01" with
    | Some w -> w
    | None -> failwith "smoke: tblook01 missing from registry"
  in
  let configs =
    List.filter
      (fun (n, _) -> n = "Hyper" || n = "Both")
      Dfp.Config.all_paper_configs
  in
  let t0 = Unix.gettimeofday () in
  let r = Edge_harness.Figure7.run ~benches:[ w ] ~configs ~jobs:2 ?cache () in
  Format.printf "%a@." Edge_harness.Figure7.pp r;
  (* raw counts, one per line: `make perf-smoke` diffs these between a
     cold and a warm-cache run *)
  List.iter
    (fun row ->
      List.iter
        (fun (n, c) ->
          Format.printf "cycles %s/%s = %d@." row.Edge_harness.Figure7.bench n
            c)
        row.Edge_harness.Figure7.cycles)
    r.Edge_harness.Figure7.rows;
  Format.printf "smoke: %.2fs wall (-j 2)@." (Unix.gettimeofday () -. t0);
  if r.Edge_harness.Figure7.errors <> [] then exit 1

(* Bechamel microbenchmarks: one Test.make per regenerated artifact,
   measuring the machinery that produces it on a small representative
   input. *)
let micro_tests () =
  let open Bechamel in
  let w = Option.get (Edge_workloads.Registry.find "tblook01") in
  let both =
    match Edge_harness.Experiment.compile w Dfp.Config.both with
    | Ok c -> c
    | Error e -> failwith e
  in
  let run_functional () =
    let mem = Edge_isa.Mem.create ~size:w.Edge_workloads.Workload.mem_size in
    let args = w.Edge_workloads.Workload.setup mem in
    let regs = Array.make 128 0L in
    List.iteri (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v) args;
    match Edge_sim.Functional.run both.Dfp.Driver.program ~regs ~mem with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let run_cycle () =
    let mem = Edge_isa.Mem.create ~size:w.Edge_workloads.Workload.mem_size in
    let args = w.Edge_workloads.Workload.setup mem in
    let regs = Array.make 128 0L in
    List.iteri (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v) args;
    let placement n =
      match List.assoc_opt n both.Dfp.Driver.placements with
      | Some p -> p
      | None -> [||]
    in
    match
      Edge_sim.Cycle_sim.run ~placement both.Dfp.Driver.program ~regs ~mem
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let compile_one () =
    match Edge_harness.Experiment.compile w Dfp.Config.both with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let genalg_point () =
    match
      Edge_harness.Experiment.run_one Edge_workloads.Registry.genalg
        ("Both", Dfp.Config.both)
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let ablation_point () =
    let machine =
      { Edge_sim.Machine.default with Edge_sim.Machine.early_termination = false }
    in
    match Edge_harness.Experiment.run_one ~machine w ("Both", Dfp.Config.both) with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  [
    Test.make ~name:"fig7:compile" (Staged.stage compile_one);
    Test.make ~name:"fig7:functional-sim" (Staged.stage run_functional);
    Test.make ~name:"fig7:cycle-sim" (Staged.stage run_cycle);
    Test.make ~name:"sec6-stats:cycle-sim" (Staged.stage run_cycle);
    Test.make ~name:"genalg-study:point" (Staged.stage genalg_point);
    Test.make ~name:"ablation:point" (Staged.stage ablation_point);
  ]

let run_micro () =
  let open Bechamel in
  let tests = micro_tests () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      Hashtbl.iter
        (fun name result ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock result
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Format.printf "%-28s %12.0f ns/run@." name est
          | _ -> Format.printf "%-28s (no estimate)@." name)
        results)
    tests

let usage () =
  Printf.eprintf
    "usage: main.exe [fig7|stats|genalg|ablation|smoke|micro|all] [-j N] \
     [--json PATH] [--no-cache] [--cache-dir DIR] [--check]\n";
  exit 1

let () =
  let mode = ref "all" in
  let jobs = ref (Edge_parallel.Pool.default_jobs ()) in
  let json = ref "BENCH_fig7.json" in
  let use_cache = ref true in
  let cache_dir = ref "_cache" in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ -> usage ())
    | "--json" :: p :: rest ->
        json := p;
        parse rest
    | "--no-cache" :: rest ->
        use_cache := false;
        parse rest
    | "--cache-dir" :: d :: rest ->
        cache_dir := d;
        parse rest
    | "--check" :: rest ->
        (* per-pass static verifier on every compile (also: DFP_CHECK=1);
           checked runs bypass the persistent result cache *)
        Edge_check.Check.set_enabled true;
        parse rest
    | m :: rest when String.length m > 0 && m.[0] <> '-' ->
        mode := m;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = !jobs and json = !json in
  let cache =
    if not !use_cache then None
    else
      match Edge_parallel.Disk_cache.create ~dir:!cache_dir () with
      | c -> Some c
      | exception Sys_error e ->
          Printf.eprintf "warning: cache disabled: %s\n%!" e;
          None
  in
  let report_cache () =
    match cache with
    | Some c ->
        Format.printf "cache: %d hits, %d misses (%s)@."
          (Edge_parallel.Disk_cache.hits c)
          (Edge_parallel.Disk_cache.misses c)
          (Edge_parallel.Disk_cache.dir c)
    | None -> ()
  in
  match !mode with
  | "fig7" ->
      let r = run_sweep ?cache ~jobs ~json () in
      Format.printf "%a@." Edge_harness.Figure7.pp r;
      report_cache ()
  | "stats" ->
      let r = run_sweep ?cache ~jobs ~json () in
      Format.printf "%a@." pp_stats r
  | "genalg" -> run_genalg ?cache ~jobs ()
  | "ablation" -> run_ablation ?cache ~jobs ()
  | "smoke" ->
      run_smoke ?cache ();
      report_cache ()
  | "micro" -> run_micro ()
  | "all" ->
      Format.printf "== Figure 7 ==@.";
      let r = run_sweep ?cache ~jobs ~json () in
      Format.printf "%a@." Edge_harness.Figure7.pp r;
      (* the Section 6 numbers come from the same sweep result: no
         second pass over the 140 experiments *)
      Format.printf "@.== Section 6 dynamic statistics ==@.";
      Format.printf "%a@." pp_stats r;
      Format.printf "@.== genalg case study (Section 5.3 / Figure 6) ==@.";
      run_genalg ?cache ~jobs ();
      Format.printf "@.== ablations ==@.";
      run_ablation ?cache ~jobs ();
      report_cache ()
  | _ -> usage ()
