(* Arena-vs-fresh differential property.

   The cycle simulator's frame arena (recycled per-frame operand/state
   arrays) is a pure allocation strategy: it must be observationally
   invisible. Every corpus kernel and 50 fixed-seed generated kernels
   are compiled under every oracle configuration and cycle-simulated
   twice — once with the pooled arena (the default) and once with
   fresh per-block allocation — and the two runs must agree exactly on
   the return value, the final memory image, the committed-store
   count, and every [Stats] counter. *)

module Fz = Edge_fuzz
module Conv = Edge_isa.Conventions

type outcome = {
  ret : int64;
  mem : Edge_isa.Mem.t;
  stores : int;
  stats : Edge_sim.Stats.t option;
  error : string option;
}

let run_cycle ~arena (c : Dfp.Driver.compiled) : outcome =
  let regs = Array.make 128 0L in
  List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) Fz.Gen.default_args;
  let mem = Fz.Gen.default_mem () in
  let placement n =
    match List.assoc_opt n c.Dfp.Driver.placements with
    | Some p -> p
    | None -> [||]
  in
  match
    Edge_sim.Cycle_sim.run ~placement ~arena c.Dfp.Driver.program ~regs ~mem
  with
  | Ok stats ->
      {
        ret = regs.(Conv.result_reg);
        mem;
        stores = Edge_isa.Mem.store_count mem;
        stats = Some stats;
        error = None;
      }
  | Error e -> { ret = 0L; mem; stores = 0; stats = None; error = Some e }

let check_agree ~label (pooled : outcome) (fresh : outcome) =
  match (pooled.error, fresh.error) with
  | Some ep, Some ef ->
      (* both fault: the diagnostic must not depend on the allocator *)
      Alcotest.(check string) (label ^ ": error text") ep ef
  | Some e, None | None, Some e ->
      Alcotest.failf "%s: only one allocation mode errored: %s" label e
  | None, None ->
      Alcotest.(check int64) (label ^ ": return value") pooled.ret fresh.ret;
      if not (Edge_isa.Mem.equal pooled.mem fresh.mem) then
        Alcotest.failf "%s: memory images differ" label;
      Alcotest.(check int)
        (label ^ ": committed stores")
        pooled.stores fresh.stores;
      if pooled.stats <> fresh.stats then
        Alcotest.failf "%s: stats differ:@.arena: %a@.fresh: %a" label
          (Fmt.option Edge_sim.Stats.pp)
          pooled.stats
          (Fmt.option Edge_sim.Stats.pp)
          fresh.stats

let check_kernel ~label (ast : Edge_lang.Ast.kernel) =
  List.iter
    (fun (cname, config) ->
      match Fz.Oracle.compile ast config with
      | Error e -> Alcotest.failf "%s/%s: %s" label cname e
      | Ok compiled ->
          check_agree
            ~label:(Printf.sprintf "%s/%s" label cname)
            (run_cycle ~arena:true compiled)
            (run_cycle ~arena:false compiled))
    Fz.Oracle.configs

let corpus_case (name, src) =
  Alcotest.test_case ("arena corpus " ^ name) `Quick (fun () ->
      match Edge_lang.Parser.parse src with
      | Error e -> Alcotest.failf "%s: parse: %s" name e
      | Ok ast -> check_kernel ~label:name ast)

(* seeds far from test_diff's (1..) and test_fuzz's (10_000..) *)
let generated () =
  for i = 0 to 49 do
    let seed = 20_000 + i in
    let size = Fz.Gen.size_for ~min_size:6 ~max_size:24 i in
    check_kernel
      ~label:(Printf.sprintf "seed %d size %d" seed size)
      (Fz.Gen.generate ~seed ~size)
  done

let tests =
  List.map corpus_case (Fz.Corpus.load_dir "corpus")
  @ [ Alcotest.test_case "arena 50 fixed seeds" `Quick generated ]
