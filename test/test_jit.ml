(* JIT-vs-interpreter differential property.

   The threaded-code block JIT ([Edge_sim.Block_jit]) is a pure
   execution strategy for the functional simulator: it must be
   observationally identical to the reference token-pushing
   interpreter. Every corpus kernel and 50 fixed-seed generated
   kernels are compiled under every oracle configuration and run
   twice — once through the JIT (the default) and once through the
   interpreter ([~jit:false]) — and the two runs must agree exactly on
   the return value, the final memory image, the committed-store
   count, every [Stats] counter, and the error text when either
   faults.

   Two extra cases cover the corners the sweep misses: a hand-built
   block whose entry fanout overflows the interpreter's pending-token
   FIFO ring (initial capacity 64, must grow), and a
   [DFP_ARENA_DEBUG] cycle-simulator run with the JIT enabled, so the
   arena cross-check and the JIT'd functional verification are
   exercised together. *)

module Fz = Edge_fuzz
module Conv = Edge_isa.Conventions
module I = Edge_isa.Instr
module T = Edge_isa.Target
module O = Edge_isa.Opcode
module B = Edge_isa.Block

type outcome = {
  ret : int64;
  mem : Edge_isa.Mem.t;
  stores : int;
  stats : Edge_sim.Stats.t option;
  error : string option;
}

let run_fsim ~jit (program : Edge_isa.Program.t) : outcome =
  let regs = Array.make Conv.num_regs 0L in
  List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) Fz.Gen.default_args;
  let mem = Fz.Gen.default_mem () in
  match Edge_sim.Functional.run ~jit program ~regs ~mem with
  | Ok stats ->
      {
        ret = regs.(Conv.result_reg);
        mem;
        stores = Edge_isa.Mem.store_count mem;
        stats = Some stats;
        error = None;
      }
  | Error e -> { ret = 0L; mem; stores = 0; stats = None; error = Some e }

let check_agree ~label (jit : outcome) (interp : outcome) =
  match (jit.error, interp.error) with
  | Some ej, Some ei ->
      (* both fail: the diagnostic must not depend on the execution path *)
      Alcotest.(check string) (label ^ ": error text") ei ej
  | Some e, None | None, Some e ->
      Alcotest.failf "%s: only one execution path errored: %s" label e
  | None, None ->
      Alcotest.(check int64) (label ^ ": return value") interp.ret jit.ret;
      if not (Edge_isa.Mem.equal jit.mem interp.mem) then
        Alcotest.failf "%s: memory images differ" label;
      Alcotest.(check int)
        (label ^ ": committed stores")
        interp.stores jit.stores;
      if jit.stats <> interp.stats then
        Alcotest.failf "%s: stats differ:@.jit: %a@.interp: %a" label
          (Fmt.option Edge_sim.Stats.pp)
          jit.stats
          (Fmt.option Edge_sim.Stats.pp)
          interp.stats

let check_kernel ~label (ast : Edge_lang.Ast.kernel) =
  List.iter
    (fun (cname, config) ->
      match Fz.Oracle.compile ast config with
      | Error e -> Alcotest.failf "%s/%s: %s" label cname e
      | Ok compiled ->
          let program = compiled.Dfp.Driver.program in
          check_agree
            ~label:(Printf.sprintf "%s/%s" label cname)
            (run_fsim ~jit:true program)
            (run_fsim ~jit:false program))
    Fz.Oracle.configs

let corpus_case (name, src) =
  Alcotest.test_case ("jit corpus " ^ name) `Quick (fun () ->
      match Edge_lang.Parser.parse src with
      | Error e -> Alcotest.failf "%s: parse: %s" name e
      | Ok ast -> check_kernel ~label:name ast)

(* seeds far from test_diff's (1..), test_fuzz's (10_000..) and
   test_arena's (20_000..) *)
let generated () =
  for i = 0 to 49 do
    let seed = 30_000 + i in
    let size = Fz.Gen.size_for ~min_size:6 ~max_size:24 i in
    check_kernel
      ~label:(Printf.sprintf "seed %d size %d" seed size)
      (Fz.Gen.generate ~seed ~size)
  done

(* Widest-possible entry fanout: the interpreter seeds all register
   read targets before draining any, so 32 reads x 2 targets queue 64
   pending tokens — exactly the FIFO ring's initial capacity — and the
   first 0-operand seed instruction's result is the 65th push, which
   forces the ring to grow mid-block. Regression for the ring's
   dynamic-growth path (a fixed-capacity ring drops or corrupts the
   overflowing delivery). *)
let wide_fanout () =
  (* ids: 0 = Movi seed, 1..31 = adds (read i-1 + itself), 32 = store
     fed by read 31, 33 = halt *)
  let instrs =
    Array.init 34 (fun id ->
        if id = 0 then
          I.make ~id ~opcode:O.Movi ~imm:5L ~targets:[ T.To_write 31 ] ()
        else if id <= 31 then
          I.make ~id ~opcode:(O.Iop O.Add)
            ~targets:[ T.To_write (id - 1) ]
            ()
        else if id = 32 then I.make ~id ~opcode:(O.St O.W8) ~lsid:0 ()
        else I.make ~id ~opcode:O.Halt ())
  in
  let reads =
    Array.init 32 (fun i ->
        let dest = if i < 31 then i + 1 else 32 in
        {
          B.rslot = i;
          reg = 2 + i;
          rtargets =
            [
              T.To_instr { id = dest; slot = T.Left };
              T.To_instr { id = dest; slot = T.Right };
            ];
        })
  in
  let writes = Array.init 32 (fun w -> { B.wslot = w; wreg = 64 + w }) in
  let b =
    {
      B.name = "wide";
      instrs;
      reads;
      writes;
      store_lsids = [ 0 ];
      exits = [| B.halt_exit |];
    }
  in
  let program =
    match Edge_isa.Program.make ~entry:"wide" [ b ] with
    | Ok p -> p
    | Error e -> Alcotest.failf "program: %s" e
  in
  (match Edge_isa.Program.validate program with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid program: %s" (String.concat "; " es));
  let run ~jit =
    let regs = Array.make Conv.num_regs 0L in
    for i = 0 to 31 do
      regs.(2 + i) <- Int64.of_int (i + 100)
    done;
    (* read 31 feeds the store's address and value; 8-byte aligned *)
    regs.(2 + 31) <- 128L;
    let mem = Edge_isa.Mem.create ~size:4096 in
    match Edge_sim.Functional.run ~jit program ~regs ~mem with
    | Ok _ -> (regs, mem)
    | Error e -> Alcotest.failf "wide fanout (jit=%b): %s" jit e
  in
  let jregs, jmem = run ~jit:true in
  let iregs, imem = run ~jit:false in
  Alcotest.(check bool) "register files agree" true (jregs = iregs);
  if not (Edge_isa.Mem.equal jmem imem) then
    Alcotest.failf "wide fanout: memory images differ";
  (* add 5 computed read4 + read4 = 208 into write slot 4 *)
  Alcotest.(check int64) "fanned-out add committed" 208L iregs.(64 + 4);
  Alcotest.(check int64) "seed write committed" 5L iregs.(64 + 31);
  Alcotest.(check int64) "store committed" 128L (Edge_isa.Mem.load_int imem 128)

(* Arena cross-check and JIT together: DFP_ARENA_DEBUG makes the cycle
   simulator assert each recycled frame prefix is indistinguishable
   from fresh arrays, and the JIT'd functional run provides the
   architectural reference. Registered last in the suite: putenv has
   no portable inverse, so the flag stays set for the rest of the
   process (it only adds assertions). *)
let arena_debug_cross_check () =
  Unix.putenv "DFP_ARENA_DEBUG" "1";
  Alcotest.(check bool) "jit is the default" true
    (Edge_sim.Functional.jit_enabled ());
  List.iter
    (fun (name, src) ->
      match Edge_lang.Parser.parse src with
      | Error e -> Alcotest.failf "%s: parse: %s" name e
      | Ok ast -> (
          match Fz.Oracle.compile ast Dfp.Config.both with
          | Error e -> Alcotest.failf "%s: %s" name e
          | Ok compiled ->
              let program = compiled.Dfp.Driver.program in
              let fsim = run_fsim ~jit:true program in
              let regs = Array.make Conv.num_regs 0L in
              List.iteri
                (fun i v -> regs.(Conv.param_reg i) <- v)
                Fz.Gen.default_args;
              let mem = Fz.Gen.default_mem () in
              let placement n =
                match List.assoc_opt n compiled.Dfp.Driver.placements with
                | Some p -> p
                | None -> [||]
              in
              (match
                 ( Edge_sim.Cycle_sim.run ~placement program ~regs ~mem,
                   fsim.error )
               with
              | Error _, Some _ ->
                  (* program fault: both simulators must report one; the
                     exact text is simulator-specific *)
                  ()
              | Error e, None ->
                  Alcotest.failf "%s: only the cycle sim faulted: %s" name e
              | Ok _, Some e ->
                  Alcotest.failf "%s: only the jit faulted: %s" name e
              | Ok _, None ->
                  Alcotest.(check int64)
                    (name ^ ": cycle vs jit return")
                    fsim.ret
                    regs.(Conv.result_reg);
                  if not (Edge_isa.Mem.equal fsim.mem mem) then
                    Alcotest.failf "%s: cycle vs jit memory differs" name)))
    (Fz.Corpus.load_dir "corpus")

let tests =
  List.map corpus_case (Fz.Corpus.load_dir "corpus")
  @ [
      Alcotest.test_case "jit 50 fixed seeds" `Quick generated;
      Alcotest.test_case "wide fanout grows the token ring" `Quick wide_fanout;
      Alcotest.test_case "arena debug cross-check with jit" `Quick
        arena_debug_cross_check;
    ]
