(* Mutation tests for the per-pass static verifier (lib/check).

   Each test starts from a hand-built, known-good block (or hyperblock)
   that both the lattice checker and the path enumerator accept, then
   injects one class of invariant violation and asserts the checker
   reports exactly that invariant at that location — including the five
   bug shapes PR 2's fuzzing originally found after codegen, re-injected
   here and attributed to the pass that historically produced them.

   The cross-validation group enforces the checker-vs-enumerator
   contract on real compiles: the polynomial checker never flags a
   block the exponential enumerator proves clean, and flags (or skips)
   every block the enumerator rejects. *)

module B = Edge_isa.Block
module I = Edge_isa.Instr
module O = Edge_isa.Opcode
module T = Edge_isa.Target
module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Check = Edge_check.Check
module Diag = Edge_check.Diag
module Validate = Edge_fuzz.Validate
module G = Test_support.Goldens

let ti id slot = T.To_instr { id; slot }
let tw w = T.To_write w

let mk ?(reads = []) ?(writes = 0) ?(lsids = []) name instrs =
  {
    B.name;
    instrs = Array.of_list instrs;
    reads = Array.of_list reads;
    writes =
      Array.init writes (fun wslot -> { B.wslot; wreg = 40 + wslot });
    store_lsids = lsids;
    exits = [| "@next" |];
  }

let read rslot reg rtargets = { B.rslot; reg; rtargets }

let keys (r : Check.result) =
  List.sort compare
    (List.map (fun (d : Diag.t) -> (Diag.invariant_name d.Diag.invariant, d.Diag.where)) r.Check.diags)

let expect_clean what (r : Check.result) =
  Alcotest.(check (list (pair string string))) (what ^ " clean") [] (keys r);
  Alcotest.(check int) (what ^ " not skipped") 0 r.Check.skipped

let expect what expected (r : Check.result) =
  Alcotest.(check (list (pair string string)))
    what (List.sort compare expected) (keys r);
  Alcotest.(check int) (what ^ " not skipped") 0 r.Check.skipped

let expect_pass what pass (r : Check.result) =
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check string) (what ^ " pass") pass d.Diag.pass)
    r.Check.diags

(* enumerator verdict, for agreeing-on-the-base sanity *)
let enum_clean what b =
  match Validate.block b with
  | Ok _ -> ()
  | Error es ->
      Alcotest.failf "%s: enumerator rejects the base block: %s" what
        (String.concat "; " es)

let enum_flags what b =
  match Validate.block b with
  | Ok true -> () (* skipped: checker being stricter is within contract *)
  | Ok false -> Alcotest.failf "%s: enumerator misses the mutation" what
  | Error _ -> ()

(* ---- base blocks ---------------------------------------------------- *)

(* a predicated diamond: one test fans out over Mov4 to two If_true /
   If_false arms for W0 and an If_true arm + If_false null for W1 *)
let diamond ?(flip = false) ?(drop_null = false) () =
  mk "diamond" ~writes:2
    ~reads:[ read 0 3 [ ti 1 T.Left ] ]
    [
      I.make ~id:0 ~opcode:O.Movi ~imm:0L ~targets:[ ti 1 T.Right ] ();
      I.make ~id:1 ~opcode:(O.Tst O.Eq) ~targets:[ ti 2 T.Left ] ();
      I.make ~id:2 ~opcode:O.Mov4
        ~targets:[ ti 3 T.Pred; ti 4 T.Pred; ti 5 T.Pred; ti 6 T.Pred ]
        ();
      I.make ~id:3 ~opcode:O.Movi ~pred:I.If_true ~imm:7L ~targets:[ tw 0 ] ();
      I.make ~id:4 ~opcode:O.Movi
        ~pred:(if flip then I.If_true else I.If_false)
        ~imm:9L ~targets:[ tw 0 ] ();
      I.make ~id:5 ~opcode:O.Movi ~pred:I.If_true ~imm:11L ~targets:[ tw 1 ]
        ();
      I.make ~id:6 ~opcode:O.Null ~pred:I.If_false
        ~targets:(if drop_null then [] else [ tw 1 ])
        ();
      I.make ~id:7 ~opcode:O.Bro ~exit_idx:0 ();
    ]

(* two unconditional stores; [dup] gives the second the first's lsid *)
let stores ?(dup = false) () =
  mk "stores" ~lsids:(if dup then [ 0 ] else [ 0; 1 ])
    [
      I.make ~id:0 ~opcode:O.Movi ~imm:64L ~targets:[ ti 2 T.Left ] ();
      I.make ~id:1 ~opcode:O.Movi ~imm:5L ~targets:[ ti 2 T.Right ] ();
      I.make ~id:2 ~opcode:(O.St O.W8) ~lsid:0 ();
      I.make ~id:3 ~opcode:O.Movi ~imm:72L ~targets:[ ti 5 T.Left ] ();
      I.make ~id:4 ~opcode:O.Movi ~imm:6L ~targets:[ ti 5 T.Right ] ();
      I.make ~id:5 ~opcode:(O.St O.W8) ~lsid:(if dup then 0 else 1) ();
      I.make ~id:6 ~opcode:O.Bro ~exit_idx:0 ();
    ]

(* a predicated store whose false path is resolved by a null marker;
   [lose_marker] drops the marker's target (the PR 2 null-store bug) *)
let null_store ?(lose_marker = false) () =
  mk "null_store" ~lsids:[ 0 ]
    ~reads:[ read 0 3 [ ti 1 T.Left ] ]
    [
      I.make ~id:0 ~opcode:O.Movi ~imm:0L ~targets:[ ti 1 T.Right ] ();
      I.make ~id:1 ~opcode:(O.Tst O.Eq) ~targets:[ ti 2 T.Left ] ();
      I.make ~id:2 ~opcode:O.Mov4 ~targets:[ ti 5 T.Pred; ti 6 T.Pred ] ();
      I.make ~id:3 ~opcode:O.Movi ~imm:64L ~targets:[ ti 5 T.Left ] ();
      I.make ~id:4 ~opcode:O.Movi ~imm:5L ~targets:[ ti 5 T.Right ] ();
      I.make ~id:5 ~opcode:(O.St O.W8) ~pred:I.If_true ~lsid:0 ();
      I.make ~id:6 ~opcode:O.Null ~pred:I.If_false
        ~targets:(if lose_marker then [] else [ ti 5 T.Left ])
        ();
      I.make ~id:7 ~opcode:O.Bro ~exit_idx:0 ();
    ]

(* a Mov4 fanout tree; [mixed] packs Left and Right consumers into one
   tree (the PR 2 mov4 packing bug) *)
let fanout ?(mixed = false) () =
  mk "fanout" ~writes:1
    [
      I.make ~id:0 ~opcode:O.Movi ~imm:3L ~targets:[ ti 1 T.Left ] ();
      I.make ~id:1 ~opcode:O.Mov4
        ~targets:
          (if mixed then [ ti 2 T.Left; ti 2 T.Right ] else [ ti 2 T.Left ])
        ();
      I.make ~id:2 ~opcode:(O.Iop O.Add) ~targets:[ tw 0 ] ();
      I.make ~id:3 ~opcode:O.Movi ~imm:5L
        ~targets:(if mixed then [] else [ ti 2 T.Right ])
        ();
      I.make ~id:4 ~opcode:O.Bro ~exit_idx:0 ();
    ]

(* I0's left operand is legally fed by a read; [collide] adds an
   instruction producer, hitting the reserved no-target encoding (the
   PR 2 I0.Left bug) *)
let reserved ?(collide = false) () =
  mk "reserved" ~writes:1
    ~reads:[ read 0 3 [ ti 0 T.Left ] ]
    [
      I.make ~id:0 ~opcode:(O.Un O.Mov) ~targets:[ tw 0 ] ();
      I.make ~id:1 ~opcode:O.Movi ~imm:5L
        ~targets:(if collide then [ ti 0 T.Left ] else [])
        ();
      I.make ~id:2 ~opcode:O.Bro ~exit_idx:0 ();
    ]

(* three correlated tests of the same register (one shared enumeration
   variable); [overlap] adds a second matching producer to I4's
   predicate, and [underivable] replaces I1's test with an add whose
   boolean value the lattice calls underivable *)
let merged ?(overlap = false) ?(underivable = false) () =
  mk "merged" ~writes:1
    ~reads:
      [ read 0 3 [ ti 1 T.Left; ti 2 T.Left ]; read 1 3 [ ti 3 T.Left; ti 4 T.Left ] ]
    [
      I.make ~id:0 ~opcode:O.Null ~pred:I.If_false ~targets:[ tw 0 ] ();
      I.make ~id:1
        ~opcode:(if underivable then O.Iopi O.Add else O.Tsti O.Eq)
        ~imm:0L ~targets:[ ti 4 T.Pred ] ();
      I.make ~id:2 ~opcode:(O.Tsti O.Eq) ~imm:0L
        ~targets:(if overlap then [ ti 4 T.Pred ] else [])
        ();
      I.make ~id:3 ~opcode:(O.Tsti O.Eq) ~imm:0L ~targets:[ ti 0 T.Pred ] ();
      I.make ~id:4 ~opcode:(O.Iopi O.Add) ~pred:I.If_true ~imm:1L
        ~targets:[ tw 0 ] ();
      I.make ~id:5 ~opcode:O.Bro ~exit_idx:0 ();
    ]

let bcheck b = Check.block ~pass:"codegen" b

(* ---- encoded-block mutations ---------------------------------------- *)

let bases_clean () =
  List.iter
    (fun b ->
      expect_clean b.B.name (bcheck b);
      enum_clean b.B.name b)
    [
      diamond (); stores (); null_store (); fanout (); reserved (); merged ();
    ]

let flipped_polarity () =
  let b = diamond ~flip:true () in
  expect "flipped polarity"
    [ ("double-delivery", "W0"); ("output-completeness", "W0") ]
    (bcheck b);
  enum_flags "flipped polarity" b

let dropped_null () =
  let b = diamond ~drop_null:true () in
  expect "dropped null" [ ("output-completeness", "W1") ] (bcheck b);
  enum_flags "dropped null" b

let duplicated_lsid () =
  let b = stores ~dup:true () in
  expect "duplicated lsid" [ ("lsid", "S0") ] (bcheck b);
  enum_flags "duplicated lsid" b

let mixed_slot_fanout () =
  let b = fanout ~mixed:true () in
  expect "mixed-slot fanout" [ ("fanout", "-") ] (bcheck b)

let nondisjoint_merge () =
  let b = merged ~overlap:true () in
  expect "non-disjoint merge" [ ("pred-or", "I4") ] (bcheck b);
  enum_flags "non-disjoint merge" b

let decoupled_predicate () =
  (* replacing I1's test with an add gives it a fresh enumeration
     variable (Gate no longer merges it with I3's test of the same
     register), so the two W0 arms stop being complementary: some
     assignments deliver twice, others starve the write *)
  let b = merged ~underivable:true () in
  expect "decoupled predicate"
    [ ("double-delivery", "W0"); ("output-completeness", "W0") ]
    (bcheck b);
  enum_flags "decoupled predicate" b

(* ---- the five historical PR 2 bugs, re-injected --------------------- *)

let pr2_merge_polarity () =
  (* opt_merge rebuilt hexits from a stale pre-flip snapshot, losing the
     flipped guard of sibling exits: both exits keep the same polarity *)
  let p = 0 in
  let mk_h pol2 =
    {
      Hb.hname = "hb";
      body = [];
      hexits =
        [
          { Hb.eguard = Some { Hb.gpol = true; gpreds = [ p ] };
            etarget = Some "a" };
          { Hb.eguard = Some { Hb.gpol = pol2; gpreds = [ p ] };
            etarget = Some "b" };
        ];
      houts = [];
    }
  in
  expect_clean "merge base" (Check.hblocks ~pass:"opt_merge" [ mk_h false ]);
  let r = Check.hblocks ~pass:"opt_merge" [ mk_h true ] in
  expect "merge polarity loss"
    [ ("branch", "exit"); ("branch", "exit") ]
    r;
  expect_pass "merge polarity loss" "opt_merge" r

let pr2_mov4_packing () =
  let r = Check.block ~pass:"codegen" (fanout ~mixed:true ()) in
  expect "mov4 packing" [ ("fanout", "-") ] r;
  expect_pass "mov4 packing" "codegen" r

let pr2_reserved_slot () =
  expect_clean "reserved base" (bcheck (reserved ()));
  let r = Check.block ~pass:"codegen" (reserved ~collide:true ()) in
  (* two diagnostics, both at I1: the explicit reserved-target rule and
     the round-trip mismatch (the target decodes away) *)
  expect "reserved I0.Left" [ ("encode", "I1"); ("encode", "I1") ] r;
  expect_pass "reserved I0.Left" "codegen" r

let pr2_null_store_marker () =
  let b = null_store ~lose_marker:true () in
  let r = Check.block ~pass:"codegen" b in
  expect "null-store marker" [ ("output-completeness", "S0") ] r;
  enum_flags "null-store marker" b

let pr2_sand_float_complement () =
  (* opt_sand synthesized complement chains across float compares; NaN
     makes (a < b) and (b <= a) non-complementary, which the checker
     models by never merging float compare variables *)
  let x = 10 and y = 11 and c1 = 12 and c2 = 13 in
  let mk_h fp cond2 =
    {
      Hb.hname = "hb";
      body =
        [
          { Hb.hop = Hb.Op (Tac.Cmp { dst = c1; cond = O.Lt; fp; a = Tac.T x; b = Tac.T y });
            guard = None };
          { Hb.hop = Hb.Op (Tac.Cmp { dst = c2; cond = cond2; fp; a = Tac.T x; b = Tac.T y });
            guard = None };
        ];
      hexits =
        [
          { Hb.eguard = Some { Hb.gpol = true; gpreds = [ c1 ] };
            etarget = Some "a" };
          { Hb.eguard = Some { Hb.gpol = true; gpreds = [ c2 ] };
            etarget = Some "b" };
        ];
      houts = [];
    }
  in
  (* integer complements share one variable: a sound partition *)
  expect_clean "int complement" (Check.hblocks ~pass:"opt_sand" [ mk_h false O.Ge ]);
  (* the same shape over floats must be flagged: NaN breaks it *)
  let r = Check.hblocks ~pass:"opt_sand" [ mk_h true O.Ge ] in
  expect "float complement"
    [ ("branch", "exit"); ("branch", "exit") ]
    r;
  expect_pass "float complement" "opt_sand" r

(* ---- cross-validation: checker vs enumerator on real compiles ------- *)

let compile_sources () =
  let kernels =
    List.map
      (fun n -> (n, G.kernel_source n))
      [ "pred_diamond"; "loop_accum"; "null_stores"; "sand_gate"; "break_path" ]
  in
  let generated =
    List.init 12 (fun i ->
        let seed = 100 + i in
        ( Printf.sprintf "gen%d" seed,
          Edge_fuzz.Pretty.kernel_to_string
            (Edge_fuzz.Gen.generate ~seed ~size:(10 + (3 * i))) ))
  in
  kernels @ generated

let cross_validation () =
  let checked = ref 0 in
  List.iter
    (fun (name, src) ->
      let ast =
        match Edge_lang.Parser.parse src with
        | Ok ast -> ast
        | Error e -> Alcotest.failf "%s: parse: %s" name e
      in
      List.iter
        (fun (cname, config) ->
          let cfg =
            match Edge_lang.Lower.lower ast with
            | Ok cfg -> cfg
            | Error e -> Alcotest.failf "%s: lower: %s" name e
          in
          match Dfp.Driver.compile_cfg ~check:false cfg config with
          | Error e -> Alcotest.failf "%s/%s: compile: %s" name cname e
          | Ok compiled ->
              List.iter
                (fun (_, b) ->
                  incr checked;
                  let lattice = Check.block ~pass:"codegen" b in
                  match Validate.block b with
                  | Ok false ->
                      (* enumerator proves the block clean: the checker
                         must not flag it (skipping is also a miss here
                         — the pipeline's blocks must all be in budget) *)
                      expect_clean
                        (Printf.sprintf "%s/%s/%s" name cname b.B.name)
                        lattice
                  | Ok true -> ()
                  | Error es ->
                      if lattice.Check.diags = [] && lattice.Check.skipped = 0
                      then
                        Alcotest.failf
                          "%s/%s/%s: cross-validation breach: enumerator \
                           flags (%s) but the lattice checker is clean"
                          name cname b.B.name (String.concat "; " es))
                compiled.Dfp.Driver.program.Edge_isa.Program.blocks)
        Edge_fuzz.Oracle.configs)
    (compile_sources ());
  Alcotest.(check bool) "nonempty corpus" true (!checked > 100)

let checked_compile_succeeds () =
  let src = G.kernel_source "pred_diamond" in
  let ast =
    match Edge_lang.Parser.parse src with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %s" e
  in
  List.iter
    (fun (cname, config) ->
      let cfg =
        match Edge_lang.Lower.lower ast with
        | Ok c -> c
        | Error e -> Alcotest.failf "lower: %s" e
      in
      match Dfp.Driver.compile_cfg ~check:true cfg config with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: checked compile failed: %s" cname e)
    Edge_fuzz.Oracle.configs

(* ---- satellites ------------------------------------------------------ *)

let skip_counting () =
  (* the diamond has one predicate variable: under max_vars 0 the
     enumerator skips it and says so, under the default it runs *)
  let b = diamond () in
  (match Validate.block ~max_vars:0 b with
  | Ok skipped -> Alcotest.(check bool) "skipped under 0" true skipped
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
  (match Validate.block b with
  | Ok skipped -> Alcotest.(check bool) "not skipped by default" false skipped
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
  let program =
    match
      Edge_isa.Program.make ~entry:"diamond" [ { b with B.exits = [| B.halt_exit |] } ]
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "program: %s" e
  in
  match Validate.program ~max_vars:0 program with
  | Ok n -> Alcotest.(check int) "program skip count" 1 n
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let diag_key_roundtrip () =
  let d =
    Diag.make ~pass:"opt_merge" ~block:"hb3" ~where:"exit1" Diag.Pred_or
      "two matching predicates"
  in
  (match Diag.parse_key (Diag.to_string d) with
  | Some (pass, inv) ->
      Alcotest.(check (pair string string))
        "key" ("opt_merge", "pred-or") (pass, inv)
  | None -> Alcotest.fail "parse_key failed on a rendered diagnostic");
  (match Diag.parse_key ("compile: " ^ Diag.to_string d ^ " (+2 more)") with
  | Some (pass, _) -> Alcotest.(check string) "embedded" "opt_merge" pass
  | None -> Alcotest.fail "parse_key failed on an embedded diagnostic");
  Alcotest.(check bool)
    "no key in plain errors" true
    (Diag.parse_key "compile: block has 131 instructions" = None)

let enable_switch () =
  let before = Check.enabled () in
  Check.set_enabled true;
  Alcotest.(check bool) "forced on" true (Check.enabled ());
  Alcotest.(check bool) "without_check turns off" false
    (Check.without_check (fun () -> Check.enabled ()));
  Alcotest.(check bool) "restored" true (Check.enabled ());
  Check.set_enabled before

let tests =
  [
    Alcotest.test_case "base blocks clean" `Quick bases_clean;
    Alcotest.test_case "mutation: flipped polarity" `Quick flipped_polarity;
    Alcotest.test_case "mutation: dropped null token" `Quick dropped_null;
    Alcotest.test_case "mutation: duplicated lsid" `Quick duplicated_lsid;
    Alcotest.test_case "mutation: mixed-slot fanout" `Quick mixed_slot_fanout;
    Alcotest.test_case "mutation: non-disjoint merge" `Quick nondisjoint_merge;
    Alcotest.test_case "mutation: decoupled predicate" `Quick
      decoupled_predicate;
    Alcotest.test_case "pr2: opt_merge polarity loss" `Quick pr2_merge_polarity;
    Alcotest.test_case "pr2: mov4 packing" `Quick pr2_mov4_packing;
    Alcotest.test_case "pr2: reserved I0.Left" `Quick pr2_reserved_slot;
    Alcotest.test_case "pr2: null-store marker" `Quick pr2_null_store_marker;
    Alcotest.test_case "pr2: sand float complement" `Quick
      pr2_sand_float_complement;
    Alcotest.test_case "cross-validation vs enumerator" `Slow cross_validation;
    Alcotest.test_case "checked compile succeeds" `Quick
      checked_compile_succeeds;
    Alcotest.test_case "enumerator skip counting" `Quick skip_counting;
    Alcotest.test_case "diagnostic key round-trip" `Quick diag_key_roundtrip;
    Alcotest.test_case "enable switch" `Quick enable_switch;
  ]
