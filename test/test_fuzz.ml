(* Fuzz-subsystem regression suite (lib/fuzz).

   Three layers: every kernel in test/corpus/ — minimized reproducers of
   past compiler bugs plus hand-written stress shapes — is replayed
   through the full differential oracle; a fixed-seed soak runs fresh
   generated programs through the same oracle; and the compiled
   artifacts of a representative workload slice are checked against the
   static block validator under every configuration. *)

module Fz = Edge_fuzz

let corpus = Fz.Corpus.load_dir "corpus"

let corpus_present () =
  if List.length corpus < 6 then
    Alcotest.failf "corpus has %d entries; expected the checked-in set"
      (List.length corpus)

let replay (name, src) =
  Alcotest.test_case ("corpus " ^ name) `Quick (fun () ->
      match Fz.Fuzz.replay_source ~name src with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s" e)

(* 200 fresh programs through every configuration, both simulators and
   the validator; seeds far from test_diff's to extend coverage, small
   sizes to keep the suite fast. Deterministic for any job count. *)
let soak () =
  let report =
    Fz.Fuzz.run ~jobs:4 ~min_size:4 ~max_size:14 ~seed:10_000 ~n:200 ()
  in
  match report.Fz.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d failures; first: %a"
        (List.length report.Fz.Fuzz.failures)
        Fz.Fuzz.pp_failure f

let workload_slice =
  [ "genalg"; "ospf"; "bezier01"; "rspeed01"; "canrdr01"; "a2time01" ]

let workload_artifacts () =
  let workloads =
    List.filter
      (fun w -> List.mem w.Edge_workloads.Workload.name workload_slice)
      Edge_workloads.Registry.all
  in
  if workloads = [] then Alcotest.fail "workload slice resolved to nothing";
  match Fz.Fuzz.validate_workloads ~jobs:4 ~workloads () with
  | [] -> ()
  | (label, e) :: _ -> Alcotest.failf "%s: %s" label e

let tests =
  (Alcotest.test_case "corpus present" `Quick corpus_present
  :: List.map replay corpus)
  @ [
      Alcotest.test_case "soak 200 fixed seeds" `Quick soak;
      Alcotest.test_case "workload artifacts validate" `Quick
        workload_artifacts;
    ]
