let () =
  (* the per-pass static verifier is on for the whole suite: every
     compile in every test doubles as a checker smoke test *)
  Edge_check.Check.set_enabled true;
  Alcotest.run "dataflow_predication"
    [
      ("isa", Test_isa.tests);
      ("ir", Test_ir.tests);
      ("lang", Test_lang.tests);
      ("compiler", Test_compiler.tests);
      ("sim", Test_sim.tests);
      ("machine", Test_machine.tests);
      ("passes", Test_passes.tests);
      ("psi", Test_psi.tests);
      ("workloads", Test_workloads.tests);
      ("harness", Test_harness.tests);
      ("parallel", Test_parallel.tests);
      ("serve", Test_serve.tests);
      ("diff", Test_diff.tests);
      ("fuzz", Test_fuzz.tests);
      ("arena", Test_arena.tests);
      ("obs", Test_obs.tests);
      ("check", Test_check.tests);
      (* last: leaves DFP_ARENA_DEBUG set for the process *)
      ("jit", Test_jit.tests);
    ]
