module O = Edge_isa.Opcode
module I = Edge_isa.Instr
module T = Edge_isa.Target
module Tok = Edge_isa.Token
module B = Edge_isa.Block
module E = Edge_isa.Encode

let check = Alcotest.(check bool)

let opcode_roundtrip () =
  List.iter
    (fun op ->
      match O.of_mnemonic (O.mnemonic op) with
      | Some op' -> check (O.mnemonic op) true (O.equal op op')
      | None -> Alcotest.failf "mnemonic %s not parsed" (O.mnemonic op))
    O.all

let opcode_classes () =
  check "movi unpredicated producer" true (O.produces_value O.Movi);
  check "geni not predicatable" false (O.predicatable O.Geni);
  check "mov4 not predicatable" false (O.predicatable O.Mov4);
  check "store no targets" true (O.max_targets (O.St O.W8) = 0);
  check "imm forms have 1 target" true (O.max_targets (O.Iopi O.Add) = 1);
  check "reg forms have 2 targets" true (O.max_targets (O.Iop O.Add) = 2);
  check "mov4 has 4 targets" true (O.max_targets O.Mov4 = 4);
  check "div is slow" true (O.latency (O.Iop O.Div) > O.latency (O.Iop O.Add));
  check "branches produce no value" false (O.produces_value O.Bro)

let target_roundtrip () =
  for id = 0 to 127 do
    List.iter
      (fun slot ->
        let t = T.To_instr { id; slot } in
        match T.decode (T.encode t) with
        | Some t' -> check "target" true (T.equal t t')
        | None -> Alcotest.fail "decode failed")
      [ T.Left; T.Right; T.Pred ]
  done;
  for w = 0 to 31 do
    let t = T.To_write w in
    match T.decode (T.encode t) with
    | Some t' -> check "write target" true (T.equal t t')
    | None -> Alcotest.fail "decode failed"
  done

let token_semantics () =
  check "true predicate" true (Tok.as_predicate Tok.true_predicate);
  check "false predicate" false (Tok.as_predicate Tok.false_predicate);
  check "even payload is false" false (Tok.as_predicate (Tok.of_int64 42L));
  check "odd payload is true" true (Tok.as_predicate (Tok.of_int64 7L));
  check "exception reads as false (4.4)" false
    (Tok.as_predicate (Tok.with_exc (Tok.of_int64 1L)));
  let t = Tok.taint (Tok.with_exc (Tok.of_int64 1L)) (Tok.of_int64 9L) in
  check "taint propagates exc" true t.Tok.exc;
  check "taint keeps payload" true (t.Tok.payload = 9L)

let pred_matching () =
  check "if_true matches true" true
    (I.predicate_matches I.If_true Tok.true_predicate);
  check "if_true rejects false" false
    (I.predicate_matches I.If_true Tok.false_predicate);
  check "if_false matches false" true
    (I.predicate_matches I.If_false Tok.false_predicate);
  check "unpredicated matches nothing" false
    (I.predicate_matches I.Unpredicated Tok.true_predicate);
  check "exc predicate matches if_false (4.4)" true
    (I.predicate_matches I.If_false (Tok.with_exc (Tok.of_int64 1L)))

let sample_instrs =
  [
    I.make ~id:3 ~opcode:(O.Tst O.Eq)
      ~targets:
        [ T.To_instr { id = 57; slot = T.Pred }; T.To_instr { id = 58; slot = T.Pred } ]
      ();
    I.make ~id:57 ~opcode:(O.Iopi O.Add) ~pred:I.If_true ~imm:2L
      ~targets:[ T.To_instr { id = 60; slot = T.Left } ]
      ();
    I.make ~id:58 ~opcode:(O.Iopi O.Add) ~pred:I.If_false ~imm:3L
      ~targets:[ T.To_instr { id = 60; slot = T.Left } ]
      ();
    I.make ~id:60 ~opcode:(O.Iopi O.Sll) ~imm:1L
      ~targets:[ T.To_write 0 ]
      ();
    I.make ~id:7 ~opcode:(O.Ld O.W8) ~imm:(-8L) ~lsid:2
      ~targets:[ T.To_instr { id = 60; slot = T.Left } ]
      ();
    I.make ~id:8 ~opcode:(O.St O.W4) ~imm:255L ~lsid:3 ();
    I.make ~id:9 ~opcode:O.Bro ~pred:I.If_false ~exit_idx:1 ();
    I.make ~id:10 ~opcode:O.Geni ~imm:0x1234_5678_9ABC_DEFFL
      ~targets:[ T.To_instr { id = 60; slot = T.Right } ]
      ();
    I.make ~id:11 ~opcode:O.Mov4
      ~targets:
        [
          T.To_instr { id = 57; slot = T.Pred };
          T.To_instr { id = 58; slot = T.Pred };
          T.To_instr { id = 60; slot = T.Pred };
        ]
      ();
    I.make ~id:12 ~opcode:O.Null ~pred:I.If_true
      ~targets:[ T.To_write 3 ]
      ();
  ]

let encode_roundtrip () =
  List.iter
    (fun i ->
      match E.encode i with
      | Error e -> Alcotest.failf "encode I%d: %s" i.I.id e
      | Ok words -> (
          check "word count" true (List.length words = E.words i);
          match E.decode ~id:i.I.id words with
          | Error e -> Alcotest.failf "decode I%d: %s" i.I.id e
          | Ok (i', rest) ->
              check "all words consumed" true (rest = []);
              if not (I.equal i i') then
                Alcotest.failf "roundtrip I%d: %a vs %a" i.I.id I.pp i I.pp i'))
    sample_instrs

let encode_rejects_wide_imm () =
  let i =
    I.make ~id:1 ~opcode:O.Movi ~imm:300L ~targets:[ T.To_write 0 ] ()
  in
  match E.encode i with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "300 must not fit a 9-bit immediate"

(* a tiny well-formed block: Figure 2 of the paper *)
let figure2_block () =
  {
    B.name = "fig2";
    instrs =
      [|
        I.make ~id:0 ~opcode:O.Movi ~imm:1L
          ~targets:[ T.To_instr { id = 2; slot = T.Left } ]
          ();
        I.make ~id:1 ~opcode:O.Movi ~imm:1L
          ~targets:[ T.To_instr { id = 2; slot = T.Right } ]
          ();
        I.make ~id:2 ~opcode:(O.Tst O.Eq)
          ~targets:
            [
              T.To_instr { id = 3; slot = T.Pred };
              T.To_instr { id = 4; slot = T.Pred };
            ]
          ();
        I.make ~id:3 ~opcode:(O.Iopi O.Add) ~pred:I.If_true ~imm:2L
          ~targets:[ T.To_instr { id = 5; slot = T.Left } ]
          ();
        I.make ~id:4 ~opcode:(O.Iopi O.Add) ~pred:I.If_false ~imm:3L
          ~targets:[ T.To_instr { id = 5; slot = T.Left } ]
          ();
        I.make ~id:5 ~opcode:(O.Iopi O.Sll) ~imm:1L ~targets:[ T.To_write 0 ] ();
        I.make ~id:6 ~opcode:O.Movi ~imm:7L
          ~targets:[ T.To_instr { id = 3; slot = T.Left } ]
          ();
        I.make ~id:7 ~opcode:O.Movi ~imm:7L
          ~targets:[ T.To_instr { id = 4; slot = T.Left } ]
          ();
        I.make ~id:8 ~opcode:O.Halt ();
      |];
    reads = [||];
    writes = [| { B.wslot = 0; wreg = 5 } |];
    store_lsids = [];
    exits = [| B.halt_exit |];
  }

let block_validate_ok () =
  match B.validate (figure2_block ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let block_validate_catches () =
  let b = figure2_block () in
  (* break it: predicate delivered to an unpredicated instruction *)
  let bad =
    {
      b with
      B.instrs =
        Array.map
          (fun (i : I.t) ->
            if i.I.id = 2 then
              {
                i with
                I.targets = [ T.To_instr { id = 5; slot = T.Pred } ];
              }
            else i)
          b.B.instrs;
    }
  in
  (match B.validate bad with
  | Ok () -> Alcotest.fail "must reject predicate to unpredicated"
  | Error _ -> ());
  let no_branch =
    {
      b with
      B.instrs = Array.sub b.B.instrs 0 8;
    }
  in
  (match B.validate no_branch with
  | Ok () -> Alcotest.fail "must reject missing exit"
  | Error _ -> ());
  let too_many =
    { b with B.store_lsids = List.init 33 Fun.id }
  in
  match B.validate too_many with
  | Ok () -> Alcotest.fail "must reject 33 store lsids"
  | Error _ -> ()

let mem_semantics () =
  let m = Edge_isa.Mem.create ~size:256 in
  Edge_isa.Mem.store_int m 8 0x1122334455667788L;
  check "load w8" true (Edge_isa.Mem.load_int m 8 = 0x1122334455667788L);
  let t = Edge_isa.Mem.load m ~width:O.W1 ~addr:15L in
  check "byte sign extend" true (t.Tok.payload = 0x11L);
  Edge_isa.Mem.store_int m 16 0xFFL;
  let t = Edge_isa.Mem.load m ~width:O.W1 ~addr:16L in
  check "byte 0xff sign extends to -1" true (t.Tok.payload = -1L);
  let oob = Edge_isa.Mem.load m ~width:O.W8 ~addr:9999L in
  check "out of range sets exc" true oob.Tok.exc;
  let mis = Edge_isa.Mem.load m ~width:O.W8 ~addr:9L in
  check "misaligned sets exc" true mis.Tok.exc;
  check "oob store rejected" true
    (Edge_isa.Mem.store m ~width:O.W8 ~addr:9999L 1L = Error ())

let program_checks () =
  let b = figure2_block () in
  (match Edge_isa.Program.make ~entry:"fig2" [ b ] with
  | Ok p -> (
      match Edge_isa.Program.validate p with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s" (String.concat ";" es))
  | Error e -> Alcotest.failf "%s" e);
  (match Edge_isa.Program.make ~entry:"nope" [ b ] with
  | Ok _ -> Alcotest.fail "missing entry accepted"
  | Error _ -> ());
  match Edge_isa.Program.make ~entry:"fig2" [ b; b ] with
  | Ok _ -> Alcotest.fail "duplicate names accepted"
  | Error _ -> ()

let qcheck_target =
  QCheck.Test.make ~name:"target encode/decode" ~count:500
    QCheck.(pair (int_bound 127) (int_bound 3))
    (fun (id, s) ->
      let t =
        match s with
        | 0 -> T.To_instr { id; slot = T.Left }
        | 1 -> T.To_instr { id; slot = T.Right }
        | 2 -> T.To_instr { id; slot = T.Pred }
        | _ -> T.To_write (id land 31)
      in
      match T.decode (T.encode t) with
      | Some t' -> T.equal t t'
      | None -> false)

let qcheck_mem =
  QCheck.Test.make ~name:"mem store/load roundtrip" ~count:500
    QCheck.(pair (int_bound 30) int64)
    (fun (slot, v) ->
      let m = Edge_isa.Mem.create ~size:256 in
      let addr = Int64.of_int (slot * 8) in
      (match Edge_isa.Mem.store m ~width:O.W8 ~addr v with
      | Ok () -> ()
      | Error () -> failwith "store");
      (Edge_isa.Mem.load m ~width:O.W8 ~addr).Tok.payload = v)


(* assembler: the Block/Program printers round-trip through Asm.parse *)
let asm_roundtrip_block () =
  let b = figure2_block () in
  let text = Format.asprintf "%a" B.pp b in
  match Edge_isa.Asm.parse_block text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok b2 ->
      let text2 = Format.asprintf "%a" B.pp b2 in
      Alcotest.(check string) "roundtrip" text text2

let asm_hand_written () =
  let src =
    "program (entry main)\n\
     block main\n\
     \  R0  read g2 -> I0.L\n\
     \  I0   tlti #5 -> I1.L\n\
     \  I1   mov -> I2.P -> I3.P\n\
     \  I2   movi_t #10 -> W0\n\
     \  I3   movi_f #20 -> W0\n\
     \  I4   halt\n\
     \  W0  write g1\n"
  in
  match Edge_isa.Asm.parse_program src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p ->
      (match Edge_isa.Program.validate p with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s" (String.concat "; " es));
      List.iter
        (fun (v, expect) ->
          let regs = Array.make 128 0L in
          regs.(2) <- v;
          let mem = Edge_isa.Mem.create ~size:64 in
          match Edge_sim.Functional.run p ~regs ~mem with
          | Ok _ -> check "asm semantics" true (regs.(1) = expect)
          | Error e -> Alcotest.failf "run: %s" e)
        [ (3L, 10L); (9L, 20L) ]

let asm_rejects () =
  List.iter
    (fun src ->
      match Edge_isa.Asm.parse_program src with
      | Ok _ -> Alcotest.failf "must reject: %s" src
      | Error _ -> ())
    [
      "";
      "block b\n  I0 frobnicate -> W0\n";
      "block b\n  I0 movi #xyz -> W0\n";
      "block b\n  I0 movi #1 -> Q3\n";
      "  I0 movi #1 -> W0\n" (* directive outside block *);
    ]

let grid_properties () =
  let module Md = Edge_isa.Machine_desc in
  let m = Md.default in
  check "16 tiles" true (Md.num_tiles m = 16);
  check "128 slots" true (Md.num_tiles m * m.Md.slots_per_tile = 128);
  check "hops symmetric" true (Md.hops m 3 12 = Md.hops m 12 3);
  check "self distance" true (Md.hops m 5 5 = 0);
  check "corner distance" true (Md.hops m 0 15 = 6);
  check "reg edge at top" true (Md.reg_access_hops m 0 < Md.reg_access_hops m 12);
  check "mem edge at left" true
    (Md.mem_access_hops m 0 < Md.mem_access_hops m 3);
  (* the in-order preset is a single centralized tile *)
  check "inorder is one tile" true (Md.num_tiles Md.inorder_edge = 1);
  check "inorder holds a block" true
    (Md.inorder_edge.Md.slots_per_tile >= Edge_isa.Block.max_instrs);
  check "inorder has no network" true (Md.hops Md.inorder_edge 0 0 = 0);
  check "presets validate" true
    (List.for_all (fun (_, p) -> Md.validate p = Ok ()) Md.presets)


(* random well-formed instructions round-trip the binary encoding *)
let qcheck_encode =
  QCheck.Test.make ~name:"instruction encode/decode" ~count:800
    QCheck.(quad (int_bound 61) (int_bound 2) (int_range (-256) 255) (int_bound 127))
    (fun (opidx, predsel, imm, tgt) ->
      let opcode = List.nth O.all opidx in
      let pred =
        if not (O.predicatable opcode) then I.Unpredicated
        else
          match predsel with
          | 0 -> I.Unpredicated
          | 1 -> I.If_true
          | _ -> I.If_false
      in
      let imm = if O.has_immediate opcode then Int64.of_int imm else 0L in
      let lsid =
        match opcode with O.Ld _ | O.St _ -> tgt land 31 | _ -> -1
      in
      let exit_idx = match opcode with O.Bro -> tgt land 31 | _ -> -1 in
      let targets =
        if O.max_targets opcode >= 1 then
          [ T.To_instr { id = max 1 tgt; slot = T.Left } ]
        else []
      in
      let i = I.make ~id:5 ~opcode ~pred ~imm ~targets ~lsid ~exit_idx () in
      match E.encode i with
      | Error _ -> QCheck.assume_fail ()
      | Ok words -> (
          match E.decode ~id:5 words with
          | Ok (i2, []) -> I.equal i i2
          | Ok (_, _ :: _) -> false
          | Error e -> QCheck.Test.fail_reportf "decode: %s" e))


(* binary program images round-trip for every compiled workload *)
let image_roundtrip () =
  List.iter
    (fun name ->
      let w = Option.get (Edge_workloads.Registry.find name) in
      match Edge_harness.Experiment.compile w Dfp.Config.both with
      | Error e -> Alcotest.failf "compile: %s" e
      | Ok c -> (
          let p = c.Dfp.Driver.program in
          match Edge_isa.Image.encode_program p with
          | Error e -> Alcotest.failf "encode: %s" e
          | Ok image -> (
              check "frame multiple" true
                (Bytes.length image mod Edge_isa.Image.frame_bytes = 0);
              match Edge_isa.Image.decode_program image with
              | Error e -> Alcotest.failf "decode: %s" e
              | Ok p2 ->
                  let t1 = Format.asprintf "%a" Edge_isa.Program.pp p in
                  let t2 = Format.asprintf "%a" Edge_isa.Program.pp p2 in
                  Alcotest.(check string) "roundtrip" t1 t2)))
    [ "tblook01"; "genalg"; "viterb00" ]

let image_rejects () =
  (match Edge_isa.Image.decode_program (Bytes.create 100) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject non-frame sizes");
  match Edge_isa.Image.decode_program (Bytes.create 1024) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject bad magic"

(* Every opcode x predication x target kind, constrained to the ISA's
   validity rules (predicatable opcodes only carry predicates, 9-bit
   immediates except geni, LSIDs for memory ops, exit indices for
   branches, mov4 targets share a slot and exclude writes, nothing
   targets I0.L), must round-trip bit-exactly through encode/decode. *)
let qcheck_encode_all =
  let gen =
    let open QCheck.Gen in
    let* opidx = int_bound (List.length O.all - 1) in
    let opcode = List.nth O.all opidx in
    let* predsel = int_bound 2 in
    let pred =
      if not (O.predicatable opcode) then I.Unpredicated
      else
        match predsel with
        | 0 -> I.Unpredicated
        | 1 -> I.If_true
        | _ -> I.If_false
    in
    let* imm =
      if not (O.has_immediate opcode) then return 0L
      else
        match opcode with
        | O.Geni -> ui64
        | _ -> map Int64.of_int (int_range (-256) 255)
    in
    let* lsid =
      match opcode with
      | O.Ld _ | O.St _ -> int_bound 31
      | _ -> return (-1)
    in
    let* exit_idx =
      match opcode with O.Bro -> int_bound 31 | _ -> return (-1)
    in
    let gen_slot = oneofl [ T.Left; T.Right; T.Pred ] in
    let* targets =
      match opcode with
      | O.Mov4 ->
          (* four 7-bit ids sharing one operand slot, never a write *)
          let* slot = gen_slot in
          let* n = int_range 1 4 in
          let+ ids = list_repeat n (int_range 1 127) in
          List.map (fun id -> T.To_instr { id; slot }) (List.sort_uniq compare ids)
      | _ ->
          let* n = int_bound (min 2 (O.max_targets opcode)) in
          let gen_target =
            let* kind = int_bound 3 in
            if kind = 3 then
              let+ w = int_bound 31 in
              T.To_write w
            else
              let* slot = gen_slot in
              (* I0.L encodes as 0, which collides with "no target" *)
              let+ id = int_range (if slot = T.Left then 1 else 0) 127 in
              T.To_instr { id; slot }
          in
          let+ ts = list_repeat n gen_target in
          List.sort_uniq compare ts
    in
    return (I.make ~id:5 ~opcode ~pred ~imm ~targets ~lsid ~exit_idx ())
  in
  QCheck.Test.make ~name:"encode/decode all opcodes x pred x targets"
    ~count:3000
    (QCheck.make ~print:(Format.asprintf "%a" I.pp) gen)
    (fun i ->
      match E.encode i with
      | Error e -> QCheck.Test.fail_reportf "encode: %s" e
      | Ok words -> (
          if List.length words <> E.words i then
            QCheck.Test.fail_reportf "word count: %d vs %d" (List.length words)
              (E.words i);
          match E.decode ~id:5 words with
          | Ok (i2, []) ->
              if I.equal i i2 then true
              else QCheck.Test.fail_reportf "roundtrip: %a vs %a" I.pp i I.pp i2
          | Ok (_, _ :: _) -> QCheck.Test.fail_reportf "leftover words"
          | Error e -> QCheck.Test.fail_reportf "decode: %s" e))

let tests =


  [
    Alcotest.test_case "opcode mnemonic roundtrip" `Quick opcode_roundtrip;
    Alcotest.test_case "opcode classes" `Quick opcode_classes;
    Alcotest.test_case "target roundtrip (exhaustive)" `Quick target_roundtrip;
    Alcotest.test_case "token semantics" `Quick token_semantics;
    Alcotest.test_case "predicate matching" `Quick pred_matching;
    Alcotest.test_case "encode roundtrip" `Quick encode_roundtrip;
    Alcotest.test_case "encode rejects wide imm" `Quick encode_rejects_wide_imm;
    Alcotest.test_case "block validate ok" `Quick block_validate_ok;
    Alcotest.test_case "block validate catches" `Quick block_validate_catches;
    Alcotest.test_case "memory semantics" `Quick mem_semantics;
    Alcotest.test_case "program checks" `Quick program_checks;
    Alcotest.test_case "asm roundtrip" `Quick asm_roundtrip_block;
    Alcotest.test_case "asm hand-written program" `Quick asm_hand_written;
    Alcotest.test_case "asm rejects garbage" `Quick asm_rejects;
    Alcotest.test_case "grid properties" `Quick grid_properties;
    QCheck_alcotest.to_alcotest qcheck_target;
    QCheck_alcotest.to_alcotest qcheck_mem;
    Alcotest.test_case "image roundtrip" `Quick image_roundtrip;
    Alcotest.test_case "image rejects garbage" `Quick image_rejects;
    QCheck_alcotest.to_alcotest qcheck_encode;
    QCheck_alcotest.to_alcotest qcheck_encode_all;
  ]
