(* Per-pass invariants on randomly generated kernels: if-conversion
   well-formedness, scheduler validity and determinism, and semantic
   preservation of each predicate optimization in isolation. *)

module Gen_kernel = Test_support.Gen_kernel
module Hb = Edge_ir.Hblock
module Temp = Edge_ir.Temp
module Cfg = Edge_ir.Cfg

let hblocks_of_seed seed size =
  let ast = Gen_kernel.generate ~seed ~size in
  let cfg = Result.get_ok (Edge_lang.Lower.lower ast) in
  Edge_ir.Ssa.construct cfg;
  Dfp.Opt_classic.run cfg;
  Edge_ir.Ssa.destruct cfg;
  Cfg.prune_unreachable cfg;
  Dfp.Unroll.run cfg ~max_unroll:4 ~target_instrs:64;
  let retq = Edge_ir.Temp.Gen.fresh cfg.Cfg.gen in
  let liveness = Edge_ir.Liveness.compute cfg in
  let regions = Dfp.Region.select cfg ~budget:50 in
  ( List.map
      (fun r -> Result.get_ok (Dfp.If_convert.convert cfg liveness r ~retq))
      regions,
    cfg,
    liveness,
    retq )

(* Invariant: every predicate referenced by a guard is defined in the
   block (guards must never consume live-in values directly: a live-in is
   delivered unconditionally, which breaks the at-most-one-match rule). *)
let guards_are_internal seed () =
  let hblocks, _, _, _ = hblocks_of_seed seed 18 in
  List.iter
    (fun (h : Hb.t) ->
      let defs = Hb.defs h in
      let check_guard what g =
        List.iter
          (fun p ->
            if not (Temp.Set.mem p defs) then
              Alcotest.failf "%s: guard predicate t%d is not defined in %s"
                what p h.Hb.hname)
          (Hb.guard_uses g)
      in
      List.iter (fun hi -> check_guard "body" hi.Hb.guard) h.Hb.body;
      List.iter (fun e -> check_guard "exit" e.Hb.eguard) h.Hb.hexits)
    hblocks

(* Invariant: every guarded store has at least one Null_store for its
   index, and unguarded stores have none. *)
let stores_are_nullified seed () =
  let hblocks, _, _, _ = hblocks_of_seed seed 20 in
  List.iter
    (fun (h : Hb.t) ->
      let stores = ref [] in
      let nulls = ref [] in
      let idx = ref 0 in
      List.iter
        (fun hi ->
          match hi.Hb.hop with
          | Hb.Op (Edge_ir.Tac.Store _) ->
              stores := (!idx, hi.Hb.guard <> None) :: !stores;
              incr idx
          | Hb.Null_store i -> nulls := i :: !nulls
          | _ -> ())
        h.Hb.body;
      List.iter
        (fun (i, guarded) ->
          let has_null = List.mem i !nulls in
          if guarded && not has_null then
            Alcotest.failf "%s: guarded store %d has no null store" h.Hb.hname i;
          if (not guarded) && has_null then
            Alcotest.failf "%s: unguarded store %d has a null store" h.Hb.hname
              i)
        !stores)
    hblocks

(* Invariant: hyperblock outputs have at least one producer each. *)
let outputs_have_producers seed () =
  let hblocks, _, _, _ = hblocks_of_seed seed 16 in
  List.iter
    (fun (h : Hb.t) ->
      List.iter
        (fun (_, prod) ->
          let has =
            List.exists
              (fun hi ->
                match hi.Hb.hop with
                | Hb.Null_write t -> Temp.equal t prod
                | _ -> (
                    match Hb.hop_def hi.Hb.hop with
                    | Some d -> Temp.equal d prod
                    | None -> false))
              h.Hb.body
          in
          if not has then
            Alcotest.failf "%s: output t%d has no producer" h.Hb.hname prod)
        h.Hb.houts)
    hblocks

(* The scheduler must produce a valid, deterministic placement. *)
let schedule_props seed () =
  let ast = Gen_kernel.generate ~seed ~size:20 in
  let cfg = Result.get_ok (Edge_lang.Lower.lower ast) in
  let c = Result.get_ok (Dfp.Driver.compile_cfg cfg Dfp.Config.both) in
  List.iter
    (fun (_, b) ->
      let p1 = Dfp.Schedule.place b in
      let p2 = Dfp.Schedule.place b in
      Alcotest.(check bool) "deterministic" true (p1 = p2);
      Alcotest.(check bool)
        "one slot per instruction" true
        (Array.length p1 = Array.length b.Edge_isa.Block.instrs);
      let md = Edge_isa.Machine_desc.default in
      let num_tiles = Edge_isa.Machine_desc.num_tiles md in
      let loads = Array.make num_tiles 0 in
      Array.iter
        (fun t ->
          Alcotest.(check bool) "tile in range" true (t >= 0 && t < num_tiles);
          loads.(t) <- loads.(t) + 1)
        p1;
      Array.iter
        (fun l ->
          Alcotest.(check bool)
            "slot capacity respected" true
            (l <= md.Edge_isa.Machine_desc.slots_per_tile))
        loads)
    c.Dfp.Driver.program.Edge_isa.Program.blocks

(* Each optimization alone must preserve semantics (the config matrix of
   the differential suite covers the paper combinations; this covers
   merge-only and mov4+merge). *)
let solo_opt_configs =
  [
    ("merge-only", { Dfp.Config.hyper_baseline with Dfp.Config.opt_merge = true });
    ( "merge+mov4",
      {
        Dfp.Config.hyper_baseline with
        Dfp.Config.opt_merge = true;
        use_mov4 = true;
      } );
    ("hand", Dfp.Config.hand_optimized);
    ("unroll-1", { Dfp.Config.both with Dfp.Config.max_unroll = 1 });
    ("unroll-16", { Dfp.Config.both with Dfp.Config.max_unroll = 16 });
  ]

let solo_opt_preserves (cname, config) seed () =
  let ast = Gen_kernel.generate ~seed ~size:16 in
  let mem_ref = Gen_kernel.default_mem () in
  match
    Edge_lang.Interp.run ~fuel:3_000_000 ast ~args:Gen_kernel.default_args
      ~mem:mem_ref
  with
  | Error _ -> () (* non-terminating or faulting: skip *)
  | Ok o -> (
      let expected = Option.value ~default:0L o.Edge_lang.Interp.return_value in
      let cfg = Result.get_ok (Edge_lang.Lower.lower ast) in
      match Dfp.Driver.compile_cfg cfg config with
      | Error e -> Alcotest.failf "%s compile: %s" cname e
      | Ok c -> (
          let regs = Array.make 128 0L in
          List.iteri
            (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v)
            Gen_kernel.default_args;
          let mem = Gen_kernel.default_mem () in
          match Edge_sim.Functional.run c.Dfp.Driver.program ~regs ~mem with
          | Error e -> Alcotest.failf "%s run: %s" cname e
          | Ok _ ->
              Alcotest.(check bool)
                "return value" true
                (Int64.equal regs.(Edge_isa.Conventions.result_reg) expected);
              Alcotest.(check bool)
                "memory" true
                (Edge_isa.Mem.equal mem mem_ref)))

(* The cycle simulator must be deterministic. *)
let cycle_deterministic () =
  let w = Option.get (Edge_workloads.Registry.find "tblook01") in
  let go () =
    match Edge_harness.Experiment.run_one w ("Both", Dfp.Config.both) with
    | Ok r -> r.Edge_harness.Experiment.cycles
    | Error e -> Alcotest.failf "%s" e
  in
  Alcotest.(check int) "same cycle count" (go ()) (go ())

(* Regression: compiled programs never declare more resources than the
   ISA allows, under every configuration (Block.validate runs in codegen;
   this re-checks the final artifacts end to end). *)
let resource_limits seed () =
  List.iter
    (fun (_, config) ->
      let ast = Gen_kernel.generate ~seed ~size:24 in
      let cfg = Result.get_ok (Edge_lang.Lower.lower ast) in
      match Dfp.Driver.compile_cfg cfg config with
      | Error e -> Alcotest.failf "compile: %s" e
      | Ok c ->
          List.iter
            (fun (_, b) ->
              Alcotest.(check bool)
                "instrs <= 128" true
                (Array.length b.Edge_isa.Block.instrs <= 128);
              Alcotest.(check bool)
                "reads <= 32" true
                (Array.length b.Edge_isa.Block.reads <= 32);
              Alcotest.(check bool)
                "writes <= 32" true
                (Array.length b.Edge_isa.Block.writes <= 32))
            c.Dfp.Driver.program.Edge_isa.Program.blocks)
    (("Merge", Dfp.Config.merge) :: Dfp.Config.all_paper_configs)

let tests =
  List.concat_map
    (fun seed ->
      [
        Alcotest.test_case
          (Printf.sprintf "guards internal s%d" seed)
          `Quick (guards_are_internal seed);
        Alcotest.test_case
          (Printf.sprintf "stores nullified s%d" seed)
          `Quick (stores_are_nullified seed);
        Alcotest.test_case
          (Printf.sprintf "outputs produced s%d" seed)
          `Quick (outputs_have_producers seed);
        Alcotest.test_case
          (Printf.sprintf "schedule props s%d" seed)
          `Quick (schedule_props seed);
        Alcotest.test_case
          (Printf.sprintf "resource limits s%d" seed)
          `Quick (resource_limits seed);
      ])
    [ 101; 202; 303; 404 ]
  @ List.concat_map
      (fun cfg ->
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "%s preserves semantics s%d" (fst cfg) seed)
              `Quick
              (solo_opt_preserves cfg seed))
          [ 11; 22; 33; 44; 55; 66 ])
      solo_opt_configs
  @ [ Alcotest.test_case "cycle sim deterministic" `Quick cycle_deterministic ]
