(* Regenerate the golden trace files (test/golden/*.trace) from the
   current simulator. Run from the repo root:

     make regen-golden        (or: dune exec test/regen_golden.exe)

   Inspect the diff before committing: a golden change means the
   simulator's observable schedule changed, and that must be
   intentional. *)

let () =
  let dir =
    if Sys.file_exists "test/golden" then "test/golden"
    else if Sys.file_exists "test" then begin
      Unix.mkdir "test/golden" 0o755;
      "test/golden"
    end
    else failwith "run from the repo root"
  in
  let write ?machine ?machine_tag (kernel, config_name, config) =
    let source = Test_support.Goldens.kernel_source kernel in
    match
      Edge_harness.Tracekit.trace_source ?machine ~source ~config ()
    with
    | Error e -> failwith (Printf.sprintf "%s/%s: %s" kernel config_name e)
    | Ok t ->
        let mname = Option.map Edge_sim.Machine.name machine in
        let text =
          Edge_harness.Tracekit.render ?machine:mname ~kernel
            ~config:config_name t
        in
        let path =
          Filename.concat dir
            (Test_support.Goldens.golden_name ?machine:machine_tag kernel
               config_name)
        in
        let oc = open_out_bin path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (%d lines)\n" path
          (List.length (String.split_on_char '\n' text))
  in
  List.iter write (Test_support.Goldens.all ());
  List.iter
    (write ~machine:Test_support.Goldens.inorder_machine
       ~machine_tag:Test_support.Goldens.inorder_tag)
    (Test_support.Goldens.inorder_all ())
