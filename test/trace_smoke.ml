(* `make trace-smoke`: a seconds-long end-to-end check of the
   observability layer. Runs one golden kernel with tracing on,
   validates that the Chrome trace-event export is well-formed JSON
   (lib/obs/json_lint), and checks the deterministic text trace against
   its blessed golden file. Run from the repo root. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace-smoke: " ^ s); exit 1) fmt

let () =
  let kernel = "sand_gate" in
  let config_name, config = ("Both", Dfp.Config.both) in
  let source = Test_support.Goldens.kernel_source kernel in
  match Edge_harness.Tracekit.trace_source ~source ~config () with
  | Error e -> fail "%s/%s: %s" kernel config_name e
  | Ok t ->
      (* 1. the Chrome export parses as strict JSON *)
      let json =
        Edge_obs.Trace.chrome_to_string ~name:kernel
          t.Edge_harness.Tracekit.events
      in
      (match Edge_obs.Json_lint.check json with
      | Ok () -> ()
      | Error { Edge_obs.Json_lint.offset; message } ->
          fail "chrome JSON invalid at byte %d: %s" offset message);
      (* 2. the text trace matches the blessed golden *)
      let text = Edge_harness.Tracekit.render ~kernel ~config:config_name t in
      let golden_path =
        Filename.concat
          (Test_support.Goldens.golden_dir ())
          (Test_support.Goldens.golden_name kernel config_name)
      in
      let golden = Test_support.Goldens.read_file golden_path in
      (match Edge_obs.Trace.first_divergence golden text with
      | None -> ()
      | Some (line, want, got) ->
          fail "trace diverges from %s at line %d:\n  golden: %s\n  got:    %s"
            golden_path line want got);
      (* 3. the metrics registry is coherent with the stats *)
      let m = t.Edge_harness.Tracekit.metrics in
      let stats = t.Edge_harness.Tracekit.stats in
      if
        Edge_obs.Metrics.counter m "sim.blocks_committed"
        <> stats.Edge_sim.Stats.blocks_committed
      then fail "metrics/stats disagree on committed blocks";
      Printf.printf
        "trace-smoke: %s/%s ok (%d events, %d-byte JSON, golden matches)\n"
        kernel config_name
        (List.length t.Edge_harness.Tracekit.events)
        (String.length json);
      (* 4. the in-order backend's trace matches its blessed golden *)
      let machine = Test_support.Goldens.inorder_machine in
      (match
         Edge_harness.Tracekit.trace_source ~machine ~source ~config ()
       with
      | Error e -> fail "%s/%s inorder: %s" kernel config_name e
      | Ok t ->
          let text =
            Edge_harness.Tracekit.render
              ~machine:(Edge_sim.Machine.name machine)
              ~kernel ~config:config_name t
          in
          let golden_path =
            Filename.concat
              (Test_support.Goldens.golden_dir ())
              (Test_support.Goldens.golden_name
                 ~machine:Test_support.Goldens.inorder_tag kernel config_name)
          in
          let golden = Test_support.Goldens.read_file golden_path in
          (match Edge_obs.Trace.first_divergence golden text with
          | None -> ()
          | Some (line, want, got) ->
              fail
                "inorder trace diverges from %s at line %d:\n\
                \  golden: %s\n\
                \  got:    %s"
                golden_path line want got);
          Printf.printf
            "trace-smoke: %s/%s inorder ok (%d events, golden matches)\n"
            kernel config_name
            (List.length t.Edge_harness.Tracekit.events))
