(* Observability-layer regression suite (lib/obs + the instrumented
   simulator and compiler).

   Three layers:

   - golden traces: the deterministic text trace of each
     examples/kernels/*.k kernel under two configurations must match the
     blessed bytes in test/golden/ exactly (regenerate deliberately with
     `make regen-golden`);
   - metric invariants: the Metrics registry, the event stream and the
     simulator's own Stats are three views of one execution and must
     agree — on the golden kernels under both configurations and on
     every fuzz-corpus reproducer;
   - determinism: rendering the golden set through the domain pool gives
     byte-identical traces for -j 1/2/4. *)

module Tk = Edge_harness.Tracekit
module Mx = Edge_obs.Metrics
module Ev = Edge_obs.Event
module Stats = Edge_sim.Stats
module G = Test_support.Goldens

let trace_kernel kernel config =
  let source = G.kernel_source kernel in
  match Tk.trace_source ~source ~config () with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: %s" kernel e

(* ---------- golden traces ---------- *)

let golden_case (kernel, config_name, config) =
  Alcotest.test_case
    (Printf.sprintf "golden %s/%s" kernel config_name)
    `Quick
    (fun () ->
      let t = trace_kernel kernel config in
      let text = Tk.render ~kernel ~config:config_name t in
      let path =
        Filename.concat (G.golden_dir ()) (G.golden_name kernel config_name)
      in
      if not (Sys.file_exists path) then
        Alcotest.failf "%s missing; run `make regen-golden`" path;
      let golden = G.read_file path in
      match Edge_obs.Trace.first_divergence golden text with
      | None -> ()
      | Some (line, want, got) ->
          Alcotest.failf
            "trace diverges from %s at line %d\n  golden: %s\n  got:    %s\n\
             (if the schedule change is intentional, run `make regen-golden`)"
            path line want got)

(* ---------- metric invariants ---------- *)

(* null tokens may only be delivered to block outputs of the nulled path:
   register writes, stores, and the mov/null trees fanning out to them
   (Section 4.2) *)
let null_receivers = [ "-"; "sb"; "sw"; "sd"; "mov"; "mov4"; "null" ]

let check_invariants name (t : Tk.traced) =
  let m = t.Tk.metrics and stats = t.Tk.stats in
  let ci what a b =
    if a <> b then Alcotest.failf "%s: %s: %d <> %d" name what a b
  in
  (* registry vs Stats: the counters mirror the simulator's own numbers *)
  ci "blocks committed" (Mx.counter m "sim.blocks_committed")
    stats.Stats.blocks_committed;
  ci "blocks squashed" (Mx.counter m "sim.blocks_squashed")
    stats.Stats.blocks_flushed;
  ci "instrs committed" (Mx.counter m "sim.instrs_committed")
    stats.Stats.instrs_committed;
  ci "committed + squashed = executed"
    (Mx.counter m "sim.instrs_committed" + Mx.counter m "sim.instrs_squashed")
    stats.Stats.instrs_executed;
  ci "operand hops" (Mx.counter m "sim.operand_hops") stats.Stats.operand_hops;
  ci "dcache accesses" (Mx.counter m "sim.dcache_accesses")
    stats.Stats.dcache_accesses;
  ci "dcache misses" (Mx.counter m "sim.dcache_misses")
    stats.Stats.dcache_misses;
  ci "icache accesses" (Mx.counter m "sim.icache_accesses")
    stats.Stats.icache_accesses;
  ci "icache misses" (Mx.counter m "sim.icache_misses")
    stats.Stats.icache_misses;
  ci "branch mispredicts" (Mx.counter m "sim.branch_mispredicts")
    stats.Stats.branch_mispredicts;
  (* histograms: one sample per committed block *)
  ci "occupancy samples" (Mx.hist_total (Mx.histogram m "block.occupancy"))
    stats.Stats.blocks_committed;
  ci "null-token samples" (Mx.hist_total (Mx.histogram m "block.null_tokens"))
    stats.Stats.blocks_committed;
  ci "mispredicated samples"
    (Mx.hist_total (Mx.histogram m "block.mispredicated"))
    stats.Stats.blocks_committed;
  (* events vs both: the trace is a third view of the same run *)
  let count p = List.length (List.filter p t.Tk.events) in
  ci "Dispatch events"
    (count (function Ev.Dispatch _ -> true | _ -> false))
    (Mx.counter m "sim.blocks_dispatched");
  ci "Commit events"
    (count (function Ev.Commit _ -> true | _ -> false))
    stats.Stats.blocks_committed;
  ci "Squash events"
    (count (function Ev.Squash _ -> true | _ -> false))
    stats.Stats.blocks_flushed;
  let issues = count (function Ev.Issue _ -> true | _ -> false) in
  if issues < stats.Stats.instrs_executed then
    Alcotest.failf "%s: %d Issue events < %d executed instructions" name
      issues stats.Stats.instrs_executed;
  let wakeups = count (function Ev.Wakeup _ -> true | _ -> false) in
  if wakeups < issues then
    Alcotest.failf "%s: %d wakeups < %d issues" name wakeups issues;
  let commit_instrs =
    List.fold_left
      (fun a e -> match e with Ev.Commit { instrs; _ } -> a + instrs | _ -> a)
      0 t.Tk.events
  in
  ci "sum of per-block committed instrs" commit_instrs
    stats.Stats.instrs_committed;
  let commit_nulls =
    List.fold_left
      (fun a e -> match e with Ev.Commit { nulls; _ } -> a + nulls | _ -> a)
      0 t.Tk.events
  in
  ci "null tokens per committed block" commit_nulls
    (Mx.hist_sum (Mx.histogram m "block.null_tokens"));
  (* per committed frame: the Commit's null count equals the null Token
     events addressed to that frame *)
  let nulls_by_seq = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Ev.Token { seq; null = true; _ } ->
          Hashtbl.replace nulls_by_seq seq
            (1 + Option.value ~default:0 (Hashtbl.find_opt nulls_by_seq seq))
      | _ -> ())
    t.Tk.events;
  List.iter
    (fun e ->
      match e with
      | Ev.Commit { seq; nulls; _ } ->
          ci
            (Printf.sprintf "null tokens of seq %d" seq)
            (Option.value ~default:0 (Hashtbl.find_opt nulls_by_seq seq))
            nulls
      | _ -> ())
    t.Tk.events;
  (* null tokens resolve outputs: writes, stores and their fan-out *)
  List.iter
    (fun e ->
      match e with
      | Ev.Token { op; null = true; dst; _ } ->
          if not (List.mem op null_receivers) then
            Alcotest.failf "%s: null token delivered to %s (%s)" name dst op
      | _ -> ())
    t.Tk.events

let invariant_case (kernel, config_name, config) =
  Alcotest.test_case
    (Printf.sprintf "invariants %s/%s" kernel config_name)
    `Quick
    (fun () ->
      check_invariants
        (kernel ^ "/" ^ config_name)
        (trace_kernel kernel config))

(* ---------- in-order backend goldens and invariants ---------- *)

let trace_kernel_inorder kernel config =
  let source = G.kernel_source kernel in
  match Tk.trace_source ~machine:G.inorder_machine ~source ~config () with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s (inorder): %s" kernel e

let inorder_golden_case (kernel, config_name, config) =
  Alcotest.test_case
    (Printf.sprintf "golden %s/%s inorder" kernel config_name)
    `Quick
    (fun () ->
      let t = trace_kernel_inorder kernel config in
      let text =
        Tk.render
          ~machine:(Edge_sim.Machine.name G.inorder_machine)
          ~kernel ~config:config_name t
      in
      let path =
        Filename.concat (G.golden_dir ())
          (G.golden_name ~machine:G.inorder_tag kernel config_name)
      in
      if not (Sys.file_exists path) then
        Alcotest.failf "%s missing; run `make regen-golden`" path;
      let golden = G.read_file path in
      match Edge_obs.Trace.first_divergence golden text with
      | None -> ()
      | Some (line, want, got) ->
          Alcotest.failf
            "trace diverges from %s at line %d\n  golden: %s\n  got:    %s\n\
             (if the timing change is intentional, run `make regen-golden`)"
            path line want got)

(* the in-order core has no speculation, so its three views must agree
   more tightly than the grid's: every dispatched block commits, nothing
   is ever squashed, and every executed instruction commits *)
let check_inorder_invariants name (t : Tk.traced) =
  let m = t.Tk.metrics and stats = t.Tk.stats in
  let ci what a b =
    if a <> b then Alcotest.failf "%s: %s: %d <> %d" name what a b
  in
  ci "blocks committed" (Mx.counter m "sim.blocks_committed")
    stats.Stats.blocks_committed;
  ci "instrs committed" (Mx.counter m "sim.instrs_committed")
    stats.Stats.instrs_committed;
  ci "committed = executed (no speculation)" stats.Stats.instrs_committed
    stats.Stats.instrs_executed;
  ci "no squashed blocks" 0 stats.Stats.blocks_flushed;
  ci "dispatched = committed" (Mx.counter m "sim.blocks_dispatched")
    stats.Stats.blocks_committed;
  ci "dcache accesses" (Mx.counter m "sim.dcache_accesses")
    stats.Stats.dcache_accesses;
  ci "dcache misses" (Mx.counter m "sim.dcache_misses")
    stats.Stats.dcache_misses;
  ci "icache accesses" (Mx.counter m "sim.icache_accesses")
    stats.Stats.icache_accesses;
  ci "icache misses" (Mx.counter m "sim.icache_misses")
    stats.Stats.icache_misses;
  ci "branch mispredicts" (Mx.counter m "sim.branch_mispredicts")
    stats.Stats.branch_mispredicts;
  ci "branch resolutions" (Mx.counter m "sim.branch_resolutions")
    stats.Stats.branch_predictions;
  ci "occupancy samples" (Mx.hist_total (Mx.histogram m "block.occupancy"))
    stats.Stats.blocks_committed;
  let count p = List.length (List.filter p t.Tk.events) in
  ci "Dispatch events"
    (count (function Ev.Dispatch _ -> true | _ -> false))
    stats.Stats.blocks_committed;
  ci "Commit events"
    (count (function Ev.Commit _ -> true | _ -> false))
    stats.Stats.blocks_committed;
  ci "Squash events" (count (function Ev.Squash _ -> true | _ -> false)) 0;
  (* every fired instruction issues exactly once; the only firings not
     counted as executed are stores resolved by an incoming null token
     (functional.ml counts those under nulls_executed) *)
  let issues = count (function Ev.Issue _ -> true | _ -> false) in
  if
    issues < stats.Stats.instrs_executed
    || issues > stats.Stats.instrs_executed + stats.Stats.nulls_executed
  then
    Alcotest.failf "%s: %d Issue events outside [%d, %d+%d]" name issues
      stats.Stats.instrs_executed stats.Stats.instrs_executed
      stats.Stats.nulls_executed;
  let commit_instrs =
    List.fold_left
      (fun a e -> match e with Ev.Commit { instrs; _ } -> a + instrs | _ -> a)
      0 t.Tk.events
  in
  ci "sum of per-block committed instrs" commit_instrs
    stats.Stats.instrs_committed;
  (* one block in flight: the event stream is nondecreasing in cycle
     as emitted (the collector never reorders) *)
  ignore
    (List.fold_left
       (fun prev e ->
         let c = Ev.cycle e in
         if c < prev then
           Alcotest.failf "%s: event cycle %d after %d: %s" name c prev
             (Ev.to_line e);
         c)
       0 t.Tk.events)

let inorder_invariant_case (kernel, config_name, config) =
  Alcotest.test_case
    (Printf.sprintf "invariants %s/%s inorder" kernel config_name)
    `Quick
    (fun () ->
      check_inorder_invariants
        (kernel ^ "/" ^ config_name ^ "/inorder")
        (trace_kernel_inorder kernel config))

(* the fuzz corpus — minimized reproducers of past bugs — is exactly the
   code most likely to stress odd trace paths *)
let compile_stage_error e =
  List.exists
    (fun p -> String.starts_with ~prefix:p e)
    [ "parse:"; "lower:"; "compile:" ]

let corpus_invariant_case (name, source) =
  Alcotest.test_case ("invariants corpus " ^ name) `Quick (fun () ->
      match Tk.trace_source ~source ~config:Dfp.Config.both () with
      | Ok t -> check_invariants name t
      | Error e when compile_stage_error e -> Alcotest.failf "%s: %s" name e
      | Error _ ->
          (* some reproducers fault at runtime by construction (that is
             the bug they minimize); tracing only observes completed
             runs, so skip those *)
          ())

(* ---------- determinism across the domain pool ---------- *)

let render_all jobs =
  Edge_parallel.Pool.run ~jobs
    (fun (kernel, config_name, config) ->
      Tk.render ~kernel ~config:config_name (trace_kernel kernel config))
    (G.all ())

let pool_determinism () =
  let base = render_all 1 in
  List.iter
    (fun jobs ->
      let got = render_all jobs in
      List.iteri
        (fun i text ->
          let want = List.nth base i in
          if not (String.equal want text) then
            match Edge_obs.Trace.first_divergence want text with
            | Some (line, a, b) ->
                Alcotest.failf "-j %d trace %d diverges at line %d: %s vs %s"
                  jobs i line a b
            | None -> ())
        got)
    [ 2; 4 ]

(* ---------- compiler pass counters ---------- *)

let pass_counters () =
  let source = G.kernel_source "sand_gate" in
  match Tk.compile_source source Dfp.Config.both with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok c ->
      let pc = c.Dfp.Driver.pass_counters in
      let get k = Option.value ~default:0 (List.assoc_opt k pc) in
      if get "pass.if_convert.hyperblocks" < 1 then
        Alcotest.failf "no if-conversion counters: %s"
          (String.concat ", " (List.map fst pc));
      if get "pass.if_convert.instrs" <= 0 then
        Alcotest.fail "if_convert.instrs not positive";
      (* Both enables fanout reduction; the kernel has guarded interior
         instructions, so some guard must fall *)
      if get "pass.fanout.guards_removed" <= 0 then
        Alcotest.fail "fanout pass removed no guards";
      (* counters survive the memo: a second compile through the cache
         returns the same list *)
      List.iter
        (fun (k, v) ->
          if List.assoc_opt k pc <> Some v then Alcotest.fail "unstable")
        pc;
      (* the && chain must convert under a sand-enabled config
         (Config.both leaves use_sand off; Config.sand turns it on) *)
      match Tk.compile_source source Dfp.Config.sand with
      | Error e -> Alcotest.failf "compile (sand): %s" e
      | Ok c ->
          let pcs = c.Dfp.Driver.pass_counters in
          let n =
            Option.value ~default:0
              (List.assoc_opt "pass.sand.chains_converted" pcs)
          in
          if n <= 0 then
            Alcotest.failf "sand pass converted no chains: %s"
              (String.concat ", "
                 (List.map
                    (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                    pcs))

(* the sizing pre-pass (fit_regions) must not leak counts into the final
   artifact: counters reflect exactly one generate attempt *)
let pass_counters_bounded () =
  let source = G.kernel_source "pred_diamond" in
  match Tk.compile_source source Dfp.Config.both with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok c ->
      let hb =
        Option.value ~default:0
          (List.assoc_opt "pass.if_convert.hyperblocks"
             c.Dfp.Driver.pass_counters)
      in
      let blocks = c.Dfp.Driver.static_blocks in
      if hb <> blocks then
        Alcotest.failf "if-converted %d hyperblocks but emitted %d blocks" hb
          blocks

(* ---------- lib/obs unit behaviour ---------- *)

let metrics_unit () =
  let m = Mx.create () in
  Mx.incr m "a";
  Mx.incr ~by:4 m "a";
  Mx.observe m "h" 3;
  Mx.observe m "h" 3;
  Mx.observe m "h" 7;
  Alcotest.(check int) "counter" 5 (Mx.counter m "a");
  Alcotest.(check int) "absent" 0 (Mx.counter m "zzz");
  Alcotest.(check (list (pair int int))) "hist" [ (3, 2); (7, 1) ] (Mx.histogram m "h");
  Alcotest.(check int) "total" 3 (Mx.hist_total (Mx.histogram m "h"));
  Alcotest.(check int) "sum" 13 (Mx.hist_sum (Mx.histogram m "h"));
  let n = Mx.create () in
  Mx.incr ~by:2 n "a";
  Mx.observe n "h" 3;
  Mx.merge ~into:m n;
  Alcotest.(check int) "merged counter" 7 (Mx.counter m "a");
  Alcotest.(check int) "merged hist" 4 (Mx.hist_total (Mx.histogram m "h"))

let json_lint_unit () =
  let ok s =
    match Edge_obs.Json_lint.check s with
    | Ok () -> ()
    | Error e ->
        Alcotest.failf "rejected %S at %d: %s" s e.Edge_obs.Json_lint.offset
          e.Edge_obs.Json_lint.message
  in
  let bad s =
    match Edge_obs.Json_lint.check s with
    | Ok () -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  ok "[]";
  ok "{\"a\": [1, -2.5e3, true, null, \"x\\n\"]}";
  bad "[1,]";
  bad "{\"a\":}";
  bad "[1] trailing";
  bad "\"unterminated";
  bad "01"

let divergence_unit () =
  Alcotest.(check (option (triple int string string)))
    "equal" None
    (Edge_obs.Trace.first_divergence "a\nb\n" "a\nb\n");
  Alcotest.(check (option (triple int string string)))
    "line 2"
    (Some (2, "b", "c"))
    (Edge_obs.Trace.first_divergence "a\nb\n" "a\nc\n")

let tests =
  List.map golden_case (G.all ())
  @ List.map invariant_case (G.all ())
  @ List.map inorder_golden_case (G.inorder_all ())
  @ List.map inorder_invariant_case (G.inorder_all ())
  @ List.map corpus_invariant_case (Edge_fuzz.Corpus.load_dir "corpus")
  @ [
      Alcotest.test_case "pool determinism -j 1/2/4" `Quick pool_determinism;
      Alcotest.test_case "compiler pass counters" `Quick pass_counters;
      Alcotest.test_case "pass counters match artifact" `Quick
        pass_counters_bounded;
      Alcotest.test_case "metrics unit" `Quick metrics_unit;
      Alcotest.test_case "json lint unit" `Quick json_lint_unit;
      Alcotest.test_case "first divergence unit" `Quick divergence_unit;
    ]
