(* The parallel experiment machinery: the domain pool, the single-flight
   memo, the calendar event queue, and — the property everything else
   leans on — bit-identical Figure 7 results for every jobs value. *)

module Pool = Edge_parallel.Pool
module Memo = Edge_parallel.Memo
module Disk_cache = Edge_parallel.Disk_cache
module Mem_cache = Edge_parallel.Mem_cache
module Event_queue = Edge_sim.Event_queue

(* -- pool --------------------------------------------------------- *)

let pool_map_order () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> (x * 7) mod 31) xs in
  Alcotest.(check (list int))
    "sequential fallback" expected
    (Pool.run ~jobs:1 (fun x -> (x * 7) mod 31) xs);
  Alcotest.(check (list int))
    "parallel keeps input order" expected
    (Pool.run ~jobs:4 (fun x -> (x * 7) mod 31) xs)

let pool_filter_map () =
  let xs = List.init 50 Fun.id in
  let f x = if x mod 3 = 0 then Some (x * x) else None in
  Alcotest.(check (list int))
    "filter_map parallel = sequential" (List.filter_map f xs)
    (Pool.with_pool ~jobs:4 (fun p -> Pool.filter_map p f xs))

exception Boom of int

let pool_exception () =
  (* the first failure in input order is the one re-raised *)
  match
    Pool.run ~jobs:4 (fun x -> if x >= 5 then raise (Boom x) else x)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom n -> Alcotest.(check int) "first failure wins" 5 n

let pool_reuse () =
  Pool.with_pool ~jobs:3 (fun p ->
      let a = Pool.map p (fun x -> x + 1) [ 1; 2; 3 ] in
      let b = Pool.map p (fun x -> x * 2) [ 4; 5 ] in
      Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
      Alcotest.(check (list int)) "second batch" [ 8; 10 ] b)

(* -- memo --------------------------------------------------------- *)

let memo_single_flight () =
  let m = Memo.create () in
  let calls = ref 0 in
  let f _ =
    incr calls;
    !calls * 10
  in
  Alcotest.(check int) "first call computes" 10 (Memo.get m "k" f);
  Alcotest.(check int) "second call cached" 10 (Memo.get m "k" f);
  Alcotest.(check int) "one computation" 1 !calls;
  Alcotest.(check int) "other key computes" 20 (Memo.get m "k2" f)

let memo_caches_failure () =
  let m = Memo.create () in
  let calls = ref 0 in
  let f _ =
    incr calls;
    failwith "nope"
  in
  (try ignore (Memo.get m "k" f : int) with Failure _ -> ());
  (try ignore (Memo.get m "k" f : int) with Failure _ -> ());
  Alcotest.(check int) "failure computed once" 1 !calls

(* -- calendar event queue ----------------------------------------- *)

(* reference model with the old semantics: cycle -> events in insertion
   order, pop returns the exact-cycle batch, next_due the pending min *)
module Model = struct
  type t = (int, int list ref) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let add (t : t) ~cycle v =
    match Hashtbl.find_opt t cycle with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add t cycle (ref [ v ])

  let pop_due (t : t) ~cycle =
    match Hashtbl.find_opt t cycle with
    | None -> []
    | Some l ->
        Hashtbl.remove t cycle;
        List.rev !l

  let next_due (t : t) =
    Hashtbl.fold
      (fun c _ acc ->
        match acc with Some m -> Some (min m c) | None -> Some c)
      t None

  let is_empty (t : t) = Hashtbl.length t = 0
end

let queue_fifo_and_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~cycle:5 "a";
  Event_queue.add q ~cycle:3 "b";
  Event_queue.add q ~cycle:5 "c";
  Event_queue.add q ~cycle:5 "d";
  Alcotest.(check (option int)) "next_due" (Some 3) (Event_queue.next_due q);
  Alcotest.(check (list string)) "nothing at 4" [] (Event_queue.pop_due q ~cycle:4);
  Alcotest.(check (list string)) "cycle 3" [ "b" ] (Event_queue.pop_due q ~cycle:3);
  Alcotest.(check (list string))
    "same-cycle FIFO" [ "a"; "c"; "d" ]
    (Event_queue.pop_due q ~cycle:5);
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let queue_far_future () =
  (* events beyond the bucket horizon (1024) and bucket collisions
     (cycles congruent mod the horizon) must both survive *)
  let q = Event_queue.create () in
  Event_queue.add q ~cycle:10 "near";
  Event_queue.add q ~cycle:5000 "far";
  Event_queue.add q ~cycle:(10 + 1024) "collide";
  Alcotest.(check (option int)) "min" (Some 10) (Event_queue.next_due q);
  Alcotest.(check (list string)) "near" [ "near" ] (Event_queue.pop_due q ~cycle:10);
  Alcotest.(check (option int)) "collision next" (Some 1034) (Event_queue.next_due q);
  Alcotest.(check (list string))
    "collision" [ "collide" ]
    (Event_queue.pop_due q ~cycle:1034);
  Alcotest.(check (list string)) "far" [ "far" ] (Event_queue.pop_due q ~cycle:5000);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let queue_matches_model () =
  (* a deterministic pseudo-random schedule replayed against the model:
     monotone cycle sweep, adds at +1..+2000 (past the horizon), pops
     and next_due compared every step *)
  let q = Event_queue.create () and m = Model.create () in
  let seed = ref 0x2545F491 in
  let rand bound =
    seed := (!seed * 1103515245) + 12345;
    (!seed lsr 7) mod bound
  in
  let payload = ref 0 in
  for cycle = 0 to 4000 do
    let n_adds = if rand 10 < 4 then 1 + rand 3 else 0 in
    for _ = 1 to n_adds do
      let dt = 1 + rand 2000 in
      incr payload;
      Event_queue.add q ~cycle:(cycle + dt) !payload;
      Model.add m ~cycle:(cycle + dt) !payload
    done;
    Alcotest.(check (list int))
      (Printf.sprintf "pop @%d" cycle)
      (Model.pop_due m ~cycle)
      (Event_queue.pop_due q ~cycle);
    if rand 10 < 3 then
      Alcotest.(check (option int))
        (Printf.sprintf "next_due @%d" cycle)
        (Model.next_due m) (Event_queue.next_due q)
  done;
  (* drain whatever the sweep left behind *)
  let rec drain () =
    match Event_queue.next_due q with
    | None -> ()
    | Some c ->
        Alcotest.(check (option int)) "drain next_due" (Model.next_due m) (Some c);
        Alcotest.(check (list int))
          (Printf.sprintf "drain @%d" c)
          (Model.pop_due m ~cycle:c)
          (Event_queue.pop_due q ~cycle:c);
        drain ()
  in
  drain ();
  Alcotest.(check bool) "model drained too" true (Model.is_empty m)

(* -- persistent disk cache ---------------------------------------- *)

(* scratch directories live under Test_support.Tmpdir's process-temp
   root (removed at exit), so running the suite from the repo root
   leaves no dc_* litter behind *)
let dc name = Test_support.Tmpdir.path name

let cache_roundtrip () =
  let c = Disk_cache.create ~dir:(dc "dc_roundtrip") () in
  Alcotest.(check (option (list int))) "cold miss" None (Disk_cache.find c ~key:"a");
  Alcotest.(check int) "one miss" 1 (Disk_cache.misses c);
  Disk_cache.store c ~key:"a" [ 1; 2; 3 ];
  Disk_cache.store c ~key:"b" "hello";
  Alcotest.(check (option (list int)))
    "list round-trips" (Some [ 1; 2; 3 ])
    (Disk_cache.find c ~key:"a");
  Alcotest.(check (option string))
    "string round-trips" (Some "hello")
    (Disk_cache.find c ~key:"b");
  Alcotest.(check int) "two hits" 2 (Disk_cache.hits c);
  (* a second handle on the same dir sees the entries: persistence is
     the point *)
  let c2 = Disk_cache.create ~dir:(dc "dc_roundtrip") () in
  Alcotest.(check (option (list int)))
    "fresh handle hits" (Some [ 1; 2; 3 ])
    (Disk_cache.find c2 ~key:"a");
  Disk_cache.remove c2 ~key:"a";
  Alcotest.(check (option (list int)))
    "removed" None (Disk_cache.find c2 ~key:"a")

(* any change to the key — a bumped simulator revision, a different
   config digest — is a different file: old entries simply never match *)
let cache_key_invalidation () =
  let c = Disk_cache.create ~dir:(dc "dc_invalidate") () in
  let key rev = String.concat "|" [ "run-v1"; rev; "tblook01"; "Both" ] in
  Disk_cache.store c ~key:(key "cycle-sim-4") 42;
  Alcotest.(check (option int))
    "current revision hits" (Some 42)
    (Disk_cache.find c ~key:(key "cycle-sim-4"));
  Alcotest.(check (option int))
    "bumped revision misses" None
    (Disk_cache.find c ~key:(key "cycle-sim-5"))

let corrupt path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  (* flip a byte in the middle of the payload *)
  seek_out oc (len / 2);
  output_char oc '\xff';
  close_out oc

(* entries live in 256 fan-out subdirectories: walk them all *)
let corrupt_all_entries cache =
  let root = Disk_cache.dir cache in
  Array.iter
    (fun name ->
      let sub = Filename.concat root name in
      if Sys.is_directory sub then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".bin" then
              corrupt (Filename.concat sub f))
          (Sys.readdir sub))
    (Sys.readdir root)

let cache_corruption () =
  let c = Disk_cache.create ~dir:(dc "dc_corrupt") () in
  Disk_cache.store c ~key:"k" (Array.init 64 string_of_int);
  corrupt (Disk_cache.path_of_key c ~key:"k");
  Alcotest.(check (option (array string)))
    "corrupted entry reads as a miss" None
    (Disk_cache.find c ~key:"k");
  Alcotest.(check bool) "corruption counted" true (Disk_cache.errors c >= 1);
  (* and the caller's recompute-and-store path repairs it *)
  Disk_cache.store c ~key:"k" (Array.init 64 string_of_int);
  Alcotest.(check (option (array string)))
    "restored entry hits"
    (Some (Array.init 64 string_of_int))
    (Disk_cache.find c ~key:"k");
  (* a truncated entry (torn short of the digest) is also just a miss *)
  let path = Disk_cache.path_of_key c ~key:"k" in
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 path in
  output_string oc "short";
  close_out oc;
  Alcotest.(check (option (array string)))
    "truncated entry reads as a miss" None
    (Disk_cache.find c ~key:"k")

(* the harness integration: a cached Experiment.run_one rerun must
   reproduce the uncached run exactly, with the timing fields zeroed.
   Runs with the static verifier off: checked runs deliberately bypass
   the persistent result cache, which is exactly what this test is
   exercising. *)
let cache_experiment_roundtrip () =
  Edge_check.Check.without_check @@ fun () ->
  let w =
    match Edge_workloads.Registry.find "tblook01" with
    | Some w -> w
    | None -> Alcotest.fail "tblook01 missing from registry"
  in
  let cfg = ("Both", Dfp.Config.both) in
  let cache = Disk_cache.create ~dir:(dc "dc_experiment") () in
  let r1 =
    match Edge_harness.Experiment.run_one ~cache w cfg with
    | Ok r -> r
    | Error e -> Alcotest.failf "cold run: %s" e
  in
  Alcotest.(check int) "cold run missed" 1 (Disk_cache.misses cache);
  let r2 =
    match Edge_harness.Experiment.run_one ~cache w cfg with
    | Ok r -> r
    | Error e -> Alcotest.failf "warm run: %s" e
  in
  Alcotest.(check int) "warm run hit" 1 (Disk_cache.hits cache);
  Alcotest.(check int) "identical cycles"
    r1.Edge_harness.Experiment.cycles r2.Edge_harness.Experiment.cycles;
  Alcotest.(check bool) "identical stats" true
    (r1.Edge_harness.Experiment.stats = r2.Edge_harness.Experiment.stats);
  Alcotest.(check (float 0.0)) "hit reports zero compile time" 0.
    r2.Edge_harness.Experiment.compile_s;
  Alcotest.(check (float 0.0)) "hit reports zero sim time" 0.
    r2.Edge_harness.Experiment.sim_s;
  (* corrupting the entry degrades to a recompute with the same result *)
  corrupt_all_entries cache;
  let r3 =
    match Edge_harness.Experiment.run_one ~cache w cfg with
    | Ok r -> r
    | Error e -> Alcotest.failf "post-corruption run: %s" e
  in
  Alcotest.(check int) "recomputed cycles identical"
    r1.Edge_harness.Experiment.cycles r3.Edge_harness.Experiment.cycles;
  Alcotest.(check bool) "corruption recorded" true
    (Disk_cache.errors cache >= 1)

(* -- sharding, contention and faults ------------------------------ *)

let shard_of c key =
  Filename.basename (Filename.dirname (Disk_cache.path_of_key c ~key))

(* n keys whose digests land in the same fan-out directory — the
   worst case for directory-level races *)
let same_shard_keys c n =
  let target = shard_of c "w0" in
  let rec go i acc count =
    if count = n then List.rev acc
    else
      let k = "w" ^ string_of_int i in
      if shard_of c k = target then go (i + 1) (k :: acc) (count + 1)
      else go (i + 1) acc count
  in
  go 0 [] 0

let cache_sharded_layout () =
  let c = Disk_cache.create ~dir:(dc "dc_shape") () in
  for i = 0 to 63 do
    Disk_cache.store c ~key:(string_of_int i) i
  done;
  Alcotest.(check int) "all entries present" 64 (Disk_cache.entry_count c);
  (* no entry may sit at the top level; each lives under a 2-hex-digit
     shard directory that path_of_key points into *)
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        ("no top-level entry: " ^ f)
        false
        (Filename.check_suffix f ".bin"))
    (Sys.readdir (Disk_cache.dir c));
  for i = 0 to 63 do
    let key = string_of_int i in
    let shard = shard_of c key in
    Alcotest.(check int) ("shard name width for " ^ key) 2 (String.length shard);
    Alcotest.(check bool)
      ("entry on disk for " ^ key)
      true
      (Sys.file_exists (Disk_cache.path_of_key c ~key))
  done

(* several domains hammering the same shard: every key must stay
   readable with its exact payload, and no read may ever decode
   garbage (atomic tmp+rename is the mechanism under test) *)
let cache_concurrent_writers () =
  let c = Disk_cache.create ~dir:(dc "dc_race_write") () in
  let keys = same_shard_keys c 6 in
  let payload key = (key, String.length key, String.make 256 key.[0]) in
  let torn = Atomic.make 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 40 do
              List.iter
                (fun key ->
                  Disk_cache.store c ~key (payload key);
                  match Disk_cache.find c ~key with
                  | None -> () (* lost a transient race: clean miss is fine *)
                  | Some v -> if v <> payload key then Atomic.incr torn)
                keys
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get torn);
  Alcotest.(check int) "no decode errors" 0 (Disk_cache.errors c);
  List.iter
    (fun key ->
      Alcotest.(check bool)
        ("final value intact: " ^ key)
        true
        (Disk_cache.find c ~key = Some (payload key)))
    keys

(* a reader racing the evictor: each lookup must be the exact stored
   value or a clean miss — never a decode error *)
let cache_eviction_race () =
  let payload k = (k, String.make 2048 (Char.chr (97 + (k mod 26)))) in
  let c = Disk_cache.create ~dir:(dc "dc_evict_race") ~max_bytes:(32 * 1024) () in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          for k = 0 to 63 do
            match Disk_cache.find c ~key:("ev" ^ string_of_int k) with
            | None -> () (* evicted: clean miss *)
            | Some v -> if v <> payload k then Atomic.incr torn
          done
        done)
  in
  for _ = 1 to 4 do
    for k = 0 to 63 do
      Disk_cache.store c ~key:("ev" ^ string_of_int k) (payload k)
    done
  done;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "reads are hit-or-miss, never torn" 0 (Atomic.get torn);
  Alcotest.(check int) "no decode errors under eviction" 0 (Disk_cache.errors c);
  Alcotest.(check bool) "the cap actually evicted" true
    (Disk_cache.evictions c > 0)

(* size-cap soak: after every store the scan-measured usage must stay
   within cap + the just-written entry (the documented invariant) *)
let cache_size_cap_soak () =
  let cap = 16 * 1024 in
  let c = Disk_cache.create ~dir:(dc "dc_cap") ~max_bytes:cap () in
  Alcotest.(check (option int)) "cap recorded" (Some cap) (Disk_cache.max_bytes c);
  let last = ref "" in
  for i = 0 to 199 do
    let payload = String.make (512 + (64 * (i mod 7))) (Char.chr (97 + (i mod 26))) in
    last := payload;
    Disk_cache.store c ~key:("cap" ^ string_of_int i) payload;
    let usage = Disk_cache.disk_usage c in
    let bound = cap + String.length payload + 64 in
    if usage > bound then
      Alcotest.failf "store %d: usage %d exceeds cap+entry bound %d" i usage
      bound
  done;
  Alcotest.(check bool) "soak forced evictions" true (Disk_cache.evictions c > 0);
  Alcotest.(check (option string))
    "newest entry is never the victim" (Some !last)
    (Disk_cache.find c ~key:"cap199")

(* writers that die between write and rename leave *.tmp.* litter;
   opening a handle sweeps stale ones and spares live ones *)
let cache_tmp_sweep () =
  let dir = dc "dc_tmp" in
  let c = Disk_cache.create ~dir () in
  Disk_cache.store c ~key:"live" 41;
  let shard = Filename.dirname (Disk_cache.path_of_key c ~key:"live") in
  let plant name =
    let path = Filename.concat shard name in
    let oc = open_out_bin path in
    output_string oc "abandoned";
    close_out oc;
    path
  in
  let stale = plant "deadbeef.bin.tmp.1234.0" in
  Unix.utimes stale 1000. 1000. (* back-date far past tmp_max_age_s *);
  let fresh = plant "deadbeef.bin.tmp.1234.1" (* mtime = now: maybe live *) in
  let c2 = Disk_cache.create ~dir () in
  Alcotest.(check bool) "stale tmp swept" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh tmp spared" true (Sys.file_exists fresh);
  Alcotest.(check bool) "sweep counted" true (Disk_cache.tmp_swept c2 >= 1);
  Alcotest.(check (option int))
    "entries survive the sweep" (Some 41)
    (Disk_cache.find c2 ~key:"live")

let cache_publish_metrics () =
  let c = Disk_cache.create ~dir:(dc "dc_pub") () in
  Alcotest.(check (option int)) "miss" None (Disk_cache.find c ~key:"absent");
  Disk_cache.store c ~key:"a" 1;
  Disk_cache.store c ~key:"b" 2;
  Alcotest.(check (option int)) "hit" (Some 1) (Disk_cache.find c ~key:"a");
  let m = Edge_obs.Metrics.create () in
  Disk_cache.publish c m;
  let counter = Edge_obs.Metrics.counter m in
  Alcotest.(check int) "cache.hits" 1 (counter "cache.hits");
  Alcotest.(check int) "cache.misses" 1 (counter "cache.misses");
  Alcotest.(check int) "cache.stores" 2 (counter "cache.stores");
  Alcotest.(check int) "cache.errors" 0 (counter "cache.errors");
  Alcotest.(check int) "cache.bytes matches the scan" (Disk_cache.disk_usage c)
    (counter "cache.bytes");
  Alcotest.(check int) "shard occupancy sums to the entries" 2
    (Edge_obs.Metrics.hist_sum
       (Edge_obs.Metrics.histogram m "cache.shard.entries"))

(* -- sharded in-memory result cache ------------------------------- *)

let mem_basics () =
  let m = Mem_cache.create () in
  Alcotest.(check (option int)) "cold miss" None (Mem_cache.find m ~key:"a");
  Alcotest.(check int) "miss counted" 1 (Mem_cache.misses m);
  Mem_cache.store m ~key:"a" 1;
  Mem_cache.store m ~key:"b" 2;
  Alcotest.(check (option int)) "hit" (Some 1) (Mem_cache.find m ~key:"a");
  Alcotest.(check int) "hit counted" 1 (Mem_cache.hits m);
  Alcotest.(check int) "entries" 2 (Mem_cache.entry_count m);
  Mem_cache.store m ~key:"a" 10;
  Alcotest.(check (option int))
    "replace, not duplicate" (Some 10)
    (Mem_cache.find m ~key:"a");
  Alcotest.(check int) "replace keeps count" 2 (Mem_cache.entry_count m);
  Mem_cache.remove m ~key:"a";
  Alcotest.(check (option int)) "removed" None (Mem_cache.find m ~key:"a");
  Mem_cache.clear m;
  Alcotest.(check int) "cleared" 0 (Mem_cache.entry_count m)

let mem_eviction_lru () =
  (* one stripe so the whole cap lands in a single LRU clock *)
  let m = Mem_cache.create ~stripes:1 ~max_entries:3 () in
  Mem_cache.store m ~key:"a" 1;
  Mem_cache.store m ~key:"b" 2;
  Mem_cache.store m ~key:"c" 3;
  (* touch [a] so [b] is now the least recently used *)
  Alcotest.(check (option int)) "refresh a" (Some 1) (Mem_cache.find m ~key:"a");
  Mem_cache.store m ~key:"d" 4;
  Alcotest.(check int) "capped" 3 (Mem_cache.entry_count m);
  Alcotest.(check int) "one eviction" 1 (Mem_cache.evictions m);
  Alcotest.(check (option int)) "LRU victim gone" None (Mem_cache.find m ~key:"b");
  Alcotest.(check (option int)) "refreshed survives" (Some 1)
    (Mem_cache.find m ~key:"a");
  Alcotest.(check (option int)) "newest survives" (Some 4)
    (Mem_cache.find m ~key:"d")

let mem_publish_metrics () =
  let m = Mem_cache.create () in
  ignore (Mem_cache.find m ~key:"absent" : int option);
  Mem_cache.store m ~key:"a" 1;
  Mem_cache.store m ~key:"b" 2;
  Alcotest.(check (option int)) "hit" (Some 1) (Mem_cache.find m ~key:"a");
  let reg = Edge_obs.Metrics.create () in
  Mem_cache.publish m reg;
  let counter = Edge_obs.Metrics.counter reg in
  Alcotest.(check int) "cache.mem.hits" 1 (counter "cache.mem.hits");
  Alcotest.(check int) "cache.mem.misses" 1 (counter "cache.mem.misses");
  Alcotest.(check int) "cache.mem.stores" 2 (counter "cache.mem.stores");
  Alcotest.(check int) "cache.mem.entries" 2 (counter "cache.mem.entries");
  Alcotest.(check int) "stripe occupancy sums to the entries" 2
    (Edge_obs.Metrics.hist_sum
       (Edge_obs.Metrics.histogram reg "cache.mem.stripe.entries"))

(* domains hammering overlapping keys: every lookup must return a
   value some store put there for that exact key — stripe locking is
   the mechanism under test *)
let mem_concurrent () =
  let m = Mem_cache.create ~stripes:4 ~max_entries:64 () in
  let torn = Atomic.make 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 2000 do
              let key = "k" ^ string_of_int (i mod 16) in
              Mem_cache.store m ~key (key, d);
              match Mem_cache.find m ~key with
              | None -> () (* evicted by a neighbour: clean miss *)
              | Some (k, _) -> if k <> key then Atomic.incr torn
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn values" 0 (Atomic.get torn)

(* the two-layer coherence contract: a mem hit answers without
   touching the disk cache, a disk hit is promoted into the mem layer,
   and every layer returns the identical run *)
let mem_disk_coherence () =
  Edge_check.Check.without_check @@ fun () ->
  let w =
    match Edge_workloads.Registry.find "tblook01" with
    | Some w -> w
    | None -> Alcotest.fail "tblook01 missing from registry"
  in
  let cfg = ("Both", Dfp.Config.both) in
  let cache = Disk_cache.create ~dir:(dc "dc_mem_coherence") () in
  let mem = Mem_cache.create () in
  let run () =
    match Edge_harness.Experiment.run_one ~cache ~mem w cfg with
    | Ok r -> r
    | Error e -> Alcotest.failf "run: %s" e
  in
  let r1 = run () in
  Alcotest.(check int) "cold: disk missed" 1 (Disk_cache.misses cache);
  Alcotest.(check bool) "cold: mem populated" true (Mem_cache.stores mem >= 1);
  let disk_reads_before = Disk_cache.hits cache + Disk_cache.misses cache in
  let r2 = run () in
  Alcotest.(check int) "warm: no filesystem touch" disk_reads_before
    (Disk_cache.hits cache + Disk_cache.misses cache);
  Alcotest.(check bool) "warm: mem hit" true (Mem_cache.hits mem >= 1);
  Alcotest.(check bool) "mem hit identical" true
    (r1.Edge_harness.Experiment.cycles = r2.Edge_harness.Experiment.cycles
    && r1.Edge_harness.Experiment.stats = r2.Edge_harness.Experiment.stats);
  (* drop the mem layer: the disk layer answers and re-promotes *)
  Mem_cache.clear mem;
  let stores_before = Mem_cache.stores mem in
  let r3 = run () in
  Alcotest.(check int) "disk hit after mem clear" 1 (Disk_cache.hits cache);
  Alcotest.(check bool) "disk hit promoted to mem" true
    (Mem_cache.stores mem > stores_before);
  Alcotest.(check bool) "disk hit identical" true
    (r1.Edge_harness.Experiment.cycles = r3.Edge_harness.Experiment.cycles
    && r1.Edge_harness.Experiment.stats = r3.Edge_harness.Experiment.stats);
  (* and the promoted entry serves the next lookup from memory *)
  ignore (run () : Edge_harness.Experiment.run);
  Alcotest.(check int) "promotion serves from memory" 1 (Disk_cache.hits cache)

(* store_async persists after drain, and the payload round-trips even
   through a fresh handle on the same directory *)
let cache_async_writeback () =
  let dir = dc "dc_async" in
  let c = Disk_cache.create ~writeback:true ~dir () in
  for i = 0 to 31 do
    Disk_cache.store_async c ~key:("as" ^ string_of_int i) (i, String.make 128 'x')
  done;
  Disk_cache.drain c;
  Alcotest.(check int) "all stores landed" 32 (Disk_cache.entry_count c);
  let c2 = Disk_cache.create ~dir () in
  for i = 0 to 31 do
    Alcotest.(check (option (pair int string)))
      ("async entry " ^ string_of_int i)
      (Some (i, String.make 128 'x'))
      (Disk_cache.find c2 ~key:("as" ^ string_of_int i))
  done;
  (* without a writeback thread store_async degrades to a synchronous
     store: visible immediately, no drain needed *)
  let c3 = Disk_cache.create ~dir:(dc "dc_async_sync") () in
  Disk_cache.store_async c3 ~key:"k" 7;
  Alcotest.(check (option int)) "sync fallback" (Some 7)
    (Disk_cache.find c3 ~key:"k")

(* -- determinism of the parallel sweep ---------------------------- *)

(* the work-stealing pool must not let scheduling order leak into
   results: same inputs, same outputs, same order, for every jobs
   value — including deliberately lopsided task costs that force
   steals *)
let pool_stealing_deterministic () =
  let xs = List.init 200 Fun.id in
  let busy x =
    (* task cost swings by ~1000x across inputs *)
    let n = if x mod 17 = 0 then 20_000 else 20 in
    let acc = ref x in
    for i = 1 to n do
      acc := ((!acc * 1103515245) + i) land 0x3FFFFFFF
    done;
    !acc
  in
  let r1 = Pool.run ~jobs:1 busy xs in
  let r2 = Pool.run ~jobs:2 busy xs in
  let r4 = Pool.run ~jobs:4 busy xs in
  Alcotest.(check (list int)) "jobs=2 matches jobs=1" r1 r2;
  Alcotest.(check (list int)) "jobs=4 matches jobs=1" r1 r4

let sweep_deterministic () =
  let benches =
    List.filter_map Edge_workloads.Registry.find [ "tblook01"; "canrdr01" ]
  in
  let seq = Edge_harness.Figure7.run ~benches ~jobs:1 () in
  let par = Edge_harness.Figure7.run ~benches ~jobs:4 () in
  Alcotest.(check (list string))
    "no errors sequential" []
    (List.map fst seq.Edge_harness.Figure7.errors);
  Alcotest.(check (list string))
    "no errors parallel" []
    (List.map fst par.Edge_harness.Figure7.errors);
  let cycles r =
    List.map
      (fun row ->
        ( row.Edge_harness.Figure7.bench,
          row.Edge_harness.Figure7.cycles ))
      r.Edge_harness.Figure7.rows
  in
  Alcotest.(check (list (pair string (list (pair string int)))))
    "identical cycles for jobs=1 and jobs=4" (cycles seq) (cycles par);
  Alcotest.(check (list (pair string (float 0.0))))
    "identical geomeans" seq.Edge_harness.Figure7.mean_speedups
    par.Edge_harness.Figure7.mean_speedups

let tests =
  [
    Alcotest.test_case "pool map order" `Quick pool_map_order;
    Alcotest.test_case "pool filter_map" `Quick pool_filter_map;
    Alcotest.test_case "pool exception" `Quick pool_exception;
    Alcotest.test_case "pool reuse" `Quick pool_reuse;
    Alcotest.test_case "memo single flight" `Quick memo_single_flight;
    Alcotest.test_case "memo caches failure" `Quick memo_caches_failure;
    Alcotest.test_case "event queue fifo" `Quick queue_fifo_and_ordering;
    Alcotest.test_case "event queue far future" `Quick queue_far_future;
    Alcotest.test_case "event queue vs model" `Quick queue_matches_model;
    Alcotest.test_case "disk cache roundtrip" `Quick cache_roundtrip;
    Alcotest.test_case "disk cache key invalidation" `Quick
      cache_key_invalidation;
    Alcotest.test_case "disk cache corruption" `Quick cache_corruption;
    Alcotest.test_case "disk cache experiment roundtrip" `Quick
      cache_experiment_roundtrip;
    Alcotest.test_case "disk cache sharded layout" `Quick cache_sharded_layout;
    Alcotest.test_case "disk cache concurrent writers" `Quick
      cache_concurrent_writers;
    Alcotest.test_case "disk cache eviction vs reader" `Quick
      cache_eviction_race;
    Alcotest.test_case "disk cache size-cap soak" `Quick cache_size_cap_soak;
    Alcotest.test_case "disk cache tmp sweep" `Quick cache_tmp_sweep;
    Alcotest.test_case "disk cache publish metrics" `Quick
      cache_publish_metrics;
    Alcotest.test_case "disk cache async writeback" `Quick
      cache_async_writeback;
    Alcotest.test_case "mem cache basics" `Quick mem_basics;
    Alcotest.test_case "mem cache LRU eviction" `Quick mem_eviction_lru;
    Alcotest.test_case "mem cache publish metrics" `Quick mem_publish_metrics;
    Alcotest.test_case "mem cache concurrent" `Quick mem_concurrent;
    Alcotest.test_case "mem/disk cache coherence" `Quick mem_disk_coherence;
    Alcotest.test_case "pool stealing deterministic" `Quick
      pool_stealing_deterministic;
    Alcotest.test_case "sweep deterministic" `Slow sweep_deterministic;
  ]
