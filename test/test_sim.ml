module I = Edge_isa.Instr
module T = Edge_isa.Target
module O = Edge_isa.Opcode
module B = Edge_isa.Block
module Tok = Edge_isa.Token

let check = Alcotest.(check bool)

let run_one b =
  let regs = Array.make 128 0L in
  let mem = Edge_isa.Mem.create ~size:4096 in
  let stats = Edge_sim.Stats.create () in
  (regs, mem, stats, Edge_sim.Functional.run_block b ~regs ~mem ~stats)

(* predicate-OR: two producers target one predicate operand; only the
   matching one fires the consumer (Section 3.5 / rule 3) *)
let predicate_or () =
  let b =
    {
      B.name = "por";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 2; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:O.Movi ~imm:1L
            ~targets:[ T.To_instr { id = 3; slot = T.Left } ] ();
          I.make ~id:2 ~opcode:(O.Tsti O.Eq) ~imm:7L
            ~targets:[ T.To_instr { id = 4; slot = T.Pred } ] ();
          I.make ~id:3 ~opcode:(O.Tsti O.Eq) ~imm:1L
            ~targets:[ T.To_instr { id = 4; slot = T.Pred } ] ();
          I.make ~id:4 ~opcode:O.Movi ~pred:I.If_true ~imm:42L
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:5 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let regs, _, _, r = run_one b in
  (match r with
  | Ok o -> check "no fault" true (o.Edge_sim.Functional.faulted = None)
  | Error e -> Alcotest.failf "%s" e);
  check "consumer fired on the one matching predicate" true (regs.(9) = 42L)

(* two matching predicates violate rule 3 and must be diagnosed *)
let double_match_rejected () =
  let b =
    {
      B.name = "dm";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:1L
            ~targets:[ T.To_instr { id = 2; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:O.Movi ~imm:1L
            ~targets:[ T.To_instr { id = 3; slot = T.Left } ] ();
          I.make ~id:2 ~opcode:(O.Tsti O.Eq) ~imm:1L
            ~targets:[ T.To_instr { id = 4; slot = T.Pred } ] ();
          I.make ~id:3 ~opcode:(O.Tsti O.Eq) ~imm:1L
            ~targets:[ T.To_instr { id = 4; slot = T.Pred } ] ();
          I.make ~id:4 ~opcode:O.Movi ~pred:I.If_true ~imm:42L
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:5 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let _, _, _, r = run_one b in
  match r with
  | Error e -> check "mentions predicates" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "two matching predicates must be rejected"

(* null token to a register write: the write resolves but architectural
   state is unchanged (Section 4.2) *)
let null_write () =
  let b =
    {
      B.name = "nw";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 1; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:(O.Tsti O.Eq) ~imm:0L
            ~targets:[ T.To_instr { id = 2; slot = T.Pred }; T.To_instr { id = 3; slot = T.Pred } ]
            ();
          I.make ~id:2 ~opcode:O.Movi ~pred:I.If_false ~imm:42L
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:3 ~opcode:O.Null ~pred:I.If_true
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:4 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let regs, _, _, r = run_one b in
  regs.(9) <- 0L;
  (* note: run_one already executed; rerun with a sentinel *)
  let regs2 = Array.make 128 0L in
  regs2.(9) <- 1234L;
  let mem = Edge_isa.Mem.create ~size:4096 in
  let stats = Edge_sim.Stats.create () in
  (match Edge_sim.Functional.run_block b ~regs:regs2 ~mem ~stats with
  | Ok o -> check "no fault" true (o.Edge_sim.Functional.faulted = None)
  | Error e -> Alcotest.failf "%s" e);
  check "nulled write preserves register" true (regs2.(9) = 1234L);
  ignore (regs, r)

(* null token to a store: the store slot resolves as a null store and a
   later load is not blocked (Section 4.2) *)
let null_store_and_lsid_order () =
  let b =
    {
      B.name = "ns";
      instrs =
        [|
          (* address 64 *)
          I.make ~id:0 ~opcode:O.Movi ~imm:64L
            ~targets:
              [ T.To_instr { id = 3; slot = T.Left }; T.To_instr { id = 4; slot = T.Left } ]
            ();
          I.make ~id:1 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 2; slot = T.Left } ] ();
          I.make ~id:2 ~opcode:(O.Tsti O.Eq) ~imm:0L
            ~targets:[ T.To_instr { id = 5; slot = T.Pred } ] ();
          (* store lsid 0, waiting for data that never comes on this path:
             the null resolves it *)
          I.make ~id:3 ~opcode:(O.St O.W8) ~lsid:0 ();
          (* load lsid 1 must wait for lsid 0, then read memory *)
          I.make ~id:4 ~opcode:(O.Ld O.W8) ~lsid:1
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:5 ~opcode:O.Null ~pred:I.If_true
            ~targets:[ T.To_instr { id = 3; slot = T.Right } ] ();
          I.make ~id:6 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [ 0 ];
      exits = [| B.halt_exit |];
    }
  in
  let regs = Array.make 128 0L in
  let mem = Edge_isa.Mem.create ~size:4096 in
  Edge_isa.Mem.store_int mem 64 777L;
  let stats = Edge_sim.Stats.create () in
  (match Edge_sim.Functional.run_block b ~regs ~mem ~stats with
  | Ok o -> check "no fault" true (o.Edge_sim.Functional.faulted = None)
  | Error e -> Alcotest.failf "%s" e);
  check "load saw memory after null store" true (regs.(9) = 777L)

(* store-to-load forwarding within a block, in LSID order *)
let store_forwarding () =
  let b =
    {
      B.name = "fw";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:64L
            ~targets:
              [ T.To_instr { id = 2; slot = T.Left }; T.To_instr { id = 3; slot = T.Left } ]
            ();
          I.make ~id:1 ~opcode:O.Movi ~imm:55L
            ~targets:[ T.To_instr { id = 2; slot = T.Right } ] ();
          I.make ~id:2 ~opcode:(O.St O.W8) ~lsid:0 ();
          I.make ~id:3 ~opcode:(O.Ld O.W8) ~lsid:1 ~targets:[ T.To_write 0 ] ();
          I.make ~id:4 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [ 0 ];
      exits = [| B.halt_exit |];
    }
  in
  let regs, mem, _, r = run_one b in
  (match r with
  | Ok o -> check "no fault" true (o.Edge_sim.Functional.faulted = None)
  | Error e -> Alcotest.failf "%s" e);
  check "forwarded value" true (regs.(9) = 55L);
  check "store committed" true (Edge_isa.Mem.load_int mem 64 = 55L)

(* a mispredicated path's exception is filtered (Section 4.4) *)
let exception_filtered () =
  let b =
    {
      B.name = "exc";
      instrs =
        [|
          (* a faulting load on the not-taken path *)
          I.make ~id:0 ~opcode:O.Movi ~imm:3999L
            ~targets:[ T.To_instr { id = 1; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:(O.Ld O.W8) ~lsid:0
            ~targets:[ T.To_instr { id = 4; slot = T.Left } ] ();
          I.make ~id:2 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 3; slot = T.Left } ] ();
          I.make ~id:3 ~opcode:(O.Tsti O.Eq) ~imm:0L
            ~targets:
              [ T.To_instr { id = 4; slot = T.Pred }; T.To_instr { id = 5; slot = T.Pred } ]
            ();
          (* mov of the excepting value, predicated false: never fires *)
          I.make ~id:4 ~opcode:(O.Un O.Mov) ~pred:I.If_false
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:5 ~opcode:O.Movi ~pred:I.If_true ~imm:5L
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:6 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let regs, _, _, r = run_one b in
  (match r with
  | Ok o -> check "exception filtered" true (o.Edge_sim.Functional.faulted = None)
  | Error e -> Alcotest.failf "%s" e);
  check "true path value committed" true (regs.(9) = 5L)

(* an exception reaching a committed output faults the block *)
let exception_raises () =
  let b =
    {
      B.name = "exc2";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:3999L
            ~targets:[ T.To_instr { id = 1; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:(O.Ld O.W8) ~lsid:0 ~targets:[ T.To_write 0 ] ();
          I.make ~id:2 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let _, _, _, r = run_one b in
  match r with
  | Ok o -> check "faulted" true (o.Edge_sim.Functional.faulted <> None)
  | Error e -> Alcotest.failf "malformed: %s" e

(* deadlock diagnosis: an output that can never be produced *)
let deadlock_diagnosed () =
  let b =
    {
      B.name = "dl";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 1; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:(O.Tsti O.Eq) ~imm:1L
            ~targets:[ T.To_instr { id = 2; slot = T.Pred } ] ();
          (* only fires on true, but the test yields false: W0 starves *)
          I.make ~id:2 ~opcode:O.Movi ~pred:I.If_true ~imm:1L
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:3 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let _, _, _, r = run_one b in
  match r with
  | Error e -> check "deadlock reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "starved output must be diagnosed"

let cache_behaviour () =
  let c =
    Edge_sim.Cache.create ~size_bytes:1024 ~ways:2 ~line_bytes:64 ~hit_latency:2
  in
  check "cold miss" false (Edge_sim.Cache.access c ~addr:0L ~write:false);
  check "hit after fill" true (Edge_sim.Cache.access c ~addr:8L ~write:false);
  check "different line misses" false
    (Edge_sim.Cache.access c ~addr:64L ~write:false);
  (* 8 sets * 64B: addresses 0 and 1024 and 2048 map to set 0 in a 2-way
     cache; the third evicts the LRU (addr 0) *)
  ignore (Edge_sim.Cache.access c ~addr:1024L ~write:false);
  ignore (Edge_sim.Cache.access c ~addr:2048L ~write:false);
  check "lru evicted" false (Edge_sim.Cache.access c ~addr:0L ~write:false)

let predictor_learns () =
  let p = Edge_sim.Predictor.create () in
  check "cold predicts nothing" true (Edge_sim.Predictor.predict p ~block:"b" = None);
  Edge_sim.Predictor.update p ~block:"b" ~exit_idx:0 ~target:"c";
  check "learned target" true (Edge_sim.Predictor.predict p ~block:"b" = Some "c")

(* early termination ablation: disabling it cannot make execution faster *)
let early_termination_ablation () =
  let src =
    "kernel f(int n, int* a) { int s = 0; int i; for (i = 0; i < n; i = i + \
     1) { if (a[i] > 0) { s = s + a[i] * 3; } else { s = s - 1; } } return \
     s; }"
  in
  let compile () =
    match Edge_lang.Lower.compile src with
    | Error e -> Alcotest.failf "%s" e
    | Ok cfg -> (
        match Dfp.Driver.compile_cfg cfg Dfp.Config.hyper_baseline with
        | Error e -> Alcotest.failf "%s" e
        | Ok c -> c)
  in
  let run machine =
    let c = compile () in
    let regs = Array.make 128 0L in
    regs.(Edge_isa.Conventions.param_reg 0) <- 16L;
    regs.(Edge_isa.Conventions.param_reg 1) <- 1024L;
    let mem = Edge_isa.Mem.create ~size:8192 in
    for i = 0 to 15 do
      Edge_isa.Mem.store_int mem (1024 + (8 * i)) (Int64.of_int (i - 8))
    done;
    let placement n =
      match List.assoc_opt n c.Dfp.Driver.placements with
      | Some p -> p
      | None -> [||]
    in
    match
      Edge_sim.Cycle_sim.run ~machine ~placement c.Dfp.Driver.program ~regs
        ~mem
    with
    | Ok s -> s.Edge_sim.Stats.cycles
    | Error e -> Alcotest.failf "cycle: %s" e
  in
  let fast = run Edge_sim.Machine.default in
  let slow =
    run { Edge_sim.Machine.default with Edge_sim.Machine.early_termination = false }
  in
  check "early termination helps (or is neutral)" true (fast <= slow)


(* Section 4.4: an arriving predicate with the exception bit set is
   interpreted as a false predicate, and if the instruction fires its
   output carries the exception tag. *)
let exc_predicate_as_false () =
  let b =
    {
      B.name = "excpred";
      instrs =
        [|
          (* bad load produces an exception-tagged token used as a predicate *)
          I.make ~id:0 ~opcode:O.Movi ~imm:3999L
            ~targets:[ T.To_instr { id = 1; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:(O.Ld O.W8) ~lsid:0
            ~targets:
              [ T.To_instr { id = 2; slot = T.Pred }; T.To_instr { id = 3; slot = T.Pred } ]
            ();
          (* predicated on true: must NOT fire *)
          I.make ~id:2 ~opcode:O.Movi ~pred:I.If_true ~imm:1L
            ~targets:[ T.To_write 0 ] ();
          (* predicated on false: fires, and its output carries exc *)
          I.make ~id:3 ~opcode:O.Movi ~pred:I.If_false ~imm:2L
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:4 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let _, _, _, r = run_one b in
  match r with
  | Ok o ->
      (* the false-predicated movi fired and its exception-tagged output
         reached a write: the block must fault (Section 4.4: "If the
         instruction fires, it produces an exception-tagged output") *)
      check "block faulted" true (o.Edge_sim.Functional.faulted <> None)
  | Error e -> Alcotest.failf "malformed: %s" e

(* inter-block communication: a value written by one block is read by the
   next, through the cycle simulator's in-flight forwarding *)
let interblock_forwarding () =
  let mk_block name imm wreg exits ~read =
    {
      B.name;
      instrs =
        (match read with
        | false ->
            [|
              I.make ~id:0 ~opcode:O.Movi ~imm ~targets:[ T.To_write 0 ] ();
              I.make ~id:1 ~opcode:O.Bro ~exit_idx:0 ();
            |]
        | true ->
            [|
              I.make ~id:0 ~opcode:(O.Iopi O.Add) ~imm
                ~targets:[ T.To_write 0 ] ();
              I.make ~id:1 ~opcode:O.Bro ~exit_idx:0 ();
            |]);
      reads =
        (if read then
           [| { B.rslot = 0; reg = 9; rtargets = [ T.To_instr { id = 0; slot = T.Left } ] } |]
         else [||]);
      writes = [| { B.wslot = 0; wreg } |];
      store_lsids = [];
      exits;
    }
  in
  let b1 = mk_block "one" 5L 9 [| "two" |] ~read:false in
  let b2 = mk_block "two" 7L 9 [| "three" |] ~read:true in
  let b3 = mk_block "three" 100L 1 [| B.halt_exit |] ~read:true in
  (* three reads g9 (=12) and adds 100 into g1, then halts via Bro *)
  let b3 =
    { b3 with B.instrs = [| (b3.B.instrs.(0)); I.make ~id:1 ~opcode:O.Halt () |] }
  in
  let program = Result.get_ok (Edge_isa.Program.make ~entry:"one" [ b1; b2; b3 ]) in
  let regs = Array.make 128 0L in
  let mem = Edge_isa.Mem.create ~size:1024 in
  (match Edge_sim.Cycle_sim.run program ~regs ~mem with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "cycle: %s" e);
  check "chained through in-flight writes" true (regs.(1) = 112L)

(* a store in an older in-flight block must be visible to a load in a
   younger block before either commits *)
let interblock_store_to_load () =
  let store_block =
    {
      B.name = "producer";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:64L
            ~targets:[ T.To_instr { id = 2; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:O.Movi ~imm:42L
            ~targets:[ T.To_instr { id = 2; slot = T.Right } ] ();
          I.make ~id:2 ~opcode:(O.St O.W8) ~lsid:0 ();
          I.make ~id:3 ~opcode:O.Bro ~exit_idx:0 ();
        |];
      reads = [||];
      writes = [||];
      store_lsids = [ 0 ];
      exits = [| "consumer" |];
    }
  in
  let load_block =
    {
      B.name = "consumer";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:64L
            ~targets:[ T.To_instr { id = 1; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:(O.Ld O.W8) ~lsid:0 ~targets:[ T.To_write 0 ] ();
          I.make ~id:2 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 1 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let program =
    Result.get_ok (Edge_isa.Program.make ~entry:"producer" [ store_block; load_block ])
  in
  let regs = Array.make 128 0L in
  let mem = Edge_isa.Mem.create ~size:1024 in
  (match Edge_sim.Cycle_sim.run program ~regs ~mem with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "cycle: %s" e);
  check "forwarded across blocks" true (regs.(1) = 42L);
  check "committed to memory" true (Edge_isa.Mem.load_int mem 64 = 42L)

(* the watchdog fires on a self-looping program instead of hanging *)
let watchdog_fires () =
  let b =
    {
      B.name = "spin";
      instrs = [| I.make ~id:0 ~opcode:O.Bro ~exit_idx:0 () |];
      reads = [||];
      writes = [||];
      store_lsids = [];
      exits = [| "spin" |];
    }
  in
  let program = Result.get_ok (Edge_isa.Program.make ~entry:"spin" [ b ]) in
  let machine = { Edge_sim.Machine.default with Edge_sim.Machine.max_cycles = 5000 } in
  let regs = Array.make 128 0L in
  let mem = Edge_isa.Mem.create ~size:64 in
  match Edge_sim.Cycle_sim.run ~machine program ~regs ~mem with
  | Error e -> check "watchdog" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "must not halt"

(* stats sanity on a real run: committed <= executed blocks, committed
   instr class counts add up *)
let stats_sanity () =
  let w = Option.get (Edge_workloads.Registry.find "canrdr01") in
  match Edge_harness.Experiment.run_one w ("Both", Dfp.Config.both) with
  | Error e -> Alcotest.failf "%s" e
  | Ok r ->
      let s = r.Edge_harness.Experiment.stats in
      check "committed <= executed blocks" true
        (s.Edge_sim.Stats.blocks_committed <= s.Edge_sim.Stats.blocks_executed);
      check "executed >= committed instrs" true
        (s.Edge_sim.Stats.instrs_executed >= s.Edge_sim.Stats.instrs_committed);
      check "moves within executed" true
        (s.Edge_sim.Stats.moves_executed <= s.Edge_sim.Stats.instrs_executed);
      check "cycles positive" true (s.Edge_sim.Stats.cycles > 0);
      check "fetched >= executed" true
        (s.Edge_sim.Stats.instrs_fetched + s.Edge_sim.Stats.instrs_executed > 0)


(* Section 7 extension: the short-circuiting AND instruction *)
let sand_semantics () =
  (* left false fires without the right operand (whose producer never
     fires here) *)
  let b =
    {
      B.name = "sand1";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 3; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 2; slot = T.Left } ] ();
          (* right producer predicated on a predicate that never matches *)
          I.make ~id:2 ~opcode:(O.Tsti O.Eq) ~imm:0L
            ~targets:[ T.To_instr { id = 4; slot = T.Pred } ] ();
          I.make ~id:3 ~opcode:O.Sand
            ~targets:[ T.To_write 0 ] ();
          I.make ~id:4 ~opcode:O.Movi ~pred:I.If_false ~imm:9L
            ~targets:[ T.To_instr { id = 3; slot = T.Right } ] ();
          I.make ~id:5 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let regs, _, _, r = run_one b in
  (match r with
  | Ok o -> check "no fault" true (o.Edge_sim.Functional.faulted = None)
  | Error e -> Alcotest.failf "%s" e);
  check "short-circuited to false" true (regs.(9) = 0L)

let sand_conjunction () =
  List.iter
    (fun (l, rv, expect) ->
      let b =
        {
          B.name = "sand2";
          instrs =
            [|
              I.make ~id:0 ~opcode:O.Movi ~imm:l
                ~targets:[ T.To_instr { id = 2; slot = T.Left } ] ();
              I.make ~id:1 ~opcode:O.Movi ~imm:rv
                ~targets:[ T.To_instr { id = 2; slot = T.Right } ] ();
              I.make ~id:2 ~opcode:O.Sand ~targets:[ T.To_write 0 ] ();
              I.make ~id:3 ~opcode:O.Halt ();
            |];
          reads = [||];
          writes = [| { B.wslot = 0; wreg = 9 } |];
          store_lsids = [];
          exits = [| B.halt_exit |];
        }
      in
      let regs, _, _, r = run_one b in
      (match r with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s" e);
      check (Printf.sprintf "sand %Ld %Ld" l rv) true (regs.(9) = expect))
    [ (1L, 1L, 1L); (1L, 0L, 0L); (0L, 1L, 0L); (0L, 0L, 0L) ]

let sand_filters_right_exception () =
  (* left false + excepting right: C semantics say the right is never
     evaluated, so the exception must not surface *)
  let b =
    {
      B.name = "sand3";
      instrs =
        [|
          I.make ~id:0 ~opcode:O.Movi ~imm:0L
            ~targets:[ T.To_instr { id = 3; slot = T.Left } ] ();
          I.make ~id:1 ~opcode:O.Movi ~imm:3999L
            ~targets:[ T.To_instr { id = 2; slot = T.Left } ] ();
          I.make ~id:2 ~opcode:(O.Ld O.W8) ~lsid:0
            ~targets:[ T.To_instr { id = 3; slot = T.Right } ] ();
          I.make ~id:3 ~opcode:O.Sand ~targets:[ T.To_write 0 ] ();
          I.make ~id:4 ~opcode:O.Halt ();
        |];
      reads = [||];
      writes = [| { B.wslot = 0; wreg = 9 } |];
      store_lsids = [];
      exits = [| B.halt_exit |];
    }
  in
  let _, _, _, r = run_one b in
  match r with
  | Ok o ->
      (* note: the excepting load may or may not have fired before the
         sand; either way the committed write must be exception-free *)
      check "no fault (right filtered)" true (o.Edge_sim.Functional.faulted = None)
  | Error e -> Alcotest.failf "%s" e

(* Stats.add must accumulate every counter; the parallel harness relies
   on it to merge per-domain statistics. *)
let stats_accumulate () =
  let module S = Edge_sim.Stats in
  let a = S.create () and b = S.create () in
  a.S.cycles <- 10;
  a.S.blocks_executed <- 3;
  a.S.instrs_executed <- 40;
  a.S.moves_executed <- 7;
  a.S.dcache_accesses <- 5;
  b.S.cycles <- 32;
  b.S.blocks_executed <- 4;
  b.S.blocks_flushed <- 2;
  b.S.instrs_executed <- 60;
  b.S.branch_mispredicts <- 1;
  b.S.dcache_misses <- 2;
  S.add a b;
  check "cycles" true (a.S.cycles = 42);
  check "blocks executed" true (a.S.blocks_executed = 7);
  check "blocks flushed" true (a.S.blocks_flushed = 2);
  check "instrs executed" true (a.S.instrs_executed = 100);
  check "moves" true (a.S.moves_executed = 7);
  check "mispredicts" true (a.S.branch_mispredicts = 1);
  check "dcache accesses" true (a.S.dcache_accesses = 5);
  check "dcache misses" true (a.S.dcache_misses = 2);
  (* b is the source and must be untouched *)
  check "source untouched" true (b.S.cycles = 32);
  (* adding a zero stats is the identity *)
  S.add a (S.create ());
  check "zero identity" true (a.S.cycles = 42 && a.S.instrs_executed = 100)

(* exit predictor: training, retargeting, and the outcome counters *)
let predictor_update_mispredict () =
  let module P = Edge_sim.Predictor in
  let p = P.create () in
  check "cold" true (P.predict p ~block:"loop" = None);
  P.update p ~block:"loop" ~exit_idx:0 ~target:"body";
  check "learned" true (P.predict p ~block:"loop" = Some "body");
  (* repeated training with the same history must stay stable *)
  P.update p ~block:"loop" ~exit_idx:0 ~target:"body";
  check "stable" true (P.predict p ~block:"loop" = Some "body");
  check "no outcomes yet" true (P.predictions p = 0 && P.mispredicts p = 0);
  P.record_outcome p ~correct:true;
  P.record_outcome p ~correct:false;
  P.record_outcome p ~correct:false;
  check "predictions counted" true (P.predictions p = 3);
  check "mispredicts counted" true (P.mispredicts p = 2)

(* cache: write-allocate, flush, and that hits don't evict *)
let cache_eviction_flush () =
  let module C = Edge_sim.Cache in
  let c = C.create ~size_bytes:1024 ~ways:2 ~line_bytes:64 ~hit_latency:2 in
  check "latency" true (C.hit_latency c = 2);
  (* write miss allocates the line (write-allocate) *)
  check "write cold miss" false (C.access c ~addr:256L ~write:true);
  check "read hits written line" true (C.access c ~addr:300L ~write:false);
  (* 8 sets: 0, 512, 1024 share set 0 in a 2-way cache. Touching the
     older line keeps it most-recently-used, so the third address must
     evict the other way. *)
  ignore (C.access c ~addr:0L ~write:false);
  ignore (C.access c ~addr:512L ~write:false);
  ignore (C.access c ~addr:0L ~write:false);
  ignore (C.access c ~addr:1024L ~write:false);
  check "mru survives eviction" true (C.access c ~addr:0L ~write:false);
  check "lru evicted" false (C.access c ~addr:512L ~write:false);
  C.flush c;
  check "flush empties" false (C.access c ~addr:0L ~write:false)

let tests =


  [
    Alcotest.test_case "predicate OR" `Quick predicate_or;
    Alcotest.test_case "double match rejected" `Quick double_match_rejected;
    Alcotest.test_case "null write" `Quick null_write;
    Alcotest.test_case "null store + lsid order" `Quick null_store_and_lsid_order;
    Alcotest.test_case "store forwarding" `Quick store_forwarding;
    Alcotest.test_case "exception filtered (4.4)" `Quick exception_filtered;
    Alcotest.test_case "exception raises" `Quick exception_raises;
    Alcotest.test_case "deadlock diagnosed" `Quick deadlock_diagnosed;
    Alcotest.test_case "cache behaviour" `Quick cache_behaviour;
    Alcotest.test_case "predictor learns" `Quick predictor_learns;
    Alcotest.test_case "early termination ablation" `Quick early_termination_ablation;
    Alcotest.test_case "exc predicate as false (4.4)" `Quick exc_predicate_as_false;
    Alcotest.test_case "inter-block register forwarding" `Quick interblock_forwarding;
    Alcotest.test_case "inter-block store-to-load" `Quick interblock_store_to_load;
    Alcotest.test_case "watchdog fires" `Quick watchdog_fires;
    Alcotest.test_case "stats sanity" `Quick stats_sanity;
    Alcotest.test_case "sand short-circuit (7)" `Quick sand_semantics;
    Alcotest.test_case "sand conjunction" `Quick sand_conjunction;
    Alcotest.test_case "sand filters right exception" `Quick
      sand_filters_right_exception;
    Alcotest.test_case "stats accumulate" `Quick stats_accumulate;
    Alcotest.test_case "predictor update/mispredict" `Quick
      predictor_update_mispredict;
    Alcotest.test_case "cache eviction + flush" `Quick cache_eviction_flush;
  ]
