(* A process-private scratch root for tests that write directories
   (disk caches, regenerated artifacts). `dune runtest` sandboxes each
   test, but the suite is also run directly from the repo root (`dune
   exec test/test_main.exe`), where a relative directory would litter
   the tree — so every scratch path lives under one temp root that is
   removed at exit. *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun f -> rm_rf (Filename.concat path f))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let root =
  lazy
    (let base = Filename.temp_file "dfp_test" "" in
     Sys.remove base;
     Unix.mkdir base 0o700;
     at_exit (fun () -> rm_rf base);
     base)

(* a path under the scratch root; the directory itself is NOT created —
   Disk_cache.create and friends make their own *)
let path name = Filename.concat (Lazy.force root) name
