(* Compatibility shim: the differential-testing backbone now lives in
   lib/fuzz (Edge_fuzz.Oracle), which compares the reference interpreter
   against the functional executor and the cycle simulator under every
   compiler configuration, runs the static block validator on every
   compiled artifact, and additionally compares committed-store counts
   (DESIGN.md, "Differential testing backbone"). *)

exception Skip = Edge_fuzz.Oracle.Skip

let configs = Edge_fuzz.Oracle.configs
let check_kernel = Edge_fuzz.Oracle.check_kernel
