(* The golden-trace set: which kernels x configurations are locked by
   byte-identical trace files in test/golden/, shared by the regression
   suite (test_obs), the regenerator (regen_golden) and the smoke check
   (trace_smoke).

   Runs happen either from the repo root (`dune exec test/...`) or from
   the test directory inside _build (`dune runtest`), so directory
   lookup probes both. *)

let kernels =
  [ "pred_diamond"; "loop_accum"; "null_stores"; "sand_gate"; "break_path" ]

let configs =
  [ ("Hyper", Dfp.Config.hyper_baseline); ("Both", Dfp.Config.both) ]

let find_dir candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None ->
      failwith
        (Printf.sprintf "none of [%s] exists; run from the repo root"
           (String.concat "; " candidates))

let kernel_dir () = find_dir [ "examples/kernels"; "../examples/kernels" ]
let golden_dir () = find_dir [ "test/golden"; "golden" ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let kernel_source name =
  read_file (Filename.concat (kernel_dir ()) (name ^ ".k"))

let golden_name ?machine kernel config =
  match machine with
  | None -> kernel ^ "__" ^ config ^ ".trace"
  | Some m -> kernel ^ "__" ^ config ^ "__" ^ m ^ ".trace"

(* every (kernel, config name, config) element of the locked set *)
let all () =
  List.concat_map
    (fun k -> List.map (fun (cn, c) -> (k, cn, c)) configs)
    kernels

(* the in-order backend's locked set: the same five kernels under the
   full optimization pipeline on the scalar core, named
   [<kernel>__<config>__inorder.trace] *)
let inorder_tag = "inorder"
let inorder_machine = Edge_sim.Machine.inorder_edge
let inorder_all () = List.map (fun k -> (k, "Both", Dfp.Config.both)) kernels
