(* Compatibility shim: random kernel generation now lives in lib/fuzz
   (Edge_fuzz.Gen), shared by the test suite, test/minimize.exe and
   bin/fuzz.exe. Programs are closed over a fixed memory layout — two
   64-element int arrays at fixed addresses plus two scalar parameters —
   so every run of a generated kernel is comparable across the reference
   interpreter and both simulators. *)

let array_len = Edge_fuzz.Gen.array_len
let addr_a = Edge_fuzz.Gen.addr_a
let addr_b = Edge_fuzz.Gen.addr_b
let generate = Edge_fuzz.Gen.generate
let default_args = Edge_fuzz.Gen.default_args
let default_mem = Edge_fuzz.Gen.default_mem
