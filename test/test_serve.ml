(* The job server: protocol parsing, request handling, single-flight
   dedup, backpressure, timeouts, and — the property the whole serve
   layer must preserve — server responses byte-identical to a direct
   Experiment.run_one at every -j.

   Servers bind relative socket paths, which the dune sandbox keeps
   private to this test run (and short enough for sun_path). *)

module Json = Edge_serve.Json
module Proto = Edge_serve.Proto
module Server = Edge_serve.Server
module Client = Edge_serve.Client
module Disk_cache = Edge_parallel.Disk_cache
module Experiment = Edge_harness.Experiment

let rtype v = Option.value (Json.str_member "type" v) ~default:"?"
let reason v = Option.value (Json.str_member "reason" v) ~default:"?"

let with_server ?cache ?(jobs = 2) ?queue_cap name f =
  let cfg = Server.default_config ?cache ~socket_path:(name ^ ".sock") () in
  let cfg =
    { cfg with jobs; queue_cap = Option.value queue_cap ~default:cfg.queue_cap }
  in
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let run_ok c job =
  match Client.run_job c job with
  | Ok v when rtype v = "done" -> v
  | Ok v -> Alcotest.failf "expected done, got %s" (Json.to_string v)
  | Error e -> Alcotest.failf "client error: %s" e

(* -- json / protocol unit tests ------------------------------------ *)

let json_roundtrip () =
  let cases =
    [
      "null"; "true"; "-12"; "3.5"; "\"a\\n\\\"b\\\\\""; "[]"; "[1,2,[3]]";
      "{}"; "{\"k\":1,\"nest\":{\"a\":[true,null]}}";
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok v -> (
          (* print → reparse → print is a fixpoint *)
          let p = Json.to_string v in
          match Json.parse p with
          | Error e -> Alcotest.failf "reparse %S: %s" p e
          | Ok v' ->
              Alcotest.(check string) ("fixpoint " ^ s) p (Json.to_string v')))
    cases;
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "nul"; "{\"a\"}"; "\"\\x\""; "1 2"; "{'a':1}" ]

let proto_parse () =
  (match Proto.parse_request "{\"id\":\"x\",\"workload\":\"w\",\"config\":\"Both\"}" with
  | { Proto.id = Some "x"; req = Ok (Proto.Job s) } ->
      Alcotest.(check bool) "workload kind" true (s.Proto.kind = `Workload "w");
      Alcotest.(check string) "config" "Both" s.Proto.config;
      Alcotest.(check bool) "no trace" false s.Proto.trace
  | _ -> Alcotest.fail "workload job did not parse");
  (match Proto.parse_request "{\"source\":\"kernel k\",\"config\":\"Both\",\"trace\":true,\"fuel\":5}" with
  | { Proto.req = Ok (Proto.Job s); _ } ->
      Alcotest.(check bool) "source kind" true (s.Proto.kind = `Source "kernel k");
      Alcotest.(check bool) "trace on" true s.Proto.trace;
      Alcotest.(check (option int)) "fuel" (Some 5) s.Proto.fuel
  | _ -> Alcotest.fail "source job did not parse");
  (match
     Proto.parse_request
       "{\"workload\":\"w\",\"config\":\"Both\",\"machine\":\"inorder_edge\"}"
   with
  | { Proto.req = Ok (Proto.Job s); _ } ->
      Alcotest.(check (option string))
        "machine" (Some "inorder_edge") s.Proto.machine
  | _ -> Alcotest.fail "machine job did not parse");
  (match Proto.parse_request "{\"op\":\"ping\"}" with
  | { Proto.req = Ok Proto.Ping; _ } -> ()
  | _ -> Alcotest.fail "ping did not parse");
  (* structured rejections, id preserved when recoverable *)
  List.iter
    (fun line ->
      match Proto.parse_request line with
      | { Proto.req = Error _; _ } -> ()
      | _ -> Alcotest.failf "%S should not parse" line)
    [
      "not json";
      "[]";
      "{\"op\":\"reboot\"}";
      "{\"workload\":\"w\"}" (* missing config *);
      "{\"workload\":1,\"config\":\"Both\"}";
      "{\"workload\":\"w\",\"source\":\"s\",\"config\":\"Both\"}";
      "{\"source\":\"s\",\"config\":\"Both\",\"fuel\":0}";
      "{\"source\":\"s\",\"config\":\"Both\",\"trace\":\"yes\"}";
      "{\"workload\":\"w\",\"config\":\"Both\",\"machine\":7}";
    ];
  match Proto.parse_request "{\"id\":\"j7\",\"op\":\"nope\"}" with
  | { Proto.id = Some "j7"; req = Error _ } -> ()
  | _ -> Alcotest.fail "id should survive a bad op"

(* identical jobs merge, different bounds do not *)
let proto_digest () =
  let base =
    {
      Proto.kind = `Source "kernel k";
      config = "Both";
      machine = None;
      image = None;
      trace = false;
      lint = false;
      timeout_ms = None;
      max_cycles = None;
      fuel = None;
    }
  in
  let d = Proto.job_digest in
  Alcotest.(check string) "digest is stable" (d base) (d base);
  Alcotest.(check string)
    "timeout/trace do not split the flight"
    (d base)
    (d { base with trace = true; timeout_ms = Some 5 });
  Alcotest.(check bool) "config splits" true (d base <> d { base with config = "Hyper" });
  Alcotest.(check bool) "fuel splits" true (d base <> d { base with fuel = Some 9 });
  Alcotest.(check bool)
    "machine splits" true
    (d base <> d { base with machine = Some "inorder_edge" });
  Alcotest.(check bool)
    "kind splits" true
    (d base <> d { base with kind = `Workload "kernel k" })

(* -- server behaviour ---------------------------------------------- *)

let ops_roundtrip () =
  with_server "srv_ops" @@ fun srv ->
  let c = Client.connect "srv_ops.sock" in
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok v -> Alcotest.(check string) "pong" "pong" (rtype v)
  | Error e -> Alcotest.fail e);
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "stats") ]) with
  | Ok v ->
      Alcotest.(check string) "stats" "stats" (rtype v);
      Alcotest.(check (option string))
        "protocol version" (Some Proto.protocol)
        (Json.str_member "protocol" v)
  | Error e -> Alcotest.fail e);
  (* malformed input is a structured error, and the server survives *)
  Client.send_line c "][ nonsense";
  (match Client.recv c with
  | Some (Ok v) ->
      Alcotest.(check string) "protocol error" "error" (rtype v);
      Alcotest.(check string) "reason" "protocol" (reason v)
  | _ -> Alcotest.fail "no structured error for garbage");
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok v -> Alcotest.(check string) "pong after garbage" "pong" (rtype v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "no shutdown yet" false (Server.shutdown_requested srv);
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "shutdown") ]) with
  | Ok v -> Alcotest.(check string) "ack" "shutting_down" (rtype v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "shutdown requested" true (Server.shutdown_requested srv);
  Client.close c

(* server answers must be byte-identical (same run digest) to a direct
   Experiment.run_one, for every -j, cold and warm *)
let identical_across_jobs () =
  Edge_check.Check.without_check @@ fun () ->
  let specs = [ ("tblook01", "Both"); ("canrdr01", "Hyper") ] in
  let direct =
    List.map
      (fun (w, c) ->
        let workload = Option.get (Edge_workloads.Registry.find w) in
        let config = Option.get (Server.find_config c) in
        match Experiment.run_one workload (c, config) with
        | Ok r -> (Server.run_digest r, r)
        | Error e -> Alcotest.failf "direct %s/%s: %s" w c e)
      specs
  in
  List.iter
    (fun jobs ->
      let name = Printf.sprintf "srv_id%d" jobs in
      let cache =
        Disk_cache.create ~dir:(Test_support.Tmpdir.path (name ^ ".cache")) ()
      in
      with_server ~cache ~jobs name @@ fun _srv ->
      let c = Client.connect (name ^ ".sock") in
      List.iter2
        (fun (w, cfg) (digest, (r : Experiment.run)) ->
          (* cold, then warm: both must match the direct run *)
          List.iter
            (fun pass ->
              let v = run_ok c (Client.workload_job ~workload:w ~config:cfg ()) in
              Alcotest.(check (option string))
                (Printf.sprintf "-j%d %s %s/%s digest" jobs pass w cfg)
                (Some digest)
                (Json.str_member "run_digest" v);
              Alcotest.(check (option (float 0.0)))
                (Printf.sprintf "-j%d %s %s/%s cycles" jobs pass w cfg)
                (Some (float_of_int r.Experiment.cycles))
                (Json.num_member "cycles" v);
              Alcotest.(check (option string))
                (Printf.sprintf "-j%d %s %s/%s ret" jobs pass w cfg)
                (Some (Int64.to_string r.Experiment.ret))
                (Json.str_member "ret" v))
            [ "cold"; "warm" ])
        specs direct;
      Client.close c)
    [ 1; 2; 4 ]

(* N client threads x M mixed cold/warm jobs; every response must match
   the direct digest for its spec *)
let mixed_battery () =
  Edge_check.Check.without_check @@ fun () ->
  let specs = [| ("tblook01", "Both"); ("tblook01", "Hyper") |] in
  let direct =
    Array.map
      (fun (w, c) ->
        let workload = Option.get (Edge_workloads.Registry.find w) in
        let config = Option.get (Server.find_config c) in
        match Experiment.run_one workload (c, config) with
        | Ok r -> Server.run_digest r
        | Error e -> Alcotest.failf "direct %s/%s: %s" w c e)
      specs
  in
  let cache =
    Disk_cache.create ~dir:(Test_support.Tmpdir.path "srv_mix.cache") ()
  in
  with_server ~cache ~jobs:3 "srv_mix" @@ fun _srv ->
  let threads = 4 and per_thread = 6 in
  let failures = Atomic.make 0 in
  let worker k () =
    let c = Client.connect "srv_mix.sock" in
    for i = 0 to per_thread - 1 do
      let idx = (k + i) mod Array.length specs in
      let w, cfg = specs.(idx) in
      match Client.run_job c (Client.workload_job ~workload:w ~config:cfg ()) with
      | Ok v
        when rtype v = "done"
             && Json.str_member "run_digest" v = Some direct.(idx) ->
          ()
      | Ok v ->
          Printf.eprintf "thread %d job %d: bad response %s\n" k i
            (Json.to_string v);
          Atomic.incr failures
      | Error e ->
          Printf.eprintf "thread %d job %d: %s\n" k i e;
          Atomic.incr failures
    done;
    Client.close c
  in
  let ths = List.init threads (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  Alcotest.(check int) "every mixed job matched its direct digest" 0
    (Atomic.get failures)

(* a deliberately slow source kernel: enough loop iterations that the
   cycle simulator holds a worker for a while *)
let slow_kernel salt =
  Printf.sprintf
    "kernel slow%s(int x, int y, int* A, int* B) {\n\
    \  int s = 0;\n\
    \  int i;\n\
    \  for (i = 0; i < 60000; i = i + 1) { s = s + i - y; }\n\
    \  return s;\n\
     }\n"
    salt

(* single worker busy on a blocker; 5 identical jobs stampede in behind
   it; single-flight must collapse them into one execution *)
let single_flight_stampede () =
  Edge_check.Check.without_check @@ fun () ->
  with_server ~jobs:1 "srv_flight" @@ fun srv ->
  let blocker = Client.connect "srv_flight.sock" in
  Client.send blocker
    (Json.Obj
       (("id", Json.Str "blocker")
       :: Client.source_job ~source:(slow_kernel "_blk") ~config:"Merge" ()));
  (* wait for the worker to pick the blocker up, so the stampede below
     is all in the queue at once *)
  Thread.delay 0.15;
  let n = 5 in
  let compiles0 = Experiment.compiles_performed () in
  let results = Array.make n "" in
  let merged = Atomic.make 0 in
  let ths =
    List.init n (fun k ->
        Thread.create
          (fun () ->
            let c = Client.connect "srv_flight.sock" in
            (match
               Client.run_job c
                 ~on_stream:(fun v ->
                   if
                     rtype v = "accepted"
                     && Json.bool_member "merged" v = Some true
                   then Atomic.incr merged)
                 (Client.source_job ~source:(slow_kernel "_st") ~config:"Merge" ())
             with
            | Ok v when rtype v = "done" ->
                results.(k) <-
                  Option.value (Json.str_member "run_digest" v) ~default:"?"
            | Ok v -> results.(k) <- "bad: " ^ Json.to_string v
            | Error e -> results.(k) <- "err: " ^ e);
            Client.close c)
          ())
  in
  List.iter Thread.join ths;
  let compiles = Experiment.compiles_performed () - compiles0 in
  Alcotest.(check bool)
    (Printf.sprintf "at most 2 compiles (blocker + stampede), got %d" compiles)
    true (compiles <= 2);
  Array.iter
    (fun d -> Alcotest.(check string) "stampede digests agree" results.(0) d)
    results;
  Alcotest.(check bool) "first result is a digest" true
    (String.length results.(0) = 32);
  Alcotest.(check int) "4 of 5 merged into the first flight" (n - 1)
    (Atomic.get merged);
  (* blocker still answers on its own connection *)
  (match Client.recv blocker with
  | Some (Ok v) -> Alcotest.(check string) "blocker accepted" "accepted" (rtype v)
  | _ -> Alcotest.fail "blocker got nothing");
  (match Client.recv blocker with
  | Some (Ok v) -> Alcotest.(check string) "blocker done" "done" (rtype v)
  | _ -> Alcotest.fail "blocker job lost");
  Client.close blocker;
  ignore srv

(* queue_cap=1 with a busy worker: the second pending job bounces with
   a retry hint instead of queueing without bound *)
let backpressure () =
  Edge_check.Check.without_check @@ fun () ->
  with_server ~jobs:1 ~queue_cap:1 "srv_bp" @@ fun _srv ->
  let c = Client.connect "srv_bp.sock" in
  Client.send c
    (Json.Obj
       (("id", Json.Str "blk")
       :: Client.source_job ~source:(slow_kernel "_bp") ~config:"Merge" ()));
  (match Client.recv c with
  | Some (Ok v) -> Alcotest.(check string) "blocker accepted" "accepted" (rtype v)
  | _ -> Alcotest.fail "no accept for blocker");
  Thread.delay 0.15 (* worker now busy, queue empty *);
  let c2 = Client.connect "srv_bp.sock" in
  Client.send c2
    (Json.Obj
       (("id", Json.Str "fill")
       :: Client.source_job ~source:(slow_kernel "_bp2") ~config:"Merge" ()));
  (match Client.recv c2 with
  | Some (Ok v) -> Alcotest.(check string) "filler queued" "accepted" (rtype v)
  | _ -> Alcotest.fail "no accept for filler");
  (match
     Client.run_job c2
       (Client.source_job ~source:(slow_kernel "_bp3") ~config:"Merge" ())
   with
  | Ok v ->
      Alcotest.(check string) "overflow rejected" "rejected" (rtype v);
      Alcotest.(check bool) "retry hint present" true
        (Json.num_member "retry_after_ms" v <> None)
  | Error e -> Alcotest.fail e);
  (* merged jobs ride the in-flight entry: no queue slot, so they are
     accepted even at cap *)
  (match
     Client.run_job c2
       (Client.source_job ~source:(slow_kernel "_bp2") ~config:"Merge" ())
   with
  | Ok v -> Alcotest.(check string) "duplicate still served" "done" (rtype v)
  | Error e -> Alcotest.fail e);
  Client.close c;
  Client.close c2

let timeouts () =
  Edge_check.Check.without_check @@ fun () ->
  (* a job whose queue deadline passes while a blocker runs *)
  (with_server ~jobs:1 "srv_to" @@ fun _srv ->
   let c = Client.connect "srv_to.sock" in
   Client.send c
     (Json.Obj
        (("id", Json.Str "blk")
        :: Client.source_job ~source:(slow_kernel "_to") ~config:"Merge" ()));
   (match Client.recv c with
   | Some (Ok v) -> Alcotest.(check string) "accepted" "accepted" (rtype v)
   | _ -> Alcotest.fail "no accept");
   Thread.delay 0.1;
   (match
      Client.run_job c
        (Client.source_job ~timeout_ms:1 ~source:(slow_kernel "_to2")
           ~config:"Merge" ())
    with
   | Ok v ->
       Alcotest.(check string) "queue timeout" "error" (rtype v);
       Alcotest.(check string) "reason" "timeout" (reason v)
   | Error e -> Alcotest.fail e);
   Client.close c);
  (* a non-terminating kernel bounded by fuel *)
  with_server ~jobs:1 "srv_to2" @@ fun _srv ->
  let c = Client.connect "srv_to2.sock" in
  let spin =
    "kernel spin(int x, int y, int* A, int* B) {\n\
    \  int s = 0;\n\
    \  while (x > 0) { s = s + 1; }\n\
    \  return s;\n\
     }\n"
  in
  (match
     Client.run_job c (Client.source_job ~fuel:20_000 ~source:spin ~config:"Merge" ())
   with
  | Ok v ->
      Alcotest.(check string) "execution timeout" "error" (rtype v);
      Alcotest.(check string) "reason" "timeout" (reason v)
  | Error e -> Alcotest.fail e);
  Client.close c

(* traced jobs stream events and a metrics snapshot before done *)
let trace_streaming () =
  with_server ~jobs:1 "srv_trace" @@ fun _srv ->
  let c = Client.connect "srv_trace.sock" in
  let traces = ref 0 and metrics = ref 0 in
  (match
     Client.run_job c
       ~on_stream:(fun v ->
         match rtype v with
         | "trace" -> incr traces
         | "metrics" -> incr metrics
         | _ -> ())
       (Client.workload_job ~trace:true ~workload:"tblook01" ~config:"Merge" ())
   with
  | Ok v -> Alcotest.(check string) "done" "done" (rtype v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "streamed trace lines" true (!traces > 0);
  Alcotest.(check int) "one metrics snapshot" 1 !metrics;
  Client.close c

(* machine-parameterized jobs: a preset name selects the backend, the
   server's answer is byte-identical to a direct run under that
   machine, and a malformed machine string is a structured config
   error, not a crash *)
let machine_jobs () =
  Edge_check.Check.without_check @@ fun () ->
  let w = "tblook01" and cfg_name = "Both" in
  let workload = Option.get (Edge_workloads.Registry.find w) in
  let config = Option.get (Server.find_config cfg_name) in
  let direct machine =
    match Experiment.run_one ?machine workload (cfg_name, config) with
    | Ok r -> r
    | Error e -> Alcotest.failf "direct %s/%s: %s" w cfg_name e
  in
  let grid = direct None in
  let inorder = direct (Some Edge_sim.Machine.inorder_edge) in
  Alcotest.(check bool)
    "backends disagree on cycles (different timing models)" true
    (grid.Experiment.cycles <> inorder.Experiment.cycles);
  Alcotest.(check string) "backends agree on the result"
    (Int64.to_string grid.Experiment.ret)
    (Int64.to_string inorder.Experiment.ret);
  with_server ~jobs:2 "srv_mach" @@ fun _srv ->
  let c = Client.connect "srv_mach.sock" in
  let served machine =
    run_ok c (Client.workload_job ?machine ~workload:w ~config:cfg_name ())
  in
  let check_matches what v (r : Experiment.run) =
    Alcotest.(check (option string))
      (what ^ " digest")
      (Some (Server.run_digest r))
      (Json.str_member "run_digest" v);
    Alcotest.(check (option (float 0.0)))
      (what ^ " cycles")
      (Some (float_of_int r.Experiment.cycles))
      (Json.num_member "cycles" v)
  in
  check_matches "default" (served None) grid;
  check_matches "preset name" (served (Some "inorder_edge")) inorder;
  (* a compact key=value line resolves to the same machine *)
  check_matches "compact form"
    (served (Some (Edge_sim.Machine.to_compact Edge_sim.Machine.inorder_edge)))
    inorder;
  (* a bad machine is rejected as a config error *)
  (match
     Client.run_job c
       (Client.workload_job ~machine:"rows=0;cols=0" ~workload:w
          ~config:cfg_name ())
   with
  | Ok v ->
      Alcotest.(check string) "bad machine is an error" "error" (rtype v);
      Alcotest.(check string) "bad machine reason" "config" (reason v)
  | Error e -> Alcotest.fail e);
  Client.close c

(* stopping with work still queued answers every waiter with a
   structured shutdown error and unlinks the socket *)
let shutdown_drains () =
  Edge_check.Check.without_check @@ fun () ->
  let cfg = Server.default_config ~socket_path:"srv_drain.sock" () in
  let srv = Server.start { cfg with jobs = 1 } in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let c = Client.connect "srv_drain.sock" in
  Client.send c
    (Json.Obj
       (("id", Json.Str "blk")
       :: Client.source_job ~source:(slow_kernel "_dr") ~config:"Merge" ()));
  Client.send c
    (Json.Obj
       (("id", Json.Str "queued")
       :: Client.source_job ~source:(slow_kernel "_dr2") ~config:"Merge" ()));
  Thread.delay 0.15;
  Server.stop srv;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists "srv_drain.sock");
  (* both accepts, then (in either order) the blocker's result and the
     queued job's shutdown error *)
  let seen = ref [] in
  let rec drain () =
    match Client.recv c with
    | Some (Ok v) ->
        seen := (Option.value (Json.str_member "id" v) ~default:"?", v) :: !seen;
        drain ()
    | Some (Error e) -> Alcotest.failf "bad response during drain: %s" e
    | None -> ()
  in
  drain ();
  Client.close c;
  let is_term v = rtype v = "done" || rtype v = "error" in
  let terminal id = List.find_opt (fun (i, v) -> i = id && is_term v) !seen in
  (match terminal "queued" with
  | Some (_, v) ->
      Alcotest.(check string) "queued job got a terminal answer" "error" (rtype v);
      Alcotest.(check string) "shutdown reason" "shutdown" (reason v)
  | None -> Alcotest.fail "queued job got no terminal answer");
  match terminal "blk" with
  | Some _ -> ()
  | None -> Alcotest.fail "blocker got no terminal answer"

(* -- pipelining, batching and the warm fast path ------------------- *)

(* a deterministic shuffle so the stress replays identically *)
let shuffle seed a =
  let s = ref seed in
  let rand bound =
    s := (!s * 1103515245) + 12345;
    (!s lsr 7) mod bound
  in
  for i = Array.length a - 1 downto 1 do
    let j = rand (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* 4 client threads, each with 32 jobs in flight on one connection,
   awaited in shuffled order: out-of-order completion matching by id
   is the property under test *)
let pipelined_stress () =
  Edge_check.Check.without_check @@ fun () ->
  let specs = [| ("tblook01", "Both"); ("tblook01", "Hyper") |] in
  let direct =
    Array.map
      (fun (w, c) ->
        let workload = Option.get (Edge_workloads.Registry.find w) in
        let config = Option.get (Server.find_config c) in
        match Experiment.run_one workload (c, config) with
        | Ok r -> Server.run_digest r
        | Error e -> Alcotest.failf "direct %s/%s: %s" w c e)
      specs
  in
  with_server ~jobs:2 "srv_pipe" @@ fun _srv ->
  let threads = 4 and inflight = 32 in
  let failures = Atomic.make 0 in
  let worker k () =
    let c = Client.connect "srv_pipe.sock" in
    (* fire all 32 without reading a single response *)
    let ids =
      Array.init inflight (fun i ->
          let idx = (k + i) mod Array.length specs in
          let w, cfg = specs.(idx) in
          (Client.submit c (Client.workload_job ~workload:w ~config:cfg ()), idx))
    in
    shuffle (0x5EED + k) ids;
    Array.iter
      (fun (id, idx) ->
        match Client.await c id with
        | Ok v
          when rtype v = "done"
               && Json.str_member "run_digest" v = Some direct.(idx) ->
            ()
        | Ok v ->
            Printf.eprintf "thread %d await %s: bad response %s\n" k id
              (Json.to_string v);
            Atomic.incr failures
        | Error e ->
            Printf.eprintf "thread %d await %s: %s\n" k id e;
            Atomic.incr failures)
      ids;
    Client.close c
  in
  let ths = List.init threads (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  Alcotest.(check int) "every shuffled await matched its digest" 0
    (Atomic.get failures)

(* batch frames: one write carries many jobs, every job gets its
   terminal answer, and warm fast-path hits elide the per-job
   accepted line (the terminal done travels in the same flush) while
   single-job submissions keep the v1 accepted-then-done shape *)
let batch_requests () =
  Edge_check.Check.without_check @@ fun () ->
  let specs = [ ("tblook01", "Both"); ("tblook01", "Hyper") ] in
  with_server ~jobs:2 "srv_batch" @@ fun _srv ->
  let c = Client.connect "srv_batch.sock" in
  let jobs =
    List.concat_map
      (fun (w, cfg) ->
        List.init 3 (fun _ -> Client.workload_job ~workload:w ~config:cfg ()))
      specs
  in
  let await_all ids =
    (* accepted lines interleave with other ids' responses, so count
       them per id from both await callbacks rather than per await *)
    let acks = Hashtbl.create 16 in
    let note v =
      if rtype v = "accepted" then
        match Json.str_member "id" v with
        | Some i ->
            Hashtbl.replace acks i
              (1 + Option.value (Hashtbl.find_opt acks i) ~default:0)
        | None -> ()
    in
    List.map
      (fun id ->
        match Client.await c ~on_stream:note ~on_other:note id with
        | Ok v when rtype v = "done" ->
            ( Option.get (Json.str_member "run_digest" v),
              fun () -> Option.value (Hashtbl.find_opt acks id) ~default:0 )
        | Ok v -> Alcotest.failf "batch job %s: %s" id (Json.to_string v)
        | Error e -> Alcotest.failf "batch job %s: %s" id e)
      ids
  in
  (* cold batch: every job is acknowledged before it runs *)
  let cold = await_all (Client.submit_batch c jobs) in
  List.iter
    (fun (_, acks) -> Alcotest.(check int) "cold batch job acked" 1 (acks ()))
    cold;
  (* warm batch: all fast-path hits, accepted lines elided *)
  let warm = await_all (Client.submit_batch c jobs) in
  List.iter2
    (fun (d_cold, _) (d_warm, acks) ->
      Alcotest.(check string) "warm batch digest matches cold" d_cold d_warm;
      Alcotest.(check int) "warm fast hit elides accepted" 0 (acks ()))
    cold warm;
  (* a warm single-job submission still gets the v1 accepted line *)
  let acks = ref 0 in
  (match
     Client.run_job c
       ~on_stream:(fun v -> if rtype v = "accepted" then incr acks)
       (List.hd jobs)
   with
  | Ok v -> Alcotest.(check string) "single warm done" "done" (rtype v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "single-job path keeps accepted" 1 !acks;
  (* an empty batch is a protocol error, not a hang *)
  Client.send_line c "{\"op\":\"batch\",\"jobs\":[]}";
  (match Client.recv c with
  | Some (Ok v) ->
      Alcotest.(check string) "empty batch rejected" "error" (rtype v)
  | _ -> Alcotest.fail "no answer for empty batch");
  Client.close c

(* pre-encoded block jobs: an honest image reproduces the source job's
   run digest exactly; a corrupted image is a config error; an image
   whose semantics diverge from the named workload fails verification *)
let image_jobs () =
  Edge_check.Check.without_check @@ fun () ->
  let w = "tblook01" and cfg = "Both" in
  with_server ~jobs:2 "srv_img" @@ fun _srv ->
  let c = Client.connect "srv_img.sock" in
  let source_run = run_ok c (Client.workload_job ~workload:w ~config:cfg ()) in
  let image =
    match Client.precompile ~workload:w ~config:cfg () with
    | Ok raw -> raw
    | Error e -> Alcotest.failf "precompile: %s" e
  in
  let image_run = run_ok c (Client.image_job ~workload:w ~config:cfg ~image ()) in
  Alcotest.(check (option string))
    "image job reproduces the source digest"
    (Json.str_member "run_digest" source_run)
    (Json.str_member "run_digest" image_run);
  (* resubmitting the same image answers from cache *)
  let again = run_ok c (Client.image_job ~workload:w ~config:cfg ~image ()) in
  Alcotest.(check (option bool)) "image rerun is warm" (Some true)
    (Json.bool_member "warm" again);
  (* flip a byte mid-payload: decode must fail cleanly *)
  let corrupt = Bytes.of_string image in
  Bytes.set corrupt (Bytes.length corrupt / 2) '\xff';
  (match
     Client.run_job c
       (Client.image_job ~workload:w ~config:cfg
          ~image:(Bytes.to_string corrupt) ())
   with
  | Ok v ->
      Alcotest.(check string) "corrupt image is an error" "error" (rtype v);
      Alcotest.(check string) "corrupt image reason" "config" (reason v)
  | Error e -> Alcotest.fail e);
  (* an image compiled from a different workload must fail the
     named workload's verification battery, not produce numbers *)
  let alien =
    match Client.precompile ~workload:"canrdr01" ~config:cfg () with
    | Ok raw -> raw
    | Error e -> Alcotest.failf "alien precompile: %s" e
  in
  (match
     Client.run_job c (Client.image_job ~workload:w ~config:cfg ~image:alien ())
   with
  | Ok v ->
      Alcotest.(check string) "mismatched image is an error" "error" (rtype v);
      Alcotest.(check string) "mismatched image reason" "job" (reason v)
  | Error e -> Alcotest.fail e);
  Client.close c

(* the stats op exposes the fast path: repeats of a job must count
   fast_hits, batch frames must count batches *)
let fast_path_stats () =
  Edge_check.Check.without_check @@ fun () ->
  with_server ~jobs:1 "srv_fast" @@ fun _srv ->
  let c = Client.connect "srv_fast.sock" in
  let job = Client.workload_job ~workload:"tblook01" ~config:"Hyper" () in
  ignore (run_ok c job : Json.t);
  ignore (run_ok c job : Json.t);
  ignore (run_ok c job : Json.t);
  List.iter
    (fun id -> ignore (Client.await c id : (Json.t, string) result))
    (Client.submit_batch c [ job; job ]);
  match Client.rpc c (Json.Obj [ ("op", Json.Str "stats") ]) with
  | Ok v ->
      let stat k =
        match Json.num_member k v with
        | Some n -> int_of_float n
        | None -> Alcotest.failf "stats missing %s" k
      in
      Alcotest.(check bool) "repeats hit the fast path" true (stat "fast_hits" >= 4);
      Alcotest.(check int) "batch frames counted" 1 (stat "batches");
      Alcotest.(check int) "every job completed" 5 (stat "jobs_completed");
      Client.close c
  | Error e -> Alcotest.fail e

let tests =
  [
    Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
    Alcotest.test_case "proto parse" `Quick proto_parse;
    Alcotest.test_case "proto digest" `Quick proto_digest;
    Alcotest.test_case "ops roundtrip" `Quick ops_roundtrip;
    Alcotest.test_case "identical across jobs" `Quick identical_across_jobs;
    Alcotest.test_case "mixed cold/warm battery" `Quick mixed_battery;
    Alcotest.test_case "single-flight stampede" `Quick single_flight_stampede;
    Alcotest.test_case "backpressure" `Quick backpressure;
    Alcotest.test_case "timeouts" `Quick timeouts;
    Alcotest.test_case "trace streaming" `Quick trace_streaming;
    Alcotest.test_case "machine jobs" `Quick machine_jobs;
    Alcotest.test_case "shutdown drains" `Quick shutdown_drains;
    Alcotest.test_case "pipelined stress" `Quick pipelined_stress;
    Alcotest.test_case "batch requests" `Quick batch_requests;
    Alcotest.test_case "image jobs" `Quick image_jobs;
    Alcotest.test_case "fast-path stats" `Quick fast_path_stats;
  ]
