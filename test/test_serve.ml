(* The job server: protocol parsing, request handling, single-flight
   dedup, backpressure, timeouts, and — the property the whole serve
   layer must preserve — server responses byte-identical to a direct
   Experiment.run_one at every -j.

   Servers bind relative socket paths, which the dune sandbox keeps
   private to this test run (and short enough for sun_path). *)

module Json = Edge_serve.Json
module Proto = Edge_serve.Proto
module Server = Edge_serve.Server
module Client = Edge_serve.Client
module Disk_cache = Edge_parallel.Disk_cache
module Experiment = Edge_harness.Experiment

let rtype v = Option.value (Json.str_member "type" v) ~default:"?"
let reason v = Option.value (Json.str_member "reason" v) ~default:"?"

let with_server ?cache ?(jobs = 2) ?queue_cap name f =
  let cfg = Server.default_config ?cache ~socket_path:(name ^ ".sock") () in
  let cfg =
    { cfg with jobs; queue_cap = Option.value queue_cap ~default:cfg.queue_cap }
  in
  let srv = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let run_ok c job =
  match Client.run_job c job with
  | Ok v when rtype v = "done" -> v
  | Ok v -> Alcotest.failf "expected done, got %s" (Json.to_string v)
  | Error e -> Alcotest.failf "client error: %s" e

(* -- json / protocol unit tests ------------------------------------ *)

let json_roundtrip () =
  let cases =
    [
      "null"; "true"; "-12"; "3.5"; "\"a\\n\\\"b\\\\\""; "[]"; "[1,2,[3]]";
      "{}"; "{\"k\":1,\"nest\":{\"a\":[true,null]}}";
    ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok v -> (
          (* print → reparse → print is a fixpoint *)
          let p = Json.to_string v in
          match Json.parse p with
          | Error e -> Alcotest.failf "reparse %S: %s" p e
          | Ok v' ->
              Alcotest.(check string) ("fixpoint " ^ s) p (Json.to_string v')))
    cases;
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "nul"; "{\"a\"}"; "\"\\x\""; "1 2"; "{'a':1}" ]

let proto_parse () =
  (match Proto.parse_request "{\"id\":\"x\",\"workload\":\"w\",\"config\":\"Both\"}" with
  | { Proto.id = Some "x"; req = Ok (Proto.Job s) } ->
      Alcotest.(check bool) "workload kind" true (s.Proto.kind = `Workload "w");
      Alcotest.(check string) "config" "Both" s.Proto.config;
      Alcotest.(check bool) "no trace" false s.Proto.trace
  | _ -> Alcotest.fail "workload job did not parse");
  (match Proto.parse_request "{\"source\":\"kernel k\",\"config\":\"Both\",\"trace\":true,\"fuel\":5}" with
  | { Proto.req = Ok (Proto.Job s); _ } ->
      Alcotest.(check bool) "source kind" true (s.Proto.kind = `Source "kernel k");
      Alcotest.(check bool) "trace on" true s.Proto.trace;
      Alcotest.(check (option int)) "fuel" (Some 5) s.Proto.fuel
  | _ -> Alcotest.fail "source job did not parse");
  (match
     Proto.parse_request
       "{\"workload\":\"w\",\"config\":\"Both\",\"machine\":\"inorder_edge\"}"
   with
  | { Proto.req = Ok (Proto.Job s); _ } ->
      Alcotest.(check (option string))
        "machine" (Some "inorder_edge") s.Proto.machine
  | _ -> Alcotest.fail "machine job did not parse");
  (match Proto.parse_request "{\"op\":\"ping\"}" with
  | { Proto.req = Ok Proto.Ping; _ } -> ()
  | _ -> Alcotest.fail "ping did not parse");
  (* structured rejections, id preserved when recoverable *)
  List.iter
    (fun line ->
      match Proto.parse_request line with
      | { Proto.req = Error _; _ } -> ()
      | _ -> Alcotest.failf "%S should not parse" line)
    [
      "not json";
      "[]";
      "{\"op\":\"reboot\"}";
      "{\"workload\":\"w\"}" (* missing config *);
      "{\"workload\":1,\"config\":\"Both\"}";
      "{\"workload\":\"w\",\"source\":\"s\",\"config\":\"Both\"}";
      "{\"source\":\"s\",\"config\":\"Both\",\"fuel\":0}";
      "{\"source\":\"s\",\"config\":\"Both\",\"trace\":\"yes\"}";
      "{\"workload\":\"w\",\"config\":\"Both\",\"machine\":7}";
    ];
  match Proto.parse_request "{\"id\":\"j7\",\"op\":\"nope\"}" with
  | { Proto.id = Some "j7"; req = Error _ } -> ()
  | _ -> Alcotest.fail "id should survive a bad op"

(* identical jobs merge, different bounds do not *)
let proto_digest () =
  let base =
    {
      Proto.kind = `Source "kernel k";
      config = "Both";
      machine = None;
      trace = false;
      timeout_ms = None;
      max_cycles = None;
      fuel = None;
    }
  in
  let d = Proto.job_digest in
  Alcotest.(check string) "digest is stable" (d base) (d base);
  Alcotest.(check string)
    "timeout/trace do not split the flight"
    (d base)
    (d { base with trace = true; timeout_ms = Some 5 });
  Alcotest.(check bool) "config splits" true (d base <> d { base with config = "Hyper" });
  Alcotest.(check bool) "fuel splits" true (d base <> d { base with fuel = Some 9 });
  Alcotest.(check bool)
    "machine splits" true
    (d base <> d { base with machine = Some "inorder_edge" });
  Alcotest.(check bool)
    "kind splits" true
    (d base <> d { base with kind = `Workload "kernel k" })

(* -- server behaviour ---------------------------------------------- *)

let ops_roundtrip () =
  with_server "srv_ops" @@ fun srv ->
  let c = Client.connect "srv_ops.sock" in
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok v -> Alcotest.(check string) "pong" "pong" (rtype v)
  | Error e -> Alcotest.fail e);
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "stats") ]) with
  | Ok v ->
      Alcotest.(check string) "stats" "stats" (rtype v);
      Alcotest.(check (option string))
        "protocol version" (Some Proto.protocol)
        (Json.str_member "protocol" v)
  | Error e -> Alcotest.fail e);
  (* malformed input is a structured error, and the server survives *)
  Client.send_line c "][ nonsense";
  (match Client.recv c with
  | Some (Ok v) ->
      Alcotest.(check string) "protocol error" "error" (rtype v);
      Alcotest.(check string) "reason" "protocol" (reason v)
  | _ -> Alcotest.fail "no structured error for garbage");
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "ping") ]) with
  | Ok v -> Alcotest.(check string) "pong after garbage" "pong" (rtype v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "no shutdown yet" false (Server.shutdown_requested srv);
  (match Client.rpc c (Json.Obj [ ("op", Json.Str "shutdown") ]) with
  | Ok v -> Alcotest.(check string) "ack" "shutting_down" (rtype v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "shutdown requested" true (Server.shutdown_requested srv);
  Client.close c

(* server answers must be byte-identical (same run digest) to a direct
   Experiment.run_one, for every -j, cold and warm *)
let identical_across_jobs () =
  Edge_check.Check.without_check @@ fun () ->
  let specs = [ ("tblook01", "Both"); ("canrdr01", "Hyper") ] in
  let direct =
    List.map
      (fun (w, c) ->
        let workload = Option.get (Edge_workloads.Registry.find w) in
        let config = Option.get (Server.find_config c) in
        match Experiment.run_one workload (c, config) with
        | Ok r -> (Server.run_digest r, r)
        | Error e -> Alcotest.failf "direct %s/%s: %s" w c e)
      specs
  in
  List.iter
    (fun jobs ->
      let name = Printf.sprintf "srv_id%d" jobs in
      let cache =
        Disk_cache.create ~dir:(Test_support.Tmpdir.path (name ^ ".cache")) ()
      in
      with_server ~cache ~jobs name @@ fun _srv ->
      let c = Client.connect (name ^ ".sock") in
      List.iter2
        (fun (w, cfg) (digest, (r : Experiment.run)) ->
          (* cold, then warm: both must match the direct run *)
          List.iter
            (fun pass ->
              let v = run_ok c (Client.workload_job ~workload:w ~config:cfg ()) in
              Alcotest.(check (option string))
                (Printf.sprintf "-j%d %s %s/%s digest" jobs pass w cfg)
                (Some digest)
                (Json.str_member "run_digest" v);
              Alcotest.(check (option (float 0.0)))
                (Printf.sprintf "-j%d %s %s/%s cycles" jobs pass w cfg)
                (Some (float_of_int r.Experiment.cycles))
                (Json.num_member "cycles" v);
              Alcotest.(check (option string))
                (Printf.sprintf "-j%d %s %s/%s ret" jobs pass w cfg)
                (Some (Int64.to_string r.Experiment.ret))
                (Json.str_member "ret" v))
            [ "cold"; "warm" ])
        specs direct;
      Client.close c)
    [ 1; 2; 4 ]

(* N client threads x M mixed cold/warm jobs; every response must match
   the direct digest for its spec *)
let mixed_battery () =
  Edge_check.Check.without_check @@ fun () ->
  let specs = [| ("tblook01", "Both"); ("tblook01", "Hyper") |] in
  let direct =
    Array.map
      (fun (w, c) ->
        let workload = Option.get (Edge_workloads.Registry.find w) in
        let config = Option.get (Server.find_config c) in
        match Experiment.run_one workload (c, config) with
        | Ok r -> Server.run_digest r
        | Error e -> Alcotest.failf "direct %s/%s: %s" w c e)
      specs
  in
  let cache =
    Disk_cache.create ~dir:(Test_support.Tmpdir.path "srv_mix.cache") ()
  in
  with_server ~cache ~jobs:3 "srv_mix" @@ fun _srv ->
  let threads = 4 and per_thread = 6 in
  let failures = Atomic.make 0 in
  let worker k () =
    let c = Client.connect "srv_mix.sock" in
    for i = 0 to per_thread - 1 do
      let idx = (k + i) mod Array.length specs in
      let w, cfg = specs.(idx) in
      match Client.run_job c (Client.workload_job ~workload:w ~config:cfg ()) with
      | Ok v
        when rtype v = "done"
             && Json.str_member "run_digest" v = Some direct.(idx) ->
          ()
      | Ok v ->
          Printf.eprintf "thread %d job %d: bad response %s\n" k i
            (Json.to_string v);
          Atomic.incr failures
      | Error e ->
          Printf.eprintf "thread %d job %d: %s\n" k i e;
          Atomic.incr failures
    done;
    Client.close c
  in
  let ths = List.init threads (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join ths;
  Alcotest.(check int) "every mixed job matched its direct digest" 0
    (Atomic.get failures)

(* a deliberately slow source kernel: enough loop iterations that the
   cycle simulator holds a worker for a while *)
let slow_kernel salt =
  Printf.sprintf
    "kernel slow%s(int x, int y, int* A, int* B) {\n\
    \  int s = 0;\n\
    \  int i;\n\
    \  for (i = 0; i < 60000; i = i + 1) { s = s + i - y; }\n\
    \  return s;\n\
     }\n"
    salt

(* single worker busy on a blocker; 5 identical jobs stampede in behind
   it; single-flight must collapse them into one execution *)
let single_flight_stampede () =
  Edge_check.Check.without_check @@ fun () ->
  with_server ~jobs:1 "srv_flight" @@ fun srv ->
  let blocker = Client.connect "srv_flight.sock" in
  Client.send blocker
    (Json.Obj
       (("id", Json.Str "blocker")
       :: Client.source_job ~source:(slow_kernel "_blk") ~config:"Merge" ()));
  (* wait for the worker to pick the blocker up, so the stampede below
     is all in the queue at once *)
  Thread.delay 0.15;
  let n = 5 in
  let compiles0 = Experiment.compiles_performed () in
  let results = Array.make n "" in
  let merged = Atomic.make 0 in
  let ths =
    List.init n (fun k ->
        Thread.create
          (fun () ->
            let c = Client.connect "srv_flight.sock" in
            (match
               Client.run_job c
                 ~on_stream:(fun v ->
                   if
                     rtype v = "accepted"
                     && Json.bool_member "merged" v = Some true
                   then Atomic.incr merged)
                 (Client.source_job ~source:(slow_kernel "_st") ~config:"Merge" ())
             with
            | Ok v when rtype v = "done" ->
                results.(k) <-
                  Option.value (Json.str_member "run_digest" v) ~default:"?"
            | Ok v -> results.(k) <- "bad: " ^ Json.to_string v
            | Error e -> results.(k) <- "err: " ^ e);
            Client.close c)
          ())
  in
  List.iter Thread.join ths;
  let compiles = Experiment.compiles_performed () - compiles0 in
  Alcotest.(check bool)
    (Printf.sprintf "at most 2 compiles (blocker + stampede), got %d" compiles)
    true (compiles <= 2);
  Array.iter
    (fun d -> Alcotest.(check string) "stampede digests agree" results.(0) d)
    results;
  Alcotest.(check bool) "first result is a digest" true
    (String.length results.(0) = 32);
  Alcotest.(check int) "4 of 5 merged into the first flight" (n - 1)
    (Atomic.get merged);
  (* blocker still answers on its own connection *)
  (match Client.recv blocker with
  | Some (Ok v) -> Alcotest.(check string) "blocker accepted" "accepted" (rtype v)
  | _ -> Alcotest.fail "blocker got nothing");
  (match Client.recv blocker with
  | Some (Ok v) -> Alcotest.(check string) "blocker done" "done" (rtype v)
  | _ -> Alcotest.fail "blocker job lost");
  Client.close blocker;
  ignore srv

(* queue_cap=1 with a busy worker: the second pending job bounces with
   a retry hint instead of queueing without bound *)
let backpressure () =
  Edge_check.Check.without_check @@ fun () ->
  with_server ~jobs:1 ~queue_cap:1 "srv_bp" @@ fun _srv ->
  let c = Client.connect "srv_bp.sock" in
  Client.send c
    (Json.Obj
       (("id", Json.Str "blk")
       :: Client.source_job ~source:(slow_kernel "_bp") ~config:"Merge" ()));
  (match Client.recv c with
  | Some (Ok v) -> Alcotest.(check string) "blocker accepted" "accepted" (rtype v)
  | _ -> Alcotest.fail "no accept for blocker");
  Thread.delay 0.15 (* worker now busy, queue empty *);
  let c2 = Client.connect "srv_bp.sock" in
  Client.send c2
    (Json.Obj
       (("id", Json.Str "fill")
       :: Client.source_job ~source:(slow_kernel "_bp2") ~config:"Merge" ()));
  (match Client.recv c2 with
  | Some (Ok v) -> Alcotest.(check string) "filler queued" "accepted" (rtype v)
  | _ -> Alcotest.fail "no accept for filler");
  (match
     Client.run_job c2
       (Client.source_job ~source:(slow_kernel "_bp3") ~config:"Merge" ())
   with
  | Ok v ->
      Alcotest.(check string) "overflow rejected" "rejected" (rtype v);
      Alcotest.(check bool) "retry hint present" true
        (Json.num_member "retry_after_ms" v <> None)
  | Error e -> Alcotest.fail e);
  (* merged jobs ride the in-flight entry: no queue slot, so they are
     accepted even at cap *)
  (match
     Client.run_job c2
       (Client.source_job ~source:(slow_kernel "_bp2") ~config:"Merge" ())
   with
  | Ok v -> Alcotest.(check string) "duplicate still served" "done" (rtype v)
  | Error e -> Alcotest.fail e);
  Client.close c;
  Client.close c2

let timeouts () =
  Edge_check.Check.without_check @@ fun () ->
  (* a job whose queue deadline passes while a blocker runs *)
  (with_server ~jobs:1 "srv_to" @@ fun _srv ->
   let c = Client.connect "srv_to.sock" in
   Client.send c
     (Json.Obj
        (("id", Json.Str "blk")
        :: Client.source_job ~source:(slow_kernel "_to") ~config:"Merge" ()));
   (match Client.recv c with
   | Some (Ok v) -> Alcotest.(check string) "accepted" "accepted" (rtype v)
   | _ -> Alcotest.fail "no accept");
   Thread.delay 0.1;
   (match
      Client.run_job c
        (Client.source_job ~timeout_ms:1 ~source:(slow_kernel "_to2")
           ~config:"Merge" ())
    with
   | Ok v ->
       Alcotest.(check string) "queue timeout" "error" (rtype v);
       Alcotest.(check string) "reason" "timeout" (reason v)
   | Error e -> Alcotest.fail e);
   Client.close c);
  (* a non-terminating kernel bounded by fuel *)
  with_server ~jobs:1 "srv_to2" @@ fun _srv ->
  let c = Client.connect "srv_to2.sock" in
  let spin =
    "kernel spin(int x, int y, int* A, int* B) {\n\
    \  int s = 0;\n\
    \  while (x > 0) { s = s + 1; }\n\
    \  return s;\n\
     }\n"
  in
  (match
     Client.run_job c (Client.source_job ~fuel:20_000 ~source:spin ~config:"Merge" ())
   with
  | Ok v ->
      Alcotest.(check string) "execution timeout" "error" (rtype v);
      Alcotest.(check string) "reason" "timeout" (reason v)
  | Error e -> Alcotest.fail e);
  Client.close c

(* traced jobs stream events and a metrics snapshot before done *)
let trace_streaming () =
  with_server ~jobs:1 "srv_trace" @@ fun _srv ->
  let c = Client.connect "srv_trace.sock" in
  let traces = ref 0 and metrics = ref 0 in
  (match
     Client.run_job c
       ~on_stream:(fun v ->
         match rtype v with
         | "trace" -> incr traces
         | "metrics" -> incr metrics
         | _ -> ())
       (Client.workload_job ~trace:true ~workload:"tblook01" ~config:"Merge" ())
   with
  | Ok v -> Alcotest.(check string) "done" "done" (rtype v)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "streamed trace lines" true (!traces > 0);
  Alcotest.(check int) "one metrics snapshot" 1 !metrics;
  Client.close c

(* machine-parameterized jobs: a preset name selects the backend, the
   server's answer is byte-identical to a direct run under that
   machine, and a malformed machine string is a structured config
   error, not a crash *)
let machine_jobs () =
  Edge_check.Check.without_check @@ fun () ->
  let w = "tblook01" and cfg_name = "Both" in
  let workload = Option.get (Edge_workloads.Registry.find w) in
  let config = Option.get (Server.find_config cfg_name) in
  let direct machine =
    match Experiment.run_one ?machine workload (cfg_name, config) with
    | Ok r -> r
    | Error e -> Alcotest.failf "direct %s/%s: %s" w cfg_name e
  in
  let grid = direct None in
  let inorder = direct (Some Edge_sim.Machine.inorder_edge) in
  Alcotest.(check bool)
    "backends disagree on cycles (different timing models)" true
    (grid.Experiment.cycles <> inorder.Experiment.cycles);
  Alcotest.(check string) "backends agree on the result"
    (Int64.to_string grid.Experiment.ret)
    (Int64.to_string inorder.Experiment.ret);
  with_server ~jobs:2 "srv_mach" @@ fun _srv ->
  let c = Client.connect "srv_mach.sock" in
  let served machine =
    run_ok c (Client.workload_job ?machine ~workload:w ~config:cfg_name ())
  in
  let check_matches what v (r : Experiment.run) =
    Alcotest.(check (option string))
      (what ^ " digest")
      (Some (Server.run_digest r))
      (Json.str_member "run_digest" v);
    Alcotest.(check (option (float 0.0)))
      (what ^ " cycles")
      (Some (float_of_int r.Experiment.cycles))
      (Json.num_member "cycles" v)
  in
  check_matches "default" (served None) grid;
  check_matches "preset name" (served (Some "inorder_edge")) inorder;
  (* a compact key=value line resolves to the same machine *)
  check_matches "compact form"
    (served (Some (Edge_sim.Machine.to_compact Edge_sim.Machine.inorder_edge)))
    inorder;
  (* a bad machine is rejected as a config error *)
  (match
     Client.run_job c
       (Client.workload_job ~machine:"rows=0;cols=0" ~workload:w
          ~config:cfg_name ())
   with
  | Ok v ->
      Alcotest.(check string) "bad machine is an error" "error" (rtype v);
      Alcotest.(check string) "bad machine reason" "config" (reason v)
  | Error e -> Alcotest.fail e);
  Client.close c

(* stopping with work still queued answers every waiter with a
   structured shutdown error and unlinks the socket *)
let shutdown_drains () =
  Edge_check.Check.without_check @@ fun () ->
  let cfg = Server.default_config ~socket_path:"srv_drain.sock" () in
  let srv = Server.start { cfg with jobs = 1 } in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let c = Client.connect "srv_drain.sock" in
  Client.send c
    (Json.Obj
       (("id", Json.Str "blk")
       :: Client.source_job ~source:(slow_kernel "_dr") ~config:"Merge" ()));
  Client.send c
    (Json.Obj
       (("id", Json.Str "queued")
       :: Client.source_job ~source:(slow_kernel "_dr2") ~config:"Merge" ()));
  Thread.delay 0.15;
  Server.stop srv;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists "srv_drain.sock");
  (* both accepts, then (in either order) the blocker's result and the
     queued job's shutdown error *)
  let seen = ref [] in
  let rec drain () =
    match Client.recv c with
    | Some (Ok v) ->
        seen := (Option.value (Json.str_member "id" v) ~default:"?", v) :: !seen;
        drain ()
    | Some (Error e) -> Alcotest.failf "bad response during drain: %s" e
    | None -> ()
  in
  drain ();
  Client.close c;
  let is_term v = rtype v = "done" || rtype v = "error" in
  let terminal id = List.find_opt (fun (i, v) -> i = id && is_term v) !seen in
  (match terminal "queued" with
  | Some (_, v) ->
      Alcotest.(check string) "queued job got a terminal answer" "error" (rtype v);
      Alcotest.(check string) "shutdown reason" "shutdown" (reason v)
  | None -> Alcotest.fail "queued job got no terminal answer");
  match terminal "blk" with
  | Some _ -> ()
  | None -> Alcotest.fail "blocker got no terminal answer"

let tests =
  [
    Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
    Alcotest.test_case "proto parse" `Quick proto_parse;
    Alcotest.test_case "proto digest" `Quick proto_digest;
    Alcotest.test_case "ops roundtrip" `Quick ops_roundtrip;
    Alcotest.test_case "identical across jobs" `Quick identical_across_jobs;
    Alcotest.test_case "mixed cold/warm battery" `Quick mixed_battery;
    Alcotest.test_case "single-flight stampede" `Quick single_flight_stampede;
    Alcotest.test_case "backpressure" `Quick backpressure;
    Alcotest.test_case "timeouts" `Quick timeouts;
    Alcotest.test_case "trace streaming" `Quick trace_streaming;
    Alcotest.test_case "machine jobs" `Quick machine_jobs;
    Alcotest.test_case "shutdown drains" `Quick shutdown_drains;
  ]
