(* Machine-description properties.

   The machine description is the experiment plane's second axis
   (backend x config), so its plumbing must be airtight:

   - compact-form round-trip: any legal machine survives
     [to_compact] / [of_compact] unchanged, presets resolve by name;
   - hop tables: symmetric, zero on the diagonal, monotone in
     Manhattan distance, triangle inequality — for arbitrary grid
     shapes under both hop models;
   - wire protocol: a machine travels through a dfpd job request and
     resolves back to the same description, and distinct machines
     never share a single-flight digest;
   - result cache: distinct machines never share a persistent cache
     entry (the key is salted with the description and the backend
     revision). *)

module M = Edge_sim.Machine
module Proto = Edge_serve.Proto
module Json = Edge_serve.Json

(* -- a generator of legal machine descriptions --------------------- *)

let machine_gen : M.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* backend = oneofl [ M.Trips_grid; M.Inorder_edge ] in
  let* rows = int_range 1 8 in
  let* cols = int_range 1 8 in
  (* enough RS slots for a maximal block, whatever the shape *)
  let min_slots =
    (Edge_isa.Block.max_instrs + (rows * cols) - 1) / (rows * cols)
  in
  let* extra_slots = int_range 0 8 in
  let* hop_model =
    oneof
      [
        map (fun k -> M.Manhattan k) (int_range 0 3);
        map (fun k -> M.Uniform k) (int_range 0 3);
      ]
  in
  let* issue_per_tile = int_range 1 4 in
  let* window_size = int_range 1 64 in
  let* predictor_history_bits = int_range 0 16 in
  let* predictor_table_bits = int_range 1 24 in
  let* fetch_cycles = int_range 0 8 in
  let* predict_cycles = int_range 0 8 in
  let* max_inflight = int_range 1 16 in
  let* l1d_latency = int_range 0 4 in
  let* line_bytes = map (fun k -> 1 lsl k) (int_range 2 8) in
  let* early_termination = bool in
  let* aggressive_loads = bool in
  let* commit_stores_per_cycle = int_range 1 4 in
  return
    {
      M.default with
      backend;
      rows;
      cols;
      slots_per_tile = min_slots + extra_slots;
      hop_model;
      issue_per_tile;
      window_size;
      predictor_history_bits;
      predictor_table_bits;
      fetch_cycles;
      predict_cycles;
      max_inflight;
      l1d_latency;
      line_bytes;
      early_termination;
      aggressive_loads;
      commit_stores_per_cycle;
    }

let machine_arb = QCheck.make ~print:M.to_compact machine_gen

(* -- compact form --------------------------------------------------- *)

let preset_roundtrip () =
  List.iter
    (fun (name, m) ->
      (match M.validate m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "preset %s invalid: %s" name e);
      (match M.of_compact name with
      | Ok m' when m' = m -> ()
      | Ok _ -> Alcotest.failf "preset name %s resolves elsewhere" name
      | Error e -> Alcotest.failf "preset name %s: %s" name e);
      match M.of_compact (M.to_compact m) with
      | Ok m' when m' = m -> ()
      | Ok _ -> Alcotest.failf "preset %s compact roundtrip drifts" name
      | Error e -> Alcotest.failf "preset %s compact: %s" name e)
    (("default", M.default) :: M.presets)

let qcheck_compact_roundtrip =
  QCheck.Test.make ~name:"compact roundtrip (legal machines)" ~count:300
    machine_arb (fun m ->
      (match M.validate m with
      | Ok () -> ()
      | Error e ->
          QCheck.Test.fail_reportf "generator produced illegal machine: %s" e);
      match M.of_compact (M.to_compact m) with
      | Ok m' ->
          m' = m
          || QCheck.Test.fail_reportf "roundtrip drift:\n%s\n%s"
               (M.to_compact m) (M.to_compact m')
      | Error e -> QCheck.Test.fail_reportf "of_compact: %s" e)

(* a leading preset name seeds the base the overrides fold over *)
let preset_with_overrides () =
  (match M.of_compact "inorder_edge;window=8" with
  | Ok m ->
      if m <> { M.inorder_edge with window_size = 8 } then
        Alcotest.fail "preset+override drifts from the adjusted preset"
  | Error e -> Alcotest.failf "preset+override: %s" e);
  (match M.of_compact "trips_grid;rows=8;cols=8" with
  | Ok m ->
      if m <> { M.trips_grid with rows = 8; cols = 8 } then
        Alcotest.fail "trips_grid override drifts"
  | Error e -> Alcotest.failf "trips_grid override: %s" e);
  (* overrides without a preset still fold over default *)
  match M.of_compact "window=8" with
  | Ok m ->
      if m <> { M.default with window_size = 8 } then
        Alcotest.fail "bare override must apply to default"
  | Error e -> Alcotest.failf "bare override: %s" e

let compact_rejects () =
  List.iter
    (fun s ->
      match M.of_compact s with
      | Ok _ -> Alcotest.failf "%S should not resolve" s
      | Error _ -> ())
    [
      "rows=0";
      "rows=2;cols=2;slots=1" (* cannot hold a maximal block *);
      "hop=warp:3";
      "line=48" (* not a power of two *);
      "backend=vliw";
      "nonsense";
      "issue=-1";
    ]

(* -- hop tables ----------------------------------------------------- *)

let manhattan m a b =
  abs (M.tile_row m a - M.tile_row m b) + abs (M.tile_col m a - M.tile_col m b)

let hop_invariants () =
  List.iter
    (fun (rows, cols) ->
      List.iter
        (fun hop_model ->
          let m = { M.default with rows; cols; hop_model } in
          let n = M.num_tiles m in
          for a = 0 to n - 1 do
            if M.hops m a a <> 0 then
              Alcotest.failf "%dx%d %s: self-hop %d nonzero" rows cols
                (M.to_compact m) a;
            for b = 0 to n - 1 do
              let h = M.hops m a b in
              if h < 0 then
                Alcotest.failf "%dx%d: negative hops %d->%d" rows cols a b;
              if h <> M.hops m b a then
                Alcotest.failf "%dx%d: asymmetric hops %d<->%d" rows cols a b;
              (* monotone in Manhattan distance: a strictly closer pair
                 never costs more *)
              for c = 0 to n - 1 do
                if manhattan m a b < manhattan m a c && h > M.hops m a c then
                  Alcotest.failf
                    "%dx%d: hops not monotone (%d->%d dist %d costs %d; \
                     %d->%d dist %d costs %d)"
                    rows cols a b (manhattan m a b) h a c (manhattan m a c)
                    (M.hops m a c)
              done;
              (* triangle inequality through any relay tile *)
              for c = 0 to n - 1 do
                if M.hops m a c > h + M.hops m b c then
                  Alcotest.failf "%dx%d: triangle violated %d->%d->%d" rows
                    cols a b c
              done
            done;
            if M.reg_access_hops m a < 0 || M.mem_access_hops m a < 0 then
              Alcotest.failf "%dx%d: negative access hops for tile %d" rows
                cols a
          done)
        [ M.Manhattan 1; M.Manhattan 2; M.Uniform 0; M.Uniform 2 ])
    [ (1, 1); (1, 4); (4, 1); (2, 3); (4, 4); (5, 5) ]

(* -- wire protocol -------------------------------------------------- *)

let job_line machine =
  Json.to_string
    (Json.Obj
       [
         ("workload", Json.Str "w");
         ("config", Json.Str "Both");
         ("machine", Json.Str machine);
       ])

let qcheck_wire_roundtrip =
  QCheck.Test.make ~name:"machine survives the dfpd wire protocol"
    ~count:200 machine_arb (fun m ->
      match Proto.parse_request (job_line (M.to_compact m)) with
      | { Proto.req = Ok (Proto.Job s); _ } -> (
          match s.Proto.machine with
          | None -> QCheck.Test.fail_report "machine field lost"
          | Some c -> (
              match M.of_compact c with
              | Ok m' ->
                  m' = m
                  || QCheck.Test.fail_reportf "wire drift: %s" (M.to_compact m')
              | Error e -> QCheck.Test.fail_reportf "of_compact: %s" e))
      | { Proto.req = Error e; _ } ->
          QCheck.Test.fail_reportf "request rejected: %s" e
      | _ -> QCheck.Test.fail_report "not a job")

let qcheck_digest_salted =
  QCheck.Test.make ~name:"distinct machines never share a job digest"
    ~count:200
    QCheck.(pair machine_arb machine_arb)
    (fun (m1, m2) ->
      let spec m =
        {
          Proto.kind = `Workload "w";
          config = "Both";
          machine = Some (M.to_compact m);
          image = None;
          trace = false;
          lint = false;
          timeout_ms = None;
          max_cycles = None;
          fuel = None;
        }
      in
      let d1 = Proto.job_digest (spec m1)
      and d2 = Proto.job_digest (spec m2) in
      if m1 = m2 then d1 = d2 else d1 <> d2)

(* -- result-cache salting ------------------------------------------- *)

let workload () =
  match Edge_workloads.Registry.find "tblook01" with
  | Some w -> w
  | None -> Alcotest.fail "tblook01 not in the registry"

let qcheck_cache_key_salted =
  QCheck.Test.make ~name:"distinct machines never share a cache key"
    ~count:100
    QCheck.(pair machine_arb machine_arb)
    (fun (m1, m2) ->
      let w = workload () in
      let key m = Edge_harness.Experiment.cache_key w "Both" Dfp.Config.both m in
      if m1 = m2 then key m1 = key m2 else key m1 <> key m2)

let disk_cache_salted () =
  let w = workload () in
  let key m = Edge_harness.Experiment.cache_key w "Both" Dfp.Config.both m in
  let cache =
    Edge_parallel.Disk_cache.create
      ~dir:(Test_support.Tmpdir.path "dc_machine") ()
  in
  Edge_parallel.Disk_cache.store cache ~key:(key M.trips_grid) "grid-run";
  (match Edge_parallel.Disk_cache.find cache ~key:(key M.inorder_edge) with
  | Some (_ : string) ->
      Alcotest.fail "inorder machine hit the grid machine's cache entry"
  | None -> ());
  (match
     Edge_parallel.Disk_cache.find cache
       ~key:(key { M.trips_grid with rows = 8 })
   with
  | Some (_ : string) ->
      Alcotest.fail "8-row grid hit the 4-row grid's cache entry"
  | None -> ());
  match Edge_parallel.Disk_cache.find cache ~key:(key M.trips_grid) with
  | Some v -> Alcotest.(check string) "own entry survives" "grid-run" v
  | None -> Alcotest.fail "same machine missed its own cache entry"

(* the two backends must also never share a key even when every other
   field agrees: the backend revision is folded in independently *)
let backend_revision_salts () =
  let w = workload () in
  let key m = Edge_harness.Experiment.cache_key w "Both" Dfp.Config.both m in
  let grid = M.trips_grid in
  let same_shape_inorder = { grid with M.backend = M.Inorder_edge } in
  Alcotest.(check bool) "backend alone splits the key" true
    (key grid <> key same_shape_inorder);
  Alcotest.(check bool) "backend revisions differ" true
    (Edge_sim.Backend.revision grid
    <> Edge_sim.Backend.revision same_shape_inorder)

let tests =
  [
    Alcotest.test_case "preset roundtrip" `Quick preset_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_compact_roundtrip;
    Alcotest.test_case "preset with overrides" `Quick preset_with_overrides;
    Alcotest.test_case "compact rejects illegal machines" `Quick
      compact_rejects;
    Alcotest.test_case "hop-table invariants" `Quick hop_invariants;
    QCheck_alcotest.to_alcotest qcheck_wire_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_digest_salted;
    QCheck_alcotest.to_alcotest qcheck_cache_key_salted;
    Alcotest.test_case "disk cache never shares entries" `Quick
      disk_cache_salted;
    Alcotest.test_case "backend revision salts the key" `Quick
      backend_revision_salts;
  ]
