(* Psi-SSA framework tests (lib/ir/psi_ssa + lib/core/opt_ineff).

   Four layers:

   - unit tests of the view / psi-node / construct-destruct /
     ineffectuality layers on hand-built hyperblocks;
   - the round-trip property over fixed-seed fuzz kernels: the driver
     runs the construct→destruct round-trip check after the
     optimization pipeline of every checked compile, so pushing
     kernels through the full oracle — all eight configurations, both
     timing backends — proves the round-trip preserves every checker
     verdict and every verified execution;
   - mutation tests: force a bogus "provably ineffectual" verdict into
     the pass and assert the exhaustive-enumeration cross-validation
     rejects it before it deletes anything — and that with the hook
     disabled the bogus deletion is caught downstream (checker
     diagnostic or oracle mismatch), never silently absorbed;
   - Pass_id round-trips: every pass name and counter key parses back
     to the variant it came from, so pass.* counters and
     check[pass=...] diagnostics cannot drift apart. *)

module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Bdd = Edge_ir.Bdd
module Psi = Edge_ir.Psi_ssa
module O = Edge_isa.Opcode
module Oracle = Edge_fuzz.Oracle
module Fz = Edge_fuzz
module G = Test_support.Goldens

(* hand-built blocks use small temp numbers; burn past them so the
   fresh versions construct allocates never collide *)
let gen () =
  let g = Temp.Gen.create () in
  for _ = 1 to 64 do
    ignore (Temp.Gen.fresh g)
  done;
  g

let guard pol preds = { Hb.gpol = pol; gpreds = preds }

let cmp dst a b =
  Tac.Cmp { dst; cond = O.Lt; fp = false; a = Tac.T a; b = Tac.T b }

let mov dst a = Tac.Un { dst; op = O.Mov; a = Tac.T a }
let add dst a b = Tac.Bin { dst; op = O.Add; a = Tac.T a; b = Tac.T b }
let op ?g i = { Hb.hop = Hb.Op i; guard = g }

(* the canonical diamond: out delivered by two movs of opposite
   polarity — one psi node with two arguments *)
let diamond () =
  let p = 1 and a = 2 and b = 3 and out = 9 in
  ( {
      Hb.hname = "hb";
      body =
        [
          op (cmp p a b);
          op ~g:(guard true [ p ]) (mov out a);
          op ~g:(guard false [ p ]) (mov out b);
        ];
      hexits = [ { Hb.eguard = None; etarget = None } ];
      houts = [ (out, out) ];
    },
    (p, a, b, out) )

let psi_view () =
  let h, (p, a, _b, out) = diamond () in
  let vw = Psi.view h in
  (match Psi.psi vw out with
  | None -> Alcotest.fail "out has two deliveries; expected a psi node"
  | Some args ->
      Alcotest.(check (list int))
        "psi argument sites, body order" [ 1; 2 ]
        (List.map (fun (x : Psi.psi_arg) -> x.Psi.asite) args);
      Alcotest.(check (list bool))
        "no null deliveries" [ false; false ]
        (List.map (fun (x : Psi.psi_arg) -> x.Psi.anull) args));
  Alcotest.(check bool) "single-def temp has no psi" true (Psi.psi vw p = None);
  Alcotest.(check bool) "p is a predicate" true (Temp.Set.mem p vw.Psi.vpreds);
  Alcotest.(check bool)
    "a is not a predicate" false
    (Temp.Set.mem a vw.Psi.vpreds);
  (* predicate-aware def-use: p is consumed by the guards of sites 1
     and 2, out produces the canonical block output *)
  let guards_of t =
    List.filter_map
      (function Psi.Guard i -> Some i | _ -> None)
      (Psi.uses_of vw t)
  in
  Alcotest.(check (list int)) "p guards sites 1 and 2" [ 1; 2 ] (guards_of p);
  Alcotest.(check bool)
    "out feeds the block output" true
    (List.mem (Psi.Out out) (Psi.uses_of vw out))

let psi_null_delivery () =
  let h, (_, _, _, out) = diamond () in
  h.Hb.body <-
    h.Hb.body @ [ { Hb.hop = Hb.Null_write out; guard = None } ];
  let vw = Psi.view h in
  match Psi.psi vw out with
  | None -> Alcotest.fail "expected a psi node"
  | Some args ->
      Alcotest.(check (list bool))
        "null delivery is an explicit psi argument" [ false; false; true ]
        (List.map (fun (x : Psi.psi_arg) -> x.Psi.anull) args)

let construct_destruct () =
  let h, (_, _, _, out) = diamond () in
  let v = Psi.construct ~gen:(gen ()) h in
  Alcotest.(check int)
    "both deliveries renamed" 2
    (List.length v.Psi.renamed);
  (match v.Psi.psis with
  | [ (t, args) ] ->
      Alcotest.(check bool) "psi is for out" true (Temp.equal t out);
      Alcotest.(check int) "two arguments" 2 (List.length args)
  | l -> Alcotest.failf "expected one psi node, got %d" (List.length l));
  (* the renamed dsts are genuinely fresh and distinct *)
  let dsts =
    List.filter_map (fun hi -> Hb.hop_def hi.Hb.hop) v.Psi.vh.Hb.body
  in
  Alcotest.(check int)
    "distinct def names after construct"
    (List.length dsts)
    (List.length (List.sort_uniq Temp.compare dsts));
  Psi.destruct v;
  Alcotest.(check bool)
    "destruct restores the original block" true
    (h.Hb.body = (fst (diamond ())).Hb.body)

let roundtrip_hand_built () =
  let h, _ = diamond () in
  Alcotest.(check bool) "diamond round-trips" true (Psi.roundtrip ~gen:(gen ()) h);
  let h2, (_, _, _, out) = diamond () in
  h2.Hb.body <- h2.Hb.body @ [ { Hb.hop = Hb.Null_write out; guard = None } ];
  Alcotest.(check bool)
    "null-delivery block round-trips" true
    (Psi.roundtrip ~gen:(gen ()) h2)

let promotable () =
  let h, (_, _, _, out) = diamond () in
  let vw = Psi.view h in
  Alcotest.(check bool)
    "a psi merge is not promotable" true
    (Psi.promotable_chain vw out = None);
  (* single guarded chain: cmp → mov c ← a (guarded) → add d = c+c
     (guarded); promoting d unguards the whole chain *)
  let p = 1 and a = 2 and b = 3 and c = 5 and d = 6 in
  let h2 =
    {
      Hb.hname = "hb2";
      body =
        [
          op (cmp p a b);
          op ~g:(guard true [ p ]) (mov c a);
          op ~g:(guard true [ p ]) (add d c c);
        ];
      hexits = [ { Hb.eguard = None; etarget = None } ];
      houts = [ (d, d) ];
    }
  in
  let vw2 = Psi.view h2 in
  match Psi.promotable_chain vw2 d with
  | None -> Alcotest.fail "single guarded chain should be promotable"
  | Some sites ->
      Alcotest.(check (list int))
        "promotion unguards the chain" [ 1; 2 ]
        (List.sort compare sites)

(* dead-site detection: an instruction feeding nothing has an empty
   effectual region; the pass deletes it and the result still passes
   the static checker *)
let ineffectual_site () =
  let p = 1 and a = 2 and b = 3 and dead = 5 and out = 9 in
  let h =
    {
      Hb.hname = "hb";
      body =
        [
          op (cmp p a b);
          op ~g:(guard true [ p ]) (add dead a b);
          op ~g:(guard true [ p ]) (mov out a);
          op ~g:(guard false [ p ]) (mov out b);
        ];
      hexits = [ { Hb.eguard = None; etarget = None } ];
      houts = [ (out, out) ];
    }
  in
  (match Psi.ineffectuality h with
  | Error e -> Alcotest.failf "analysis inconclusive: %s" e
  | Ok iv ->
      Alcotest.(check (list int)) "the add is dead" [ 1 ] iv.Psi.dead;
      Alcotest.(check bool)
        "out-producer liveness is True" true
        (Bdd.is_true (Psi.live_region iv h out));
      Alcotest.(check bool)
        "dead temp liveness is False" true
        (Bdd.is_false (Psi.live_region iv h dead)));
  let m = Edge_obs.Metrics.create () in
  Dfp.Opt_ineff.run ~m h;
  Alcotest.(check int) "site deleted" 3 (List.length h.Hb.body);
  Alcotest.(check int)
    "pass.ineff.instrs_deleted counts it" 1
    (List.assoc "pass.ineff.instrs_deleted"
       (Edge_obs.Metrics.counters m));
  let r = Edge_check.Check.hblocks ~pass:"opt_ineff" [ h ] in
  Alcotest.(check int)
    "deleted block still checks clean" 0
    (List.length r.Edge_check.Check.diags)

(* guard dropping: a guard whose fire region equals the unguarded one
   is an ineffectual predicate delivery *)
let droppable_guard () =
  let p = 1 and a = 2 and b = 3 and c = 5 and d = 6 in
  let h =
    {
      Hb.hname = "hb";
      body =
        [
          op (cmp p a b);
          op ~g:(guard true [ p ]) (mov c a);
          op ~g:(guard true [ p ]) (add d c c);
          { Hb.hop = Hb.Null_write d; guard = Some (guard false [ p ]) };
        ];
      hexits = [ { Hb.eguard = None; etarget = None } ];
      houts = [ (d, d) ];
    }
  in
  (match Psi.ineffectuality h with
  | Error e -> Alcotest.failf "analysis inconclusive: %s" e
  | Ok iv ->
      (* I1 reads the live-in a (always available): its guard is load-
         bearing.  I2 reads c, defined only under the same guard: its
         guard delivers nothing.  I3's null must stay guarded — dropping
         it would deliver the null unconditionally *)
      Alcotest.(check (list int)) "only the add's guard" [ 2 ] iv.Psi.droppable);
  let m = Edge_obs.Metrics.create () in
  Dfp.Opt_ineff.run ~m h;
  Alcotest.(check int)
    "pass.ineff.guards_dropped counts it" 1
    (List.assoc "pass.ineff.guards_dropped" (Edge_obs.Metrics.counters m));
  let guards = List.map (fun hi -> hi.Hb.guard <> None) h.Hb.body in
  Alcotest.(check (list bool))
    "the add runs unguarded" [ false; true; false; true ] guards;
  let r = Edge_check.Check.hblocks ~pass:"opt_ineff" [ h ] in
  Alcotest.(check int)
    "unguarded block still checks clean" 0
    (List.length r.Edge_check.Check.diags)

(* ---- round-trip property over fuzz kernels -------------------------- *)

(* The driver's psi_ssa round-trip check runs inside every checked
   compile; the oracle then verifies each artifact against the
   reference interpreter and cross-checks both timing backends.  Any
   round-trip that changed semantics (or any checker-verdict change)
   surfaces as a failure here. *)
let roundtrip_property () =
  let report =
    Fz.Fuzz.run ~jobs:4 ~machines:Oracle.matrix_machines ~check:true
      ~min_size:4 ~max_size:14 ~seed:77_000 ~n:24 ()
  in
  match report.Fz.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d failures; first: %a"
        (List.length report.Fz.Fuzz.failures)
        Fz.Fuzz.pp_failure f

(* ---- mutation tests: bogus verdicts must not survive ---------------- *)

let parse_kernel name =
  match Edge_lang.Parser.parse (G.kernel_source name) with
  | Ok ast -> ast
  | Error e -> Alcotest.failf "%s: parse: %s" name e

let reference_ret ast =
  match Oracle.run_reference ast with
  | Ok o -> o.Oracle.ret
  | Error f -> Alcotest.failf "reference: %s" f.Oracle.message

(* with the enumerator hook installed (process-wide, from the oracle),
   forcing live sites into the dead set must raise a Breach — rendered
   as a check[pass=opt_ineff ...] diagnostic — before anything is
   deleted, and no forced verdict may reach execution as wrong code *)
let mutation_enumerator_catches () =
  let ast = parse_kernel "pred_diamond" in
  let expected = reference_ret ast in
  let breaches = ref 0 and silent = ref 0 in
  Fun.protect
    ~finally:(fun () -> Dfp.Opt_ineff.force_dead := [])
    (fun () ->
      for i = 0 to 15 do
        Dfp.Opt_ineff.force_dead := [ i ];
        match Oracle.compile ~check:false ast Dfp.Config.both with
        | Error e when Edge_check.Diag.parse_key e <> None -> incr breaches
        | Error _ -> ()
        | Ok c -> (
            match Oracle.run_functional c with
            | Ok o when Int64.equal o.Oracle.ret expected && not o.Oracle.fault
              ->
                ()
            | _ -> incr silent)
      done);
  Alcotest.(check bool)
    "at least one bogus verdict disproved by enumeration" true (!breaches > 0);
  Alcotest.(check int)
    "no bogus deletion reached execution" 0 !silent

(* with the hook disabled the bogus deletions actually apply; they must
   still be caught downstream — by a checker diagnostic or by the
   oracle's functional verification — never absorbed silently *)
let mutation_caught_unhooked () =
  let ast = parse_kernel "pred_diamond" in
  let expected = reference_ret ast in
  let caught = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Dfp.Opt_ineff.force_dead := [];
      (* restore the process-wide enumerator hook for later tests *)
      Fz.Ineff_oracle.install ())
    (fun () ->
      Dfp.Opt_ineff.cross_validate := None;
      for i = 0 to 15 do
        Dfp.Opt_ineff.force_dead := [ i ];
        match Oracle.compile ~check:true ast Dfp.Config.both with
        | Error _ -> incr caught
        | Ok c -> (
            match Oracle.run_functional c with
            | Ok o when Int64.equal o.Oracle.ret expected && not o.Oracle.fault
              ->
                ()
            | _ -> incr caught)
      done);
  Alcotest.(check bool)
    "bogus deletions caught by checker or oracle" true (!caught > 0)

(* ---- Pass_id round-trips -------------------------------------------- *)

let pass_id_roundtrip () =
  List.iter
    (fun p ->
      let name = Dfp.Pass_id.name p in
      Alcotest.(check bool)
        (name ^ " name round-trips") true
        (Dfp.Pass_id.of_name name = Some p);
      let counter = Dfp.Pass_id.counter p "things" in
      Alcotest.(check bool)
        (counter ^ " counter round-trips") true
        (Dfp.Pass_id.of_counter counter = Some p))
    Dfp.Pass_id.all;
  Alcotest.(check bool)
    "unknown counters do not parse" true
    (Dfp.Pass_id.of_counter "pass.bogus.things" = None);
  Alcotest.(check bool)
    "non-pass keys do not parse" true
    (Dfp.Pass_id.of_counter "serve.fast_hits" = None)

let tests =
  [
    Alcotest.test_case "psi view and def-use" `Quick psi_view;
    Alcotest.test_case "psi null delivery" `Quick psi_null_delivery;
    Alcotest.test_case "construct/destruct" `Quick construct_destruct;
    Alcotest.test_case "round-trip hand-built" `Quick roundtrip_hand_built;
    Alcotest.test_case "promotable chains" `Quick promotable;
    Alcotest.test_case "ineffectual site deleted" `Quick ineffectual_site;
    Alcotest.test_case "ineffectual guard dropped" `Quick droppable_guard;
    Alcotest.test_case "round-trip property (8 configs x 2 backends)" `Quick
      roundtrip_property;
    Alcotest.test_case "mutation: enumerator disproves bogus verdicts" `Quick
      mutation_enumerator_catches;
    Alcotest.test_case "mutation: unhooked deletions still caught" `Quick
      mutation_caught_unhooked;
    Alcotest.test_case "pass ids round-trip" `Quick pass_id_roundtrip;
  ]
