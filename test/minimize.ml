(* minimize: a delta-debugging CLI over the Edge_fuzz library.

   Usage: dune exec test/minimize.exe -- SEED SIZE [CONFIG]
          dune exec test/minimize.exe -- soak N

   soak N runs N generated programs through the full differential oracle
   (reference interpreter vs both simulators under every configuration,
   plus the static block validator on every compiled artifact) and
   reports failures. SEED SIZE [CONFIG] regenerates the program for that
   seed, confirms it fails, greedily shrinks it while preserving the
   failing configuration and failure kind, and prints the minimal
   reproducer as kernel source.

   The machinery lives in lib/fuzz; this file is argument parsing.
   `bin/fuzz.exe` is the parallel campaign driver with corpus support. *)

module Fz = Edge_fuzz

let config_of_name s =
  let want = String.lowercase_ascii s in
  match
    List.find_opt
      (fun n -> String.equal (String.lowercase_ascii n) want)
      Fz.Oracle.config_names
  with
  | Some n -> n
  | None ->
      Printf.eprintf "unknown config %s (valid: %s)\n" s
        (String.concat " "
           (List.map String.lowercase_ascii Fz.Oracle.config_names));
      exit 1

let soak n =
  let report = Fz.Fuzz.run ~seed:0 ~n () in
  List.iter
    (fun f -> Format.printf "%a@." Fz.Fuzz.pp_failure f)
    report.Fz.Fuzz.failures;
  Format.printf "soak done: %d failures / %d programs (%d skipped)@."
    (List.length report.Fz.Fuzz.failures)
    report.Fz.Fuzz.tested report.Fz.Fuzz.skipped;
  exit (if report.Fz.Fuzz.failures = [] then 0 else 1)

let minimize seed size config_filter =
  let ast = Fz.Gen.generate ~seed ~size in
  let failing =
    match (Fz.Oracle.check ast, config_filter) with
    | exception Fz.Oracle.Skip -> None
    | Error f, None -> Some f
    | Error f, Some c when String.equal f.Fz.Oracle.config c -> Some f
    | Error _, Some c -> (
        (* the requested config may fail even if another fails first *)
        match
          List.find_opt
            (fun k -> Fz.Oracle.still_fails ~config:c ~kind:k ast)
            [
              Fz.Oracle.Validator;
              Fz.Oracle.Mismatch;
              Fz.Oracle.Exec_error;
              Fz.Oracle.Checker;
            ]
        with
        | Some kind ->
            Some { Fz.Oracle.config = c; kind; message = "(filtered)" }
        | None -> None)
    | Ok _, _ -> None
  in
  match failing with
  | None ->
      print_endline "no failure for this seed/size/config";
      exit 1
  | Some f ->
      Printf.printf "minimizing %s [%s] failure...\n%!" f.Fz.Oracle.config
        (Fz.Oracle.kind_name f.Fz.Oracle.kind);
      let keep =
        Fz.Oracle.still_fails ~config:f.Fz.Oracle.config ~kind:f.Fz.Oracle.kind
      in
      let small = Fz.Shrink.minimize ~keep ast in
      print_string (Fz.Pretty.kernel_to_string small)

let () =
  match Array.to_list Sys.argv with
  | [ _; "soak"; n ] -> soak (int_of_string n)
  | [ _; seed; size ] -> minimize (int_of_string seed) (int_of_string size) None
  | [ _; seed; size; config ] ->
      minimize (int_of_string seed) (int_of_string size)
        (Some (config_of_name config))
  | _ ->
      prerr_endline "usage: minimize SEED SIZE [CONFIG] | minimize soak N";
      exit 1
