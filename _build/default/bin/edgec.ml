(* edgec: the kernel-language compiler driver.

   Compiles a kernel source file (or a named workload) under a chosen
   configuration and dumps the requested phase: the CFG after classic
   optimizations, the predicated hyperblocks, or the final TRIPS blocks
   (default). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let config_of_name = function
  | "bb" -> Ok Dfp.Config.bb
  | "hyper" -> Ok Dfp.Config.hyper_baseline
  | "intra" -> Ok Dfp.Config.intra
  | "inter" -> Ok Dfp.Config.inter
  | "both" -> Ok Dfp.Config.both
  | "merge" -> Ok Dfp.Config.merge
  | "sand" -> Ok Dfp.Config.sand
  | "hand" -> Ok Dfp.Config.hand_optimized
  | s -> Error (Printf.sprintf "unknown config %s (bb|hyper|intra|inter|both|merge|hand)" s)

let load_source input =
  if Sys.file_exists input then Ok (read_file input)
  else
    match Edge_workloads.Registry.find input with
    | Some w -> Ok w.Edge_workloads.Workload.source
    | None -> Error (Printf.sprintf "no such file or workload: %s" input)

let dump_hyperblocks src config =
  match Edge_lang.Lower.compile src with
  | Error e -> Error e
  | Ok cfg ->
      Edge_ir.Ssa.construct cfg;
      Dfp.Opt_classic.run cfg;
      Edge_ir.Ssa.destruct cfg;
      Edge_ir.Cfg.prune_unreachable cfg;
      if config.Dfp.Config.mode = Dfp.Config.Hyper then
        Dfp.Unroll.run cfg ~max_unroll:config.Dfp.Config.max_unroll
          ~target_instrs:(config.Dfp.Config.max_block_instrs / 2);
      let retq = Edge_ir.Temp.Gen.fresh cfg.Edge_ir.Cfg.gen in
      let liveness = Edge_ir.Liveness.compute cfg in
      let regions =
        match config.Dfp.Config.mode with
        | Dfp.Config.Bb -> Dfp.Region.singletons cfg
        | Dfp.Config.Hyper -> Dfp.Region.select cfg ~budget:57
      in
      List.iter
        (fun r ->
          match Dfp.If_convert.convert cfg liveness r ~retq with
          | Ok h -> Format.printf "%a@." Edge_ir.Hblock.pp h
          | Error e -> Format.printf "(region %s: %s)@." r.Dfp.If_convert.head e)
        regions;
      Ok ()

let run input config_name phase stats image_out =
  let ( let* ) = Result.bind in
  let result =
    let* src = load_source input in
    let* config = config_of_name config_name in
    let* () =
      match image_out with
      | None -> Ok ()
      | Some path ->
          let* cfg = Edge_lang.Lower.compile src in
          let* compiled = Dfp.Driver.compile_cfg cfg config in
          let* () = Edge_isa.Image.write_file path compiled.Dfp.Driver.program in
          Format.printf "wrote %s@." path;
          Ok ()
    in
    match phase with
    | "cfg" ->
        let* cfg = Edge_lang.Lower.compile src in
        Edge_ir.Ssa.construct cfg;
        Dfp.Opt_classic.run cfg;
        Edge_ir.Ssa.destruct cfg;
        Format.printf "%a@." Edge_ir.Cfg.pp cfg;
        Ok ()
    | "hblocks" -> dump_hyperblocks src config
    | "dot" ->
        let* cfg = Edge_lang.Lower.compile src in
        let* compiled = Dfp.Driver.compile_cfg cfg config in
        print_string (Edge_isa.Dot.program_to_dot compiled.Dfp.Driver.program);
        Ok ()
    | "blocks" ->
        let* cfg = Edge_lang.Lower.compile src in
        let* compiled = Dfp.Driver.compile_cfg cfg config in
        Format.printf "%a@." Edge_isa.Program.pp compiled.Dfp.Driver.program;
        if stats then
          Format.printf
            "; static: %d instructions, %d blocks, %d fanout moves, %d \
             explicit predicates@."
            compiled.Dfp.Driver.static_instrs compiled.Dfp.Driver.static_blocks
            compiled.Dfp.Driver.static_fanout_moves
            compiled.Dfp.Driver.explicit_predicates;
        Ok ()
    | p -> Error (Printf.sprintf "unknown phase %s (cfg|hblocks|blocks|dot)" p)
  in
  match result with
  | Ok () -> 0
  | Error e ->
      prerr_endline ("edgec: " ^ e);
      1

let input_arg =
  let doc = "Kernel source file, or the name of a built-in workload." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT" ~doc)

let config_arg =
  let doc = "Compiler configuration: bb, hyper, intra, inter, both, merge, hand." in
  Arg.(value & opt string "both" & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let phase_arg =
  let doc = "Phase to dump: cfg, hblocks, blocks, or dot (Graphviz)." in
  Arg.(value & opt string "blocks" & info [ "p"; "phase" ] ~docv:"PHASE" ~doc)

let stats_arg =
  let doc = "Print static statistics after the dump." in
  Arg.(value & flag & info [ "s"; "stats" ] ~doc)

let image_arg =
  let doc = "Also write the binary program image (1024-byte block frames)." in
  Arg.(value & opt (some string) None & info [ "o"; "emit-image" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "compile kernels to predicated TRIPS blocks" in
  Cmd.v
    (Cmd.info "edgec" ~doc)
    Term.(const run $ input_arg $ config_arg $ phase_arg $ stats_arg $ image_arg)

let () = exit (Cmd.eval' cmd)
