(* tsim: run a workload through the functional and cycle simulators. *)

open Cmdliner

let config_of_name = function
  | "bb" -> Ok ("BB", Dfp.Config.bb)
  | "hyper" -> Ok ("Hyper", Dfp.Config.hyper_baseline)
  | "intra" -> Ok ("Intra", Dfp.Config.intra)
  | "inter" -> Ok ("Inter", Dfp.Config.inter)
  | "both" -> Ok ("Both", Dfp.Config.both)
  | "merge" -> Ok ("Merge", Dfp.Config.merge)
  | "sand" -> Ok ("Sand", Dfp.Config.sand)
  | "hand" -> Ok ("Hand", Dfp.Config.hand_optimized)
  | s -> Error (Printf.sprintf "unknown config %s" s)

(* run a hand-written assembly program: arguments land in the parameter
   registers, g1 is printed on halt *)
let run_asm path args =
  let parsed =
    if Filename.check_suffix path ".img" then Edge_isa.Image.read_file path
    else begin
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Edge_isa.Asm.parse_program src
    end
  in
  match parsed with
  | Error e -> Error ("program: " ^ e)
  | Ok program -> (
      match Edge_isa.Program.validate program with
      | Error es -> Error ("invalid program: " ^ String.concat "; " es)
      | Ok () -> (
          let regs = Array.make 128 0L in
          List.iteri
            (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v)
            args;
          let mem = Edge_isa.Mem.create ~size:(1 lsl 20) in
          match Edge_sim.Cycle_sim.run program ~regs ~mem with
          | Error e -> Error e
          | Ok stats ->
              Format.printf "g1 = %Ld@.%a@."
                regs.(Edge_isa.Conventions.result_reg)
                Edge_sim.Stats.pp stats;
              Ok ()))

let run workload config_name functional_only no_early in_order asm_args =
  let ( let* ) = Result.bind in
  let result =
    if Filename.check_suffix workload ".s" || Filename.check_suffix workload ".img"
    then
      run_asm workload
        (List.filter_map Int64.of_string_opt
           (String.split_on_char ',' asm_args))
    else
    let* w =
      match Edge_workloads.Registry.find workload with
      | Some w -> Ok w
      | None ->
          Error
            (Printf.sprintf "unknown workload %s; available: %s" workload
               (String.concat ", " (Edge_workloads.Registry.names ())))
    in
    let* name_config = config_of_name config_name in
    if functional_only then begin
      let* compiled = Edge_harness.Experiment.compile w (snd name_config) in
      let mem = Edge_isa.Mem.create ~size:w.Edge_workloads.Workload.mem_size in
      let args = w.Edge_workloads.Workload.setup mem in
      let regs = Array.make 128 0L in
      List.iteri
        (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v)
        args;
      let* stats =
        Edge_sim.Functional.run compiled.Dfp.Driver.program ~regs ~mem
      in
      Format.printf "returned %Ld@.%a@."
        regs.(Edge_isa.Conventions.result_reg)
        Edge_sim.Stats.pp stats;
      Ok ()
    end
    else begin
      let machine =
        {
          Edge_sim.Machine.default with
          Edge_sim.Machine.early_termination = not no_early;
          aggressive_loads = not in_order;
        }
      in
      let* r = Edge_harness.Experiment.run_one ~machine w name_config in
      Format.printf "%s/%s: verified against the reference interpreter@."
        r.Edge_harness.Experiment.workload r.Edge_harness.Experiment.config;
      Format.printf "%a@." Edge_sim.Stats.pp r.Edge_harness.Experiment.stats;
      Ok ()
    end
  in
  match result with
  | Ok () -> 0
  | Error e ->
      prerr_endline ("tsim: " ^ e);
      1

let asm_args_arg =
  let doc = "Comma-separated integer arguments for .s programs." in
  Arg.(value & opt string "" & info [ "args" ] ~doc)

let workload_arg =
  let doc = "Workload name, or a path to a .s assembly / .img binary program." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let config_arg =
  let doc = "Compiler configuration." in
  Arg.(value & opt string "both" & info [ "c"; "config" ] ~doc)

let functional_arg =
  let doc = "Run only the functional (untimed) simulator." in
  Arg.(value & flag & info [ "f"; "functional" ] ~doc)

let no_early_arg =
  let doc = "Disable early mispredication termination (Section 4.3 ablation)." in
  Arg.(value & flag & info [ "no-early-termination" ] ~doc)

let in_order_arg =
  let doc = "In-order memory: loads wait for all older stores." in
  Arg.(value & flag & info [ "in-order-memory" ] ~doc)

let cmd =
  let doc = "cycle-level TRIPS-like simulator" in
  Cmd.v
    (Cmd.info "tsim" ~doc)
    Term.(
      const run $ workload_arg $ config_arg $ functional_arg $ no_early_arg
      $ in_order_arg $ asm_args_arg)

let () = exit (Cmd.eval' cmd)
