(* experiments: regenerate every number reported in EXPERIMENTS.md —
   the Figure 7 sweep, the Section 6 dynamic statistics, the genalg case
   study and the ablations. *)

let () =
  let t0 = Unix.gettimeofday () in
  Format.printf "== Figure 7 (28 EEMBC-style benchmarks x 5 configurations) ==@.";
  let fig7 =
    Edge_harness.Figure7.run
      ~progress:(fun n -> Printf.eprintf "  %s...\n%!" n)
      ()
  in
  Format.printf "%a@.@." Edge_harness.Figure7.pp fig7;
  Format.printf "== genalg case study (Section 5.3) ==@.";
  (match Edge_harness.Genalg_study.run () with
  | Ok s -> Format.printf "%a@.@." Edge_harness.Genalg_study.pp s
  | Error e -> Format.printf "error: %s@.@." e);
  Format.printf "== ablations ==@.";
  let entries, errors = Edge_harness.Ablation.run () in
  Format.printf "%a@." Edge_harness.Ablation.pp entries;
  List.iter (fun (w, e) -> Format.printf "error %s: %s@." w e) errors;
  Format.printf "@.total time: %.1fs@." (Unix.gettimeofday () -. t0)
