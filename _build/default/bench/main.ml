(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation.

     dune exec bench/main.exe            -- everything (Figure 7, Section 6
                                            statistics, genalg case study,
                                            ablations)
     dune exec bench/main.exe fig7       -- Figure 7 sweep only
     dune exec bench/main.exe stats      -- Section 6 dynamic statistics
     dune exec bench/main.exe genalg     -- Section 5.3 case study
     dune exec bench/main.exe ablation   -- mechanism ablations
     dune exec bench/main.exe micro      -- Bechamel microbenchmarks (one
                                            Test.make per experiment, timing
                                            the pipeline itself)

   The paper-facing numbers are simulated cycle counts, not wall-clock:
   the Bechamel tests exist to track the toolchain's own performance
   (compile time, functional- and cycle-simulation throughput). *)

let fig7 ?(progress = true) () =
  Edge_harness.Figure7.run
    ~progress:(fun n -> if progress then Printf.eprintf "  %s...\n%!" n)
    ()

let run_fig7 () =
  let r = fig7 () in
  Format.printf "%a@." Edge_harness.Figure7.pp r

let run_stats () =
  let r = fig7 () in
  Format.printf
    "@[<v>Section 6 dynamic statistics (Intra vs Hyper, all benchmarks)@,\
     move instructions: -%.1f%% (paper: -14%%)@,\
     total instructions: -%.1f%% (paper: -2%%)@,\
     blocks executed: -%.1f%% (paper: -5%%)@]@."
    (100.0 *. r.Edge_harness.Figure7.move_reduction)
    (100.0 *. r.Edge_harness.Figure7.instr_reduction)
    (100.0 *. r.Edge_harness.Figure7.block_reduction)

let run_genalg () =
  match Edge_harness.Genalg_study.run () with
  | Ok s -> Format.printf "%a@." Edge_harness.Genalg_study.pp s
  | Error e -> Format.printf "genalg: error %s@." e

let run_ablation () =
  let entries, errors = Edge_harness.Ablation.run () in
  Format.printf "%a@." Edge_harness.Ablation.pp entries;
  List.iter (fun (w, e) -> Format.printf "error %s: %s@." w e) errors

(* Bechamel microbenchmarks: one Test.make per regenerated artifact,
   measuring the machinery that produces it on a small representative
   input. *)
let micro_tests () =
  let open Bechamel in
  let w = Option.get (Edge_workloads.Registry.find "tblook01") in
  let both =
    match Edge_harness.Experiment.compile w Dfp.Config.both with
    | Ok c -> c
    | Error e -> failwith e
  in
  let run_functional () =
    let mem = Edge_isa.Mem.create ~size:w.Edge_workloads.Workload.mem_size in
    let args = w.Edge_workloads.Workload.setup mem in
    let regs = Array.make 128 0L in
    List.iteri (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v) args;
    match Edge_sim.Functional.run both.Dfp.Driver.program ~regs ~mem with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let run_cycle () =
    let mem = Edge_isa.Mem.create ~size:w.Edge_workloads.Workload.mem_size in
    let args = w.Edge_workloads.Workload.setup mem in
    let regs = Array.make 128 0L in
    List.iteri (fun i v -> regs.(Edge_isa.Conventions.param_reg i) <- v) args;
    let placement n =
      match List.assoc_opt n both.Dfp.Driver.placements with
      | Some p -> p
      | None -> [||]
    in
    match
      Edge_sim.Cycle_sim.run ~placement both.Dfp.Driver.program ~regs ~mem
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let compile_one () =
    match Edge_harness.Experiment.compile w Dfp.Config.both with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let genalg_point () =
    match
      Edge_harness.Experiment.run_one Edge_workloads.Registry.genalg
        ("Both", Dfp.Config.both)
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let ablation_point () =
    let machine =
      { Edge_sim.Machine.default with Edge_sim.Machine.early_termination = false }
    in
    match Edge_harness.Experiment.run_one ~machine w ("Both", Dfp.Config.both) with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  [
    Test.make ~name:"fig7:compile" (Staged.stage compile_one);
    Test.make ~name:"fig7:functional-sim" (Staged.stage run_functional);
    Test.make ~name:"fig7:cycle-sim" (Staged.stage run_cycle);
    Test.make ~name:"sec6-stats:cycle-sim" (Staged.stage run_cycle);
    Test.make ~name:"genalg-study:point" (Staged.stage genalg_point);
    Test.make ~name:"ablation:point" (Staged.stage ablation_point);
  ]

let run_micro () =
  let open Bechamel in
  let tests = micro_tests () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      Hashtbl.iter
        (fun name result ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock result
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Format.printf "%-28s %12.0f ns/run@." name est
          | _ -> Format.printf "%-28s (no estimate)@." name)
        results)
    tests

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "fig7" -> run_fig7 ()
  | "stats" -> run_stats ()
  | "genalg" -> run_genalg ()
  | "ablation" -> run_ablation ()
  | "micro" -> run_micro ()
  | "all" ->
      Format.printf "== Figure 7 ==@.";
      run_fig7 ();
      Format.printf "@.== genalg case study (Section 5.3 / Figure 6) ==@.";
      run_genalg ();
      Format.printf "@.== ablations ==@.";
      run_ablation ()
  | m ->
      Printf.eprintf "unknown mode %s (fig7|stats|genalg|ablation|micro|all)\n" m;
      exit 1
