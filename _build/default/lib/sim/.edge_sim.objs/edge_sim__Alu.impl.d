lib/sim/alu.ml: Edge_isa Int64 List
