lib/sim/machine.ml:
