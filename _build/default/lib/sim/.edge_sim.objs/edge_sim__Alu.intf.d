lib/sim/alu.mli: Edge_isa
