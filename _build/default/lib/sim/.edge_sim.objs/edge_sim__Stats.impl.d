lib/sim/stats.ml: Format
