lib/sim/predictor.mli:
