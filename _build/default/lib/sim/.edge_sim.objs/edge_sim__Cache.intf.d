lib/sim/cache.mli:
