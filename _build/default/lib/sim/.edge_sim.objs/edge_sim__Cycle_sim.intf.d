lib/sim/cycle_sim.mli: Edge_isa Machine Stats
