lib/sim/predictor.ml: Array Hashtbl
