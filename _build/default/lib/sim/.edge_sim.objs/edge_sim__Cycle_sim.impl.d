lib/sim/cycle_sim.ml: Alu Array Bytes Cache Char Edge_isa Format Fun Hashtbl Int Int64 List Machine Map Option Predictor Printf Queue Stats String Sys
