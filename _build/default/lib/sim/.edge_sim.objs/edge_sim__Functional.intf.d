lib/sim/functional.mli: Edge_isa Stats
