lib/sim/cache.ml: Array Int64
