lib/sim/functional.ml: Alu Array Buffer Bytes Char Edge_isa Format Int64 List Option Printf Queue Stats String
