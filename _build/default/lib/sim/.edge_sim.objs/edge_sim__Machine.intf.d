lib/sim/machine.mli:
