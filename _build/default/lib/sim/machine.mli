(** Machine configuration for the cycle simulator.

    Defaults model the delays Section 6 lists for tsim-proc / the TRIPS
    prototype: one-cycle hops between adjacent tiles, a 32 KB 2-way
    distributed L1 D-cache with 2-cycle latency, a 64 KB 2-way L1
    I-cache with 1-cycle latency, 8-cycle block fetch, and 3-cycle
    next-block prediction. The L2 and memory latencies are our own
    (documented) choices; the ablation switches turn off individual
    mechanisms of Section 4. *)

type t = {
  fetch_cycles : int;
  predict_cycles : int;
  max_inflight : int;  (** frames: 1 non-speculative + 7 speculative *)
  l1d_size : int;
  l1d_ways : int;
  l1d_latency : int;
  l1i_size : int;
  l1i_ways : int;
  l1i_latency : int;
  l2_size : int;
  l2_ways : int;
  l2_latency : int;
  mem_latency : int;
  line_bytes : int;
  early_termination : bool;  (** Section 4.3; off = drain before commit *)
  aggressive_loads : bool;
      (** loads may issue before older in-block stores resolve, with a
          dependence predictor and violation flushes; off = loads always
          wait (in-order memory) *)
  issue_per_tile : int;
  commit_stores_per_cycle : int;
  max_cycles : int;  (** watchdog *)
}

val default : t
