(** Execution statistics shared by the functional and cycle simulators.

    The Section 6 evaluation reports relative cycle counts plus dynamic
    instruction-class counts (total, moves), dynamic block counts, and
    predictor/cache behaviour; everything needed to regenerate those
    numbers is collected here. *)

type t = {
  mutable cycles : int;  (** 0 for the functional simulator *)
  mutable blocks_executed : int;
  mutable blocks_committed : int;
  mutable blocks_flushed : int;
  mutable instrs_fetched : int;
  mutable instrs_executed : int;
  mutable instrs_committed : int;  (** executed within committed blocks *)
  mutable moves_executed : int;  (** fanout overhead (Section 5.1) *)
  mutable nulls_executed : int;
  mutable tests_executed : int;
  mutable mispredicated_fetched : int;
      (** predicated instructions fetched but never fired *)
  mutable branch_mispredicts : int;
  mutable branch_predictions : int;
  mutable icache_accesses : int;
  mutable icache_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable lsq_violations : int;
  mutable operand_hops : int;
}

val create : unit -> t
val add : t -> t -> unit
val pp : Format.formatter -> t -> unit
