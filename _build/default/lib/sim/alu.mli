(** Shared ALU semantics for both simulators.

    Division truncates toward zero and division by zero sets the
    exception bit; shift amounts are masked to 6 bits; [Fdtoi] truncates;
    sub-word memory semantics live in {!Edge_isa.Mem}. Results inherit
    null and exception tags from their operands (Sections 4.2 and 4.4). *)

val exec :
  Edge_isa.Opcode.t ->
  imm:int64 ->
  left:Edge_isa.Token.t option ->
  right:Edge_isa.Token.t option ->
  Edge_isa.Token.t
(** Pure result computation for non-memory, non-branch opcodes. Memory and
    branch opcodes must not be passed here ([Invalid_argument]). *)

val effective_address : base:Edge_isa.Token.t -> imm:int64 -> int64
