type t = {
  history_mask : int;
  table_mask : int;
  mutable history : int;
  exit_table : int array;  (* predicted exit index per (block,history) *)
  btb : (int, string) Hashtbl.t;  (* (block, exit) -> target *)
  mutable mispredicts : int;
  mutable predictions : int;
}

let create ?(history_bits = 4) ?(table_bits = 12) () =
  {
    history_mask = (1 lsl history_bits) - 1;
    table_mask = (1 lsl table_bits) - 1;
    history = 0;
    exit_table = Array.make (1 lsl table_bits) 0;
    btb = Hashtbl.create 256;
    mispredicts = 0;
    predictions = 0;
  }

let block_hash block = Hashtbl.hash block

let index t block =
  (block_hash block lxor (t.history * 31)) land t.table_mask

let btb_key block exit_idx = (block_hash block * 37) + exit_idx

let predict t ~block =
  let exit_idx = t.exit_table.(index t block) in
  Hashtbl.find_opt t.btb (btb_key block exit_idx)

let update t ~block ~exit_idx ~target =
  t.exit_table.(index t block) <- exit_idx;
  Hashtbl.replace t.btb (btb_key block exit_idx) target;
  t.history <- ((t.history lsl 2) lor (exit_idx land 3)) land t.history_mask

let mispredicts t = t.mispredicts
let predictions t = t.predictions

let record_outcome t ~correct =
  t.predictions <- t.predictions + 1;
  if not correct then t.mispredicts <- t.mispredicts + 1
