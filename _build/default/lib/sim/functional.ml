module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Token = Edge_isa.Token
module Mem = Edge_isa.Mem

type outcome = { exit_taken : string option; faulted : string option }

exception Malformed of string

type store_resolution =
  | Unresolved
  | Stored of { addr : int64; value : int64; width : Opcode.width; exc : bool }
  | Nulled

type state = {
  block : Block.t;
  left : Token.t option array;
  right : Token.t option array;
  pred_matched : bool array;  (* matching predicate arrived *)
  pred_exc : bool array;  (* the matching predicate carried an exception *)
  fired : bool array;
  writes : Token.t option array;
  mutable stores : (int * store_resolution) list;  (* per declared lsid *)
  mutable branch : (string option * bool) option;  (* target, exc *)
  mutable pending_loads : int list;  (* instr ids deferred on LSID order *)
  queue : (Target.t * Token.t) Queue.t;
}

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let init block =
  let n = Array.length block.Block.instrs in
  {
    block;
    left = Array.make n None;
    right = Array.make n None;
    pred_matched = Array.make n false;
    pred_exc = Array.make n false;
    fired = Array.make n false;
    writes = Array.make (Array.length block.Block.writes) None;
    stores = List.map (fun l -> (l, Unresolved)) block.Block.store_lsids;
    branch = None;
    pending_loads = [];
    queue = Queue.create ();
  }

let store_resolution st lsid =
  match List.assoc_opt lsid st.stores with
  | Some r -> r
  | None -> fail "store lsid %d not declared" lsid

let resolve_store st lsid r =
  (match store_resolution st lsid with
  | Unresolved -> ()
  | Stored _ | Nulled -> fail "store lsid %d resolved twice" lsid);
  st.stores <- List.map (fun (l, v) -> if l = lsid then (l, r) else (l, v)) st.stores

let lower_lsids_resolved st lsid =
  List.for_all
    (fun (l, r) -> l >= lsid || r <> Unresolved)
    st.stores

(* Byte-accurate store-to-load forwarding: read the load's bytes from
   memory, then overlay every resolved store with a lower LSID, in LSID
   order. *)
let read_with_forwarding st ~mem ~width ~addr ~lsid =
  let nbytes = Mem.width_bytes width in
  let base_tok = Mem.load mem ~width ~addr in
  if base_tok.Token.exc then base_tok
  else begin
    let bytes = Bytes.create nbytes in
    for i = 0 to nbytes - 1 do
      Bytes.set bytes i
        (Char.chr
           (Int64.to_int
              (Int64.logand
                 (Int64.shift_right_logical base_tok.Token.payload (8 * i))
                 0xFFL)))
    done;
    let exc = ref false in
    List.iter
      (fun (l, r) ->
        if l < lsid then
          match r with
          | Stored { addr = sa; value; width = sw; exc = se } ->
              let sbytes = Mem.width_bytes sw in
              for i = 0 to sbytes - 1 do
                let byte_addr = Int64.add sa (Int64.of_int i) in
                let off = Int64.sub byte_addr addr in
                if off >= 0L && off < Int64.of_int nbytes then begin
                  if se then exc := true;
                  Bytes.set bytes (Int64.to_int off)
                    (Char.chr
                       (Int64.to_int
                          (Int64.logand
                             (Int64.shift_right_logical value (8 * i))
                             0xFFL)))
                end
              done
          | Unresolved | Nulled -> ())
      (List.sort (fun (a, _) (b, _) -> compare a b) st.stores);
    let v = ref 0L in
    for i = nbytes - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get bytes i)))
    done;
    (* sign extension for sub-word loads *)
    let v =
      match width with
      | Opcode.W1 ->
          if Int64.logand !v 0x80L <> 0L then Int64.logor !v (Int64.lognot 0xFFL)
          else !v
      | Opcode.W4 ->
          if Int64.logand !v 0x80000000L <> 0L then
            Int64.logor !v (Int64.lognot 0xFFFFFFFFL)
          else !v
      | Opcode.W8 -> !v
    in
    let tok = Token.of_int64 v in
    if !exc then Token.with_exc tok else tok
  end

let is_complete st =
  Array.for_all Option.is_some st.writes
  && List.for_all (fun (_, r) -> r <> Unresolved) st.stores
  && st.branch <> None

let ready st id =
  let i = st.block.Block.instrs.(id) in
  if st.fired.(id) then false
  else
    let arity = Opcode.num_operands i.Instr.opcode in
    let data_ok =
      match i.Instr.opcode with
      | Opcode.Sand -> (
          (* short-circuit: a false left operand suffices (Section 7) *)
          match st.left.(id) with
          | Some l -> (not (Token.as_predicate l)) || st.right.(id) <> None
          | None -> false)
      | _ ->
          (arity < 1 || st.left.(id) <> None)
          && (arity < 2 || st.right.(id) <> None)
    in
    let pred_ok = (not (Instr.is_predicated i)) || st.pred_matched.(id) in
    data_ok && pred_ok

let rec deliver st ~mem ~stats (target, tok) =
  match target with
  | Target.To_write w -> (
      match st.writes.(w) with
      | Some _ -> fail "write slot %d received two tokens" w
      | None -> st.writes.(w) <- Some tok)
  | Target.To_instr { id; slot } -> (
      let i = st.block.Block.instrs.(id) in
      match slot with
      | Target.Pred ->
          if not (Instr.is_predicated i) then
            fail "I%d: predicate delivered to unpredicated instruction" id;
          if Instr.predicate_matches i.Instr.pred tok then begin
            if st.pred_matched.(id) then
              fail "I%d: two matching predicates" id;
            st.pred_matched.(id) <- true;
            st.pred_exc.(id) <- tok.Token.exc;
            try_fire st ~mem ~stats id
          end
          (* non-matching arrivals are ignored (Section 4.1) *)
      | Target.Left | Target.Right -> (
          (* a null token arriving at a store resolves it immediately as a
             null store (Section 4.2) *)
          match i.Instr.opcode with
          | Opcode.St _ when tok.Token.null ->
              if st.fired.(id) then fail "I%d: null for fired store" id;
              st.fired.(id) <- true;
              stats.Stats.nulls_executed <- stats.Stats.nulls_executed + 1;
              resolve_store st i.Instr.lsid Nulled;
              retry_loads st ~mem ~stats
          | _ ->
              let arr =
                match slot with
                | Target.Left -> st.left
                | Target.Right -> st.right
                | Target.Pred -> assert false
              in
              (match arr.(id) with
              | Some _ -> fail "I%d: operand %a delivered twice" id Target.pp_slot slot
              | None -> arr.(id) <- Some tok);
              try_fire st ~mem ~stats id))

and try_fire st ~mem ~stats id =
  if ready st id then fire st ~mem ~stats id

and fire st ~mem ~stats id =
  let i = st.block.Block.instrs.(id) in
  let taint_pred tok =
    if st.pred_exc.(id) then Token.with_exc tok else tok
  in
  match i.Instr.opcode with
  | Opcode.Ld width ->
      (* defer when a lower-LSID declared store is still unresolved *)
      if not (lower_lsids_resolved st i.Instr.lsid) then begin
        if not (List.mem id st.pending_loads) then
          st.pending_loads <- id :: st.pending_loads
      end
      else begin
        st.fired.(id) <- true;
        stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
        let base =
          match st.left.(id) with Some t -> t | None -> assert false
        in
        let addr = Alu.effective_address ~base ~imm:i.Instr.imm in
        let tok =
          if base.Token.exc || base.Token.null then
            Token.taint base (Token.of_int64 0L)
          else read_with_forwarding st ~mem ~width ~addr ~lsid:i.Instr.lsid
        in
        let tok = taint_pred (Token.taint base tok) in
        send_all st ~mem ~stats i tok
      end
  | Opcode.St _ ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      let base = match st.left.(id) with Some t -> t | None -> assert false in
      let v = match st.right.(id) with Some t -> t | None -> assert false in
      if v.Token.null || base.Token.null then begin
        resolve_store st i.Instr.lsid Nulled;
        retry_loads st ~mem ~stats
      end
      else begin
        let addr = Alu.effective_address ~base ~imm:i.Instr.imm in
        let width =
          match i.Instr.opcode with Opcode.St w -> w | _ -> assert false
        in
        let exc = base.Token.exc || v.Token.exc || st.pred_exc.(id) in
        resolve_store st i.Instr.lsid
          (Stored { addr; value = v.Token.payload; width; exc });
        retry_loads st ~mem ~stats
      end
  | Opcode.Bro ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      (match st.branch with
      | Some _ -> fail "two branches fired"
      | None ->
          let tgt = st.block.Block.exits.(i.Instr.exit_idx) in
          let tgt = if String.equal tgt Block.halt_exit then None else Some tgt in
          st.branch <- Some (tgt, st.pred_exc.(id)))
  | Opcode.Halt ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      (match st.branch with
      | Some _ -> fail "two branches fired"
      | None -> st.branch <- Some (None, st.pred_exc.(id)))
  | Opcode.Sand ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      stats.Stats.tests_executed <- stats.Stats.tests_executed + 1;
      let l = match st.left.(id) with Some t -> t | None -> assert false in
      let tok =
        if not (Token.as_predicate l) then Token.taint l (Token.of_int64 0L)
        else
          let r = match st.right.(id) with Some t -> t | None -> assert false in
          Token.taint l
            (Token.taint r
               (Token.of_int64 (if Token.as_predicate r then 1L else 0L)))
      in
      send_all st ~mem ~stats i (taint_pred tok)
  | Opcode.Iop _ | Opcode.Iopi _ | Opcode.Tst _ | Opcode.Tsti _ | Opcode.Fop _
  | Opcode.Ftst _ | Opcode.Un _ | Opcode.Movi | Opcode.Geni | Opcode.Mov4
  | Opcode.Null ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      (match i.Instr.opcode with
      | Opcode.Un Opcode.Mov | Opcode.Mov4 ->
          stats.Stats.moves_executed <- stats.Stats.moves_executed + 1
      | Opcode.Null -> stats.Stats.nulls_executed <- stats.Stats.nulls_executed + 1
      | Opcode.Tst _ | Opcode.Tsti _ | Opcode.Ftst _ ->
          stats.Stats.tests_executed <- stats.Stats.tests_executed + 1
      | _ -> ());
      let tok =
        Alu.exec i.Instr.opcode ~imm:i.Instr.imm ~left:st.left.(id)
          ~right:st.right.(id)
      in
      send_all st ~mem ~stats i (taint_pred tok)

and send_all st ~mem ~stats i tok =
  List.iter (fun tgt -> Queue.add (tgt, tok) st.queue) i.Instr.targets;
  drain st ~mem ~stats

and retry_loads st ~mem ~stats =
  let loads = st.pending_loads in
  st.pending_loads <- [];
  List.iter
    (fun id -> if not st.fired.(id) then fire st ~mem ~stats id)
    loads

and drain st ~mem ~stats =
  while not (Queue.is_empty st.queue) do
    deliver st ~mem ~stats (Queue.pop st.queue)
  done

let run_block block ~regs ~mem ~stats =
  match
    let st = init block in
    stats.Stats.blocks_executed <- stats.Stats.blocks_executed + 1;
    stats.Stats.instrs_fetched <-
      stats.Stats.instrs_fetched + Array.length block.Block.instrs;
    (* seed register reads *)
    Array.iter
      (fun (r : Block.read) ->
        let tok = Token.of_int64 regs.(r.Block.reg) in
        List.iter (fun tgt -> Queue.add (tgt, tok) st.queue) r.Block.rtargets)
      block.Block.reads;
    (* seed 0-operand unpredicated instructions *)
    Array.iteri
      (fun id (i : Instr.t) ->
        if
          Opcode.num_operands i.Instr.opcode = 0
          && not (Instr.is_predicated i)
        then try_fire st ~mem ~stats id)
      block.Block.instrs;
    drain st ~mem ~stats;
    if not (is_complete st) then begin
      let missing = Buffer.create 64 in
      Array.iteri
        (fun w t ->
          if t = None then Buffer.add_string missing (Printf.sprintf " W%d" w))
        st.writes;
      List.iter
        (fun (l, r) ->
          if r = Unresolved then
            Buffer.add_string missing (Printf.sprintf " S%d" l))
        st.stores;
      if st.branch = None then Buffer.add_string missing " branch";
      fail "block %s deadlocked; missing:%s" block.Block.name
        (Buffer.contents missing)
    end;
    (* count mispredicated (fetched but never fired) instructions *)
    Array.iteri
      (fun id (i : Instr.t) ->
        if Instr.is_predicated i && not st.fired.(id) then
          stats.Stats.mispredicated_fetched <-
            stats.Stats.mispredicated_fetched + 1)
      block.Block.instrs;
    (* commit *)
    let fault = ref None in
    List.iter
      (fun (lsid, r) ->
        match r with
        | Stored { addr; value; width; exc } ->
            if exc then fault := Some (Printf.sprintf "store lsid %d" lsid)
            else (
              match Mem.store mem ~width ~addr value with
              | Ok () -> ()
              | Error () ->
                  fault := Some (Printf.sprintf "store fault at %Ld" addr))
        | Nulled -> ()
        | Unresolved -> assert false)
      (List.sort (fun (a, _) (b, _) -> compare a b) st.stores);
    Array.iteri
      (fun w tok ->
        match tok with
        | Some t ->
            if t.Token.null then ()
            else if t.Token.exc then
              fault := Some (Printf.sprintf "write W%d" w)
            else regs.(block.Block.writes.(w).Block.wreg) <- t.Token.payload
        | None -> assert false)
      st.writes;
    let exit_taken, branch_exc =
      match st.branch with Some (t, e) -> (t, e) | None -> assert false
    in
    if branch_exc then fault := Some "branch";
    stats.Stats.blocks_committed <- stats.Stats.blocks_committed + 1;
    Ok { exit_taken; faulted = !fault }
  with
  | r -> r
  | exception Malformed m -> Error m

let run ?(fuel_blocks = 10_000_000) program ~regs ~mem =
  let stats = Stats.create () in
  let rec go name fuel =
    if fuel <= 0 then Error "malformed: fuel exhausted"
    else
      match Edge_isa.Program.find program name with
      | None -> Error (Printf.sprintf "malformed: no block %s" name)
      | Some b -> (
          match run_block b ~regs ~mem ~stats with
          | Error m -> Error ("malformed: " ^ m)
          | Ok { faulted = Some f; _ } -> Error ("fault: " ^ f)
          | Ok { exit_taken = None; _ } -> Ok stats
          | Ok { exit_taken = Some next; _ } -> go next (fuel - 1))
  in
  go program.Edge_isa.Program.entry fuel_blocks
