(** Set-associative cache timing model with LRU replacement.

    Purely a latency model: data always comes from {!Edge_isa.Mem};
    the cache tracks which lines would hit. Geometry defaults follow the
    paper's Section 6: 32 KB 2-way L1D (2-cycle), 64 KB 2-way L1I
    (1-cycle), backed by an L2 and main memory. *)

type t

val create :
  size_bytes:int -> ways:int -> line_bytes:int -> hit_latency:int -> t

val access : t -> addr:int64 -> write:bool -> bool
(** [true] on hit; allocates the line (write-allocate) on miss. *)

val hit_latency : t -> int
val flush : t -> unit
