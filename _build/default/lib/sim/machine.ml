type t = {
  fetch_cycles : int;
  predict_cycles : int;
  max_inflight : int;
  l1d_size : int;
  l1d_ways : int;
  l1d_latency : int;
  l1i_size : int;
  l1i_ways : int;
  l1i_latency : int;
  l2_size : int;
  l2_ways : int;
  l2_latency : int;
  mem_latency : int;
  line_bytes : int;
  early_termination : bool;
  aggressive_loads : bool;
  issue_per_tile : int;
  commit_stores_per_cycle : int;
  max_cycles : int;
}

let default =
  {
    fetch_cycles = 8;
    predict_cycles = 3;
    max_inflight = 8;
    l1d_size = 32 * 1024;
    l1d_ways = 2;
    l1d_latency = 2;
    l1i_size = 64 * 1024;
    l1i_ways = 2;
    l1i_latency = 1;
    l2_size = 1024 * 1024;
    l2_ways = 4;
    l2_latency = 20;
    mem_latency = 80;
    line_bytes = 64;
    early_termination = true;
    aggressive_loads = true;
    issue_per_tile = 1;
    commit_stores_per_cycle = 2;
    max_cycles = 200_000_000;
  }
