type t = {
  mutable cycles : int;
  mutable blocks_executed : int;
  mutable blocks_committed : int;
  mutable blocks_flushed : int;
  mutable instrs_fetched : int;
  mutable instrs_executed : int;
  mutable instrs_committed : int;
  mutable moves_executed : int;
  mutable nulls_executed : int;
  mutable tests_executed : int;
  mutable mispredicated_fetched : int;
  mutable branch_mispredicts : int;
  mutable branch_predictions : int;
  mutable icache_accesses : int;
  mutable icache_misses : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable lsq_violations : int;
  mutable operand_hops : int;
}

let create () =
  {
    cycles = 0;
    blocks_executed = 0;
    blocks_committed = 0;
    blocks_flushed = 0;
    instrs_fetched = 0;
    instrs_executed = 0;
    instrs_committed = 0;
    moves_executed = 0;
    nulls_executed = 0;
    tests_executed = 0;
    mispredicated_fetched = 0;
    branch_mispredicts = 0;
    branch_predictions = 0;
    icache_accesses = 0;
    icache_misses = 0;
    dcache_accesses = 0;
    dcache_misses = 0;
    lsq_violations = 0;
    operand_hops = 0;
  }

let add a b =
  a.cycles <- a.cycles + b.cycles;
  a.blocks_executed <- a.blocks_executed + b.blocks_executed;
  a.blocks_committed <- a.blocks_committed + b.blocks_committed;
  a.blocks_flushed <- a.blocks_flushed + b.blocks_flushed;
  a.instrs_fetched <- a.instrs_fetched + b.instrs_fetched;
  a.instrs_executed <- a.instrs_executed + b.instrs_executed;
  a.instrs_committed <- a.instrs_committed + b.instrs_committed;
  a.moves_executed <- a.moves_executed + b.moves_executed;
  a.nulls_executed <- a.nulls_executed + b.nulls_executed;
  a.tests_executed <- a.tests_executed + b.tests_executed;
  a.mispredicated_fetched <- a.mispredicated_fetched + b.mispredicated_fetched;
  a.branch_mispredicts <- a.branch_mispredicts + b.branch_mispredicts;
  a.branch_predictions <- a.branch_predictions + b.branch_predictions;
  a.icache_accesses <- a.icache_accesses + b.icache_accesses;
  a.icache_misses <- a.icache_misses + b.icache_misses;
  a.dcache_accesses <- a.dcache_accesses + b.dcache_accesses;
  a.dcache_misses <- a.dcache_misses + b.dcache_misses;
  a.lsq_violations <- a.lsq_violations + b.lsq_violations;
  a.operand_hops <- a.operand_hops + b.operand_hops

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles %d@,blocks exec/commit/flush %d/%d/%d@,\
     instrs fetch/exec/commit %d/%d/%d@,moves %d nulls %d tests %d@,\
     mispredicated fetched %d@,branch mispredict %d/%d@,\
     icache miss %d/%d dcache miss %d/%d@,lsq violations %d hops %d@]"
    t.cycles t.blocks_executed t.blocks_committed t.blocks_flushed
    t.instrs_fetched t.instrs_executed t.instrs_committed t.moves_executed
    t.nulls_executed t.tests_executed t.mispredicated_fetched
    t.branch_mispredicts t.branch_predictions t.icache_misses
    t.icache_accesses t.dcache_misses t.dcache_accesses t.lsq_violations
    t.operand_hops
