(** Type checking for the kernel language.

    Types are [int] (64-bit signed), [float] (IEEE double) and typed
    pointers. Pointer arithmetic scales by element size as in C; indexing
    loads/stores through the pointed-to element type. *)

type env = (string * Ast.ty) list

val type_of_expr : env -> Ast.expr -> (Ast.ty, string) result

val check_kernel : Ast.kernel -> (unit, string) result
(** Checks declarations-before-use, type agreement of assignments,
    conditions of integer type, break/continue only inside loops, and
    consistent return types. *)

val return_type : Ast.kernel -> Ast.ty option
(** The kernel's result type, if any return carries a value. *)
