type elem = I8 | I32 | I64 | F64
type ty = Tint | Tfloat | Tptr of elem

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr

type unop = Neg | LNot | BNot | Itof | Ftoi

type expr =
  | Int of int64
  | Float of float
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Index of string * expr
  | Cond of expr * expr * expr

type stmt =
  | Decl of ty * string * expr option
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Break
  | Continue
  | Return of expr option

type param = { pname : string; pty : ty }
type kernel = { kname : string; params : param list; body : stmt list }

let elem_size = function I8 -> 1 | I32 -> 4 | I64 -> 8 | F64 -> 8

let elem_width = function
  | I8 -> Edge_isa.Opcode.W1
  | I32 -> Edge_isa.Opcode.W4
  | I64 | F64 -> Edge_isa.Opcode.W8

let ty_pp ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tfloat -> Format.pp_print_string ppf "float"
  | Tptr I8 -> Format.pp_print_string ppf "byte*"
  | Tptr I32 -> Format.pp_print_string ppf "int4*"
  | Tptr I64 -> Format.pp_print_string ppf "int*"
  | Tptr F64 -> Format.pp_print_string ppf "float*"
