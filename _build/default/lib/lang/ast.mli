(** Abstract syntax of the kernel language.

    A small C-like language — integers, doubles, typed pointers, [if] /
    [while] / [for] / [break] / [continue], short-circuit [&&] and [||] —
    rich enough to express the EEMBC-style kernels of the paper's Figure 7
    and the genalg loop of Figure 6. One kernel per program; no calls. *)

type elem = I8 | I32 | I64 | F64

type ty = Tint | Tfloat | Tptr of elem

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr  (** short-circuit *)

type unop = Neg | LNot | BNot | Itof | Ftoi

type expr =
  | Int of int64
  | Float of float
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Index of string * expr  (** [a\[e\]]: load through pointer variable *)
  | Cond of expr * expr * expr  (** [c ? a : b] *)

type stmt =
  | Decl of ty * string * expr option
  | Assign of string * expr
  | Store of string * expr * expr  (** [a\[e1\] = e2] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Break
  | Continue
  | Return of expr option

type param = { pname : string; pty : ty }

type kernel = { kname : string; params : param list; body : stmt list }

val elem_size : elem -> int
val elem_width : elem -> Edge_isa.Opcode.width
val ty_pp : Format.formatter -> ty -> unit
