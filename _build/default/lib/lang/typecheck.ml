type env = (string * Ast.ty) list

let ( let* ) = Result.bind

let ty_equal (a : Ast.ty) (b : Ast.ty) = a = b

let ty_name t = Format.asprintf "%a" Ast.ty_pp t

let rec type_of_expr env (e : Ast.expr) =
  match e with
  | Ast.Int _ -> Ok Ast.Tint
  | Ast.Float _ -> Ok Ast.Tfloat
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "undeclared variable %s" v))
  | Ast.Index (v, idx) -> (
      let* it = type_of_expr env idx in
      if not (ty_equal it Ast.Tint) then
        Error (Printf.sprintf "index into %s must be int" v)
      else
        match List.assoc_opt v env with
        | Some (Ast.Tptr Ast.F64) -> Ok Ast.Tfloat
        | Some (Ast.Tptr _) -> Ok Ast.Tint
        | Some t ->
            Error (Printf.sprintf "%s has type %s, cannot index" v (ty_name t))
        | None -> Error (Printf.sprintf "undeclared variable %s" v))
  | Ast.Un (op, a) -> (
      let* ta = type_of_expr env a in
      match (op, ta) with
      | Ast.Neg, (Ast.Tint | Ast.Tfloat) -> Ok ta
      | Ast.Neg, Ast.Tptr _ -> Error "cannot negate a pointer"
      | (Ast.LNot | Ast.BNot), Ast.Tint -> Ok Ast.Tint
      | (Ast.LNot | Ast.BNot), _ -> Error "logical/bitwise not requires int"
      | Ast.Itof, Ast.Tint -> Ok Ast.Tfloat
      | Ast.Itof, _ -> Error "itof requires int"
      | Ast.Ftoi, Ast.Tfloat -> Ok Ast.Tint
      | Ast.Ftoi, _ -> Error "ftoi requires float")
  | Ast.Bin (op, a, b) -> (
      let* ta = type_of_expr env a in
      let* tb = type_of_expr env b in
      match op with
      | Ast.Add | Ast.Sub -> (
          match (ta, tb) with
          | Ast.Tint, Ast.Tint -> Ok Ast.Tint
          | Ast.Tfloat, Ast.Tfloat -> Ok Ast.Tfloat
          | Ast.Tptr e, Ast.Tint -> Ok (Ast.Tptr e)
          | Ast.Tint, Ast.Tptr e when op = Ast.Add -> Ok (Ast.Tptr e)
          | _ ->
              Error
                (Printf.sprintf "bad operand types %s and %s" (ty_name ta)
                   (ty_name tb)))
      | Ast.Mul | Ast.Div -> (
          match (ta, tb) with
          | Ast.Tint, Ast.Tint -> Ok Ast.Tint
          | Ast.Tfloat, Ast.Tfloat -> Ok Ast.Tfloat
          | _ ->
              Error
                (Printf.sprintf "bad operand types %s and %s" (ty_name ta)
                   (ty_name tb)))
      | Ast.Rem | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
          if ty_equal ta Ast.Tint && ty_equal tb Ast.Tint then Ok Ast.Tint
          else Error "integer operator requires int operands"
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> (
          match (ta, tb) with
          | Ast.Tint, Ast.Tint | Ast.Tfloat, Ast.Tfloat -> Ok Ast.Tint
          | Ast.Tptr e1, Ast.Tptr e2 when e1 = e2 -> Ok Ast.Tint
          | _ ->
              Error
                (Printf.sprintf "cannot compare %s and %s" (ty_name ta)
                   (ty_name tb)))
      | Ast.LAnd | Ast.LOr ->
          if ty_equal ta Ast.Tint && ty_equal tb Ast.Tint then Ok Ast.Tint
          else Error "&&/|| require int operands")
  | Ast.Cond (c, a, b) ->
      let* tc = type_of_expr env c in
      if not (ty_equal tc Ast.Tint) then Error "condition must be int"
      else
        let* ta = type_of_expr env a in
        let* tb = type_of_expr env b in
        if ty_equal ta tb then Ok ta
        else Error "ternary arms must have the same type"

let rec check_stmts env ~in_loop ~ret stmts =
  match stmts with
  | [] -> Ok env
  | s :: tl -> (
      match s with
      | Ast.Decl (ty, name, init) ->
          if List.mem_assoc name env then
            Error (Printf.sprintf "redeclaration of %s" name)
          else
            let* () =
              match init with
              | None -> Ok ()
              | Some e ->
                  let* te = type_of_expr env e in
                  if ty_equal te ty then Ok ()
                  else
                    Error
                      (Printf.sprintf "initializer of %s has type %s, not %s"
                         name (ty_name te) (ty_name ty))
            in
            check_stmts ((name, ty) :: env) ~in_loop ~ret tl
      | Ast.Assign (name, e) -> (
          match List.assoc_opt name env with
          | None -> Error (Printf.sprintf "undeclared variable %s" name)
          | Some ty ->
              let* te = type_of_expr env e in
              if ty_equal te ty then check_stmts env ~in_loop ~ret tl
              else
                Error
                  (Printf.sprintf "assigning %s to %s of type %s" (ty_name te)
                     name (ty_name ty)))
      | Ast.Store (name, idx, v) -> (
          match List.assoc_opt name env with
          | Some (Ast.Tptr elem) ->
              let* ti = type_of_expr env idx in
              let* tv = type_of_expr env v in
              let want =
                match elem with Ast.F64 -> Ast.Tfloat | _ -> Ast.Tint
              in
              if not (ty_equal ti Ast.Tint) then Error "store index must be int"
              else if not (ty_equal tv want) then
                Error
                  (Printf.sprintf "storing %s into %s of element type %s"
                     (ty_name tv) name (ty_name want))
              else check_stmts env ~in_loop ~ret tl
          | Some t ->
              Error (Printf.sprintf "%s has type %s, cannot index" name (ty_name t))
          | None -> Error (Printf.sprintf "undeclared variable %s" name))
      | Ast.If (c, then_b, else_b) ->
          let* tc = type_of_expr env c in
          if not (ty_equal tc Ast.Tint) then Error "if condition must be int"
          else
            let* _ = check_stmts env ~in_loop ~ret then_b in
            let* _ = check_stmts env ~in_loop ~ret else_b in
            check_stmts env ~in_loop ~ret tl
      | Ast.While (c, body) ->
          let* tc = type_of_expr env c in
          if not (ty_equal tc Ast.Tint) then Error "while condition must be int"
          else
            let* _ = check_stmts env ~in_loop:true ~ret body in
            check_stmts env ~in_loop ~ret tl
      | Ast.For (init, cond, step, body) ->
          let* env' =
            match init with
            | None -> Ok env
            | Some s -> check_stmts env ~in_loop ~ret [ s ]
          in
          let* () =
            match cond with
            | None -> Ok ()
            | Some c ->
                let* tc = type_of_expr env' c in
                if ty_equal tc Ast.Tint then Ok ()
                else Error "for condition must be int"
          in
          let* _ =
            match step with
            | None -> Ok env'
            | Some s -> check_stmts env' ~in_loop:true ~ret [ s ]
          in
          let* _ = check_stmts env' ~in_loop:true ~ret body in
          check_stmts env ~in_loop ~ret tl
      | Ast.Break | Ast.Continue ->
          if in_loop then check_stmts env ~in_loop ~ret tl
          else Error "break/continue outside loop"
      | Ast.Return None -> check_stmts env ~in_loop ~ret tl
      | Ast.Return (Some e) -> (
          let* te = type_of_expr env e in
          match !ret with
          | None ->
              ret := Some te;
              check_stmts env ~in_loop ~ret tl
          | Some t ->
              if ty_equal t te then check_stmts env ~in_loop ~ret tl
              else Error "inconsistent return types"))

let check_kernel (k : Ast.kernel) =
  let env = List.map (fun p -> (p.Ast.pname, p.Ast.pty)) k.Ast.params in
  let rec dup = function
    | [] -> None
    | (n, _) :: tl -> if List.mem_assoc n tl then Some n else dup tl
  in
  match dup env with
  | Some n -> Error (Printf.sprintf "duplicate parameter %s" n)
  | None ->
      let ret = ref None in
      let* _ = check_stmts env ~in_loop:false ~ret k.Ast.body in
      Ok ()

let return_type (k : Ast.kernel) =
  let found = ref None in
  let rec scan stmts env =
    List.fold_left
      (fun env s ->
        match s with
        | Ast.Decl (ty, n, _) -> (n, ty) :: env
        | Ast.Return (Some e) ->
            (match type_of_expr env e with
            | Ok t -> if !found = None then found := Some t
            | Error _ -> ());
            env
        | Ast.If (_, a, b) ->
            ignore (scan a env);
            ignore (scan b env);
            env
        | Ast.While (_, b) ->
            ignore (scan b env);
            env
        | Ast.For (init, _, _, b) ->
            let env' =
              match init with
              | Some (Ast.Decl (ty, n, _)) -> (n, ty) :: env
              | _ -> env
            in
            ignore (scan b env');
            env
        | Ast.Assign _ | Ast.Store _ | Ast.Break | Ast.Continue
        | Ast.Return None ->
            env)
      env stmts
  in
  let env = List.map (fun p -> (p.Ast.pname, p.Ast.pty)) k.Ast.params in
  ignore (scan k.Ast.body env);
  !found
