(** Recursive-descent parser for the kernel language.

    Grammar sketch:
    {v
    kernel   ::= "kernel" ident "(" params? ")" block
    params   ::= param ("," param)*
    param    ::= type ident
    type     ::= ("int" | "float" | "byte" | "int4") "*"?
    block    ::= "{" stmt* "}"
    stmt     ::= type ident ("=" expr)? ";"
               | ident "=" expr ";"
               | ident "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block ("else" (block | ifstmt))?
               | "while" "(" expr ")" block
               | "for" "(" simple? ";" expr? ";" simple? ")" block
               | "break" ";" | "continue" ";"
               | "return" expr? ";"
    expr     ::= ternary with C-like precedence, short-circuit && and ||
    v} *)

val parse : string -> (Ast.kernel, string) result
val parse_expr : string -> (Ast.expr, string) result
