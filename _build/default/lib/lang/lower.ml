module Cfg = Edge_ir.Cfg
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Opcode = Edge_isa.Opcode

type ctx = {
  cfg : Cfg.t;
  mutable cur : Edge_ir.Label.t;  (** block under construction *)
  mutable buf : Tac.instr list;  (** reversed instruction buffer *)
  mutable env : (string * (Temp.t * Ast.ty)) list;
  mutable loops : (Edge_ir.Label.t * Edge_ir.Label.t) list;
      (** (break target, continue target) stack *)
  mutable terminated : bool;
  mutable label_counter : int;
}

let fresh_label ctx prefix =
  ctx.label_counter <- ctx.label_counter + 1;
  Printf.sprintf "%s%d" prefix ctx.label_counter

let fresh ctx = Temp.Gen.fresh ctx.cfg.Cfg.gen

let emit ctx i = if not ctx.terminated then ctx.buf <- i :: ctx.buf

let finish_block ctx term =
  if not ctx.terminated then begin
    Cfg.add_block ctx.cfg
      { Cfg.label = ctx.cur; instrs = List.rev ctx.buf; term };
    ctx.buf <- [];
    ctx.terminated <- true
  end

let start_block ctx label =
  ctx.cur <- label;
  ctx.buf <- [];
  ctx.terminated <- false

let var ctx name =
  match List.assoc_opt name ctx.env with
  | Some tt -> tt
  | None -> invalid_arg ("Lower.var: " ^ name)

let ty_env ctx = List.map (fun (n, (_, t)) -> (n, t)) ctx.env

let expr_ty ctx e =
  match Typecheck.type_of_expr (ty_env ctx) e with
  | Ok t -> t
  | Error m -> invalid_arg ("Lower.expr_ty: " ^ m)

let scale_of_ptr ctx name =
  match snd (var ctx name) with
  | Ast.Tptr e -> Ast.elem_size e
  | Ast.Tint | Ast.Tfloat -> invalid_arg "Lower.scale_of_ptr"

(* address of a[i]: a + i*size, with the multiply strength-reduced to a
   shift for power-of-two sizes *)
let rec lower_address ctx name idx =
  let base, _ = var ctx name in
  let scale = scale_of_ptr ctx name in
  match idx with
  | Ast.Int k ->
      (* constant index: fold into the offset when small *)
      let off = Int64.to_int (Int64.mul k (Int64.of_int scale)) in
      if off >= -256 && off <= 255 then (Tac.T base, off)
      else begin
        let t = fresh ctx in
        emit ctx
          (Tac.Bin
             {
               dst = t;
               op = Opcode.Add;
               a = Tac.T base;
               b = Tac.C (Int64.of_int off);
             });
        (Tac.T t, 0)
      end
  | _ ->
      let iv = lower_expr ctx idx in
      let scaled =
        if scale = 1 then iv
        else begin
          let t = fresh ctx in
          let shift =
            match scale with 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> -1
          in
          if shift > 0 then
            emit ctx
              (Tac.Bin
                 { dst = t; op = Opcode.Sll; a = iv; b = Tac.C (Int64.of_int shift) })
          else
            emit ctx
              (Tac.Bin
                 { dst = t; op = Opcode.Mul; a = iv; b = Tac.C (Int64.of_int scale) });
          Tac.T t
        end
      in
      let t = fresh ctx in
      emit ctx (Tac.Bin { dst = t; op = Opcode.Add; a = Tac.T base; b = scaled });
      (Tac.T t, 0)

and lower_expr ctx (e : Ast.expr) : Tac.operand =
  match e with
  | Ast.Int v -> Tac.C v
  | Ast.Float f -> Tac.C (Int64.bits_of_float f)
  | Ast.Var v -> Tac.T (fst (var ctx v))
  | Ast.Index (name, idx) ->
      let addr, off = lower_address ctx name idx in
      let elem =
        match snd (var ctx name) with
        | Ast.Tptr e -> e
        | Ast.Tint | Ast.Tfloat -> invalid_arg "Lower: index of non-pointer"
      in
      let t = fresh ctx in
      emit ctx (Tac.Load { dst = t; width = Ast.elem_width elem; addr; off });
      Tac.T t
  | Ast.Un (op, a) -> (
      match op with
      | Ast.Neg ->
          let av = lower_expr ctx a in
          let t = fresh ctx in
          (match expr_ty ctx a with
          | Ast.Tfloat -> emit ctx (Tac.Un { dst = t; op = Opcode.Fneg; a = av })
          | _ -> emit ctx (Tac.Un { dst = t; op = Opcode.Neg; a = av }));
          Tac.T t
      | Ast.BNot ->
          let av = lower_expr ctx a in
          let t = fresh ctx in
          emit ctx (Tac.Un { dst = t; op = Opcode.Not; a = av });
          Tac.T t
      | Ast.LNot ->
          let av = lower_expr ctx a in
          let t = fresh ctx in
          emit ctx
            (Tac.Cmp { dst = t; cond = Opcode.Eq; fp = false; a = av; b = Tac.C 0L });
          Tac.T t
      | Ast.Itof ->
          let av = lower_expr ctx a in
          let t = fresh ctx in
          emit ctx (Tac.Un { dst = t; op = Opcode.Fitod; a = av });
          Tac.T t
      | Ast.Ftoi ->
          let av = lower_expr ctx a in
          let t = fresh ctx in
          emit ctx (Tac.Un { dst = t; op = Opcode.Fdtoi; a = av });
          Tac.T t)
  | Ast.Bin ((Ast.LAnd | Ast.LOr), _, _) | Ast.Cond _ ->
      (* value-producing short-circuit / ternary: materialize through a
         diamond and a join variable *)
      lower_value_via_branches ctx e
  | Ast.Bin (op, a, b) -> (
      let fp = expr_ty ctx a = Ast.Tfloat || expr_ty ctx b = Ast.Tfloat in
      (* pointer arithmetic scaling *)
      let scale_int_operand tb =
        match (expr_ty ctx a, expr_ty ctx b, op) with
        | Ast.Tptr e, Ast.Tint, (Ast.Add | Ast.Sub) -> (`Scale_b (Ast.elem_size e), tb)
        | Ast.Tint, Ast.Tptr e, Ast.Add -> (`Scale_a (Ast.elem_size e), tb)
        | _ -> (`No, tb)
      in
      let scaling, _ = scale_int_operand () in
      let av = lower_expr ctx a in
      let bv = lower_expr ctx b in
      let scaled v size =
        match v with
        | Tac.C c -> Tac.C (Int64.mul c (Int64.of_int size))
        | Tac.T _ ->
            let t = fresh ctx in
            let shift = match size with 1 -> 0 | 2 -> 1 | 4 -> 2 | 8 -> 3 | _ -> -1 in
            if shift > 0 then
              emit ctx
                (Tac.Bin { dst = t; op = Opcode.Sll; a = v; b = Tac.C (Int64.of_int shift) })
            else if shift = 0 then ()
            else
              emit ctx
                (Tac.Bin { dst = t; op = Opcode.Mul; a = v; b = Tac.C (Int64.of_int size) });
            if shift = 0 then v else Tac.T t
      in
      let av, bv =
        match scaling with
        | `No -> (av, bv)
        | `Scale_b s -> (av, scaled bv s)
        | `Scale_a s -> (scaled av s, bv)
      in
      let t = fresh ctx in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
          let is_fp = fp in
          if is_fp then begin
            let fop =
              match op with
              | Ast.Add -> Opcode.Fadd
              | Ast.Sub -> Opcode.Fsub
              | Ast.Mul -> Opcode.Fmul
              | _ -> Opcode.Fdiv
            in
            emit ctx (Tac.Fbin { dst = t; op = fop; a = av; b = bv })
          end
          else begin
            let iop =
              match op with
              | Ast.Add -> Opcode.Add
              | Ast.Sub -> Opcode.Sub
              | Ast.Mul -> Opcode.Mul
              | _ -> Opcode.Div
            in
            emit ctx (Tac.Bin { dst = t; op = iop; a = av; b = bv })
          end;
          Tac.T t
      | Ast.Rem ->
          emit ctx (Tac.Bin { dst = t; op = Opcode.Rem; a = av; b = bv });
          Tac.T t
      | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
          let iop =
            match op with
            | Ast.BAnd -> Opcode.And
            | Ast.BOr -> Opcode.Or
            | Ast.BXor -> Opcode.Xor
            | Ast.Shl -> Opcode.Sll
            | _ -> Opcode.Sra
          in
          emit ctx (Tac.Bin { dst = t; op = iop; a = av; b = bv });
          Tac.T t
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
          let cond =
            match op with
            | Ast.Lt -> Opcode.Lt
            | Ast.Le -> Opcode.Le
            | Ast.Gt -> Opcode.Gt
            | Ast.Ge -> Opcode.Ge
            | Ast.Eq -> Opcode.Eq
            | _ -> Opcode.Ne
          in
          emit ctx (Tac.Cmp { dst = t; cond; fp; a = av; b = bv });
          Tac.T t
      | Ast.LAnd | Ast.LOr -> assert false)

and lower_value_via_branches ctx e =
  let result = fresh ctx in
  let t_lab = fresh_label ctx "sc_t" in
  let f_lab = fresh_label ctx "sc_f" in
  let join = fresh_label ctx "sc_j" in
  (match e with
  | Ast.Cond (c, a, b) ->
      lower_branch ctx c ~if_true:t_lab ~if_false:f_lab;
      start_block ctx t_lab;
      let av = lower_expr ctx a in
      emit ctx (Tac.Un { dst = result; op = Opcode.Mov; a = av });
      finish_block ctx (Tac.Jmp join);
      start_block ctx f_lab;
      let bv = lower_expr ctx b in
      emit ctx (Tac.Un { dst = result; op = Opcode.Mov; a = bv });
      finish_block ctx (Tac.Jmp join)
  | _ ->
      lower_branch ctx e ~if_true:t_lab ~if_false:f_lab;
      start_block ctx t_lab;
      emit ctx (Tac.Un { dst = result; op = Opcode.Mov; a = Tac.C 1L });
      finish_block ctx (Tac.Jmp join);
      start_block ctx f_lab;
      emit ctx (Tac.Un { dst = result; op = Opcode.Mov; a = Tac.C 0L });
      finish_block ctx (Tac.Jmp join));
  start_block ctx join;
  Tac.T result

(* Lower a condition directly to control flow, short-circuiting && and ||
   (Figure 6's loop condition produces exactly the chained tests the
   paper describes). *)
and lower_branch ctx (e : Ast.expr) ~if_true ~if_false =
  match e with
  | Ast.Bin (Ast.LAnd, a, b) ->
      let mid = fresh_label ctx "and" in
      lower_branch ctx a ~if_true:mid ~if_false;
      start_block ctx mid;
      lower_branch ctx b ~if_true ~if_false
  | Ast.Bin (Ast.LOr, a, b) ->
      let mid = fresh_label ctx "or" in
      lower_branch ctx a ~if_true ~if_false:mid;
      start_block ctx mid;
      lower_branch ctx b ~if_true ~if_false
  | Ast.Un (Ast.LNot, a) -> lower_branch ctx a ~if_true:if_false ~if_false:if_true
  | _ -> (
      let is_comparison =
        match e with
        | Ast.Bin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _)
          ->
            true
        | _ -> false
      in
      let v = lower_expr ctx e in
      match v with
      | Tac.T c when is_comparison ->
          finish_block ctx (Tac.Cbr { c; if_true; if_false })
      | Tac.T c ->
          (* branch conditions must be canonical predicates: the machine
             tests the low-order bit, the language tests non-zero *)
          let t = fresh ctx in
          emit ctx
            (Tac.Cmp { dst = t; cond = Opcode.Ne; fp = false; a = Tac.T c; b = Tac.C 0L });
          finish_block ctx (Tac.Cbr { c = t; if_true; if_false })
      | Tac.C k ->
          finish_block ctx (Tac.Jmp (if k <> 0L then if_true else if_false)))

let rec lower_stmts ctx stmts =
  List.iter (lower_stmt ctx) stmts

and lower_stmt ctx (s : Ast.stmt) =
  if ctx.terminated then ()
  else
    match s with
    | Ast.Decl (ty, name, init) ->
        let t = fresh ctx in
        (match init with
        | Some e ->
            let v = lower_expr ctx e in
            emit ctx (Tac.Un { dst = t; op = Opcode.Mov; a = v })
        | None -> emit ctx (Tac.Un { dst = t; op = Opcode.Mov; a = Tac.C 0L }));
        ctx.env <- (name, (t, ty)) :: ctx.env
    | Ast.Assign (name, e) ->
        let t, _ = var ctx name in
        let v = lower_expr ctx e in
        emit ctx (Tac.Un { dst = t; op = Opcode.Mov; a = v })
    | Ast.Store (name, idx, v) ->
        let vv = lower_expr ctx v in
        let addr, off = lower_address ctx name idx in
        let elem =
          match snd (var ctx name) with
          | Ast.Tptr e -> e
          | Ast.Tint | Ast.Tfloat -> invalid_arg "Lower: store to non-pointer"
        in
        emit ctx (Tac.Store { width = Ast.elem_width elem; addr; off; v = vv })
    | Ast.If (c, then_b, else_b) ->
        let t_lab = fresh_label ctx "then" in
        let f_lab = fresh_label ctx "else" in
        let join = fresh_label ctx "endif" in
        lower_branch ctx c ~if_true:t_lab
          ~if_false:(if else_b = [] then join else f_lab);
        let saved_env = ctx.env in
        start_block ctx t_lab;
        lower_stmts ctx then_b;
        finish_block ctx (Tac.Jmp join);
        ctx.env <- saved_env;
        if else_b <> [] then begin
          start_block ctx f_lab;
          lower_stmts ctx else_b;
          finish_block ctx (Tac.Jmp join);
          ctx.env <- saved_env
        end;
        start_block ctx join
    | Ast.While (c, body) ->
        let head = fresh_label ctx "while" in
        let body_lab = fresh_label ctx "body" in
        let exit_lab = fresh_label ctx "endwhile" in
        finish_block ctx (Tac.Jmp head);
        start_block ctx head;
        lower_branch ctx c ~if_true:body_lab ~if_false:exit_lab;
        let saved_env = ctx.env in
        start_block ctx body_lab;
        ctx.loops <- (exit_lab, head) :: ctx.loops;
        lower_stmts ctx body;
        ctx.loops <- List.tl ctx.loops;
        finish_block ctx (Tac.Jmp head);
        ctx.env <- saved_env;
        start_block ctx exit_lab
    | Ast.For (init, cond, step, body) ->
        let saved_env = ctx.env in
        Option.iter (lower_stmt ctx) init;
        let head = fresh_label ctx "for" in
        let body_lab = fresh_label ctx "body" in
        let step_lab = fresh_label ctx "step" in
        let exit_lab = fresh_label ctx "endfor" in
        finish_block ctx (Tac.Jmp head);
        start_block ctx head;
        (match cond with
        | Some c -> lower_branch ctx c ~if_true:body_lab ~if_false:exit_lab
        | None -> finish_block ctx (Tac.Jmp body_lab));
        start_block ctx body_lab;
        ctx.loops <- (exit_lab, step_lab) :: ctx.loops;
        lower_stmts ctx body;
        ctx.loops <- List.tl ctx.loops;
        finish_block ctx (Tac.Jmp step_lab);
        start_block ctx step_lab;
        Option.iter (lower_stmt ctx) step;
        finish_block ctx (Tac.Jmp head);
        ctx.env <- saved_env;
        start_block ctx exit_lab
    | Ast.Break -> (
        match ctx.loops with
        | (brk, _) :: _ -> finish_block ctx (Tac.Jmp brk)
        | [] -> invalid_arg "Lower: break outside loop")
    | Ast.Continue -> (
        match ctx.loops with
        | (_, cont) :: _ -> finish_block ctx (Tac.Jmp cont)
        | [] -> invalid_arg "Lower: continue outside loop")
    | Ast.Return e ->
        let v = Option.map (lower_expr ctx) e in
        finish_block ctx (Tac.Ret v)

let lower (k : Ast.kernel) =
  match Typecheck.check_kernel k with
  | Error e -> Error (Printf.sprintf "%s: %s" k.Ast.kname e)
  | Ok () -> (
      let gen = Edge_ir.Temp.Gen.create () in
      let params = List.map (fun _ -> Edge_ir.Temp.Gen.fresh gen) k.Ast.params in
      let cfg =
        Cfg.create ~fname:k.Ast.kname ~params ~entry:"entry" ~gen
      in
      let env =
        List.map2
          (fun p t -> (p.Ast.pname, (t, p.Ast.pty)))
          k.Ast.params params
      in
      let ctx =
        {
          cfg;
          cur = "entry";
          buf = [];
          env;
          loops = [];
          terminated = false;
          label_counter = 0;
        }
      in
      try
        lower_stmts ctx k.Ast.body;
        finish_block ctx (Tac.Ret None);
        Cfg.prune_unreachable cfg;
        Ok cfg
      with Invalid_argument m -> Error m)

let compile src =
  match Parser.parse src with
  | Error e -> Error e
  | Ok k -> lower k
