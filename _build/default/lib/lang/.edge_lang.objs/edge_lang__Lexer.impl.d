lib/lang/lexer.ml: Format Int64 List Printf String
