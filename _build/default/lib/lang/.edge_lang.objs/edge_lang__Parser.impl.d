lib/lang/parser.ml: Ast Format Lexer List String
