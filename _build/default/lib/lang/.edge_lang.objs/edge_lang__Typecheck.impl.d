lib/lang/typecheck.ml: Ast Format List Printf Result
