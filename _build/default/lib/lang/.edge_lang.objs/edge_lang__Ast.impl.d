lib/lang/ast.ml: Edge_isa Format
