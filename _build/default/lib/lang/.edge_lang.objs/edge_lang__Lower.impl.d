lib/lang/lower.ml: Ast Edge_ir Edge_isa Int64 List Option Parser Printf Typecheck
