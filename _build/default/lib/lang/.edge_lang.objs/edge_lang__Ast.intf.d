lib/lang/ast.mli: Edge_isa Format
