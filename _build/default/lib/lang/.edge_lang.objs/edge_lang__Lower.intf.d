lib/lang/lower.mli: Ast Edge_ir
