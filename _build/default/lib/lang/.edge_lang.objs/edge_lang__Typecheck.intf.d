lib/lang/typecheck.mli: Ast
