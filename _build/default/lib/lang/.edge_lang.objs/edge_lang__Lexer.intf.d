lib/lang/lexer.mli: Format
