lib/lang/interp.mli: Ast Edge_isa
