lib/lang/interp.ml: Ast Edge_isa Hashtbl Int64 List Option Parser Printf Typecheck
