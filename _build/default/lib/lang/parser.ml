exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.toks with t :: _ -> t | [] -> Lexer.EOF

let advance st =
  match st.toks with _ :: tl -> st.toks <- tl | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect_punct st p =
  match next st with
  | Lexer.PUNCT q when String.equal p q -> ()
  | t -> fail "expected '%s', found %a" p Lexer.pp_token t

let expect_kw st k =
  match next st with
  | Lexer.KW q when String.equal k q -> ()
  | t -> fail "expected '%s', found %a" k Lexer.pp_token t

let expect_ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> fail "expected identifier, found %a" Lexer.pp_token t

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q ->
      advance st;
      true
  | _ -> false

let parse_type st =
  let base =
    match next st with
    | Lexer.KW "int" -> `Int
    | Lexer.KW "float" -> `Float
    | Lexer.KW "byte" -> `Byte
    | Lexer.KW "int4" -> `Int4
    | t -> fail "expected type, found %a" Lexer.pp_token t
  in
  let ptr = accept_punct st "*" in
  match (base, ptr) with
  | `Int, false -> Ast.Tint
  | `Float, false -> Ast.Tfloat
  | `Int, true -> Ast.Tptr Ast.I64
  | `Float, true -> Ast.Tptr Ast.F64
  | `Byte, true -> Ast.Tptr Ast.I8
  | `Int4, true -> Ast.Tptr Ast.I32
  | `Byte, false -> fail "byte is only available as byte*"
  | `Int4, false -> fail "int4 is only available as int4*"

(* precedence-climbing expression parser *)
let binop_of_punct = function
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Rem, 10)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Ne, 6)
  | "&" -> Some (Ast.BAnd, 5)
  | "^" -> Some (Ast.BXor, 4)
  | "|" -> Some (Ast.BOr, 3)
  | "&&" -> Some (Ast.LAnd, 2)
  | "||" -> Some (Ast.LOr, 1)
  | _ -> None

let rec parse_primary st =
  match next st with
  | Lexer.INT v -> Ast.Int v
  | Lexer.FLOAT f -> Ast.Float f
  | Lexer.IDENT "itof" when accept_punct st "(" ->
      let e = parse_expr_prec st 0 in
      expect_punct st ")";
      Ast.Un (Ast.Itof, e)
  | Lexer.IDENT "ftoi" when accept_punct st "(" ->
      let e = parse_expr_prec st 0 in
      expect_punct st ")";
      Ast.Un (Ast.Ftoi, e)
  | Lexer.IDENT s ->
      if accept_punct st "[" then begin
        let e = parse_expr_prec st 0 in
        expect_punct st "]";
        Ast.Index (s, e)
      end
      else Ast.Var s
  | Lexer.PUNCT "(" ->
      let e = parse_expr_prec st 0 in
      expect_punct st ")";
      e
  | Lexer.PUNCT "-" -> Ast.Un (Ast.Neg, parse_primary st)
  | Lexer.PUNCT "!" -> Ast.Un (Ast.LNot, parse_primary st)
  | Lexer.PUNCT "~" -> Ast.Un (Ast.BNot, parse_primary st)
  | t -> fail "expected expression, found %a" Lexer.pp_token t

and parse_expr_prec st min_prec =
  let lhs = ref (parse_primary st) in
  let continue_loop = ref true in
  while !continue_loop do
    match peek st with
    | Lexer.PUNCT "?" when min_prec = 0 ->
        advance st;
        let a = parse_expr_prec st 0 in
        expect_punct st ":";
        let b = parse_expr_prec st 0 in
        lhs := Ast.Cond (!lhs, a, b)
    | Lexer.PUNCT p -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            advance st;
            let rhs = parse_expr_prec st (prec + 1) in
            lhs := Ast.Bin (op, !lhs, rhs)
        | _ -> continue_loop := false)
    | _ -> continue_loop := false
  done;
  !lhs

let rec parse_block st =
  expect_punct st "{";
  let stmts = ref [] in
  while not (accept_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_simple st =
  (* assignment or store, without trailing ';' (used by for-headers) *)
  let id = expect_ident st in
  if accept_punct st "[" then begin
    let idx = parse_expr_prec st 0 in
    expect_punct st "]";
    expect_punct st "=";
    let v = parse_expr_prec st 0 in
    Ast.Store (id, idx, v)
  end
  else begin
    expect_punct st "=";
    let e = parse_expr_prec st 0 in
    Ast.Assign (id, e)
  end

and parse_stmt st =
  match peek st with
  | Lexer.KW ("int" | "float" | "byte" | "int4") ->
      let ty = parse_type st in
      let name = expect_ident st in
      let init =
        if accept_punct st "=" then Some (parse_expr_prec st 0) else None
      in
      expect_punct st ";";
      Ast.Decl (ty, name, init)
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr_prec st 0 in
      expect_punct st ")";
      let then_b = parse_block st in
      let else_b =
        match peek st with
        | Lexer.KW "else" -> (
            advance st;
            match peek st with
            | Lexer.KW "if" -> [ parse_stmt st ]
            | _ -> parse_block st)
        | _ -> []
      in
      Ast.If (c, then_b, else_b)
  | Lexer.KW "while" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr_prec st 0 in
      expect_punct st ")";
      Ast.While (c, parse_block st)
  | Lexer.KW "for" ->
      advance st;
      expect_punct st "(";
      let init =
        if accept_punct st ";" then None
        else begin
          let s = parse_simple st in
          expect_punct st ";";
          Some s
        end
      in
      let cond =
        if accept_punct st ";" then None
        else begin
          let e = parse_expr_prec st 0 in
          expect_punct st ";";
          Some e
        end
      in
      let step =
        if accept_punct st ")" then None
        else begin
          let s = parse_simple st in
          expect_punct st ")";
          Some s
        end
      in
      Ast.For (init, cond, step, parse_block st)
  | Lexer.KW "break" ->
      advance st;
      expect_punct st ";";
      Ast.Break
  | Lexer.KW "continue" ->
      advance st;
      expect_punct st ";";
      Ast.Continue
  | Lexer.KW "return" ->
      advance st;
      if accept_punct st ";" then Ast.Return None
      else begin
        let e = parse_expr_prec st 0 in
        expect_punct st ";";
        Ast.Return (Some e)
      end
  | _ ->
      let s = parse_simple st in
      expect_punct st ";";
      s

let parse_params st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else begin
    let params = ref [] in
    let rec loop () =
      let pty = parse_type st in
      let pname = expect_ident st in
      params := { Ast.pname; pty } :: !params;
      if accept_punct st "," then loop () else expect_punct st ")"
    in
    loop ();
    List.rev !params
  end

let parse src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      try
        expect_kw st "kernel";
        let kname = expect_ident st in
        let params = parse_params st in
        let body = parse_block st in
        (match peek st with
        | Lexer.EOF -> ()
        | t -> fail "trailing input: %a" Lexer.pp_token t);
        Ok { Ast.kname; params; body }
      with Parse_error e -> Error e)

let parse_expr src =
  match Lexer.tokenize src with
  | Error e -> Error e
  | Ok toks -> (
      let st = { toks } in
      try
        let e = parse_expr_prec st 0 in
        match peek st with
        | Lexer.EOF -> Ok e
        | t -> fail "trailing input: %a" Lexer.pp_token t
      with Parse_error e -> Error e)
