module Mem = Edge_isa.Mem
module Opcode = Edge_isa.Opcode

type outcome = { return_value : int64 option; steps : int }

exception Fault of string
exception Returned of int64 option
exception Break_exc
exception Continue_exc

type env = (string, int64 ref) Hashtbl.t

let mask63 v = Int64.to_int (Int64.logand v 63L)

let as_float = Int64.float_of_bits
let of_float = Int64.bits_of_float

(* shared definition of division semantics: truncation toward zero,
   division by zero faults (the machine sets the exception bit) *)
let checked_div a b =
  if b = 0L then raise (Fault "division by zero") else Int64.div a b

let checked_rem a b =
  if b = 0L then raise (Fault "remainder by zero") else Int64.rem a b

let rec eval_expr env tenv mem (e : Ast.expr) : int64 =
  match e with
  | Ast.Int v -> v
  | Ast.Float f -> of_float f
  | Ast.Var v -> (
      match Hashtbl.find_opt env v with
      | Some r -> !r
      | None -> raise (Fault ("unbound " ^ v)))
  | Ast.Index (name, idx) -> (
      let base =
        match Hashtbl.find_opt env name with
        | Some r -> !r
        | None -> raise (Fault ("unbound " ^ name))
      in
      let elem =
        match List.assoc_opt name tenv with
        | Some (Ast.Tptr e) -> e
        | _ -> raise (Fault ("not a pointer: " ^ name))
      in
      let i = eval_expr env tenv mem idx in
      let addr =
        Int64.add base (Int64.mul i (Int64.of_int (Ast.elem_size elem)))
      in
      let tok = Mem.load mem ~width:(Ast.elem_width elem) ~addr in
      if tok.Edge_isa.Token.exc then
        raise (Fault (Printf.sprintf "load fault at %Ld" addr))
      else tok.Edge_isa.Token.payload)
  | Ast.Un (op, a) -> (
      let av = eval_expr env tenv mem a in
      match op with
      | Ast.Neg -> (
          match type_of tenv a with
          | Ast.Tfloat -> of_float (-.as_float av)
          | _ -> Int64.neg av)
      | Ast.LNot -> if av = 0L then 1L else 0L
      | Ast.BNot -> Int64.lognot av
      | Ast.Itof -> of_float (Int64.to_float av)
      | Ast.Ftoi -> Int64.of_float (as_float av))
  | Ast.Bin (op, a, b) -> (
      match op with
      | Ast.LAnd ->
          if eval_expr env tenv mem a = 0L then 0L
          else if eval_expr env tenv mem b = 0L then 0L
          else 1L
      | Ast.LOr ->
          if eval_expr env tenv mem a <> 0L then 1L
          else if eval_expr env tenv mem b <> 0L then 1L
          else 0L
      | _ -> (
          let av = eval_expr env tenv mem a in
          let bv = eval_expr env tenv mem b in
          let ta = type_of tenv a and tb = type_of tenv b in
          let fp = ta = Ast.Tfloat || tb = Ast.Tfloat in
          let scale v ty other_ty =
            (* pointer arithmetic: scale the integer side *)
            match (ty, other_ty) with
            | Ast.Tint, Ast.Tptr e -> Int64.mul v (Int64.of_int (Ast.elem_size e))
            | _ -> v
          in
          let av' = scale av ta tb and bv' = scale bv tb ta in
          match op with
          | Ast.Add ->
              if fp then of_float (as_float av +. as_float bv)
              else Int64.add av' bv'
          | Ast.Sub ->
              if fp then of_float (as_float av -. as_float bv)
              else Int64.sub av' bv'
          | Ast.Mul ->
              if fp then of_float (as_float av *. as_float bv)
              else Int64.mul av bv
          | Ast.Div ->
              if fp then of_float (as_float av /. as_float bv)
              else checked_div av bv
          | Ast.Rem -> checked_rem av bv
          | Ast.BAnd -> Int64.logand av bv
          | Ast.BOr -> Int64.logor av bv
          | Ast.BXor -> Int64.logxor av bv
          | Ast.Shl -> Int64.shift_left av (mask63 bv)
          | Ast.Shr -> Int64.shift_right av (mask63 bv)
          | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
              let r =
                if fp then
                  let x = as_float av and y = as_float bv in
                  match op with
                  | Ast.Lt -> x < y
                  | Ast.Le -> x <= y
                  | Ast.Gt -> x > y
                  | Ast.Ge -> x >= y
                  | Ast.Eq -> x = y
                  | _ -> x <> y
                else
                  match op with
                  | Ast.Lt -> Int64.compare av bv < 0
                  | Ast.Le -> Int64.compare av bv <= 0
                  | Ast.Gt -> Int64.compare av bv > 0
                  | Ast.Ge -> Int64.compare av bv >= 0
                  | Ast.Eq -> av = bv
                  | _ -> av <> bv
              in
              if r then 1L else 0L
          | Ast.LAnd | Ast.LOr -> assert false))
  | Ast.Cond (c, a, b) ->
      if eval_expr env tenv mem c <> 0L then eval_expr env tenv mem a
      else eval_expr env tenv mem b

and type_of tenv e =
  match Typecheck.type_of_expr tenv e with
  | Ok t -> t
  | Error m -> raise (Fault m)

let run ?(fuel = 50_000_000) (k : Ast.kernel) ~args ~mem =
  match Typecheck.check_kernel k with
  | Error e -> Error e
  | Ok () -> (
      if List.length args <> List.length k.Ast.params then
        Error "argument count mismatch"
      else begin
        let env : env = Hashtbl.create 16 in
        let steps = ref 0 in
        List.iter2
          (fun p v -> Hashtbl.replace env p.Ast.pname (ref v))
          k.Ast.params args;
        let tick () =
          incr steps;
          if !steps > fuel then raise (Fault "fuel exhausted")
        in
        let rec exec tenv stmts =
          List.fold_left
            (fun tenv s ->
              tick ();
              exec_stmt tenv s)
            tenv stmts
        and exec_stmt tenv (s : Ast.stmt) =
          match s with
          | Ast.Decl (ty, name, init) ->
              let v =
                match init with
                | Some e -> eval_expr env tenv mem e
                | None -> 0L
              in
              Hashtbl.replace env name (ref v);
              (name, ty) :: tenv
          | Ast.Assign (name, e) ->
              let v = eval_expr env tenv mem e in
              (match Hashtbl.find_opt env name with
              | Some r -> r := v
              | None -> raise (Fault ("unbound " ^ name)));
              tenv
          | Ast.Store (name, idx, value) ->
              let base =
                match Hashtbl.find_opt env name with
                | Some r -> !r
                | None -> raise (Fault ("unbound " ^ name))
              in
              let elem =
                match List.assoc_opt name tenv with
                | Some (Ast.Tptr e) -> e
                | _ -> raise (Fault ("not a pointer: " ^ name))
              in
              let i = eval_expr env tenv mem idx in
              let v = eval_expr env tenv mem value in
              let addr =
                Int64.add base (Int64.mul i (Int64.of_int (Ast.elem_size elem)))
              in
              (match Mem.store mem ~width:(Ast.elem_width elem) ~addr v with
              | Ok () -> ()
              | Error () ->
                  raise (Fault (Printf.sprintf "store fault at %Ld" addr)));
              tenv
          | Ast.If (c, then_b, else_b) ->
              if eval_expr env tenv mem c <> 0L then ignore (exec tenv then_b)
              else ignore (exec tenv else_b);
              tenv
          | Ast.While (c, body) ->
              (try
                 while eval_expr env tenv mem c <> 0L do
                   tick ();
                   try ignore (exec tenv body) with Continue_exc -> ()
                 done
               with Break_exc -> ());
              tenv
          | Ast.For (init, cond, step, body) ->
              let tenv' =
                match init with Some s -> exec_stmt tenv s | None -> tenv
              in
              let check () =
                match cond with
                | Some c -> eval_expr env tenv' mem c <> 0L
                | None -> true
              in
              (try
                 while check () do
                   tick ();
                   (try ignore (exec tenv' body) with Continue_exc -> ());
                   match step with
                   | Some s -> ignore (exec_stmt tenv' s)
                   | None -> ()
                 done
               with Break_exc -> ());
              tenv
          | Ast.Break -> raise Break_exc
          | Ast.Continue -> raise Continue_exc
          | Ast.Return e ->
              let v = Option.map (eval_expr env tenv mem) e in
              raise (Returned v)
        in
        let tenv0 = List.map (fun p -> (p.Ast.pname, p.Ast.pty)) k.Ast.params in
        try
          ignore (exec tenv0 k.Ast.body);
          Ok { return_value = None; steps = !steps }
        with
        | Returned v -> Ok { return_value = v; steps = !steps }
        | Fault m -> Error ("fault: " ^ m)
      end)

let run_src ?fuel src ~args ~mem =
  match Parser.parse src with
  | Error e -> Error e
  | Ok k -> run ?fuel k ~args ~mem
