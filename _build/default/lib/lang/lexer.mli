(** Hand-written lexer for the kernel language. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string  (** kernel int float byte int4 if else while for break
                      continue return *)
  | PUNCT of string  (** operators and delimiters *)
  | EOF


val tokenize : string -> (token list, string) result
(** Comments are [// ...] and [/* ... */]. Errors report line numbers. *)

val pp_token : Format.formatter -> token -> unit
