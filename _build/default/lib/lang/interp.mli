(** Reference interpreter for the kernel language.

    Executes the AST directly against an {!Edge_isa.Mem} image. This is
    the semantic oracle for the whole compilation pipeline: every compiler
    configuration, run on either simulator, must produce the same return
    value and final memory. *)

type outcome = {
  return_value : int64 option;
  steps : int;  (** statements executed; used as a fuel/progress measure *)
}

exception Fault of string
(** Raised on out-of-range memory access, division by zero, or fuel
    exhaustion — the cases where the machine raises a block-boundary
    exception. *)

val run :
  ?fuel:int ->
  Ast.kernel ->
  args:int64 list ->
  mem:Edge_isa.Mem.t ->
  (outcome, string) result
(** [args] bind positionally to parameters (pointer arguments are byte
    addresses into [mem]). The memory is mutated in place. *)

val run_src :
  ?fuel:int ->
  string ->
  args:int64 list ->
  mem:Edge_isa.Mem.t ->
  (outcome, string) result
