(** Lowering: kernel AST to a {!Edge_ir.Cfg} of three-address code.

    Variables become temporaries; pointer indexing scales by element size;
    short-circuit [&&]/[||] lower to control flow (the genalg loop of the
    paper's Figure 6 depends on this shape); [for]/[while]/[break]/
    [continue] lower to explicit branches. The returned value, if any, is
    the [Ret] operand. *)

val lower : Ast.kernel -> (Edge_ir.Cfg.t, string) result
(** Runs {!Typecheck.check_kernel} first. Parameters appear in
    [Cfg.params] in declaration order. *)

val compile : string -> (Edge_ir.Cfg.t, string) result
(** Parse, check and lower kernel source text. *)
