type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF


let keywords =
  [ "kernel"; "int"; "float"; "byte"; "int4"; "if"; "else"; "while"; "for";
    "break"; "continue"; "return" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let two_char_puncts =
  [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||" ]

let one_char_puncts = "+-*/%&|^<>=!~()[]{},;?:"

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let toks = ref [] in
  let error = ref None in
  let fail msg = error := Some (Printf.sprintf "line %d: %s" !line msg) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  while !pos < n && !error = None do
    let c = src.[!pos] in
    if c = '\n' then begin incr line; incr pos end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do incr pos done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while !pos + 1 < n && not !closed do
        if src.[!pos] = '\n' then incr line;
        if src.[!pos] = '*' && src.[!pos + 1] = '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated comment"
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do incr pos done;
      let s = String.sub src start (!pos - start) in
      toks := (if List.mem s keywords then KW s else IDENT s) :: !toks
    end
    else if is_digit c then begin
      let start = !pos in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        pos := !pos + 2;
        while
          !pos < n
          && (is_digit src.[!pos]
             || (src.[!pos] >= 'a' && src.[!pos] <= 'f')
             || (src.[!pos] >= 'A' && src.[!pos] <= 'F'))
        do
          incr pos
        done;
        let s = String.sub src start (!pos - start) in
        match Int64.of_string_opt s with
        | Some v -> toks := INT v :: !toks
        | None -> fail (Printf.sprintf "bad hex literal %s" s)
      end
      else begin
        while !pos < n && is_digit src.[!pos] do incr pos done;
        let is_float =
          !pos < n && src.[!pos] = '.' && (match peek 1 with
            | Some d -> is_digit d
            | None -> false)
        in
        if is_float || (!pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E'))
        then begin
          if !pos < n && src.[!pos] = '.' then begin
            incr pos;
            while !pos < n && is_digit src.[!pos] do incr pos done
          end;
          if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
            incr pos;
            if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
            while !pos < n && is_digit src.[!pos] do incr pos done
          end;
          let s = String.sub src start (!pos - start) in
          match float_of_string_opt s with
          | Some v -> toks := FLOAT v :: !toks
          | None -> fail (Printf.sprintf "bad float literal %s" s)
        end
        else
          let s = String.sub src start (!pos - start) in
          match Int64.of_string_opt s with
          | Some v -> toks := INT v :: !toks
          | None -> fail (Printf.sprintf "bad int literal %s" s)
      end
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      match two with
      | Some t2 when List.mem t2 two_char_puncts ->
          toks := PUNCT t2 :: !toks;
          pos := !pos + 2
      | _ ->
          if String.contains one_char_puncts c then begin
            toks := PUNCT (String.make 1 c) :: !toks;
            incr pos
          end
          else fail (Printf.sprintf "unexpected character %c" c)
    end
  done;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev (EOF :: !toks))

let pp_token ppf = function
  | INT v -> Format.fprintf ppf "%Ld" v
  | FLOAT f -> Format.fprintf ppf "%g" f
  | IDENT s -> Format.fprintf ppf "%s" s
  | KW s -> Format.fprintf ppf "%s" s
  | PUNCT s -> Format.fprintf ppf "'%s'" s
  | EOF -> Format.fprintf ppf "<eof>"
