(** Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm) and
    dominance frontiers, over an abstract graph so the same code serves
    the CFG, the reversed CFG (post-dominators) and the predicate flow
    graph. *)

type graph = {
  g_entry : Label.t;
  g_nodes : Label.t list;  (** reverse postorder from [g_entry] *)
  g_preds : Label.t -> Label.t list;
  g_succs : Label.t -> Label.t list;
}

type t

val compute : graph -> t
val of_cfg : Cfg.t -> t

val of_cfg_post : Cfg.t -> t
(** Post-dominators. The reversed graph is rooted at a virtual exit node
    [exit_label] connected to every [Ret] block. *)

val exit_label : Label.t

val idom : t -> Label.t -> Label.t option
(** Immediate dominator; [None] for the root. *)

val dominates : t -> Label.t -> Label.t -> bool
(** [dominates t a b]: does [a] dominate [b]? Reflexive. *)

val strictly_dominates : t -> Label.t -> Label.t -> bool
val frontier : t -> Label.t -> Label.t list
val children : t -> Label.t -> Label.t list
(** Dominator-tree children. *)

val dom_tree_preorder : t -> Label.t list
