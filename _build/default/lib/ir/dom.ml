type graph = {
  g_entry : Label.t;
  g_nodes : Label.t list;
  g_preds : Label.t -> Label.t list;
  g_succs : Label.t -> Label.t list;
}

type t = {
  order : (Label.t, int) Hashtbl.t;  (* reverse postorder numbering *)
  nodes : Label.t array;  (* indexed by rpo number *)
  idoms : int array;  (* idoms.(n) = rpo number of idom; root maps to
                         itself *)
  frontiers : Label.t list array;
  kids : Label.t list array;
}

let exit_label = "@exit"

let compute g =
  let nodes = Array.of_list g.g_nodes in
  let n = Array.length nodes in
  let order = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace order l i) nodes;
  let idoms = Array.make n (-1) in
  if n > 0 then idoms.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if a > b then intersect idoms.(a) b
    else intersect a idoms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let preds =
        g.g_preds nodes.(i)
        |> List.filter_map (fun p -> Hashtbl.find_opt order p)
        |> List.filter (fun p -> idoms.(p) >= 0 || p = 0)
      in
      match List.filter (fun p -> idoms.(p) >= 0) preds with
      | [] -> ()
      | first :: rest ->
          let new_idom = List.fold_left intersect first rest in
          if idoms.(i) <> new_idom then begin
            idoms.(i) <- new_idom;
            changed := true
          end
    done
  done;
  let frontiers = Array.make n [] in
  for i = 0 to n - 1 do
    let preds =
      g.g_preds nodes.(i)
      |> List.filter_map (fun p -> Hashtbl.find_opt order p)
    in
    if List.length preds >= 2 then
      List.iter
        (fun p ->
          if idoms.(p) >= 0 || p = 0 then begin
            let runner = ref p in
            while !runner <> idoms.(i) && idoms.(!runner) >= 0 do
              if not (List.mem nodes.(i) frontiers.(!runner)) then
                frontiers.(!runner) <- nodes.(i) :: frontiers.(!runner);
              if !runner = idoms.(!runner) then runner := idoms.(i)
              else runner := idoms.(!runner)
            done
          end)
        preds
  done;
  let kids = Array.make n [] in
  for i = n - 1 downto 1 do
    if idoms.(i) >= 0 && idoms.(i) <> i then
      kids.(idoms.(i)) <- nodes.(i) :: kids.(idoms.(i))
  done;
  { order; nodes; idoms; frontiers; kids }

let of_cfg cfg =
  compute
    {
      g_entry = cfg.Cfg.entry;
      g_nodes = Cfg.rpo cfg;
      g_preds = Cfg.preds cfg;
      g_succs = Cfg.succs cfg;
    }

let of_cfg_post cfg =
  let rets =
    List.filter
      (fun l ->
        match (Cfg.block cfg l).Cfg.term with
        | Tac.Ret _ -> true
        | Tac.Jmp _ | Tac.Cbr _ -> false)
      (Cfg.rpo cfg)
  in
  let preds l = if Label.equal l exit_label then rets else Cfg.succs cfg l in
  let succs l =
    if Label.equal l exit_label then []
    else
      let s = Cfg.preds cfg l in
      if List.mem l rets then exit_label :: s else s
  in
  ignore succs;
  (* reverse postorder on the reversed graph *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (preds l);
      post := l :: !post
    end
  in
  dfs exit_label;
  compute
    { g_entry = exit_label; g_nodes = !post; g_preds = preds; g_succs = succs }

let num t l = Hashtbl.find_opt t.order l

let idom t l =
  match num t l with
  | None -> None
  | Some 0 -> None
  | Some i ->
      if t.idoms.(i) < 0 then None
      else Some t.nodes.(t.idoms.(i))

let dominates t a b =
  match (num t a, num t b) with
  | Some ia, Some ib ->
      let rec walk i = if i = ia then true else if i = 0 || t.idoms.(i) < 0 then false else walk t.idoms.(i) in
      walk ib
  | _ -> false

let strictly_dominates t a b = (not (Label.equal a b)) && dominates t a b

let frontier t l =
  match num t l with None -> [] | Some i -> t.frontiers.(i)

let children t l = match num t l with None -> [] | Some i -> t.kids.(i)

let dom_tree_preorder t =
  if Array.length t.nodes = 0 then []
  else
    let rec go l = l :: List.concat_map go (children t l) in
    go t.nodes.(0)
