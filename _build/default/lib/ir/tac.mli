(** Three-address code.

    This is the register-transfer form the compiler manipulates (the
    paper's Figures 4–6 are written in it). Instructions are untyped at
    the IR level; floating-point values travel as their IEEE-754 bit
    patterns and the opcode determines interpretation. *)

type operand =
  | T of Temp.t
  | C of int64  (** constant; float constants are stored as their bits *)

type instr =
  | Bin of { dst : Temp.t; op : Edge_isa.Opcode.ibinop; a : operand; b : operand }
  | Fbin of {
      dst : Temp.t;
      op : Edge_isa.Opcode.fbinop;
      a : operand;
      b : operand;
    }
  | Cmp of {
      dst : Temp.t;
      cond : Edge_isa.Opcode.cond;
      fp : bool;
      a : operand;
      b : operand;
    }  (** test instruction; [dst] is a predicate value *)
  | Un of { dst : Temp.t; op : Edge_isa.Opcode.unop; a : operand }
      (** [Un {op = Mov; a = C _}] is constant generation *)
  | Load of {
      dst : Temp.t;
      width : Edge_isa.Opcode.width;
      addr : operand;
      off : int;
    }
  | Store of {
      width : Edge_isa.Opcode.width;
      addr : operand;
      off : int;
      v : operand;
    }
  | Phi of { dst : Temp.t; args : (Label.t * operand) list }
      (** SSA only; eliminated before hyperblock formation *)

type term =
  | Jmp of Label.t
  | Cbr of { c : Temp.t; if_true : Label.t; if_false : Label.t }
  | Ret of operand option
      (** program end; the returned value (if any) is written to the
          result register by code generation *)

val def : instr -> Temp.t option
val uses : instr -> Temp.t list
val term_uses : term -> Temp.t list
val term_succs : term -> Label.t list

val map_operands : (operand -> operand) -> instr -> instr
val map_term_temp : (Temp.t -> Temp.t) -> term -> term
val with_dst : Temp.t -> instr -> instr

val has_side_effect : instr -> bool
(** Stores (the only side-effecting instruction in the IR). *)

val can_raise : instr -> bool
(** Whether the instruction can set the exception bit: memory accesses and
    integer division/remainder. Used by the path-sensitive predicate
    removal candidate test (Section 5.2, condition 3). *)

val is_cheap : instr -> bool
(** Single-cycle and safe to speculate freely. *)

val instr_equal : instr -> instr -> bool

val lexically_equal : instr -> instr -> bool
(** Equality modulo nothing — same operation, operands and destination;
    the merge candidate test of Section 5.3. *)

val pp_operand : Format.formatter -> operand -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_term : Format.formatter -> term -> unit
