let construct cfg =
  Cfg.prune_unreachable cfg;
  let dom = Dom.of_cfg cfg in
  let defs = Cfg.defs cfg in
  (* Parameters count as defined in the entry block. *)
  let defs =
    List.fold_left
      (fun m p ->
        let s = Option.value ~default:Label.Set.empty (Temp.Map.find_opt p m) in
        Temp.Map.add p (Label.Set.add cfg.Cfg.entry s) m)
      defs cfg.Cfg.params
  in
  let liveness = Liveness.compute cfg in
  (* Phase 1: phi insertion at iterated dominance frontiers, pruned by
     liveness. *)
  let phis : (Label.t, (Temp.t, Temp.t list ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let phi_tbl l =
    match Hashtbl.find_opt phis l with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace phis l t;
        t
  in
  Temp.Map.iter
    (fun v def_blocks ->
      if Label.Set.cardinal def_blocks >= 1 then begin
        let work = Queue.create () in
        Label.Set.iter (fun l -> Queue.add l work) def_blocks;
        let has_phi = Hashtbl.create 4 in
        while not (Queue.is_empty work) do
          let x = Queue.pop work in
          List.iter
            (fun y ->
              if
                (not (Hashtbl.mem has_phi y))
                && Temp.Set.mem v (Liveness.live_in liveness y)
              then begin
                Hashtbl.replace has_phi y ();
                Hashtbl.replace (phi_tbl y) v (ref []);
                if not (Label.Set.mem y def_blocks) then Queue.add y work
              end)
            (Dom.frontier dom x)
        done
      end)
    defs;
  (* Phase 2: renaming along the dominator tree. *)
  let stacks : (Temp.t, Temp.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let stack v =
    match Hashtbl.find_opt stacks v with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks v s;
        s
  in
  let top v = match !(stack v) with x :: _ -> Some x | [] -> None in
  let fresh_version v =
    let nv = Temp.Gen.fresh cfg.Cfg.gen in
    let s = stack v in
    s := nv :: !s;
    nv
  in
  (* map: new phi dest per block per original var *)
  let phi_dests : (Label.t * Temp.t, Temp.t) Hashtbl.t = Hashtbl.create 16 in
  let rename_operand o =
    match o with
    | Tac.C _ -> o
    | Tac.T v -> ( match top v with Some nv -> Tac.T nv | None -> o)
  in
  (* Parameters keep their names: push them as their own version. *)
  List.iter (fun p -> (stack p) := [ p ]) cfg.Cfg.params;
  (* Renaming walk, recording phi arguments per incoming edge. *)
  let phi_args : (Label.t * Temp.t, (Label.t * Tac.operand) list ref) Hashtbl.t
      =
    Hashtbl.create 16
  in
  let rec walk2 l =
    let b = Cfg.block cfg l in
    let pushed = ref [] in
    let define v =
      let nv = fresh_version v in
      pushed := v :: !pushed;
      nv
    in
    (match Hashtbl.find_opt phis l with
    | None -> ()
    | Some tbl ->
        Hashtbl.iter
          (fun v _ -> Hashtbl.replace phi_dests (l, v) (define v))
          tbl);
    b.Cfg.instrs <-
      List.map
        (fun i ->
          let i = Tac.map_operands rename_operand i in
          match Tac.def i with
          | None -> i
          | Some d -> Tac.with_dst (define d) i)
        b.Cfg.instrs;
    b.Cfg.term <-
      (match b.Cfg.term with
      | Tac.Jmp _ as t -> t
      | Tac.Cbr r -> (
          match top r.c with
          | Some nc -> Tac.Cbr { r with c = nc }
          | None -> Tac.Cbr r)
      | Tac.Ret None -> Tac.Ret None
      | Tac.Ret (Some o) -> Tac.Ret (Some (rename_operand o)));
    List.iter
      (fun s ->
        match Hashtbl.find_opt phis s with
        | None -> ()
        | Some tbl ->
            Hashtbl.iter
              (fun v _ ->
                let args =
                  match Hashtbl.find_opt phi_args (s, v) with
                  | Some r -> r
                  | None ->
                      let r = ref [] in
                      Hashtbl.replace phi_args (s, v) r;
                      r
                in
                let operand =
                  match top v with Some nv -> Tac.T nv | None -> Tac.C 0L
                in
                args := (l, operand) :: !args)
              tbl)
      (Cfg.succs cfg l);
    List.iter walk2 (Dom.children dom l);
    List.iter
      (fun v ->
        let s = stack v in
        match !s with [] -> () | _ :: tl -> s := tl)
      !pushed
  in
  walk2 cfg.Cfg.entry;
  (* materialize phi instructions at block heads *)
  Hashtbl.iter
    (fun l tbl ->
      let b = Cfg.block cfg l in
      let new_phis =
        Hashtbl.fold
          (fun v _ acc ->
            let dst = Hashtbl.find phi_dests (l, v) in
            let args =
              match Hashtbl.find_opt phi_args (l, v) with
              | Some r -> List.rev !r
              | None -> []
            in
            Tac.Phi { dst; args } :: acc)
          tbl []
      in
      b.Cfg.instrs <- new_phis @ b.Cfg.instrs)
    phis

let split_critical_edges cfg =
  let labels = Cfg.rpo cfg in
  let counter = ref 0 in
  List.iter
    (fun l ->
      let b = Cfg.block cfg l in
      let succs = Tac.term_succs b.Cfg.term in
      if List.length succs > 1 then
        List.iter
          (fun s ->
            let sb = Cfg.block cfg s in
            let has_phi =
              List.exists
                (function Tac.Phi _ -> true | _ -> false)
                sb.Cfg.instrs
            in
            if has_phi && List.length (Cfg.preds cfg s) > 1 then begin
              incr counter;
              let nl = Printf.sprintf "%s.split%d" l !counter in
              Cfg.add_block cfg
                { Cfg.label = nl; instrs = []; term = Tac.Jmp s };
              (* redirect the edge l -> s through nl *)
              b.Cfg.term <-
                (match b.Cfg.term with
                | Tac.Cbr r ->
                    Tac.Cbr
                      {
                        r with
                        if_true =
                          (if Label.equal r.if_true s then nl else r.if_true);
                        if_false =
                          (if Label.equal r.if_false s then nl else r.if_false);
                      }
                | Tac.Jmp _ -> Tac.Jmp nl
                | Tac.Ret _ as t -> t);
              (* fix phi predecessor labels in s *)
              sb.Cfg.instrs <-
                List.map
                  (function
                    | Tac.Phi p ->
                        Tac.Phi
                          {
                            p with
                            args =
                              List.map
                                (fun (pl, o) ->
                                  if Label.equal pl l then (nl, o) else (pl, o))
                                p.args;
                          }
                    | i -> i)
                  sb.Cfg.instrs
            end)
          succs)
    labels

(* Emit a parallel copy set [(dst, src); ...] as a sequence of moves,
   breaking dependency cycles (the classic swap problem) with a fresh
   temporary. *)
let sequentialize_copies gen copies =
  let copies =
    List.filter
      (fun (d, s) ->
        match s with Tac.T t -> not (Temp.equal d t) | Tac.C _ -> true)
      copies
  in
  let pending = ref copies in
  let out = ref [] in
  let emit d s = out := Tac.Un { dst = d; op = Edge_isa.Opcode.Mov; a = s } :: !out in
  let src_reads t =
    List.exists
      (fun (_, s) -> match s with Tac.T x -> Temp.equal x t | Tac.C _ -> false)
      !pending
  in
  let progress = ref true in
  while !pending <> [] do
    if !progress then begin
      progress := false;
      let ready, blocked =
        List.partition (fun (d, _) -> not (src_reads d)) !pending
      in
      if ready <> [] then begin
        List.iter (fun (d, s) -> emit d s) ready;
        pending := blocked;
        progress := true
      end
      else pending := blocked
    end
    else begin
      (* all remaining copies form cycles: break one with a temp *)
      match !pending with
      | [] -> ()
      | (d, s) :: rest ->
          let tmp = Temp.Gen.fresh gen in
          emit tmp (Tac.T d);
          (* redirect uses of d as a source to tmp *)
          pending :=
            (d, s)
            :: List.map
                 (fun (d', s') ->
                   match s' with
                   | Tac.T x when Temp.equal x d -> (d', Tac.T tmp)
                   | _ -> (d', s'))
                 rest;
          progress := true
    end
  done;
  List.rev !out

let destruct cfg =
  split_critical_edges cfg;
  let labels = Cfg.rpo cfg in
  (* collect parallel copies per predecessor edge, then sequentialize *)
  let edge_copies : (Label.t, (Temp.t * Tac.operand) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun l ->
      let b = Cfg.block cfg l in
      let phis, rest =
        List.partition
          (function Tac.Phi _ -> true | Tac.Bin _ | Tac.Fbin _ | Tac.Cmp _
            | Tac.Un _ | Tac.Load _ | Tac.Store _ -> false)
          b.Cfg.instrs
      in
      if phis <> [] then begin
        b.Cfg.instrs <- rest;
        List.iter
          (function
            | Tac.Phi { dst; args } ->
                List.iter
                  (fun (pl, o) ->
                    let r =
                      match Hashtbl.find_opt edge_copies pl with
                      | Some r -> r
                      | None ->
                          let r = ref [] in
                          Hashtbl.replace edge_copies pl r;
                          r
                    in
                    r := (dst, o) :: !r)
                  args
            | Tac.Bin _ | Tac.Fbin _ | Tac.Cmp _ | Tac.Un _ | Tac.Load _
            | Tac.Store _ ->
                ())
          phis
      end)
    labels;
  Hashtbl.iter
    (fun pl copies ->
      let pb = Cfg.block cfg pl in
      pb.Cfg.instrs <-
        pb.Cfg.instrs @ sequentialize_copies cfg.Cfg.gen (List.rev !copies))
    edge_copies

let check cfg =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let seen = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace seen p cfg.Cfg.entry) cfg.Cfg.params;
  Cfg.iter_instrs cfg (fun l i ->
      match Tac.def i with
      | None -> ()
      | Some d ->
          if Hashtbl.mem seen d then err "temp t%d defined twice" d
          else Hashtbl.replace seen d l);
  let dom = Dom.of_cfg cfg in
  let def_block = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace def_block p cfg.Cfg.entry) cfg.Cfg.params;
  Cfg.iter_instrs cfg (fun l i ->
      Option.iter (fun d -> Hashtbl.replace def_block d l) (Tac.def i));
  Cfg.iter_instrs cfg (fun l i ->
      match i with
      | Tac.Phi _ -> ()
      | _ ->
          List.iter
            (fun u ->
              match Hashtbl.find_opt def_block u with
              | None -> err "use of undefined temp t%d in %s" u l
              | Some dl ->
                  if not (Dom.dominates dom dl l) then
                    err "t%d used in %s but defined in non-dominating %s" u l
                      dl)
            (Tac.uses i));
  match !errs with [] -> Ok () | es -> Error (List.rev es)
