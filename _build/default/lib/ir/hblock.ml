type guard = { gpol : bool; gpreds : Temp.t list }

type hop =
  | Op of Tac.instr
  | Sand of { dst : Temp.t; a : Temp.t; b : Temp.t }
  | Null_write of Temp.t
  | Null_store of int
type hinstr = { hop : hop; guard : guard option }
type hexit = { eguard : guard option; etarget : Label.t option }

type t = {
  hname : Label.t;
  mutable body : hinstr list;
  mutable hexits : hexit list;
  mutable houts : (Temp.t * Temp.t) list;
}

let guard_equal a b =
  match (a, b) with
  | None, None -> true
  | Some g1, Some g2 ->
      g1.gpol = g2.gpol
      && List.length g1.gpreds = List.length g2.gpreds
      && List.for_all2 Temp.equal g1.gpreds g2.gpreds
  | None, Some _ | Some _, None -> false

let guard_uses = function None -> [] | Some g -> g.gpreds
let singleton p pol = { gpol = pol; gpreds = [ p ] }

let hop_def = function
  | Op i -> Tac.def i
  | Sand { dst; _ } -> Some dst
  | Null_write _ | Null_store _ -> None

let data_uses hi =
  match hi.hop with
  | Op i -> Tac.uses i
  | Sand { a; b; _ } -> [ a; b ]
  | Null_write _ | Null_store _ -> []

let hop_uses hi = data_uses hi @ guard_uses hi.guard

let defs t =
  List.fold_left
    (fun acc hi ->
      match hop_def hi.hop with
      | Some d -> Temp.Set.add d acc
      | None -> acc)
    Temp.Set.empty t.body

let temps t =
  List.fold_left
    (fun acc hi ->
      let acc =
        match hop_def hi.hop with Some d -> Temp.Set.add d acc | None -> acc
      in
      List.fold_left (fun acc u -> Temp.Set.add u acc) acc (hop_uses hi))
    Temp.Set.empty t.body

(* Store indices are assigned positionally: the i-th [Store] in the body
   has index i; [Null_store] refers to those indices. *)
let store_count t =
  List.length
    (List.filter
       (fun hi ->
         match hi.hop with
         | Op (Tac.Store _) -> true
         | Op
             ( Tac.Bin _ | Tac.Fbin _ | Tac.Cmp _ | Tac.Un _ | Tac.Load _
             | Tac.Phi _ )
         | Sand _ | Null_write _ | Null_store _ ->
             false)
       t.body)

let predicated_count t =
  List.length (List.filter (fun hi -> hi.guard <> None) t.body)

let instr_count t = List.length t.body

let def_sites t =
  let m = ref Temp.Map.empty in
  List.iteri
    (fun i hi ->
      match hop_def hi.hop with
      | None -> ()
      | Some d ->
          let l = Option.value ~default:[] (Temp.Map.find_opt d !m) in
          m := Temp.Map.add d (l @ [ i ]) !m)
    t.body;
  !m

let guard_def_chain t temp =
  let sites = def_sites t in
  let body = Array.of_list t.body in
  let rec chase temp acc seen =
    if Temp.Set.mem temp seen then acc
    else
      match Temp.Map.find_opt temp sites with
      | None | Some [] -> acc
      | Some (i :: _) -> (
          let g = body.(i).guard in
          match g with
          | None -> acc
          | Some gd -> (
              match gd.gpreds with
              | [ p ] -> chase p (g :: acc) (Temp.Set.add temp seen)
              | _ -> g :: acc))
  in
  match Temp.Map.find_opt temp sites with
  | None | Some [] -> []
  | Some (i :: _) -> (
      match body.(i).guard with
      | None -> []
      | Some g -> (
          match g.gpreds with
          | [ p ] -> chase p [ Some g ] Temp.Set.empty
          | _ -> [ Some g ]))

let pp_guard ppf = function
  | None -> ()
  | Some g ->
      Format.fprintf ppf "_%c<%a>"
        (if g.gpol then 't' else 'f')
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Temp.pp)
        g.gpreds

let pp_hinstr ppf hi =
  (match hi.hop with
  | Op i -> Tac.pp_instr ppf i
  | Sand { dst; a; b } ->
      Format.fprintf ppf "%a = sand %a, %a" Temp.pp dst Temp.pp a Temp.pp b
  | Null_write tmp -> Format.fprintf ppf "nullw %a" Temp.pp tmp
  | Null_store i -> Format.fprintf ppf "nulls @%d" i);
  pp_guard ppf hi.guard

let pp ppf t =
  Format.fprintf ppf "@[<v>hyperblock %a@," Label.pp t.hname;
  List.iter (fun hi -> Format.fprintf ppf "  %a@," pp_hinstr hi) t.body;
  List.iter
    (fun e ->
      Format.fprintf ppf "  exit%a -> %s@," pp_guard e.eguard
        (match e.etarget with Some l -> l | None -> "@halt"))
    t.hexits;
  Format.fprintf ppf "@]"
