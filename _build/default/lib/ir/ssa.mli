(** Static single assignment form: construction by dominance-frontier phi
    placement and renaming (Cytron et al., the paper's reference [11]),
    and destruction by copy insertion on incoming edges. *)

val construct : Cfg.t -> unit
(** Rewrites the CFG in place into SSA form. Function parameters are
    treated as defined at entry. *)

val destruct : Cfg.t -> unit
(** Replaces phis by copies in predecessors (splitting critical edges as
    needed). The result is conventional, phi-free TAC. *)

val check : Cfg.t -> (unit, string list) result
(** Verifies the single-assignment property and that every use is
    dominated by its definition. *)
