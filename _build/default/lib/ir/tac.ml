module Opcode = Edge_isa.Opcode

type operand = T of Temp.t | C of int64

type instr =
  | Bin of { dst : Temp.t; op : Opcode.ibinop; a : operand; b : operand }
  | Fbin of { dst : Temp.t; op : Opcode.fbinop; a : operand; b : operand }
  | Cmp of {
      dst : Temp.t;
      cond : Opcode.cond;
      fp : bool;
      a : operand;
      b : operand;
    }
  | Un of { dst : Temp.t; op : Opcode.unop; a : operand }
  | Load of { dst : Temp.t; width : Opcode.width; addr : operand; off : int }
  | Store of { width : Opcode.width; addr : operand; off : int; v : operand }
  | Phi of { dst : Temp.t; args : (Label.t * operand) list }

type term =
  | Jmp of Label.t
  | Cbr of { c : Temp.t; if_true : Label.t; if_false : Label.t }
  | Ret of operand option

let def = function
  | Bin { dst; _ }
  | Fbin { dst; _ }
  | Cmp { dst; _ }
  | Un { dst; _ }
  | Load { dst; _ }
  | Phi { dst; _ } ->
      Some dst
  | Store _ -> None

let op_temp = function T t -> [ t ] | C _ -> []

let uses = function
  | Bin { a; b; _ } | Fbin { a; b; _ } | Cmp { a; b; _ } ->
      op_temp a @ op_temp b
  | Un { a; _ } -> op_temp a
  | Load { addr; _ } -> op_temp addr
  | Store { addr; v; _ } -> op_temp addr @ op_temp v
  | Phi { args; _ } -> List.concat_map (fun (_, o) -> op_temp o) args

let term_uses = function
  | Jmp _ -> []
  | Cbr { c; _ } -> [ c ]
  | Ret None -> []
  | Ret (Some o) -> op_temp o

let term_succs = function
  | Jmp l -> [ l ]
  | Cbr { if_true; if_false; _ } -> [ if_true; if_false ]
  | Ret _ -> []

let map_operands f = function
  | Bin r -> Bin { r with a = f r.a; b = f r.b }
  | Fbin r -> Fbin { r with a = f r.a; b = f r.b }
  | Cmp r -> Cmp { r with a = f r.a; b = f r.b }
  | Un r -> Un { r with a = f r.a }
  | Load r -> Load { r with addr = f r.addr }
  | Store r -> Store { r with addr = f r.addr; v = f r.v }
  | Phi r -> Phi { r with args = List.map (fun (l, o) -> (l, f o)) r.args }

let map_term_temp f = function
  | Jmp l -> Jmp l
  | Cbr r -> Cbr { r with c = f r.c }
  | Ret None -> Ret None
  | Ret (Some (T t)) -> Ret (Some (T (f t)))
  | Ret (Some (C c)) -> Ret (Some (C c))

let with_dst dst = function
  | Bin r -> Bin { r with dst }
  | Fbin r -> Fbin { r with dst }
  | Cmp r -> Cmp { r with dst }
  | Un r -> Un { r with dst }
  | Load r -> Load { r with dst }
  | Phi r -> Phi { r with dst }
  | Store _ as s -> s

let has_side_effect = function
  | Store _ -> true
  | Bin _ | Fbin _ | Cmp _ | Un _ | Load _ | Phi _ -> false

let can_raise = function
  | Load _ | Store _ -> true
  | Bin { op = Opcode.Div; _ } | Bin { op = Opcode.Rem; _ } -> true
  | Bin _ | Fbin _ | Cmp _ | Un _ | Phi _ -> false

let is_cheap = function
  | Bin { op; _ } -> (
      match op with
      | Opcode.Mul | Opcode.Div | Opcode.Rem -> false
      | Opcode.Add | Opcode.Sub | Opcode.And | Opcode.Or | Opcode.Xor
      | Opcode.Sll | Opcode.Srl | Opcode.Sra ->
          true)
  | Cmp { fp = false; _ } -> true
  | Un { op = Opcode.Mov; _ } | Un { op = Opcode.Not; _ }
  | Un { op = Opcode.Neg; _ } ->
      true
  | Un _ | Fbin _ | Cmp _ | Load _ | Store _ | Phi _ -> false

let operand_equal a b =
  match (a, b) with
  | T x, T y -> Temp.equal x y
  | C x, C y -> Int64.equal x y
  | T _, C _ | C _, T _ -> false

let instr_equal i1 i2 =
  match (i1, i2) with
  | Bin a, Bin b ->
      Temp.equal a.dst b.dst && a.op = b.op && operand_equal a.a b.a
      && operand_equal a.b b.b
  | Fbin a, Fbin b ->
      Temp.equal a.dst b.dst && a.op = b.op && operand_equal a.a b.a
      && operand_equal a.b b.b
  | Cmp a, Cmp b ->
      Temp.equal a.dst b.dst && a.cond = b.cond && a.fp = b.fp
      && operand_equal a.a b.a && operand_equal a.b b.b
  | Un a, Un b ->
      Temp.equal a.dst b.dst && a.op = b.op && operand_equal a.a b.a
  | Load a, Load b ->
      Temp.equal a.dst b.dst && a.width = b.width
      && operand_equal a.addr b.addr && a.off = b.off
  | Store a, Store b ->
      a.width = b.width && operand_equal a.addr b.addr && a.off = b.off
      && operand_equal a.v b.v
  | Phi a, Phi b ->
      Temp.equal a.dst b.dst
      && List.length a.args = List.length b.args
      && List.for_all2
           (fun (l1, o1) (l2, o2) -> Label.equal l1 l2 && operand_equal o1 o2)
           a.args b.args
  | ( (Bin _ | Fbin _ | Cmp _ | Un _ | Load _ | Store _ | Phi _),
      (Bin _ | Fbin _ | Cmp _ | Un _ | Load _ | Store _ | Phi _) ) ->
      false

let lexically_equal = instr_equal

let pp_operand ppf = function
  | T t -> Temp.pp ppf t
  | C c -> Format.fprintf ppf "#%Ld" c

let pp_instr ppf i =
  let open Format in
  match i with
  | Bin { dst; op; a; b } ->
      fprintf ppf "%a = %s %a, %a" Temp.pp dst (Opcode.mnemonic (Opcode.Iop op))
        pp_operand a pp_operand b
  | Fbin { dst; op; a; b } ->
      fprintf ppf "%a = %s %a, %a" Temp.pp dst (Opcode.mnemonic (Opcode.Fop op))
        pp_operand a pp_operand b
  | Cmp { dst; cond; fp; a; b } ->
      fprintf ppf "%a = %s %a, %a" Temp.pp dst
        (Opcode.mnemonic
           (if fp then Opcode.Ftst cond else Opcode.Tst cond))
        pp_operand a pp_operand b
  | Un { dst; op; a } ->
      fprintf ppf "%a = %s %a" Temp.pp dst (Opcode.mnemonic (Opcode.Un op))
        pp_operand a
  | Load { dst; width; addr; off } ->
      fprintf ppf "%a = %s %d(%a)" Temp.pp dst
        (Opcode.mnemonic (Opcode.Ld width))
        off pp_operand addr
  | Store { width; addr; off; v } ->
      fprintf ppf "%s %a, %d(%a)"
        (Opcode.mnemonic (Opcode.St width))
        pp_operand v off pp_operand addr
  | Phi { dst; args } ->
      fprintf ppf "%a = phi" Temp.pp dst;
      List.iter
        (fun (l, o) -> fprintf ppf " [%a: %a]" Label.pp l pp_operand o)
        args

let pp_term ppf = function
  | Jmp l -> Format.fprintf ppf "jmp %a" Label.pp l
  | Cbr { c; if_true; if_false } ->
      Format.fprintf ppf "cbr %a ? %a : %a" Temp.pp c Label.pp if_true
        Label.pp if_false
  | Ret None -> Format.fprintf ppf "ret"
  | Ret (Some o) -> Format.fprintf ppf "ret %a" pp_operand o
