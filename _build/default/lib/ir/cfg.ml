type bblock = {
  label : Label.t;
  mutable instrs : Tac.instr list;
  mutable term : Tac.term;
}

type t = {
  fname : string;
  params : Temp.t list;
  entry : Label.t;
  mutable blocks : bblock Label.Map.t;
  gen : Temp.Gen.t;
}

let create ~fname ~params ~entry ~gen =
  { fname; params; entry; blocks = Label.Map.empty; gen }

let add_block t b = t.blocks <- Label.Map.add b.label b t.blocks

let block t l =
  match Label.Map.find_opt l t.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Cfg.block: no block %s" l)

let block_opt t l = Label.Map.find_opt l t.blocks
let remove_block t l = t.blocks <- Label.Map.remove l t.blocks
let labels t = Label.Map.bindings t.blocks |> List.map fst
let succs t l = Tac.term_succs (block t l).term

let preds t l =
  Label.Map.fold
    (fun pl b acc -> if List.mem l (Tac.term_succs b.term) then pl :: acc else acc)
    t.blocks []
  |> List.rev

let rpo t =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      (match block_opt t l with
      | Some b -> List.iter dfs (Tac.term_succs b.term)
      | None -> ());
      order := l :: !order
    end
  in
  dfs t.entry;
  List.filter (fun l -> block_opt t l <> None) !order

let prune_unreachable t =
  let reachable = Label.Set.of_list (rpo t) in
  t.blocks <-
    Label.Map.filter (fun l _ -> Label.Set.mem l reachable) t.blocks

let iter_instrs t f =
  Label.Map.iter (fun l b -> List.iter (f l) b.instrs) t.blocks

let defs t =
  let m = ref Temp.Map.empty in
  Label.Map.iter
    (fun l b ->
      List.iter
        (fun i ->
          match Tac.def i with
          | None -> ()
          | Some d ->
              let s =
                Option.value ~default:Label.Set.empty (Temp.Map.find_opt d !m)
              in
              m := Temp.Map.add d (Label.Set.add l s) !m)
        b.instrs)
    t.blocks;
  !m

let max_temp t =
  let mx = ref 0 in
  let see tmp = if tmp > !mx then mx := tmp in
  List.iter see t.params;
  Label.Map.iter
    (fun _ b ->
      List.iter
        (fun i ->
          Option.iter see (Tac.def i);
          List.iter see (Tac.uses i))
        b.instrs;
      List.iter see (Tac.term_uses b.term))
    t.blocks;
  !mx

let copy t =
  {
    t with
    blocks =
      Label.Map.map
        (fun b -> { label = b.label; instrs = b.instrs; term = b.term })
        t.blocks;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>function %s(%a)@," t.fname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Temp.pp)
    t.params;
  List.iter
    (fun l ->
      let b = block t l in
      Format.fprintf ppf "%a:@," Label.pp l;
      List.iter (fun i -> Format.fprintf ppf "  %a@," Tac.pp_instr i) b.instrs;
      Format.fprintf ppf "  %a@," Tac.pp_term b.term)
    (rpo t);
  Format.fprintf ppf "@]"
