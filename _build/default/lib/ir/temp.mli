(** Temporaries: the virtual registers of the three-address IR.

    Intra-block communication in the final TRIPS code is expressed through
    temporary names (Section 5 of the paper); only [read]/[write]
    instructions touch architectural registers. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Fresh-name supply. A generator is created per function being
    compiled. *)
module Gen : sig
  type temp := t
  type t

  val create : unit -> t
  val fresh : t -> temp
  val next_above : t -> temp -> unit
  (** Ensure subsequently generated temps are strictly greater than the
      given one; used when resuming generation over an existing IR. *)
end
