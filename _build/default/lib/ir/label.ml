type t = string

let equal = String.equal
let compare = String.compare
let pp = Format.pp_print_string

module Set = Set.Make (String)
module Map = Map.Make (String)
