type t = {
  live_in : (Label.t, Temp.Set.t) Hashtbl.t;
  live_out : (Label.t, Temp.Set.t) Hashtbl.t;
}

(* use/def per block, treating phi uses as live on the corresponding
   incoming edge (handled separately in [live_on_edge]); for block-level
   fixpoint purposes phi uses count at the predecessor's live-out, which
   the classical formulation approximates by counting them here. *)
let block_use_def (b : Cfg.bblock) =
  let use = ref Temp.Set.empty and def = ref Temp.Set.empty in
  List.iter
    (fun i ->
      List.iter
        (fun u -> if not (Temp.Set.mem u !def) then use := Temp.Set.add u !use)
        (Tac.uses i);
      Option.iter (fun d -> def := Temp.Set.add d !def) (Tac.def i))
    b.Cfg.instrs;
  List.iter
    (fun u -> if not (Temp.Set.mem u !def) then use := Temp.Set.add u !use)
    (Tac.term_uses b.Cfg.term);
  (!use, !def)

let compute cfg =
  let labels = Cfg.rpo cfg in
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace live_in l Temp.Set.empty;
      Hashtbl.replace live_out l Temp.Set.empty)
    labels;
  let usedefs =
    List.map (fun l -> (l, block_use_def (Cfg.block cfg l))) labels
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l, (use, def)) ->
        let out =
          List.fold_left
            (fun acc s ->
              Temp.Set.union acc
                (Option.value ~default:Temp.Set.empty
                   (Hashtbl.find_opt live_in s)))
            Temp.Set.empty (Cfg.succs cfg l)
        in
        let inn = Temp.Set.union use (Temp.Set.diff out def) in
        if not (Temp.Set.equal out (Hashtbl.find live_out l)) then begin
          Hashtbl.replace live_out l out;
          changed := true
        end;
        if not (Temp.Set.equal inn (Hashtbl.find live_in l)) then begin
          Hashtbl.replace live_in l inn;
          changed := true
        end)
      (List.rev usedefs)
  done;
  { live_in; live_out }

let live_in t l =
  Option.value ~default:Temp.Set.empty (Hashtbl.find_opt t.live_in l)

let live_out t l =
  Option.value ~default:Temp.Set.empty (Hashtbl.find_opt t.live_out l)

let live_on_edge t cfg src dst =
  let base = live_in t dst in
  match Cfg.block_opt cfg dst with
  | None -> base
  | Some b ->
      List.fold_left
        (fun acc i ->
          match i with
          | Tac.Phi { dst = d; args } ->
              let acc = Temp.Set.remove d acc in
              List.fold_left
                (fun acc (l, o) ->
                  if Label.equal l src then
                    match o with
                    | Tac.T tmp -> Temp.Set.add tmp acc
                    | Tac.C _ -> acc
                  else acc)
                acc args
          | _ -> acc)
        base b.Cfg.instrs
