(** Iterative backward liveness over a {!Cfg}.

    Used for TRIPS-block output determination (which temps must be written
    to registers), for the inter-block analysis behind path-sensitive
    predicate removal (Section 5.2), and by the register allocator. *)

type t

val compute : Cfg.t -> t
val live_in : t -> Label.t -> Temp.Set.t
val live_out : t -> Label.t -> Temp.Set.t

val live_on_edge : t -> Cfg.t -> Label.t -> Label.t -> Temp.Set.t
(** [live_on_edge t cfg src dst] is the set of temps live along the edge
    [src -> dst]: live-in of [dst], with phi-argument adjustment (temps
    used by [dst]'s phis for predecessor [src] are included; phi dests
    excluded). *)
