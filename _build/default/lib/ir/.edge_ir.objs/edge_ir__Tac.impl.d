lib/ir/tac.ml: Edge_isa Format Int64 Label List Temp
