lib/ir/temp.mli: Format Map Set
