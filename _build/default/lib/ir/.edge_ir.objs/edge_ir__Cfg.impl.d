lib/ir/cfg.ml: Format Hashtbl Label List Option Printf Tac Temp
