lib/ir/temp.ml: Format Hashtbl Int Map Set
