lib/ir/dom.mli: Cfg Label
