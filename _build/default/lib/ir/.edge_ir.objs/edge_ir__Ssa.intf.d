lib/ir/ssa.mli: Cfg
