lib/ir/dom.ml: Array Cfg Hashtbl Label List Tac
