lib/ir/liveness.ml: Cfg Hashtbl Label List Option Tac Temp
