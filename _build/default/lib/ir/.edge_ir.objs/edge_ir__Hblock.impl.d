lib/ir/hblock.ml: Array Format Label List Option Tac Temp
