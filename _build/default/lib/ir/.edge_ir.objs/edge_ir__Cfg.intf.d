lib/ir/cfg.mli: Format Label Tac Temp
