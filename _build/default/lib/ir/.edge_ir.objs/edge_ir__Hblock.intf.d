lib/ir/hblock.mli: Format Label Tac Temp
