lib/ir/label.ml: Format Map Set String
