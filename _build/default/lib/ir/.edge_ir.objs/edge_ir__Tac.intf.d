lib/ir/tac.mli: Edge_isa Format Label Temp
