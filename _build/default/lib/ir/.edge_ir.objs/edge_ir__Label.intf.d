lib/ir/label.mli: Format Map Set
