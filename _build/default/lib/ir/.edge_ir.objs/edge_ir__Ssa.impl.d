lib/ir/ssa.ml: Cfg Dom Edge_isa Format Hashtbl Label List Liveness Option Printf Queue Tac Temp
