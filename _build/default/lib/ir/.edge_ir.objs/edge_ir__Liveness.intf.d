lib/ir/liveness.mli: Cfg Label Temp
