type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf t = Format.fprintf ppf "t%d" t

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Gen = struct
  type t = int ref

  let create () = ref 0

  let fresh r =
    let v = !r in
    incr r;
    v

  let next_above r t = if t >= !r then r := t + 1
end
