(** Hyperblocks: predicated three-address code.

    After if-conversion the compiler represents each TRIPS block as a list
    of guarded instructions plus guarded exits — the flat form of the
    paper's predicate flow graph (Section 5, Figure 4). A guard names the
    predicate temps that may fire the instruction and the polarity they
    must match; a guard with several predicates is the ISA's predicate-OR
    (Section 3.5): the instruction fires when any one of them arrives with
    matching polarity, and block construction guarantees at most one
    can. *)

type guard = { gpol : bool; gpreds : Temp.t list }

type hop =
  | Op of Tac.instr  (** ordinary computation ([Tac.Phi] never appears) *)
  | Sand of { dst : Temp.t; a : Temp.t; b : Temp.t }
      (** short-circuiting predicate AND (Section 7): fires as soon as
          [a] arrives false, else when both arrive; see
          {!Edge_isa.Opcode.Sand} *)
  | Null_write of Temp.t
      (** produce a null token for the register write of this temp
          (Section 4.2); only the write consumes it *)
  | Null_store of int
      (** produce a null store for the given in-block store index *)

type hinstr = { hop : hop; guard : guard option }

type hexit = {
  eguard : guard option;
  etarget : Label.t option;  (** [None] terminates the program *)
}

type t = {
  hname : Label.t;
  mutable body : hinstr list;
  mutable hexits : hexit list;  (** exactly one fires per execution *)
  mutable houts : (Temp.t * Temp.t) list;
      (** block outputs: [(reg_temp, producer_temp)]. The block writes the
          architectural register allocated to [reg_temp]; the write's
          producers are the body's definitions of [producer_temp] (plus
          any [Null_write producer_temp]). The two coincide unless
          if-conversion introduced per-exit output moves. *)
}

val guard_equal : guard option -> guard option -> bool
val guard_uses : guard option -> Temp.t list

val singleton : Temp.t -> bool -> guard
(** [singleton p pol] guards on predicate [p] with polarity [pol]. *)

val hop_def : hop -> Temp.t option
val hop_uses : hinstr -> Temp.t list
(** Data uses plus guard predicates. *)

val data_uses : hinstr -> Temp.t list
val defs : t -> Temp.Set.t
val temps : t -> Temp.Set.t

val store_count : t -> int
(** Number of distinct store indices (LSIDs) in the body. *)

val predicated_count : t -> int
val instr_count : t -> int

val def_sites : t -> int list Temp.Map.t
(** For each temp, the body positions (0-based) that define it; multiple
    positions mean complementary guarded definitions (a dataflow join). *)

val guard_def_chain : t -> Temp.t -> guard option list
(** The chain of guards from an instruction's guard upward through the
    guards of the tests that define its predicates; used to compute
    divergence edges for nullification. Cycles are impossible in
    well-formed hyperblocks. *)

val pp_guard : Format.formatter -> guard option -> unit
val pp_hinstr : Format.formatter -> hinstr -> unit
val pp : Format.formatter -> t -> unit
