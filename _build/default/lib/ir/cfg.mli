(** Control-flow graphs of basic blocks over {!Tac}. *)

type bblock = { label : Label.t; mutable instrs : Tac.instr list; mutable term : Tac.term }

type t = {
  fname : string;
  params : Temp.t list;  (** values live on entry (function parameters) *)
  entry : Label.t;
  mutable blocks : bblock Label.Map.t;
  gen : Temp.Gen.t;  (** fresh-temp supply for later phases *)
}

val create : fname:string -> params:Temp.t list -> entry:Label.t -> gen:Temp.Gen.t -> t
val add_block : t -> bblock -> unit
val block : t -> Label.t -> bblock
val block_opt : t -> Label.t -> bblock option
val remove_block : t -> Label.t -> unit
val labels : t -> Label.t list
val succs : t -> Label.t -> Label.t list
val preds : t -> Label.t -> Label.t list

val rpo : t -> Label.t list
(** Reverse postorder from the entry; unreachable blocks are excluded. *)

val prune_unreachable : t -> unit
val iter_instrs : t -> (Label.t -> Tac.instr -> unit) -> unit
val defs : t -> Label.Set.t Temp.Map.t
(** For every temp, the set of blocks containing a definition. *)

val max_temp : t -> Temp.t
val copy : t -> t
(** Deep copy (blocks are mutable). *)

val pp : Format.formatter -> t -> unit
