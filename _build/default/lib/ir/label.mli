(** Labels naming basic blocks, hyperblocks and, ultimately, TRIPS
    blocks. *)

type t = string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
