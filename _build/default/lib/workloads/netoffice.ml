(* EEMBC-networking- and office-style kernels. *)

let mk name description mem_size source setup =
  { Workload.name; description; source; mem_size; setup }

(* ospf: Dijkstra shortest-path over a small dense adjacency matrix. *)
let ospf =
  mk "ospf" "Dijkstra over a dense adjacency matrix (OSPF route computation)"
    65536
    {|
kernel ospf(int nv, int* adj, int* dist, int* visited) {
  int i;
  int round;
  for (i = 0; i < nv; i = i + 1) {
    dist[i] = 1000000;
    visited[i] = 0;
  }
  dist[0] = 0;
  for (round = 0; round < nv; round = round + 1) {
    // pick the unvisited vertex with the smallest distance
    int u = -1;
    int best = 1000001;
    for (i = 0; i < nv; i = i + 1) {
      if (visited[i] == 0 && dist[i] < best) {
        best = dist[i];
        u = i;
      }
    }
    if (u < 0) { break; }
    visited[u] = 1;
    for (i = 0; i < nv; i = i + 1) {
      int w = adj[u * nv + i];
      if (w > 0 && visited[i] == 0) {
        int nd = dist[u] + w;
        if (nd < dist[i]) { dist[i] = nd; }
      }
    }
  }
  int check = 0;
  for (i = 0; i < nv; i = i + 1) {
    check = check + dist[i] * (i + 1);
  }
  return check;
}
|}
    (fun mem ->
      let nv = 24 in
      let r = Data.rng 41 in
      Data.fill_ints mem ~addr:1024 ~n:(nv * nv) (fun idx ->
          let i = idx / nv and j = idx mod nv in
          if i = j then 0L
          else if Data.next r 100 < 30 then Int64.of_int (1 + Data.next r 40)
          else 0L);
      [ Int64.of_int nv; 1024L; 8192L; 12288L ])

(* pktflow: packet header validation and counter updates. *)
let pktflow =
  mk "pktflow" "packet classification: header checks, TTL, counters"
    131072
    {|
kernel pktflow(int npkts, int4* headers, int* counts) {
  int i;
  int dropped = 0;
  int forwarded = 0;
  for (i = 0; i < npkts; i = i + 1) {
    int w0 = headers[i * 4];
    int w1 = headers[i * 4 + 1];
    int w2 = headers[i * 4 + 2];
    int version = (w0 >> 28) & 15;
    int ttl = (w1 >> 24) & 255;
    int proto = (w1 >> 16) & 255;
    if (version != 4) {
      dropped = dropped + 1;
      continue;
    }
    if (ttl <= 1) {
      dropped = dropped + 1;
      counts[0] = counts[0] + 1;
      continue;
    }
    int bucket = (w2 ^ (w2 >> 7)) & 15;
    if (proto == 6) {
      counts[1 + bucket] = counts[1 + bucket] + 1;
    } else {
      if (proto == 17) {
        counts[17 + bucket] = counts[17 + bucket] + 1;
      } else {
        counts[33] = counts[33] + 1;
      }
    }
    headers[i * 4 + 1] = w1 - 0x1000000;
    forwarded = forwarded + 1;
  }
  return forwarded * 10000 + dropped;
}
|}
    (fun mem ->
      let npkts = 300 in
      let r = Data.rng 42 in
      Data.fill_i32 mem ~addr:1024 ~n:(npkts * 4) (fun idx ->
          let field = idx mod 4 in
          match field with
          | 0 ->
              let version = if Data.next r 10 < 8 then 4 else 6 in
              Int32.of_int ((version lsl 28) lor Data.next r 0xFFFFFF)
          | 1 ->
              let ttl = Data.next r 64 in
              let proto = List.nth [ 6; 17; 1; 6; 6; 17 ] (Data.next r 6) in
              Int32.of_int ((ttl lsl 24) lor (proto lsl 16) lor Data.next r 0xFFFF)
          | _ -> Int32.of_int (Data.next r 0x3FFFFFFF));
      [ Int64.of_int npkts; 1024L; 32768L ])

(* routelookup: longest-prefix match over a binary trie in an array. *)
let routelookup =
  mk "routelookup" "IP route lookup: binary trie walk per address"
    131072
    {|
kernel routelookup(int naddrs, int* addrs, int* trie, int* results) {
  int i;
  int bit;
  int hits = 0;
  for (i = 0; i < naddrs; i = i + 1) {
    int a = addrs[i];
    int node = 0;
    int best = -1;
    for (bit = 23; bit >= 0; bit = bit - 1) {
      int nh = trie[node * 3 + 2];
      if (nh >= 0) { best = nh; }
      int dir = (a >> bit) & 1;
      int child = trie[node * 3 + dir];
      if (child < 0) { break; }
      node = child;
    }
    results[i] = best;
    if (best >= 0) { hits = hits + 1; }
  }
  return hits * 100000 + results[0] + results[naddrs - 1];
}
|}
    (fun mem ->
      (* build a small random trie: node = [left, right, nexthop] *)
      let r = Data.rng 43 in
      let max_nodes = 300 in
      let count = ref 1 in
      let trie = Array.make (max_nodes * 3) (-1) in
      let rec insert node prefix depth nh =
        if depth = 0 then trie.((node * 3) + 2) <- nh
        else begin
          let dir = (prefix lsr (depth - 1)) land 1 in
          if trie.((node * 3) + dir) < 0 && !count < max_nodes then begin
            trie.((node * 3) + dir) <- !count;
            incr count
          end;
          let child = trie.((node * 3) + dir) in
          if child >= 0 then insert child prefix (depth - 1) nh
        end
      in
      for p = 0 to 79 do
        let len = 4 + Data.next r 12 in
        insert 0 (Data.next r (1 lsl len)) len (p land 31)
      done;
      Data.fill_ints mem ~addr:32768 ~n:(max_nodes * 3) (fun i ->
          Int64.of_int trie.(i));
      let naddrs = 300 in
      Data.fill_ints mem ~addr:1024 ~n:naddrs (fun _ ->
          Int64.of_int (Data.next r (1 lsl 24)));
      [ Int64.of_int naddrs; 1024L; 32768L; 16384L ])

(* bezier01: fixed-point cubic Bezier evaluation. *)
let bezier01 =
  mk "bezier01" "cubic Bezier interpolation in fixed point"
    65536
    {|
kernel bezier01(int nseg, int* ctrl, int* out) {
  int s;
  int t;
  int idx = 0;
  for (s = 0; s < nseg; s = s + 1) {
    int x0 = ctrl[s * 8];
    int y0 = ctrl[s * 8 + 1];
    int x1 = ctrl[s * 8 + 2];
    int y1 = ctrl[s * 8 + 3];
    int x2 = ctrl[s * 8 + 4];
    int y2 = ctrl[s * 8 + 5];
    int x3 = ctrl[s * 8 + 6];
    int y3 = ctrl[s * 8 + 7];
    for (t = 0; t <= 16; t = t + 1) {
      int u = 16 - t;
      int b0 = u * u * u;
      int b1 = 3 * u * u * t;
      int b2 = 3 * u * t * t;
      int b3 = t * t * t;
      int x = (b0 * x0 + b1 * x1 + b2 * x2 + b3 * x3) >> 12;
      int y = (b0 * y0 + b1 * y1 + b2 * y2 + b3 * y3) >> 12;
      out[idx] = x;
      out[idx + 1] = y;
      idx = idx + 2;
    }
  }
  int check = 0;
  for (t = 0; t < idx; t = t + 1) { check = check ^ (out[t] * (t + 1)); }
  return check;
}
|}
    (fun mem ->
      let nseg = 12 in
      let r = Data.rng 44 in
      Data.fill_ints mem ~addr:1024 ~n:(nseg * 8) (fun _ ->
          Int64.of_int (Data.next r 1024));
      [ Int64.of_int nseg; 1024L; 8192L ])

(* dither01: error-diffusion dithering over a greyscale strip. *)
let dither01 =
  mk "dither01" "error-diffusion dithering: threshold branch per pixel"
    131072
    {|
kernel dither01(int w, int h, byte* img, byte* out, int* err)  {
  int x;
  int y;
  int ones = 0;
  for (y = 0; y < h; y = y + 1) {
    for (x = 0; x < w; x = x + 1) {
      int v = (img[y * w + x] & 255) + err[x];
      int o = 0;
      int e = v;
      if (v > 127) {
        o = 1;
        e = v - 255;
        ones = ones + 1;
      }
      out[y * w + x] = o;
      // push 1/2 of the error right, 1/2 down
      if (x + 1 < w) {
        err[x + 1] = err[x + 1] + (e >> 1);
      }
      err[x] = e >> 1;
    }
  }
  return ones;
}
|}
    (fun mem ->
      let w = 64 and h = 24 in
      let r = Data.rng 45 in
      Data.fill_bytes mem ~addr:1024 ~n:(w * h) (fun i ->
          (i * 2 + Data.next r 60) land 255);
      [ Int64.of_int w; Int64.of_int h; 1024L; 8192L; 16384L ])

(* rotate01: rotate a 1-bit bitmap by 90 degrees — the paper's standout
   benchmark (59% speedup with both optimizations): a tight, extremely
   branchy per-bit inner loop that predication converts to dataflow. *)
let rotate01 =
  mk "rotate01" "90-degree rotation of a 1-bit bitmap, per-bit branchy inner loop"
    131072
    {|
kernel rotate01(int w, int h, int* src, int* dst) {
  // bitmap is w*h bits, row-major, 32 bits per word in an int array;
  // destination is h*w bits
  int x;
  int y;
  int setbits = 0;
  for (y = 0; y < h; y = y + 1) {
    for (x = 0; x < w; x = x + 1) {
      int sbit = y * w + x;
      int sw = src[sbit >> 5];
      if (((sw >> (sbit & 31)) & 1) != 0) {
        int dx = h - 1 - y;
        int dbit = x * h + dx;
        dst[dbit >> 5] = dst[dbit >> 5] | (1 << (dbit & 31));
        setbits = setbits + 1;
      }
    }
  }
  int check = 0;
  int i;
  for (i = 0; i < (w * h) / 32; i = i + 1) {
    check = check ^ (dst[i] * (i + 1));
  }
  return check ^ setbits;
}
|}
    (fun mem ->
      let w = 64 and h = 32 in
      let r = Data.rng 46 in
      Data.fill_ints mem ~addr:1024 ~n:(w * h / 32) (fun _ ->
          Int64.of_int (Data.next r 0x3FFFFFFF));
      [ Int64.of_int w; Int64.of_int h; 1024L; 16384L ])

(* text01: text scanning — character-class branches per byte. *)
let text01 =
  mk "text01" "text parsing: per-character classification, word/line counters"
    65536
    {|
kernel text01(int n, byte* text, int* counts) {
  int i;
  int inword = 0;
  int words = 0;
  int lines = 0;
  int digits = 0;
  int upper = 0;
  for (i = 0; i < n; i = i + 1) {
    int c = text[i] & 255;
    if (c == 10) {
      lines = lines + 1;
      inword = 0;
      continue;
    }
    if (c == 32 || c == 9) {
      inword = 0;
      continue;
    }
    if (c >= 48 && c <= 57) { digits = digits + 1; }
    if (c >= 65 && c <= 90) { upper = upper + 1; }
    if (inword == 0) {
      words = words + 1;
      inword = 1;
    }
    counts[c & 63] = counts[c & 63] + 1;
  }
  return words * 100000 + lines * 1000 + digits + upper;
}
|}
    (fun mem ->
      let n = 1800 in
      let r = Data.rng 47 in
      Data.fill_bytes mem ~addr:1024 ~n (fun _ ->
          let k = Data.next r 100 in
          if k < 15 then 32
          else if k < 18 then 10
          else if k < 28 then 48 + Data.next r 10
          else if k < 45 then 65 + Data.next r 26
          else 97 + Data.next r 26);
      [ Int64.of_int n; 1024L; 8192L ])
