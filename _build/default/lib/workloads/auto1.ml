(* EEMBC-automotive-style kernels, part 1 (see Workload for the
   substitution rationale). *)

let mk name description mem_size source setup =
  { Workload.name; description; source; mem_size; setup }

(* a2time01: angle-to-time conversion — tooth wheel timing with window
   checks; branchy arithmetic over a circular pulse buffer. *)
let a2time01 =
  mk "a2time01"
    "angle-to-time: pulse-train window checks and running phase correction"
    65536
    {|
kernel a2time01(int n, int* pulses, int* out, int tpr) {
  int i;
  int phase = 0;
  int last = 0;
  int errs = 0;
  for (i = 0; i < n; i = i + 1) {
    int dt = pulses[i] - last;
    last = pulses[i];
    if (dt <= 0) {
      errs = errs + 1;
      continue;
    }
    int angle = (dt * 360) / tpr;
    if (angle > 360) {
      angle = angle - 360;
      phase = phase + 1;
    }
    if (angle < 12) {
      out[i] = angle * 64;
    } else {
      if (angle < 180) {
        out[i] = angle * 32 + phase;
      } else {
        out[i] = angle * 16 - phase;
      }
    }
  }
  return errs * 1000000 + phase * 10000 + (out[n - 1] + out[1] & 8191);
}
|}
    (fun mem ->
      let n = 160 in
      let r = Data.rng 11 in
      let t = ref 0 in
      Data.fill_ints mem ~addr:1024 ~n (fun i ->
          (* occasional glitch pulses (dt <= 0) and slow teeth (phase
             wraps) exercise all three paths *)
          if i mod 23 = 22 then Int64.of_int !t
          else begin
            t := !t + (if i mod 11 = 10 then 900 else 40 + Data.next r 300);
            Int64.of_int !t
          end);
      [ Int64.of_int n; 1024L; 4096L; 713L ])

(* aifirf01: fixed-point FIR filter over a signal buffer. *)
let aifirf01 =
  mk "aifirf01" "fixed-point FIR filter, 16 taps, straight-line MAC loop"
    65536
    {|
kernel aifirf01(int n, int* sig, int* coef, int* out) {
  int i;
  int j;
  for (i = 16; i < n; i = i + 1) {
    int acc = 0;
    for (j = 0; j < 16; j = j + 1) {
      acc = acc + sig[i - j] * coef[j];
    }
    out[i] = acc >> 8;
  }
  return out[n - 1] + out[17];
}
|}
    (fun mem ->
      let n = 200 in
      let r = Data.rng 12 in
      Data.fill_ints mem ~addr:1024 ~n (fun _ ->
          Int64.of_int (Data.next_signed r 1000));
      Data.fill_ints mem ~addr:8192 ~n:16 (fun i ->
          Int64.of_int (((i * 7) mod 31) - 15));
      [ Int64.of_int n; 1024L; 8192L; 16384L ])

(* aifftr01 / aiifft01: decimation-in-time radix-2 FFT butterflies on
   fixed-point data, with a precomputed scaled twiddle table. The inverse
   variant conjugates and rescales. *)
let fft_source fname =
  Printf.sprintf
    {|
kernel %s(int n, int* re, int* im, int* wre, int* wim, int inverse) {
  int i;
  int j;
  int k;
  // bit-reversal permutation
  j = 0;
  for (i = 0; i < n - 1; i = i + 1) {
    if (i < j) {
      int tr = re[i]; re[i] = re[j]; re[j] = tr;
      int ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    k = n >> 1;
    while (k <= j) {
      j = j - k;
      k = k >> 1;
    }
    j = j + k;
  }
  // butterflies
  int len = 2;
  while (len <= n) {
    int half = len >> 1;
    int step = n / len;
    for (i = 0; i < n; i = i + len) {
      int w = 0;
      for (j = 0; j < half; j = j + 1) {
        int wr = wre[w];
        int wi = wim[w];
        if (inverse != 0) { wi = -wi; }
        int p = i + j;
        int q = p + half;
        int tr = (wr * re[q] - wi * im[q]) >> 10;
        int ti = (wr * im[q] + wi * re[q]) >> 10;
        re[q] = re[p] - tr;
        im[q] = im[p] - ti;
        re[p] = re[p] + tr;
        im[p] = im[p] + ti;
        w = w + step;
      }
    }
    len = len << 1;
  }
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    if (inverse != 0) {
      re[i] = re[i] / n;
      im[i] = im[i] / n;
    }
    acc = acc ^ re[i] ^ im[i];
  }
  return acc;
}
|}
    fname

let fft_setup ~inverse mem =
  let n = 64 in
  let r = Data.rng 13 in
  Data.fill_ints mem ~addr:1024 ~n (fun _ ->
      Int64.of_int (Data.next_signed r 512));
  Data.fill_ints mem ~addr:4096 ~n (fun _ ->
      Int64.of_int (Data.next_signed r 512));
  (* scaled twiddles: 1024*cos/sin(2*pi*k/n) *)
  Data.fill_ints mem ~addr:8192 ~n (fun k ->
      Int64.of_int
        (int_of_float (1024.0 *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n))));
  Data.fill_ints mem ~addr:12288 ~n (fun k ->
      Int64.of_int
        (int_of_float (-1024.0 *. sin (2.0 *. Float.pi *. float_of_int k /. float_of_int n))));
  [ Int64.of_int n; 1024L; 4096L; 8192L; 12288L; (if inverse then 1L else 0L) ]

let aifftr01 =
  mk "aifftr01" "64-point fixed-point radix-2 FFT (bit reversal + butterflies)"
    65536 (fft_source "aifftr01")
    (fft_setup ~inverse:false)

let aiifft01 =
  mk "aiifft01" "inverse FFT variant: conjugated twiddles and rescaling"
    65536 (fft_source "aiifft01")
    (fft_setup ~inverse:true)

(* basefp01: floating-point basic arithmetic with sign/range branches. *)
let basefp01 =
  mk "basefp01" "floating-point add/mul/div mix with range clamping branches"
    65536
    {|
kernel basefp01(int n, float* a, float* b, float* out) {
  int i;
  float acc = 0.0;
  for (i = 0; i < n; i = i + 1) {
    float x = a[i];
    float y = b[i];
    float r = 0.0;
    if (x > y) {
      r = x * y + acc;
    } else {
      if (y > 0.125) {
        r = x / y;
      } else {
        r = x - y * 2.0;
      }
    }
    if (r > 1000000.0) { r = 1000000.0; }
    if (r < -1000000.0) { r = -1000000.0; }
    out[i] = r;
    acc = acc * 0.5 + r;
  }
  return ftoi(acc);
}
|}
    (fun mem ->
      let n = 160 in
      let r = Data.rng 14 in
      Data.fill_floats mem ~addr:1024 ~n (fun _ ->
          float_of_int (Data.next_signed r 2000) /. 8.0);
      Data.fill_floats mem ~addr:4096 ~n (fun _ ->
          float_of_int (Data.next_signed r 2000) /. 16.0);
      [ Int64.of_int n; 1024L; 4096L; 8192L ])

(* bitmnp01: bit manipulation — per-bit tests and sets on a bitmap. *)
let bitmnp01 =
  mk "bitmnp01" "bit shuffling, per-bit branches, population counting"
    65536
    {|
kernel bitmnp01(int n, int* words, int* out) {
  int i;
  int bit;
  int pop = 0;
  for (i = 0; i < n; i = i + 1) {
    int w = words[i];
    int rev = 0;
    for (bit = 0; bit < 32; bit = bit + 1) {
      rev = rev << 1;
      if ((w & 1) != 0) {
        rev = rev | 1;
        pop = pop + 1;
      }
      w = w >> 1;
    }
    out[i] = rev;
  }
  return pop;
}
|}
    (fun mem ->
      let n = 48 in
      let r = Data.rng 15 in
      Data.fill_ints mem ~addr:1024 ~n (fun _ ->
          Int64.of_int (Data.next r 0x3FFFFFFF));
      [ Int64.of_int n; 1024L; 4096L ])

(* cacheb01: cache-buster — strided accesses over a large array. *)
let cacheb01 =
  mk "cacheb01" "strided streaming reads/writes designed to stress the D-cache"
    262144
    {|
kernel cacheb01(int n, int stride, int* buf) {
  int pass;
  int i;
  int sum = 0;
  for (pass = 0; pass < 4; pass = pass + 1) {
    i = pass;
    while (i < n) {
      sum = sum + buf[i];
      buf[i] = sum & 65535;
      i = i + stride;
    }
  }
  return sum;
}
|}
    (fun mem ->
      let n = 16384 in
      Data.fill_ints mem ~addr:8192 ~n:512 (fun i -> Int64.of_int (i * 3));
      [ Int64.of_int n; 257L; 8192L ])

(* canrdr01: CAN remote data request — byte-stream frame parsing. *)
let canrdr01 =
  mk "canrdr01" "CAN frame parsing: byte classification and dispatch"
    65536
    {|
kernel canrdr01(int n, byte* stream, int* counts) {
  int i = 0;
  int frames = 0;
  int errors = 0;
  while (i < n - 4) {
    int id = stream[i] & 255;
    int dlc = stream[i + 1] & 15;
    if (id == 127) {
      errors = errors + 1;
      i = i + 1;
      continue;
    }
    if (dlc > 8) {
      errors = errors + 1;
      i = i + 2;
      continue;
    }
    int kind = id >> 5;
    counts[kind] = counts[kind] + 1;
    if ((stream[i + 2] & 64) != 0) {
      counts[kind + 8] = counts[kind + 8] + dlc;
    }
    frames = frames + 1;
    i = i + 2 + dlc;
  }
  return frames * 100 + errors;
}
|}
    (fun mem ->
      let n = 1600 in
      let r = Data.rng 16 in
      Data.fill_bytes mem ~addr:1024 ~n (fun _ -> Data.next r 256);
      [ Int64.of_int n; 1024L; 8192L ])

(* idctrn01: 8x8 integer inverse DCT (row/column passes). *)
let idctrn01 =
  mk "idctrn01" "8x8 integer IDCT: row and column butterfly passes"
    65536
    {|
kernel idctrn01(int nblocks, int* blocks, int* coef) {
  int b;
  int i;
  int j;
  int k;
  int check = 0;
  for (b = 0; b < nblocks; b = b + 1) {
    int base = b * 64;
    // row pass
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        int acc = 0;
        for (k = 0; k < 8; k = k + 1) {
          acc = acc + blocks[base + i * 8 + k] * coef[k * 8 + j];
        }
        blocks[base + i * 8 + j] = acc >> 11;
      }
    }
    // clamp pass
    for (i = 0; i < 64; i = i + 1) {
      int v = blocks[base + i];
      if (v > 255) { v = 255; }
      if (v < -256) { v = -256; }
      blocks[base + i] = v;
      check = check ^ v;
    }
  }
  return check;
}
|}
    (fun mem ->
      let nblocks = 4 in
      let r = Data.rng 17 in
      Data.fill_ints mem ~addr:1024 ~n:(64 * nblocks) (fun _ ->
          Int64.of_int (Data.next_signed r 1024));
      Data.fill_ints mem ~addr:8192 ~n:64 (fun k ->
          Int64.of_int
            (int_of_float
               (2048.0
               *. cos (Float.pi *. float_of_int ((2 * (k / 8)) + 1) *. float_of_int (k mod 8) /. 16.0))));
      [ Int64.of_int nblocks; 1024L; 8192L ])
