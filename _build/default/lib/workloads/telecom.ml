(* EEMBC-telecom-style kernels. *)

let mk name description mem_size source setup =
  { Workload.name; description; source; mem_size; setup }

(* autcor00: autocorrelation of a fixed-point signal. The paper singles
   this benchmark out as benefiting from path-sensitive predicate
   removal. *)
let autcor00 =
  mk "autcor00" "autocorrelation over a signal, lag loop nest"
    65536
    {|
kernel autcor00(int n, int nlags, int* sig, int* out) {
  int lag;
  int i;
  for (lag = 0; lag < nlags; lag = lag + 1) {
    int acc = 0;
    for (i = 0; i < n - lag; i = i + 1) {
      acc = acc + ((sig[i] * sig[i + lag]) >> 4);
    }
    out[lag] = acc;
  }
  int peak = 0;
  for (lag = 1; lag < nlags; lag = lag + 1) {
    if (out[lag] > out[peak]) { peak = lag; }
  }
  return peak * 1000000 + out[peak] % 1000000;
}
|}
    (fun mem ->
      let n = 256 in
      let r = Data.rng 31 in
      Data.fill_ints mem ~addr:1024 ~n (fun i ->
          Int64.of_int
            (int_of_float (200.0 *. sin (float_of_int i /. 6.5))
            + Data.next_signed r 40));
      [ Int64.of_int n; 16L; 1024L; 8192L ])

(* conven00: convolutional encoder — shift register + parity taps. Also
   called out in the paper for the inter optimization. *)
let conven00 =
  mk "conven00" "convolutional encoder: shift register, parity taps, bit output"
    65536
    {|
kernel conven00(int n, byte* bits, byte* out) {
  int i;
  int state = 0;
  int obit = 0;
  for (i = 0; i < n; i = i + 1) {
    state = ((state << 1) | (bits[i] & 1)) & 63;
    // generator polynomials 0x2D and 0x3B over the 6-bit state
    int g0 = state & 45;
    int g1 = state & 59;
    int p0 = 0;
    int p1 = 0;
    while (g0 != 0) {
      p0 = p0 ^ (g0 & 1);
      g0 = g0 >> 1;
    }
    while (g1 != 0) {
      p1 = p1 ^ (g1 & 1);
      g1 = g1 >> 1;
    }
    out[obit] = p0;
    out[obit + 1] = p1;
    obit = obit + 2;
  }
  int check = 0;
  for (i = 0; i < obit; i = i + 1) {
    check = (check * 2 + out[i]) % 65521;
  }
  return check;
}
|}
    (fun mem ->
      let n = 400 in
      let r = Data.rng 32 in
      Data.fill_bytes mem ~addr:1024 ~n (fun _ -> Data.next r 2);
      [ Int64.of_int n; 1024L; 8192L ])

(* fbital00: bit allocation by water-filling over carrier SNRs. *)
let fbital00 =
  mk "fbital00" "bit allocation: water-filling loop with per-carrier branches"
    65536
    {|
kernel fbital00(int ncarriers, int budget, int* snr, int* bits) {
  int i;
  int allocated = 0;
  int threshold = 256;
  while (allocated < budget && threshold > 0) {
    allocated = 0;
    for (i = 0; i < ncarriers; i = i + 1) {
      int b = snr[i] / threshold;
      if (b > 15) { b = 15; }
      bits[i] = b;
      allocated = allocated + b;
    }
    threshold = threshold - 8;
  }
  int check = 0;
  for (i = 0; i < ncarriers; i = i + 1) {
    check = check + bits[i] * (i + 1);
  }
  return check;
}
|}
    (fun mem ->
      let n = 64 in
      let r = Data.rng 33 in
      Data.fill_ints mem ~addr:1024 ~n (fun _ ->
          Int64.of_int (100 + Data.next r 4000));
      [ Int64.of_int n; 600L; 1024L; 8192L ])

(* fft00: 128-point fixed-point FFT (telecom variant of aifftr01). *)
let fft00 =
  mk "fft00" "128-point fixed-point FFT, telecom data set"
    131072 (Auto1.fft_source "fft00")
    (fun mem ->
      let n = 128 in
      let r = Data.rng 34 in
      Data.fill_ints mem ~addr:1024 ~n (fun i ->
          Int64.of_int
            (int_of_float (300.0 *. cos (float_of_int i /. 3.0))
            + Data.next_signed r 64));
      Data.fill_ints mem ~addr:4096 ~n (fun _ -> 0L);
      Data.fill_ints mem ~addr:8192 ~n (fun k ->
          Int64.of_int
            (int_of_float
               (1024.0 *. cos (2.0 *. Float.pi *. float_of_int k /. float_of_int n))));
      Data.fill_ints mem ~addr:16384 ~n (fun k ->
          Int64.of_int
            (int_of_float
               (-1024.0 *. sin (2.0 *. Float.pi *. float_of_int k /. float_of_int n))));
      [ Int64.of_int n; 1024L; 4096L; 8192L; 16384L; 0L ])

(* viterb00: Viterbi decoder — add-compare-select butterflies, the
   canonical predication workload. *)
let viterb00 =
  mk "viterb00" "Viterbi decode: add-compare-select with survivor tracking"
    131072
    {|
kernel viterb00(int nsym, byte* obs, int* metrics, int* next_metrics, int* survivors) {
  int t;
  int s;
  int i;
  for (i = 0; i < 16; i = i + 1) { metrics[i] = 1000; }
  metrics[0] = 0;
  for (t = 0; t < nsym; t = t + 1) {
    int ob = obs[t * 2] * 2 + obs[t * 2 + 1];
    for (s = 0; s < 16; s = s + 1) {
      // predecessors of state s in a K=5 trellis
      int p0 = (s << 1) & 15;
      int p1 = p0 | 1;
      // expected symbols (toy generator: parity patterns)
      int e0 = (p0 ^ (p0 >> 2)) & 3;
      int e1 = (p1 ^ (p1 >> 2)) & 3;
      int d0 = ob ^ e0;
      int cost0 = ((d0 >> 1) & 1) + (d0 & 1);
      int d1 = ob ^ e1;
      int cost1 = ((d1 >> 1) & 1) + (d1 & 1);
      int m0 = metrics[p0] + cost0;
      int m1 = metrics[p1] + cost1;
      if (m0 <= m1) {
        next_metrics[s] = m0;
        survivors[t * 16 + s] = p0;
      } else {
        next_metrics[s] = m1;
        survivors[t * 16 + s] = p1;
      }
    }
    for (s = 0; s < 16; s = s + 1) { metrics[s] = next_metrics[s]; }
  }
  // traceback from the best final state
  int best = 0;
  for (s = 1; s < 16; s = s + 1) {
    if (metrics[s] < metrics[best]) { best = s; }
  }
  int path = 0;
  t = nsym - 1;
  while (t >= 0) {
    path = (path * 31 + best) % 65521;
    best = survivors[t * 16 + best];
    t = t - 1;
  }
  return metrics[0] * 1000000 + path;
}
|}
    (fun mem ->
      let nsym = 120 in
      let r = Data.rng 35 in
      Data.fill_bytes mem ~addr:1024 ~n:(nsym * 2) (fun _ -> Data.next r 2);
      [ Int64.of_int nsym; 1024L; 4096L; 6144L; 16384L ])
