(* EEMBC-automotive-style kernels, part 2. *)

let mk name description mem_size source setup =
  { Workload.name; description; source; mem_size; setup }

(* iirflt01: cascaded direct-form-II biquads with saturation branches. *)
let iirflt01 =
  mk "iirflt01" "IIR biquad cascade with per-sample saturation branches"
    65536
    {|
kernel iirflt01(int n, int* sig, int* coef, int* out) {
  int i;
  int s;
  int d10 = 0; int d20 = 0;
  int d11 = 0; int d21 = 0;
  for (i = 0; i < n; i = i + 1) {
    int x = sig[i];
    // stage 0
    int w = x - ((coef[0] * d10) >> 12) - ((coef[1] * d20) >> 12);
    int y = ((coef[2] * w) >> 12) + ((coef[3] * d10) >> 12) + ((coef[4] * d20) >> 12);
    d20 = d10;
    d10 = w;
    // stage 1
    w = y - ((coef[5] * d11) >> 12) - ((coef[6] * d21) >> 12);
    s = ((coef[7] * w) >> 12) + ((coef[8] * d11) >> 12) + ((coef[9] * d21) >> 12);
    d21 = d11;
    d11 = w;
    if (s > 32767) { s = 32767; }
    if (s < -32768) { s = -32768; }
    out[i] = s;
  }
  return out[0] ^ out[n - 1] ^ out[n / 2];
}
|}
    (fun mem ->
      let n = 256 in
      let r = Data.rng 21 in
      Data.fill_ints mem ~addr:1024 ~n (fun i ->
          Int64.of_int
            (int_of_float (3000.0 *. sin (float_of_int i /. 5.0))
            + Data.next_signed r 200));
      Data.fill_ints mem ~addr:8192 ~n:10 (fun i ->
          Int64.of_int (List.nth [ -7000; 2200; 900; 1800; 900; -6600; 2000; 1000; 2000; 1000 ] i));
      [ Int64.of_int n; 1024L; 8192L; 16384L ])

(* matrix01: small dense matrix multiply and trace. *)
let matrix01 =
  mk "matrix01" "dense integer matrix multiply (12x12) plus diagonal checks"
    65536
    {|
kernel matrix01(int n, int* a, int* b, int* c) {
  int i;
  int j;
  int k;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      int acc = 0;
      for (k = 0; k < n; k = k + 1) {
        acc = acc + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
  int trace = 0;
  for (i = 0; i < n; i = i + 1) {
    if (c[i * n + i] > 0) {
      trace = trace + c[i * n + i];
    } else {
      trace = trace - c[i * n + i];
    }
  }
  return trace;
}
|}
    (fun mem ->
      let n = 12 in
      let r = Data.rng 22 in
      Data.fill_ints mem ~addr:1024 ~n:(n * n) (fun _ ->
          Int64.of_int (Data.next_signed r 50));
      Data.fill_ints mem ~addr:4096 ~n:(n * n) (fun _ ->
          Int64.of_int (Data.next_signed r 50));
      [ Int64.of_int n; 1024L; 4096L; 8192L ])

(* pntrch01: pointer chasing through a linked structure in memory. *)
let pntrch01 =
  mk "pntrch01" "pointer chasing: next-offset traversal with match tests"
    65536
    {|
kernel pntrch01(int head, int* heap, int target, int maxsteps) {
  int cur = head;
  int steps = 0;
  int found = 0;
  while (cur != -1 && steps < maxsteps) {
    int value = heap[cur];
    if (value == target) {
      found = found + 1;
    }
    cur = heap[cur + 1];
    steps = steps + 1;
  }
  return found * 10000 + steps;
}
|}
    (fun mem ->
      (* nodes: [value; next_index], a shuffled singly linked list *)
      let nodes = 400 in
      let r = Data.rng 23 in
      let perm = Array.init nodes (fun i -> i) in
      for i = nodes - 1 downto 1 do
        let j = Data.next r (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      for i = 0 to nodes - 1 do
        let self = perm.(i) * 2 in
        let next = if i = nodes - 1 then -1 else perm.(i + 1) * 2 in
        Edge_isa.Mem.store_int mem (1024 + (8 * self)) (Int64.of_int (Data.next r 97));
        Edge_isa.Mem.store_int mem (1024 + (8 * (self + 1))) (Int64.of_int next)
      done;
      [ Int64.of_int (perm.(0) * 2); 1024L; 42L; 600L ])

(* puwmod01: pulse-width modulation state machine. *)
let puwmod01 =
  mk "puwmod01" "PWM: duty-cycle counters with threshold and wrap branches"
    65536
    {|
kernel puwmod01(int n, int* duty, int period, int* edges) {
  int t;
  int ch;
  int counter = 0;
  int nedges = 0;
  for (t = 0; t < n; t = t + 1) {
    counter = counter + 1;
    if (counter >= period) { counter = 0; }
    for (ch = 0; ch < 4; ch = ch + 1) {
      int d = duty[ch];
      int high = 0;
      if (counter < d) { high = 1; }
      int prev = edges[ch] & 1;
      if (high != prev) {
        edges[ch] = (edges[ch] | 1) ^ prev;
        edges[4 + ch] = edges[4 + ch] + 1;
        nedges = nedges + 1;
      }
    }
  }
  return nedges;
}
|}
    (fun mem ->
      Data.fill_ints mem ~addr:1024 ~n:4 (fun i ->
          Int64.of_int (List.nth [ 13; 37; 64; 90 ] i));
      [ 1200L; 1024L; 100L; 4096L ])

(* rspeed01: road-speed from timer captures; plausibility filtering. *)
let rspeed01 =
  mk "rspeed01" "road speed: timer-delta filtering with plausibility branches"
    65536
    {|
kernel rspeed01(int n, int* captures, int* out) {
  int i;
  int last = 0;
  int speed = 0;
  int rejects = 0;
  for (i = 0; i < n; i = i + 1) {
    int c = captures[i];
    int dt = c - last;
    last = c;
    if (dt < 10) {
      rejects = rejects + 1;
      continue;
    }
    int s = 360000 / dt;
    if (s > 250) {
      rejects = rejects + 1;
      continue;
    }
    // exponential smoothing in integer arithmetic
    speed = (speed * 7 + s) >> 3;
    out[i] = speed;
  }
  return speed * 1000 + rejects;
}
|}
    (fun mem ->
      let n = 300 in
      let r = Data.rng 25 in
      let t = ref 100 in
      Data.fill_ints mem ~addr:1024 ~n (fun i ->
          t := !t + (if i mod 17 = 0 then 3 else 1500 + Data.next r 2000);
          Int64.of_int !t);
      [ Int64.of_int n; 1024L; 8192L ])

(* tblook01: table lookup with linear interpolation. *)
let tblook01 =
  mk "tblook01" "table lookup and interpolation with boundary branches"
    65536
    {|
kernel tblook01(int n, int* keys, int* xs, int* ys, int tlen) {
  int i;
  int acc = 0;
  for (i = 0; i < n; i = i + 1) {
    int k = keys[i];
    if (k <= xs[0]) {
      acc = acc + ys[0];
      continue;
    }
    if (k >= xs[tlen - 1]) {
      acc = acc + ys[tlen - 1];
      continue;
    }
    // binary search for the bracketing segment
    int lo = 0;
    int hi = tlen - 1;
    while (hi - lo > 1) {
      int mid = (lo + hi) >> 1;
      if (xs[mid] <= k) { lo = mid; } else { hi = mid; }
    }
    int x0 = xs[lo];
    int x1 = xs[hi];
    int y0 = ys[lo];
    int y1 = ys[hi];
    int dy = y1 - y0;
    int dx = x1 - x0;
    if (dx == 0) { dx = 1; }
    acc = acc + y0 + (dy * (k - x0)) / dx;
  }
  return acc;
}
|}
    (fun mem ->
      let tlen = 33 in
      let n = 250 in
      let r = Data.rng 26 in
      Data.fill_ints mem ~addr:1024 ~n (fun _ ->
          Int64.of_int (Data.next r 3300));
      Data.fill_ints mem ~addr:8192 ~n:tlen (fun i -> Int64.of_int (i * 100));
      Data.fill_ints mem ~addr:12288 ~n:tlen (fun i ->
          Int64.of_int ((i * i * 3) - (i * 40)));
      [ Int64.of_int n; 1024L; 8192L; 12288L; Int64.of_int tlen ])

(* ttsprk01: tooth-to-spark — nested angle window logic per cylinder. *)
let ttsprk01 =
  mk "ttsprk01" "tooth-to-spark: per-cylinder angle windows, dwell control"
    65536
    {|
kernel ttsprk01(int n, int* teeth, int* dwell, int* spark) {
  int i;
  int cyl = 0;
  int fired = 0;
  int dw = 0;
  for (i = 0; i < n; i = i + 1) {
    int angle = teeth[i] % 720;
    int base = cyl * 180;
    int adv = dwell[cyl];
    if (angle >= base && angle < base + 90) {
      if (angle >= base + 90 - adv) {
        dw = dw + 1;
        if (angle >= base + 88) {
          spark[cyl] = spark[cyl] + 1;
          fired = fired + 1;
          cyl = (cyl + 1) & 3;
        }
      }
    } else {
      if (angle >= base + 90) {
        cyl = (cyl + 1) & 3;
      }
    }
  }
  return fired * 1000 + dw;
}
|}
    (fun mem ->
      let n = 700 in
      Data.fill_ints mem ~addr:1024 ~n (fun i -> Int64.of_int (i * 6));
      Data.fill_ints mem ~addr:8192 ~n:4 (fun i ->
          Int64.of_int (List.nth [ 20; 35; 10; 25 ] i));
      [ Int64.of_int n; 1024L; 8192L; 12288L ])
