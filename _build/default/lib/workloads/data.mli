(** Deterministic synthetic input data (a fixed linear congruential
    generator), standing in for the EEMBC input sets. *)

type rng

val rng : int -> rng
val next : rng -> int -> int
(** [next r bound] is uniform in [0, bound). *)

val next_signed : rng -> int -> int
(** Uniform in (-bound, bound). *)

val fill_ints : Edge_isa.Mem.t -> addr:int -> n:int -> (int -> int64) -> unit
val fill_i32 : Edge_isa.Mem.t -> addr:int -> n:int -> (int -> int32) -> unit
val fill_bytes : Edge_isa.Mem.t -> addr:int -> n:int -> (int -> int) -> unit
val fill_floats : Edge_isa.Mem.t -> addr:int -> n:int -> (int -> float) -> unit
