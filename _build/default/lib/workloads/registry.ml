let eembc =
  [
    Auto1.a2time01;
    Auto1.aifftr01;
    Auto1.aifirf01;
    Auto1.aiifft01;
    Telecom.autcor00;
    Auto1.basefp01;
    Netoffice.bezier01;
    Auto1.bitmnp01;
    Auto1.cacheb01;
    Auto1.canrdr01;
    Telecom.conven00;
    Netoffice.dither01;
    Telecom.fbital00;
    Telecom.fft00;
    Auto1.idctrn01;
    Auto2.iirflt01;
    Auto2.matrix01;
    Netoffice.ospf;
    Netoffice.pktflow;
    Auto2.pntrch01;
    Auto2.puwmod01;
    Netoffice.rotate01;
    Netoffice.routelookup;
    Auto2.rspeed01;
    Auto2.tblook01;
    Netoffice.text01;
    Auto2.ttsprk01;
    Telecom.viterb00;
  ]

let genalg = Genalg.workload
let all = eembc @ [ genalg ]

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all

let names () = List.map (fun w -> w.Workload.name) all
