(** All workloads, in the presentation order of the paper's Figure 7. *)

val eembc : Workload.t list
(** The 28 EEMBC-named kernels. *)

val genalg : Workload.t
val all : Workload.t list
val find : string -> Workload.t option
val names : unit -> string list
