(* The genalg kernel of the paper's Section 5.3 / Figure 6: the
   roulette-wheel selection loop of a genetic algorithm (originally from
   an MIT Lincoln Laboratories application):

     for (x = c; rx > 0.0 && x < pop-1; x++, p_fitness++)
         rx -= *p_fitness;

   The short-circuit loop condition produces the predicate-AND chain of
   Figure 6b, and x / rx / p_fitness live past the loop, producing the
   guarded live-out moves of Figure 6c that instruction merging
   collapses (Figure 6d). The kernel below embeds the loop in the
   surrounding selection context: for each of [ntrials] spins it picks an
   individual by walking the fitness array. *)

let source =
  {|
kernel genalg(int pop, int ntrials, float* fitness, int* picks, float* spins) {
  int t;
  int total_x = 0;
  for (t = 0; t < ntrials; t = t + 1) {
    float rx = spins[t];
    int c = t % 4;
    int x = c;
    // Figure 6a, verbatim modulo syntax: p_fitness walks fitness[x]
    while (rx > 0.0 && x < pop - 1) {
      rx = rx - fitness[x];
      x = x + 1;
    }
    picks[t] = x;
    total_x = total_x + x;
  }
  return total_x;
}
|}

let workload =
  {
    Workload.name = "genalg";
    description =
      "Figure 6 roulette-wheel selection loop (genetic algorithm), \
       short-circuit exit condition with live-out x/rx/p_fitness";
    source;
    mem_size = 65536;
    setup =
      (fun mem ->
        let pop = 48 in
        let ntrials = 64 in
        let r = Data.rng 55 in
        Data.fill_floats mem ~addr:1024 ~n:pop (fun _ ->
            float_of_int (1 + Data.next r 100) /. 10.0);
        Data.fill_floats mem ~addr:8192 ~n:ntrials (fun _ ->
            float_of_int (Data.next r 2000) /. 10.0);
        [ Int64.of_int pop; Int64.of_int ntrials; 1024L; 4096L; 8192L ]);
  }
