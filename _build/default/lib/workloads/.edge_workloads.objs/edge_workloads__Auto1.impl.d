lib/workloads/auto1.ml: Data Float Int64 Printf Workload
