lib/workloads/registry.ml: Auto1 Auto2 Genalg List Netoffice String Telecom Workload
