lib/workloads/data.ml: Edge_isa Int64
