lib/workloads/workload.mli: Edge_isa Edge_lang
