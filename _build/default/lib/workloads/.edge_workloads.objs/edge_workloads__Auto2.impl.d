lib/workloads/auto2.ml: Array Data Edge_isa Int64 List Workload
