lib/workloads/workload.ml: Edge_isa Edge_lang Printf
