lib/workloads/telecom.ml: Auto1 Data Float Int64 Workload
