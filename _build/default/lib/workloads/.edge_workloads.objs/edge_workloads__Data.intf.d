lib/workloads/data.mli: Edge_isa
