lib/workloads/genalg.ml: Data Int64 Workload
