lib/workloads/netoffice.ml: Array Data Int32 Int64 List Workload
