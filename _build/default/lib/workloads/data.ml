type rng = int64 ref

let rng seed = ref (Int64.of_int ((seed * 2654435761) land 0x7FFFFFFF))

let step r =
  r := Int64.logand (Int64.add (Int64.mul !r 6364136223846793005L) 1442695040888963407L) Int64.max_int;
  Int64.to_int (Int64.shift_right_logical !r 33)

let next r bound = if bound <= 0 then 0 else step r mod bound
let next_signed r bound = next r (2 * bound) - bound

let fill_ints mem ~addr ~n f =
  for i = 0 to n - 1 do
    Edge_isa.Mem.store_int mem (addr + (8 * i)) (f i)
  done

let fill_i32 mem ~addr ~n f =
  for i = 0 to n - 1 do
    match
      Edge_isa.Mem.store mem ~width:Edge_isa.Opcode.W4
        ~addr:(Int64.of_int (addr + (4 * i)))
        (Int64.of_int32 (f i))
    with
    | Ok () -> ()
    | Error () -> invalid_arg "Data.fill_i32"
  done

let fill_bytes mem ~addr ~n f =
  for i = 0 to n - 1 do
    match
      Edge_isa.Mem.store mem ~width:Edge_isa.Opcode.W1
        ~addr:(Int64.of_int (addr + i))
        (Int64.of_int (f i land 0xFF))
    with
    | Ok () -> ()
    | Error () -> invalid_arg "Data.fill_bytes"
  done

let fill_floats mem ~addr ~n f =
  for i = 0 to n - 1 do
    Edge_isa.Mem.store_float mem (addr + (8 * i)) (f i)
  done
