type entry = {
  bench : string;
  variant : string;
  cycles : int;
  baseline_cycles : int;
}

let default_benches =
  [ "a2time01"; "autcor00"; "conven00"; "matrix01"; "rotate01"; "viterb00" ]

let variants =
  [
    ( "no-early-termination",
      ( { Edge_sim.Machine.default with Edge_sim.Machine.early_termination = false },
        Dfp.Config.both ) );
    ( "in-order-memory",
      ( { Edge_sim.Machine.default with Edge_sim.Machine.aggressive_loads = false },
        Dfp.Config.both ) );
    ( "mov4-fanout",
      ( Edge_sim.Machine.default,
        { Dfp.Config.both with Dfp.Config.use_mov4 = true } ) );
    ( "merge",
      (Edge_sim.Machine.default, Dfp.Config.merge) );
    ( "no-unroll",
      ( Edge_sim.Machine.default,
        { Dfp.Config.both with Dfp.Config.max_unroll = 1 } ) );
    ("sand", (Edge_sim.Machine.default, Dfp.Config.sand));
  ]

let run ?(benches = default_benches) () =
  let errors = ref [] in
  let entries = ref [] in
  List.iter
    (fun name ->
      match Edge_workloads.Registry.find name with
      | None -> errors := (name, "unknown workload") :: !errors
      | Some w -> (
          match Experiment.run_one w ("Both", Dfp.Config.both) with
          | Error e -> errors := (name, e) :: !errors
          | Ok base ->
              List.iter
                (fun (vname, (machine, config)) ->
                  match Experiment.run_one ~machine w (vname, config) with
                  | Error e -> errors := (name ^ "/" ^ vname, e) :: !errors
                  | Ok r ->
                      entries :=
                        {
                          bench = name;
                          variant = vname;
                          cycles = r.Experiment.cycles;
                          baseline_cycles = base.Experiment.cycles;
                        }
                        :: !entries)
                variants))
    benches;
  (List.rev !entries, List.rev !errors)

let pp ppf entries =
  let open Format in
  fprintf ppf "@[<v>ablations (cycles relative to Both on the default machine)@,@,";
  fprintf ppf "%-12s %-22s %10s %10s %8s@," "benchmark" "variant" "cycles"
    "baseline" "ratio";
  List.iter
    (fun e ->
      fprintf ppf "%-12s %-22s %10d %10d %8.2f@," e.bench e.variant e.cycles
        e.baseline_cycles
        (float_of_int e.cycles /. float_of_int e.baseline_cycles))
    entries;
  fprintf ppf "@]"
