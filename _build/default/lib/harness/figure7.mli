(** The Figure 7 experiment: speedup of BB / Intra / Inter / Both over
    the hyperblock baseline across the 28 EEMBC-style benchmarks, plus
    the Section 6 dynamic-statistics deltas (moves, total instructions,
    blocks) for the intra configuration. *)

type row = {
  bench : string;
  cycles : (string * int) list;  (** per config *)
  speedups : (string * float) list;  (** vs Hyper *)
}

type result = {
  rows : row list;
  mean_speedups : (string * float) list;  (** geometric mean per config *)
  move_reduction : float;  (** Intra vs Hyper, dynamic moves, fraction *)
  instr_reduction : float;  (** Intra vs Hyper, dynamic instructions *)
  block_reduction : float;  (** Intra vs Hyper, dynamic blocks *)
  errors : (string * string) list;
}

val run :
  ?machine:Edge_sim.Machine.t ->
  ?benches:Edge_workloads.Workload.t list ->
  ?progress:(string -> unit) ->
  unit ->
  result

val pp : Format.formatter -> result -> unit
(** Renders the table and an ASCII rendition of the Figure 7 bars. *)
