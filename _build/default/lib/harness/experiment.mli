(** Running one workload under one compiler configuration.

    Every run is verified three ways before its numbers count: the
    reference interpreter, the functional dataflow executor and the cycle
    simulator must produce identical return values and final memory
    images. *)

type run = {
  workload : string;
  config : string;
  cycles : int;
  stats : Edge_sim.Stats.t;
  static_instrs : int;
  static_blocks : int;
  static_fanout_moves : int;
  explicit_predicates : int;
}

val run_one :
  ?machine:Edge_sim.Machine.t ->
  Edge_workloads.Workload.t ->
  string * Dfp.Config.t ->
  (run, string) result

val compile :
  Edge_workloads.Workload.t ->
  Dfp.Config.t ->
  (Dfp.Driver.compiled, string) result
