lib/harness/experiment.mli: Dfp Edge_sim Edge_workloads
