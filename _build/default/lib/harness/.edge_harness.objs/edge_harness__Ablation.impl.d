lib/harness/ablation.ml: Dfp Edge_sim Edge_workloads Experiment Format List
