lib/harness/figure7.mli: Edge_sim Edge_workloads Format
