lib/harness/experiment.ml: Array Dfp Edge_isa Edge_lang Edge_sim Edge_workloads Int64 List Option Printf Result
