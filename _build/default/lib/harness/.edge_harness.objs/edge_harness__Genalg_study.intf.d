lib/harness/genalg_study.mli: Edge_sim Format
