lib/harness/genalg_study.ml: Dfp Edge_sim Edge_workloads Experiment Format Result
