lib/harness/ablation.mli: Format
