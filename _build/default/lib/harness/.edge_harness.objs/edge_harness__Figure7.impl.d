lib/harness/figure7.ml: Dfp Edge_sim Edge_workloads Experiment Format Hashtbl List Option String
