(** The tiled topology of the microarchitecture: a 4×4 grid of execution
    tiles with 8 reservation-station slots each (128 instructions), the
    register tiles along the top edge and the data tiles along the left
    edge. Operand routing costs one cycle per hop (Section 6). *)

val rows : int
val cols : int
val num_tiles : int
val slots_per_tile : int
val tile_row : int -> int
val tile_col : int -> int

val hops : int -> int -> int
(** Manhattan distance between two execution tiles. *)

val reg_access_hops : int -> int
(** Distance from a tile to the register file edge. *)

val mem_access_hops : int -> int
(** Distance from a tile to the data-tile edge. *)
