(** Graphviz rendering of a block's dataflow graph.

    Instructions are nodes; target arcs are edges, with predicate arcs
    drawn dashed (the paper's figures draw predicates as dashed or
    annotated arcs). Reads enter from the top, writes and exits sink at
    the bottom. *)

val block_to_dot : Block.t -> string
val program_to_dot : Program.t -> string
