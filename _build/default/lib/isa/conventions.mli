(** Software conventions shared by the compiler, simulators and harness. *)

val num_regs : int
(** 128 architectural registers, g0..g127. *)

val result_reg : int
(** g1 receives the kernel's return value. *)

val param_reg : int -> int
(** [param_reg i] is the register holding the i-th kernel parameter
    (g2, g3, ...). *)

val first_alloc_reg : int
(** First register available to the cross-block allocator. *)
