let esc s = String.concat "\\\"" (String.split_on_char '"' s)

let block_body buf prefix (b : Block.t) =
  let p fmt = Printf.bprintf buf fmt in
  Array.iter
    (fun (r : Block.read) ->
      p "  %sR%d [shape=invhouse,label=\"read g%d\"];\n" prefix r.Block.rslot
        r.Block.reg;
      List.iter
        (fun tgt ->
          match tgt with
          | Target.To_instr { id; slot } ->
              p "  %sR%d -> %sI%d [%s];\n" prefix r.Block.rslot prefix id
                (match slot with
                | Target.Pred -> "style=dashed,label=\"p\""
                | Target.Left -> "label=\"l\""
                | Target.Right -> "label=\"r\"")
          | Target.To_write w -> p "  %sR%d -> %sW%d;\n" prefix r.Block.rslot prefix w)
        r.Block.rtargets)
    b.Block.reads;
  Array.iter
    (fun (i : Instr.t) ->
      let label =
        let base = Opcode.mnemonic i.Instr.opcode in
        let base =
          match i.Instr.pred with
          | Instr.Unpredicated -> base
          | Instr.If_true -> base ^ "_t"
          | Instr.If_false -> base ^ "_f"
        in
        if Opcode.has_immediate i.Instr.opcode then
          Printf.sprintf "%s #%Ld" base i.Instr.imm
        else base
      in
      let shape =
        match i.Instr.opcode with
        | Opcode.Bro | Opcode.Halt -> "cds"
        | Opcode.St _ -> "house"
        | Opcode.Null -> "octagon"
        | _ -> "box"
      in
      p "  %sI%d [shape=%s,label=\"I%d %s\"%s];\n" prefix i.Instr.id shape
        i.Instr.id (esc label)
        (if Instr.is_predicated i then ",style=filled,fillcolor=lightgrey"
         else "");
      List.iter
        (fun tgt ->
          match tgt with
          | Target.To_instr { id; slot } ->
              p "  %sI%d -> %sI%d [%s];\n" prefix i.Instr.id prefix id
                (match slot with
                | Target.Pred -> "style=dashed,label=\"p\""
                | Target.Left -> "label=\"l\""
                | Target.Right -> "label=\"r\"")
          | Target.To_write w -> p "  %sI%d -> %sW%d;\n" prefix i.Instr.id prefix w)
        i.Instr.targets)
    b.Block.instrs;
  Array.iter
    (fun (w : Block.write) ->
      p "  %sW%d [shape=house,label=\"write g%d\"];\n" prefix w.Block.wslot
        w.Block.wreg)
    b.Block.writes

let block_to_dot b =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "digraph \"%s\" {\n  rankdir=TB;\n" (esc b.Block.name);
  block_body buf "" b;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let program_to_dot (pr : Program.t) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "digraph program {\n  rankdir=TB;\n  compound=true;\n";
  List.iteri
    (fun i (name, b) ->
      Printf.bprintf buf "  subgraph cluster_%d {\n    label=\"%s\";\n" i
        (esc name);
      block_body buf (Printf.sprintf "b%d_" i) b;
      Buffer.add_string buf "  }\n")
    pr.Program.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
