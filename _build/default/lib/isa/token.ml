type t = { payload : int64; null : bool; exc : bool }

let of_int64 payload = { payload; null = false; exc = false }
let of_int i = of_int64 (Int64.of_int i)
let of_float f = of_int64 (Int64.bits_of_float f)
let to_float t = Int64.float_of_bits t.payload
let null_token = { payload = 0L; null = true; exc = false }
let with_exc t = { t with exc = true }
let true_predicate = of_int64 1L
let false_predicate = of_int64 0L

let as_predicate t =
  if t.exc then false else Int64.logand t.payload 1L <> 0L

let taint a b =
  { b with null = a.null || b.null; exc = a.exc || b.exc }

let equal a b = a.payload = b.payload && a.null = b.null && a.exc = b.exc

let pp ppf t =
  Format.fprintf ppf "%Ld%s%s" t.payload
    (if t.null then "[null]" else "")
    (if t.exc then "[exc]" else "")
