type slot = Left | Right | Pred

type t = To_instr of { id : int; slot : slot } | To_write of int

let slot_equal (a : slot) (b : slot) = a = b
let equal (a : t) (b : t) = a = b

let slot_code = function Left -> 0 | Right -> 1 | Pred -> 2

let encode = function
  | To_instr { id; slot } ->
      assert (id >= 0 && id < 128);
      (slot_code slot lsl 7) lor id
  | To_write w ->
      assert (w >= 0 && w < 32);
      (3 lsl 7) lor w

let decode v =
  if v < 0 || v > 511 then None
  else
    let idx = v land 127 in
    match v lsr 7 with
    | 0 -> Some (To_instr { id = idx; slot = Left })
    | 1 -> Some (To_instr { id = idx; slot = Right })
    | 2 -> Some (To_instr { id = idx; slot = Pred })
    | 3 -> if idx < 32 then Some (To_write idx) else None
    | _ -> None

let pp_slot ppf slot =
  Format.pp_print_string ppf
    (match slot with Left -> "L" | Right -> "R" | Pred -> "P")

let pp ppf = function
  | To_instr { id; slot } -> Format.fprintf ppf "I%d.%a" id pp_slot slot
  | To_write w -> Format.fprintf ppf "W%d" w
