(** Instruction targets.

    An EDGE instruction names the consumers of its result rather than its
    own source operands. A 9-bit target encoding designates one of the 128
    instruction slots of the block together with the operand position —
    left, right, or predicate (Section 3 of the paper) — or one of the
    block's register-write slots. *)

type slot = Left | Right | Pred

type t =
  | To_instr of { id : int; slot : slot }
      (** deliver the result to operand [slot] of instruction [id]
          (0..127) within the same block *)
  | To_write of int  (** deliver the result to register-write slot (0..31) *)

val slot_equal : slot -> slot -> bool
val equal : t -> t -> bool

val encode : t -> int
(** 9-bit encoding: two high bits select left (00) / right (01) /
    predicate (10) / write (11); seven low bits hold the slot index. *)

val decode : int -> t option
(** Inverse of {!encode}; [None] if the value exceeds 9 bits or names a
    write slot above 31. *)

val pp : Format.formatter -> t -> unit
val pp_slot : Format.formatter -> slot -> unit
