let opcode_table : (Opcode.t * int) list =
  List.mapi (fun i op -> (op, i)) Opcode.all

let code_of_opcode op =
  match List.assoc_opt op opcode_table with
  | Some c -> c
  | None -> invalid_arg "Encode.code_of_opcode"

let opcode_of_code c = List.nth_opt Opcode.all c

let pred_code = function
  | Instr.Unpredicated -> 0
  | Instr.If_false -> 2
  | Instr.If_true -> 3

let pred_of_code = function
  | 0 -> Ok Instr.Unpredicated
  | 2 -> Ok Instr.If_false
  | 3 -> Ok Instr.If_true
  | n -> Error (Printf.sprintf "invalid predicate field %d" n)

let words (i : Instr.t) =
  match i.opcode with Opcode.Geni -> 3 | Opcode.Mov4 -> 2 | _ -> 1

let imm_fits imm = imm >= -256L && imm <= 255L

(* A target field of 0 means "no target": slot 0 operand Left of
   instruction 0 is unusable as a real target, which we enforce by never
   allocating consumers at id 0 during code generation (id 0 is reserved
   for an unpredicated instruction with no incoming operands, or unused). *)
let encode_target = function
  | None -> 0
  | Some t -> Target.encode t

let decode_target v = if v = 0 then Ok None else
  match Target.decode v with
  | Some t -> Ok (Some t)
  | None -> Error (Printf.sprintf "invalid target field %d" v)

let xop_of (i : Instr.t) =
  if i.lsid >= 0 then i.lsid
  else if i.exit_idx >= 0 then i.exit_idx
  else 0

let header (i : Instr.t) ~imm9 ~t2 ~t1 =
  let open Int32 in
  let ( ||| ) = logor in
  let field v shift = shift_left (of_int (v land 0x1ff)) shift in
  shift_left (of_int (code_of_opcode i.opcode land 0x7f)) 25
  ||| shift_left (of_int (pred_code i.pred land 0x3)) 23
  ||| shift_left (of_int (xop_of i land 0x1f)) 18
  ||| field (match imm9 with Some v -> v land 0x1ff | None -> t2) 9
  ||| field t1 0

let encode (i : Instr.t) =
  let opc = i.opcode in
  if i.lsid > 31 then Error "lsid out of range"
  else if i.exit_idx > 31 then Error "exit index out of range"
  else if List.length i.targets > Opcode.max_targets opc then
    Error "too many targets"
  else
    match opc with
    | Opcode.Geni ->
        let t1 =
          encode_target (List.nth_opt i.targets 0)
        in
        let hd = header i ~imm9:None ~t2:0 ~t1 in
        let lo = Int64.to_int32 i.imm in
        let hi = Int64.to_int32 (Int64.shift_right_logical i.imm 32) in
        Ok [ hd; lo; hi ]
    | Opcode.Mov4 ->
        (* Mov4 packs four 7-bit instruction ids plus one shared operand
           slot across two words; all targets must use the same slot. *)
        let slot =
          match i.targets with
          | Target.To_instr { slot; _ } :: _ -> Ok slot
          | [] -> Ok Target.Left
          | Target.To_write _ :: _ -> Error "mov4 cannot target writes"
        in
        Result.bind slot (fun slot ->
            let ids =
              List.map
                (function
                  | Target.To_instr { id; slot = s }
                    when Target.slot_equal s slot ->
                      Ok id
                  | Target.To_instr _ -> Error "mov4 targets must share a slot"
                  | Target.To_write _ -> Error "mov4 cannot target writes")
                i.targets
            in
            let rec collect acc = function
              | [] -> Ok (List.rev acc)
              | Ok x :: tl -> collect (x :: acc) tl
              | Error e :: _ -> Error e
            in
            Result.bind (collect [] ids) (fun ids ->
                let get n =
                  match List.nth_opt ids n with Some v -> v + 1 | None -> 0
                in
                if List.exists (fun v -> v > 127) ids then Error "mov4 id range"
                else
                  let slot_code =
                    match slot with
                    | Target.Left -> 0
                    | Target.Right -> 1
                    | Target.Pred -> 2
                  in
                  let open Int32 in
                  let ( ||| ) = logor in
                  let w =
                    shift_left (of_int (code_of_opcode opc land 0x7f)) 25
                    ||| shift_left (of_int (get 0 land 0xff)) 17
                    ||| shift_left (of_int (get 1 land 0xff)) 9
                  in
                  let w2 =
                    shift_left (of_int slot_code) 18
                    ||| shift_left (of_int (get 2 land 0xff)) 9
                    ||| of_int (get 3 land 0xff)
                  in
                  Ok [ w; w2 ]))
    | _ ->
        let has_imm = Opcode.has_immediate opc in
        if has_imm && not (imm_fits i.imm) then
          Error (Printf.sprintf "immediate %Ld does not fit 9 bits" i.imm)
        else
          let t1 = encode_target (List.nth_opt i.targets 0) in
          let t2v = encode_target (List.nth_opt i.targets 1) in
          let imm9 = if has_imm then Some (Int64.to_int i.imm) else None in
          Ok [ header i ~imm9 ~t2:t2v ~t1 ]

let decode ~id ws =
  match ws with
  | [] -> Error "empty word stream"
  | w :: rest -> (
      let geti shift mask = Int32.to_int (Int32.shift_right_logical w shift) land mask in
      let code = geti 25 0x7f in
      match opcode_of_code code with
      | None -> Error (Printf.sprintf "unknown opcode %d" code)
      | Some Opcode.Mov4 -> (
          (* Mov4 has its own packing: the predicate bits are reused for
             target ids, so it is parsed before the generic field split. *)
          match rest with
          | w2 :: rest' ->
              let geti' w shift mask =
                Int32.to_int (Int32.shift_right_logical w shift) land mask
              in
              let g v = if v = 0 then None else Some (v - 1) in
              let ids =
                List.filter_map g
                  [
                    geti' w 17 0xff;
                    geti' w 9 0xff;
                    geti' w2 9 0xff;
                    geti' w2 0 0xff;
                  ]
              in
              let slot =
                match geti' w2 18 0x3 with
                | 1 -> Target.Right
                | 2 -> Target.Pred
                | _ -> Target.Left
              in
              let targets =
                List.map (fun id -> Target.To_instr { id; slot }) ids
              in
              Ok (Instr.make ~id ~opcode:Opcode.Mov4 ~targets (), rest')
          | [] -> Error "truncated mov4")
      | Some opc -> (
          match pred_of_code (geti 23 0x3) with
          | Error e -> Error e
          | Ok pred -> (
              let xop = geti 18 0x1f in
              let f2 = geti 9 0x1ff in
              let f1 = geti 0 0x1ff in
              let lsid =
                match opc with Opcode.Ld _ | Opcode.St _ -> xop | _ -> -1
              in
              let exit_idx = match opc with Opcode.Bro -> xop | _ -> -1 in
              match opc with
              | Opcode.Geni -> (
                  match rest with
                  | lo :: hi :: rest' ->
                      let imm =
                        Int64.logor
                          (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)
                          (Int64.shift_left (Int64.of_int32 hi) 32)
                      in
                      Result.bind (decode_target f1) (fun t1 ->
                          let targets = Option.to_list t1 in
                          Ok
                            ( Instr.make ~id ~opcode:opc ~pred ~imm ~targets (),
                              rest' ))
                  | _ -> Error "truncated geni")
              | Opcode.Mov4 -> Error "unreachable: mov4 handled above"
              | _ ->
                  let has_imm = Opcode.has_immediate opc in
                  let imm =
                    if has_imm then
                      (* sign-extend 9 bits *)
                      let v = f2 in
                      let v = if v land 0x100 <> 0 then v - 512 else v in
                      Int64.of_int v
                    else 0L
                  in
                  Result.bind (decode_target f1) (fun t1 ->
                      let t2r =
                        if has_imm then Ok None else decode_target f2
                      in
                      Result.bind t2r (fun t2 ->
                          let targets =
                            Option.to_list t1 @ Option.to_list t2
                          in
                          Ok
                            ( Instr.make ~id ~opcode:opc ~pred ~imm ~targets
                                ~lsid ~exit_idx (),
                              rest ))))))

let encode_block_body instrs =
  let rec go acc i =
    if i >= Array.length instrs then Ok (List.rev acc)
    else
      match encode instrs.(i) with
      | Error e -> Error (Printf.sprintf "I%d: %s" i e)
      | Ok ws -> go (List.rev_append ws acc) (i + 1)
  in
  Result.map Array.of_list (go [] 0)

let decode_block_body words_arr =
  let rec go acc id ws =
    match ws with
    | [] -> Ok (Array.of_list (List.rev acc))
    | _ -> (
        match decode ~id ws with
        | Error e -> Error (Printf.sprintf "I%d: %s" id e)
        | Ok (i, rest) -> go (i :: acc) (id + 1) rest)
  in
  go [] 0 (Array.to_list words_arr)
