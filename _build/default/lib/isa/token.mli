(** Operand tokens.

    A token is the unit of dataflow communication between instructions
    inside a block: a 64-bit payload plus the two microarchitectural tag
    bits the paper requires — the null bit of Section 4.2 (block-output
    nullification) and the exception bit of Section 4.4 (deferred,
    block-boundary exception semantics). *)

type t = { payload : int64; null : bool; exc : bool }

val of_int64 : int64 -> t
val of_int : int -> t
val of_float : float -> t
(** Floats travel as their IEEE-754 double bit pattern. *)

val to_float : t -> float
val null_token : t
val with_exc : t -> t

val true_predicate : t
val false_predicate : t

val as_predicate : t -> bool
(** Predicate truth of a token: the low-order payload bit (Section 3.2).
    A token whose exception bit is set is interpreted as a [false]
    predicate regardless of payload (Section 4.4). *)

val taint : t -> t -> t
(** [taint a b] is [b] with null and exception bits also inherited from
    [a]; used when an instruction combines operands so that tag bits
    propagate to the result. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
