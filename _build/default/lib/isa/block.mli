(** TRIPS blocks.

    A block is the unit of atomic execution (Section 3): up to 128
    instruction slots of dataflow-connected instructions, up to 32
    register reads, up to 32 register writes, up to 32 store sequence
    identifiers, and an exit table naming successor blocks. Each execution
    must produce every declared output — a token (possibly null) for every
    write slot, a store or null store for every declared LSID, and exactly
    one taken exit — which is how the hardware detects completion and
    performs early mispredication termination (Section 4.3). *)

type read = {
  rslot : int;  (** read slot index, 0..31 *)
  reg : int;  (** architectural register, 0..127 *)
  rtargets : Target.t list;  (** at most 2 *)
}

type write = { wslot : int; wreg : int }

type t = {
  name : string;
  instrs : Instr.t array;  (** instruction ids are array indices *)
  reads : read array;
  writes : write array;
  store_lsids : int list;  (** sorted, distinct LSIDs the block must
                               resolve each execution *)
  exits : string array;  (** exit table indexed by [Bro.exit_idx];
                             the reserved name ["@halt"] stops the
                             machine *)
}

val max_instrs : int (* 128 *)
val max_reads : int (* 32 *)
val max_writes : int (* 32 *)
val max_lsids : int (* 32 *)

val size_in_words : t -> int
(** Code footprint of the block body in 32-bit words (Geni instructions
    occupy three, Mov4 two). *)

val validate : t -> (unit, string list) result
(** Static well-formedness per Section 3.1: resource limits; dense ids;
    target arity, range and slot validity; predicated instructions have
    predicate producers and are predicatable; unpredicated instructions
    receive no predicates; every data operand, write slot and declared
    store LSID has at least one producer; at least one exit instruction;
    all [Bro] exit indices valid. Returns all violations found. *)

val instr_producers : t -> int -> Target.slot -> int list
(** [instr_producers b id slot] lists instruction ids (not reads) that
    target operand [slot] of instruction [id]. *)

val pp : Format.formatter -> t -> unit

val halt_exit : string
(** The reserved exit-table entry that terminates execution. *)
