lib/isa/image.ml: Array Block Buffer Bytes Encode Fun Int32 List Printf Program Result String Target
