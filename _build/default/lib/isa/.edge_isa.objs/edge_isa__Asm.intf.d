lib/isa/asm.mli: Block Format Program
