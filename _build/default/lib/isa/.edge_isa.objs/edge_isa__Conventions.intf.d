lib/isa/conventions.mli:
