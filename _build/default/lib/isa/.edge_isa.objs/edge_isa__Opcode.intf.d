lib/isa/opcode.mli: Format
