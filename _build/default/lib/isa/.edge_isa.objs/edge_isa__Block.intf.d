lib/isa/block.mli: Format Instr Target
