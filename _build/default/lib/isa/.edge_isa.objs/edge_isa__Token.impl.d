lib/isa/token.ml: Format Int64
