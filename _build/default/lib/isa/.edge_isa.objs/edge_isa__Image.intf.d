lib/isa/image.mli: Bytes Program
