lib/isa/instr.ml: Format List Opcode Target Token
