lib/isa/conventions.ml:
