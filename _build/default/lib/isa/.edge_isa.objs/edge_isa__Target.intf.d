lib/isa/target.mli: Format
