lib/isa/dot.ml: Array Block Buffer Instr List Opcode Printf Program String Target
