lib/isa/asm.ml: Array Block Conventions Format Instr Int64 List Opcode Printf Program String Target
