lib/isa/opcode.ml: Format List String
