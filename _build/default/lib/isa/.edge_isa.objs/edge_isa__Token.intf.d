lib/isa/token.mli: Format
