lib/isa/grid.mli:
