lib/isa/block.ml: Array Encode Format Instr List Opcode Target
