lib/isa/mem.ml: Bytes Char Int64 List Opcode Token
