lib/isa/mem.mli: Opcode Token
