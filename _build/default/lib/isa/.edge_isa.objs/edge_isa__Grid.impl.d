lib/isa/grid.ml:
