lib/isa/dot.mli: Block Program
