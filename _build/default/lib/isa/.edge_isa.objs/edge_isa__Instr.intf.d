lib/isa/instr.mli: Format Opcode Target Token
