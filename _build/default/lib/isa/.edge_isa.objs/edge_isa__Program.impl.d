lib/isa/program.ml: Array Block Format List Printf String
