lib/isa/encode.ml: Array Instr Int32 Int64 List Opcode Option Printf Result Target
