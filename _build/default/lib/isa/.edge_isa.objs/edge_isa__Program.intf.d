lib/isa/program.mli: Block Format
