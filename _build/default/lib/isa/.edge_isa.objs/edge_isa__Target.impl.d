lib/isa/target.ml: Format
