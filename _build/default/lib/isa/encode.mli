(** Binary instruction encoding.

    Each instruction occupies one 32-bit word laid out as in Figure 2 of
    the paper: opcode (7 bits), predicate field (2 bits), extended opcode
    (5 bits), immediate-or-second-target (9 bits), first target (9 bits).
    The 5-bit extended opcode carries the load/store sequence identifier
    for memory instructions and the exit index for branches. [Geni], the
    wide-constant generator, occupies three words: a header followed by
    the two 32-bit halves of its 64-bit immediate.

    The encoder rejects instructions whose immediate does not fit the
    9-bit signed field (except [Geni]); the code generator is responsible
    for materializing wide constants with [Geni]. *)

val words : Instr.t -> int
(** Number of 32-bit words the instruction occupies (3 for [Geni], else 1). *)

val encode : Instr.t -> (int32 list, string) result

val decode : id:int -> int32 list -> (Instr.t * int32 list, string) result
(** [decode ~id ws] decodes one instruction for slot [id] from the head of
    [ws], returning it and the remaining words. *)

val encode_block_body : Instr.t array -> (int32 array, string) result
val decode_block_body : int32 array -> (Instr.t array, string) result
