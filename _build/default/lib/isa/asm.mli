(** Textual TRIPS assembly.

    The format is exactly what {!Block.pp} / {!Program.pp} print, so
    programs round-trip through text:

    {v
    program (entry main)
    block main
      R0  read g2 -> I0.L
      I0   tlti #5 -> I1.P -> I2.P
      I1   bro_t #0 [exit 0]
      I2   bro_f #0 [exit 1]
      I3   sd #0 [lsid 0]
      W0  write g16
      stores: 0
      exit 0: body
      exit 1: @halt
    v}

    Targets are [I<n>.L], [I<n>.R], [I<n>.P] (left/right/predicate
    operand of instruction n) or [W<n>] (write slot n). Instructions with
    an immediate print it as [#k]; memory operations carry [[lsid n]] and
    branches [[exit n]]. The [_t]/[_f] suffix is the predicate field. *)

val parse_program : string -> (Program.t, string) result
val parse_block : string -> (Block.t, string) result

val print_program : Format.formatter -> Program.t -> unit
(** Alias of {!Program.pp}. *)
