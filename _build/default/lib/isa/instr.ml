type predication = Unpredicated | If_true | If_false

type t = {
  id : int;
  opcode : Opcode.t;
  pred : predication;
  imm : int64;
  targets : Target.t list;
  lsid : int;
  exit_idx : int;
}

let make ~id ~opcode ?(pred = Unpredicated) ?(imm = 0L) ?(targets = [])
    ?(lsid = -1) ?(exit_idx = -1) () =
  { id; opcode; pred; imm; targets; lsid; exit_idx }

let is_predicated t =
  match t.pred with Unpredicated -> false | If_true | If_false -> true

let predicate_matches pred tok =
  match pred with
  | Unpredicated -> false
  | If_true -> Token.as_predicate tok
  | If_false -> not (Token.as_predicate tok)

let equal (a : t) (b : t) =
  a.id = b.id
  && Opcode.equal a.opcode b.opcode
  && a.pred = b.pred && a.imm = b.imm
  && List.length a.targets = List.length b.targets
  && List.for_all2 Target.equal a.targets b.targets
  && a.lsid = b.lsid && a.exit_idx = b.exit_idx

let pred_pp ppf = function
  | Unpredicated -> ()
  | If_true -> Format.pp_print_string ppf "_t"
  | If_false -> Format.pp_print_string ppf "_f"

let pp ppf t =
  Format.fprintf ppf "I%-3d %s%a" t.id (Opcode.mnemonic t.opcode) pred_pp
    t.pred;
  if Opcode.has_immediate t.opcode then Format.fprintf ppf " #%Ld" t.imm;
  if t.lsid >= 0 then Format.fprintf ppf " [lsid %d]" t.lsid;
  if t.exit_idx >= 0 then Format.fprintf ppf " [exit %d]" t.exit_idx;
  List.iter (fun tgt -> Format.fprintf ppf " -> %a" Target.pp tgt) t.targets
