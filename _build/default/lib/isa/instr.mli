(** Block-resident instructions.

    The predicate field is the paper's central ISA mechanism: two bits per
    instruction that say whether a matching predicate token must arrive on
    the predicate operand before the instruction may fire (Section 3.2).
    [Unpredicated] corresponds to PR=00, [If_true] to PR=11 and [If_false]
    to PR=10. *)

type predication = Unpredicated | If_true | If_false

type t = {
  id : int;  (** slot within the block, 0..127 *)
  opcode : Opcode.t;
  pred : predication;
  imm : int64;  (** immediate; meaningful iff [Opcode.has_immediate] *)
  targets : Target.t list;  (** at most [Opcode.max_targets opcode] *)
  lsid : int;  (** load/store sequence id; -1 for non-memory instructions *)
  exit_idx : int;  (** for [Bro]: index into the block's exit table; -1
                       otherwise *)
}

val make :
  id:int ->
  opcode:Opcode.t ->
  ?pred:predication ->
  ?imm:int64 ->
  ?targets:Target.t list ->
  ?lsid:int ->
  ?exit_idx:int ->
  unit ->
  t

val is_predicated : t -> bool

val predicate_matches : predication -> Token.t -> bool
(** [predicate_matches p tok] tells whether an arriving predicate token
    [tok] matches polarity [p]. Unpredicated instructions match nothing:
    they have no predicate operand. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pred_pp : Format.formatter -> predication -> unit
