(** Opcodes of the EDGE (TRIPS-like) ISA used throughout this repository.

    The set follows the instructions that appear in the paper (teq, tgti,
    addi, slli, ld, st, bro, mov, movi, null, fsub, fgt, ...) completed into
    a regular family: register and immediate forms of the usual integer
    ALU operations, signed comparisons producing predicates (tests),
    IEEE-754 double-precision arithmetic and tests, sized loads and stores,
    data-movement and constant-generation instructions, block exits, and
    the [Null] instruction used for block-output nullification (Section
    4.2 of the paper). *)

(** Integer binary operations (register or immediate second operand). *)
type ibinop =
  | Add
  | Sub
  | Mul
  | Div  (** signed division; division by zero sets the exception bit *)
  | Rem  (** signed remainder; remainder by zero sets the exception bit *)
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra

(** Comparison conditions for test instructions. Tests produce predicate
    values: all-zeros for false, low-bit-one for true. *)
type cond = Eq | Ne | Lt | Le | Gt | Ge

(** Floating-point (double) binary operations. *)
type fbinop = Fadd | Fsub | Fmul | Fdiv

(** Unary data operations. *)
type unop =
  | Mov  (** copy; also the fanout-tree instruction *)
  | Not  (** bitwise complement *)
  | Neg  (** two's complement negation *)
  | Fneg
  | Fitod  (** signed integer to double *)
  | Fdtoi  (** double to signed integer, truncating *)

(** Memory access widths. Sub-word loads sign-extend. *)
type width = W1 | W4 | W8

type t =
  | Iop of ibinop  (** register-register integer ALU op; 2 operands *)
  | Iopi of ibinop  (** integer ALU op with immediate; 1 operand *)
  | Tst of cond  (** register-register integer test; 2 operands *)
  | Tsti of cond  (** integer test with immediate; 1 operand *)
  | Fop of fbinop  (** register-register double op; 2 operands *)
  | Ftst of cond  (** register-register double test; 2 operands *)
  | Un of unop  (** unary op; 1 operand *)
  | Movi  (** constant generation from the immediate field; 0 operands *)
  | Geni
      (** wide constant generation; 0 operands; never predicated
          (Section 3.1 rule 1 exempts specific constant generators) *)
  | Mov4
      (** multicast move with up to four targets; never predicated;
          evaluated in the fanout ablation (Section 7 future work) *)
  | Ld of width  (** load; operand is the address, immediate is the offset *)
  | St of width  (** store; operands are address and data; has an LSID *)
  | Bro  (** block exit branch; immediate selects the block's exit slot *)
  | Halt  (** block exit terminating the program *)
  | Null
      (** produces a null token for block-output nullification; 0 data
          operands, typically predicated *)
  | Sand
      (** short-circuiting predicate AND (Section 7 future work): fires
          as soon as the left operand arrives false — without waiting for
          the right operand, following C semantics — otherwise when both
          arrive, producing their conjunction. An exception on the right
          operand is filtered when the left is false. *)

val equal : t -> t -> bool

val num_operands : t -> int
(** Number of data (left/right) operands the instruction must receive. *)

val max_targets : t -> int
(** Maximum number of targets encodable: 1 when the immediate field is in
    use (the paper notes immediate instructions give up the second target
    field), 2 otherwise, 4 for [Mov4]. [St], [Bro] and [Halt] have none. *)

val predicatable : t -> bool
(** Whether the 2-bit predicate field may be set (Section 3.1, rule 1). *)

val produces_value : t -> bool
(** Whether the instruction delivers a result token to targets. *)

val is_test : t -> bool
(** Tests produce canonical predicate values. Any value producer may feed a
    predicate operand, but tests are what the compiler emits for guards. *)

val is_branch : t -> bool

val has_immediate : t -> bool

val latency : t -> int
(** Execution latency in cycles, excluding operand routing and (for memory
    operations) cache access. Matches the latencies assumed for the TRIPS
    prototype: single-cycle integer ALU, 3-cycle multiply, 24-cycle divide,
    4-cycle floating point add/multiply/convert, 24-cycle floating-point
    divide. *)

val mnemonic : t -> string
(** Assembly mnemonic, e.g. [tgti], [addi], [fsub], [bro], [ld_w8]. *)

val of_mnemonic : string -> t option

val all : t list
(** Every opcode, for exhaustive property tests. *)

val pp : Format.formatter -> t -> unit
