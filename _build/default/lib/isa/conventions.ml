let num_regs = 128
let result_reg = 1
let param_reg i = 2 + i
let first_alloc_reg = 16
