type read = { rslot : int; reg : int; rtargets : Target.t list }
type write = { wslot : int; wreg : int }

type t = {
  name : string;
  instrs : Instr.t array;
  reads : read array;
  writes : write array;
  store_lsids : int list;
  exits : string array;
}

let max_instrs = 128
let max_reads = 32
let max_writes = 32
let max_lsids = 32
let halt_exit = "@halt"

let size_in_words t =
  Array.fold_left (fun acc i -> acc + Encode.words i) 0 t.instrs

(* Operand positions that must receive at least one token for the
   instruction to ever fire. *)
let required_slots (i : Instr.t) =
  let arity = Opcode.num_operands i.opcode in
  let data =
    if arity >= 2 then [ Target.Left; Target.Right ]
    else if arity = 1 then [ Target.Left ]
    else []
  in
  if Instr.is_predicated i then Target.Pred :: data else data

let instr_producers t id slot =
  let hits = ref [] in
  Array.iter
    (fun (i : Instr.t) ->
      if
        List.exists
          (function
            | Target.To_instr { id = d; slot = s } ->
                d = id && Target.slot_equal s slot
            | Target.To_write _ -> false)
          i.targets
      then hits := i.id :: !hits)
    t.instrs;
  List.rev !hits

let read_producers t id slot =
  Array.exists
    (fun r ->
      List.exists
        (function
          | Target.To_instr { id = d; slot = s } ->
              d = id && Target.slot_equal s slot
          | Target.To_write _ -> false)
        r.rtargets)
    t.reads

let write_has_producer t wslot =
  let from_instr =
    Array.exists
      (fun (i : Instr.t) ->
        List.exists
          (function
            | Target.To_write w -> w = wslot
            | Target.To_instr _ -> false)
          i.targets)
      t.instrs
  in
  let from_read =
    Array.exists
      (fun r ->
        List.exists
          (function
            | Target.To_write w -> w = wslot
            | Target.To_instr _ -> false)
          r.rtargets)
      t.reads
  in
  from_instr || from_read

let validate t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let n = Array.length t.instrs in
  if n > max_instrs then err "block has %d instructions (max %d)" n max_instrs;
  if size_in_words t > max_instrs then
    err "block body is %d words (max %d)" (size_in_words t) max_instrs;
  if Array.length t.reads > max_reads then
    err "block has %d reads (max %d)" (Array.length t.reads) max_reads;
  if Array.length t.writes > max_writes then
    err "block has %d writes (max %d)" (Array.length t.writes) max_writes;
  if List.length t.store_lsids > max_lsids then
    err "block declares %d store lsids (max %d)"
      (List.length t.store_lsids) max_lsids;
  let rec sorted_distinct = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as tl) -> a < b && sorted_distinct tl
  in
  if not (sorted_distinct t.store_lsids) then
    err "store lsids must be sorted and distinct";
  Array.iteri
    (fun idx (i : Instr.t) ->
      if i.id <> idx then err "I%d: id %d does not match slot" idx i.id;
      if Instr.is_predicated i && not (Opcode.predicatable i.opcode) then
        err "I%d: opcode %s may not be predicated" idx
          (Opcode.mnemonic i.opcode);
      if List.length i.targets > Opcode.max_targets i.opcode then
        err "I%d: %d targets exceed the %s limit" idx (List.length i.targets)
          (Opcode.mnemonic i.opcode);
      (match i.opcode with
      | Opcode.Ld _ | Opcode.St _ ->
          if i.lsid < 0 || i.lsid > 31 then
            err "I%d: memory instruction needs an lsid in 0..31" idx
          else if
            (match i.opcode with Opcode.St _ -> true | _ -> false)
            && not (List.mem i.lsid t.store_lsids)
          then err "I%d: store lsid %d not declared" idx i.lsid
      | Opcode.Bro ->
          if i.exit_idx < 0 || i.exit_idx >= Array.length t.exits then
            err "I%d: bro exit index %d out of range" idx i.exit_idx
      | _ -> ());
      List.iter
        (function
          | Target.To_instr { id = d; slot } -> (
              if d < 0 || d >= n then err "I%d: target I%d out of range" idx d
              else
                let dst = t.instrs.(d) in
                let arity = Opcode.num_operands dst.opcode in
                match slot with
                | Target.Left ->
                    if arity < 1 then
                      err "I%d: targets left operand of 0-ary I%d" idx d
                | Target.Right ->
                    if arity < 2 then
                      err "I%d: targets right operand of %d-ary I%d" idx arity
                        d
                | Target.Pred ->
                    if not (Instr.is_predicated dst) then
                      err "I%d: targets predicate of unpredicated I%d" idx d)
          | Target.To_write w ->
              if w < 0 || w >= Array.length t.writes then
                err "I%d: write slot %d out of range" idx w)
        i.targets)
    t.instrs;
  (* Every required operand must have at least one producer; nulls that
     satisfy writes/stores count as producers of those outputs. *)
  Array.iteri
    (fun idx (i : Instr.t) ->
      List.iter
        (fun slot ->
          let produced =
            instr_producers t idx slot <> [] || read_producers t idx slot
          in
          if not produced then
            err "I%d: operand %a has no producer" idx Target.pp_slot slot)
        (required_slots i))
    t.instrs;
  Array.iteri
    (fun idx w ->
      if w.wslot <> idx then err "W%d: slot mismatch" idx;
      if w.wreg < 0 || w.wreg > 127 then err "W%d: register out of range" idx;
      if not (write_has_producer t idx) then err "W%d: no producer" idx)
    t.writes;
  Array.iteri
    (fun idx r ->
      if r.rslot <> idx then err "R%d: slot mismatch" idx;
      if r.reg < 0 || r.reg > 127 then err "R%d: register out of range" idx;
      if List.length r.rtargets > 2 then err "R%d: more than 2 targets" idx;
      List.iter
        (function
          | Target.To_instr { id = d; slot } -> (
              if d < 0 || d >= n then err "R%d: target out of range" idx
              else
                match slot with
                | Target.Pred ->
                    if not (Instr.is_predicated t.instrs.(d)) then
                      err "R%d: targets predicate of unpredicated I%d" idx d
                | Target.Left | Target.Right -> ())
          | Target.To_write w ->
              if w < 0 || w >= Array.length t.writes then
                err "R%d: write slot out of range" idx)
        r.rtargets)
    t.reads;
  (* Unpredicated instructions must not receive predicate tokens. *)
  Array.iteri
    (fun idx (i : Instr.t) ->
      if not (Instr.is_predicated i) then
        if instr_producers t idx Target.Pred <> [] || read_producers t idx Target.Pred
        then err "I%d: unpredicated but receives a predicate" idx)
    t.instrs;
  if
    not
      (Array.exists
         (fun (i : Instr.t) -> Opcode.is_branch i.opcode)
         t.instrs)
  then err "block has no exit instruction";
  (* Every declared store lsid needs at least one store carrying it. *)
  List.iter
    (fun lsid ->
      let covered =
        Array.exists
          (fun (i : Instr.t) ->
            match i.opcode with Opcode.St _ -> i.lsid = lsid | _ -> false)
          t.instrs
      in
      if not covered then err "declared store lsid %d has no store" lsid)
    t.store_lsids;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let pp ppf t =
  Format.fprintf ppf "@[<v>block %s@," t.name;
  Array.iter
    (fun r ->
      Format.fprintf ppf "  R%-2d read g%d" r.rslot r.reg;
      List.iter (fun tg -> Format.fprintf ppf " -> %a" Target.pp tg) r.rtargets;
      Format.fprintf ppf "@,")
    t.reads;
  Array.iter (fun i -> Format.fprintf ppf "  %a@," Instr.pp i) t.instrs;
  Array.iter
    (fun w -> Format.fprintf ppf "  W%-2d write g%d@," w.wslot w.wreg)
    t.writes;
  if t.store_lsids <> [] then (
    Format.fprintf ppf "  stores:";
    List.iter (fun l -> Format.fprintf ppf " %d" l) t.store_lsids;
    Format.fprintf ppf "@,");
  Array.iteri (fun i e -> Format.fprintf ppf "  exit %d: %s@," i e) t.exits;
  Format.fprintf ppf "@]"
