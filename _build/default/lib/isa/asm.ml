let print_program = Program.pp

type line =
  | Lprogram of string
  | Lblock of string
  | Lread of int * int * Target.t list
  | Linstr of Instr.t
  | Lwrite of int * int
  | Lstores of int list
  | Lexit of int * string
  | Lblank

exception Bad of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let parse_target s =
  (* I12.L | I12.R | I12.P | W3 *)
  if String.length s >= 2 && s.[0] = 'W' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some w -> Target.To_write w
    | None -> fail "bad write target %s" s
  else if String.length s >= 4 && s.[0] = 'I' then begin
    match String.index_opt s '.' with
    | None -> fail "bad target %s" s
    | Some dot -> (
        let id = int_of_string_opt (String.sub s 1 (dot - 1)) in
        let slot =
          match String.sub s (dot + 1) (String.length s - dot - 1) with
          | "L" -> Target.Left
          | "R" -> Target.Right
          | "P" -> Target.Pred
          | x -> fail "bad operand slot %s" x
        in
        match id with
        | Some id -> Target.To_instr { id; slot }
        | None -> fail "bad target %s" s)
  end
  else fail "bad target %s" s

(* targets appear as "-> T1 -> T2" at the end of a token list *)
let rec parse_targets = function
  | [] -> []
  | "->" :: t :: rest -> parse_target t :: parse_targets rest
  | tok :: _ -> fail "unexpected token %s" tok

let parse_mnemonic m =
  (* mnemonic with optional _t/_f suffix *)
  let base, pred =
    if String.length m > 2 && String.sub m (String.length m - 2) 2 = "_t" then
      (String.sub m 0 (String.length m - 2), Instr.If_true)
    else if String.length m > 2 && String.sub m (String.length m - 2) 2 = "_f"
    then (String.sub m 0 (String.length m - 2), Instr.If_false)
    else (m, Instr.Unpredicated)
  in
  match Opcode.of_mnemonic base with
  | Some op -> (op, pred)
  | None -> fail "unknown mnemonic %s" base

let parse_reg s =
  if String.length s >= 2 && s.[0] = 'g' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r < Conventions.num_regs -> r
    | _ -> fail "bad register %s" s
  else fail "bad register %s" s

let parse_line raw =
  let s = String.trim raw in
  if s = "" then Lblank
  else
    match split_ws s with
    | [ "program"; entry ] ->
        (* "(entry foo)" printed by Program.pp *)
        let e =
          if String.length entry > 7 && String.sub entry 0 7 = "(entry " then
            String.sub entry 7 (String.length entry - 8)
          else entry
        in
        Lprogram e
    | [ "program"; "(entry"; e ] ->
        Lprogram (String.sub e 0 (String.length e - 1))
    | [ "block"; name ] -> Lblock name
    | slot :: "read" :: reg :: rest when String.length slot > 1 && slot.[0] = 'R'
      -> (
        match int_of_string_opt (String.sub slot 1 (String.length slot - 1)) with
        | Some rslot -> Lread (rslot, parse_reg reg, parse_targets rest)
        | None -> fail "bad read slot %s" slot)
    | [ slot; "write"; reg ] when String.length slot > 1 && slot.[0] = 'W' -> (
        match int_of_string_opt (String.sub slot 1 (String.length slot - 1)) with
        | Some wslot -> Lwrite (wslot, parse_reg reg)
        | None -> fail "bad write slot %s" slot)
    | "stores:" :: ls ->
        Lstores
          (List.map
             (fun l ->
               match int_of_string_opt l with
               | Some v -> v
               | None -> fail "bad lsid %s" l)
             ls)
    | [ "exit"; idx; target ] when String.length idx > 0
                                   && idx.[String.length idx - 1] = ':' -> (
        match int_of_string_opt (String.sub idx 0 (String.length idx - 1)) with
        | Some i -> Lexit (i, target)
        | None -> fail "bad exit index %s" idx)
    | islot :: mnem :: rest when String.length islot > 1 && islot.[0] = 'I' -> (
        match int_of_string_opt (String.sub islot 1 (String.length islot - 1)) with
        | None -> fail "bad instruction slot %s" islot
        | Some id ->
            let opcode, pred = parse_mnemonic mnem in
            (* optional immediate, [lsid n], [exit n], then targets *)
            let imm = ref 0L and lsid = ref (-1) and exit_idx = ref (-1) in
            let rec eat = function
              | tok :: rest when String.length tok > 1 && tok.[0] = '#' -> (
                  match
                    Int64.of_string_opt (String.sub tok 1 (String.length tok - 1))
                  with
                  | Some v ->
                      imm := v;
                      eat rest
                  | None -> fail "bad immediate %s" tok)
              | "[lsid" :: n :: rest -> (
                  match
                    int_of_string_opt (String.sub n 0 (String.length n - 1))
                  with
                  | Some v ->
                      lsid := v;
                      eat rest
                  | None -> fail "bad lsid %s" n)
              | "[exit" :: n :: rest -> (
                  match
                    int_of_string_opt (String.sub n 0 (String.length n - 1))
                  with
                  | Some v ->
                      exit_idx := v;
                      eat rest
                  | None -> fail "bad exit %s" n)
              | rest -> parse_targets rest
            in
            let targets = eat rest in
            Linstr
              (Instr.make ~id ~opcode ~pred ~imm:!imm ~targets ~lsid:!lsid
                 ~exit_idx:!exit_idx ()))
    | tok :: _ -> fail "unexpected line starting with %s" tok
    | [] -> Lblank

type builder = {
  mutable name : string;
  mutable instrs : Instr.t list;
  mutable reads : Block.read list;
  mutable writes : Block.write list;
  mutable stores : int list;
  mutable exits : (int * string) list;
}

let finish b =
  let exits =
    List.sort compare b.exits |> List.map snd |> Array.of_list
  in
  {
    Block.name = b.name;
    instrs = Array.of_list (List.rev b.instrs);
    reads = Array.of_list (List.rev b.reads);
    writes = Array.of_list (List.rev b.writes);
    store_lsids = List.sort_uniq compare b.stores;
    exits;
  }

let parse_blocks src =
  let lines = String.split_on_char '\n' src in
  let blocks = ref [] in
  let entry = ref None in
  let cur = ref None in
  let flush () =
    match !cur with
    | Some b ->
        blocks := finish b :: !blocks;
        cur := None
    | None -> ()
  in
  List.iteri
    (fun lineno raw ->
      try
        (* strip ; comments *)
        let raw =
          match String.index_opt raw ';' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        match parse_line raw with
        | Lblank -> ()
        | Lprogram e -> entry := Some e
        | Lblock name ->
            flush ();
            cur :=
              Some
                {
                  name;
                  instrs = [];
                  reads = [];
                  writes = [];
                  stores = [];
                  exits = [];
                }
        | other -> (
            match !cur with
            | None -> fail "directive outside a block"
            | Some b -> (
                match other with
                | Lread (rslot, reg, rtargets) ->
                    b.reads <- { Block.rslot; reg; rtargets } :: b.reads
                | Linstr i -> b.instrs <- i :: b.instrs
                | Lwrite (wslot, wreg) ->
                    b.writes <- { Block.wslot; wreg } :: b.writes
                | Lstores ls -> b.stores <- ls @ b.stores
                | Lexit (i, t) -> b.exits <- (i, t) :: b.exits
                | Lprogram _ | Lblock _ | Lblank -> assert false))
      with Bad m -> fail "line %d: %s" (lineno + 1) m)
    lines;
  flush ();
  (List.rev !blocks, !entry)

let parse_program src =
  match parse_blocks src with
  | exception Bad m -> Error m
  | [], _ -> Error "no blocks"
  | blocks, entry ->
      let entry =
        match entry with
        | Some e -> e
        | None -> (List.hd blocks).Block.name
      in
      Program.make ~entry blocks

let parse_block src =
  match parse_blocks src with
  | exception Bad m -> Error m
  | [ b ], _ -> Ok b
  | bs, _ -> Error (Printf.sprintf "expected one block, found %d" (List.length bs))
