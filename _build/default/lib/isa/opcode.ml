type ibinop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra
type cond = Eq | Ne | Lt | Le | Gt | Ge
type fbinop = Fadd | Fsub | Fmul | Fdiv
type unop = Mov | Not | Neg | Fneg | Fitod | Fdtoi
type width = W1 | W4 | W8

type t =
  | Iop of ibinop
  | Iopi of ibinop
  | Tst of cond
  | Tsti of cond
  | Fop of fbinop
  | Ftst of cond
  | Un of unop
  | Movi
  | Geni
  | Mov4
  | Ld of width
  | St of width
  | Bro
  | Halt
  | Null
  | Sand

let equal (a : t) (b : t) = a = b

let num_operands = function
  | Iop _ | Tst _ | Fop _ | Ftst _ | St _ | Sand -> 2
  | Iopi _ | Tsti _ | Un _ | Ld _ | Mov4 -> 1
  | Movi | Geni | Null | Bro | Halt -> 0

let max_targets = function
  | Iop _ | Tst _ | Fop _ | Ftst _ | Un _ | Sand -> 2
  | Iopi _ | Tsti _ | Movi | Geni | Ld _ -> 1
  | Mov4 -> 4
  | Null -> 2
  | St _ | Bro | Halt -> 0

let predicatable = function
  | Geni | Mov4 -> false
  | Iop _ | Iopi _ | Tst _ | Tsti _ | Fop _ | Ftst _ | Un _ | Movi | Ld _
  | St _ | Bro | Halt | Null | Sand ->
      true

let produces_value = function
  | Iop _ | Iopi _ | Tst _ | Tsti _ | Fop _ | Ftst _ | Un _ | Movi | Geni
  | Mov4 | Ld _ | Null | Sand ->
      true
  | St _ | Bro | Halt -> false

let is_test = function
  | Tst _ | Tsti _ | Ftst _ | Sand -> true
  | Iop _ | Iopi _ | Fop _ | Un _ | Movi | Geni | Mov4 | Ld _ | St _ | Bro
  | Halt | Null ->
      false

let is_branch = function
  | Bro | Halt -> true
  | Iop _ | Iopi _ | Tst _ | Tsti _ | Fop _ | Ftst _ | Un _ | Movi | Geni
  | Mov4 | Ld _ | St _ | Null | Sand ->
      false

let has_immediate = function
  | Iopi _ | Tsti _ | Movi | Geni | Ld _ | St _ | Bro -> true
  | Iop _ | Tst _ | Fop _ | Ftst _ | Un _ | Mov4 | Halt | Null | Sand -> false

let latency = function
  | Iop i | Iopi i -> (
      match i with
      | Mul -> 3
      | Div | Rem -> 24
      | Add | Sub | And | Or | Xor | Sll | Srl | Sra -> 1)
  | Tst _ | Tsti _ -> 1
  | Fop f -> ( match f with Fdiv -> 24 | Fadd | Fsub | Fmul -> 4)
  | Ftst _ -> 4
  | Un u -> ( match u with Fitod | Fdtoi | Fneg -> 4 | Mov | Not | Neg -> 1)
  | Movi | Geni | Mov4 | Null | Sand -> 1
  | Ld _ | St _ -> 1 (* address generation; cache latency is added by the
                        memory model *)
  | Bro | Halt -> 1

let ibinop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let fbinop_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let unop_name = function
  | Mov -> "mov"
  | Not -> "not"
  | Neg -> "neg"
  | Fneg -> "fneg"
  | Fitod -> "fitod"
  | Fdtoi -> "fdtoi"

let width_suffix = function W1 -> "b" | W4 -> "w" | W8 -> "d"

let mnemonic = function
  | Iop i -> ibinop_name i
  | Iopi i -> ibinop_name i ^ "i"
  | Tst c -> "t" ^ cond_name c
  | Tsti c -> "t" ^ cond_name c ^ "i"
  | Fop f -> fbinop_name f
  | Ftst c -> "f" ^ cond_name c
  | Un u -> unop_name u
  | Movi -> "movi"
  | Geni -> "geni"
  | Mov4 -> "mov4"
  | Ld w -> "l" ^ width_suffix w
  | St w -> "s" ^ width_suffix w
  | Bro -> "bro"
  | Halt -> "halt"
  | Null -> "null"
  | Sand -> "sand"

let all =
  let ibinops = [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Sll; Srl; Sra ] in
  let conds = [ Eq; Ne; Lt; Le; Gt; Ge ] in
  let fbinops = [ Fadd; Fsub; Fmul; Fdiv ] in
  let unops = [ Mov; Not; Neg; Fneg; Fitod; Fdtoi ] in
  let widths = [ W1; W4; W8 ] in
  List.concat
    [
      List.map (fun i -> Iop i) ibinops;
      List.map (fun i -> Iopi i) ibinops;
      List.map (fun c -> Tst c) conds;
      List.map (fun c -> Tsti c) conds;
      List.map (fun f -> Fop f) fbinops;
      List.map (fun c -> Ftst c) conds;
      List.map (fun u -> Un u) unops;
      [ Movi; Geni; Mov4; Sand ];
      List.map (fun w -> Ld w) widths;
      List.map (fun w -> St w) widths;
      [ Bro; Halt; Null ];
    ]

let of_mnemonic s = List.find_opt (fun op -> String.equal (mnemonic op) s) all
let pp ppf op = Format.pp_print_string ppf (mnemonic op)
