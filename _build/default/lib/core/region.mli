(** Hyperblock region selection.

    Innermost loops whose (already unrolled) bodies fit the block budget
    become self-looping regions; remaining blocks are grown greedily into
    single-entry acyclic regions (if-conversion of diamonds and chains),
    never crossing loop headers. Every region head doubles as the TRIPS
    block name, so every control transfer target is a region head. *)

val select : Edge_ir.Cfg.t -> budget:int -> If_convert.region list
(** Regions cover the CFG exactly; the first region's head is the entry.
    [budget] is an instruction-count estimate bound (pre-overhead). *)

val singletons : Edge_ir.Cfg.t -> If_convert.region list
(** One region per basic block: the BB configuration. *)

val split : If_convert.region -> Edge_ir.Cfg.t -> If_convert.region list
(** Last-resort fallback: break a region into singleton regions. *)

val select_within :
  Edge_ir.Cfg.t -> If_convert.region -> budget:int -> If_convert.region list
(** Re-partition an oversized region into smaller regions under a tighter
    budget (used when naive predication overflows the block limits). *)

val estimate : Edge_ir.Cfg.t -> Edge_ir.Label.Set.t -> int
