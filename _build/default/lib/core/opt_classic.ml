module Cfg = Edge_ir.Cfg
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Label = Edge_ir.Label
module Dom = Edge_ir.Dom
module Opcode = Edge_isa.Opcode

let mask63 v = Int64.to_int (Int64.logand v 63L)

(* Constant evaluation mirrors Alu/Interp semantics; division by zero is
   not folded (it must fault at run time). *)
let fold_ibinop op a b =
  match op with
  | Opcode.Add -> Some (Int64.add a b)
  | Opcode.Sub -> Some (Int64.sub a b)
  | Opcode.Mul -> Some (Int64.mul a b)
  | Opcode.Div -> if b = 0L then None else Some (Int64.div a b)
  | Opcode.Rem -> if b = 0L then None else Some (Int64.rem a b)
  | Opcode.And -> Some (Int64.logand a b)
  | Opcode.Or -> Some (Int64.logor a b)
  | Opcode.Xor -> Some (Int64.logxor a b)
  | Opcode.Sll -> Some (Int64.shift_left a (mask63 b))
  | Opcode.Srl -> Some (Int64.shift_right_logical a (mask63 b))
  | Opcode.Sra -> Some (Int64.shift_right a (mask63 b))

let fold_fbinop op a b =
  let x = Int64.float_of_bits a and y = Int64.float_of_bits b in
  let r =
    match op with
    | Opcode.Fadd -> x +. y
    | Opcode.Fsub -> x -. y
    | Opcode.Fmul -> x *. y
    | Opcode.Fdiv -> x /. y
  in
  Some (Int64.bits_of_float r)

let fold_cmp cond fp a b =
  let r =
    if fp then
      let x = Int64.float_of_bits a and y = Int64.float_of_bits b in
      match cond with
      | Opcode.Eq -> x = y
      | Opcode.Ne -> x <> y
      | Opcode.Lt -> x < y
      | Opcode.Le -> x <= y
      | Opcode.Gt -> x > y
      | Opcode.Ge -> x >= y
    else
      let c = Int64.compare a b in
      match cond with
      | Opcode.Eq -> c = 0
      | Opcode.Ne -> c <> 0
      | Opcode.Lt -> c < 0
      | Opcode.Le -> c <= 0
      | Opcode.Gt -> c > 0
      | Opcode.Ge -> c >= 0
  in
  if r then 1L else 0L

let fold_unop op a =
  match op with
  | Opcode.Mov -> Some a
  | Opcode.Not -> Some (Int64.lognot a)
  | Opcode.Neg -> Some (Int64.neg a)
  | Opcode.Fneg -> Some (Int64.bits_of_float (-.Int64.float_of_bits a))
  | Opcode.Fitod -> Some (Int64.bits_of_float (Int64.to_float a))
  | Opcode.Fdtoi -> Some (Int64.of_float (Int64.float_of_bits a))

(* One round of constant/copy propagation. Returns true if changed. *)
let propagate cfg =
  let changed = ref false in
  (* substitution map from SSA defs *)
  let subst : (Temp.t, Tac.operand) Hashtbl.t = Hashtbl.create 64 in
  Cfg.iter_instrs cfg (fun _ i ->
      match i with
      | Tac.Un { dst; op = Opcode.Mov; a } -> Hashtbl.replace subst dst a
      | Tac.Bin { dst; op; a = Tac.C a; b = Tac.C b } -> (
          match fold_ibinop op a b with
          | Some v -> Hashtbl.replace subst dst (Tac.C v)
          | None -> ())
      | Tac.Fbin { dst; op; a = Tac.C a; b = Tac.C b } -> (
          match fold_fbinop op a b with
          | Some v -> Hashtbl.replace subst dst (Tac.C v)
          | None -> ())
      | Tac.Cmp { dst; cond; fp; a = Tac.C a; b = Tac.C b } ->
          Hashtbl.replace subst dst (Tac.C (fold_cmp cond fp a b))
      | Tac.Un { dst; op; a = Tac.C a } -> (
          match fold_unop op a with
          | Some v -> Hashtbl.replace subst dst (Tac.C v)
          | None -> ())
      | Tac.Phi { dst; args } -> (
          (* phi with identical arguments (or only self-references) *)
          let distinct =
            List.sort_uniq compare
              (List.filter
                 (fun (_, o) ->
                   match o with
                   | Tac.T t -> not (Temp.equal t dst)
                   | Tac.C _ -> true)
                 (List.map (fun (_, o) -> ((), o)) args))
          in
          match distinct with
          | [ ((), o) ] -> Hashtbl.replace subst dst o
          | _ -> ())
      | Tac.Bin _ | Tac.Fbin _ | Tac.Cmp _ | Tac.Un _ | Tac.Load _
      | Tac.Store _ ->
          ());
  (* resolve substitution chains *)
  let rec resolve seen o =
    match o with
    | Tac.C _ -> o
    | Tac.T t -> (
        if Temp.Set.mem t seen then o
        else
          match Hashtbl.find_opt subst t with
          | Some o' -> resolve (Temp.Set.add t seen) o'
          | None -> o)
  in
  let apply o =
    let o' = resolve Temp.Set.empty o in
    if o' <> o then changed := true;
    o'
  in
  List.iter
    (fun l ->
      let b = Cfg.block cfg l in
      b.Cfg.instrs <- List.map (Tac.map_operands apply) b.Cfg.instrs;
      b.Cfg.term <-
        (match b.Cfg.term with
        | Tac.Cbr r as t -> (
            match resolve Temp.Set.empty (Tac.T r.c) with
            | Tac.C v ->
                changed := true;
                Tac.Jmp (if v <> 0L then r.if_true else r.if_false)
            | Tac.T c' ->
                if not (Temp.equal c' r.c) then changed := true;
                if Temp.equal c' r.c then t else Tac.Cbr { r with c = c' })
        | Tac.Ret (Some o) -> Tac.Ret (Some (apply o))
        | (Tac.Jmp _ | Tac.Ret None) as t -> t))
    (Cfg.rpo cfg);
  !changed

(* Dominator-scoped CSE over pure instructions. *)
let cse cfg =
  let changed = ref false in
  let dom = Dom.of_cfg cfg in
  let table : (string, Temp.t) Hashtbl.t = Hashtbl.create 64 in
  let key i =
    match i with
    | Tac.Bin { op; a; b; _ } ->
        Some (Format.asprintf "b%d|%a|%a" (Hashtbl.hash op) Tac.pp_operand a Tac.pp_operand b)
    | Tac.Fbin { op; a; b; _ } ->
        Some (Format.asprintf "f%d|%a|%a" (Hashtbl.hash op) Tac.pp_operand a Tac.pp_operand b)
    | Tac.Cmp { cond; fp; a; b; _ } ->
        Some
          (Format.asprintf "c%d%b|%a|%a" (Hashtbl.hash cond) fp Tac.pp_operand a
             Tac.pp_operand b)
    | Tac.Un { op; a; _ } ->
        Some (Format.asprintf "u%d|%a" (Hashtbl.hash op) Tac.pp_operand a)
    | Tac.Load _ | Tac.Store _ | Tac.Phi _ -> None
  in
  let rec walk l scope =
    let b = Cfg.block cfg l in
    let added = ref [] in
    b.Cfg.instrs <-
      List.map
        (fun i ->
          match (key i, Tac.def i) with
          | Some k, Some d -> (
              match Hashtbl.find_opt table k with
              | Some prior ->
                  changed := true;
                  Tac.Un { dst = d; op = Opcode.Mov; a = Tac.T prior }
              | None ->
                  Hashtbl.replace table k d;
                  added := k :: !added;
                  i)
          | _ -> i)
        b.Cfg.instrs;
    List.iter (fun c -> walk c (scope + 1)) (Dom.children dom l);
    List.iter (fun k -> Hashtbl.remove table k) !added
  in
  (match Cfg.rpo cfg with [] -> () | entry :: _ -> walk entry 0);
  !changed

(* Dead-code elimination: remove pure defs with no uses. *)
let dce cfg =
  let changed = ref false in
  let used = ref Temp.Set.empty in
  let mark t = used := Temp.Set.add t !used in
  Cfg.iter_instrs cfg (fun _ i -> List.iter mark (Tac.uses i));
  List.iter
    (fun l -> List.iter mark (Tac.term_uses (Cfg.block cfg l).Cfg.term))
    (Cfg.rpo cfg);
  List.iter
    (fun l ->
      let b = Cfg.block cfg l in
      let keep i =
        match (Tac.def i, i) with
        | _, Tac.Store _ -> true
        | Some d, (Tac.Load _ | Tac.Bin _ | Tac.Fbin _ | Tac.Cmp _ | Tac.Un _ | Tac.Phi _)
          ->
            (* loads are pure in this IR (no volatile); a dead load can
               only be removed if its fault cannot matter — we keep the
               paper's semantics by removing it: speculation filters such
               exceptions anyway *)
            Temp.Set.mem d !used
        | None, _ -> true
      in
      let before = List.length b.Cfg.instrs in
      b.Cfg.instrs <- List.filter keep b.Cfg.instrs;
      if List.length b.Cfg.instrs <> before then changed := true)
    (Cfg.rpo cfg);
  !changed

(* Merge straight-line jump chains: b ends in Jmp s, s has one pred and is
   not the entry: inline s into b. *)
let merge_chains cfg =
  let changed = ref false in
  let continue_scan = ref true in
  while !continue_scan do
    continue_scan := false;
    let labels = Cfg.rpo cfg in
    List.iter
      (fun l ->
        match Cfg.block_opt cfg l with
        | None -> ()
        | Some b -> (
            match b.Cfg.term with
            | Tac.Jmp s
              when (not (Label.equal s cfg.Cfg.entry))
                   && (not (Label.equal s l))
                   && List.length (Cfg.preds cfg s) = 1 ->
                let sb = Cfg.block cfg s in
                let has_phi =
                  List.exists
                    (function Tac.Phi _ -> true | _ -> false)
                    sb.Cfg.instrs
                in
                if not has_phi then begin
                  b.Cfg.instrs <- b.Cfg.instrs @ sb.Cfg.instrs;
                  b.Cfg.term <- sb.Cfg.term;
                  Cfg.remove_block cfg s;
                  (* phis in s's successors named s as a predecessor *)
                  List.iter
                    (fun succ ->
                      match Cfg.block_opt cfg succ with
                      | None -> ()
                      | Some nb ->
                          nb.Cfg.instrs <-
                            List.map
                              (function
                                | Tac.Phi p ->
                                    Tac.Phi
                                      {
                                        p with
                                        args =
                                          List.map
                                            (fun (pl, o) ->
                                              if Label.equal pl s then (l, o)
                                              else (pl, o))
                                            p.args;
                                      }
                                | i -> i)
                              nb.Cfg.instrs)
                    (Tac.term_succs sb.Cfg.term);
                  changed := true;
                  continue_scan := true
                end
            | Tac.Jmp _ | Tac.Cbr _ | Tac.Ret _ -> ()))
      labels
  done;
  !changed

(* Branch folding and unreachable-block pruning change the edge set;
   phi arguments for edges that no longer exist must be dropped. *)
let prune_phi_args cfg =
  List.iter
    (fun l ->
      let b = Cfg.block cfg l in
      let preds = Cfg.preds cfg l in
      b.Cfg.instrs <-
        List.map
          (function
            | Tac.Phi p ->
                Tac.Phi
                  {
                    p with
                    args =
                      List.filter (fun (pl, _) -> List.mem pl preds) p.args;
                  }
            | i -> i)
          b.Cfg.instrs)
    (Cfg.rpo cfg)

let run cfg =
  let rounds = ref 0 in
  let continue_opt = ref true in
  while !continue_opt && !rounds < 10 do
    incr rounds;
    let c1 = propagate cfg in
    let c2 = cse cfg in
    let c3 = dce cfg in
    Cfg.prune_unreachable cfg;
    prune_phi_args cfg;
    continue_opt := c1 || c2 || c3
  done;
  ignore (merge_chains cfg);
  Cfg.prune_unreachable cfg;
  prune_phi_args cfg
