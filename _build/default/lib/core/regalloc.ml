module Hb = Edge_ir.Hblock
module Temp = Edge_ir.Temp
module Label = Edge_ir.Label
module Conventions = Edge_isa.Conventions

type t = {
  regs : int Temp.Map.t;
  live_in : (Label.t, Temp.Set.t) Hashtbl.t;
  live_out : (Label.t, Temp.Set.t) Hashtbl.t;
}

let block_uses (h : Hb.t) =
  let defs = Hb.defs h in
  let add acc u = if Temp.Set.mem u defs then acc else Temp.Set.add u acc in
  let from_body =
    List.fold_left
      (fun acc hi -> List.fold_left add acc (Hb.hop_uses hi))
      Temp.Set.empty h.Hb.body
  in
  (* exit guards consume predicate temps too: a branch predicated on a
     live-in value keeps that value live into this block *)
  List.fold_left
    (fun acc e -> List.fold_left add acc (Hb.guard_uses e.Hb.eguard))
    from_body h.Hb.hexits

let block_defs (h : Hb.t) =
  List.fold_left
    (fun acc (x, _) -> Temp.Set.add x acc)
    Temp.Set.empty h.Hb.houts

let allocate hblocks ~entry ~params ~retq =
  ignore entry;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  let uses = Hashtbl.create 16 and defs = Hashtbl.create 16 in
  List.iter
    (fun h ->
      Hashtbl.replace uses h.Hb.hname (block_uses h);
      Hashtbl.replace defs h.Hb.hname (block_defs h);
      Hashtbl.replace live_in h.Hb.hname Temp.Set.empty;
      Hashtbl.replace live_out h.Hb.hname Temp.Set.empty)
    hblocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun h ->
        let out =
          List.fold_left
            (fun acc e ->
              match e.Hb.etarget with
              | None -> acc
              | Some s ->
                  Temp.Set.union acc
                    (Option.value ~default:Temp.Set.empty
                       (Hashtbl.find_opt live_in s)))
            Temp.Set.empty h.Hb.hexits
        in
        let inn =
          Temp.Set.union
            (Hashtbl.find uses h.Hb.hname)
            (Temp.Set.diff out (Hashtbl.find defs h.Hb.hname))
        in
        if not (Temp.Set.equal out (Hashtbl.find live_out h.Hb.hname)) then begin
          Hashtbl.replace live_out h.Hb.hname out;
          changed := true
        end;
        if not (Temp.Set.equal inn (Hashtbl.find live_in h.Hb.hname)) then begin
          Hashtbl.replace live_in h.Hb.hname inn;
          changed := true
        end)
      (List.rev hblocks)
  done;
  (* temps needing registers *)
  let cross = ref (Temp.Set.add retq (Temp.Set.of_list params)) in
  List.iter
    (fun h ->
      cross := Temp.Set.union !cross (Hashtbl.find uses h.Hb.hname);
      cross := Temp.Set.union !cross (Hashtbl.find defs h.Hb.hname))
    hblocks;
  (* interference: pairs simultaneously live at a boundary, pairs written
     by the same block, and written-while-live pairs *)
  let interf : (Temp.t, Temp.Set.t) Hashtbl.t = Hashtbl.create 64 in
  let add_edge a b =
    if not (Temp.equal a b) then begin
      let sa = Option.value ~default:Temp.Set.empty (Hashtbl.find_opt interf a) in
      Hashtbl.replace interf a (Temp.Set.add b sa);
      let sb = Option.value ~default:Temp.Set.empty (Hashtbl.find_opt interf b) in
      Hashtbl.replace interf b (Temp.Set.add a sb)
    end
  in
  let add_clique s =
    Temp.Set.iter (fun a -> Temp.Set.iter (fun b -> add_edge a b) s) s
  in
  List.iter
    (fun h ->
      let inn = Hashtbl.find live_in h.Hb.hname in
      let out = Hashtbl.find live_out h.Hb.hname in
      let dfs = Hashtbl.find defs h.Hb.hname in
      add_clique inn;
      add_clique (Temp.Set.union out dfs))
    hblocks;
  (* parameters are all live on entry *)
  add_clique (Temp.Set.of_list params);
  let neighbors t =
    Option.value ~default:Temp.Set.empty (Hashtbl.find_opt interf t)
  in
  let regs = ref Temp.Map.empty in
  let pin t r = regs := Temp.Map.add t r !regs in
  pin retq Conventions.result_reg;
  List.iteri (fun i p -> pin p (Conventions.param_reg i)) params;
  let taken t =
    Temp.Set.fold
      (fun n acc ->
        match Temp.Map.find_opt n !regs with
        | Some r -> r :: acc
        | None -> acc)
      (neighbors t) []
  in
  let error = ref None in
  Temp.Set.iter
    (fun t ->
      if not (Temp.Map.mem t !regs) then begin
        let used = taken t in
        let r = ref Conventions.first_alloc_reg in
        while List.mem !r used && !r < Conventions.num_regs do
          incr r
        done;
        if !r >= Conventions.num_regs then
          error := Some (Printf.sprintf "out of registers for t%d" t)
        else pin t !r
      end)
    !cross;
  match !error with
  | Some e -> Error e
  | None ->
      Ok { regs = !regs; live_in; live_out }

let reg_of t tmp = Temp.Map.find_opt tmp t.regs

let live_in t l =
  Option.value ~default:Temp.Set.empty (Hashtbl.find_opt t.live_in l)

let live_out t l =
  Option.value ~default:Temp.Set.empty (Hashtbl.find_opt t.live_out l)
