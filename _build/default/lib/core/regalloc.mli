(** Cross-block register allocation.

    Values flowing between TRIPS blocks travel through the 128
    architectural registers (Section 3); within a block they use direct
    targets. Interference is therefore only meaningful at block
    boundaries: temps interfere when simultaneously live into or out of
    some hyperblock, or when both written by the same block. Parameters
    and the return value are pinned to the convention registers. *)

type t

val allocate :
  Edge_ir.Hblock.t list ->
  entry:Edge_ir.Label.t ->
  params:Edge_ir.Temp.t list ->
  retq:Edge_ir.Temp.t ->
  (t, string) result

val reg_of : t -> Edge_ir.Temp.t -> int option
(** [None] for block-local temps. *)

val live_in : t -> Edge_ir.Label.t -> Edge_ir.Temp.Set.t
val live_out : t -> Edge_ir.Label.t -> Edge_ir.Temp.Set.t
val block_uses : Edge_ir.Hblock.t -> Edge_ir.Temp.Set.t
(** Temps consumed by the body with no internal definition (live-ins). *)
