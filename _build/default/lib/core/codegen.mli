(** Code generation: predicated hyperblocks to TRIPS blocks.

    Performs immediate-form selection (the 9-bit immediate field replaces
    the second target, Figure 2), wide-constant materialization via
    [Geni], LSID assignment in body order, dataflow target wiring (every
    definition of a temp targets every consumer — dataflow joins), and
    software fanout-tree construction with [Mov] (or [Mov4] when enabled)
    when a value or predicate has more consumers than its producer has
    target fields (Section 3.6). Register reads are duplicated before
    falling back to moves, as the read file allows several slots per
    register. *)

type emitted = {
  block : Edge_isa.Block.t;
  fanout_moves : int;  (** move instructions inserted for fanout *)
  explicit_predicates : int;  (** body instructions carrying a guard *)
}

val emit :
  Edge_ir.Hblock.t ->
  alloc:Regalloc.t ->
  gen:Edge_ir.Temp.Gen.t ->
  use_mov4:bool ->
  (emitted, string) result
