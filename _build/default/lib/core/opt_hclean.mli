(** Hyperblock cleanup after the predicate optimizations: unguarded
    single-definition copy propagation and dead-code elimination
    (tests whose predicates no longer guard anything, moves made
    redundant by merging, unused speculative values). The paper runs
    global CSE and peephole after its predicate phases (Section 5); this
    is our equivalent. *)

val run : Edge_ir.Hblock.t -> unit
