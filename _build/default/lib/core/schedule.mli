(** Spatial instruction scheduling.

    Maps each instruction of a TRIPS block onto the 4×4 grid of execution
    tiles (8 reservation-station slots per tile, 128 total). A greedy
    critical-path-first placer in the spirit of spatial path scheduling:
    instructions are placed, most critical first, at the tile minimizing
    the weighted Manhattan distance to their producers, the register file
    (top row) for reads/writes, and the data tiles (left column) for
    memory operations. The cycle simulator charges one cycle per hop
    (Section 6). *)

val grid_rows : int
val grid_cols : int
val num_tiles : int
val slots_per_tile : int

val tile_row : int -> int
val tile_col : int -> int

val hops : int -> int -> int
(** Manhattan distance between two tiles. *)

val reg_access_hops : int -> int
(** Hops between a tile and the register tiles (top edge). *)

val mem_access_hops : int -> int
(** Hops between a tile and the data tiles (left edge). *)

val place : Edge_isa.Block.t -> int array
(** [place b] returns the tile index for every instruction id. Slot
    capacity (8 per tile) is respected. Deterministic. *)
