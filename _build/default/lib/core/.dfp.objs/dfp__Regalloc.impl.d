lib/core/regalloc.ml: Edge_ir Edge_isa Hashtbl List Option Printf
