lib/core/opt_merge.ml: Array Edge_ir Edge_isa Format Hashtbl List Option Printf
