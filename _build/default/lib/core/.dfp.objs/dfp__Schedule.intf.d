lib/core/schedule.mli: Edge_isa
