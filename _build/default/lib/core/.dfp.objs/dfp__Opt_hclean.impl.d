lib/core/opt_hclean.ml: Edge_ir Edge_isa Hashtbl List Option
