lib/core/opt_merge.mli: Edge_ir
