lib/core/config.ml:
