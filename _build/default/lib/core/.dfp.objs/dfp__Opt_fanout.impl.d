lib/core/opt_fanout.ml: Array Edge_ir Hashtbl List Option
