lib/core/driver.ml: Array Codegen Config Edge_ir Edge_isa If_convert List Opt_classic Opt_fanout Opt_hclean Opt_merge Opt_path Opt_sand Regalloc Region Result Schedule String Unroll
