lib/core/codegen.ml: Array Edge_ir Edge_isa Format Hashtbl Int64 List Option Printf Regalloc String
