lib/core/if_convert.mli: Edge_ir
