lib/core/config.mli:
