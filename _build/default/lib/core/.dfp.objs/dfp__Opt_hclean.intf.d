lib/core/opt_hclean.mli: Edge_ir
