lib/core/schedule.ml: Array Edge_isa List Queue
