lib/core/driver.mli: Config Edge_ir Edge_isa
