lib/core/loops.mli: Edge_ir
