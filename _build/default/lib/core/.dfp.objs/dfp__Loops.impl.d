lib/core/loops.ml: Edge_ir Hashtbl List Option Queue
