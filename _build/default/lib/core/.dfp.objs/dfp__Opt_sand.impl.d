lib/core/opt_sand.ml: Array Edge_ir Edge_isa Hashtbl List
