lib/core/opt_path.ml: Array Edge_ir Edge_isa Hashtbl List
