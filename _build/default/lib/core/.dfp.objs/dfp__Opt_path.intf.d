lib/core/opt_path.mli: Edge_ir
