lib/core/unroll.mli: Edge_ir Loops
