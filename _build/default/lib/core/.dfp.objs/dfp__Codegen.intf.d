lib/core/codegen.mli: Edge_ir Edge_isa Regalloc
