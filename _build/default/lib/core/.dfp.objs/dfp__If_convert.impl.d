lib/core/if_convert.ml: Edge_ir Edge_isa Fun Hashtbl List Option Printf String
