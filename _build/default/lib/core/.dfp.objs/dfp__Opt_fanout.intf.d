lib/core/opt_fanout.mli: Edge_ir
