lib/core/region.ml: Edge_ir If_convert List Loops
