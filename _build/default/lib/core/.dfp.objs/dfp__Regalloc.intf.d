lib/core/regalloc.mli: Edge_ir
