lib/core/region.mli: Edge_ir If_convert
