lib/core/opt_sand.mli: Edge_ir
