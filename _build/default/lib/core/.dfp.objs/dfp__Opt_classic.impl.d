lib/core/opt_classic.ml: Edge_ir Edge_isa Format Hashtbl Int64 List
