lib/core/opt_classic.mli: Edge_ir
