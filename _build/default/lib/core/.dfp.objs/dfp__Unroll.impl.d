lib/core/unroll.ml: Edge_ir List Loops Printf
