(** Natural-loop analysis over a CFG: back edges via dominators, loop
    bodies by backward reachability, innermost-loop identification. *)

type loop = {
  header : Edge_ir.Label.t;
  latches : Edge_ir.Label.t list;  (** sources of back edges *)
  body : Edge_ir.Label.Set.t;  (** includes the header *)
  innermost : bool;
}

val find : Edge_ir.Cfg.t -> loop list
val headers : Edge_ir.Cfg.t -> Edge_ir.Label.Set.t
