module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp

(* Copy propagation: an unguarded [mov a <- b] where [a] has exactly one
   definition can forward [b] (temp or constant) into all uses of [a],
   including guard uses when [b] is a temp. *)
let copy_prop (h : Hb.t) =
  let def_count = Hashtbl.create 16 in
  List.iter
    (fun hi ->
      match Hb.hop_def hi.Hb.hop with
      | Some d ->
          Hashtbl.replace def_count d
            (1 + Option.value ~default:0 (Hashtbl.find_opt def_count d))
      | None -> ())
    h.Hb.body;
  let out_producers =
    List.fold_left
      (fun acc (_, p) -> Temp.Set.add p acc)
      Temp.Set.empty h.Hb.houts
  in
  let subst : (Temp.t, Tac.operand) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun hi ->
      match (hi.Hb.guard, hi.Hb.hop) with
      | None, Hb.Op (Tac.Un { dst; op = Edge_isa.Opcode.Mov; a })
        when Option.value ~default:0 (Hashtbl.find_opt def_count dst) = 1
             && not (Temp.Set.mem dst out_producers) ->
          Hashtbl.replace subst dst a
      | _ -> ())
    h.Hb.body;
  let rec resolve seen o =
    match o with
    | Tac.C _ -> o
    | Tac.T t -> (
        if Temp.Set.mem t seen then o
        else
          match Hashtbl.find_opt subst t with
          | Some o' -> resolve (Temp.Set.add t seen) o'
          | None -> o)
  in
  let resolve_temp t =
    (* guards can only reference temps *)
    match resolve Temp.Set.empty (Tac.T t) with Tac.T t' -> Some t' | Tac.C _ -> None
  in
  let changed = ref false in
  h.Hb.body <-
    List.map
      (fun hi ->
        let hop =
          match hi.Hb.hop with
          | Hb.Sand { dst; a; b } ->
              let res t =
                match resolve Temp.Set.empty (Tac.T t) with
                | Tac.T t' ->
                    if not (Temp.equal t t') then changed := true;
                    t'
                | Tac.C _ -> t
              in
              Hb.Sand { dst; a = res a; b = res b }
          | Hb.Op i ->
              let i' =
                Tac.map_operands
                  (fun o ->
                    let o' = resolve Temp.Set.empty o in
                    if o' <> o then changed := true;
                    o')
                  i
              in
              Hb.Op i'
          | (Hb.Null_write _ | Hb.Null_store _) as n -> n
        in
        let guard =
          match hi.Hb.guard with
          | None -> None
          | Some g ->
              let gpreds =
                List.map
                  (fun p ->
                    match resolve_temp p with
                    | Some p' ->
                        if not (Temp.equal p p') then changed := true;
                        p'
                    | None -> p)
                  g.Hb.gpreds
              in
              Some { g with Hb.gpreds }
        in
        { Hb.hop; guard })
      h.Hb.body;
  h.Hb.hexits <-
    List.map
      (fun e ->
        match e.Hb.eguard with
        | None -> e
        | Some g ->
            let gpreds =
              List.map
                (fun p ->
                  match resolve_temp p with
                  | Some p' ->
                      if not (Temp.equal p p') then changed := true;
                      p'
                  | None -> p)
                g.Hb.gpreds
            in
            { e with Hb.eguard = Some { g with Hb.gpreds } })
      h.Hb.hexits;
  !changed

(* Remove instructions whose destination is never consumed as data, as a
   predicate, or as a block-output producer. Stores, nulls and
   instructions without destinations stay. *)
let dce (h : Hb.t) =
  let used = ref Temp.Set.empty in
  let mark t = used := Temp.Set.add t !used in
  List.iter (fun hi -> List.iter mark (Hb.hop_uses hi)) h.Hb.body;
  List.iter
    (fun e -> List.iter mark (Hb.guard_uses e.Hb.eguard))
    h.Hb.hexits;
  List.iter (fun (_, p) -> mark p) h.Hb.houts;
  let before = List.length h.Hb.body in
  h.Hb.body <-
    List.filter
      (fun hi ->
        match hi.Hb.hop with
        | Hb.Op (Tac.Store _) | Hb.Null_write _ | Hb.Null_store _ -> true
        | Hb.Sand { dst; _ } -> Temp.Set.mem dst !used
        | Hb.Op i -> (
            match Tac.def i with
            | None -> true
            | Some d -> Temp.Set.mem d !used))
      h.Hb.body;
  List.length h.Hb.body <> before

let run h =
  let continue_clean = ref true in
  let rounds = ref 0 in
  while !continue_clean && !rounds < 8 do
    incr rounds;
    let c1 = copy_prop h in
    let c2 = dce h in
    continue_clean := c1 || c2
  done
