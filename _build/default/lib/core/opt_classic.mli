(** Traditional scalar optimizations, run on SSA form before hyperblock
    formation (the paper's Scale compiler "performs all traditional loop
    and scalar optimizations before it forms hyperblocks", Section 5).

    Included: constant folding and propagation, copy propagation,
    dominator-scoped common-subexpression elimination, phi simplification,
    dead-code elimination, and constant branch folding. *)

val run : Edge_ir.Cfg.t -> unit
(** The CFG must be in SSA form; it stays in SSA form. Iterates to a
    (bounded) fixpoint. *)
