module Cfg = Edge_ir.Cfg
module Label = Edge_ir.Label
module Dom = Edge_ir.Dom

type loop = {
  header : Label.t;
  latches : Label.t list;
  body : Label.Set.t;
  innermost : bool;
}

let find cfg =
  let dom = Dom.of_cfg cfg in
  let labels = Cfg.rpo cfg in
  (* back edge: l -> h where h dominates l *)
  let back_edges =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun s -> if Dom.dominates dom s l then Some (l, s) else None)
          (Cfg.succs cfg l))
      labels
  in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_header header)
      in
      Hashtbl.replace by_header header (latch :: prev))
    back_edges;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        (* natural loop body: header + nodes reaching a latch without
           passing through the header *)
        let body = ref (Label.Set.singleton header) in
        let work = Queue.create () in
        List.iter
          (fun l ->
            if not (Label.Set.mem l !body) then begin
              body := Label.Set.add l !body;
              Queue.add l work
            end)
          latches;
        while not (Queue.is_empty work) do
          let n = Queue.pop work in
          List.iter
            (fun p ->
              if not (Label.Set.mem p !body) then begin
                body := Label.Set.add p !body;
                Queue.add p work
              end)
            (Cfg.preds cfg n)
        done;
        { header; latches; body = !body; innermost = true } :: acc)
      by_header []
  in
  (* innermost = contains no other loop's header (besides its own) *)
  List.map
    (fun l ->
      let contains_other =
        List.exists
          (fun l2 ->
            (not (Label.equal l2.header l.header))
            && Label.Set.mem l2.header l.body)
          loops
      in
      { l with innermost = not contains_other })
    loops

let headers cfg =
  List.fold_left
    (fun acc l -> Label.Set.add l.header acc)
    Label.Set.empty (find cfg)
