module Cfg = Edge_ir.Cfg
module Label = Edge_ir.Label

let estimate cfg blocks =
  Label.Set.fold
    (fun l acc ->
      match Cfg.block_opt cfg l with
      | None -> acc
      | Some b -> acc + List.length b.Cfg.instrs + 2)
    blocks 0

let singletons cfg =
  let entry = cfg.Cfg.entry in
  let rest =
    List.filter (fun l -> not (Label.equal l entry)) (Cfg.rpo cfg)
  in
  List.map
    (fun l -> { If_convert.head = l; blocks = Label.Set.singleton l })
    (entry :: rest)

let split region _cfg =
  let head = region.If_convert.head in
  let rest =
    Label.Set.elements (Label.Set.remove head region.If_convert.blocks)
  in
  List.map
    (fun l -> { If_convert.head = l; blocks = Label.Set.singleton l })
    (head :: rest)

(* Greedy selection restricted to [allowed] (used to re-partition an
   oversized region with a smaller budget). *)
let select_restricted cfg ~allowed ~budget =
  let loops = Loops.find cfg in
  let loop_headers =
    List.fold_left
      (fun acc l -> Label.Set.add l.Loops.header acc)
      Label.Set.empty loops
  in
  let assigned = ref Label.Set.empty in
  let regions = ref [] in
  let assign region =
    assigned := Label.Set.union !assigned region.If_convert.blocks;
    regions := region :: !regions
  in
  let loop_of_header h =
    List.find_opt (fun l -> Label.equal l.Loops.header h) loops
  in
  let in_allowed l =
    match allowed with None -> true | Some s -> Label.Set.mem l s
  in
  let rpo = List.filter in_allowed (Cfg.rpo cfg) in
  List.iter
    (fun l ->
      if not (Label.Set.mem l !assigned) then begin
        let as_loop =
          match loop_of_header l with
          | Some lp
            when lp.Loops.innermost
                 && Label.Set.for_all
                      (fun b ->
                        in_allowed b && not (Label.Set.mem b !assigned))
                      lp.Loops.body
                 && estimate cfg lp.Loops.body <= budget ->
              Some { If_convert.head = l; blocks = lp.Loops.body }
          | _ -> None
        in
        match as_loop with
        | Some r -> assign r
        | None ->
            let blocks = ref (Label.Set.singleton l) in
            let grew = ref true in
            while !grew do
              grew := false;
              let candidates =
                Label.Set.fold
                  (fun b acc ->
                    List.fold_left
                      (fun acc s ->
                        if
                          in_allowed s
                          && (not (Label.Set.mem s !blocks))
                          && (not (Label.Set.mem s !assigned))
                          && (not (Label.Set.mem s loop_headers))
                          && (not (Label.equal s cfg.Cfg.entry))
                          && List.for_all
                               (fun p -> Label.Set.mem p !blocks)
                               (Cfg.preds cfg s)
                        then s :: acc
                        else acc)
                      acc (Cfg.succs cfg b))
                  !blocks []
              in
              List.iter
                (fun s ->
                  if
                    (not (Label.Set.mem s !blocks))
                    && estimate cfg (Label.Set.add s !blocks) <= budget
                  then begin
                    blocks := Label.Set.add s !blocks;
                    grew := true
                  end)
                candidates
            done;
            assign { If_convert.head = l; blocks = !blocks }
      end)
    rpo;
  List.rev !regions

let select_within cfg region ~budget =
  if Label.Set.cardinal region.If_convert.blocks <= 1 then [ region ]
  else
    select_restricted cfg ~allowed:(Some region.If_convert.blocks) ~budget

let select cfg ~budget = select_restricted cfg ~allowed:None ~budget
