module Cfg = Edge_ir.Cfg
module Tac = Edge_ir.Tac
module Label = Edge_ir.Label

let copy_suffix k = Printf.sprintf ".u%d" k

let rename_label body k l =
  if Label.Set.mem l body then l ^ copy_suffix k else l

(* Instructions are replicated verbatim: the CFG is out of SSA here, so
   temporaries may be freely redefined by each copy. Phis never appear. *)
let copy_block (b : Cfg.bblock) ~body ~k ~header ~next_header =
  let rl l =
    if Label.equal l header then next_header else rename_label body k l
  in
  {
    Cfg.label = rename_label body k b.Cfg.label;
    instrs = b.Cfg.instrs;
    term =
      (match b.Cfg.term with
      | Tac.Jmp l -> Tac.Jmp (rl l)
      | Tac.Cbr r ->
          Tac.Cbr { r with if_true = rl r.if_true; if_false = rl r.if_false }
      | Tac.Ret _ as t -> t);
  }

let unroll_loop cfg (loop : Loops.loop) ~factor =
  if factor > 1 then begin
    let body = loop.Loops.body in
    let header = loop.Loops.header in
    (* copy k (for k in 1..factor-1) gets labels l.uk; the back edge of
       copy k points at copy k+1's header, the last copy's back edge at
       the original header *)
    for k = 1 to factor - 1 do
      let next_header =
        if k = factor - 1 then header else header ^ copy_suffix (k + 1)
      in
      Label.Set.iter
        (fun l ->
          let b = Cfg.block cfg l in
          Cfg.add_block cfg (copy_block b ~body ~k ~header ~next_header))
        body
    done;
    (* original copy's back edges now enter copy 1 *)
    let first_copy_header = header ^ copy_suffix 1 in
    List.iter
      (fun latch ->
        let b = Cfg.block cfg latch in
        let rl l = if Label.equal l header then first_copy_header else l in
        b.Cfg.term <-
          (match b.Cfg.term with
          | Tac.Jmp l -> Tac.Jmp (rl l)
          | Tac.Cbr r ->
              Tac.Cbr
                { r with if_true = rl r.if_true; if_false = rl r.if_false }
          | Tac.Ret _ as t -> t))
      loop.Loops.latches
  end

let estimate_instrs cfg body =
  Label.Set.fold
    (fun l acc ->
      match Cfg.block_opt cfg l with
      | None -> acc
      | Some b -> acc + List.length b.Cfg.instrs + 2)
    body 0

let run cfg ~max_unroll ~target_instrs =
  if max_unroll > 1 then begin
    let loops = List.filter (fun l -> l.Loops.innermost) (Loops.find cfg) in
    List.iter
      (fun loop ->
        let size = estimate_instrs cfg loop.Loops.body in
        let budget = max 1 (target_instrs / max 1 size) in
        let factor = min max_unroll budget in
        if factor > 1 then unroll_loop cfg loop ~factor)
      loops
  end
