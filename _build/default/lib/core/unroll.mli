(** Static loop unrolling.

    The paper's Section 3.4/Figure 3a relies on unrolling while-style
    loops into a single TRIPS block, with each unrolled iteration's test
    predicated on the previous iteration's test — the implicit
    predicate-AND chain. This pass replicates innermost loop bodies on the
    (non-SSA) CFG; hyperblock formation then if-converts the whole
    unrolled loop into one block when it fits. *)

val run : Edge_ir.Cfg.t -> max_unroll:int -> target_instrs:int -> unit
(** Unrolls every innermost loop by a factor chosen so the unrolled body's
    estimated instruction count stays under [target_instrs] (and at most
    [max_unroll]). *)

val unroll_loop : Edge_ir.Cfg.t -> Loops.loop -> factor:int -> unit
