module Gen_kernel = Test_support.Gen_kernel
module A = Edge_lang.Ast
module P = Edge_lang.Parser
module I = Edge_lang.Interp
module L = Edge_lang.Lexer

let check = Alcotest.(check bool)

let lex_basics () =
  match L.tokenize "kernel f(int x) { return x + 0x1F; } // c\n/* d */" with
  | Error e -> Alcotest.failf "%s" e
  | Ok toks ->
      check "token count" true (List.length toks = 14);
      check "hex literal" true
        (List.exists (function L.INT 31L -> true | _ -> false) toks)

let lex_floats () =
  match L.tokenize "1.5 2.0e3 7" with
  | Error e -> Alcotest.failf "%s" e
  | Ok toks ->
      check "float 1.5" true
        (List.exists (function L.FLOAT f -> f = 1.5 | _ -> false) toks);
      check "float 2e3" true
        (List.exists (function L.FLOAT f -> f = 2000.0 | _ -> false) toks);
      check "int 7" true
        (List.exists (function L.INT 7L -> true | _ -> false) toks)

let lex_errors () =
  match L.tokenize "int $" with
  | Ok _ -> Alcotest.fail "must reject '$'"
  | Error e -> check "line number" true (String.length e > 0)

let parse_precedence () =
  match P.parse_expr "1 + 2 * 3 == 7 && 4 < 5" with
  | Error e -> Alcotest.failf "%s" e
  | Ok e -> (
      match e with
      | A.Bin (A.LAnd, A.Bin (A.Eq, _, _), A.Bin (A.Lt, _, _)) -> ()
      | _ -> Alcotest.fail "precedence shape wrong")

let parse_dangling_else () =
  let src =
    "kernel f(int x) { if (x > 0) { if (x > 1) { return 1; } else { return \
     2; } } return 3; }"
  in
  match P.parse src with
  | Error e -> Alcotest.failf "%s" e
  | Ok k -> (
      match k.A.body with
      | [ A.If (_, [ A.If (_, _, e2) ], e1); _ ] ->
          check "inner else nonempty" true (e2 <> []);
          check "outer else empty" true (e1 = [])
      | _ -> Alcotest.fail "shape")

let parse_else_if_chain () =
  let src =
    "kernel f(int x) { if (x == 0) { return 0; } else if (x == 1) { return \
     1; } else { return 2; } }"
  in
  match P.parse src with
  | Error e -> Alcotest.failf "%s" e
  | Ok _ -> ()

let parse_rejects () =
  List.iter
    (fun src ->
      match P.parse src with
      | Ok _ -> Alcotest.failf "must reject %s" src
      | Error _ -> ())
    [
      "kernel f(int x) { return y; } }";
      "kernel f(int x) { int x = 1 }";
      "kernel f(byte b) { return 0; }";
      "kernel f() { 1 + ; }";
    ]

let typecheck_rejects () =
  List.iter
    (fun src ->
      match P.parse src with
      | Error _ -> ()
      | Ok k -> (
          match Edge_lang.Typecheck.check_kernel k with
          | Ok () -> Alcotest.failf "must reject: %s" src
          | Error _ -> ()))
    [
      "kernel f(int x) { return y; }";
      "kernel f(int x) { int x = 0; return x; }";
      "kernel f(int x, float g) { return x + g; }";
      "kernel f(float g) { if (g) { return 1; } return 0; }";
      "kernel f(int* a) { return a * 2; }";
      "kernel f(int x) { break; return x; }";
      "kernel f(int x) { if (x > 0) { return 1.0; } return 2; }";
      "kernel f(int* a, float* b) { return a == b; }";
    ]

let interp_src src args expect =
  let mem = Edge_isa.Mem.create ~size:4096 in
  match I.run_src src ~args ~mem with
  | Ok o -> check src true (o.I.return_value = Some expect)
  | Error e -> Alcotest.failf "%s: %s" src e

let interp_basics () =
  interp_src "kernel f(int x) { return x * 3 - 1; }" [ 5L ] 14L;
  interp_src "kernel f(int x) { return -7 / 2; }" [ 0L ] (-3L);
  interp_src "kernel f(int x) { return -7 % 2; }" [ 0L ] (-1L);
  interp_src "kernel f(int x) { return 1 << 10; }" [ 0L ] 1024L;
  interp_src "kernel f(int x) { return x >> 1; }" [ -8L ] (-4L);
  interp_src "kernel f(int x) { return !x; }" [ 0L ] 1L;
  interp_src "kernel f(int x) { return ~x; }" [ 0L ] (-1L);
  interp_src "kernel f(int x) { return x > 2 ? 10 : 20; }" [ 3L ] 10L;
  interp_src "kernel f(int x) { return ftoi(itof(x) * 2.5); }" [ 4L ] 10L

let interp_short_circuit () =
  (* the right operand of && must not be evaluated when the left is
     false: it would fault via an out-of-range load *)
  let src =
    "kernel f(int* a, int x) { int r = 0; if (x > 0 && a[100000] > 0) { r = \
     1; } return r; }"
  in
  let mem = Edge_isa.Mem.create ~size:4096 in
  match I.run_src src ~args:[ 0L; 0L ] ~mem with
  | Ok o -> check "short circuit" true (o.I.return_value = Some 0L)
  | Error e -> Alcotest.failf "unexpected fault: %s" e

let interp_loops () =
  interp_src
    "kernel f(int n) { int s = 0; int i; for (i = 1; i <= n; i = i + 1) { s \
     = s + i; } return s; }"
    [ 10L ] 55L;
  interp_src
    "kernel f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } \
     return s; }"
    [ 4L ] 10L;
  interp_src
    "kernel f(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) { if \
     (i == 3) { continue; } if (i == 7) { break; } s = s + i; } return s; }"
    [ 100L ] 18L

let interp_memory () =
  let src =
    "kernel f(int* a, int4* w, byte* b) { a[0] = 300; w[4] = 70000; b[40] = \
     200; return a[0] + w[4] + b[40]; }"
  in
  let mem = Edge_isa.Mem.create ~size:4096 in
  match I.run_src src ~args:[ 0L; 256L; 512L ] ~mem with
  | Ok o ->
      (* byte store of 200 sign-extends to -56 on load *)
      check "memory widths" true (o.I.return_value = Some (Int64.of_int (300 + 70000 - 56)))
  | Error e -> Alcotest.failf "%s" e

let interp_faults () =
  let mem = Edge_isa.Mem.create ~size:4096 in
  (match I.run_src "kernel f(int x) { return 1 / x; }" ~args:[ 0L ] ~mem with
  | Error e -> check "div fault" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "division by zero must fault");
  match
    I.run_src "kernel f(int* a) { return a[9999]; }" ~args:[ 0L ] ~mem
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range load must fault"

let lower_produces_valid_cfg () =
  let src =
    "kernel f(int n, int* a) { int s = 0; int i; for (i = 0; i < n; i = i + \
     1) { if (a[i] > 0 && a[i] < 100) { s = s + a[i]; } } return s; }"
  in
  match Edge_lang.Lower.compile src with
  | Error e -> Alcotest.failf "%s" e
  | Ok cfg ->
      check "has entry" true (Edge_ir.Cfg.block_opt cfg "entry" <> None);
      Edge_ir.Ssa.construct cfg;
      (match Edge_ir.Ssa.check cfg with
      | Ok () -> ()
      | Error es -> Alcotest.failf "ssa: %s" (String.concat ";" es))

let qcheck_random_parse =
  QCheck.Test.make ~name:"random kernels typecheck and interp" ~count:60
    QCheck.(pair (int_bound 10000) (int_range 4 20))
    (fun (seed, size) ->
      let ast = Gen_kernel.generate ~seed ~size in
      match Edge_lang.Typecheck.check_kernel ast with
      | Error e -> QCheck.Test.fail_reportf "typecheck: %s" e
      | Ok () -> (
          let mem = Gen_kernel.default_mem () in
          match
            Edge_lang.Interp.run ast ~args:Gen_kernel.default_args ~mem
          with
          | Ok _ -> true
          | Error e -> QCheck.Test.fail_reportf "interp: %s" e))

let tests =
  [
    Alcotest.test_case "lexer basics" `Quick lex_basics;
    Alcotest.test_case "lexer floats" `Quick lex_floats;
    Alcotest.test_case "lexer errors" `Quick lex_errors;
    Alcotest.test_case "parser precedence" `Quick parse_precedence;
    Alcotest.test_case "dangling else" `Quick parse_dangling_else;
    Alcotest.test_case "else-if chain" `Quick parse_else_if_chain;
    Alcotest.test_case "parser rejects" `Quick parse_rejects;
    Alcotest.test_case "typecheck rejects" `Quick typecheck_rejects;
    Alcotest.test_case "interp basics" `Quick interp_basics;
    Alcotest.test_case "interp short circuit" `Quick interp_short_circuit;
    Alcotest.test_case "interp loops" `Quick interp_loops;
    Alcotest.test_case "interp memory widths" `Quick interp_memory;
    Alcotest.test_case "interp faults" `Quick interp_faults;
    Alcotest.test_case "lowering to valid SSA" `Quick lower_produces_valid_cfg;
    QCheck_alcotest.to_alcotest qcheck_random_parse;
  ]
