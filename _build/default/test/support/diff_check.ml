(* Differential testing backbone: for random kernels and for every
   compiler configuration, the reference interpreter, the functional
   dataflow executor and the cycle-accurate simulator must produce the
   same return value and final memory image (DESIGN.md, "Differential
   testing backbone"). *)

module Conv = Edge_isa.Conventions

type run_result = {
  ret : int64;
  mem : Edge_isa.Mem.t;
  fault : bool;
}

exception Skip

let run_interp ast =
  let mem = Gen_kernel.default_mem () in
  match Edge_lang.Interp.run ~fuel:3_000_000 ast ~args:Gen_kernel.default_args ~mem with
  | Error "fault: fuel exhausted" ->
      (* the random program does not terminate; nothing to compare *)
      raise Skip
  | Ok o ->
      Ok
        {
          ret = Option.value ~default:0L o.Edge_lang.Interp.return_value;
          mem;
          fault = false;
        }
  | Error e when String.length e >= 5 && String.sub e 0 5 = "fault" ->
      Ok { ret = 0L; mem; fault = true }
  | Error e -> Error ("interp: " ^ e)

let compile ast config =
  match Edge_lang.Lower.lower ast with
  | Error e -> Error ("lower: " ^ e)
  | Ok cfg -> (
      match Dfp.Driver.compile_cfg cfg config with
      | Error e -> Error ("compile: " ^ e)
      | Ok c -> Ok c)

let prep_regs () =
  let regs = Array.make 128 0L in
  List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) Gen_kernel.default_args;
  regs

let run_functional (c : Dfp.Driver.compiled) =
  let regs = prep_regs () in
  let mem = Gen_kernel.default_mem () in
  match Edge_sim.Functional.run c.Dfp.Driver.program ~regs ~mem with
  | Ok _ -> Ok { ret = regs.(Conv.result_reg); mem; fault = false }
  | Error e when String.length e >= 5 && String.sub e 0 5 = "fault" ->
      Ok { ret = 0L; mem; fault = true }
  | Error e -> Error ("functional: " ^ e)

let run_cycle (c : Dfp.Driver.compiled) =
  let regs = prep_regs () in
  let mem = Gen_kernel.default_mem () in
  let placement n =
    match List.assoc_opt n c.Dfp.Driver.placements with
    | Some p -> p
    | None -> [||]
  in
  match Edge_sim.Cycle_sim.run ~placement c.Dfp.Driver.program ~regs ~mem with
  | Ok _ -> Ok { ret = regs.(Conv.result_reg); mem; fault = false }
  | Error e when String.length e >= 5 && String.sub e 0 5 = "fault" ->
      Ok { ret = 0L; mem; fault = true }
  | Error e -> Error ("cycle: " ^ e)

let configs =
  ("Merge", Dfp.Config.merge)
  :: ("Mov4", { Dfp.Config.both with Dfp.Config.use_mov4 = true })
  :: ("Sand", Dfp.Config.sand)
  :: Dfp.Config.all_paper_configs

let agree a b =
  a.fault = b.fault
  && (a.fault || (Int64.equal a.ret b.ret && Edge_isa.Mem.equal a.mem b.mem))

let check_kernel ?(cycle = true) ast =
  match (try `R (run_interp ast) with Skip -> `Skip) with
  | `Skip -> Ok ()
  | `R r ->
  match r with
  | Error e -> Error e
  | Ok reference ->
      let rec go = function
        | [] -> Ok ()
        | (name, config) :: rest -> (
            match compile ast config with
            | Error e -> Error (Printf.sprintf "%s: %s" name e)
            | Ok compiled -> (
                match run_functional compiled with
                | Error e -> Error (Printf.sprintf "%s: %s" name e)
                | Ok r when not (agree reference r) ->
                    Error
                      (Printf.sprintf
                         "%s functional: ret %Ld vs %Ld (fault %b vs %b)" name
                         r.ret reference.ret r.fault reference.fault)
                | Ok _ ->
                    if cycle then (
                      match run_cycle compiled with
                      | Error e -> Error (Printf.sprintf "%s: %s" name e)
                      | Ok r when not (agree reference r) ->
                          Error
                            (Printf.sprintf
                               "%s cycle: ret %Ld vs %Ld (fault %b vs %b)" name
                               r.ret reference.ret r.fault reference.fault)
                      | Ok _ -> go rest)
                    else go rest))
      in
      go configs

