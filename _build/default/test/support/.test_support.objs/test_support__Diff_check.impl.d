test/support/diff_check.ml: Array Dfp Edge_isa Edge_lang Edge_sim Gen_kernel Int64 List Option Printf String
