test/support/gen_kernel.ml: Edge_isa Edge_lang Int64 List Printf QCheck2 Random String
