(* Random kernel generation for differential testing.

   Programs are closed over a fixed memory layout: two int arrays A and B
   of 64 elements at fixed addresses, plus two scalar int parameters.
   Indices are masked to stay in bounds; divisors are forced non-zero;
   loops have small constant bounds. Every generated program therefore
   terminates without faulting, and the reference interpreter, the
   functional simulator and the cycle simulator must agree exactly on the
   return value and the final memory image. *)

module A = Edge_lang.Ast

let array_len = 64
let addr_a = 4096
let addr_b = 8192

type genv = {
  mutable vars : string list;
  mutable protected : string list;  (* induction variables: never reassigned *)
  mutable depth : int;
}

let gen_int st = Int64.of_int (QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.int_range (-100) 100))

let pick st l = List.nth l (QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.int_bound (List.length l - 1)))

(* expression of int type over in-scope vars *)
let rec gen_expr st env depth : A.expr =
  if depth <= 0 then gen_leaf st env
  else
    match QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.int_bound 9) with
    | 0 | 1 -> gen_leaf st env
    | 2 ->
        let op = pick st [ A.Add; A.Sub; A.Mul; A.BAnd; A.BOr; A.BXor ] in
        A.Bin (op, gen_expr st env (depth - 1), gen_expr st env (depth - 1))
    | 3 ->
        (* division with a guaranteed non-zero divisor *)
        let d = gen_expr st env (depth - 1) in
        let nz = A.Bin (A.BOr, d, A.Int 1L) in
        A.Bin (pick st [ A.Div; A.Rem ], gen_expr st env (depth - 1), nz)
    | 4 ->
        let op = pick st [ A.Lt; A.Le; A.Gt; A.Ge; A.Eq; A.Ne ] in
        A.Bin (op, gen_expr st env (depth - 1), gen_expr st env (depth - 1))
    | 5 ->
        let op = pick st [ A.LAnd; A.LOr ] in
        A.Bin (op, gen_expr st env (depth - 1), gen_expr st env (depth - 1))
    | 6 -> A.Un (pick st [ A.Neg; A.BNot; A.LNot ], gen_expr st env (depth - 1))
    | 7 ->
        (* bounded shift *)
        let amt = A.Int (Int64.of_int (QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.int_bound 7))) in
        A.Bin (pick st [ A.Shl; A.Shr ], gen_expr st env (depth - 1), amt)
    | 8 ->
        let arr = pick st [ "A"; "B" ] in
        A.Index (arr, masked_index st env (depth - 1))
    | _ ->
        A.Cond
          ( gen_expr st env (depth - 1),
            gen_expr st env (depth - 1),
            gen_expr st env (depth - 1) )

and gen_leaf st env =
  match QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.int_bound 2) with
  | 0 -> A.Int (gen_int st)
  | _ -> (
      match env.vars with
      | [] -> A.Int (gen_int st)
      | vs -> A.Var (pick st vs))

and masked_index st env depth =
  A.Bin (A.BAnd, gen_expr st env depth, A.Int (Int64.of_int (array_len - 1)))

let rec gen_stmts st env budget ~in_loop : A.stmt list =
  if budget <= 0 then []
  else
    let s, cost = gen_stmt st env budget ~in_loop in
    s :: gen_stmts st env (budget - cost) ~in_loop

and gen_stmt st env budget ~in_loop =
  let choice = QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.int_bound 11) in
  match choice with
  | 0 | 1 when env.depth < 2 && budget > 4 ->
      (* if/else; inner declarations go out of scope afterwards *)
      env.depth <- env.depth + 1;
      let saved = env.vars in
      let c = gen_expr st env 2 in
      let t = gen_stmts st env (budget / 3) ~in_loop in
      env.vars <- saved;
      let e =
        if QCheck2.Gen.generate1 ~rand:st QCheck2.Gen.bool then
          gen_stmts st env (budget / 3) ~in_loop
        else []
      in
      env.vars <- saved;
      env.depth <- env.depth - 1;
      (A.If (c, t, e), 3 + List.length t + List.length e)
  | 2 when env.depth < 2 && budget > 6 ->
      (* bounded for loop wrapped so the induction variable stays local *)
      env.depth <- env.depth + 1;
      let saved = env.vars in
      let iv = Printf.sprintf "i%d" (List.length env.vars) in
      env.vars <- iv :: env.vars;
      env.protected <- iv :: env.protected;
      let bound = 2 + QCheck2.Gen.generate1 ~rand:st (QCheck2.Gen.int_bound 8) in
      let body = gen_stmts st env (budget / 3) ~in_loop:true in
      env.vars <- saved;
      env.protected <- List.filter (fun v -> not (String.equal v iv)) env.protected;
      env.depth <- env.depth - 1;
      ( A.If
          ( A.Int 1L,
            [
              A.Decl (A.Tint, iv, Some (A.Int 0L));
              A.For
                ( Some (A.Assign (iv, A.Int 0L)),
                  Some (A.Bin (A.Lt, A.Var iv, A.Int (Int64.of_int bound))),
                  Some (A.Assign (iv, A.Bin (A.Add, A.Var iv, A.Int 1L))),
                  body );
            ],
            [] ),
        4 + List.length body )
  | 3 when budget > 2 ->
      let arr = pick st [ "A"; "B" ] in
      (A.Store (arr, masked_index st env 1, gen_expr st env 2), 2)
  | 4 ->
      let name = Printf.sprintf "v%d" (List.length env.vars) in
      let s = A.Decl (A.Tint, name, Some (gen_expr st env 2)) in
      env.vars <- name :: env.vars;
      (s, 1)
  | 5 | 6 | 7
    when List.exists (fun v -> not (List.mem v env.protected)) env.vars ->
      let assignable =
        List.filter (fun v -> not (List.mem v env.protected)) env.vars
      in
      (A.Assign (pick st assignable, gen_expr st env 2), 1)
  | 8 when in_loop && QCheck2.Gen.generate1 ~rand:st QCheck2.Gen.bool ->
      (A.If (gen_expr st env 1, [ A.Break ], []), 2)
  | 9 when in_loop && QCheck2.Gen.generate1 ~rand:st QCheck2.Gen.bool ->
      (A.If (gen_expr st env 1, [ A.Continue ], []), 2)
  | _ ->
      let name = Printf.sprintf "v%d" (List.length env.vars) in
      let s = A.Decl (A.Tint, name, Some (gen_expr st env 1)) in
      env.vars <- name :: env.vars;
      (s, 1)

let gen_kernel_with st ~size =
  let env = { vars = [ "x"; "y" ]; protected = []; depth = 0 } in
  let body = gen_stmts st env size ~in_loop:false in
  let ret =
    A.Return
      (Some
         (match env.vars with
         | [] -> A.Int 0L
         | vs ->
             List.fold_left
               (fun acc v -> A.Bin (A.Add, acc, A.Var v))
               (A.Var (List.hd vs))
               (List.tl vs)))
  in
  {
    A.kname = "rand";
    params =
      [
        { A.pname = "x"; pty = A.Tint };
        { A.pname = "y"; pty = A.Tint };
        { A.pname = "A"; pty = A.Tptr A.I64 };
        { A.pname = "B"; pty = A.Tptr A.I64 };
      ];
    body = body @ [ ret ];
  }

let generate ~seed ~size =
  let st = Random.State.make [| seed |] in
  gen_kernel_with st ~size

let default_args = [ 7L; -3L; Int64.of_int addr_a; Int64.of_int addr_b ]

let default_mem () =
  let mem = Edge_isa.Mem.create ~size:16384 in
  for i = 0 to array_len - 1 do
    Edge_isa.Mem.store_int mem (addr_a + (8 * i)) (Int64.of_int ((i * 37) - 90));
    Edge_isa.Mem.store_int mem (addr_b + (8 * i)) (Int64.of_int (1000 - (i * 13)))
  done;
  mem
