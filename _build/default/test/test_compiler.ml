module Gen_kernel = Test_support.Gen_kernel
module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module O = Edge_isa.Opcode

let check = Alcotest.(check bool)

let compile src config =
  match Edge_lang.Lower.compile src with
  | Error e -> Alcotest.failf "lower: %s" e
  | Ok cfg -> (
      match Dfp.Driver.compile_cfg cfg config with
      | Error e -> Alcotest.failf "compile: %s" e
      | Ok c -> c)

let diamond_src =
  "kernel f(int x, int y) { int r = 0; if (x > y) { r = x * 2; } else { r = \
   y * 3; } return r; }"

let loop_src =
  "kernel f(int n, int* a) { int s = 0; int i; for (i = 0; i < n; i = i + 1) \
   { s = s + a[i]; } return s; }"

(* Hyper mode converts a diamond into one block; BB keeps four+ *)
let region_formation () =
  let c1 = compile diamond_src Dfp.Config.hyper_baseline in
  let c2 = compile diamond_src Dfp.Config.bb in
  check "hyper merges the diamond" true (c1.Dfp.Driver.static_blocks = 1);
  check "bb keeps basic blocks" true (c2.Dfp.Driver.static_blocks >= 4)

(* fanout reduction must strictly reduce explicit predicates and moves on
   predicated code (Section 5.1) *)
let fanout_reduces () =
  let base = compile diamond_src Dfp.Config.hyper_baseline in
  let intra = compile diamond_src Dfp.Config.intra in
  check "fewer explicit predicates" true
    (intra.Dfp.Driver.explicit_predicates < base.Dfp.Driver.explicit_predicates);
  check "no more fanout moves than baseline" true
    (intra.Dfp.Driver.static_fanout_moves <= base.Dfp.Driver.static_fanout_moves)

let merge_shrinks () =
  let both = compile loop_src Dfp.Config.both in
  let merged = compile loop_src Dfp.Config.merge in
  check "merging never grows code" true
    (merged.Dfp.Driver.static_instrs <= both.Dfp.Driver.static_instrs)

(* unrolling: the loop body must be replicated in the hyperblock *)
let unroll_fills_block () =
  let c = compile loop_src Dfp.Config.both in
  (* one loop block; its instruction count reflects several iterations *)
  let loop_block =
    List.find_opt
      (fun (_, b) ->
        Array.exists
          (fun (i : Edge_isa.Instr.t) ->
            match i.Edge_isa.Instr.opcode with O.Ld _ -> true | _ -> false)
          b.Edge_isa.Block.instrs)
      c.Dfp.Driver.program.Edge_isa.Program.blocks
  in
  match loop_block with
  | None -> Alcotest.fail "no loop block found"
  | Some (_, b) ->
      let loads =
        Array.fold_left
          (fun acc (i : Edge_isa.Instr.t) ->
            match i.Edge_isa.Instr.opcode with O.Ld _ -> acc + 1 | _ -> acc)
          0 b.Edge_isa.Block.instrs
      in
      check "several unrolled iterations (loads > 1)" true (loads > 1)

(* Figure 3a: in the unrolled loop the tests form an implicit
   predicate-AND chain: every test after the first is predicated *)
let predicate_and_chain () =
  let c = compile loop_src Dfp.Config.hyper_baseline in
  let b =
    List.find
      (fun (_, b) ->
        Array.exists
          (fun (i : Edge_isa.Instr.t) -> O.is_test i.Edge_isa.Instr.opcode)
          b.Edge_isa.Block.instrs
        && Array.length b.Edge_isa.Block.instrs > 10)
      c.Dfp.Driver.program.Edge_isa.Program.blocks
    |> snd
  in
  let tests =
    Array.to_list b.Edge_isa.Block.instrs
    |> List.filter (fun (i : Edge_isa.Instr.t) -> O.is_test i.Edge_isa.Instr.opcode)
  in
  let predicated_tests =
    List.filter Edge_isa.Instr.is_predicated tests
  in
  check "more than one test (unrolled)" true (List.length tests > 1);
  check "chained tests are predicated" true
    (List.length predicated_tests >= List.length tests - 1)

(* opt_fanout unit semantics on a hand-built hyperblock *)
let fanout_conditions () =
  let mk hop guard = { Hb.hop; guard } in
  let g = Hb.singleton 1 true in
  let h =
    {
      Hb.hname = "h";
      body =
        [
          mk (Hb.Op (Tac.Cmp { dst = 1; cond = O.Gt; fp = false; a = Tac.T 0; b = Tac.C 0L })) None;
          (* test defining a predicate used below: keeps its guard *)
          mk (Hb.Op (Tac.Cmp { dst = 2; cond = O.Lt; fp = false; a = Tac.T 0; b = Tac.C 9L })) (Some g);
          (* plain interior computation: guard removable *)
          mk (Hb.Op (Tac.Bin { dst = 3; op = O.Add; a = Tac.T 0; b = Tac.C 1L })) (Some g);
          (* store: guard must stay (condition 1) *)
          mk (Hb.Op (Tac.Store { width = O.W8; addr = Tac.T 0; off = 0; v = Tac.T 3 })) (Some g);
          (* output producer: guard must stay (condition 3) *)
          mk (Hb.Op (Tac.Un { dst = 4; op = O.Mov; a = Tac.T 3 })) (Some g);
          (* one of two defs of t5: guard must stay (condition 4) *)
          mk (Hb.Op (Tac.Un { dst = 5; op = O.Mov; a = Tac.C 1L })) (Some g);
          mk (Hb.Op (Tac.Un { dst = 5; op = O.Mov; a = Tac.C 2L })) (Some (Hb.singleton 1 false));
          mk (Hb.Op (Tac.Bin { dst = 6; op = O.Add; a = Tac.T 5; b = Tac.T 2 })) (Some (Hb.singleton 2 true));
        ];
      hexits = [ { Hb.eguard = None; etarget = None } ];
      houts = [ (4, 4) ];
    }
  in
  Dfp.Opt_fanout.run h;
  let guards = List.map (fun hi -> hi.Hb.guard <> None) h.Hb.body in
  check "test keeps guard (defines pred)" true (List.nth guards 1);
  check "interior add unguarded" false (List.nth guards 2);
  check "store keeps guard" true (List.nth guards 3);
  check "output mov keeps guard" true (List.nth guards 4);
  check "join def 1 keeps guard" true (List.nth guards 5);
  check "join def 2 keeps guard" true (List.nth guards 6);
  check "use of t2 unguarded now" false (List.nth guards 7)

(* merging categories on hand-built hyperblocks *)
let merge_categories () =
  let mk hop guard = { Hb.hop; guard } in
  let test01 =
    mk
      (Hb.Op (Tac.Cmp { dst = 1; cond = O.Gt; fp = false; a = Tac.T 0; b = Tac.C 0L }))
      None
  in
  (* category 1: same predicate, opposite polarity *)
  let h =
    {
      Hb.hname = "h";
      body =
        [
          test01;
          mk (Hb.Op (Tac.Un { dst = 2; op = O.Mov; a = Tac.T 0 })) (Some (Hb.singleton 1 true));
          mk (Hb.Op (Tac.Un { dst = 2; op = O.Mov; a = Tac.T 0 })) (Some (Hb.singleton 1 false));
        ];
      hexits = [ { Hb.eguard = None; etarget = None } ];
      houts = [];
    }
  in
  let n = Dfp.Opt_merge.merge_body h in
  check "cat1 merged" true (n = 1);
  check "cat1 result unguarded" true
    (List.for_all
       (fun hi ->
         match hi.Hb.hop with
         | Hb.Op (Tac.Un _) -> hi.Hb.guard = None
         | _ -> true)
       h.Hb.body);
  (* category 2: different predicates (nested), same polarity *)
  let h2 =
    {
      Hb.hname = "h2";
      body =
        [
          test01;
          mk
            (Hb.Op (Tac.Cmp { dst = 2; cond = O.Lt; fp = false; a = Tac.T 0; b = Tac.C 5L }))
            (Some (Hb.singleton 1 false));
          mk (Hb.Op (Tac.Un { dst = 3; op = O.Mov; a = Tac.C 7L })) (Some (Hb.singleton 1 true));
          mk (Hb.Op (Tac.Un { dst = 3; op = O.Mov; a = Tac.C 7L })) (Some (Hb.singleton 2 true));
        ];
      hexits = [ { Hb.eguard = None; etarget = None } ];
      houts = [];
    }
  in
  let n2 = Dfp.Opt_merge.merge_body h2 in
  check "cat2 merged" true (n2 = 1);
  let or_guard =
    List.exists
      (fun hi ->
        match hi.Hb.guard with
        | Some { Hb.gpreds = [ _; _ ]; _ } -> true
        | _ -> false)
      h2.Hb.body
  in
  check "cat2 produced predicate-OR guard" true or_guard;
  (* exits: two branches to the same label on disjoint predicates merge
     (Figure 3a's bro_f) *)
  let h3 =
    {
      Hb.hname = "h3";
      body =
        [
          test01;
          mk
            (Hb.Op (Tac.Cmp { dst = 2; cond = O.Gt; fp = false; a = Tac.T 0; b = Tac.C 1L }))
            (Some (Hb.singleton 1 true));
        ];
      hexits =
        [
          { Hb.eguard = Some (Hb.singleton 1 false); etarget = Some "out" };
          { Hb.eguard = Some (Hb.singleton 2 false); etarget = Some "out" };
          { Hb.eguard = Some (Hb.singleton 2 true); etarget = Some "h3" };
        ];
      houts = [];
    }
  in
  let n3 = Dfp.Opt_merge.merge_exits h3 in
  check "exit OR merge" true (n3 = 1);
  check "two exits remain" true (List.length h3.Hb.hexits = 2)

(* cross-config compile of a batch of kernels must respect machine
   limits; Block.validate runs inside codegen, so compilation succeeding
   is the assertion *)
let all_configs_compile () =
  List.iter
    (fun (_, config) ->
      List.iter
        (fun seed ->
          let ast = Gen_kernel.generate ~seed ~size:20 in
          match Edge_lang.Lower.lower ast with
          | Error e -> Alcotest.failf "lower: %s" e
          | Ok cfg -> (
              match Dfp.Driver.compile_cfg cfg config with
              | Error e -> Alcotest.failf "seed %d: %s" seed e
              | Ok _ -> ()))
        [ 1; 2; 3; 4; 5 ])
    (("Merge", Dfp.Config.merge) :: Dfp.Config.all_paper_configs)

let regalloc_pins () =
  let c = compile diamond_src Dfp.Config.both in
  let p = c.Dfp.Driver.program in
  (* the result must be written to the conventional register *)
  let writes_result =
    List.exists
      (fun (_, b) ->
        Array.exists
          (fun (w : Edge_isa.Block.write) ->
            w.Edge_isa.Block.wreg = Edge_isa.Conventions.result_reg)
          b.Edge_isa.Block.writes)
      p.Edge_isa.Program.blocks
  in
  check "result register written" true writes_result

(* the Section 7 sand pass: a serial chain converts, guards are rewritten
   onto the conjunctions, and the false consumers get exit predicates *)
let sand_pass () =
  let mk hop guard = { Hb.hop; guard } in
  let gen = Temp.Gen.create () in
  List.iter (fun n -> Temp.Gen.next_above gen n) [ 100 ];
  let test dst ?gpred () =
    mk
      (Hb.Op (Tac.Cmp { dst; cond = O.Gt; fp = false; a = Tac.T (50 + dst); b = Tac.C 0L }))
      (Option.map (fun p -> Hb.singleton p true) gpred)
  in
  let h =
    {
      Hb.hname = "h";
      body =
        [
          test 1 ();
          test 2 ~gpred:1 ();
          test 3 ~gpred:2 ();
          (* a consumer on the chain's conjunction *)
          mk (Hb.Op (Tac.Un { dst = 9; op = O.Mov; a = Tac.C 5L }))
            (Some (Hb.singleton 3 true));
          mk (Hb.Null_write 9) (Some (Hb.singleton 3 false));
        ];
      hexits =
        [
          { Hb.eguard = Some (Hb.singleton 3 true); etarget = Some "h" };
          { Hb.eguard = Some (Hb.singleton 3 false); etarget = None };
        ];
      houts = [ (9, 9) ];
    }
  in
  let n = Dfp.Opt_sand.run h ~gen in
  check "one chain converted" true (n = 1);
  let sands =
    List.filter
      (fun hi -> match hi.Hb.hop with Hb.Sand _ -> true | _ -> false)
      h.Hb.body
  in
  check "two conjunction sands + one exit sand" true (List.length sands = 3);
  (* chain tests are unguarded now *)
  List.iter
    (fun hi ->
      match hi.Hb.hop with
      | Hb.Op (Tac.Cmp { dst; _ }) when dst <= 3 ->
          check "test unguarded" true (hi.Hb.guard = None)
      | _ -> ())
    h.Hb.body;
  (* no guard references the old chain predicates 2,3 *)
  let refs_old g =
    List.exists (fun p -> p = 2 || p = 3) (Hb.guard_uses g)
  in
  check "body guards rewritten" false
    (List.exists (fun hi -> refs_old hi.Hb.guard) h.Hb.body);
  check "exit guards rewritten" false
    (List.exists (fun e -> refs_old e.Hb.eguard) h.Hb.hexits)

(* fanout reduction and merging are idempotent *)
let passes_idempotent () =
  List.iter
    (fun seed ->
      let ast = Gen_kernel.generate ~seed ~size:18 in
      let cfg = Result.get_ok (Edge_lang.Lower.lower ast) in
      Edge_ir.Ssa.construct cfg;
      Dfp.Opt_classic.run cfg;
      Edge_ir.Ssa.destruct cfg;
      Edge_ir.Cfg.prune_unreachable cfg;
      let retq = Temp.Gen.fresh cfg.Edge_ir.Cfg.gen in
      let liveness = Edge_ir.Liveness.compute cfg in
      let regions = Dfp.Region.select cfg ~budget:50 in
      List.iter
        (fun r ->
          let h = Result.get_ok (Dfp.If_convert.convert cfg liveness r ~retq) in
          Dfp.Opt_fanout.run h;
          let snapshot = Format.asprintf "%a" Hb.pp h in
          Dfp.Opt_fanout.run h;
          check "fanout idempotent" true
            (String.equal snapshot (Format.asprintf "%a" Hb.pp h));
          Dfp.Opt_merge.run h;
          let snapshot = Format.asprintf "%a" Hb.pp h in
          Dfp.Opt_merge.run h;
          check "merge idempotent" true
            (String.equal snapshot (Format.asprintf "%a" Hb.pp h)))
        regions)
    [ 7; 77; 777 ]

let tests =
  [
    Alcotest.test_case "region formation" `Quick region_formation;
    Alcotest.test_case "fanout reduction reduces" `Quick fanout_reduces;
    Alcotest.test_case "merging shrinks" `Quick merge_shrinks;
    Alcotest.test_case "unrolling fills blocks" `Quick unroll_fills_block;
    Alcotest.test_case "implicit predicate-AND chain" `Quick predicate_and_chain;
    Alcotest.test_case "fanout conditions (5.1)" `Quick fanout_conditions;
    Alcotest.test_case "merge categories (5.3)" `Quick merge_categories;
    Alcotest.test_case "all configs compile" `Quick all_configs_compile;
    Alcotest.test_case "regalloc pins result" `Quick regalloc_pins;
    Alcotest.test_case "sand pass (7)" `Quick sand_pass;
    Alcotest.test_case "passes idempotent" `Quick passes_idempotent;
  ]
