(* End-to-end harness coverage: the Figure 7 sweep machinery, the genalg
   case study and the ablations on a small benchmark subset. *)

let tiny_benches () =
  List.filter_map Edge_workloads.Registry.find [ "tblook01"; "canrdr01" ]

let figure7_subset () =
  let r = Edge_harness.Figure7.run ~benches:(tiny_benches ()) () in
  Alcotest.(check int) "two rows" 2 (List.length r.Edge_harness.Figure7.rows);
  Alcotest.(check (list string)) "no errors" []
    (List.map fst r.Edge_harness.Figure7.errors);
  List.iter
    (fun row ->
      (* hyper speedup over itself is exactly 1 *)
      match List.assoc_opt "Hyper" row.Edge_harness.Figure7.speedups with
      | Some s -> Alcotest.(check (float 0.0001)) "hyper baseline" 1.0 s
      | None -> Alcotest.fail "missing Hyper")
    r.Edge_harness.Figure7.rows;
  (* the optimizations never lose on these kernels *)
  List.iter
    (fun row ->
      match List.assoc_opt "Both" row.Edge_harness.Figure7.speedups with
      | Some s ->
          Alcotest.(check bool)
            (row.Edge_harness.Figure7.bench ^ " both >= 0.9") true (s >= 0.9)
      | None -> Alcotest.fail "missing Both")
    r.Edge_harness.Figure7.rows

let genalg_study () =
  match Edge_harness.Genalg_study.run () with
  | Error e -> Alcotest.failf "%s" e
  | Ok s ->
      Alcotest.(check bool)
        "merging+unroll at least matches Both" true
        (s.Edge_harness.Genalg_study.speedup_vs_both >= 0.95);
      Alcotest.(check bool)
        "hand config executes fewer blocks" true
        (s.Edge_harness.Genalg_study.blocks_hand
        <= s.Edge_harness.Genalg_study.blocks_both)

let ablation_runs () =
  let entries, errors = Edge_harness.Ablation.run ~benches:[ "tblook01" ] () in
  Alcotest.(check (list string)) "no errors" [] (List.map fst errors);
  Alcotest.(check bool) "six variants" true (List.length entries = 6);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Edge_harness.Ablation.variant ^ " sane ratio") true
        (e.Edge_harness.Ablation.cycles > 0
        && e.Edge_harness.Ablation.baseline_cycles > 0))
    entries

let experiment_rejects_unknown () =
  (* a workload whose compiled code misbehaves must be reported, not
     silently scored: simulate by running with too few cycles *)
  let w = Option.get (Edge_workloads.Registry.find "cacheb01") in
  let machine = { Edge_sim.Machine.default with Edge_sim.Machine.max_cycles = 50 } in
  match Edge_harness.Experiment.run_one ~machine w ("Both", Dfp.Config.both) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "watchdog-limited run must error"

let tests =
  [
    Alcotest.test_case "figure7 subset" `Quick figure7_subset;
    Alcotest.test_case "genalg study" `Quick genalg_study;
    Alcotest.test_case "ablation subset" `Quick ablation_runs;
    Alcotest.test_case "experiment error path" `Quick experiment_rejects_unknown;
  ]
