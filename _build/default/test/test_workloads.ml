(* Every workload must parse, typecheck, terminate under the reference
   interpreter, and produce identical results when compiled under each
   configuration and run on the functional simulator. (The cycle
   simulator is exercised on a subset here — the full matrix is the
   benchmark harness's job — plus by the differential suite.) *)

module Conv = Edge_isa.Conventions
module Workload = Edge_workloads.Workload

let all = Edge_workloads.Registry.all

let parses w () =
  match Workload.parse w with
  | Ok k -> (
      match Edge_lang.Typecheck.check_kernel k with
      | Ok () -> ()
      | Error e -> Alcotest.failf "typecheck: %s" e)
  | Error e -> Alcotest.failf "parse: %s" e

let reference_terminates w () =
  match Workload.reference_run w with
  | Ok (ret, _) ->
      (* the checksum-style return value should be non-trivial: a kernel
         returning 0 likely lost its work to an input bug *)
      if ret = Some 0L then
        Alcotest.failf "%s returned 0; degenerate input?" w.Workload.name
  | Error e -> Alcotest.failf "%s" e

let functional_verified config w () =
  let reference, ref_mem =
    match Workload.reference_run w with
    | Ok (r, m) -> (Option.value ~default:0L r, m)
    | Error e -> Alcotest.failf "reference: %s" e
  in
  match Edge_harness.Experiment.compile w config with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok compiled -> (
      let mem = Edge_isa.Mem.create ~size:w.Workload.mem_size in
      let args = w.Workload.setup mem in
      let regs = Array.make 128 0L in
      List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) args;
      match Edge_sim.Functional.run compiled.Dfp.Driver.program ~regs ~mem with
      | Error e -> Alcotest.failf "functional: %s" e
      | Ok _ ->
          Alcotest.(check bool)
            "return value" true
            (Int64.equal regs.(Conv.result_reg) reference);
          Alcotest.(check bool) "memory" true (Edge_isa.Mem.equal mem ref_mem))

let cycle_verified w () =
  match Edge_harness.Experiment.run_one w ("Both", Dfp.Config.both) with
  | Ok r ->
      Alcotest.(check bool)
        "nonzero cycles" true
        (r.Edge_harness.Experiment.cycles > 0)
  | Error e -> Alcotest.failf "%s" e

let block_limits config w () =
  match Edge_harness.Experiment.compile w config with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok c ->
      List.iter
        (fun (_, b) ->
          match Edge_isa.Block.validate b with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "%s: %s" b.Edge_isa.Block.name
                (String.concat "; " es))
        c.Dfp.Driver.program.Edge_isa.Program.blocks

let tests =
  List.concat_map
    (fun w ->
      let n = w.Workload.name in
      [
        Alcotest.test_case (n ^ " parses") `Quick (parses w);
        Alcotest.test_case (n ^ " reference run") `Quick
          (reference_terminates w);
        Alcotest.test_case (n ^ " functional/Both") `Quick
          (functional_verified Dfp.Config.both w);
        Alcotest.test_case (n ^ " functional/BB") `Quick
          (functional_verified Dfp.Config.bb w);
        Alcotest.test_case (n ^ " block limits/Hyper") `Quick
          (block_limits Dfp.Config.hyper_baseline w);
      ])
    all
  @ List.filter_map
      (fun name ->
        Option.map
          (fun w ->
            Alcotest.test_case (name ^ " cycle/Both verified") `Slow
              (cycle_verified w))
          (Edge_workloads.Registry.find name))
      [ "tblook01"; "conven00"; "genalg"; "pntrch01" ]
