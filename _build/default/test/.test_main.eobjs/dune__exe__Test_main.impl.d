test/test_main.ml: Alcotest Test_compiler Test_diff Test_harness Test_ir Test_isa Test_lang Test_passes Test_sim Test_workloads
