test/test_ir.ml: Alcotest Edge_ir Edge_isa Hashtbl Int64 List Option String
