test/test_sim.ml: Alcotest Array Dfp Edge_harness Edge_isa Edge_lang Edge_sim Edge_workloads Int64 List Option Printf Result String
