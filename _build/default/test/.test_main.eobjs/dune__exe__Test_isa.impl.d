test/test_isa.ml: Alcotest Array Bytes Dfp Edge_harness Edge_isa Edge_sim Edge_workloads Format Fun Int64 List Option QCheck QCheck_alcotest String
