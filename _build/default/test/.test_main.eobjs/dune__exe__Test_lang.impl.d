test/test_lang.ml: Alcotest Edge_ir Edge_isa Edge_lang Int64 List QCheck QCheck_alcotest String Test_support
