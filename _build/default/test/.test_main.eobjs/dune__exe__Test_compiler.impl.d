test/test_compiler.ml: Alcotest Array Dfp Edge_ir Edge_isa Edge_lang Format List Option Result String Test_support
