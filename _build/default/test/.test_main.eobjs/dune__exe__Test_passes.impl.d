test/test_passes.ml: Alcotest Array Dfp Edge_harness Edge_ir Edge_isa Edge_lang Edge_sim Edge_workloads Int64 List Option Printf Result Test_support
