test/test_diff.ml: Alcotest Edge_lang List Printf Test_support
