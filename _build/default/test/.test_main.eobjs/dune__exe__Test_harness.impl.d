test/test_harness.ml: Alcotest Dfp Edge_harness Edge_sim Edge_workloads List Option
