open Test_support.Diff_check
module Gen_kernel = Test_support.Gen_kernel

let diff_case seed size () =
  let ast = Gen_kernel.generate ~seed ~size in
  match check_kernel ast with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "seed %d size %d: %s" seed size e

let fixed_sources =
  [
    ( "empty",
      "kernel k(int x, int y, int* A, int* B) { return x; }" );
    ( "diamond",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int r = 0;\n\
      \  if (x > y) { r = x; } else { r = y; }\n\
      \  return r;\n\
       }" );
    ( "nested_if",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int r = 0;\n\
      \  if (x > 0) { if (y > 0) { r = 1; } else { r = 2; } } else { r = 3; }\n\
      \  return r;\n\
       }" );
    ( "loop_sum",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int s = 0; int i;\n\
      \  for (i = 0; i < 16; i = i + 1) { s = s + A[i]; }\n\
      \  return s;\n\
       }" );
    ( "loop_break",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int s = 0; int i;\n\
      \  for (i = 0; i < 32; i = i + 1) {\n\
      \    if (A[i] < 0) { continue; }\n\
      \    if (s > 300) { break; }\n\
      \    s = s + A[i];\n\
      \  }\n\
      \  return s + i;\n\
       }" );
    ( "stores",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int i;\n\
      \  for (i = 0; i < 16; i = i + 1) {\n\
      \    if (A[i] > B[i]) { B[i] = A[i]; } else { A[i] = B[i] - 1; }\n\
      \  }\n\
      \  return A[3] + B[5];\n\
       }" );
    ( "while_shortcircuit",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int s = 0; int i = 0;\n\
      \  while (i < 20 && s < 500) { s = s + A[i & 63]; i = i + 1; }\n\
      \  return s * 2 + i;\n\
       }" );
    ( "float_mix",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  float acc = 0.0; int i;\n\
      \  for (i = 0; i < 8; i = i + 1) {\n\
      \    if (A[i] > 0) { acc = acc + itof(A[i]); } else { acc = acc - 0.5; }\n\
      \  }\n\
      \  return ftoi(acc * 4.0);\n\
       }" );
    ( "division",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int s = 0; int i;\n\
      \  for (i = 0; i < 10; i = i + 1) {\n\
      \    if (A[i] != 0) { s = s + (B[i] / A[i]); }\n\
      \  }\n\
      \  return s;\n\
       }" );
    ( "byte_and_word",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int i;\n\
      \  for (i = 0; i < 8; i = i + 1) { A[i] = (A[i] << 1) ^ B[i]; }\n\
      \  return A[0] + A[7];\n\
       }" );
    ( "ternary",
      "kernel k(int x, int y, int* A, int* B) {\n\
      \  int m = x > y ? x : y;\n\
      \  int n = x < y ? x : y;\n\
      \  return m * 100 + n;\n\
       }" );
  ]

let fixed_case (name, src) =
  Alcotest.test_case name `Quick (fun () ->
      match Edge_lang.Parser.parse src with
      | Error e -> Alcotest.failf "parse: %s" e
      | Ok ast -> (
          match check_kernel ast with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s" e))

let tests =
  List.map fixed_case fixed_sources
  @ List.concat_map
      (fun size ->
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "random s%d n%d" seed size)
              `Quick (diff_case seed size))
          (List.init 16 (fun i -> (size * 100) + i)))
      [ 6; 10; 14; 24; 34 ]
