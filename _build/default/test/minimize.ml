(* minimize: a delta-debugging tool for compiler bugs.

   Usage: dune exec test/minimize.exe -- SEED SIZE [CONFIG]
          dune exec test/minimize.exe -- soak N

   In soak mode, runs N random programs through every configuration and
   both simulators against the reference interpreter and reports any
   mismatch. In minimize mode, takes a failing (SEED, SIZE), greedily
   shrinks the program — dropping statements, inlining branches, reducing
   expressions — while preserving the mismatch, and prints the minimal
   reproducer as kernel source. *)

module A = Edge_lang.Ast
module Conv = Edge_isa.Conventions

let config_of_name = function
  | "bb" -> Dfp.Config.bb
  | "hyper" -> Dfp.Config.hyper_baseline
  | "intra" -> Dfp.Config.intra
  | "inter" -> Dfp.Config.inter
  | "both" -> Dfp.Config.both
  | "merge" -> Dfp.Config.merge
  | "hand" -> Dfp.Config.hand_optimized
  | s -> failwith ("unknown config " ^ s)

let mismatch config (ast : A.kernel) =
  match Edge_lang.Typecheck.check_kernel ast with
  | Error _ -> false
  | Ok () -> (
      let mem_ref = Test_support.Gen_kernel.default_mem () in
      match
        Edge_lang.Interp.run ~fuel:3_000_000 ast
          ~args:Test_support.Gen_kernel.default_args ~mem:mem_ref
      with
      | Error _ -> false
      | Ok o -> (
          let expected =
            Option.value ~default:0L o.Edge_lang.Interp.return_value
          in
          match Edge_lang.Lower.lower ast with
          | Error _ -> false
          | Ok cfg -> (
              match Dfp.Driver.compile_cfg cfg config with
              | Error _ -> false
              | Ok c -> (
                  let regs = Array.make 128 0L in
                  List.iteri
                    (fun i v -> regs.(Conv.param_reg i) <- v)
                    Test_support.Gen_kernel.default_args;
                  let mem = Test_support.Gen_kernel.default_mem () in
                  match
                    Edge_sim.Functional.run c.Dfp.Driver.program ~regs ~mem
                  with
                  | Error _ -> true (* malformed also counts as a bug *)
                  | Ok _ ->
                      not
                        (Int64.equal regs.(Conv.result_reg) expected
                        && Edge_isa.Mem.equal mem mem_ref)))))

let rec expr_reductions (e : A.expr) : A.expr list =
  match e with
  | A.Bin (op, a, b) ->
      [ a; b; A.Int 1L ]
      @ List.map (fun a' -> A.Bin (op, a', b)) (expr_reductions a)
      @ List.map (fun b' -> A.Bin (op, a, b')) (expr_reductions b)
  | A.Un (op, a) -> (a :: List.map (fun a' -> A.Un (op, a')) (expr_reductions a))
  | A.Cond (c, a, b) ->
      [ a; b ]
      @ List.map (fun c' -> A.Cond (c', a, b)) (expr_reductions c)
      @ List.map (fun a' -> A.Cond (c, a', b)) (expr_reductions a)
      @ List.map (fun b' -> A.Cond (c, a, b')) (expr_reductions b)
  | A.Index (v, i) ->
      A.Int 3L :: List.map (fun i' -> A.Index (v, i')) (expr_reductions i)
  | A.Int v -> if v = 0L then [] else [ A.Int 0L ]
  | A.Var _ | A.Float _ -> [ A.Int 0L ]

let rec reductions (stmts : A.stmt list) : A.stmt list list =
  match stmts with
  | [] -> []
  | s :: tl ->
      [ tl ]
      @ (match s with
        | A.If (_, a, b) -> [ a @ tl; b @ tl ]
        | A.While (_, b) -> [ b @ tl ]
        | A.For (_, _, _, b) -> [ b @ tl ]
        | _ -> [])
      @ (match s with
        | A.If (c, a, b) ->
            List.map (fun a' -> A.If (c, a', b) :: tl) (reductions a)
            @ List.map (fun b' -> A.If (c, a, b') :: tl) (reductions b)
        | A.While (c, b) ->
            List.map (fun b' -> A.While (c, b') :: tl) (reductions b)
        | A.For (i, c, st, b) ->
            List.map (fun b' -> A.For (i, c, st, b') :: tl) (reductions b)
        | _ -> [])
      @ (match s with
        | A.Decl (t, n, Some e) ->
            List.map (fun e' -> A.Decl (t, n, Some e') :: tl) (expr_reductions e)
        | A.Assign (n, e) ->
            List.map (fun e' -> A.Assign (n, e') :: tl) (expr_reductions e)
        | A.Return (Some e) ->
            List.map (fun e' -> A.Return (Some e') :: tl) (expr_reductions e)
        | A.Store (n, i, v) ->
            List.map (fun i' -> A.Store (n, i', v) :: tl) (expr_reductions i)
            @ List.map (fun v' -> A.Store (n, i, v') :: tl) (expr_reductions v)
        | _ -> [])
      @ List.map (fun tl' -> s :: tl') (reductions tl)

let pp_kernel (k : A.kernel) =
  let buf = Buffer.create 256 in
  let rec pe (e : A.expr) =
    match e with
    | A.Int v -> Buffer.add_string buf (Int64.to_string v)
    | A.Float f -> Buffer.add_string buf (string_of_float f)
    | A.Var v -> Buffer.add_string buf v
    | A.Bin (op, a, b) ->
        Buffer.add_char buf '(';
        pe a;
        Buffer.add_string buf
          (match op with
          | A.Add -> " + " | A.Sub -> " - " | A.Mul -> " * " | A.Div -> " / "
          | A.Rem -> " % " | A.BAnd -> " & " | A.BOr -> " | " | A.BXor -> " ^ "
          | A.Shl -> " << " | A.Shr -> " >> " | A.Lt -> " < " | A.Le -> " <= "
          | A.Gt -> " > " | A.Ge -> " >= " | A.Eq -> " == " | A.Ne -> " != "
          | A.LAnd -> " && " | A.LOr -> " || ");
        pe b;
        Buffer.add_char buf ')'
    | A.Un (op, a) ->
        Buffer.add_string buf
          (match op with
          | A.Neg -> "-" | A.LNot -> "!" | A.BNot -> "~"
          | A.Itof -> "itof" | A.Ftoi -> "ftoi");
        Buffer.add_char buf '(';
        pe a;
        Buffer.add_char buf ')'
    | A.Index (v, i) ->
        Buffer.add_string buf v;
        Buffer.add_char buf '[';
        pe i;
        Buffer.add_char buf ']'
    | A.Cond (c, a, b) ->
        Buffer.add_char buf '(';
        pe c;
        Buffer.add_string buf " ? ";
        pe a;
        Buffer.add_string buf " : ";
        pe b;
        Buffer.add_char buf ')'
  in
  let rec ps ind (s : A.stmt) =
    Buffer.add_string buf (String.make ind ' ');
    match s with
    | A.Decl (_, n, init) ->
        Buffer.add_string buf ("int " ^ n);
        (match init with
        | Some e ->
            Buffer.add_string buf " = ";
            pe e
        | None -> ());
        Buffer.add_string buf ";\n"
    | A.Assign (n, e) ->
        Buffer.add_string buf (n ^ " = ");
        pe e;
        Buffer.add_string buf ";\n"
    | A.Store (n, i, v) ->
        Buffer.add_string buf n;
        Buffer.add_char buf '[';
        pe i;
        Buffer.add_string buf "] = ";
        pe v;
        Buffer.add_string buf ";\n"
    | A.If (c, a, b) ->
        Buffer.add_string buf "if (";
        pe c;
        Buffer.add_string buf ") {\n";
        List.iter (ps (ind + 2)) a;
        Buffer.add_string buf (String.make ind ' ' ^ "}");
        if b <> [] then begin
          Buffer.add_string buf " else {\n";
          List.iter (ps (ind + 2)) b;
          Buffer.add_string buf (String.make ind ' ' ^ "}")
        end;
        Buffer.add_string buf "\n"
    | A.While (c, b) ->
        Buffer.add_string buf "while (";
        pe c;
        Buffer.add_string buf ") {\n";
        List.iter (ps (ind + 2)) b;
        Buffer.add_string buf (String.make ind ' ' ^ "}\n")
    | A.For (i, c, st, b) ->
        Buffer.add_string buf "for (";
        (match i with
        | Some (A.Assign (n, e)) ->
            Buffer.add_string buf (n ^ " = ");
            pe e
        | _ -> ());
        Buffer.add_string buf "; ";
        (match c with Some e -> pe e | None -> ());
        Buffer.add_string buf "; ";
        (match st with
        | Some (A.Assign (n, e)) ->
            Buffer.add_string buf (n ^ " = ");
            pe e
        | _ -> ());
        Buffer.add_string buf ") {\n";
        List.iter (ps (ind + 2)) b;
        Buffer.add_string buf (String.make ind ' ' ^ "}\n")
    | A.Break -> Buffer.add_string buf "break;\n"
    | A.Continue -> Buffer.add_string buf "continue;\n"
    | A.Return (Some e) ->
        Buffer.add_string buf "return ";
        pe e;
        Buffer.add_string buf ";\n"
    | A.Return None -> Buffer.add_string buf "return;\n"
  in
  List.iter (ps 0) k.A.body;
  Buffer.contents buf

let soak n =
  let fails = ref 0 in
  for seed = 0 to n - 1 do
    let size = 6 + (seed mod 40) in
    let ast = Test_support.Gen_kernel.generate ~seed ~size in
    match Test_support.Diff_check.check_kernel ast with
    | Ok () -> ()
    | Error e ->
        incr fails;
        Printf.printf "FAIL seed=%d size=%d: %s\n%!" seed size e
  done;
  Printf.printf "soak done: %d failures / %d programs\n" !fails n

let minimize seed size config =
  let ast = ref (Test_support.Gen_kernel.generate ~seed ~size) in
  if not (mismatch config !ast) then begin
    print_endline "no mismatch for this seed/size/config";
    exit 1
  end;
  let progress = ref true in
  while !progress do
    progress := false;
    try
      List.iter
        (fun body ->
          let cand = { !ast with A.body } in
          if mismatch config cand then begin
            ast := cand;
            progress := true;
            raise Exit
          end)
        (reductions (!ast).A.body)
    with Exit -> ()
  done;
  print_string (pp_kernel !ast)

let () =
  match Array.to_list Sys.argv with
  | [ _; "soak"; n ] -> soak (int_of_string n)
  | [ _; seed; size ] ->
      minimize (int_of_string seed) (int_of_string size) Dfp.Config.bb
  | [ _; seed; size; config ] ->
      minimize (int_of_string seed) (int_of_string size)
        (config_of_name config)
  | _ ->
      prerr_endline "usage: minimize SEED SIZE [CONFIG] | minimize soak N";
      exit 1
