module Cfg = Edge_ir.Cfg
module Tac = Edge_ir.Tac
module Dom = Edge_ir.Dom
module Temp = Edge_ir.Temp
module Label = Edge_ir.Label
module Liveness = Edge_ir.Liveness
module O = Edge_isa.Opcode

let check = Alcotest.(check bool)

(* the classic diamond-with-loop CFG used across these tests:
   entry -> cond; cond -> (a | b); a -> join; b -> join;
   join -> (cond | exit) *)
let build_loop_cfg () =
  let gen = Temp.Gen.create () in
  let t n = n in
  List.iter (fun n -> Temp.Gen.next_above gen n) [ 10 ];
  let cfg = Cfg.create ~fname:"f" ~params:[ t 0 ] ~entry:"entry" ~gen in
  Cfg.add_block cfg
    {
      Cfg.label = "entry";
      instrs = [ Tac.Un { dst = 1; op = O.Mov; a = Tac.C 0L } ];
      term = Tac.Jmp "cond";
    };
  Cfg.add_block cfg
    {
      Cfg.label = "cond";
      instrs = [ Tac.Cmp { dst = 2; cond = O.Lt; fp = false; a = Tac.T 1; b = Tac.T 0 } ];
      term = Tac.Cbr { c = 2; if_true = "a"; if_false = "exit" };
    };
  Cfg.add_block cfg
    {
      Cfg.label = "a";
      instrs = [ Tac.Cmp { dst = 3; cond = O.Gt; fp = false; a = Tac.T 1; b = Tac.C 5L } ];
      term = Tac.Cbr { c = 3; if_true = "b"; if_false = "c" };
    };
  Cfg.add_block cfg
    {
      Cfg.label = "b";
      instrs = [ Tac.Bin { dst = 4; op = O.Add; a = Tac.T 1; b = Tac.C 2L } ];
      term = Tac.Jmp "join";
    };
  Cfg.add_block cfg
    {
      Cfg.label = "c";
      instrs = [ Tac.Bin { dst = 4; op = O.Add; a = Tac.T 1; b = Tac.C 1L } ];
      term = Tac.Jmp "join";
    };
  Cfg.add_block cfg
    {
      Cfg.label = "join";
      instrs = [ Tac.Un { dst = 1; op = O.Mov; a = Tac.T 4 } ];
      term = Tac.Jmp "cond";
    };
  Cfg.add_block cfg
    { Cfg.label = "exit"; instrs = []; term = Tac.Ret (Some (Tac.T 1)) };
  cfg

let rpo_order () =
  let cfg = build_loop_cfg () in
  let order = Cfg.rpo cfg in
  check "entry first" true (List.hd order = "entry");
  check "all blocks" true (List.length order = 7);
  let pos l = Option.get (List.find_index (String.equal l) order) in
  check "entry before cond" true (pos "entry" < pos "cond");
  check "a before join" true (pos "a" < pos "join")

(* naive dominance: remove the node, test reachability *)
let naive_dominates cfg a b =
  if Label.equal a b then true
  else begin
    let visited = Hashtbl.create 16 in
    let rec dfs l =
      if (not (Hashtbl.mem visited l)) && not (Label.equal l a) then begin
        Hashtbl.add visited l ();
        List.iter dfs (Cfg.succs cfg l)
      end
    in
    dfs cfg.Cfg.entry;
    not (Hashtbl.mem visited b)
  end

let dominators_match_naive () =
  let cfg = build_loop_cfg () in
  let dom = Dom.of_cfg cfg in
  let labels = Cfg.rpo cfg in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let fast = Dom.dominates dom a b in
          let slow = naive_dominates cfg a b in
          if fast <> slow then
            Alcotest.failf "dominates %s %s: fast=%b naive=%b" a b fast slow)
        labels)
    labels

let dominator_tree_shape () =
  let cfg = build_loop_cfg () in
  let dom = Dom.of_cfg cfg in
  check "idom cond = entry" true (Dom.idom dom "cond" = Some "entry");
  check "idom join = a" true (Dom.idom dom "join" = Some "a");
  check "idom exit = cond" true (Dom.idom dom "exit" = Some "cond");
  check "frontier of b contains join" true (List.mem "join" (Dom.frontier dom "b"));
  check "frontier of join contains cond" true
    (List.mem "cond" (Dom.frontier dom "join"))

let liveness_loop () =
  let cfg = build_loop_cfg () in
  let live = Liveness.compute cfg in
  check "t0 live into cond" true (Temp.Set.mem 0 (Liveness.live_in live "cond"));
  check "t1 live into cond" true (Temp.Set.mem 1 (Liveness.live_in live "cond"));
  check "t4 live out of a" true (Temp.Set.mem 4 (Liveness.live_out live "b"));
  check "t4 dead into cond" false (Temp.Set.mem 4 (Liveness.live_in live "cond"))

(* small CFG interpreter used to check semantic preservation *)
let run_cfg cfg args =
  let env = Hashtbl.create 32 in
  List.iteri (fun i p -> Hashtbl.replace env p (List.nth args i)) cfg.Cfg.params;
  let value = function
    | Tac.C c -> c
    | Tac.T t -> ( match Hashtbl.find_opt env t with Some v -> v | None -> 0L)
  in
  let rec exec label prev fuel =
    if fuel = 0 then failwith "fuel" ;
    let b = Cfg.block cfg label in
    List.iter
      (fun i ->
        match i with
        | Tac.Bin { dst; op; a; b } ->
            let v =
              match op with
              | O.Add -> Int64.add (value a) (value b)
              | O.Sub -> Int64.sub (value a) (value b)
              | _ -> Int64.mul (value a) (value b)
            in
            Hashtbl.replace env dst v
        | Tac.Cmp { dst; cond; a; b; _ } ->
            let c = Int64.compare (value a) (value b) in
            let r =
              match cond with
              | O.Lt -> c < 0
              | O.Gt -> c > 0
              | O.Eq -> c = 0
              | _ -> c <> 0
            in
            Hashtbl.replace env dst (if r then 1L else 0L)
        | Tac.Un { dst; a; _ } -> Hashtbl.replace env dst (value a)
        | Tac.Phi { dst; args } ->
            let v =
              List.assoc_opt prev args |> Option.map value
              |> Option.value ~default:0L
            in
            Hashtbl.replace env dst v
        | Tac.Fbin _ | Tac.Load _ | Tac.Store _ -> ())
      b.Cfg.instrs;
    match b.Cfg.term with
    | Tac.Jmp l -> exec l label (fuel - 1)
    | Tac.Cbr { c; if_true; if_false } ->
        let t = Hashtbl.find_opt env c |> Option.value ~default:0L in
        exec (if t <> 0L then if_true else if_false) label (fuel - 1)
    | Tac.Ret (Some o) -> value o
    | Tac.Ret None -> 0L
  in
  exec cfg.Cfg.entry cfg.Cfg.entry 10_000

let ssa_roundtrip () =
  let cfg = build_loop_cfg () in
  let mem0 = run_cfg cfg [ 10L ] in
  Edge_ir.Ssa.construct cfg;
  (match Edge_ir.Ssa.check cfg with
  | Ok () -> ()
  | Error es -> Alcotest.failf "ssa check: %s" (String.concat "; " es));
  let has_phi =
    List.exists
      (fun l ->
        List.exists
          (function Tac.Phi _ -> true | _ -> false)
          (Cfg.block cfg l).Cfg.instrs)
      (Cfg.rpo cfg)
  in
  check "loop header got phis" true has_phi;
  Edge_ir.Ssa.destruct cfg;
  let no_phi =
    List.for_all
      (fun l ->
        List.for_all
          (function Tac.Phi _ -> false | _ -> true)
          (Cfg.block cfg l).Cfg.instrs)
      (Cfg.rpo cfg)
  in
  check "destruct removed phis" true no_phi;
  let mem1 = run_cfg cfg [ 10L ] in
  check "ssa roundtrip preserves semantics" true (mem0 = mem1)

let hblock_helpers () =
  let open Edge_ir.Hblock in
  let h =
    {
      hname = "h";
      body =
        [
          { hop = Op (Tac.Cmp { dst = 1; cond = O.Gt; fp = false; a = Tac.T 0; b = Tac.C 0L }); guard = None };
          { hop = Op (Tac.Bin { dst = 2; op = O.Add; a = Tac.T 0; b = Tac.C 1L }); guard = Some (singleton 1 true) };
          { hop = Op (Tac.Bin { dst = 2; op = O.Sub; a = Tac.T 0; b = Tac.C 1L }); guard = Some (singleton 1 false) };
          { hop = Op (Tac.Store { width = O.W8; addr = Tac.T 0; off = 0; v = Tac.T 2 }); guard = None };
          { hop = Null_write 2; guard = Some (singleton 1 false) };
        ];
      hexits = [ { eguard = None; etarget = None } ];
      houts = [ (2, 2) ];
    }
  in
  check "store count" true (store_count h = 1);
  check "predicated count" true (predicated_count h = 3);
  let sites = def_sites h in
  check "t2 has two defs" true (List.length (Temp.Map.find 2 sites) = 2);
  check "guard uses" true (hop_uses (List.nth h.body 1) = [ 0; 1 ])

let tests =
  [
    Alcotest.test_case "rpo order" `Quick rpo_order;
    Alcotest.test_case "dominators vs naive" `Quick dominators_match_naive;
    Alcotest.test_case "dominator tree shape" `Quick dominator_tree_shape;
    Alcotest.test_case "liveness over loop" `Quick liveness_loop;
    Alcotest.test_case "ssa construct/destruct" `Quick ssa_roundtrip;
    Alcotest.test_case "hblock helpers" `Quick hblock_helpers;
  ]
