(* The Figure 6 study as a runnable example: the genalg roulette-wheel
   loop compiled with and without disjoint instruction merging, showing
   the guarded live-out moves of Figure 6c collapsing via predicate
   combining (Figure 6d), and the resulting cycle counts. *)

let () =
  let w = Edge_workloads.Registry.genalg in
  Format.printf "genalg kernel (Figure 6a):@.%s@." w.Edge_workloads.Workload.source;
  List.iter
    (fun (name, config) ->
      match Edge_harness.Experiment.run_one w (name, config) with
      | Error e -> Format.printf "%s: error %s@." name e
      | Ok r ->
          Format.printf
            "%-18s %6d cycles, %5d static instructions, %6d dynamic moves, \
             %5d blocks@."
            name r.Edge_harness.Experiment.cycles
            r.Edge_harness.Experiment.static_instrs
            r.Edge_harness.Experiment.stats.Edge_sim.Stats.moves_executed
            r.Edge_harness.Experiment.stats.Edge_sim.Stats.blocks_committed)
    [
      ("BB", Dfp.Config.bb);
      ("Hyper", Dfp.Config.hyper_baseline);
      ("Both", Dfp.Config.both);
      ("Merge", Dfp.Config.merge);
      ("Merge+unroll", Dfp.Config.hand_optimized);
    ];
  match Edge_harness.Genalg_study.run () with
  | Ok s -> Format.printf "@.%a@." Edge_harness.Genalg_study.pp s
  | Error e -> Format.printf "error: %s@." e
