(* The Figure 4 / Figure 5 walkthrough: one hyperblock through the three
   predicate optimizations.

   Figure 4's block (two nested if-then-elses communicating through
   registers) is if-converted to a naively predicated hyperblock, then
   shown after predicate fanout reduction (5.1), path-sensitive predicate
   removal (5.2) and disjoint instruction merging (5.3), printing the
   predicate/instruction counts the optimizations change. *)

let source =
  {|
kernel fig4(int g1, int g2) {
  int t5 = 0;
  int t6 = 0;
  if (g2 > 1) {
    t5 = (g1 << 4) + 1;
    t6 = g2;
  } else {
    t5 = g1;
    if (g2 == 0) {
      t6 = 1;
    } else {
      t6 = g2;
    }
  }
  return t5 * 100000 + t6;
}
|}

let stats_of (h : Edge_ir.Hblock.t) =
  let body = h.Edge_ir.Hblock.body in
  let guarded = List.filter (fun hi -> hi.Edge_ir.Hblock.guard <> None) body in
  let preds_needed =
    List.fold_left
      (fun acc hi ->
        List.fold_left
          (fun acc p -> Edge_ir.Temp.Set.add p acc)
          acc
          (Edge_ir.Hblock.guard_uses hi.Edge_ir.Hblock.guard))
      Edge_ir.Temp.Set.empty body
  in
  (List.length body, List.length guarded, Edge_ir.Temp.Set.cardinal preds_needed)

let show title h =
  let n, g, p = stats_of h in
  Format.printf "--- %s: %d instructions, %d explicitly predicated, %d \
                 distinct predicates ---@.%a@."
    title n g p Edge_ir.Hblock.pp h

let fresh_hblock () =
  let cfg = Result.get_ok (Edge_lang.Lower.compile source) in
  Edge_ir.Ssa.construct cfg;
  Dfp.Opt_classic.run cfg;
  Edge_ir.Ssa.destruct cfg;
  Edge_ir.Cfg.prune_unreachable cfg;
  let retq = Edge_ir.Temp.Gen.fresh cfg.Edge_ir.Cfg.gen in
  let liveness = Edge_ir.Liveness.compute cfg in
  let region =
    {
      Dfp.If_convert.head = cfg.Edge_ir.Cfg.entry;
      blocks = Edge_ir.Label.Set.of_list (Edge_ir.Cfg.rpo cfg);
    }
  in
  ( Result.get_ok (Dfp.If_convert.convert cfg liveness region ~retq),
    cfg,
    liveness,
    retq )

let () =
  Format.printf "source:@.%s@." source;
  let h, _, _, _ = fresh_hblock () in
  show "naive predication (the Section 6 baseline, like Figure 4)" h;
  let h, _, _, _ = fresh_hblock () in
  Dfp.Opt_fanout.run h;
  show "after predicate fanout reduction (5.1, Figure 5a)" h;
  let h, cfg, liveness, retq = fresh_hblock () in
  Dfp.Opt_path.run [ h ] cfg liveness ~retq;
  show "after path-sensitive predicate removal (5.2, Figure 5b)" h;
  let h, cfg, liveness, retq = fresh_hblock () in
  Dfp.Opt_path.run [ h ] cfg liveness ~retq;
  Dfp.Opt_fanout.run h;
  let eliminated = Dfp.Opt_merge.merge_body h + Dfp.Opt_merge.merge_exits h in
  Dfp.Opt_hclean.run h;
  show
    (Printf.sprintf
       "after all three + merging (5.3, Figure 5c; %d merged away)" eliminated)
    h
