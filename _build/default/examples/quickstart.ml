(* Quickstart: the paper's Figure 2.

       if (i == j) { b = a + 2; } else { b = a + 3; }
       c = b * 2;

   Compile the kernel to a single predicated TRIPS block, print it, show
   the 32-bit instruction encodings round-tripping, and execute it on
   both simulators. *)

let source =
  {|
kernel fig2(int i, int j, int a) {
  int b = 0;
  if (i == j) {
    b = a + 2;
  } else {
    b = a + 3;
  }
  return b * 2;
}
|}

let () =
  Format.printf "source:@.%s@." source;
  (* 1. compile under the Both configuration *)
  let cfg =
    match Edge_lang.Lower.compile source with
    | Ok cfg -> cfg
    | Error e -> failwith e
  in
  let compiled =
    match Dfp.Driver.compile_cfg cfg Dfp.Config.both with
    | Ok c -> c
    | Error e -> failwith e
  in
  Format.printf "compiled TRIPS program:@.%a@." Edge_isa.Program.pp
    compiled.Dfp.Driver.program;
  (* 2. binary encodings: every instruction fits one (or for wide
     constants, three) 32-bit words; Figure 2's layout is opcode(7)
     pred(2) xop(5) imm/t2(9) t1(9) *)
  let _, block = List.hd compiled.Dfp.Driver.program.Edge_isa.Program.blocks in
  Format.printf "instruction encodings:@.";
  Array.iter
    (fun instr ->
      match Edge_isa.Encode.encode instr with
      | Ok words ->
          Format.printf "  %-40s"
            (Format.asprintf "%a" Edge_isa.Instr.pp instr);
          List.iter (fun w -> Format.printf " %08lx" w) words;
          Format.printf "@.";
          (* round-trip check *)
          let decoded, _ =
            Result.get_ok (Edge_isa.Encode.decode ~id:instr.Edge_isa.Instr.id words)
          in
          assert (Edge_isa.Instr.equal instr decoded)
      | Error e -> Format.printf "  (unencodable: %s)@." e)
    block.Edge_isa.Block.instrs;
  (* 3. run on both simulators with i = j (the add #2 path) *)
  List.iter
    (fun (i, j, a) ->
      let regs = Array.make 128 0L in
      regs.(Edge_isa.Conventions.param_reg 0) <- i;
      regs.(Edge_isa.Conventions.param_reg 1) <- j;
      regs.(Edge_isa.Conventions.param_reg 2) <- a;
      let mem = Edge_isa.Mem.create ~size:4096 in
      (match Edge_sim.Functional.run compiled.Dfp.Driver.program ~regs ~mem with
      | Ok _ -> ()
      | Error e -> failwith e);
      let functional_result = regs.(Edge_isa.Conventions.result_reg) in
      let regs2 = Array.make 128 0L in
      regs2.(Edge_isa.Conventions.param_reg 0) <- i;
      regs2.(Edge_isa.Conventions.param_reg 1) <- j;
      regs2.(Edge_isa.Conventions.param_reg 2) <- a;
      let mem2 = Edge_isa.Mem.create ~size:4096 in
      let stats =
        match
          Edge_sim.Cycle_sim.run compiled.Dfp.Driver.program ~regs:regs2
            ~mem:mem2
        with
        | Ok s -> s
        | Error e -> failwith e
      in
      Format.printf
        "i=%Ld j=%Ld a=%Ld: result %Ld (functional) = %Ld (cycle sim, %d \
         cycles)@."
        i j a functional_result
        regs2.(Edge_isa.Conventions.result_reg)
        stats.Edge_sim.Stats.cycles)
    [ (5L, 5L, 10L); (5L, 6L, 10L) ]
