(* The paper's Figure 3a: a while loop statically unrolled into a single
   TRIPS block.

       while (x > 0) { x = *ptr; ptr++; }

   Each unrolled iteration's test is predicated on the previous
   iteration's test — the implicit predicate-AND chain of Section 3.4 —
   and the loop exits use predicate-OR (Section 3.5): several bro
   instructions (one per unrolled test) target the same exit, and after
   disjoint instruction merging they collapse into a single bro receiving
   multiple predicates, of which at most one can match. *)

let source =
  {|
kernel fig3a(int x, int* ptr, int limit) {
  int steps = 0;
  while (x > 0 && steps < limit) {
    x = ptr[steps];
    steps = steps + 1;
  }
  return x * 1000 + steps;
}
|}

let count_pred_and_chain (b : Edge_isa.Block.t) =
  let tests =
    Array.to_list b.Edge_isa.Block.instrs
    |> List.filter (fun (i : Edge_isa.Instr.t) ->
           Edge_isa.Opcode.is_test i.Edge_isa.Instr.opcode)
  in
  let chained = List.filter Edge_isa.Instr.is_predicated tests in
  (List.length tests, List.length chained)

let exit_fanin (b : Edge_isa.Block.t) =
  (* bro instructions per exit-table entry *)
  Array.to_list b.Edge_isa.Block.instrs
  |> List.filter_map (fun (i : Edge_isa.Instr.t) ->
         match i.Edge_isa.Instr.opcode with
         | Edge_isa.Opcode.Bro -> Some i.Edge_isa.Instr.exit_idx
         | _ -> None)
  |> List.sort_uniq compare
  |> List.map (fun idx ->
         ( b.Edge_isa.Block.exits.(idx),
           Array.to_list b.Edge_isa.Block.instrs
           |> List.filter (fun (i : Edge_isa.Instr.t) ->
                  i.Edge_isa.Instr.exit_idx = idx)
           |> List.length ))

let compile config =
  let cfg = Result.get_ok (Edge_lang.Lower.compile source) in
  Result.get_ok (Dfp.Driver.compile_cfg cfg config)

let loop_block compiled =
  (* the block with the most test instructions is the unrolled loop *)
  List.fold_left
    (fun best (_, b) ->
      let t, _ = count_pred_and_chain b in
      match best with
      | Some bb when fst (count_pred_and_chain bb) >= t -> best
      | _ -> Some b)
    None compiled.Dfp.Driver.program.Edge_isa.Program.blocks
  |> Option.get

let () =
  Format.printf "source:@.%s@." source;
  let baseline = compile Dfp.Config.hyper_baseline in
  let merged = compile Dfp.Config.merge in
  let b0 = loop_block baseline and b1 = loop_block merged in
  let tests0, chained0 = count_pred_and_chain b0 in
  Format.printf
    "baseline loop block: %d instructions, %d tests of which %d are \
     predicated on the previous test (the implicit AND chain)@."
    (Array.length b0.Edge_isa.Block.instrs)
    tests0 chained0;
  Format.printf "baseline exits (bro instructions per target):@.";
  List.iter
    (fun (target, n) -> Format.printf "  -> %-12s x%d@." target n)
    (exit_fanin b0);
  Format.printf "after disjoint instruction merging:@.";
  List.iter
    (fun (target, n) ->
      Format.printf "  -> %-12s x%d%s@." target n
        (if n = 1 then "  (predicate-OR: one bro, many predicates)" else ""))
    (exit_fanin b1);
  Format.printf "@.merged loop block:@.%a@." Edge_isa.Block.pp b1;
  (* execute: 12 positive values then a zero *)
  let regs = Array.make 128 0L in
  regs.(Edge_isa.Conventions.param_reg 0) <- 1L;
  regs.(Edge_isa.Conventions.param_reg 1) <- 1024L;
  regs.(Edge_isa.Conventions.param_reg 2) <- 40L;
  let mem = Edge_isa.Mem.create ~size:4096 in
  for i = 0 to 11 do
    Edge_isa.Mem.store_int mem (1024 + (8 * i)) (Int64.of_int (12 - i))
  done;
  (match Edge_sim.Functional.run merged.Dfp.Driver.program ~regs ~mem with
  | Ok _ -> ()
  | Error e -> failwith e);
  Format.printf "result: %Ld (x exhausted after 13 steps)@."
    regs.(Edge_isa.Conventions.result_reg)
