(* Section 7's proposed extension, demonstrated: a short-circuiting AND
   instruction for predicate chains.

   Figure 3a-style unrolled loops chain their tests serially: test k is
   predicated on test k-1, so the k-th iteration's guard resolves only
   after k sequential test+route steps. With [sand], all tests compute in
   parallel and a chain of short-circuiting ANDs folds them, resolving
   the late guards much earlier — and C semantics (the right operand of
   a false AND is never demanded) keep exception behaviour intact.

   This example hand-builds two equivalent 12-deep guard chains over
   independent inputs and measures the block latency of each. *)

module I = Edge_isa.Instr
module T = Edge_isa.Target
module O = Edge_isa.Opcode
module B = Edge_isa.Block

let depth = 12

(* inputs arrive in g10..g(10+depth-1); the block writes g1 = 1 when every
   input is positive, via a guarded movi at the end of the chain *)

(* Version A: the serial predicate-AND chain of Section 3.4 — test k is
   predicated on test k-1. Immediate-form tests carry a single target, so
   each test's predicate is fanned out through a mov (to the next test
   and to that level's null), exactly the software fanout overhead the
   paper describes. Layout per level k: test at 3k, fanout mov at 3k+1,
   null at 3k+2. *)
let serial_chain () =
  let instrs = ref [] in
  let reads = ref [] in
  let movi_id = 3 * depth in
  let halt_id = movi_id + 1 in
  for k = 0 to depth - 1 do
    let test_id = 3 * k and mov_id = (3 * k) + 1 and null_id = (3 * k) + 2 in
    let pred = if k = 0 then I.Unpredicated else I.If_true in
    instrs :=
      I.make ~id:test_id ~opcode:(O.Tsti O.Gt) ~pred ~imm:0L
        ~targets:[ T.To_instr { id = mov_id; slot = T.Left } ]
        ()
      :: !instrs;
    let next_pred =
      if k = depth - 1 then T.To_instr { id = movi_id; slot = T.Pred }
      else T.To_instr { id = 3 * (k + 1); slot = T.Pred }
    in
    instrs :=
      I.make ~id:mov_id ~opcode:(O.Un O.Mov)
        ~targets:[ next_pred; T.To_instr { id = null_id; slot = T.Pred } ]
        ()
      :: !instrs;
    instrs :=
      I.make ~id:null_id ~opcode:O.Null ~pred:I.If_false
        ~targets:[ T.To_write 0 ] ()
      :: !instrs;
    reads :=
      {
        B.rslot = k;
        reg = 10 + k;
        rtargets = [ T.To_instr { id = test_id; slot = T.Left } ];
      }
      :: !reads
  done;
  instrs :=
    I.make ~id:movi_id ~opcode:O.Movi ~pred:I.If_true ~imm:1L
      ~targets:[ T.To_write 0 ] ()
    :: !instrs;
  instrs := I.make ~id:halt_id ~opcode:O.Halt () :: !instrs;
  {
    B.name = "serial";
    instrs =
      Array.of_list
        (List.sort (fun (a : I.t) b -> compare a.I.id b.I.id) !instrs);
    reads = Array.of_list (List.rev !reads);
    writes = [| { B.wslot = 0; wreg = 1 } |];
    store_lsids = [];
    exits = [| B.halt_exit |];
  }

(* Version B: all tests unpredicated and in parallel, folded by a chain of
   short-circuiting sand instructions. *)
let sand_chain () =
  let instrs = ref [] in
  let reads = ref [] in
  (* tests at ids 0..depth-1, all unpredicated *)
  for k = 0 to depth - 1 do
    let target =
      if k = 0 then T.To_instr { id = depth; slot = T.Left }
      else if k = 1 then T.To_instr { id = depth; slot = T.Right }
      else T.To_instr { id = depth + k - 1; slot = T.Right }
    in
    instrs :=
      I.make ~id:k ~opcode:(O.Tsti O.Gt) ~imm:0L ~targets:[ target ] ()
      :: !instrs;
    reads :=
      {
        B.rslot = k;
        reg = 10 + k;
        rtargets = [ T.To_instr { id = k; slot = T.Left } ];
      }
      :: !reads
  done;
  (* sands at ids depth..depth+depth-2: s_k = sand(s_{k-1}, t_{k+1}) *)
  for k = 0 to depth - 2 do
    let id = depth + k in
    let target =
      if k = depth - 2 then
        [
          T.To_instr { id = (2 * depth) - 1; slot = T.Pred };
          T.To_instr { id = 2 * depth; slot = T.Pred };
        ]
      else [ T.To_instr { id = id + 1; slot = T.Left } ]
    in
    instrs := I.make ~id ~opcode:O.Sand ~targets:target () :: !instrs
  done;
  instrs :=
    I.make ~id:((2 * depth) - 1) ~opcode:O.Movi ~pred:I.If_true ~imm:1L
      ~targets:[ T.To_write 0 ] ()
    :: !instrs;
  instrs :=
    I.make ~id:(2 * depth) ~opcode:O.Null ~pred:I.If_false
      ~targets:[ T.To_write 0 ] ()
    :: !instrs;
  instrs := I.make ~id:((2 * depth) + 1) ~opcode:O.Halt () :: !instrs;
  {
    B.name = "sand";
    instrs =
      Array.of_list
        (List.sort (fun (a : I.t) b -> compare a.I.id b.I.id) !instrs);
    reads = Array.of_list (List.rev !reads);
    writes = [| { B.wslot = 0; wreg = 1 } |];
    store_lsids = [];
    exits = [| B.halt_exit |];
  }

let run_block b ~inputs =
  (match B.validate b with
  | Ok () -> ()
  | Error es -> failwith (String.concat "; " es));
  let program = Result.get_ok (Edge_isa.Program.make ~entry:b.B.name [ b ]) in
  let regs = Array.make 128 0L in
  List.iteri (fun i v -> regs.(10 + i) <- v) inputs;
  let mem = Edge_isa.Mem.create ~size:256 in
  match Edge_sim.Cycle_sim.run program ~regs ~mem with
  | Ok stats -> (regs.(1), stats.Edge_sim.Stats.cycles)
  | Error e -> failwith e

let () =
  let all_true = List.init depth (fun _ -> 5L) in
  let early_false = 0L :: List.init (depth - 1) (fun _ -> 5L) in
  let serial = serial_chain () and sand = sand_chain () in
  Format.printf
    "12-deep guard chain, all conditions true:@.";
  let r1, c1 = run_block serial ~inputs:all_true in
  let r2, c2 = run_block sand ~inputs:all_true in
  Format.printf "  serial predicate-AND chain: result %Ld in %d cycles@." r1 c1;
  Format.printf "  sand short-circuit chain:   result %Ld in %d cycles@." r2 c2;
  assert (r1 = r2);
  Format.printf "first condition false (short-circuit case):@.";
  let r3, c3 = run_block serial ~inputs:early_false in
  let r4, c4 = run_block sand ~inputs:early_false in
  Format.printf "  serial predicate-AND chain: result %Ld in %d cycles@." r3 c3;
  Format.printf "  sand short-circuit chain:   result %Ld in %d cycles@." r4 c4;
  assert (r3 = r4);
  Format.printf
    "@.the sand chain resolves the final guard without waiting for the@.\
     serial test-to-test predicate routing (Section 7, near-term work).@."
