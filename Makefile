.PHONY: all build test check smoke fuzz-smoke trace-smoke regen-golden bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# the tier-1 gate: everything compiles, the full suite is green, a
# short parallel fuzz campaign finds nothing, and the observability
# layer round-trips (valid Chrome JSON, golden trace matches)
check:
	dune build @all && dune runtest && $(MAKE) fuzz-smoke && $(MAKE) trace-smoke

# seconds-long differential-fuzzing sanity run (small programs, every
# config, both simulators, block validator, parallel path)
fuzz-smoke: build
	dune exec bin/fuzz.exe -- --seed 1 -n 40 -j 4 --min-size 4 --max-size 12 --no-minimize

# seconds-long end-to-end check of the tracing/metrics layer: run one
# golden kernel traced, validate the Chrome JSON export, compare the
# text trace against its blessed golden
trace-smoke: build
	dune exec test/trace_smoke.exe

# re-bless the golden trace files after an intentional schedule change;
# inspect the diff before committing
regen-golden: build
	dune exec test/regen_golden.exe

# seconds-long sanity run of the parallel sweep path (1 workload,
# 2 configs, 2 domains)
smoke: build
	dune exec bench/main.exe -- smoke

# the full evaluation; writes BENCH_fig7.json
bench: build
	dune exec bench/main.exe

clean:
	dune clean
