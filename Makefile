.PHONY: all build test check smoke check-smoke analyze-smoke fuzz-smoke \
	matrix-smoke trace-smoke jit-smoke perf-smoke serve-smoke \
	serve-scale-smoke serve-bench cross-cache-smoke bench-compare \
	regen-golden bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# the tier-1 gate: everything compiles, the full suite is green, a
# short parallel fuzz campaign finds nothing, and the observability
# layer round-trips (valid Chrome JSON, golden trace matches)
check:
	dune build @all && dune runtest && $(MAKE) fuzz-smoke && $(MAKE) matrix-smoke \
	&& $(MAKE) check-smoke && $(MAKE) analyze-smoke \
	&& $(MAKE) trace-smoke && $(MAKE) jit-smoke && $(MAKE) perf-smoke \
	&& $(MAKE) serve-smoke && $(MAKE) serve-scale-smoke \
	&& $(MAKE) bench-compare BASE=BENCH_fig7.json NEW=BENCH_fig7.json \
	&& $(MAKE) bench-compare BASE=BENCH_serve.json NEW=BENCH_serve.json

# compile the example kernels plus 50 fixed-seed generated kernels
# under every configuration with the per-pass static verifier on; any
# checker diagnostic fails the run
check-smoke: build
	dune exec bin/fuzz.exe -- --check-smoke examples/kernels -j 4

# the ineffectuality lint gate: run the Psi-SSA analysis in lint mode
# (report, don't delete) over the example kernels plus 50 fixed-seed
# generated kernels; every finding is cross-validated against the
# exhaustive path enumerator, so one false positive fails the run
analyze-smoke: build
	dune exec bin/fuzz.exe -- --analyze-smoke examples/kernels -j 4

# seconds-long differential-fuzzing sanity run (small programs, every
# config, both simulators, block validator, parallel path)
fuzz-smoke: build
	dune exec bin/fuzz.exe -- --seed 1 -n 40 -j 4 --min-size 4 --max-size 12 --no-minimize

# the backend-differential gate: the same oracle with the machine
# matrix on, so every kernel x config pair must reproduce the reference
# results on the tiled grid AND the in-order EDGE core
matrix-smoke: build
	dune exec bin/fuzz.exe -- --matrix --seed 7000 -n 40 -j 4 --min-size 4 --max-size 14 --no-minimize

# seconds-long end-to-end check of the tracing/metrics layer: run one
# golden kernel traced, validate the Chrome JSON export, compare the
# text trace against its blessed golden
trace-smoke: build
	dune exec test/trace_smoke.exe

# diff two BENCH_fig7.json files: fails on any per-benchmark cycle
# drift, reports the wall-clock delta
#   make bench-compare BASE=old.json NEW=new.json
BASE ?= BENCH_fig7.json
NEW ?= BENCH_fig7.json
bench-compare: build
	dune exec bin/bench_compare.exe -- $(BASE) $(NEW)

# run every example kernel through tsim twice -- threaded-code JIT
# (default) and reference interpreter (--no-jit) -- and require
# byte-identical output, text trace included; then re-run the golden
# trace check with the JIT explicitly forced on
jit-smoke: build
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	for k in examples/kernels/*.k; do \
	  n=$$(basename $$k .k) && \
	  ./_build/default/bin/tsim.exe "$$k" -c both \
	    --trace-text "$$dir/$$n.jit.trace" \
	    | grep -v '^wrote ' > "$$dir/$$n.jit.out" || \
	    { echo "jit-smoke: FAIL: $$n (jit run)"; exit 1; }; \
	  ./_build/default/bin/tsim.exe "$$k" -c both --no-jit \
	    --trace-text "$$dir/$$n.int.trace" \
	    | grep -v '^wrote ' > "$$dir/$$n.int.out" || \
	    { echo "jit-smoke: FAIL: $$n (interpreter run)"; exit 1; }; \
	  diff "$$dir/$$n.jit.out" "$$dir/$$n.int.out" || \
	    { echo "jit-smoke: FAIL: $$n output differs jit vs interpreter"; exit 1; }; \
	  diff "$$dir/$$n.jit.trace" "$$dir/$$n.int.trace" || \
	    { echo "jit-smoke: FAIL: $$n trace differs jit vs interpreter"; exit 1; }; \
	done && \
	DFP_NO_JIT= dune exec test/trace_smoke.exe && \
	echo "jit-smoke: OK (examples + golden traces byte-identical)"

# run the smoke sweep twice against a fresh temporary cache directory:
# the warm run must hit the cache for every experiment, report at least
# a 2x wall-time improvement, and print identical cycle counts
perf-smoke: build
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	cold=$$(./_build/default/bench/main.exe smoke --cache-dir "$$dir") && \
	warm=$$(./_build/default/bench/main.exe smoke --cache-dir "$$dir") && \
	cc=$$(printf '%s\n' "$$cold" | grep '^cycles ') && \
	wc=$$(printf '%s\n' "$$warm" | grep '^cycles ') && \
	if [ "$$cc" != "$$wc" ]; then \
	  echo "perf-smoke: FAIL: warm-cache cycles differ"; \
	  printf 'cold:\n%s\nwarm:\n%s\n' "$$cc" "$$wc"; exit 1; fi && \
	printf '%s\n' "$$warm" | grep -q '^cache: 2 hits, 0 misses' || \
	  { echo "perf-smoke: FAIL: warm run missed the cache"; \
	    printf '%s\n' "$$warm" | grep '^cache:'; exit 1; } && \
	ct=$$(printf '%s\n' "$$cold" | sed -n 's/^smoke: \([0-9.]*\)s wall.*/\1/p') && \
	wt=$$(printf '%s\n' "$$warm" | sed -n 's/^smoke: \([0-9.]*\)s wall.*/\1/p') && \
	awk -v c="$$ct" -v w="$$wt" 'BEGIN { exit !(2 * w <= c) }' || \
	  { echo "perf-smoke: FAIL: warm run not 2x faster ($$ct s -> $$wt s)"; exit 1; } && \
	echo "perf-smoke: OK (cold $$ct s, warm $$wt s, cycles identical)" && \
	./_build/default/bin/fsim_bench.exe --smoke --min-ratio 2

# spawn dfpd.exe, drive ~20 mixed jobs through the socket (cold + warm
# workload jobs, a source job, a traced job, a guaranteed timeout, a
# malformed request, bad names), then shut down cleanly: structured
# errors only, warm >= 10x cold, no leaked sockets or temp files
serve-smoke: build
	./_build/default/bin/serve_bench.exe --smoke

# the scaling gate: pipelined batch framing at -j4 must clear at least
# 2x the lock-step -j1 warm throughput, and cold throughput must not
# regress from idle-worker overhead (tolerance for host noise)
serve-scale-smoke: build
	./_build/default/bin/serve_bench.exe --scale-smoke

# the serve throughput benchmark; writes BENCH_serve.json (compare
# against a baseline with `make bench-compare BASE=... NEW=...` --
# latency/ratio drift is informational; the byte-identical flags and
# >20% warm-throughput regressions gate)
serve-bench: build
	./_build/default/bin/serve_bench.exe --out BENCH_serve.json

# two dfpd processes sharing one --cache-dir: the second must warm-hit
# the first's results with zero decode errors and no torn reads
cross-cache-smoke: build
	./_build/default/bin/serve_bench.exe --cross-cache

# re-bless the golden trace files after an intentional schedule change;
# inspect the diff before committing
regen-golden: build
	dune exec test/regen_golden.exe

# seconds-long sanity run of the parallel sweep path (1 workload,
# 2 configs, 2 domains)
smoke: build
	dune exec bench/main.exe -- smoke

# the full evaluation; writes BENCH_fig7.json
bench: build
	dune exec bench/main.exe

clean:
	dune clean
