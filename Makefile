.PHONY: all build test check smoke bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# the tier-1 gate: everything compiles and the full suite is green
check:
	dune build @all && dune runtest

# seconds-long sanity run of the parallel sweep path (1 workload,
# 2 configs, 2 domains)
smoke: build
	dune exec bench/main.exe -- smoke

# the full evaluation; writes BENCH_fig7.json
bench: build
	dune exec bench/main.exe

clean:
	dune clean
