(* A minimal dfpd client: one Unix-socket connection, blocking
   line-oriented I/O. Used by the tests, the serve benchmark and
   `fuzz --serve`; also a reference implementation of the protocol's
   client side.

   A connection may have several jobs in flight (the server tags every
   response with the job's id), but this client's [run_job] is the
   simple synchronous pattern: submit, then read until this job's
   terminal response arrives, handing interleaved responses for other
   ids to [on_other]. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  next_id : int Atomic.t;
}

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; next_id = Atomic.make 0 }

(* retry [connect] until the server's listener is up (fresh spawns) *)
let rec connect_retry ?(attempts = 100) ?(delay_s = 0.05) path =
  match connect path with
  | c -> c
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when attempts > 1 ->
      Thread.delay delay_s;
      connect_retry ~attempts:(attempts - 1) ~delay_s path

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t = Printf.sprintf "c%d" (Atomic.fetch_and_add t.next_id 1)

let send_line t line =
  let buf = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length buf in
  let rec write off =
    if off < len then
      match Unix.write t.fd buf off (len - off) with
      | n -> write (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
  in
  write 0

let send t (v : Json.t) = send_line t (Json.to_string v)

let recv_line t =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

let recv t : (Json.t, string) result option =
  Option.map Json.parse (recv_line t)

(* one request, one response — for ping/stats/shutdown *)
let rpc t (v : Json.t) : (Json.t, string) result =
  send t v;
  match recv t with
  | Some r -> r
  | None -> Error "connection closed by server"

let response_type v =
  Option.value (Json.str_member "type" v) ~default:""

let is_terminal v =
  match response_type v with
  | "done" | "error" | "rejected" -> true
  | _ -> false

(* Submit [job] (an object WITHOUT an id; one is added) and block until
   its terminal response. Streaming responses for this id (trace lines,
   metrics) go to [on_stream]; responses carrying other ids go to
   [on_other] (default: dropped). Returns the terminal response, or
   [Error] if the server hung up first. *)
let run_job ?(on_stream = fun _ -> ()) ?(on_other = fun _ -> ()) t
    (job : (string * Json.t) list) : (Json.t, string) result =
  let id = fresh_id t in
  send t (Json.Obj (("id", Json.Str id) :: job));
  let rec await () =
    match recv t with
    | None -> Error "connection closed by server"
    | Some (Error e) -> Error ("unparseable response: " ^ e)
    | Some (Ok v) ->
        if Json.str_member "id" v = Some id then
          if is_terminal v then Ok v
          else begin
            on_stream v;
            await ()
          end
        else begin
          on_other v;
          await ()
        end
  in
  await ()

(* convenience builders for the two job kinds; [machine] is a preset
   name or a Machine.to_compact line *)
let machine_field machine =
  Option.to_list (Option.map (fun m -> ("machine", Json.Str m)) machine)

let workload_job ?(trace = false) ?machine ~workload ~config () =
  [
    ("workload", Json.Str workload);
    ("config", Json.Str config);
    ("trace", Json.Bool trace);
  ]
  @ machine_field machine

let source_job ?(trace = false) ?machine ?timeout_ms ?max_cycles ?fuel
    ~source ~config () =
  let opt k v = Option.to_list (Option.map (fun n -> (k, Json.Num (float_of_int n))) v) in
  [ ("source", Json.Str source); ("config", Json.Str config);
    ("trace", Json.Bool trace) ]
  @ machine_field machine
  @ opt "timeout_ms" timeout_ms
  @ opt "max_cycles" max_cycles
  @ opt "fuel" fuel
