(* A dfpd client: one Unix-socket connection, blocking line-oriented
   I/O. Used by the tests, the serve benchmark and `fuzz --serve`;
   also a reference implementation of the protocol's client side.

   The connection is pipelined: [submit] (or [submit_batch]) fires a
   job without waiting, [await] blocks until that job's terminal
   response arrives, and terminal responses for *other* in-flight ids
   read along the way are parked in [pending] for their own [await].
   Completions may arrive in any order — the id matches them up.
   [run_job] is submit-then-await, the old lock-step pattern.

   One thread per connection: the pending table is unsynchronized by
   design. Open one client per thread for concurrent use. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  next_id : int Atomic.t;
  pending : (string, Json.t) Hashtbl.t;
      (* terminal responses awaiting their [await] call, by id *)
}

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    next_id = Atomic.make 0;
    pending = Hashtbl.create 64;
  }

(* retry [connect] until the server's listener is up (fresh spawns) *)
let rec connect_retry ?(attempts = 100) ?(delay_s = 0.05) path =
  match connect path with
  | c -> c
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when attempts > 1 ->
      Thread.delay delay_s;
      connect_retry ~attempts:(attempts - 1) ~delay_s path

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t = Printf.sprintf "c%d" (Atomic.fetch_and_add t.next_id 1)

let send_line t line =
  let buf = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length buf in
  let rec write off =
    if off < len then
      match Unix.write t.fd buf off (len - off) with
      | n -> write (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
  in
  write 0

let send t (v : Json.t) = send_line t (Json.to_string v)

let recv_line t =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _) -> None

let recv t : (Json.t, string) result option =
  Option.map Json.parse (recv_line t)

(* one request, one response — for ping/stats/shutdown *)
let rpc t (v : Json.t) : (Json.t, string) result =
  send t v;
  match recv t with
  | Some r -> r
  | None -> Error "connection closed by server"

let response_type v =
  Option.value (Json.str_member "type" v) ~default:""

let is_terminal v =
  match response_type v with
  | "done" | "error" | "rejected" -> true
  | _ -> false

(* Fire [job] (an object WITHOUT an id; one is added) without waiting
   for any response; returns the id to [await] on. Any number of jobs
   may be in flight on the connection. *)
let submit t (job : (string * Json.t) list) : string =
  let id = fresh_id t in
  send t (Json.Obj (("id", Json.Str id) :: job));
  id

(* Fire many jobs in ONE wire frame ({"op":"batch","jobs":[...]}) —
   one write(2), one parse on the server, one flush of the verdicts.
   Returns the ids in job order. *)
let submit_batch t (jobs : (string * Json.t) list list) : string list =
  let tagged =
    List.map
      (fun job ->
        let id = fresh_id t in
        (id, Json.Obj (("id", Json.Str id) :: job)))
      jobs
  in
  send t
    (Json.Obj
       [
         ("op", Json.Str "batch");
         ("jobs", Json.Arr (List.map snd tagged));
       ]);
  List.map fst tagged

(* Block until [id]'s terminal response (done/error/rejected),
   whatever order completions arrive in. Streaming responses for this
   id (trace lines, metrics, accepted) go to [on_stream]; non-terminal
   responses carrying other ids go to [on_other] (default: dropped);
   terminal responses for other in-flight ids are parked for their own
   [await]. *)
let await ?(on_stream = fun _ -> ()) ?(on_other = fun _ -> ()) t (id : string)
    : (Json.t, string) result =
  match Hashtbl.find_opt t.pending id with
  | Some v ->
      Hashtbl.remove t.pending id;
      Ok v
  | None ->
      let rec loop () =
        match recv t with
        | None -> Error "connection closed by server"
        | Some (Error e) -> Error ("unparseable response: " ^ e)
        | Some (Ok v) -> (
            match Json.str_member "id" v with
            | Some i when String.equal i id ->
                if is_terminal v then Ok v
                else begin
                  on_stream v;
                  loop ()
                end
            | Some other when is_terminal v ->
                Hashtbl.replace t.pending other v;
                loop ()
            | Some _ | None ->
                on_other v;
                loop ())
      in
      loop ()

(* submit-then-await: the lock-step pattern *)
let run_job ?on_stream ?on_other t (job : (string * Json.t) list) :
    (Json.t, string) result =
  await ?on_stream ?on_other t (submit t job)

(* convenience builders for the two job kinds; [machine] is a preset
   name or a Machine.to_compact line *)
let machine_field machine =
  Option.to_list (Option.map (fun m -> ("machine", Json.Str m)) machine)

let workload_job ?(trace = false) ?(lint = false) ?machine ~workload ~config
    () =
  [
    ("workload", Json.Str workload);
    ("config", Json.Str config);
    ("trace", Json.Bool trace);
    ("lint", Json.Bool lint);
  ]
  @ machine_field machine

let source_job ?(trace = false) ?(lint = false) ?machine ?timeout_ms
    ?max_cycles ?fuel ~source ~config () =
  let opt k v = Option.to_list (Option.map (fun n -> (k, Json.Num (float_of_int n))) v) in
  [ ("source", Json.Str source); ("config", Json.Str config);
    ("trace", Json.Bool trace); ("lint", Json.Bool lint) ]
  @ machine_field machine
  @ opt "timeout_ms" timeout_ms
  @ opt "max_cycles" max_cycles
  @ opt "fuel" fuel

(* -- pre-encoded block jobs ---------------------------------------- *)

(* Compile [source] under the named config locally and encode the
   artifact for shipping: the same parse → lower → compile pipeline
   the server runs, so an honest image produces a byte-identical run
   (and run_digest) to the equivalent source job. *)
let precompile_source ~source ~config () =
  let ( let* ) = Result.bind in
  match List.assoc_opt config Edge_fuzz.Oracle.configs with
  | None -> Error ("unknown config: " ^ config)
  | Some cfg_v ->
      let w =
        {
          Edge_workloads.Workload.name = "client-precompile";
          description = "";
          source;
          mem_size = 0;
          setup = (fun _ -> []);
        }
      in
      let* ast = Edge_workloads.Workload.parse w in
      let* cfg = Edge_lang.Lower.lower ast in
      let* compiled = Dfp.Driver.compile_cfg cfg cfg_v in
      Wire.encode_compiled compiled

(* Precompile a registry workload by name. *)
let precompile ~workload ~config () =
  match Edge_workloads.Registry.find workload with
  | None -> Error ("unknown workload: " ^ workload)
  | Some w -> precompile_source ~source:w.Edge_workloads.Workload.source ~config ()

(* A job that ships a pre-encoded artifact (raw [precompile] bytes;
   base64 happens here) for the named registry workload: the server
   skips compilation and simulates the image, still verifying it
   against the workload's reference semantics. *)
let image_job ?(trace = false) ?machine ~workload ~config ~image () =
  [
    ("workload", Json.Str workload);
    ("config", Json.Str config);
    ("image", Json.Str (B64.encode image));
    ("trace", Json.Bool trace);
  ]
  @ machine_field machine
