(** Binary codec for compiled artifacts.

    A pre-encoded block job carries [encode_compiled]'s output
    (base64ed into the JSON frame) instead of kernel source: the
    client pays compilation once, the server decodes, verifies and
    simulates. Layout: magic + version, the compact program image
    ({!Edge_isa.Image.encode_compact}), placements, static counters
    and pass counters, sealed with an MD5 trailer. *)

val encode_compiled : Dfp.Driver.compiled -> (string, string) result

val decode_compiled : string -> (Dfp.Driver.compiled, string) result
(** Rejects truncation, corruption, version skew and trailing bytes. *)

val image_digest : string -> string
(** Hex MD5 of the raw artifact bytes — the cache-key salt for
    pre-encoded jobs, so an image job can never poison a source job's
    cache entry. *)
