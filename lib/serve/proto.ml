(* The dfpd wire protocol: newline-delimited JSON over a Unix socket.

   One request per line, one-or-more response lines per request. Every
   response is a single-line JSON object with a "type" field; responses
   to a job echo the client-chosen "id" (if any) so one connection can
   have several jobs in flight. Trace jobs additionally stream "trace"
   lines (one per simulator event) before the terminal "done"/"error".

   64-bit return values travel as decimal strings, not JSON numbers —
   this parser (like most) reads numbers as doubles, which cannot hold
   every int64. *)

type job_spec = {
  kind : [ `Workload of string | `Source of string ];
  config : string;
  machine : string option;
      (** machine description: a preset name ("trips_grid",
          "inorder_edge") or a [Machine.to_compact] key=value line;
          absent = the server's default machine *)
  image : string option;
      (** pre-encoded compiled artifact ({!Wire.encode_compiled}
          bytes, already base64-decoded): the server skips compilation
          and simulates this image instead *)
  trace : bool;
  lint : bool;
      (** compile in ineffectuality-report mode: one "lint" response
          line per finding before the terminal response, with the
          reported code left untouched (deletion suppressed).  Like
          trace jobs, lint jobs are never merged and never cached. *)
  timeout_ms : int option;  (** queue-wait deadline, not execution time *)
  max_cycles : int option;  (** cycle-simulator watchdog (source jobs) *)
  fuel : int option;  (** reference-interpreter statement bound *)
}

type request =
  | Job of job_spec
  | Batch of parsed list
  | Ping
  | Stats
  | Shutdown

and parsed = { id : string option; req : (request, string) result }

let protocol = "dfpd-v1"

let max_batch = 256

(* jobs that differ only by id/trace/lint/timeout are the same
   computation (streaming jobs never merge anyway);
   this digest is the single-flight key.  A pre-encoded image salts
   the digest: the same (workload, config) pair computed from source
   and from a shipped artifact are distinct computations with distinct
   cache entries, so a hostile image can never poison a source job's
   result. *)
let job_digest (s : job_spec) =
  let kind =
    match s.kind with
    | `Workload w -> "w\x00" ^ w
    | `Source src -> "s\x00" ^ src
  in
  let image =
    match s.image with None -> "" | Some img -> Digest.string img
  in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s\x00%s\x00%s\x00%d\x00%d\x00%s" kind s.config
          (Option.value s.machine ~default:"")
          (Option.value s.max_cycles ~default:(-1))
          (Option.value s.fuel ~default:(-1))
          image))

(* the job-field parser: [v] is a JSON object with no "op" (or a
   batch element) *)
let parse_job (v : Json.t) : parsed =
  let id = Json.str_member "id" v in
  let err m = { id; req = Error m } in
  let pos_int key =
    (* Ok None when absent, Error when present but not a
       positive integer *)
    match Json.member key v with
    | None -> Ok None
    | Some (Json.Num f) when Float.is_integer f && f >= 1. && f <= 1e12 ->
        Ok (Some (int_of_float f))
    | Some _ -> Error (Printf.sprintf "%S must be a positive integer" key)
  in
  let kind =
    match (Json.member "workload" v, Json.member "source" v) with
    | Some (Json.Str w), None -> Ok (`Workload w)
    | None, Some (Json.Str s) -> Ok (`Source s)
    | Some _, Some _ -> Error "give either \"workload\" or \"source\", not both"
    | Some _, None -> Error "\"workload\" must be a string"
    | None, Some _ -> Error "\"source\" must be a string"
    | None, None ->
        Error "expected an \"op\", a \"workload\" or a \"source\" field"
  in
  match kind with
  | Error m -> err m
  | Ok kind -> (
      let config =
        match Json.member "config" v with
        | Some (Json.Str c) -> Ok c
        | Some _ -> Error "\"config\" must be a string"
        | None -> Error "job is missing its \"config\" field"
      in
      let machine =
        match Json.member "machine" v with
        | None -> Ok None
        | Some (Json.Str m) -> Ok (Some m)
        | Some _ -> Error "\"machine\" must be a string"
      in
      let image =
        match Json.member "image" v with
        | None -> Ok None
        | Some (Json.Str b) -> (
            match B64.decode b with
            | Ok raw -> Ok (Some raw)
            | Error e -> Error ("\"image\": " ^ e))
        | Some _ -> Error "\"image\" must be a base64 string"
      in
      let bool_flag key =
        match Json.member key v with
        | None -> Ok false
        | Some (Json.Bool b) -> Ok b
        | Some _ -> Error (Printf.sprintf "%S must be a boolean" key)
      in
      match
        ( config,
          machine,
          image,
          (bool_flag "trace", bool_flag "lint"),
          pos_int "timeout_ms",
          pos_int "max_cycles",
          pos_int "fuel" )
      with
      | Error m, _, _, _, _, _, _
      | _, Error m, _, _, _, _, _
      | _, _, Error m, _, _, _, _
      | _, _, _, (Error m, _), _, _, _
      | _, _, _, (_, Error m), _, _, _
      | _, _, _, _, Error m, _, _
      | _, _, _, _, _, Error m, _
      | _, _, _, _, _, _, Error m ->
          err m
      | ( Ok config,
          Ok machine,
          Ok image,
          (Ok trace, Ok lint),
          Ok timeout_ms,
          Ok max_cycles,
          Ok fuel ) ->
          {
            id;
            req =
              Ok
                (Job
                   {
                     kind;
                     config;
                     machine;
                     image;
                     trace;
                     lint;
                     timeout_ms;
                     max_cycles;
                     fuel;
                   });
          })

let parse_request (line : string) : parsed =
  match Json.parse line with
  | Error e -> { id = None; req = Error ("bad json: " ^ e) }
  | Ok v -> (
      match v with
      | Json.Obj _ -> (
          let id = Json.str_member "id" v in
          let err m = { id; req = Error m } in
          match Json.member "op" v with
          | Some (Json.Str "ping") -> { id; req = Ok Ping }
          | Some (Json.Str "stats") -> { id; req = Ok Stats }
          | Some (Json.Str "shutdown") -> { id; req = Ok Shutdown }
          | Some (Json.Str "batch") -> (
              match Json.member "jobs" v with
              | Some (Json.Arr jobs) ->
                  let n = List.length jobs in
                  if n = 0 then err "batch with no jobs"
                  else if n > max_batch then
                    err
                      (Printf.sprintf "batch of %d exceeds the cap of %d" n
                         max_batch)
                  else
                    {
                      id;
                      req =
                        Ok
                          (Batch
                             (List.map
                                (function
                                  | Json.Obj _ as j -> parse_job j
                                  | _ ->
                                      {
                                        id = None;
                                        req =
                                          Error
                                            "batch jobs must be json objects";
                                      })
                                jobs));
                    }
              | Some _ -> err "\"jobs\" must be an array"
              | None -> err "batch is missing its \"jobs\" array")
          | Some (Json.Str op) -> err (Printf.sprintf "unknown op %S" op)
          | Some _ -> err "\"op\" must be a string"
          | None -> parse_job v)
      | _ -> { id = None; req = Error "request must be a json object" })

(* -- responses ----------------------------------------------------- *)

type error_reason = Protocol | Timeout | Job_failed | Bad_config | Shutdown_r

let reason_name = function
  | Protocol -> "protocol"
  | Timeout -> "timeout"
  | Job_failed -> "job"
  | Bad_config -> "config"
  | Shutdown_r -> "shutdown"

let with_id id rest =
  match id with None -> rest | Some i -> ("id", Json.Str i) :: rest

let accepted ?id ~digest ~merged () =
  Json.Obj
    (("type", Json.Str "accepted")
    :: with_id id
         [ ("digest", Json.Str digest); ("merged", Json.Bool merged) ])

let rejected ?id ~retry_after_ms () =
  Json.Obj
    (("type", Json.Str "rejected")
    :: with_id id
         [
           ("reason", Json.Str "queue_full");
           ("retry_after_ms", Json.Num (float_of_int retry_after_ms));
         ])

let trace_line ?id line =
  Json.Obj (("type", Json.Str "trace") :: with_id id [ ("line", Json.Str line) ])

let lint_line ?id line =
  Json.Obj (("type", Json.Str "lint") :: with_id id [ ("line", Json.Str line) ])

let job_metrics ?id counters =
  Json.Obj
    (("type", Json.Str "metrics")
    :: with_id id
         [
           ( "counters",
             Json.Obj
               (List.map
                  (fun (k, c) -> (k, Json.Num (float_of_int c)))
                  counters) );
         ])

let done_ ?id ~workload ~config ~cycles ~ret ~warm ~run_digest ~compile_s
    ~sim_s () =
  Json.Obj
    (("type", Json.Str "done")
    :: with_id id
         [
           ("workload", Json.Str workload);
           ("config", Json.Str config);
           ("cycles", Json.Num (float_of_int cycles));
           ("ret", Json.Str (Int64.to_string ret));
           ("warm", Json.Bool warm);
           ("run_digest", Json.Str run_digest);
           ("compile_s", Json.Num compile_s);
           ("sim_s", Json.Num sim_s);
         ])

let error ?id ~reason ~message () =
  Json.Obj
    (("type", Json.Str "error")
    :: with_id id
         [
           ("reason", Json.Str (reason_name reason));
           ("message", Json.Str message);
         ])

let pong = Json.Obj [ ("type", Json.Str "pong") ]

let stats fields =
  Json.Obj
    (("type", Json.Str "stats")
    :: ("protocol", Json.Str protocol)
    :: List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) fields)
