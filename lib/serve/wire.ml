(* Binary codec for compiled artifacts (Dfp.Driver.compiled).

   Pre-encoded block jobs ship one of these over the wire instead of
   kernel source: the client compiles once, the server decodes and
   simulates. The same bytes double as the disk-cache payload digest
   salt, so a given image always maps to the same cache entries.

   Layout (little-endian):

     "DFPW" magic, u8 version
     u32 len | compact program image   (Edge_isa.Image.encode_compact)
     u32 count | per placement: u32 nlen, name, u32 ntiles, u16 tiles
     u32 static_fanout_moves, static_instrs, static_blocks,
         explicit_predicates
     u32 count | per pass counter: u32 nlen, name, i32 value
     16-byte MD5 over everything above

   The digest trailer plus the compact image's own digest means a torn
   or bit-flipped artifact decodes to an error, never to a different
   program. *)

let magic = "DFPW"
let version = 1

let ( let* ) = Result.bind

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let encode_compiled (c : Dfp.Driver.compiled) =
  let* image = Edge_isa.Image.encode_compact c.Dfp.Driver.program in
  let buf = Buffer.create (String.length image + 256) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  add_str buf image;
  add_u32 buf (List.length c.Dfp.Driver.placements);
  List.iter
    (fun (name, tiles) ->
      add_str buf name;
      add_u32 buf (Array.length tiles);
      Array.iter (fun t -> Buffer.add_uint16_le buf (t land 0xFFFF)) tiles)
    c.Dfp.Driver.placements;
  add_u32 buf c.Dfp.Driver.static_fanout_moves;
  add_u32 buf c.Dfp.Driver.static_instrs;
  add_u32 buf c.Dfp.Driver.static_blocks;
  add_u32 buf c.Dfp.Driver.explicit_predicates;
  add_u32 buf (List.length c.Dfp.Driver.pass_counters);
  List.iter
    (fun (name, v) ->
      add_str buf name;
      Buffer.add_int32_le buf (Int32.of_int v))
    c.Dfp.Driver.pass_counters;
  let payload = Buffer.contents buf in
  Ok (payload ^ Digest.string payload)

(* stateful little reader over the payload; every read is bounds
   checked so truncation surfaces as an error, not an exception *)
type reader = { s : string; mutable pos : int; limit : int }

let ru32 r =
  if r.pos + 4 > r.limit then Error "compiled artifact: truncated"
  else begin
    let v = Int32.to_int (String.get_int32_le r.s r.pos) in
    r.pos <- r.pos + 4;
    if v < 0 then Error "compiled artifact: negative length" else Ok v
  end

let ri32 r =
  if r.pos + 4 > r.limit then Error "compiled artifact: truncated"
  else begin
    let v = Int32.to_int (String.get_int32_le r.s r.pos) in
    r.pos <- r.pos + 4;
    Ok v
  end

let ru16 r =
  if r.pos + 2 > r.limit then Error "compiled artifact: truncated"
  else begin
    let v = String.get_uint16_le r.s r.pos in
    r.pos <- r.pos + 2;
    Ok v
  end

let rstr r =
  let* n = ru32 r in
  if r.pos + n > r.limit then Error "compiled artifact: truncated string"
  else begin
    let s = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    Ok s
  end

let rec rlist r n f acc =
  if n = 0 then Ok (List.rev acc)
  else
    let* x = f r in
    rlist r (n - 1) f (x :: acc)

let decode_compiled s =
  let n = String.length s in
  if n < 4 + 1 + 16 then Error "compiled artifact: truncated"
  else if not (String.equal (String.sub s 0 4) magic) then
    Error "compiled artifact: bad magic"
  else if Char.code s.[4] <> version then
    Error
      (Printf.sprintf "compiled artifact: unsupported version %d"
         (Char.code s.[4]))
  else if
    not
      (String.equal
         (String.sub s (n - 16) 16)
         (Digest.string (String.sub s 0 (n - 16))))
  then Error "compiled artifact: digest mismatch"
  else begin
    let r = { s; pos = 5; limit = n - 16 } in
    let* image = rstr r in
    let* program = Edge_isa.Image.decode_compact image in
    let* nplace = ru32 r in
    let* placements =
      rlist r nplace
        (fun r ->
          let* name = rstr r in
          let* ntiles = ru32 r in
          let tiles = Array.make ntiles 0 in
          let rec go i =
            if i >= ntiles then Ok ()
            else
              let* t = ru16 r in
              tiles.(i) <- t;
              go (i + 1)
          in
          let* () = go 0 in
          Ok (name, tiles))
        []
    in
    let* static_fanout_moves = ru32 r in
    let* static_instrs = ru32 r in
    let* static_blocks = ru32 r in
    let* explicit_predicates = ru32 r in
    let* npass = ru32 r in
    let* pass_counters =
      rlist r npass
        (fun r ->
          let* name = rstr r in
          let* v = ri32 r in
          Ok (name, v))
        []
    in
    if r.pos <> r.limit then Error "compiled artifact: trailing bytes"
    else
      Ok
        {
          Dfp.Driver.program;
          placements;
          static_fanout_moves;
          static_instrs;
          static_blocks;
          explicit_predicates;
          pass_counters;
        }
  end

let image_digest s = Digest.to_hex (Digest.string s)
