(* RFC 4648 base64, padded. The wire protocol is newline-delimited
   JSON, so binary payloads (pre-encoded block images) ride inside
   string fields as base64. Hand-rolled: the toolchain ships no base64
   library and the payloads are small enough that simplicity wins. *)

let alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let emit b0 b1 b2 k =
    let v = (b0 lsl 16) lor (b1 lsl 8) lor b2 in
    Buffer.add_char out alphabet.[(v lsr 18) land 63];
    Buffer.add_char out alphabet.[(v lsr 12) land 63];
    Buffer.add_char out (if k > 1 then alphabet.[(v lsr 6) land 63] else '=');
    Buffer.add_char out (if k > 2 then alphabet.[v land 63] else '=')
  in
  let i = ref 0 in
  while !i + 3 <= n do
    emit (Char.code s.[!i]) (Char.code s.[!i + 1]) (Char.code s.[!i + 2]) 3;
    i := !i + 3
  done;
  (match n - !i with
  | 1 -> emit (Char.code s.[!i]) 0 0 1
  | 2 -> emit (Char.code s.[!i]) (Char.code s.[!i + 1]) 0 2
  | _ -> ());
  Buffer.contents out

let value_of = function
  | 'A' .. 'Z' as c -> Char.code c - 65
  | 'a' .. 'z' as c -> Char.code c - 97 + 26
  | '0' .. '9' as c -> Char.code c - 48 + 52
  | '+' -> 62
  | '/' -> 63
  | _ -> -1

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "base64: length not a multiple of 4"
  else begin
    let pad =
      if n = 0 then 0
      else if s.[n - 2] = '=' then 2
      else if s.[n - 1] = '=' then 1
      else 0
    in
    let out = Buffer.create (n / 4 * 3) in
    let err = ref None in
    let i = ref 0 in
    while !err = None && !i < n do
      let quad k =
        let c = s.[!i + k] in
        if c = '=' then begin
          (* '=' is only legal in the final quad's tail *)
          if !i + 4 < n || k < 4 - pad then err := Some "base64: stray '='";
          0
        end
        else
          match value_of c with
          | -1 ->
              err := Some (Printf.sprintf "base64: bad character %C" c);
              0
          | v -> v
      in
      let v0 = quad 0 and v1 = quad 1 and v2 = quad 2 and v3 = quad 3 in
      let v = (v0 lsl 18) lor (v1 lsl 12) lor (v2 lsl 6) lor v3 in
      Buffer.add_char out (Char.chr ((v lsr 16) land 0xFF));
      let last = !i + 4 >= n in
      if not (last && pad >= 2) then
        Buffer.add_char out (Char.chr ((v lsr 8) land 0xFF));
      if not (last && pad >= 1) then Buffer.add_char out (Char.chr (v land 0xFF));
      i := !i + 4
    done;
    match !err with Some e -> Error e | None -> Ok (Buffer.contents out)
  end
