(* The dfpd job server.

   One listener thread accepts Unix-socket connections; one reader
   thread per connection parses newline-delimited JSON requests; a pool
   of worker *domains* (real parallelism — compilation and simulation
   are CPU-bound) drains a bounded job queue. Identical in-flight jobs
   are deduplicated single-flight style: the digest of (kernel, config,
   bounds) keys an in-flight table, and latecomers just attach
   themselves as extra waiters on the first entry, so a 16-way stampede
   of the same job costs one compile and one simulation.

   Backpressure is explicit: when the queue is at [queue_cap] the job
   is rejected with a retry-after hint rather than queued without
   bound. Per-job timeouts are cooperative — the deadline is checked
   when the job reaches the front of the queue, and execution itself is
   bounded by interpreter fuel and the cycle-simulator watchdog, so a
   hostile non-terminating kernel yields a structured timeout error
   instead of wedging a domain.

   Trace jobs ([trace:true]) are never merged and never cached: they
   attach a real {!Edge_obs.Obs} sink that streams one "trace" response
   line per simulator event back to the submitting connection, plus a
   final "metrics" response with the counter snapshot. *)

module Experiment = Edge_harness.Experiment
module Workload = Edge_workloads.Workload
module Disk_cache = Edge_parallel.Disk_cache
module Metrics = Edge_obs.Metrics

type config = {
  socket_path : string;
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** pending (not-yet-running) job bound *)
  cache : Disk_cache.t option;
  max_cycles : int;  (** watchdog ceiling for source jobs *)
  interp_fuel : int;  (** reference-interpreter bound for source jobs *)
  retry_after_ms : int;  (** hint attached to queue-full rejections *)
}

let default_config ?cache ~socket_path () =
  {
    socket_path;
    jobs = max 1 (Domain.recommended_domain_count () - 1);
    queue_cap = 64;
    cache;
    max_cycles = 10_000_000;
    interp_fuel = 3_000_000;
    retry_after_ms = 50;
  }

(* a connection: its fd plus a mutex serializing writers (the reader
   thread, worker domains and trace sinks all send on it) *)
type conn = {
  fd : Unix.file_descr;
  send_mu : Mutex.t;
  mutable alive : bool;
}

let send_raw conn (s : string) =
  Mutex.lock conn.send_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.send_mu)
    (fun () ->
      if conn.alive then
        let buf = Bytes.of_string (s ^ "\n") in
        let len = Bytes.length buf in
        let rec write off =
          if off < len then
            match Unix.write conn.fd buf off (len - off) with
            | n -> write (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
            | exception Unix.Unix_error _ -> conn.alive <- false
        in
        write 0)

let send conn (v : Json.t) = send_raw conn (Json.to_string v)

(* one queued unit of work; [waiters] accumulates the submitters of
   merged identical jobs — each gets the terminal response under its
   own id *)
type entry = {
  digest : string;
  spec : Proto.job_spec;
  enqueued_at : float;
  deadline : float option;
  mutable waiters : (string option * conn) list;
}

type stats = {
  accepted : int Atomic.t;
  merged : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  rejected : int Atomic.t;
  timeouts : int Atomic.t;
  protocol_errors : int Atomic.t;
  trace_events : int Atomic.t;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  queue : entry Queue.t;
  mu : Mutex.t;
  not_empty : Condition.t;
  inflight : (string, entry) Hashtbl.t;  (* digest -> entry, mu-guarded *)
  mutable closing : bool;
  shutdown_req : bool Atomic.t;
  stats : stats;
  mutable conns : conn list;  (* mu-guarded *)
  mutable workers : unit Domain.t list;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;  (* mu-guarded *)
}

(* -- job execution ------------------------------------------------- *)

(* a source job becomes a synthetic workload under the fuzz harness
   conventions (same memory image and arguments as the differential
   oracle), so `fuzz --serve` can diff server verdicts against
   Oracle.run_reference directly *)
let workload_of_source src =
  let module Gen = Edge_fuzz.Gen in
  {
    Workload.name = "serve-" ^ Digest.to_hex (Digest.string src);
    description = "kernel submitted over the dfpd socket";
    source = src;
    mem_size = Gen.mem_size;
    setup =
      (fun mem ->
        for i = 0 to Gen.array_len - 1 do
          Edge_isa.Mem.store_int mem
            (Gen.addr_a + (8 * i))
            (Int64.of_int ((i * 37) - 90));
          Edge_isa.Mem.store_int mem
            (Gen.addr_b + (8 * i))
            (Int64.of_int (1000 - (i * 13)))
        done;
        Gen.default_args);
  }

let find_config name = List.assoc_opt name Edge_fuzz.Oracle.configs

(* digest of the run with its wall-clock noise zeroed: two runs of the
   same job are byte-identical iff these agree *)
let run_digest (r : Experiment.run) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string { r with Experiment.compile_s = 0.; sim_s = 0. } []))

let timeoutish msg =
  let has needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  has "fuel exhausted" || has "watchdog"

(* run one job to a terminal result; [emit] receives streaming trace /
   metrics responses for the submitting waiter only *)
let execute t (e : entry) ~(emit : Json.t -> unit) :
    (Experiment.run * bool, Proto.error_reason * string) result =
  let spec = e.spec in
  let workload =
    match spec.kind with
    | `Workload name -> (
        match Edge_workloads.Registry.find name with
        | Some w -> Ok w
        | None -> Error (Proto.Bad_config, "unknown workload: " ^ name))
    | `Source src -> Ok (workload_of_source src)
  in
  (* the machine field is a preset name or a Machine.to_compact line;
     anything of_compact rejects is a config error, not a job failure *)
  let req_machine =
    match spec.machine with
    | None -> Ok None
    | Some s -> (
        match Edge_sim.Machine.of_compact s with
        | Ok m -> Ok (Some m)
        | Error e -> Error (Proto.Bad_config, "bad machine: " ^ e))
  in
  match (workload, find_config spec.config, req_machine) with
  | Error e, _, _ | _, _, Error e -> Error e
  | Ok _, None, _ -> Error (Proto.Bad_config, "unknown config: " ^ spec.config)
  | Ok w, Some config, Ok req_machine -> (
      (* without a machine field, registry workloads run under the
         stock machine and unbounded fuel so their cache keys (and
         results) are byte-identical to a direct Experiment.run_one;
         untrusted source jobs get bounded fuel and a bounded
         watchdog on top of whatever machine was requested *)
      let machine, interp_fuel =
        match spec.kind with
        | `Workload _ -> (req_machine, None)
        | `Source _ ->
            let base =
              Option.value req_machine ~default:Edge_sim.Machine.default
            in
            let mc =
              min t.cfg.max_cycles
                (Option.value spec.max_cycles ~default:t.cfg.max_cycles)
            in
            ( Some { base with Edge_sim.Machine.max_cycles = mc },
              Some (Option.value spec.fuel ~default:t.cfg.interp_fuel) )
      in
      let obs, finish_obs =
        if not spec.trace then (None, fun () -> ())
        else
          let id = match e.waiters with (id, _) :: _ -> id | [] -> None in
          let metrics = Metrics.create () in
          let sink ev =
            Atomic.incr t.stats.trace_events;
            emit (Proto.trace_line ?id (Edge_obs.Event.to_line ev))
          in
          ( Some (Edge_obs.Obs.make ~level:Edge_obs.Trace.Full ~metrics ~sink ()),
            fun () ->
              emit
                (Proto.job_metrics ?id
                   (List.sort compare (Metrics.counters metrics))) )
      in
      let result =
        try
          Experiment.run_one ?machine ?obs ?interp_fuel ?cache:t.cfg.cache w
            (spec.config, config)
        with exn -> Error ("exception: " ^ Printexc.to_string exn)
      in
      finish_obs ();
      match result with
      | Ok r ->
          let warm = r.Experiment.compile_s = 0. && r.Experiment.sim_s = 0. in
          Ok (r, warm)
      | Error msg when timeoutish msg -> Error (Proto.Timeout, msg)
      | Error msg -> Error (Proto.Job_failed, msg))

let terminal_response id = function
  | Ok ((r : Experiment.run), warm) ->
      Proto.done_ ?id ~workload:r.Experiment.workload ~config:r.config
        ~cycles:r.cycles ~ret:r.ret ~warm ~run_digest:(run_digest r)
        ~compile_s:r.compile_s ~sim_s:r.sim_s ()
  | Error (reason, message) -> Proto.error ?id ~reason ~message ()

(* deliver the terminal result to every waiter, removing the entry
   from the in-flight table first so a new identical submission starts
   a fresh run rather than attaching to a finished one *)
let complete t (e : entry) result =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.inflight e.digest with
  | Some e' when e' == e -> Hashtbl.remove t.inflight e.digest
  | _ -> ());
  let waiters = e.waiters in
  e.waiters <- [];
  Mutex.unlock t.mu;
  (match result with
  | Ok _ -> Atomic.incr t.stats.completed
  | Error (Proto.Timeout, _) ->
      Atomic.incr t.stats.timeouts;
      Atomic.incr t.stats.failed
  | Error _ -> Atomic.incr t.stats.failed);
  List.iter
    (fun (id, conn) -> send conn (terminal_response id result))
    waiters

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mu;
    let rec wait () =
      if Queue.is_empty t.queue && not t.closing then begin
        Condition.wait t.not_empty t.mu;
        wait ()
      end
    in
    wait ();
    let job =
      if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
    in
    let closing = t.closing in
    Mutex.unlock t.mu;
    match job with
    | None -> ()  (* closing and drained *)
    | Some e ->
        (if closing then
           complete t e
             (Error (Proto.Shutdown_r, "server shutting down"))
         else
           match e.deadline with
           | Some d when Unix.gettimeofday () > d ->
               complete t e
                 (Error
                    ( Proto.Timeout,
                      Printf.sprintf
                        "timed out after %.0f ms waiting in queue"
                        ((Unix.gettimeofday () -. e.enqueued_at) *. 1000.) ))
           | _ ->
               let emit v =
                 match e.waiters with
                 | (_, conn) :: _ -> send conn v
                 | [] -> ()
               in
               complete t e (execute t e ~emit));
        next ()
  in
  next ()

(* -- request handling ---------------------------------------------- *)

let stats_response t =
  let pending = Mutex.protect t.mu (fun () -> Queue.length t.queue) in
  let base =
    [
      ("jobs_accepted", Atomic.get t.stats.accepted);
      ("jobs_merged", Atomic.get t.stats.merged);
      ("jobs_completed", Atomic.get t.stats.completed);
      ("jobs_failed", Atomic.get t.stats.failed);
      ("jobs_rejected", Atomic.get t.stats.rejected);
      ("timeouts", Atomic.get t.stats.timeouts);
      ("protocol_errors", Atomic.get t.stats.protocol_errors);
      ("trace_events", Atomic.get t.stats.trace_events);
      ("queue_depth", pending);
      ("workers", t.cfg.jobs);
    ]
  in
  let cache =
    match t.cfg.cache with
    | None -> []
    | Some c ->
        [
          ("cache_hits", Disk_cache.hits c);
          ("cache_misses", Disk_cache.misses c);
          ("cache_errors", Disk_cache.errors c);
          ("cache_evictions", Disk_cache.evictions c);
        ]
  in
  Proto.stats (base @ cache)

(* snapshot the server (and cache) counters into a metrics registry
   under the serve.* / cache.* namespaces *)
let publish t (m : Metrics.t) =
  Metrics.incr ~by:(Atomic.get t.stats.accepted) m "serve.jobs_accepted";
  Metrics.incr ~by:(Atomic.get t.stats.merged) m "serve.jobs_merged";
  Metrics.incr ~by:(Atomic.get t.stats.completed) m "serve.jobs_completed";
  Metrics.incr ~by:(Atomic.get t.stats.failed) m "serve.jobs_failed";
  Metrics.incr ~by:(Atomic.get t.stats.rejected) m "serve.jobs_rejected";
  Metrics.incr ~by:(Atomic.get t.stats.timeouts) m "serve.timeouts";
  Metrics.incr
    ~by:(Atomic.get t.stats.protocol_errors)
    m "serve.protocol_errors";
  Metrics.incr ~by:(Atomic.get t.stats.trace_events) m "serve.trace_events";
  match t.cfg.cache with None -> () | Some c -> Disk_cache.publish c m

let submit t conn id (spec : Proto.job_spec) =
  let digest = Proto.job_digest spec in
  let now = Unix.gettimeofday () in
  let fresh () =
    {
      digest;
      spec;
      enqueued_at = now;
      deadline =
        Option.map
          (fun ms -> now +. (float_of_int ms /. 1000.))
          spec.timeout_ms;
      waiters = [ (id, conn) ];
    }
  in
  let verdict =
    Mutex.protect t.mu (fun () ->
        if t.closing then `Closing
        else if (not spec.trace) && Hashtbl.mem t.inflight digest then begin
          let e = Hashtbl.find t.inflight digest in
          e.waiters <- e.waiters @ [ (id, conn) ];
          `Merged
        end
        else if Queue.length t.queue >= t.cfg.queue_cap then `Full
        else begin
          let e = fresh () in
          if not spec.trace then Hashtbl.replace t.inflight digest e;
          Queue.push e t.queue;
          Condition.signal t.not_empty;
          `Queued
        end)
  in
  match verdict with
  | `Closing ->
      send conn
        (Proto.error ?id ~reason:Proto.Shutdown_r
           ~message:"server shutting down" ())
  | `Merged ->
      Atomic.incr t.stats.accepted;
      Atomic.incr t.stats.merged;
      send conn (Proto.accepted ?id ~digest ~merged:true ())
  | `Full ->
      Atomic.incr t.stats.rejected;
      send conn (Proto.rejected ?id ~retry_after_ms:t.cfg.retry_after_ms ())
  | `Queued ->
      Atomic.incr t.stats.accepted;
      send conn (Proto.accepted ?id ~digest ~merged:false ())

let handle_line t conn line =
  let { Proto.id; req } = Proto.parse_request line in
  match req with
  | Error msg ->
      Atomic.incr t.stats.protocol_errors;
      send conn (Proto.error ?id ~reason:Proto.Protocol ~message:msg ())
  | Ok Proto.Ping -> send conn Proto.pong
  | Ok Proto.Stats -> send conn (stats_response t)
  | Ok Proto.Shutdown ->
      Atomic.set t.shutdown_req true;
      send conn (Json.Obj [ ("type", Json.Str "shutting_down") ])
  | Ok (Proto.Job spec) -> submit t conn id spec

let conn_loop t conn () =
  let ic = Unix.in_channel_of_descr conn.fd in
  let rec go () =
    match input_line ic with
    | line ->
        if String.length line > 0 then handle_line t conn line;
        go ()
    | exception (End_of_file | Sys_error _) -> ()
  in
  go ();
  Mutex.lock conn.send_mu;
  conn.alive <- false;
  Mutex.unlock conn.send_mu;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.mu (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns)

let accept_loop t () =
  let rec go () =
    if not t.closing then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              let conn = { fd; send_mu = Mutex.create (); alive = true } in
              let th = Thread.create (conn_loop t conn) () in
              Mutex.protect t.mu (fun () ->
                  t.conns <- conn :: t.conns;
                  t.conn_threads <- th :: t.conn_threads)
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* -- lifecycle ----------------------------------------------------- *)

let start (cfg : config) : t =
  (* a worker writing to a connection the client already closed must
     get EPIPE, not a process-killing signal *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let t =
    {
      cfg;
      listen_fd;
      queue = Queue.create ();
      mu = Mutex.create ();
      not_empty = Condition.create ();
      inflight = Hashtbl.create 64;
      closing = false;
      shutdown_req = Atomic.make false;
      stats =
        {
          accepted = Atomic.make 0;
          merged = Atomic.make 0;
          completed = Atomic.make 0;
          failed = Atomic.make 0;
          rejected = Atomic.make 0;
          timeouts = Atomic.make 0;
          protocol_errors = Atomic.make 0;
          trace_events = Atomic.make 0;
        };
      conns = [];
      workers = [];
      accept_thread = None;
      conn_threads = [];
    }
  in
  t.workers <-
    List.init cfg.jobs (fun _ -> Domain.spawn (worker_loop t));
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let shutdown_requested t = Atomic.get t.shutdown_req

(* block until some client asked for shutdown (polled: the flag is set
   from connection threads and signal handlers) *)
let wait ?(poll_s = 0.05) t =
  while not (Atomic.get t.shutdown_req) do
    Thread.delay poll_s
  done

let request_shutdown t = Atomic.set t.shutdown_req true

let stop t =
  let already =
    Mutex.protect t.mu (fun () ->
        let was = t.closing in
        t.closing <- true;
        Condition.broadcast t.not_empty;
        was)
  in
  if not already then begin
    (* workers drain the queue (answering "shutting down" to whatever
       was still pending) and exit *)
    List.iter Domain.join t.workers;
    t.workers <- [];
    (match t.accept_thread with
    | Some th ->
        Thread.join th;
        t.accept_thread <- None
    | None -> ());
    (* wake connection readers blocked in input_line *)
    let conns, threads =
      Mutex.protect t.mu (fun () -> (t.conns, t.conn_threads))
    in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join threads;
    Mutex.protect t.mu (fun () -> t.conn_threads <- []);
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    if Sys.file_exists t.cfg.socket_path then
      try Sys.remove t.cfg.socket_path with Sys_error _ -> ()
  end
