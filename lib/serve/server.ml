(* The dfpd job server.

   One listener thread accepts Unix-socket connections; one reader
   thread per connection parses newline-delimited JSON requests; a pool
   of worker *domains* (real parallelism — compilation and simulation
   are CPU-bound) drains a bounded job queue. Identical in-flight jobs
   are deduplicated single-flight style: the digest of (kernel, config,
   bounds) keys an in-flight table, and latecomers just attach
   themselves as extra waiters on the first entry, so a 16-way stampede
   of the same job costs one compile and one simulation.

   Backpressure is explicit: when the queue is at [queue_cap] the job
   is rejected with a retry-after hint rather than queued without
   bound. Per-job timeouts are cooperative — the deadline is checked
   when the job reaches the front of the queue, and execution itself is
   bounded by interpreter fuel and the cycle-simulator watchdog, so a
   hostile non-terminating kernel yields a structured timeout error
   instead of wedging a domain.

   Trace jobs ([trace:true]) are never merged and never cached: they
   attach a real {!Edge_obs.Obs} sink that streams one "trace" response
   line per simulator event back to the submitting connection, plus a
   final "metrics" response with the counter snapshot. *)

module Experiment = Edge_harness.Experiment
module Workload = Edge_workloads.Workload
module Disk_cache = Edge_parallel.Disk_cache
module Mem_cache = Edge_parallel.Mem_cache
module Metrics = Edge_obs.Metrics

type config = {
  socket_path : string;
  jobs : int;  (** worker-domain ceiling (domains spawn on demand) *)
  queue_cap : int;  (** pending (not-yet-running) job bound *)
  cache : Disk_cache.t option;
  mem_entries : int;
      (** in-memory result cache entry cap; [0] disables the cache
          (and with it the reader-thread warm fast path) *)
  max_cycles : int;  (** watchdog ceiling for source jobs *)
  interp_fuel : int;  (** reference-interpreter bound for source jobs *)
  retry_after_ms : int;  (** hint attached to queue-full rejections *)
}

let default_config ?cache ~socket_path () =
  {
    socket_path;
    jobs = max 1 (Domain.recommended_domain_count () - 1);
    queue_cap = 64;
    cache;
    mem_entries = 4096;
    max_cycles = 10_000_000;
    interp_fuel = 3_000_000;
    retry_after_ms = 50;
  }

(* a connection: its fd plus a mutex serializing writers (the reader
   thread, worker domains and trace sinks all send on it) *)
type conn = {
  fd : Unix.file_descr;
  send_mu : Mutex.t;
  mutable alive : bool;
}

let send_raw conn (s : string) =
  Mutex.lock conn.send_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.send_mu)
    (fun () ->
      if conn.alive then
        let buf = Bytes.of_string (s ^ "\n") in
        let len = Bytes.length buf in
        let rec write off =
          if off < len then
            match Unix.write conn.fd buf off (len - off) with
            | n -> write (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
            | exception Unix.Unix_error _ -> conn.alive <- false
        in
        write 0)

let send conn (v : Json.t) = send_raw conn (Json.to_string v)

(* one writev-style syscall for a burst of rendered response lines (a
   batch request's accepted/fast-hit lines): one buffer, one write(2)
   for the whole frame instead of one per response *)
let send_raw_lines conn = function
  | [] -> ()
  | lines -> send_raw conn (String.concat "\n" lines)

(* one queued unit of work; [waiters] accumulates the submitters of
   merged identical jobs — each gets the terminal response under its
   own id *)
type entry = {
  digest : string;
  spec : Proto.job_spec;
  enqueued_at : float;
  deadline : float option;
  mutable waiters : (string option * conn) list;
}

type stats = {
  accepted : int Atomic.t;
  merged : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  rejected : int Atomic.t;
  timeouts : int Atomic.t;
  protocol_errors : int Atomic.t;
  trace_events : int Atomic.t;
  fast_hits : int Atomic.t;
      (* jobs answered by the reader thread from the mem cache,
         without touching the queue, the in-flight table or a worker *)
  batches : int Atomic.t;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  queue : entry Queue.t;
  mu : Mutex.t;
  inflight : (string, entry) Hashtbl.t;  (* digest -> entry, mu-guarded *)
  mem : Experiment.run Mem_cache.t option;
      (* in-memory result cache layered in front of the disk cache by
         the workers' run_one/run_precompiled calls (Experiment cache
         keys) *)
  fast : (string * string) Mem_cache.t option;
      (* the reader-thread fast path, keyed "job:<job digest>": the
         fully rendered (accepted, done) response pair (sans ids), so
         a hit costs one stripe probe and two id splices — no Marshal,
         no MD5, no JSON building *)
  mutable closing : bool;
  shutdown_req : bool Atomic.t;
  stats : stats;
  (* per-stage latency histograms, "serve.stage." prefixed; Metrics is
     not thread-safe, so this private registry has its own mutex and
     is merged into the caller's registry at publish time *)
  stage_metrics : Metrics.t;
  stage_mu : Mutex.t;
  mutable conns : conn list;  (* mu-guarded *)
  (* worker domains are spawned on demand, up to [cfg.jobs], and run
     until the queue is dry: every live domain joins the runtime's
     stop-the-world handshakes whether it has work or not, so an idle
     worker retires (moving its handle to [dead] for reaping) rather
     than parking in a condvar. A purely warm server is single-domain;
     a cold burst spawns afresh — Domain.spawn is microseconds against
     a compile. [workers]/[dead]/[spawned]/[next_wid] are mu-guarded;
     [active] counts workers currently executing a job. *)
  mutable workers : (int * unit Domain.t) list;
  mutable dead : unit Domain.t list;
  mutable spawned : int;
  mutable next_wid : int;
  active : int Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;  (* mu-guarded *)
}

(* stage latencies are observed in microseconds, bucketed to a 1-2-5
   ladder so the histogram stays a handful of meaningful bins instead
   of one bin per distinct sample *)
let bucket_us v =
  if v <= 0 then 0
  else begin
    let d = ref 1 in
    while v / !d >= 10 do
      d := !d * 10
    done;
    let m = v / !d in
    (if m >= 5 then 5 else if m >= 2 then 2 else 1) * !d
  end

let observe_stage t name seconds =
  let us = int_of_float (seconds *. 1e6) in
  Mutex.lock t.stage_mu;
  Metrics.observe t.stage_metrics name (bucket_us us);
  Mutex.unlock t.stage_mu

(* -- job execution ------------------------------------------------- *)

(* a source job becomes a synthetic workload under the fuzz harness
   conventions (same memory image and arguments as the differential
   oracle), so `fuzz --serve` can diff server verdicts against
   Oracle.run_reference directly *)
let workload_of_source src =
  let module Gen = Edge_fuzz.Gen in
  {
    Workload.name = "serve-" ^ Digest.to_hex (Digest.string src);
    description = "kernel submitted over the dfpd socket";
    source = src;
    mem_size = Gen.mem_size;
    setup =
      (fun mem ->
        for i = 0 to Gen.array_len - 1 do
          Edge_isa.Mem.store_int mem
            (Gen.addr_a + (8 * i))
            (Int64.of_int ((i * 37) - 90));
          Edge_isa.Mem.store_int mem
            (Gen.addr_b + (8 * i))
            (Int64.of_int (1000 - (i * 13)))
        done;
        Gen.default_args);
  }

let find_config name = List.assoc_opt name Edge_fuzz.Oracle.configs

(* digest of the run with its wall-clock noise zeroed: two runs of the
   same job are byte-identical iff these agree *)
let run_digest (r : Experiment.run) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string { r with Experiment.compile_s = 0.; sim_s = 0. } []))

let timeoutish msg =
  let has needle =
    let nl = String.length needle and ml = String.length msg in
    let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
    go 0
  in
  has "fuel exhausted" || has "watchdog"

(* run one job to a terminal result; [emit] receives streaming trace /
   metrics responses for the submitting waiter only *)
let execute t (e : entry) ~(emit : Json.t -> unit) :
    (Experiment.run * bool, Proto.error_reason * string) result =
  let spec = e.spec in
  let workload =
    match spec.kind with
    | `Workload name -> (
        match Edge_workloads.Registry.find name with
        | Some w -> Ok w
        | None -> Error (Proto.Bad_config, "unknown workload: " ^ name))
    | `Source src -> Ok (workload_of_source src)
  in
  (* the machine field is a preset name or a Machine.to_compact line;
     anything of_compact rejects is a config error, not a job failure *)
  let req_machine =
    match spec.machine with
    | None -> Ok None
    | Some s -> (
        match Edge_sim.Machine.of_compact s with
        | Ok m -> Ok (Some m)
        | Error e -> Error (Proto.Bad_config, "bad machine: " ^ e))
  in
  (* a pre-encoded image is decoded (and digest-verified) before the
     job counts as runnable: torn or corrupt artifacts are a config
     error, not a job failure *)
  let image =
    match spec.image with
    | None -> Ok None
    | Some raw -> (
        match Wire.decode_compiled raw with
        | Ok c -> Ok (Some (c, Wire.image_digest raw))
        | Error e -> Error (Proto.Bad_config, e))
  in
  match (workload, find_config spec.config, req_machine, image) with
  | Error e, _, _, _ | _, _, Error e, _ | _, _, _, Error e -> Error e
  | Ok _, None, _, _ ->
      Error (Proto.Bad_config, "unknown config: " ^ spec.config)
  | Ok w, Some config, Ok req_machine, Ok image -> (
      (* without a machine field, registry workloads run under the
         stock machine and unbounded fuel so their cache keys (and
         results) are byte-identical to a direct Experiment.run_one;
         untrusted source jobs get bounded fuel and a bounded
         watchdog on top of whatever machine was requested *)
      let machine, interp_fuel =
        match spec.kind with
        | `Workload _ -> (req_machine, None)
        | `Source _ ->
            let base =
              Option.value req_machine ~default:Edge_sim.Machine.default
            in
            let mc =
              min t.cfg.max_cycles
                (Option.value spec.max_cycles ~default:t.cfg.max_cycles)
            in
            ( Some { base with Edge_sim.Machine.max_cycles = mc },
              Some (Option.value spec.fuel ~default:t.cfg.interp_fuel) )
      in
      let obs, finish_obs =
        if not spec.trace then (None, fun () -> ())
        else
          let id = match e.waiters with (id, _) :: _ -> id | [] -> None in
          let metrics = Metrics.create () in
          let sink ev =
            Atomic.incr t.stats.trace_events;
            emit (Proto.trace_line ?id (Edge_obs.Event.to_line ev))
          in
          ( Some (Edge_obs.Obs.make ~level:Edge_obs.Trace.Full ~metrics ~sink ()),
            fun () ->
              emit
                (Proto.job_metrics ?id
                   (List.sort compare (Metrics.counters metrics))) )
      in
      (* lint jobs stream one "lint" line per ineffectuality finding
         before the terminal response; the simulated artifact is the
         lint artifact (deletion suppressed), and like trace jobs the
         result is never merged or cached *)
      let lint =
        if not spec.lint then None
        else
          let id = match e.waiters with (id, _) :: _ -> id | [] -> None in
          Some
            (fun f -> emit (Proto.lint_line ?id (Dfp.Opt_ineff.render f)))
      in
      let result =
        try
          match image with
          | None ->
              Experiment.run_one ?machine ?obs ?interp_fuel
                ?cache:t.cfg.cache ?mem:t.mem ~async_store:true ?lint w
                (spec.config, config)
          | Some _ when spec.lint ->
              Error "lint applies to compiled-from-source jobs, not images"
          | Some (compiled, image_digest) ->
              Experiment.run_precompiled ?machine ?obs ?interp_fuel
                ?cache:t.cfg.cache ?mem:t.mem ~async_store:true
                ~image_digest w (spec.config, config) compiled
        with exn -> Error ("exception: " ^ Printexc.to_string exn)
      in
      finish_obs ();
      match result with
      | Ok r ->
          let warm = r.Experiment.compile_s = 0. && r.Experiment.sim_s = 0. in
          if r.Experiment.compile_s > 0. then
            observe_stage t "serve.stage.compile_us" r.Experiment.compile_s;
          if r.Experiment.sim_s > 0. then
            observe_stage t "serve.stage.sim_us" r.Experiment.sim_s;
          Ok (r, warm)
      | Error msg when timeoutish msg -> Error (Proto.Timeout, msg)
      | Error msg -> Error (Proto.Job_failed, msg))

let terminal_response id = function
  | Ok ((r : Experiment.run), warm) ->
      Proto.done_ ?id ~workload:r.Experiment.workload ~config:r.config
        ~cycles:r.cycles ~ret:r.ret ~warm ~run_digest:(run_digest r)
        ~compile_s:r.compile_s ~sim_s:r.sim_s ()
  | Error (reason, message) -> Proto.error ?id ~reason ~message ()

(* deliver the terminal result to every waiter, removing the entry
   from the in-flight table first so a new identical submission starts
   a fresh run rather than attaching to a finished one *)
let complete t (e : entry) result =
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.inflight e.digest with
  | Some e' when e' == e -> Hashtbl.remove t.inflight e.digest
  | _ -> ());
  let waiters = e.waiters in
  e.waiters <- [];
  Mutex.unlock t.mu;
  (match result with
  | Ok (r, _) ->
      Atomic.incr t.stats.completed;
      (* back the reader-thread fast path: the next identical job is
         answered straight from these pre-rendered lines (times zeroed
         — a replayed result spent nothing compiling or simulating) *)
      (match t.fast with
      | Some f when not (e.spec.trace || e.spec.lint) ->
          Mem_cache.store f
            ~key:("job:" ^ e.digest)
            ( Json.to_string (Proto.accepted ~digest:e.digest ~merged:false ()),
              Json.to_string
                (Proto.done_ ~workload:r.Experiment.workload
                   ~config:r.Experiment.config ~cycles:r.Experiment.cycles
                   ~ret:r.Experiment.ret ~warm:true
                   ~run_digest:(run_digest r) ~compile_s:0. ~sim_s:0. ()) )
      | Some _ | None -> ())
  | Error (Proto.Timeout, _) ->
      Atomic.incr t.stats.timeouts;
      Atomic.incr t.stats.failed
  | Error _ -> Atomic.incr t.stats.failed);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, conn) -> send conn (terminal_response id result))
    waiters;
  observe_stage t "serve.stage.encode_us" (Unix.gettimeofday () -. t0)

let worker_loop t wid () =
  let rec next () =
    let job =
      Mutex.protect t.mu (fun () ->
          if Queue.is_empty t.queue then begin
            (* run until dry, then retire: the handle moves to [dead]
               for the next spawner (or [stop]) to join. The decrement
               and the queue check share one critical section with
               [submit]'s push-and-spawn, so a job can never be left
               queued with nobody coming for it. *)
            t.spawned <- t.spawned - 1;
            (match List.assoc_opt wid t.workers with
            | Some h -> t.dead <- h :: t.dead
            | None -> ());
            t.workers <- List.remove_assoc wid t.workers;
            None
          end
          else begin
            Atomic.incr t.active;
            Some (Queue.pop t.queue, t.closing)
          end)
    in
    match job with
    | None -> ()
    | Some (e, closing) ->
        (if closing then
           complete t e
             (Error (Proto.Shutdown_r, "server shutting down"))
         else
           match e.deadline with
           | Some d when Unix.gettimeofday () > d ->
               complete t e
                 (Error
                    ( Proto.Timeout,
                      Printf.sprintf
                        "timed out after %.0f ms waiting in queue"
                        ((Unix.gettimeofday () -. e.enqueued_at) *. 1000.) ))
           | _ ->
               observe_stage t "serve.stage.queue_us"
                 (Unix.gettimeofday () -. e.enqueued_at);
               let emit v =
                 match e.waiters with
                 | (_, conn) :: _ -> send conn v
                 | [] -> ()
               in
               complete t e (execute t e ~emit));
        Atomic.decr t.active;
        next ()
  in
  next ()

(* -- request handling ---------------------------------------------- *)

let stats_response t =
  let pending, spawned =
    Mutex.protect t.mu (fun () -> (Queue.length t.queue, t.spawned))
  in
  let base =
    [
      ("jobs_accepted", Atomic.get t.stats.accepted);
      ("jobs_merged", Atomic.get t.stats.merged);
      ("jobs_completed", Atomic.get t.stats.completed);
      ("jobs_failed", Atomic.get t.stats.failed);
      ("jobs_rejected", Atomic.get t.stats.rejected);
      ("timeouts", Atomic.get t.stats.timeouts);
      ("protocol_errors", Atomic.get t.stats.protocol_errors);
      ("trace_events", Atomic.get t.stats.trace_events);
      ("fast_hits", Atomic.get t.stats.fast_hits);
      ("batches", Atomic.get t.stats.batches);
      ("queue_depth", pending);
      ("workers", t.cfg.jobs);
      ("workers_spawned", spawned);
    ]
  in
  let cache =
    match t.cfg.cache with
    | None -> []
    | Some c ->
        [
          ("cache_hits", Disk_cache.hits c);
          ("cache_misses", Disk_cache.misses c);
          ("cache_errors", Disk_cache.errors c);
          ("cache_evictions", Disk_cache.evictions c);
        ]
  in
  let mem =
    match t.mem with
    | None -> []
    | Some m ->
        [
          ("mem_hits", Mem_cache.hits m);
          ("mem_misses", Mem_cache.misses m);
          ("mem_entries", Mem_cache.entry_count m);
          ("mem_evictions", Mem_cache.evictions m);
        ]
  in
  Proto.stats (base @ cache @ mem)

(* snapshot the server (and cache) counters into a metrics registry
   under the serve.* / cache.* namespaces *)
let publish t (m : Metrics.t) =
  Metrics.incr ~by:(Atomic.get t.stats.accepted) m "serve.jobs_accepted";
  Metrics.incr ~by:(Atomic.get t.stats.merged) m "serve.jobs_merged";
  Metrics.incr ~by:(Atomic.get t.stats.completed) m "serve.jobs_completed";
  Metrics.incr ~by:(Atomic.get t.stats.failed) m "serve.jobs_failed";
  Metrics.incr ~by:(Atomic.get t.stats.rejected) m "serve.jobs_rejected";
  Metrics.incr ~by:(Atomic.get t.stats.timeouts) m "serve.timeouts";
  Metrics.incr
    ~by:(Atomic.get t.stats.protocol_errors)
    m "serve.protocol_errors";
  Metrics.incr ~by:(Atomic.get t.stats.trace_events) m "serve.trace_events";
  Metrics.incr ~by:(Atomic.get t.stats.fast_hits) m "serve.fast_hits";
  Metrics.incr ~by:(Atomic.get t.stats.batches) m "serve.batches";
  Mutex.lock t.stage_mu;
  Metrics.merge ~into:m t.stage_metrics;
  Mutex.unlock t.stage_mu;
  (match t.mem with None -> () | Some mc -> Mem_cache.publish mc m);
  match t.cfg.cache with None -> () | Some c -> Disk_cache.publish c m

(* splice a request id in as the first field of a pre-rendered
   response line (always a non-empty JSON object) *)
let with_id id line =
  match id with
  | None -> line
  | Some id ->
      Printf.sprintf "{\"id\":%s,%s"
        (Json.to_string (Json.Str id))
        (String.sub line 1 (String.length line - 1))

(* [out] receives the synchronous (reader-thread) responses — verdicts
   and fast-path results — as rendered lines.  Single jobs pass
   [send_raw conn]; a batch collects them and flushes once.  Terminal
   responses of queued jobs are sent by the completing worker, as
   before.  [ack] controls whether a fast hit sends its "accepted"
   line before the terminal response: single jobs keep the dfpd-v1
   accepted-then-done sequence byte for byte, while batch frames elide
   the accepted line when the done travels in the same flush — a third
   of the response bytes for pure overhead (batch verdicts for queued
   and merged jobs are still sent; they are the only synchronous
   answer those jobs get). *)
let submit t conn id (spec : Proto.job_spec) ~ack ~(out : string -> unit) =
  let digest = Proto.job_digest spec in
  (* warm fast path: a known result is answered from the mem cache by
     the reader thread itself — no queue, no in-flight table, no
     worker wakeup, no disk. Trace jobs always execute for real. *)
  let fast =
    if spec.trace || spec.lint then None
    else
      Option.bind t.fast (fun f -> Mem_cache.find f ~key:("job:" ^ digest))
  in
  match fast with
  | Some (accepted, done_line) ->
      Atomic.incr t.stats.accepted;
      Atomic.incr t.stats.fast_hits;
      Atomic.incr t.stats.completed;
      if ack then out (with_id id accepted);
      out (with_id id done_line)
  | None -> (
      let now = Unix.gettimeofday () in
      let fresh () =
        {
          digest;
          spec;
          enqueued_at = now;
          deadline =
            Option.map
              (fun ms -> now +. (float_of_int ms /. 1000.))
              spec.timeout_ms;
          waiters = [ (id, conn) ];
        }
      in
      let reap = ref [] in
      let verdict =
        Mutex.protect t.mu (fun () ->
            if t.closing then `Closing
            else if
              (not (spec.trace || spec.lint))
              && Hashtbl.mem t.inflight digest
            then begin
              let e = Hashtbl.find t.inflight digest in
              e.waiters <- e.waiters @ [ (id, conn) ];
              `Merged
            end
            else if Queue.length t.queue >= t.cfg.queue_cap then `Full
            else begin
              let e = fresh () in
              if not (spec.trace || spec.lint) then
                Hashtbl.replace t.inflight digest e;
              Queue.push e t.queue;
              (* grow the pool only when demand outruns the workers
                 still draining; a single-stream client on a -j4
                 server keeps one domain, and the full ceiling only
                 ever exists under real concurrency *)
              let idle = t.spawned - Atomic.get t.active in
              if Queue.length t.queue > idle && t.spawned < t.cfg.jobs
              then begin
                t.spawned <- t.spawned + 1;
                let wid = t.next_wid in
                t.next_wid <- wid + 1;
                reap := t.dead;
                t.dead <- [];
                t.workers <- (wid, Domain.spawn (worker_loop t wid)) :: t.workers
              end;
              `Queued
            end)
      in
      (* retired workers are joined outside the lock *)
      List.iter Domain.join !reap;
      match verdict with
      | `Closing ->
          out
            (Json.to_string
               (Proto.error ?id ~reason:Proto.Shutdown_r
                  ~message:"server shutting down" ()))
      | `Merged ->
          Atomic.incr t.stats.accepted;
          Atomic.incr t.stats.merged;
          out (Json.to_string (Proto.accepted ?id ~digest ~merged:true ()))
      | `Full ->
          Atomic.incr t.stats.rejected;
          out
            (Json.to_string
               (Proto.rejected ?id ~retry_after_ms:t.cfg.retry_after_ms ()))
      | `Queued ->
          Atomic.incr t.stats.accepted;
          out (Json.to_string (Proto.accepted ?id ~digest ~merged:false ())))

let handle_line t conn line =
  let t0 = Unix.gettimeofday () in
  let parsed = Proto.parse_request line in
  observe_stage t "serve.stage.parse_us" (Unix.gettimeofday () -. t0);
  let { Proto.id; req } = parsed in
  match req with
  | Error msg ->
      Atomic.incr t.stats.protocol_errors;
      send conn (Proto.error ?id ~reason:Proto.Protocol ~message:msg ())
  | Ok Proto.Ping -> send conn Proto.pong
  | Ok Proto.Stats -> send conn (stats_response t)
  | Ok Proto.Shutdown ->
      Atomic.set t.shutdown_req true;
      send conn (Json.Obj [ ("type", Json.Str "shutting_down") ])
  | Ok (Proto.Job spec) -> submit t conn id spec ~ack:true ~out:(send_raw conn)
  | Ok (Proto.Batch jobs) ->
      (* one frame in, one flush out: every synchronous response of the
         batch (verdicts, fast hits, per-element protocol errors) is
         serialized into a single write *)
      Atomic.incr t.stats.batches;
      let acc = ref [] in
      let out line = acc := line :: !acc in
      List.iter
        (fun { Proto.id; req } ->
          match req with
          | Error msg ->
              Atomic.incr t.stats.protocol_errors;
              out
                (Json.to_string
                   (Proto.error ?id ~reason:Proto.Protocol ~message:msg ()))
          | Ok (Proto.Job spec) -> submit t conn id spec ~ack:false ~out
          | Ok _ ->
              (* unreachable: the parser only puts jobs in a batch *)
              Atomic.incr t.stats.protocol_errors;
              out
                (Json.to_string
                   (Proto.error ?id ~reason:Proto.Protocol
                      ~message:"batch elements must be jobs" ())))
        jobs;
      send_raw_lines conn (List.rev !acc)

let conn_loop t conn () =
  let ic = Unix.in_channel_of_descr conn.fd in
  let rec go () =
    match input_line ic with
    | line ->
        if String.length line > 0 then handle_line t conn line;
        go ()
    | exception (End_of_file | Sys_error _) -> ()
  in
  go ();
  Mutex.lock conn.send_mu;
  conn.alive <- false;
  Mutex.unlock conn.send_mu;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.mu (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns)

let accept_loop t () =
  let rec go () =
    if not t.closing then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              let conn = { fd; send_mu = Mutex.create (); alive = true } in
              let th = Thread.create (conn_loop t conn) () in
              Mutex.protect t.mu (fun () ->
                  t.conns <- conn :: t.conns;
                  t.conn_threads <- th :: t.conn_threads)
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* -- lifecycle ----------------------------------------------------- *)

let start (cfg : config) : t =
  (* a worker writing to a connection the client already closed must
     get EPIPE, not a process-killing signal *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let t =
    {
      cfg;
      listen_fd;
      queue = Queue.create ();
      mu = Mutex.create ();
      inflight = Hashtbl.create 64;
      mem =
        (if cfg.mem_entries > 0 then
           Some (Mem_cache.create ~max_entries:cfg.mem_entries ())
         else None);
      fast =
        (if cfg.mem_entries > 0 then
           Some (Mem_cache.create ~max_entries:cfg.mem_entries ())
         else None);
      closing = false;
      shutdown_req = Atomic.make false;
      stats =
        {
          accepted = Atomic.make 0;
          merged = Atomic.make 0;
          completed = Atomic.make 0;
          failed = Atomic.make 0;
          rejected = Atomic.make 0;
          timeouts = Atomic.make 0;
          protocol_errors = Atomic.make 0;
          trace_events = Atomic.make 0;
          fast_hits = Atomic.make 0;
          batches = Atomic.make 0;
        };
      stage_metrics = Metrics.create ();
      stage_mu = Mutex.create ();
      conns = [];
      workers = [];
      dead = [];
      spawned = 0;
      next_wid = 0;
      active = Atomic.make 0;
      accept_thread = None;
      conn_threads = [];
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let shutdown_requested t = Atomic.get t.shutdown_req

(* block until some client asked for shutdown (polled: the flag is set
   from connection threads and signal handlers) *)
let wait ?(poll_s = 0.05) t =
  while not (Atomic.get t.shutdown_req) do
    Thread.delay poll_s
  done

let request_shutdown t = Atomic.set t.shutdown_req true

let stop t =
  let already =
    Mutex.protect t.mu (fun () ->
        let was = t.closing in
        t.closing <- true;
        was)
  in
  if not already then begin
    (* live workers drain the queue (answering "shutting down" to
       whatever was still pending) and retire; [closing] stops further
       submits, so this snapshot is complete. Join the already-retired
       handles too — Domain.join is idempotent, so a worker that
       retires between the snapshot and the join is covered either
       way. *)
    let live, retired =
      Mutex.protect t.mu (fun () ->
          let l = List.map snd t.workers and d = t.dead in
          t.dead <- [];
          (l, d))
    in
    List.iter Domain.join live;
    List.iter Domain.join retired;
    Mutex.protect t.mu (fun () ->
        t.workers <- [];
        List.iter Domain.join t.dead;
        t.dead <- []);
    (* every queued entry had a worker coming (push and spawn share a
       critical section), so the queue is dry here; drain defensively
       in case that invariant ever breaks rather than hang clients *)
    let leftover =
      Mutex.protect t.mu (fun () ->
          let l = List.of_seq (Queue.to_seq t.queue) in
          Queue.clear t.queue;
          l)
    in
    List.iter
      (fun e -> complete t e (Error (Proto.Shutdown_r, "server shutting down")))
      leftover;
    (match t.accept_thread with
    | Some th ->
        Thread.join th;
        t.accept_thread <- None
    | None -> ());
    (* wake connection readers blocked in input_line *)
    let conns, threads =
      Mutex.protect t.mu (fun () -> (t.conns, t.conn_threads))
    in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join threads;
    Mutex.protect t.mu (fun () -> t.conn_threads <- []);
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* every result accepted before shutdown must be on disk before
       the process exits *)
    (match t.cfg.cache with Some c -> Disk_cache.drain c | None -> ());
    if Sys.file_exists t.cfg.socket_path then
      try Sys.remove t.cfg.socket_path with Sys_error _ -> ()
  end
