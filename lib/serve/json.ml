(* A tiny JSON value type with a strict RFC 8259 parser and a one-line
   printer — the wire format of the serve protocol. The repo
   deliberately has no JSON dependency; lib/obs only lints and
   bin/bench_compare only reads, so the serve layer owns the one
   parser that builds values.

   Numbers are floats (doubles): fine for cycles/latencies, NOT for
   arbitrary int64 — the protocol encodes 64-bit return values as
   decimal strings. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let hex_val c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'u' ->
              advance ();
              let code = ref 0 in
              for _ = 1 to 4 do
                match peek () with
                | Some c ->
                    code := (!code * 16) + hex_val c;
                    advance ()
                | None -> fail "bad \\u escape"
              done;
              (* encode the code point as UTF-8; surrogate pairs are
                 passed through as two 3-byte sequences (the protocol
                 never emits them) *)
              let c = !code in
              if c < 0x80 then Buffer.add_char b (Char.chr c)
              else if c < 0x800 then begin
                Buffer.add_char b (Char.chr (0xc0 lor (c lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (c land 0x3f)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xe0 lor (c lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
                Buffer.add_char b (Char.chr (0x80 lor (c land 0x3f)))
              end
          | _ -> fail "bad escape");
          go ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c -> is_num_char c | None -> false do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value depth =
    if depth > 64 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
    | None -> fail "unexpected end of input"
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error e -> Error e

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* one line, no newlines anywhere: a value is always exactly one
   protocol frame *)
let to_string (v : t) : string =
  let b = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.0f" f)
        else Buffer.add_string b (Printf.sprintf "%.12g" f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            go x)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* -- accessors ----------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let str = function Str s -> Some s | _ -> None

let num = function Num f -> Some f | _ -> None

let bool_ = function Bool b -> Some b | _ -> None

let str_member k v = Option.bind (member k v) str

let num_member k v = Option.bind (member k v) num

let int_member k v = Option.map int_of_float (num_member k v)

let bool_member k v = Option.bind (member k v) bool_
