(** RFC 4648 base64 (standard alphabet, padded) — binary payload
    transport inside the newline-delimited JSON wire protocol. *)

val encode : string -> string

val decode : string -> (string, string) result
(** Strict: rejects bad lengths, characters outside the alphabet and
    misplaced padding. *)
