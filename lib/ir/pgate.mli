(** The symbolic gating analysis over guarded hyperblock TAC: per-site
    fire regions and three-valued values as BDDs, shared between the
    polynomial invariant checker (lib/check) and the Psi-SSA analysis
    layer ({!Psi_ssa} and the ineffectuality optimization built on it).
    The analysis assumes the block passed the structural pre-checks
    (no phis, null-store indices in range); callers that cannot assume
    that must check first. *)

type horigin = HTemp of Temp.t | HImm of int64

val origin : int list Temp.Map.t -> Hblock.hinstr list -> Tac.operand -> horigin
(** Operand identity up to single-def mov chains, for compare-variable
    sharing. *)

type t = {
  m : Bdd.t;
  body : Hblock.hinstr array;
  sites : int list Temp.Map.t;  (** def sites per temp, in body order *)
  store_positions : int array;  (** body position of the k-th store *)
  e : Bdd.node array;  (** fire region per site *)
  svt : Bdd.node array;  (** site value true (given the site fired) *)
  svu : Bdd.node array;  (** site value underivable *)
  site_var : (int * bool) option array;
  livein_var : (Temp.t, int) Hashtbl.t;
  names : string array;  (** display name per enumeration variable *)
  nvars : int;  (** enumeration variable count *)
}

val analyze : ?budget:int -> Hblock.t -> (t, string) result
(** Run the fire/value fixpoint. [Error msg] means the analysis is
    inconclusive (BDD budget exceeded, non-converging fixpoint) — treat
    as "skip", never as a verdict. *)

val avail : t -> Temp.t -> Bdd.node
(** Region where the temp carries a token ([True] for live-ins). *)

val temp_val : t -> Temp.t -> Bdd.node * Bdd.node
(** (value-true, value-underivable) regions of a temp. *)

val op_val : t -> Tac.operand -> Bdd.node * Bdd.node
val op_avail : t -> Tac.operand -> Bdd.node
val is_false_op : t -> Tac.operand -> Bdd.node

val guard_matched : t -> Hblock.guard option -> Bdd.node
(** Region where the guard matches (a delivered predicate of the right
    polarity); [True] for unguarded. *)

val fire_unguarded : t -> int -> Bdd.node
(** The site's fire region recomputed without its explicit guard: data
    availability alone.  Equal to [e.(i)] exactly when the guard is an
    ineffectual delivery (the guard-drop legality test). *)

val witness : t -> Bdd.node -> string
(** One satisfying assignment rendered enumerator-style (" on path
    [...]"), or "" when unsatisfiable. *)
