(* A small hash-consed BDD package: the predicate lattice underneath the
   polynomial-time block checker (lib/check).

   Formulas over the block's enumeration variables (see [Gate]) are kept
   as reduced ordered binary decision diagrams.  Conjunction,
   disjunction and negation are memoized per manager, so the checker's
   gating analysis costs a polynomial number of node operations instead
   of the 2^k path walk of the fuzz validator's enumerator.  Managers
   are per-block (created fresh for every analysis), which keeps the
   package safe to use from multiple domains at once: no global state.

   A node budget guards against pathological blow-ups; exceeding it
   raises [Budget], which callers must treat as "analysis inconclusive"
   (skip, never flag). *)

type node =
  | False
  | True
  | Node of { uid : int; var : int; lo : node; hi : node }

type t = {
  unique : (int * int * int, node) Hashtbl.t;
  and_cache : (int * int, node) Hashtbl.t;
  or_cache : (int * int, node) Hashtbl.t;
  not_cache : (int, node) Hashtbl.t;
  budget : int;
  mutable next_uid : int;
}

exception Budget

let default_budget = 200_000

let create ?(budget = default_budget) () =
  {
    unique = Hashtbl.create 256;
    and_cache = Hashtbl.create 256;
    or_cache = Hashtbl.create 256;
    not_cache = Hashtbl.create 64;
    budget;
    next_uid = 2;
  }

let uid = function False -> 0 | True -> 1 | Node { uid; _ } -> uid

(* structural sharing makes equality a uid comparison *)
let equal a b = uid a = uid b

let is_false n = equal n False
let is_true n = equal n True

let mk m var lo hi =
  if equal lo hi then lo
  else
    let key = (var, uid lo, uid hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        if m.next_uid - 2 >= m.budget then raise Budget;
        let n = Node { uid = m.next_uid; var; lo; hi } in
        m.next_uid <- m.next_uid + 1;
        Hashtbl.replace m.unique key n;
        n

let var m v = mk m v False True
let nvar m v = mk m v True False

let top_var = function
  | False | True -> max_int
  | Node { var; _ } -> var

let branches v = function
  | (False | True) as n -> (n, n)
  | Node { var; lo; hi; _ } as n -> if var = v then (lo, hi) else (n, n)

let rec conj m a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | _ when equal a b -> a
  | _ -> (
      let key = (min (uid a) (uid b), max (uid a) (uid b)) in
      match Hashtbl.find_opt m.and_cache key with
      | Some n -> n
      | None ->
          let v = min (top_var a) (top_var b) in
          let alo, ahi = branches v a and blo, bhi = branches v b in
          let n = mk m v (conj m alo blo) (conj m ahi bhi) in
          Hashtbl.replace m.and_cache key n;
          n)

let rec disj m a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, x | x, False -> x
  | _ when equal a b -> a
  | _ -> (
      let key = (min (uid a) (uid b), max (uid a) (uid b)) in
      match Hashtbl.find_opt m.or_cache key with
      | Some n -> n
      | None ->
          let v = min (top_var a) (top_var b) in
          let alo, ahi = branches v a and blo, bhi = branches v b in
          let n = mk m v (disj m alo blo) (disj m ahi bhi) in
          Hashtbl.replace m.or_cache key n;
          n)

let rec neg m a =
  match a with
  | False -> True
  | True -> False
  | Node { uid = u; var; lo; hi } -> (
      match Hashtbl.find_opt m.not_cache u with
      | Some n -> n
      | None ->
          let n = mk m var (neg m lo) (neg m hi) in
          Hashtbl.replace m.not_cache u n;
          n)

let conj_list m = List.fold_left (conj m) True
let disj_list m = List.fold_left (disj m) False

(* one satisfying assignment, as (variable, value) pairs for the
   variables actually tested on the chosen path; callers default the
   rest to false.  Used to print an enumerator-style witness path. *)
let any_sat n =
  let rec go acc = function
    | False -> None
    | True -> Some (List.rev acc)
    | Node { var; lo; hi; _ } -> (
        match go ((var, false) :: acc) lo with
        | Some _ as r -> r
        | None -> go ((var, true) :: acc) hi)
  in
  go [] n

let sat n = not (is_false n)
