(* The symbolic gating analysis over guarded hyperblock TAC: per-site
   fire regions and three-valued values as BDDs over the block's
   enumeration variables.

   This used to live inside lib/check/hblock_check; it is extracted here
   so the polynomial invariant checker and the Psi-SSA analysis layer
   ([Psi_ssa], and the ineffectuality pass built on it) share one model.
   Sharing is load-bearing exactly like [Gate] is for encoded blocks:
   "the optimizer only deletes what the checker's model proves dead" is
   a statement about one abstraction evaluated twice, not two
   abstractions that happen to agree.

   The model mirrors what codegen will emit:

     avail(t)  — assignments on which temp [t] carries a token: always,
                 for live-in temps (a register read fires
                 unconditionally); otherwise the union of its def
                 sites' fire regions.  There is no fallthrough from a
                 def site to a live-in read — codegen emits reads only
                 for temps with no in-block producer.
     E(site)   — a site fires when its guard matches and its data
                 operands are available (sand short-circuits on a false
                 left operand, as the sand instruction does).
     value     — three-valued (true/false/underivable) per def site,
                 with compare defs sharing one variable exactly like
                 encoded-block tests (complementary integer compares
                 share it negated; float compares never merge). *)

module Hb = Hblock
module O = Edge_isa.Opcode

(* operand identity for compare-variable sharing: chase single-def mov
   chains so [t2 = mov t1; tlt t2, n] shares with [tlt t1, n] *)
type horigin = HTemp of Temp.t | HImm of int64

let origin sites body op =
  let rec go op seen =
    match op with
    | Tac.C c -> HImm c
    | Tac.T t -> (
        if Temp.Set.mem t seen then HTemp t
        else
          match Temp.Map.find_opt t sites with
          | Some [ i ] -> (
              match (List.nth body i).Hb.hop with
              | Hb.Op (Tac.Un { op = O.Mov; a; _ }) ->
                  go a (Temp.Set.add t seen)
              | _ -> HTemp t)
          | _ -> HTemp t)
  in
  go op Temp.Set.empty

type t = {
  m : Bdd.t;
  body : Hb.hinstr array;
  sites : int list Temp.Map.t;  (** def sites per temp, in body order *)
  store_positions : int array;  (** body position of the k-th store *)
  e : Bdd.node array;  (** fire region per site *)
  svt : Bdd.node array;  (** site value true (given the site fired) *)
  svu : Bdd.node array;  (** site value underivable *)
  site_var : (int * bool) option array;  (** enumeration var per def site *)
  livein_var : (Temp.t, int) Hashtbl.t;
  names : string array;  (** display name per enumeration variable *)
  nvars : int;
}

let avail g t =
  match Temp.Map.find_opt t g.sites with
  | None -> Bdd.True
  | Some ss -> Bdd.disj_list g.m (List.map (fun i -> g.e.(i)) ss)

let temp_val g t =
  match Temp.Map.find_opt t g.sites with
  | None -> (
      match Hashtbl.find_opt g.livein_var t with
      | Some pos -> (Bdd.var g.m pos, Bdd.False)
      | None -> (Bdd.False, Bdd.True))
  | Some ss ->
      let vt =
        Bdd.disj_list g.m
          (List.map (fun i -> Bdd.conj g.m g.e.(i) g.svt.(i)) ss)
      in
      let vu =
        Bdd.disj_list g.m
          (List.map (fun i -> Bdd.conj g.m g.e.(i) g.svu.(i)) ss)
      in
      (vt, vu)

let op_val g = function
  | Tac.C c ->
      ((if Int64.logand c 1L <> 0L then Bdd.True else Bdd.False), Bdd.False)
  | Tac.T t -> temp_val g t

let op_avail g = function Tac.C _ -> Bdd.True | Tac.T t -> avail g t

let is_false_op g op =
  let vt, vu = op_val g op in
  Bdd.conj g.m (Bdd.neg g.m vt) (Bdd.neg g.m vu)

let guard_matched g = function
  | None -> Bdd.True
  | Some gd ->
      Bdd.disj_list g.m
        (List.map
           (fun p ->
             let vt, vu = temp_val g p in
             let pol =
               if gd.Hb.gpol then Bdd.conj g.m vt (Bdd.neg g.m vu)
               else Bdd.conj g.m (Bdd.neg g.m vt) (Bdd.neg g.m vu)
             in
             Bdd.conj g.m (avail g p) pol)
           gd.Hb.gpreds)

(* the site's fire region as the model would recompute it without its
   explicit guard: just data availability (the guard-drop legality
   test: if this equals e(site), the guard is an ineffectual delivery) *)
let fire_unguarded g i =
  let hi = g.body.(i) in
  match hi.Hb.hop with
  | Hb.Sand { a; b; _ } ->
      Bdd.conj g.m (avail g a)
        (Bdd.disj g.m (is_false_op g (Tac.T a)) (avail g b))
  | _ ->
      Bdd.conj_list g.m
        (List.map (fun t -> op_avail g (Tac.T t)) (Hb.data_uses hi))

(* a satisfying assignment rendered enumerator-style, for diagnostics *)
let witness g cond =
  match Bdd.any_sat cond with
  | None | Some [] -> ""
  | Some pairs ->
      Printf.sprintf " on path [%s]"
        (String.concat " "
           (List.map
              (fun (v, value) ->
                Printf.sprintf "%s=%d" g.names.(v) (if value then 1 else 0))
              pairs))

let analyze ?budget (h : Hb.t) : (t, string) result =
  let body = h.Hb.body in
  let barr = Array.of_list body in
  let len = Array.length barr in
  let sites = Hb.def_sites h in
  let store_positions =
    let pos = ref [] in
    List.iteri
      (fun i hi ->
        match hi.Hb.hop with
        | Hb.Op (Tac.Store _) -> pos := i :: !pos
        | _ -> ())
      body;
    Array.of_list (List.rev !pos)
  in
  (* ---- relevance: temps whose boolean value feeds guard matching ---- *)
  let relevant = ref Temp.Set.empty in
  let frontier = ref [] in
  let mark t =
    if not (Temp.Set.mem t !relevant) then begin
      relevant := Temp.Set.add t !relevant;
      frontier := t :: !frontier
    end
  in
  List.iter
    (fun hi ->
      List.iter mark (Hb.guard_uses hi.Hb.guard);
      match hi.Hb.hop with
      | Hb.Sand { a; b; _ } ->
          mark a;
          mark b
      | _ -> ())
    body;
  List.iter (fun ex -> List.iter mark (Hb.guard_uses ex.Hb.eguard)) h.Hb.hexits;
  let mark_op = function Tac.T t -> mark t | Tac.C _ -> () in
  while !frontier <> [] do
    let work = !frontier in
    frontier := [];
    List.iter
      (fun t ->
        match Temp.Map.find_opt t sites with
        | None -> ()
        | Some ss ->
            List.iter
              (fun i ->
                match barr.(i).Hb.hop with
                | Hb.Op (Tac.Un { op = O.Mov | O.Not | O.Neg; a; _ }) ->
                    mark_op a
                | Hb.Sand { a; b; _ } ->
                    mark a;
                    mark b
                | _ -> ())
              ss)
      work
  done;
  let relevant = !relevant in
  (* ---- variables ---- *)
  let m = Bdd.create ?budget () in
  let names = ref [] in
  let count = ref 0 in
  let alloc name =
    let pos = !count in
    incr count;
    names := name :: !names;
    pos
  in
  let key_tbl = Hashtbl.create 16 in
  let site_var = Array.make len None in
  let livein_var = Hashtbl.create 16 in
  let cmp_key (c : Tac.instr) =
    match c with
    | Tac.Cmp { cond; fp; a; b; _ } ->
        let oa = origin sites body a and ob = origin sites body b in
        if fp then Some (`F (cond, oa, ob), false)
        else
          let cond, oa, ob =
            if compare oa ob > 0 then (Gate.swap_cond cond, ob, oa)
            else (cond, oa, ob)
          in
          let cond, neg = Gate.normalize_cond cond in
          Some (`I (cond, oa, ob), neg)
    | _ -> None
  in
  Array.iteri
    (fun i hi ->
      match Hb.hop_def hi.Hb.hop with
      | Some d when Temp.Set.mem d relevant -> (
          match hi.Hb.hop with
          | Hb.Op (Tac.Un { op = O.Mov | O.Not | O.Neg; _ }) | Hb.Sand _ ->
              () (* derived *)
          | Hb.Op (Tac.Cmp _ as c) -> (
              let name = Format.asprintf "%a@%d" Temp.pp d i in
              match cmp_key c with
              | Some (key, neg) ->
                  let pos =
                    match Hashtbl.find_opt key_tbl key with
                    | Some pos -> pos
                    | None ->
                        let pos = alloc name in
                        Hashtbl.replace key_tbl key pos;
                        pos
                  in
                  site_var.(i) <- Some (pos, neg)
              | None -> site_var.(i) <- Some (alloc name, false))
          | _ ->
              let name = Format.asprintf "%a@%d" Temp.pp d i in
              site_var.(i) <- Some (alloc name, false))
      | _ -> ())
    barr;
  Temp.Set.iter
    (fun t ->
      if not (Temp.Map.mem t sites) then
        Hashtbl.replace livein_var t (alloc (Format.asprintf "%a" Temp.pp t)))
    relevant;
  let names_arr = Array.of_list (List.rev !names) in
  (* ---- fixpoint over site fire regions and values ---- *)
  let g =
    {
      m;
      body = barr;
      sites;
      store_positions;
      e = Array.make len Bdd.False;
      svt = Array.make len Bdd.False;
      svu = Array.make len Bdd.False;
      site_var;
      livein_var;
      names = names_arr;
      nvars = !count;
    }
  in
  let step i (hi : Hb.hinstr) =
    let gm = guard_matched g hi.Hb.guard in
    g.e.(i) <- Bdd.conj m gm (fire_unguarded g i);
    match site_var.(i) with
    | Some (pos, neg) ->
        g.svt.(i) <- (if neg then Bdd.nvar m pos else Bdd.var m pos);
        g.svu.(i) <- Bdd.False
    | None -> (
        match hi.Hb.hop with
        | Hb.Op (Tac.Un { op = O.Mov; a; _ }) ->
            let vt, vu = op_val g a in
            g.svt.(i) <- vt;
            g.svu.(i) <- vu
        | Hb.Op (Tac.Un { op = O.Not; a; _ }) ->
            let vt, vu = op_val g a in
            g.svt.(i) <-
              Bdd.conj m (op_avail g a)
                (Bdd.conj m (Bdd.neg m vt) (Bdd.neg m vu));
            g.svu.(i) <- vu
        | Hb.Op (Tac.Un { op = O.Neg; a; _ }) ->
            let vt, vu = op_val g a in
            g.svt.(i) <- vt;
            g.svu.(i) <- vu
        | Hb.Sand { a; b; _ } ->
            let vta, vua = op_val g (Tac.T a) in
            let vtb, vub = op_val g (Tac.T b) in
            let ta = Bdd.conj m vta (Bdd.neg m vua) in
            g.svt.(i) <- Bdd.conj m ta vtb;
            g.svu.(i) <- Bdd.disj m vua (Bdd.conj m ta vub)
        | _ ->
            (* non-relevant def: value never queried by a guard *)
            g.svu.(i) <- Bdd.True)
  in
  let snapshot () =
    Array.append (Array.map Bdd.uid g.e)
      (Array.append (Array.map Bdd.uid g.svt) (Array.map Bdd.uid g.svu))
  in
  let max_rounds = (2 * len) + 16 in
  let rec iterate round prev =
    if round > max_rounds then Error "fixpoint did not converge"
    else begin
      Array.iteri step barr;
      let cur = snapshot () in
      if cur = prev then Ok () else iterate (round + 1) cur
    end
  in
  match iterate 0 (snapshot ()) with
  | exception Bdd.Budget -> Error "BDD node budget exceeded"
  | Error msg -> Error msg
  | Ok () -> Ok g
