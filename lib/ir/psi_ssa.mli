(** Psi-SSA over the guarded hyperblock IR (de Ferrière): an explicit
    representation of pred-OR merges.  Three layers: a non-mutating
    {e view} (predicate-aware def-use chains and psi argument lists), a
    {e construct/destruct} renaming pair whose composition is the
    structural identity, and the {e ineffectuality analysis} — a
    backward fixpoint over the shared gating model ({!Pgate}) proving
    which def sites can never contribute to a store, a block output, or
    an exit decision on any path. *)

(** {1 The Psi-SSA view} *)

type use =
  | Data of int  (** data operand of body site *)
  | Guard of int  (** guard predicate of body site *)
  | Exit_guard of int  (** predicate of the i-th exit *)
  | Out of Temp.t  (** producer of canonical block output *)

type psi_arg = {
  asite : int;  (** body position of the argument's def or null *)
  aguard : Hblock.guard option;  (** predicate under which it delivers *)
  anull : bool;  (** explicit null delivery (Null_write) *)
}

type view = {
  vbody : Hblock.hinstr array;
  vsites : int list Temp.Map.t;
  vuses : use list Temp.Map.t;
  vpreds : Temp.Set.t;  (** temps consumed by any guard *)
  vpsis : psi_arg list Temp.Map.t;
      (** psi-node (argument list, body order) per temp with more than
          one delivery, explicit nulls included *)
}

val view : Hblock.t -> view
val uses_of : view -> Temp.t -> use list
val psi : view -> Temp.t -> psi_arg list option

val promotable_chain : view -> Temp.t -> int list option
(** Body positions whose guards must be removed to promote the upward
    data-dependence chain rooted at the temp to unconditional
    execution, or [None] if promotion is illegal (a psi merge, a
    possible fault, or a predicate definition on the chain). *)

(** {1 Construct / destruct} *)

type versioned = {
  vh : Hblock.t;
  renamed : (int * Temp.t) list;  (** body position, original dst *)
  psis : (Temp.t * psi_arg list) list;
}

val construct : gen:Temp.Gen.t -> Hblock.t -> versioned
(** Rename every def site of a psi-merged temp to a fresh version
    (uses keep the original name: under pred-OR semantics they read the
    psi result), returning the materialized psi-nodes. *)

val destruct : versioned -> unit
(** Exact inverse of {!construct} on an unmodified block. *)

val roundtrip : gen:Temp.Gen.t -> Hblock.t -> bool
(** [construct] then [destruct]; true iff the block is structurally
    identical afterwards. *)

(** {1 Ineffectuality and predicate-aware liveness} *)

type ineff = {
  pg : Pgate.t;
  eff : Bdd.node array;
      (** effectual region per body site: assignments on which the
          site's firing can still contribute to an obligation.
          Invariant: [eff(i)] implies [e(i)]. *)
  dead : int list;  (** sites with [eff = False], body order *)
  droppable : int list;
      (** surviving guarded sites whose guard is an ineffectual
          predicate delivery ([fire_unguarded = e]): the guard can be
          dropped without changing the fire region *)
}

val ineffectuality : ?budget:int -> Hblock.t -> (ineff, string) result
(** [Error msg] means the analysis is inconclusive (BDD budget, fixpoint
    divergence) — treat as "skip", never as a verdict. *)

val live_region : ineff -> Hblock.t -> Temp.t -> Bdd.node
(** Predicate-aware liveness: the region on which a token arriving on
    the temp can still contribute to an obligation ([True] when it
    feeds a surviving guard, an exit, or a block output). *)
