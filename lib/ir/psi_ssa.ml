(* Psi-SSA over the guarded hyperblock IR (de Ferrière).

   A hyperblock after if-conversion is already in a pred-OR dataflow
   form: a temp may have several guarded definitions, and a consumer
   receives whichever one fires.  Psi-SSA makes that merge explicit:
   every multi-definition temp [x] becomes a psi-node

       x = psi(v1 [g1], v2 [g2], ..., nullw [gk], ...)

   whose arguments are the renamed versions of the original defs, each
   carrying the predicate under which it delivers.  Three layers live
   here:

   1. the *view* — predicate-aware def-use chains (data / guard /
      exit-guard / block-output uses) and the psi argument lists,
      computed without mutating the block.  Optimization passes
      (opt_path) consume this instead of hand-rolled bookkeeping.
   2. the *construct/destruct* pair — materialize the versioned form
      (rename each def site of a multi-def temp to a fresh version,
      recording the psi-nodes), and its exact inverse.  Uses are not
      renamed: under pred-OR semantics every use reads the psi result,
      which keeps the original name.  construct followed by destruct
      is the structural identity, which is exactly the invariant the
      checker round-trip property enforces.
   3. the *ineffectuality analysis* — on top of the shared gating model
      ([Pgate]), a backward fixpoint computing per def site the region
      [eff(i)] of enumeration assignments on which the site's firing
      can still contribute to a block obligation (a store, an explicit
      null, a block output, or an exit decision).  A site with
      [eff = False] is provably ineffectual: deleting it cannot change
      any obligation on any path.  A guarded site whose unguarded fire
      region already equals its guarded one carries an ineffectual
      predicate delivery: the guard can be dropped (the BDD-implication
      generalization of opt_fanout's syntactic rule).

   Effectuality rules (all intersected with the site's fire region,
   so eff(i) <= e(i) always):

     - obligation sites (Store, Null_write, Null_store), defs of block
       output producers and defs of exit-guard predicates are roots:
       eff(i) = e(i).  Exit feeders are fully live because the branch
       partition must be preserved bit-for-bit.
     - a def consumed as a *guard* (or as a sand operand — sand both
       short-circuits on and stores its operands' values) by a consumer
       that is effectual somewhere is fully live: eff(i) = e(i).
       Guards read values, and a predicate delivery changes whether the
       consumer fires at all, so partial deadness does not transfer.
     - a def consumed as *data* by site j contributes e(i) /\ eff(j):
       a token that only ever feeds ineffectual firings is itself
       ineffectual.

   Deletion soundness (why removing all eff=False sites at once is
   safe) rests on eff <= e and the rules above: for any surviving site
   j and deleted feeder i, either i fed j's guard/sand (then j
   surviving forced eff(i) = e(i), so i was only deleted if e(i) =
   False — it never fired) or i fed j data with e(i) /\ eff(j) =
   False — every firing of j that i's token enabled was ineffectual,
   and obligation sites (eff = e) never were.  The one hazard is
   *emptying* a def-site list: [Pgate] models a temp with no in-block
   producer as an always-available live-in (codegen emits a register
   read), so deleting the last def of a temp still named by a
   surviving guard, an exit guard, or an hout would change the model.
   The consumer policy in opt_ineff keeps one (never-firing) def in
   that case. *)

module Hb = Hblock
module O = Edge_isa.Opcode

(* ---------------- the view: predicate-aware def-use chains -------- *)

type use =
  | Data of int  (** data operand of body site *)
  | Guard of int  (** guard predicate of body site *)
  | Exit_guard of int  (** predicate of the i-th exit *)
  | Out of Temp.t  (** producer of canonical block output *)

type psi_arg = {
  asite : int;  (** body position of the argument's def or null *)
  aguard : Hb.guard option;  (** predicate under which it delivers *)
  anull : bool;  (** explicit null delivery (Null_write) *)
}

type view = {
  vbody : Hb.hinstr array;
  vsites : int list Temp.Map.t;  (** def sites per temp, body order *)
  vuses : use list Temp.Map.t;  (** predicate-aware use chains *)
  vpreds : Temp.Set.t;  (** temps consumed by any guard *)
  vpsis : psi_arg list Temp.Map.t;  (** psi-node per merged temp *)
}

let view (h : Hb.t) : view =
  let vbody = Array.of_list h.Hb.body in
  let vsites = Hb.def_sites h in
  let uses = ref Temp.Map.empty in
  let add_use t u =
    uses :=
      Temp.Map.update t
        (fun l -> Some (u :: Option.value ~default:[] l))
        !uses
  in
  Array.iteri
    (fun i hi ->
      List.iter (fun t -> add_use t (Data i)) (Hb.data_uses hi);
      List.iter (fun t -> add_use t (Guard i)) (Hb.guard_uses hi.Hb.guard))
    vbody;
  List.iteri
    (fun i ex ->
      List.iter (fun t -> add_use t (Exit_guard i)) (Hb.guard_uses ex.Hb.eguard))
    h.Hb.hexits;
  List.iter (fun (x, prod) -> add_use prod (Out x)) h.Hb.houts;
  let vpreds =
    let s = ref Temp.Set.empty in
    let add g = List.iter (fun p -> s := Temp.Set.add p !s) (Hb.guard_uses g) in
    Array.iter (fun hi -> add hi.Hb.guard) vbody;
    List.iter (fun e -> add e.Hb.eguard) h.Hb.hexits;
    !s
  in
  (* psi-nodes: every temp delivered by more than one site (guarded
     versions and explicit nulls together) *)
  let deliveries = ref Temp.Map.empty in
  let add_delivery t a =
    deliveries :=
      Temp.Map.update t
        (fun l -> Some (a :: Option.value ~default:[] l))
        !deliveries
  in
  Array.iteri
    (fun i hi ->
      (match Hb.hop_def hi.Hb.hop with
      | Some d ->
          add_delivery d { asite = i; aguard = hi.Hb.guard; anull = false }
      | None -> ());
      match hi.Hb.hop with
      | Hb.Null_write t ->
          add_delivery t { asite = i; aguard = hi.Hb.guard; anull = true }
      | _ -> ())
    vbody;
  let vpsis =
    Temp.Map.filter_map
      (fun _ args ->
        match args with
        | [] | [ _ ] -> None
        | args ->
            Some (List.sort (fun a b -> compare a.asite b.asite) args))
      !deliveries
  in
  {
    vbody;
    vsites;
    vuses = Temp.Map.map List.rev !uses;
    vpreds;
    vpsis;
  }

let uses_of v t = Option.value ~default:[] (Temp.Map.find_opt t v.vuses)
let psi v t = Temp.Map.find_opt t v.vpsis

(* Can the upward data dependence chain rooted at [v] be promoted to
   unconditional execution?  Walk single-def, exception-free
   instructions; a chain root is a live-in or constant.  Returns the
   body positions whose guards must be removed, or None if promotion is
   illegal (a join, a possible fault, or a predicate definition on the
   chain). *)
let promotable_chain (vw : view) v =
  let visited = ref Temp.Set.empty in
  let acc = ref [] in
  let rec walk v =
    if Temp.Set.mem v !visited then true
    else begin
      visited := Temp.Set.add v !visited;
      match Temp.Map.find_opt v vw.vsites with
      | None | Some [] -> true (* live-in or constant: always available *)
      | Some [ i ] -> (
          match vw.vbody.(i).Hb.hop with
          | Hb.Null_write _ | Hb.Null_store _ | Hb.Sand _ -> false
          | Hb.Op instr ->
              (not (Tac.can_raise instr))
              && (not (Temp.Set.mem v vw.vpreds))
              && begin
                   acc := i :: !acc;
                   List.for_all walk (Tac.uses instr)
                 end)
      | Some _ -> false (* psi merge: carries path-dependent values *)
    end
  in
  if walk v then Some !acc else None

(* ---------------- construct / destruct --------------------------- *)

type versioned = {
  vh : Hb.t;
  renamed : (int * Temp.t) list;  (** body position, original dst *)
  psis : (Temp.t * psi_arg list) list;
      (** materialized psi-nodes: original temp = psi(versions) *)
}

let set_dst dst hi =
  match hi.Hb.hop with
  | Hb.Op instr -> { hi with Hb.hop = Hb.Op (Tac.with_dst dst instr) }
  | Hb.Sand s -> { hi with Hb.hop = Hb.Sand { s with dst } }
  | Hb.Null_write _ | Hb.Null_store _ -> hi

let construct ~gen (h : Hb.t) : versioned =
  let vw = view h in
  let renamed = ref [] in
  let body' =
    List.mapi
      (fun i hi ->
        match Hb.hop_def hi.Hb.hop with
        | Some d when Temp.Map.mem d vw.vpsis ->
            let version = Temp.Gen.fresh gen in
            renamed := (i, d) :: !renamed;
            set_dst version hi
        | _ -> hi)
      h.Hb.body
  in
  h.Hb.body <- body';
  { vh = h; renamed = List.rev !renamed; psis = Temp.Map.bindings vw.vpsis }

let destruct (v : versioned) : unit =
  let body = Array.of_list v.vh.Hb.body in
  List.iter (fun (i, orig) -> body.(i) <- set_dst orig body.(i)) v.renamed;
  v.vh.Hb.body <- Array.to_list body

(* construct then destruct; true iff the block is structurally
   identical afterwards (the psi round-trip invariant) *)
let roundtrip ~gen (h : Hb.t) : bool =
  let snapshot = (h.Hb.body, h.Hb.hexits, h.Hb.houts) in
  let v = construct ~gen h in
  destruct v;
  snapshot = (h.Hb.body, h.Hb.hexits, h.Hb.houts)

(* ---------------- ineffectuality --------------------------------- *)

type ineff = {
  pg : Pgate.t;
  eff : Bdd.node array;  (** effectual region per body site *)
  dead : int list;  (** sites with eff = False, body order *)
  droppable : int list;
      (** surviving guarded sites whose guard is an ineffectual
          delivery: fire_unguarded = e *)
}

let ineffectuality ?budget (h : Hb.t) : (ineff, string) result =
  match Pgate.analyze ?budget h with
  | Error msg -> Error msg
  | Ok g -> (
      let body = g.Pgate.body in
      let len = Array.length body in
      let m = g.Pgate.m in
      try
        (* consumer indices per temp: full-liveness consumers (guards
           and sand operands — value- and fire-relevant) vs plain data
           consumers *)
        let full_cons = Hashtbl.create 16 and data_cons = Hashtbl.create 16 in
        let add tbl t j =
          Hashtbl.replace tbl t (j :: Option.value ~default:[] (Hashtbl.find_opt tbl t))
        in
        Array.iteri
          (fun j hi ->
            List.iter (fun t -> add full_cons t j) (Hb.guard_uses hi.Hb.guard);
            match hi.Hb.hop with
            | Hb.Sand { a; b; _ } ->
                add full_cons a j;
                add full_cons b j
            | _ -> List.iter (fun t -> add data_cons t j) (Hb.data_uses hi))
          body;
        let out_producers =
          List.fold_left
            (fun s (_, prod) -> Temp.Set.add prod s)
            Temp.Set.empty h.Hb.houts
        in
        let exit_preds =
          List.fold_left
            (fun s ex ->
              List.fold_left
                (fun s p -> Temp.Set.add p s)
                s
                (Hb.guard_uses ex.Hb.eguard))
            Temp.Set.empty h.Hb.hexits
        in
        let root = Array.make len false in
        Array.iteri
          (fun i hi ->
            (match hi.Hb.hop with
            | Hb.Op (Tac.Store _) | Hb.Null_write _ | Hb.Null_store _ ->
                root.(i) <- true
            | _ -> ());
            match Hb.hop_def hi.Hb.hop with
            | Some d
              when Temp.Set.mem d out_producers || Temp.Set.mem d exit_preds
              ->
                root.(i) <- true
            | _ -> ())
          body;
        let eff = Array.make len Bdd.False in
        let step i hi =
          let e = g.Pgate.e.(i) in
          let acc = ref (if root.(i) then e else Bdd.False) in
          (match Hb.hop_def hi.Hb.hop with
          | None -> ()
          | Some d ->
              List.iter
                (fun j ->
                  if not (Bdd.is_false eff.(j)) then acc := Bdd.disj m !acc e)
                (Option.value ~default:[] (Hashtbl.find_opt full_cons d));
              List.iter
                (fun j -> acc := Bdd.disj m !acc (Bdd.conj m e eff.(j)))
                (Option.value ~default:[] (Hashtbl.find_opt data_cons d)));
          eff.(i) <- !acc
        in
        let snapshot () = Array.map Bdd.uid eff in
        let max_rounds = (2 * len) + 16 in
        let rec iterate round prev =
          if round > max_rounds then Error "fixpoint did not converge"
          else begin
            Array.iteri step body;
            let cur = snapshot () in
            if cur = prev then Ok () else iterate (round + 1) cur
          end
        in
        match iterate 0 (snapshot ()) with
        | Error msg -> Error msg
        | Ok () ->
            let dead = ref [] and droppable = ref [] in
            Array.iteri
              (fun i hi ->
                if Bdd.is_false eff.(i) then dead := i :: !dead
                else if
                  hi.Hb.guard <> None
                  && Bdd.equal (Pgate.fire_unguarded g i) g.Pgate.e.(i)
                then droppable := i :: !droppable)
              body;
            Ok
              {
                pg = g;
                eff;
                dead = List.rev !dead;
                droppable = List.rev !droppable;
              }
      with Bdd.Budget -> Error "BDD node budget exceeded")

(* predicate-aware liveness: the region of assignments on which a token
   arriving on [t] can still contribute to an obligation *)
let live_region (iv : ineff) (h : Hb.t) (t : Temp.t) : Bdd.node =
  let g = iv.pg in
  let m = g.Pgate.m in
  let full =
    ref
      (List.exists (fun (_, prod) -> Temp.equal t prod) h.Hb.houts
      || List.exists
           (fun ex -> List.exists (Temp.equal t) (Hb.guard_uses ex.Hb.eguard))
           h.Hb.hexits)
  and acc = ref Bdd.False in
  Array.iteri
    (fun j hi ->
      let consumed_full =
        List.exists (Temp.equal t) (Hb.guard_uses hi.Hb.guard)
        ||
        match hi.Hb.hop with
        | Hb.Sand { a; b; _ } -> Temp.equal t a || Temp.equal t b
        | _ -> false
      in
      if consumed_full then begin
        if not (Bdd.is_false iv.eff.(j)) then full := true
      end
      else if List.exists (Temp.equal t) (Hb.data_uses hi) then
        acc := Bdd.disj m !acc iv.eff.(j))
    g.Pgate.body;
  if !full then Bdd.True else !acc
