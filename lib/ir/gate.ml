(* The gating abstraction shared by the exponential path enumerator
   (lib/fuzz Validate) and the polynomial predicate-lattice checker
   (lib/check): which sources of an encoded block carry a boolean that
   predicate matching depends on, and which of those sources share one
   enumeration variable.

   Keeping this in one place is load-bearing for the checker-vs-
   enumerator cross-validation contract: both analyses quantify over
   exactly the same variables with exactly the same sharing (equal tests
   share a variable, complementary integer tests share it negated), so
   "the lattice checker flags a superset-or-equal of the enumerator and
   never flags an enumerator-clean block" is a statement about two
   evaluation strategies of the same abstraction, not two abstractions. *)

module B = Edge_isa.Block
module I = Edge_isa.Instr
module O = Edge_isa.Opcode
module T = Edge_isa.Target

(* sources whose boolean value matters: anything targeting a predicate
   slot, plus (transitively through moves and sand operands) the
   producers those values derive from *)
let boolean_relevant (b : B.t) : bool array * bool array =
  let n = Array.length b.B.instrs in
  let instr_rel = Array.make n false in
  let read_rel = Array.make (Array.length b.B.reads) false in
  let changed = ref true in
  let mark_producers_of id =
    (* producers of [id]'s data operands become relevant *)
    Array.iter
      (fun (i : I.t) ->
        if
          List.exists
            (function
              | T.To_instr { id = d; slot = T.Left | T.Right } -> d = id
              | _ -> false)
            i.I.targets
        then
          if not instr_rel.(i.I.id) then begin
            instr_rel.(i.I.id) <- true;
            changed := true
          end)
      b.B.instrs;
    Array.iteri
      (fun r (rd : B.read) ->
        if
          List.exists
            (function
              | T.To_instr { id = d; slot = T.Left | T.Right } -> d = id
              | _ -> false)
            rd.B.rtargets
        then
          if not read_rel.(r) then begin
            read_rel.(r) <- true;
            changed := true
          end)
      b.B.reads
  in
  (* seed: predicate producers, and sand operand producers (sand's
     short-circuit firing rule depends on its left value) *)
  Array.iter
    (fun (i : I.t) ->
      if
        List.exists
          (function T.To_instr { slot = T.Pred; _ } -> true | _ -> false)
          i.I.targets
      then instr_rel.(i.I.id) <- true)
    b.B.instrs;
  Array.iteri
    (fun r (rd : B.read) ->
      if
        List.exists
          (function T.To_instr { slot = T.Pred; _ } -> true | _ -> false)
          rd.B.rtargets
      then read_rel.(r) <- true)
    b.B.reads;
  Array.iter
    (fun (i : I.t) ->
      match i.I.opcode with O.Sand -> mark_producers_of i.I.id | _ -> ())
    b.B.instrs;
  (* closure through value-propagating opcodes *)
  while !changed do
    changed := false;
    Array.iter
      (fun (i : I.t) ->
        if instr_rel.(i.I.id) then
          match i.I.opcode with
          | O.Un (O.Mov | O.Not | O.Neg) | O.Mov4 | O.Sand ->
              mark_producers_of i.I.id
          | _ -> ())
      b.B.instrs
  done;
  (instr_rel, read_rel)

(* Where does the value arriving at an operand come from?  Chains of
   single-producer moves forward one token unchanged, so two operands
   with the same origin always carry equal values.  The chase stops at a
   multi-producer point (predicated alternatives), which is itself a
   stable identity: consumers fed through the same stop point still see
   the same token. *)
type origin =
  | ONode of int  (** a non-move instruction *)
  | OReg of int  (** an architectural register (any read slot of it) *)
  | OImm of int64  (** an immediate generator; keyed by value, not id *)
  | OMulti of [ `I of int | `R of int ] list
      (** predicated alternatives: whichever fires sends one token to
          every consumer, so equal producer sets mean equal values *)
  | OStop of int * T.slot  (** chase stopped at this operand *)

let operand_producers (b : B.t) =
  let tbl : (int * T.slot, [ `I of int | `R of int ] list) Hashtbl.t =
    Hashtbl.create 64
  in
  let add key v =
    Hashtbl.replace tbl key
      (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  let scan source targets =
    List.iter
      (function
        | T.To_instr { id; slot = (T.Left | T.Right) as slot } ->
            add (id, slot) source
        | _ -> ())
      targets
  in
  Array.iter (fun (i : I.t) -> scan (`I i.I.id) i.I.targets) b.B.instrs;
  Array.iter (fun (rd : B.read) -> scan (`R rd.B.reg) rd.B.rtargets) b.B.reads;
  tbl

let origin (b : B.t) prods start =
  let rec go (id, slot) seen =
    if List.mem id seen then OStop (id, slot)
    else
      match Hashtbl.find_opt prods (id, slot) with
      | Some [ `R reg ] -> OReg reg
      | Some [ `I p ] -> (
          match b.B.instrs.(p).I.opcode with
          | O.Un O.Mov | O.Mov4 -> go (p, T.Left) (id :: seen)
          | O.Movi | O.Geni -> OImm b.B.instrs.(p).I.imm
          | _ -> ONode p)
      | Some (_ :: _ :: _ as ps) -> OMulti (List.sort compare ps)
      | _ -> OStop (id, slot)
  in
  go start []

(* Complementary integer conditions: every cond is either canonical or
   the negation of a canonical one. *)
let normalize_cond = function
  | O.Eq -> (O.Eq, false)
  | O.Ne -> (O.Eq, true)
  | O.Lt -> (O.Lt, false)
  | O.Ge -> (O.Lt, true)
  | O.Le -> (O.Le, false)
  | O.Gt -> (O.Le, true)

let swap_cond = function
  | O.Eq -> O.Eq
  | O.Ne -> O.Ne
  | O.Lt -> O.Gt
  | O.Le -> O.Ge
  | O.Gt -> O.Lt
  | O.Ge -> O.Le

(* Identity of a test's outcome, up to negation: tests of the same
   condition over operands with the same origins share one enumeration
   variable, and complementary tests ([tlt i n] / [tge i n], which
   unrolled loop bounds produce in quantity) share it negated — without
   this, enumeration explores impossible assignments and reports phantom
   output starvation.  Float comparisons never merge by complement
   (NaN breaks complementarity). *)
let test_var_key b prods (i : I.t) =
  let o slot = origin b prods (i.I.id, slot) in
  match i.I.opcode with
  | O.Tst c ->
      let l = o T.Left and r = o T.Right in
      let c, l, r = if compare l r > 0 then (swap_cond c, r, l) else (c, l, r) in
      let c, neg = normalize_cond c in
      Some (`Tst (c, l, r), neg)
  | O.Tsti c ->
      let c, neg = normalize_cond c in
      Some (`Tsti (c, o T.Left, i.I.imm), neg)
  | O.Ftst c -> Some (`Ftst (c, o T.Left, o T.Right), false)
  | _ -> None

(* enumeration variables: boolean-relevant sources whose value cannot be
   derived (tests are deliberately variables — their outcome is the
   point of the analysis). Returns display names per variable and a
   lookup from node index (instr id, or instr-count + read slot) to
   (variable position, negated). *)
let variables (b : B.t) (instr_rel, read_rel) =
  let n = Array.length b.B.instrs in
  let prods = operand_producers b in
  let names = ref [] in
  let count = ref 0 in
  let key_tbl = Hashtbl.create 16 in
  let var_of : (int, int * bool) Hashtbl.t = Hashtbl.create 16 in
  let alloc name =
    let pos = !count in
    incr count;
    names := name :: !names;
    pos
  in
  let share key name neg idx =
    let pos =
      match Hashtbl.find_opt key_tbl key with
      | Some pos -> pos
      | None ->
          let pos = alloc name in
          Hashtbl.replace key_tbl key pos;
          pos
    in
    Hashtbl.replace var_of idx (pos, neg)
  in
  Array.iter
    (fun (i : I.t) ->
      if instr_rel.(i.I.id) then
        match i.I.opcode with
        | O.Movi | O.Geni | O.Null
        | O.Un (O.Mov | O.Not | O.Neg)
        | O.Mov4 | O.Sand ->
            () (* derived or constant *)
        | _ -> (
            let name = Printf.sprintf "I%d" i.I.id in
            match test_var_key b prods i with
            | Some (key, neg) -> share (`Test key) name neg i.I.id
            | None -> Hashtbl.replace var_of i.I.id (alloc name, false)))
    b.B.instrs;
  Array.iteri
    (fun r (rd : B.read) ->
      if read_rel.(r) then
        share (`Read rd.B.reg) (Printf.sprintf "g%d" rd.B.reg) false (n + r))
    b.B.reads;
  (List.rev !names, var_of, !count)

(* known parity of a constant generator's token *)
let const_parity (i : I.t) =
  match i.I.opcode with
  | O.Movi | O.Geni -> Some (Int64.logand i.I.imm 1L <> 0L)
  | _ -> None
