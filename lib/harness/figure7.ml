module Stats = Edge_sim.Stats

type row = {
  bench : string;
  cycles : (string * int) list;
  speedups : (string * float) list;
}

type result = {
  rows : row list;
  mean_speedups : (string * float) list;
  move_reduction : float;
  instr_reduction : float;
  block_reduction : float;
  pass_totals : (string * (string * int) list) list;
  errors : (string * string) list;
  jobs : int;
  compile_s : float;
  sim_s : float;
  traces : ((string * string) * Edge_obs.Event.t list) list;
}

let geomean = function
  | [] -> 1.0
  | xs ->
      exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let run ?(machine = Edge_sim.Machine.default)
    ?(benches = Edge_workloads.Registry.eembc)
    ?(configs = Dfp.Config.all_paper_configs) ?(progress = fun _ -> ())
    ?(jobs = 1) ?(trace_blocks = false) ?cache () =
  let config_names = List.map fst configs in
  (* fan every (workload x config) experiment across the pool; results
     come back in input order, so rows and errors are deterministic
     regardless of completion order *)
  let experiments =
    List.concat_map
      (fun w -> List.mapi (fun i (name, config) -> (w, i, name, config)) configs)
      benches
  in
  let outcomes =
    Edge_parallel.Pool.run ~jobs
      (fun (w, i, name, config) ->
        if i = 0 then progress w.Edge_workloads.Workload.name;
        if trace_blocks then
          (* block-level events only: the collected list is a couple of
             events per executed block, cheap enough to ship back across
             the pool with the run result *)
          let obs, events, _ =
            Edge_obs.Obs.collector ~level:Edge_obs.Trace.Blocks ()
          in
          let outcome = Experiment.run_one ~machine ~obs w (name, config) in
          (w.Edge_workloads.Workload.name, name, outcome, events ())
        else
          ( w.Edge_workloads.Workload.name,
            name,
            Experiment.run_one ~machine ?cache w (name, config),
            [] ))
      experiments
  in
  let errors = ref [] in
  let compile_s = ref 0.0 and sim_s = ref 0.0 in
  let dyn_moves = Hashtbl.create 8 in
  let dyn_instrs = Hashtbl.create 8 in
  let dyn_blocks = Hashtbl.create 8 in
  let bump tbl key v =
    Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  (* per-config compiler pass counters, summed across benchmarks *)
  let pass_tbl : (string, (string, int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let bump_passes cname counters =
    let tbl =
      match Hashtbl.find_opt pass_tbl cname with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 16 in
          Hashtbl.replace pass_tbl cname t;
          t
    in
    List.iter (fun (k, v) -> bump tbl k v) counters
  in
  let rows =
    List.filter_map
      (fun w ->
        let bench = w.Edge_workloads.Workload.name in
        let runs =
          List.filter_map
            (fun (wname, cname, outcome, _) ->
              if not (String.equal wname bench) then None
              else
                match outcome with
                | Ok r ->
                    compile_s := !compile_s +. r.Experiment.compile_s;
                    sim_s := !sim_s +. r.Experiment.sim_s;
                    bump_passes cname r.Experiment.pass_counters;
                    Some (cname, r)
                | Error e ->
                    errors := (bench ^ "/" ^ cname, e) :: !errors;
                    None)
            outcomes
        in
        match List.assoc_opt "Hyper" runs with
        | Some base when List.length runs = List.length configs ->
            List.iter
              (fun (name, (r : Experiment.run)) ->
                bump dyn_moves name r.Experiment.stats.Stats.moves_executed;
                bump dyn_instrs name r.Experiment.stats.Stats.instrs_executed;
                bump dyn_blocks name r.Experiment.stats.Stats.blocks_committed)
              runs;
            Some
              {
                bench;
                cycles = List.map (fun (n, r) -> (n, r.Experiment.cycles)) runs;
                speedups =
                  List.map
                    (fun (n, r) ->
                      ( n,
                        float_of_int base.Experiment.cycles
                        /. float_of_int r.Experiment.cycles ))
                    runs;
              }
        | _ -> None)
      benches
  in
  let mean_speedups =
    List.map
      (fun name ->
        ( name,
          geomean (List.filter_map (fun r -> List.assoc_opt name r.speedups) rows) ))
      config_names
  in
  let reduction tbl =
    match (Hashtbl.find_opt tbl "Hyper", Hashtbl.find_opt tbl "Intra") with
    | Some h, Some i when h > 0 -> float_of_int (h - i) /. float_of_int h
    | _ -> 0.0
  in
  let pass_totals =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt pass_tbl name with
        | None -> None
        | Some tbl ->
            let kvs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
            Some
              (name, List.sort (fun (a, _) (b, _) -> String.compare a b) kvs))
      config_names
  in
  let traces =
    if not trace_blocks then []
    else
      List.filter_map
        (fun (wname, cname, _, events) ->
          if events = [] then None else Some ((wname, cname), events))
        outcomes
  in
  {
    rows;
    mean_speedups;
    move_reduction = reduction dyn_moves;
    instr_reduction = reduction dyn_instrs;
    block_reduction = reduction dyn_blocks;
    pass_totals;
    errors = List.rev !errors;
    jobs;
    compile_s = !compile_s;
    sim_s = !sim_s;
    traces;
  }

let pp ppf r =
  let open Format in
  let config_names = List.map fst r.mean_speedups in
  fprintf ppf "@[<v>";
  fprintf ppf
    "Figure 7: speedup over the Hyper baseline (cycles(Hyper)/cycles(X))@,@,";
  fprintf ppf "%-14s" "benchmark";
  List.iter (fun n -> fprintf ppf "%10s" n) config_names;
  fprintf ppf "@,";
  List.iter
    (fun row ->
      fprintf ppf "%-14s" row.bench;
      List.iter
        (fun n ->
          match List.assoc_opt n row.speedups with
          | Some s -> fprintf ppf "%10.2f" s
          | None -> fprintf ppf "%10s" "-")
        config_names;
      fprintf ppf "@,")
    r.rows;
  fprintf ppf "%-14s" "geomean";
  List.iter
    (fun n ->
      match List.assoc_opt n r.mean_speedups with
      | Some s -> fprintf ppf "%10.2f" s
      | None -> fprintf ppf "%10s" "-")
    config_names;
  fprintf ppf "@,@,";
  (* ASCII bars for the headline configurations *)
  fprintf ppf "speedup bars (x0.1 per char, | marks 1.0):@,";
  List.iter
    (fun row ->
      List.iter
        (fun n ->
          if n <> "Hyper" then
            match List.assoc_opt n row.speedups with
            | Some s ->
                let len = int_of_float (s *. 10.0) in
                let bar = String.make (min 40 (max 1 len)) '#' in
                fprintf ppf "%-14s %-6s %s@," row.bench n
                  (if len >= 10 then
                     String.sub bar 0 (min 10 (String.length bar))
                     ^ "|"
                     ^ String.sub bar 10 (String.length bar - min 10 (String.length bar))
                   else bar)
            | None -> ())
        config_names)
    r.rows;
  fprintf ppf "@,Section 6 dynamic-statistics deltas (Intra vs Hyper):@,";
  fprintf ppf "  move instructions: -%.1f%% (paper: -14%%)@,"
    (100.0 *. r.move_reduction);
  fprintf ppf "  total instructions: -%.1f%% (paper: -2%%)@,"
    (100.0 *. r.instr_reduction);
  fprintf ppf "  blocks executed: -%.1f%% (paper: -5%%)@,"
    (100.0 *. r.block_reduction);
  if r.errors <> [] then begin
    fprintf ppf "@,errors:@,";
    List.iter (fun (w, e) -> fprintf ppf "  %s: %s@," w e) r.errors
  end;
  fprintf ppf "@]"
