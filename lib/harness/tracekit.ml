(* One-stop helpers for tracing small `.k` kernels: compile a source
   string under a configuration, run the cycle simulator with a
   collector attached, and render the deterministic text form the golden
   tests compare byte-for-byte.

   The argument/memory convention matches the fuzzer's
   (lib/fuzz/gen.ml): kernels take (int x, int y, int* A, int* B) with A
   and B pointing at two 64-element arrays of a fixed pattern. The
   constants are duplicated here — the fuzz library depends on this one,
   not the other way around — so corpus reproducers replay identically
   under both. *)

module Conv = Edge_isa.Conventions
module Mem = Edge_isa.Mem

let array_len = 64
let addr_a = 4096
let addr_b = 8192
let mem_size = 16384
let default_args = [ 7L; -3L; Int64.of_int addr_a; Int64.of_int addr_b ]

let default_mem () =
  let mem = Mem.create ~size:mem_size in
  for i = 0 to array_len - 1 do
    Mem.store_int mem (addr_a + (8 * i)) (Int64.of_int ((i * 37) - 90));
    Mem.store_int mem (addr_b + (8 * i)) (Int64.of_int (1000 - (i * 13)))
  done;
  mem

type traced = {
  events : Edge_obs.Event.t list;
  metrics : Edge_obs.Metrics.t;
  stats : Edge_sim.Stats.t;
}

let compile_source source config =
  match Edge_lang.Parser.parse source with
  | Error e -> Error ("parse: " ^ e)
  | Ok ast -> (
      match Edge_lang.Lower.lower ast with
      | Error e -> Error ("lower: " ^ e)
      | Ok cfg -> (
          match Dfp.Driver.compile_cfg cfg config with
          | Error e -> Error ("compile: " ^ e)
          | Ok c -> Ok c))

let run_traced ?(machine = Edge_sim.Machine.default) ?(arena = true)
    ?(level = Edge_obs.Trace.Full) (c : Dfp.Driver.compiled) =
  let obs, events, metrics = Edge_obs.Obs.collector ~level () in
  let regs = Array.make Conv.num_regs 0L in
  List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) default_args;
  let mem = default_mem () in
  let placement n =
    match List.assoc_opt n c.Dfp.Driver.placements with
    | Some p -> p
    | None -> [||]
  in
  match
    Edge_sim.Backend.run ~machine ~placement ~obs ~arena
      c.Dfp.Driver.program ~regs ~mem
  with
  | Ok stats -> Ok { events = events (); metrics; stats }
  | Error e -> Error e

let trace_source ?machine ?level ~source ~config () =
  match compile_source source config with
  | Error e -> Error e
  | Ok c -> run_traced ?machine ?level c

let render ?machine ~kernel ~config t =
  (* the default machine stays implicit so the pre-existing grid goldens
     keep their exact bytes; any other machine names itself *)
  let machine_header =
    match machine with None -> [] | Some m -> [ ("machine", m) ]
  in
  Edge_obs.Trace.render_text
    ~header:
      ([ ("kernel", kernel); ("config", config) ]
      @ machine_header
      @ [ ("cycles", string_of_int t.stats.Edge_sim.Stats.cycles) ])
    t.events
