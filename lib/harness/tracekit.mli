(** Helpers for tracing small `.k` kernels: compile a source string,
    run the cycle simulator with an in-memory collector attached, and
    render the deterministic text form the golden-trace tests compare
    byte-for-byte (see test/test_obs.ml and OBSERVABILITY.md).

    The argument/memory convention matches the fuzzer's
    ([lib/fuzz/gen.ml]): kernels take [(int x, int y, int* A, int* B)]
    with [A]/[B] pointing at two 64-element arrays of a fixed pattern,
    so fuzz-corpus reproducers replay identically here. *)

val default_args : int64 list
val default_mem : unit -> Edge_isa.Mem.t

type traced = {
  events : Edge_obs.Event.t list;  (** in emission order *)
  metrics : Edge_obs.Metrics.t;  (** simulator "sim.*" / "block.*" series *)
  stats : Edge_sim.Stats.t;
}

val compile_source :
  string -> Dfp.Config.t -> (Dfp.Driver.compiled, string) result
(** Parse → lower → compile; errors are prefixed with the failing
    stage. Uncached (golden kernels are tiny). *)

val run_traced :
  ?machine:Edge_sim.Machine.t ->
  ?arena:bool ->
  ?level:Edge_obs.Trace.level ->
  Dfp.Driver.compiled ->
  (traced, string) result
(** Cycle-simulates under the default argument/memory convention with a
    collector attached ([level] defaults to [Full]). [arena] (default
    [true]) is the cycle simulator's frame-arena switch. *)

val trace_source :
  ?machine:Edge_sim.Machine.t ->
  ?level:Edge_obs.Trace.level ->
  source:string ->
  config:Dfp.Config.t ->
  unit ->
  (traced, string) result
(** [compile_source] followed by [run_traced]. *)

val render :
  ?machine:string -> kernel:string -> config:string -> traced -> string
(** The golden text format: a [# kernel/config/cycles] header followed
    by one event per line. Integers only — byte-identical across runs,
    platforms and [-j] values. [machine] adds a [# machine:] header
    line; the default machine is left implicit so pre-existing grid
    goldens keep their exact bytes. *)
