(** Ablations of the microarchitectural mechanisms Section 4 argues for,
    plus the Section 7 extensions, on a representative benchmark subset:

    - early mispredication termination on/off (Section 4.3);
    - aggressive load speculation + dependence predictor vs. in-order
      memory (the LSQ behaviour Section 6 credits for the inter wins);
    - binary [Mov] fanout trees vs. [Mov4] predicate multicast
      (Section 7 "predicate multicast operations");
    - no unrolling;
    - the Section 7 short-circuiting AND chain conversion ([sand]). *)

type entry = {
  bench : string;
  variant : string;
  cycles : int;
  baseline_cycles : int;  (** the Both configuration on the default machine *)
}

val run :
  ?benches:string list ->
  ?jobs:int ->
  ?cache:Edge_parallel.Disk_cache.t ->
  unit ->
  entry list * (string * string) list
(** Returns entries plus errors, in input order for any [jobs]. *)

val pp : Format.formatter -> entry list -> unit
