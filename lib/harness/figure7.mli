(** The Figure 7 experiment: speedup of BB / Intra / Inter / Both over
    the hyperblock baseline across the 28 EEMBC-style benchmarks, plus
    the Section 6 dynamic-statistics deltas (moves, total instructions,
    blocks) for the intra configuration.

    The (workload x config) experiments are independent, so [run] fans
    them across a domain pool ([jobs]); rows, speedups and errors are
    assembled in input order and are bit-identical for every [jobs]
    value. *)

type row = {
  bench : string;
  cycles : (string * int) list;  (** per config *)
  speedups : (string * float) list;  (** vs Hyper *)
}

type result = {
  rows : row list;
  mean_speedups : (string * float) list;  (** geometric mean per config *)
  move_reduction : float;  (** Intra vs Hyper, dynamic moves, fraction *)
  instr_reduction : float;  (** Intra vs Hyper, dynamic instructions *)
  block_reduction : float;  (** Intra vs Hyper, dynamic blocks *)
  pass_totals : (string * (string * int) list) list;
      (** per config: compiler "pass.*" counters summed over benchmarks,
          sorted by counter name *)
  errors : (string * string) list;
  jobs : int;  (** parallelism the sweep ran with *)
  compile_s : float;  (** summed wall-clock of the compile phases *)
  sim_s : float;  (** summed wall-clock of the simulation phases *)
  traces : ((string * string) * Edge_obs.Event.t list) list;
      (** with [trace_blocks]: per (bench, config), the block-level
          event stream of the timed cycle-simulator run, in input order *)
}

val run :
  ?machine:Edge_sim.Machine.t ->
  ?benches:Edge_workloads.Workload.t list ->
  ?configs:(string * Dfp.Config.t) list ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?trace_blocks:bool ->
  ?cache:Edge_parallel.Disk_cache.t ->
  unit ->
  result
(** [configs] defaults to the five paper configurations and must
    include ["Hyper"], the speedup baseline. [jobs] defaults to 1
    (sequential); pass [Edge_parallel.Pool.default_jobs ()] to use the
    machine. [trace_blocks] (default false) attaches a block-level trace
    collector to every timed run and returns the event streams in
    [traces]; the streams ride back through the pool, so they are
    deterministic for every [jobs] value. [cache] makes every
    non-traced run consult/populate the persistent result cache (see
    {!Experiment.run_one}); cycles and rows are identical either way,
    only [compile_s]/[sim_s] collapse on warm entries. *)

val pp : Format.formatter -> result -> unit
(** Renders the table and an ASCII rendition of the Figure 7 bars. *)
