type entry = {
  bench : string;
  variant : string;
  cycles : int;
  baseline_cycles : int;
}

let default_benches =
  [ "a2time01"; "autcor00"; "conven00"; "matrix01"; "rotate01"; "viterb00" ]

let variants =
  [
    ( "no-early-termination",
      ( { Edge_sim.Machine.default with Edge_sim.Machine.early_termination = false },
        Dfp.Config.both ) );
    ( "in-order-memory",
      ( { Edge_sim.Machine.default with Edge_sim.Machine.aggressive_loads = false },
        Dfp.Config.both ) );
    ( "mov4-fanout",
      ( Edge_sim.Machine.default,
        { Dfp.Config.both with Dfp.Config.use_mov4 = true } ) );
    ( "merge",
      (Edge_sim.Machine.default, Dfp.Config.merge) );
    ( "no-unroll",
      ( Edge_sim.Machine.default,
        { Dfp.Config.both with Dfp.Config.max_unroll = 1 } ) );
    ("sand", (Edge_sim.Machine.default, Dfp.Config.sand));
  ]

let run ?(benches = default_benches) ?(jobs = 1) ?cache () =
  (* the baseline and every variant of every bench are independent
     experiments: fan all of them across the pool at once, then stitch
     the (variant, baseline) pairs back together in input order *)
  let resolved =
    List.map (fun name -> (name, Edge_workloads.Registry.find name)) benches
  in
  let experiments =
    List.concat_map
      (fun (name, w) ->
        match w with
        | None -> []
        | Some w ->
            (name, w, "Both", Edge_sim.Machine.default, Dfp.Config.both)
            :: List.map
                 (fun (vname, (machine, config)) -> (name, w, vname, machine, config))
                 variants)
      resolved
  in
  let outcomes =
    Edge_parallel.Pool.run ~jobs
      (fun (name, w, label, machine, config) ->
        ((name, label), Experiment.run_one ~machine ?cache w (label, config)))
      experiments
  in
  let result_of name label = List.assoc (name, label) outcomes in
  let errors = ref [] in
  let entries = ref [] in
  List.iter
    (fun (name, w) ->
      match w with
      | None -> errors := (name, "unknown workload") :: !errors
      | Some _ -> (
          match result_of name "Both" with
          | Error e -> errors := (name, e) :: !errors
          | Ok base ->
              List.iter
                (fun (vname, _) ->
                  match result_of name vname with
                  | Error e -> errors := (name ^ "/" ^ vname, e) :: !errors
                  | Ok r ->
                      entries :=
                        {
                          bench = name;
                          variant = vname;
                          cycles = r.Experiment.cycles;
                          baseline_cycles = base.Experiment.cycles;
                        }
                        :: !entries)
                variants))
    resolved;
  (List.rev !entries, List.rev !errors)

let pp ppf entries =
  let open Format in
  fprintf ppf "@[<v>ablations (cycles relative to Both on the default machine)@,@,";
  fprintf ppf "%-12s %-22s %10s %10s %8s@," "benchmark" "variant" "cycles"
    "baseline" "ratio";
  List.iter
    (fun e ->
      fprintf ppf "%-12s %-22s %10d %10d %8.2f@," e.bench e.variant e.cycles
        e.baseline_cycles
        (float_of_int e.cycles /. float_of_int e.baseline_cycles))
    entries;
  fprintf ppf "@]"
