module Conv = Edge_isa.Conventions
module Mem = Edge_isa.Mem
module Workload = Edge_workloads.Workload

type run = {
  workload : string;
  config : string;
  cycles : int;
  ret : int64;  (* the verified return value (equal across all three executors) *)
  stats : Edge_sim.Stats.t;
  static_instrs : int;
  static_blocks : int;
  static_fanout_moves : int;
  explicit_predicates : int;
  pass_counters : (string * int) list;  (* compiler "pass.*" counters *)
  compile_s : float;  (* wall-clock spent compiling (0 on a memo hit) *)
  sim_s : float;  (* wall-clock spent in reference/functional/cycle sims *)
}

let ( let* ) = Result.bind

(* real (non-memoized) compiles performed process-wide; the serve tests
   use the delta to prove single-flight dedup collapses a stampede of
   identical jobs into one compile *)
let compile_counter = Atomic.make 0

let compiles_performed () = Atomic.get compile_counter

let compile ?check ?lint (w : Workload.t) config =
  Atomic.incr compile_counter;
  let* ast = Workload.parse w in
  let* cfg = Edge_lang.Lower.lower ast in
  Dfp.Driver.compile_cfg ?check ?lint cfg config

(* ineffectuality lint over raw kernel source: compile in report mode
   and collect the findings.  Never memoized — the lint artifact is not
   the artifact a normal compile produces (deletion is suppressed).
   Split-retries can re-report a surviving block's findings; sort_uniq
   collapses the duplicates. *)
let lint_source ?check source config =
  let* ast = Edge_lang.Parser.parse source in
  let* cfg = Edge_lang.Lower.lower ast in
  let findings = ref [] in
  let* _compiled =
    Dfp.Driver.compile_cfg ?check
      ~lint:(fun f -> findings := f :: !findings)
      cfg config
  in
  Ok (List.sort_uniq compare !findings)

let lint ?check (w : Workload.t) config =
  lint_source ?check w.Workload.source config

(* Process-wide memo tables. Compilation is deterministic in
   (workload, config) and the artifacts are read-only to both
   simulators, so every harness (Figure 7, stats, genalg, ablations —
   including machine-only variants) shares one compile per distinct
   (workload, config fingerprint) and one reference-interpreter run per
   workload, across domains. *)
let compile_memo :
    (string * Dfp.Config.t, (Dfp.Driver.compiled, string) result) Edge_parallel.Memo.t =
  Edge_parallel.Memo.create ()

let reference_memo : (string, (int64 * Mem.t, string) result) Edge_parallel.Memo.t
    =
  Edge_parallel.Memo.create ()

(* the checker switch joins the memo key: a compile that skipped the
   verifier must not answer for one that asked for it (and vice versa —
   a checked compile is byte-identical but proves more) *)
let compile_cached (w : Workload.t) config =
  let check = Edge_check.Check.enabled () in
  let name =
    if check then w.Workload.name ^ "+check" else w.Workload.name
  in
  Edge_parallel.Memo.get compile_memo (name, config) (fun () ->
      compile ~check w config)

let reference_cached ?fuel (w : Workload.t) =
  (* a bounded reference run must not answer for an unbounded one (or
     vice versa): the fuel joins the memo key *)
  let key =
    match fuel with
    | None -> w.Workload.name
    | Some f -> Printf.sprintf "%s#fuel=%d" w.Workload.name f
  in
  Edge_parallel.Memo.get reference_memo key (fun () ->
      match Workload.reference_run ?fuel w with
      | Ok (r, m) -> Ok (Option.value ~default:0L r, m)
      | Error e -> Error e)

let setup_run (w : Workload.t) =
  let mem = Mem.create ~size:w.Workload.mem_size in
  let args = w.Workload.setup mem in
  let regs = Array.make Conv.num_regs 0L in
  List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) args;
  (regs, mem)

(* key for the persistent cache: everything a run's numbers depend on.
   The kernel source digest covers the workload (setup/description are
   derived from the same definition site), the marshalled config and
   machine cover both sweep axes, and the simulator revision invalidates
   every entry when simulated semantics change. *)
let cache_key (w : Workload.t) config_name config machine =
  String.concat "|"
    [
      "run-v2";
      Edge_sim.Backend.revision machine;
      Edge_sim.Block_jit.revision;
      w.Workload.name;
      Digest.to_hex (Digest.string w.Workload.source);
      string_of_int w.Workload.mem_size;
      config_name;
      Digest.to_hex (Digest.string (Marshal.to_string config []));
      Digest.to_hex (Digest.string (Marshal.to_string machine []));
    ]

(* the verified execution of one compiled artifact: functional check
   against the reference, then the timed cycle-simulator run, also
   checked. Shared between source-compiled and pre-encoded runs. *)
let run_body ~machine ?obs ~arena (w : Workload.t) config_name
    (compiled : Dfp.Driver.compiled) ~reference ~ref_mem =
  (* functional check *)
  let regs, mem = setup_run w in
  let* _ =
    match
      Edge_sim.Functional.run compiled.Dfp.Driver.program ~regs ~mem
    with
    | Ok s -> Ok s
    | Error e -> Error (Printf.sprintf "%s/%s functional: %s" w.Workload.name config_name e)
  in
  let* () =
    if Int64.equal regs.(Conv.result_reg) reference && Mem.equal mem ref_mem
    then Ok ()
    else
      Error
        (Printf.sprintf "%s/%s functional mismatch: ret %Ld vs %Ld"
           w.Workload.name config_name
           regs.(Conv.result_reg)
           reference)
  in
  (* timed run *)
  let regs, mem = setup_run w in
  (* the compiler schedules for the default grid; a machine with another
     geometry gets its blocks re-placed here (memory is cheap: one array
     per block per run, and the binfo layer caches the hop tables) *)
  let placement =
    if Edge_sim.Machine.same_geometry machine Edge_sim.Machine.default then
      fun n ->
        (match List.assoc_opt n compiled.Dfp.Driver.placements with
        | Some p -> p
        | None -> [||])
    else
      let memo = Hashtbl.create 16 in
      fun n ->
        match Hashtbl.find_opt memo n with
        | Some p -> p
        | None ->
            let p =
              match
                List.assoc_opt n
                  compiled.Dfp.Driver.program.Edge_isa.Program.blocks
              with
              | Some b -> Dfp.Schedule.place ~machine b
              | None -> [||]
            in
            Hashtbl.add memo n p;
            p
  in
  let* stats =
    match
      Edge_sim.Backend.run ~machine ~placement ?obs ~arena
        compiled.Dfp.Driver.program ~regs ~mem
    with
    | Ok s -> Ok s
    | Error e -> Error (Printf.sprintf "%s/%s cycle: %s" w.Workload.name config_name e)
  in
  let* () =
    if Int64.equal regs.(Conv.result_reg) reference && Mem.equal mem ref_mem
    then Ok ()
    else
      Error
        (Printf.sprintf "%s/%s cycle mismatch: ret %Ld vs %Ld" w.Workload.name
           config_name
           regs.(Conv.result_reg)
           reference)
  in
  Ok stats

let make_run (w : Workload.t) config_name (compiled : Dfp.Driver.compiled)
    stats ~reference ~compile_s ~sim_s =
  {
    workload = w.Workload.name;
    config = config_name;
    cycles = stats.Edge_sim.Stats.cycles;
    ret = reference;
    stats;
    static_instrs = compiled.Dfp.Driver.static_instrs;
    static_blocks = compiled.Dfp.Driver.static_blocks;
    static_fanout_moves = compiled.Dfp.Driver.static_fanout_moves;
    explicit_predicates = compiled.Dfp.Driver.explicit_predicates;
    pass_counters = compiled.Dfp.Driver.pass_counters;
    compile_s;
    sim_s;
  }

let run_one_uncached ?(machine = Edge_sim.Machine.default) ?obs
    ?(arena = true) ?interp_fuel ?lint (w : Workload.t) (config_name, config) =
  let t0 = Unix.gettimeofday () in
  let* reference, ref_mem = reference_cached ?fuel:interp_fuel w in
  let t1 = Unix.gettimeofday () in
  (* a lint run simulates the lint artifact (deletion suppressed), which
     the memo must never hold — compile fresh *)
  let* compiled =
    match lint with
    | None -> compile_cached w config
    | Some report -> compile ~lint:report w config
  in
  let t2 = Unix.gettimeofday () in
  let* stats =
    run_body ~machine ?obs ~arena w config_name compiled ~reference ~ref_mem
  in
  let t3 = Unix.gettimeofday () in
  Ok
    (make_run w config_name compiled stats ~reference ~compile_s:(t2 -. t1)
       ~sim_s:((t1 -. t0) +. (t3 -. t2)))

(* mem-before-disk layered caching around [compute]: a mem hit costs a
   stripe probe, a disk hit is promoted into the mem layer, and a
   computed result lands in both (the disk store optionally handed to
   the cache's writeback thread so worker domains never block on the
   filesystem) *)
let run_layered ~key ?cache ?mem ~async_store compute =
  match Option.bind mem (fun m -> Edge_parallel.Mem_cache.find m ~key) with
  | Some (r : run) -> Ok { r with compile_s = 0.; sim_s = 0. }
  | None -> (
      match
        Option.bind cache (fun c ->
            (Edge_parallel.Disk_cache.find c ~key : run option))
      with
      | Some r ->
          Option.iter
            (fun m -> Edge_parallel.Mem_cache.store m ~key r)
            mem;
          Ok { r with compile_s = 0.; sim_s = 0. }
      | None ->
          let res = compute () in
          (match res with
          | Ok (r : run) ->
              Option.iter
                (fun m -> Edge_parallel.Mem_cache.store m ~key r)
                mem;
              Option.iter
                (fun c ->
                  if async_store then
                    Edge_parallel.Disk_cache.store_async c ~key r
                  else Edge_parallel.Disk_cache.store c ~key r)
                cache
          | Error _ -> ());
          res)

(* an attached observer wants the events of a real run, so a cached
   result would be wrong; obs runs always execute. Likewise
   [~arena:false] asks for a real (fresh-allocation) run, so it
   bypasses the cache rather than answer from a pooled run's entry.
   And with the checker on, the point is to *run* the verifier over
   every compile — answering from a cached run would skip it.
   [interp_fuel] does not join the cache key: a fuel-bounded run that
   *succeeds* is identical to the unbounded run, and errors (fuel
   exhaustion included) are never cached. *)
let cacheable ?obs ~arena ?cache ?mem () =
  (Option.is_some cache || Option.is_some mem)
  && Option.is_none obs && arena
  && not (Edge_check.Check.enabled ())

let run_one ?machine ?obs ?(arena = true) ?interp_fuel ?cache ?mem
    ?(async_store = false) ?lint (w : Workload.t)
    ((config_name, config) as cfg) =
  (* a lint run wants its findings streamed and simulates a different
     artifact: it bypasses both cache layers, like an obs run *)
  if Option.is_none lint && cacheable ?obs ~arena ?cache ?mem () then
    let key =
      cache_key w config_name config
        (Option.value machine ~default:Edge_sim.Machine.default)
    in
    run_layered ~key ?cache ?mem ~async_store (fun () ->
        run_one_uncached ?machine ?obs ~arena ?interp_fuel w cfg)
  else run_one_uncached ?machine ?obs ~arena ?interp_fuel ?lint w cfg

let run_precompiled_uncached ?(machine = Edge_sim.Machine.default) ?obs
    ?(arena = true) ?interp_fuel (w : Workload.t) config_name
    (compiled : Dfp.Driver.compiled) =
  let t0 = Unix.gettimeofday () in
  let* reference, ref_mem = reference_cached ?fuel:interp_fuel w in
  let* stats =
    run_body ~machine ?obs ~arena w config_name compiled ~reference ~ref_mem
  in
  let t3 = Unix.gettimeofday () in
  Ok
    (make_run w config_name compiled stats ~reference ~compile_s:0.
       ~sim_s:(t3 -. t0))

let run_precompiled ?machine ?obs ?(arena = true) ?interp_fuel ?cache ?mem
    ?(async_store = false) ~image_digest (w : Workload.t)
    (config_name, config) (compiled : Dfp.Driver.compiled) =
  if cacheable ?obs ~arena ?cache ?mem () then
    (* the image digest salts the key: a shipped artifact may differ
       from what this process would compile (other compiler revision —
       or a hostile client), so it must never answer for, or be
       answered by, a source-compiled entry *)
    let key =
      cache_key w config_name config
        (Option.value machine ~default:Edge_sim.Machine.default)
      ^ "|img:" ^ image_digest
    in
    run_layered ~key ?cache ?mem ~async_store (fun () ->
        run_precompiled_uncached ?machine ?obs ~arena ?interp_fuel w
          config_name compiled)
  else
    run_precompiled_uncached ?machine ?obs ~arena ?interp_fuel w config_name
      compiled
