(** The Section 5.3 / Figure 6 case study: the genalg roulette-wheel
    loop, comparing the best Figure 7 compiler configuration against
    disjoint instruction merging plus maximal unrolling — the automated
    equivalent of the paper's hand-applied merging, which achieved over
    2.25x on this kernel. *)

type study = {
  cycles_bb : int;
  cycles_hyper : int;
  cycles_both : int;  (** "best performing compiler" *)
  cycles_both_u1 : int;  (** best compiler denied unrolling *)
  cycles_hand : int;  (** merge + maximal unrolling *)
  speedup_vs_both : float;
  speedup_vs_u1 : float;
  static_instrs_both : int;
  static_instrs_hand : int;
  blocks_both : int;
  blocks_hand : int;
}

val run :
  ?machine:Edge_sim.Machine.t ->
  ?jobs:int ->
  ?cache:Edge_parallel.Disk_cache.t ->
  unit ->
  (study, string) result
(** The five configuration points are independent and run across a
    domain pool ([jobs], default 1); results are deterministic for any
    [jobs]. *)

val pp : Format.formatter -> study -> unit
