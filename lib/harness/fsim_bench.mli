(** Functional-simulator throughput microbenchmark (JIT vs interpreter).

    Backs [bin/fsim_bench.exe], the [fsim_throughput] section of
    BENCH_fig7.json, and the [make perf-smoke] JIT-speedup gate. *)

type row = {
  config : string;
  jit_blocks_s : float;
  jit_instrs_s : float;
  interp_blocks_s : float;
  interp_instrs_s : float;
  speedup : float;  (** [jit_instrs_s /. interp_instrs_s] *)
}

type result = { workloads : string list; rows : row list }

val measure :
  ?benches:Edge_workloads.Workload.t list ->
  ?configs:(string * Dfp.Config.t) list ->
  ?min_time:float ->
  unit ->
  result
(** Time-boxed A/B runs ([min_time] seconds per mode per config,
    default 0.15). Defaults to three representative EEMBC kernels and
    the paper configurations. Raises [Failure] if a workload fails to
    compile or execute. *)

val min_speedup : result -> float
(** Smallest JIT/interpreter instruction-throughput ratio across rows. *)

val pp : Format.formatter -> result -> unit
