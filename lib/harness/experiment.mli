(** Running one workload under one compiler configuration.

    Every run is verified three ways before its numbers count: the
    reference interpreter, the functional dataflow executor and the cycle
    simulator must produce identical return values and final memory
    images.

    Compile artifacts and reference-interpreter runs are memoized
    process-wide (keyed by (workload, config fingerprint) and workload
    respectively), so sweeps that revisit a configuration — the Figure 7
    sweep plus Section 6 statistics, the ablations' machine-only
    variants — compile each workload once per distinct config rather
    than once per experiment. The tables are domain-safe with
    single-flight semantics, so a parallel sweep never duplicates a
    compile. *)

type run = {
  workload : string;
  config : string;
  cycles : int;
  ret : int64;
      (** the kernel's return value, verified identical across the
          reference interpreter and both simulators *)
  stats : Edge_sim.Stats.t;
  static_instrs : int;
  static_blocks : int;
  static_fanout_moves : int;
  explicit_predicates : int;
  pass_counters : (string * int) list;
      (** compiler per-pass optimization counters ("pass.*", sorted) *)
  compile_s : float;
      (** wall-clock seconds spent compiling for this run; ~0 when the
          memo already held the artifact *)
  sim_s : float;
      (** wall-clock seconds spent simulating (reference + functional +
          cycle) for this run *)
}

val run_one :
  ?machine:Edge_sim.Machine.t ->
  ?obs:Edge_obs.Obs.t ->
  ?arena:bool ->
  ?interp_fuel:int ->
  ?cache:Edge_parallel.Disk_cache.t ->
  ?mem:run Edge_parallel.Mem_cache.t ->
  ?async_store:bool ->
  ?lint:(Dfp.Opt_ineff.finding -> unit) ->
  Edge_workloads.Workload.t ->
  string * Dfp.Config.t ->
  (run, string) result
(** [obs] (default null) instruments the *timed* cycle-simulator run
    only; the functional check always runs uninstrumented.

    [arena] (default [true]) is forwarded to the cycle simulator's
    frame-arena switch; pass [false] to force fresh per-block
    allocation for differential testing (see {!Edge_sim.Cycle_sim.run}).

    [interp_fuel] bounds the reference-interpreter run (statements
    executed); exhausting it fails the run with a
    ["fault: fuel exhausted"] error. The job server sets it (together
    with a bounded [machine.max_cycles]) so an untrusted non-terminating
    kernel produces a timeout error instead of wedging a domain. It
    does not join the cache key: a bounded run that succeeds equals the
    unbounded run, and errors are never cached.

    [cache] consults/populates a persistent result cache keyed by
    kernel source digest, config, machine and simulator revision, so
    an unchanged (workload, config) pair costs one file read across
    processes. Cache hits report [compile_s]/[sim_s] as [0.]. Runs
    with an [obs] attached, with [~arena:false], or with the static
    checker enabled ({!Edge_check.Check.enabled}) bypass the cache
    (the caller wants a real, verified run); errors are never
    cached.

    [mem] layers a sharded in-memory result cache in front of [cache]
    (same keys): a warm hit costs one stripe probe — no filesystem, no
    unmarshalling — and a disk hit is promoted into the mem layer. The
    bypass rules above apply to both layers. [async_store] (default
    [false]) hands the disk store to the cache's writeback thread (see
    {!Edge_parallel.Disk_cache.store_async}) so the computing domain
    never blocks on the filesystem.

    [lint] compiles in ineffectuality-report mode (findings streamed to
    the callback, deletion suppressed — see {!Dfp.Driver.compile_cfg})
    and simulates that artifact. Lint runs bypass both cache layers and
    the compile memo: the artifact is not the one a normal compile
    produces. *)

val run_precompiled :
  ?machine:Edge_sim.Machine.t ->
  ?obs:Edge_obs.Obs.t ->
  ?arena:bool ->
  ?interp_fuel:int ->
  ?cache:Edge_parallel.Disk_cache.t ->
  ?mem:run Edge_parallel.Mem_cache.t ->
  ?async_store:bool ->
  image_digest:string ->
  Edge_workloads.Workload.t ->
  string * Dfp.Config.t ->
  Dfp.Driver.compiled ->
  (run, string) result
(** Like {!run_one}, but simulating a pre-compiled artifact (a decoded
    pre-encoded block job) instead of compiling the workload's source:
    [compile_s] is reported as [0.]. The full verification battery
    still runs — reference interpreter, functional executor and cycle
    simulator must agree on return value and final memory — so an
    artifact whose semantics diverge from the workload source fails
    the run rather than producing unchecked numbers. [image_digest]
    (the hex digest of the raw artifact bytes) salts the cache key, so
    a shipped artifact never shares cache entries with source-compiled
    runs and a corrupt or hostile image cannot poison them. *)

val cache_key :
  Edge_workloads.Workload.t ->
  string ->
  Dfp.Config.t ->
  Edge_sim.Machine.t ->
  string
(** The persistent-cache key of one run: workload source digest, config
    (name + fingerprint), machine description and backend/JIT
    revisions. Exposed so the machine tests can assert that two
    distinct machines never share a cache entry. *)

val compile :
  ?check:bool ->
  ?lint:(Dfp.Opt_ineff.finding -> unit) ->
  Edge_workloads.Workload.t ->
  Dfp.Config.t ->
  (Dfp.Driver.compiled, string) result
(** Uncached compilation (used by the microbenchmarks to time the
    compiler itself). [check] and [lint] are forwarded to
    {!Dfp.Driver.compile_cfg}. *)

val lint_source :
  ?check:bool ->
  string ->
  Dfp.Config.t ->
  (Dfp.Opt_ineff.finding list, string) result
(** Compile raw kernel source in ineffectuality-report mode and return
    the findings (sorted, deduplicated across split-retries). Never
    memoized. *)

val lint :
  ?check:bool ->
  Edge_workloads.Workload.t ->
  Dfp.Config.t ->
  (Dfp.Opt_ineff.finding list, string) result
(** {!lint_source} over a registry workload's kernel source. *)

val setup_run : Edge_workloads.Workload.t -> int64 array * Edge_isa.Mem.t
(** Fresh register file and memory image for one execution of the
    workload, with arguments placed per the calling convention. *)

val compile_cached :
  Edge_workloads.Workload.t ->
  Dfp.Config.t ->
  (Dfp.Driver.compiled, string) result
(** Memoized compilation, shared across harnesses and domains. The
    current {!Edge_check.Check.enabled} state joins the memo key, so
    checked and unchecked compiles never answer for each other. *)

val compiles_performed : unit -> int
(** Process-wide count of real (non-memoized, non-disk-cached)
    compiles. The serve tests assert the delta stays at one when 16
    identical jobs stampede the server — single-flight dedup plus the
    compile memo collapse them into a single compile. *)
