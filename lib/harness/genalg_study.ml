type study = {
  cycles_bb : int;
  cycles_hyper : int;
  cycles_both : int;
  cycles_both_u1 : int;
  cycles_hand : int;
  speedup_vs_both : float;
  speedup_vs_u1 : float;
  static_instrs_both : int;
  static_instrs_hand : int;
  blocks_both : int;
  blocks_hand : int;
}

let ( let* ) = Result.bind

let run ?(machine = Edge_sim.Machine.default) ?(jobs = 1) ?cache () =
  let w = Edge_workloads.Registry.genalg in
  let specs =
    [
      ("BB", Dfp.Config.bb);
      ("Hyper", Dfp.Config.hyper_baseline);
      ("Both", Dfp.Config.both);
      ("Both-u1", { Dfp.Config.both with Dfp.Config.max_unroll = 1 });
      ("Hand", Dfp.Config.hand_optimized);
    ]
  in
  let* bb, hyper, both, both_u1, hand =
    match
      Edge_parallel.Pool.run ~jobs
        (fun (name, config) -> Experiment.run_one ~machine ?cache w (name, config))
        specs
    with
    | [ bb; hyper; both; both_u1; hand ] ->
        (* first failure in spec order wins, as in the sequential bind
           chain this replaces *)
        let* bb = bb in
        let* hyper = hyper in
        let* both = both in
        let* both_u1 = both_u1 in
        let* hand = hand in
        Ok (bb, hyper, both, both_u1, hand)
    | _ -> assert false
  in
  Ok
    {
      cycles_bb = bb.Experiment.cycles;
      cycles_hyper = hyper.Experiment.cycles;
      cycles_both = both.Experiment.cycles;
      cycles_hand = hand.Experiment.cycles;
      cycles_both_u1 = both_u1.Experiment.cycles;
      speedup_vs_both =
        float_of_int both.Experiment.cycles /. float_of_int hand.Experiment.cycles;
      speedup_vs_u1 =
        float_of_int both_u1.Experiment.cycles
        /. float_of_int hand.Experiment.cycles;
      static_instrs_both = both.Experiment.static_instrs;
      static_instrs_hand = hand.Experiment.static_instrs;
      blocks_both = both.Experiment.stats.Edge_sim.Stats.blocks_committed;
      blocks_hand = hand.Experiment.stats.Edge_sim.Stats.blocks_committed;
    }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>genalg case study (Section 5.3 / Figure 6)@,\
     @,\
     %-28s %10s %10s@,%-28s %10d %10d@,%-28s %10d %10d@,%-28s %10d %10d@,\
     @,\
     merging + max unrolling vs best compiler: %.2fx@,\
     merging + max unrolling vs unroll-less compiler: %.2fx (paper: >2.25x, by hand)@,\
     (BB %d, Hyper baseline %d, Both-without-unrolling %d cycles)@]"
    "" "Both" "Merge+unroll" "cycles" r.cycles_both r.cycles_hand
    "static instructions" r.static_instrs_both r.static_instrs_hand
    "dynamic blocks" r.blocks_both r.blocks_hand r.speedup_vs_both
    r.speedup_vs_u1 r.cycles_bb r.cycles_hyper r.cycles_both_u1
