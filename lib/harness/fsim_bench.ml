(* Functional-simulator throughput microbenchmark: JIT vs interpreter.

   Time-boxed A/B measurement over a fixed subset of the Figure 7
   workloads, per compiler configuration: each mode runs complete
   program executions (fresh memory image and argument setup per run,
   exactly what the sweep's functional check does) until the time
   budget is spent, and throughput is reported in committed blocks and
   executed instructions per second. The JIT/interpreter ratio is the
   number `make perf-smoke` gates on, and the rows are emitted into
   BENCH_fig7.json as the `fsim_throughput` section so the committed
   numbers track the code. *)

module Workload = Edge_workloads.Workload

type row = {
  config : string;
  jit_blocks_s : float;
  jit_instrs_s : float;
  interp_blocks_s : float;
  interp_instrs_s : float;
  speedup : float;  (* jit_instrs_s / interp_instrs_s *)
}

type result = { workloads : string list; rows : row list }

(* first, middle and last EEMBC kernel: small, deterministic, and
   spanning the control-flow variety of the suite *)
let default_benches () =
  let all = Array.of_list Edge_workloads.Registry.eembc in
  let n = Array.length all in
  if n = 0 then []
  else [ all.(0); all.(n / 2); all.(n - 1) ]

let measure ?(benches = default_benches ())
    ?(configs = Dfp.Config.all_paper_configs) ?(min_time = 0.15) () =
  let progs_for config =
    List.map
      (fun (w : Workload.t) ->
        match Experiment.compile_cached w config with
        | Ok c -> (w, c.Dfp.Driver.program)
        | Error e -> failwith (Printf.sprintf "fsim_bench: %s: %s" w.Workload.name e))
      benches
  in
  (* one timed slice of the full workload set under one mode; the
     caller alternates modes slice-by-slice so transient machine load
     dilates both measurements equally instead of skewing the ratio *)
  let slice progs ~jit blocks instrs =
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun ((w : Workload.t), prog) ->
        let regs, mem = Experiment.setup_run w in
        match Edge_sim.Functional.run ~jit prog ~regs ~mem with
        | Ok st ->
            blocks := !blocks + st.Edge_sim.Stats.blocks_executed;
            instrs := !instrs + st.Edge_sim.Stats.instrs_executed
        | Error e ->
            failwith (Printf.sprintf "fsim_bench: %s: %s" w.Workload.name e))
      progs;
    Unix.gettimeofday () -. t0
  in
  let bench_pair progs =
    (* warm-up: fault early on broken programs and let the JIT hit its
       code cache before the timed region *)
    List.iter
      (fun ((w : Workload.t), prog) ->
        List.iter
          (fun jit ->
            let regs, mem = Experiment.setup_run w in
            match Edge_sim.Functional.run ~jit prog ~regs ~mem with
            | Ok _ -> ()
            | Error e ->
                failwith
                  (Printf.sprintf "fsim_bench: %s: %s" w.Workload.name e))
          [ true; false ])
      progs;
    let jb = ref 0 and ji = ref 0 and ib = ref 0 and ii = ref 0 in
    let jt = ref 0.0 and it = ref 0.0 in
    while !jt < min_time || !it < min_time do
      jt := !jt +. slice progs ~jit:true jb ji;
      it := !it +. slice progs ~jit:false ib ii
    done;
    ( (float_of_int !jb /. !jt, float_of_int !ji /. !jt),
      (float_of_int !ib /. !it, float_of_int !ii /. !it) )
  in
  let rows =
    List.map
      (fun (cname, config) ->
        let progs = progs_for config in
        let (jit_blocks_s, jit_instrs_s), (interp_blocks_s, interp_instrs_s) =
          bench_pair progs
        in
        {
          config = cname;
          jit_blocks_s;
          jit_instrs_s;
          interp_blocks_s;
          interp_instrs_s;
          speedup = jit_instrs_s /. interp_instrs_s;
        })
      configs
  in
  {
    workloads = List.map (fun (w : Workload.t) -> w.Workload.name) benches;
    rows;
  }

let min_speedup r =
  List.fold_left (fun acc row -> min acc row.speedup) infinity r.rows

let pp ppf r =
  Format.fprintf ppf "@[<v>functional-sim throughput (workloads: %s)@,"
    (String.concat ", " r.workloads);
  Format.fprintf ppf "%-8s %14s %14s %14s %14s %8s@," "config" "jit blk/s"
    "jit instr/s" "interp blk/s" "interp instr/s" "speedup";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-8s %14.0f %14.0f %14.0f %14.0f %7.2fx@,"
        row.config row.jit_blocks_s row.jit_instrs_s row.interp_blocks_s
        row.interp_instrs_s row.speedup)
    r.rows;
  Format.fprintf ppf "@]"
