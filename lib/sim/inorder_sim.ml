(* The in-order single-issue EDGE backend.

   One centralized tile holds the whole block; instructions issue in
   block order, [issue_per_tile] per cycle, from an in-order window of
   [window_size] in-flight instructions; one block is in flight at a
   time. Architectural execution is delegated to [Functional.Engine] —
   the functional simulator's own per-block interpreter — and the
   timing pass below charges cycles for exactly the firings that engine
   performed. Results therefore cannot diverge from the functional
   simulator by construction; only the cycle counts are modeled here.

   The timing pass works off the static dataflow graph: a fired
   instruction becomes ready once every fired producer that targets one
   of its slots has completed (register reads and immediates are
   available at dispatch), and issues at the first cycle >= ready where
   (a) the issue width of the cycle is not exhausted, and (b) the
   firing [window_size] issues older has completed — the small window
   serializes the block far more than the grid's distributed
   reservation stations do. Ready instructions issue lowest block index
   first (block index order is not topological — predicate producers
   regularly sit after their consumers — so issue itself must be
   dataflow-ordered). Loads pay the D-cache latency for the address the
   engine actually computed; committed stores drain
   [commit_stores_per_cycle] per cycle after the last firing. The
   window already serializes a block's memory traffic, so
   [aggressive_loads] has no effect on this backend. *)

module Block = Edge_isa.Block
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Token = Edge_isa.Token
module Mem = Edge_isa.Mem
module Program = Edge_isa.Program
module Bi = Block_image
module Obs = Edge_obs.Obs
module Ev = Edge_obs.Event
module Mx = Edge_obs.Metrics
module Engine = Functional.Engine

(* bump when the timing model or [Stats] accounting changes: the
   persistent result cache keys on it *)
let revision = "inorder-sim-1"

(* per-block static timing tables, computed once per run *)
type binfo = {
  img : Bi.t;
  producers : int array array;  (* per instr: static fan-in instr ids *)
  base_addr : int64;  (* code address of the block *)
  n_lines : int;  (* I-cache lines fetched per dispatch *)
}

type sim = {
  imgp : Bi.program;
  machine : Machine.t;
  eng : Engine.state;
  regs : int64 array;
  mem : Mem.t;
  stats : Stats.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  predictor : Predictor.t;
  binfos : binfo option array;
  comp : int array;  (* capacity: completion cycle per instruction *)
  window : int array;  (* ring: completion cycles of issued instrs *)
  mutable clock : int;
  mutable seq : int;
  obs : Obs.t;
  otrace : bool;
  ofull : bool;
  oactive : bool;
  ometrics : Mx.t option;
}

let emit sim e = Obs.emit sim.obs e

let mincr ?by sim name =
  match sim.ometrics with Some m -> Mx.incr ?by m name | None -> ()

let mobserve sim name v =
  match sim.ometrics with Some m -> Mx.observe m name v | None -> ()

let make_binfo sim idx =
  let img = sim.imgp.Bi.blocks.(idx) in
  let producers = Array.make img.Bi.n [] in
  Array.iteri
    (fun id (i : Bi.inst) ->
      Array.iter
        (function
          | Target.To_instr { id = d; _ } -> producers.(d) <- id :: producers.(d)
          | Target.To_write _ -> ())
        i.Bi.targets)
    img.Bi.instrs;
  let lb = sim.machine.Machine.line_bytes in
  {
    img;
    producers = Array.map Array.of_list producers;
    base_addr = Int64.of_int (img.Bi.index * 1024);
    n_lines = max 1 ((img.Bi.size_words * 4) + lb - 1) / lb;
  }

let binfo sim idx =
  match sim.binfos.(idx) with
  | Some b -> b
  | None ->
      let b = make_binfo sim idx in
      sim.binfos.(idx) <- Some b;
      b

(* ---------- memory timing (same accounting as the grid backend) ---------- *)

let dcache_latency sim ~addr ~write =
  sim.stats.Stats.dcache_accesses <- sim.stats.Stats.dcache_accesses + 1;
  if sim.oactive then mincr sim "sim.dcache_accesses";
  if Cache.access sim.l1d ~addr ~write then begin
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.clock; cache = "l1d"; write; hit = true });
    Cache.hit_latency sim.l1d
  end
  else begin
    sim.stats.Stats.dcache_misses <- sim.stats.Stats.dcache_misses + 1;
    if sim.oactive then mincr sim "sim.dcache_misses";
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.clock; cache = "l1d"; write; hit = false });
    let l2_hit = Cache.access sim.l2 ~addr ~write in
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.clock; cache = "l2"; write; hit = l2_hit });
    if l2_hit then Cache.hit_latency sim.l1d + sim.machine.Machine.l2_latency
    else
      Cache.hit_latency sim.l1d + sim.machine.Machine.l2_latency
      + sim.machine.Machine.mem_latency
  end

let icache_penalty sim bt =
  let pen = ref 0 in
  for i = 0 to bt.n_lines - 1 do
    sim.stats.Stats.icache_accesses <- sim.stats.Stats.icache_accesses + 1;
    if sim.oactive then mincr sim "sim.icache_accesses";
    let addr =
      Int64.add bt.base_addr (Int64.of_int (i * sim.machine.Machine.line_bytes))
    in
    let l1i_hit = Cache.access sim.l1i ~addr ~write:false in
    if sim.otrace && sim.ofull then
      emit sim
        (Ev.Cache { cycle = sim.clock; cache = "l1i"; write = false; hit = l1i_hit });
    if not l1i_hit then begin
      sim.stats.Stats.icache_misses <- sim.stats.Stats.icache_misses + 1;
      if sim.oactive then mincr sim "sim.icache_misses";
      pen :=
        !pen
        + (if Cache.access sim.l2 ~addr ~write:false then
             sim.machine.Machine.l2_latency
           else sim.machine.Machine.l2_latency + sim.machine.Machine.mem_latency)
    end
  done;
  !pen

(* ---------- per-block step ---------- *)

type block_result =
  | Next of string
  | Halted
  | Faulted of string
  | Malformed of string

let run_block sim idx =
  let m = sim.machine in
  let bt = binfo sim idx in
  let img = bt.img in
  let seq = sim.seq in
  sim.seq <- seq + 1;
  let block_start = sim.clock in
  (* serialized front end: every block pays fetch + I-cache penalty *)
  let pen = icache_penalty sim bt in
  if sim.otrace then
    emit sim (Ev.Fetch { cycle = sim.clock; block = img.Bi.name; penalty = pen });
  let start = sim.clock + m.Machine.fetch_cycles + pen in
  (* predict the next block before executing, as real hardware must *)
  let predicted =
    Predictor.predict_hashed sim.predictor ~block_hash:img.Bi.name_hash
  in
  (* architectural execution: the functional engine is authoritative *)
  let fstats = Stats.create () in
  Engine.prepare sim.eng img;
  match Engine.exec_block sim.eng ~regs:sim.regs ~mem:sim.mem ~stats:fstats with
  | Error msg -> Malformed msg
  | Ok outcome ->
      fstats.Stats.instrs_committed <- fstats.Stats.instrs_executed;
      if sim.otrace then
        emit sim
          (Ev.Dispatch
             {
               cycle = start;
               block = img.Bi.name;
               seq;
               fid = 0;
               instrs = img.Bi.n;
             });
      if sim.oactive then mincr sim "sim.blocks_dispatched";
      (* Timing pass over the firings the engine performed. Block index
         order is not topological (predicate producers regularly sit
         after their consumers), so issue is dataflow-ordered: every
         cycle the ready instructions issue lowest-index-first,
         [issue_per_tile] of them, and the window ring stalls issue
         until the firing [window_size] issues back has completed.
         [comp.(id)] is the completion cycle, -1 while unscheduled;
         the dataflow graph is acyclic so the scan always progresses. *)
      let fired id = Engine.fired sim.eng id in
      let n = img.Bi.n in
      let comp = sim.comp in
      let wsize = m.Machine.window_size in
      let issue_w = m.Machine.issue_per_tile in
      let total = ref 0 in
      for id = 0 to n - 1 do
        if fired id then begin
          comp.(id) <- -1;
          incr total
        end
      done;
      let cur = ref start in
      let issued = ref 0 in
      let scheduled = ref 0 in
      let exec_done = ref start in
      (* the completion gate of the next issue slot: the ring holds the
         last [wsize] completion times, read before being overwritten *)
      let gate () =
        if !issued >= wsize then sim.window.(!issued mod wsize) else min_int
      in
      let ready_at id =
        (* max completion over fired producers; unscheduled producer =
           not ready yet *)
        let t = ref start in
        let ok = ref true in
        Array.iter
          (fun p ->
            if fired p then
              if comp.(p) < 0 then ok := false
              else if comp.(p) > !t then t := comp.(p))
          bt.producers.(id);
        if !ok then Some !t else None
      in
      let issue_one id =
        let i = img.Bi.instrs.(id) in
        if sim.otrace && sim.ofull then
          emit sim
            (Ev.Issue
               {
                 cycle = !cur;
                 block = img.Bi.name;
                 seq;
                 id;
                 op = i.Bi.mn;
                 tile = 0;
               });
        let lat =
          i.Bi.latency
          +
          match i.Bi.op with
          | Opcode.Ld _ -> (
              match Engine.left_operand sim.eng id with
              | Some base when not base.Token.null ->
                  (* keep the trace clock at the access cycle so Cache
                     events stay in nondecreasing cycle order *)
                  sim.clock <- !cur;
                  dcache_latency sim
                    ~addr:(Int64.add base.Token.payload i.Bi.imm)
                    ~write:false
              | Some _ | None -> 0)
          | _ -> 0
        in
        let c = !cur + lat in
        comp.(id) <- c;
        sim.window.(!issued mod wsize) <- c;
        incr issued;
        incr scheduled;
        if c > !exec_done then exec_done := c
      in
      while !scheduled < !total do
        (* issue everything possible at cycle [!cur]; rescan so a
           zero-latency producer can feed a lower-indexed consumer
           within the cycle *)
        let slots = ref issue_w in
        let progress = ref true in
        while !progress && !slots > 0 do
          progress := false;
          let id = ref 0 in
          while !id < n && !slots > 0 do
            (if fired !id && comp.(!id) < 0 && gate () <= !cur then
               match ready_at !id with
               | Some t when t <= !cur ->
                   issue_one !id;
                   decr slots;
                   progress := true
               | Some _ | None -> ());
            incr id
          done
        done;
        (* jump to the next cycle anything can issue: the earliest
           ready-and-ungated time of a schedulable instruction *)
        if !scheduled < !total then begin
          let next = ref max_int in
          for id = 0 to n - 1 do
            if fired id && comp.(id) < 0 then
              match ready_at id with
              | Some t ->
                  let t = max t (max (gate ()) (!cur + 1)) in
                  if t < !next then next := t
              | None -> ()
          done;
          cur := (if !next = max_int then !cur + 1 else !next)
        end
      done;
      (* store commit: the engine already wrote memory; charge the
         D-cache and the commit bandwidth for the stores that stuck *)
      sim.clock <- !exec_done;
      let committed_stores = ref 0 in
      Array.iteri
        (fun id (i : Bi.inst) ->
          if i.Bi.is_store && fired id then
            match (Engine.left_operand sim.eng id, Engine.right_operand sim.eng id)
            with
            | Some base, Some v when not (base.Token.null || v.Token.null) ->
                ignore
                  (dcache_latency sim
                     ~addr:(Int64.add base.Token.payload i.Bi.imm)
                     ~write:true);
                incr committed_stores
            | _ -> ())
        img.Bi.instrs;
      let cps = m.Machine.commit_stores_per_cycle in
      let commit_done = !exec_done + ((!committed_stores + cps - 1) / cps) in
      (* branch resolution and predictor training *)
      let actual =
        match outcome.Functional.exit_taken with
        | None -> Block.halt_exit
        | Some t -> t
      in
      let exit_idx = ref 0 in
      Array.iteri
        (fun id (i : Bi.inst) ->
          if i.Bi.exit_idx >= 0 && fired id then exit_idx := i.Bi.exit_idx)
        img.Bi.instrs;
      Predictor.update_hashed sim.predictor ~block_hash:img.Bi.name_hash
        ~exit_idx:!exit_idx ~target:actual;
      let mispredicted =
        match predicted with
        | Some p ->
            let correct = String.equal p actual in
            Predictor.record_outcome sim.predictor ~correct;
            not correct
        | None -> false
      in
      sim.stats.Stats.branch_predictions <-
        sim.stats.Stats.branch_predictions + 1;
      if mispredicted then
        sim.stats.Stats.branch_mispredicts <-
          sim.stats.Stats.branch_mispredicts + 1;
      if sim.oactive then begin
        mincr sim "sim.branch_resolutions";
        if mispredicted then mincr sim "sim.branch_mispredicts";
        if sim.otrace then
          emit sim
            (Ev.Branch
               {
                 cycle = !exec_done;
                 block = img.Bi.name;
                 seq;
                 target = actual;
                 mispredict = mispredicted;
               });
        mincr sim "sim.blocks_committed";
        mincr sim ~by:fstats.Stats.instrs_committed "sim.instrs_committed";
        mobserve sim "block.occupancy" (commit_done - block_start);
        mobserve sim "block.mispredicated" fstats.Stats.mispredicated_fetched;
        if sim.otrace then
          emit sim
            (Ev.Commit
               {
                 cycle = commit_done;
                 block = img.Bi.name;
                 seq;
                 instrs = fstats.Stats.instrs_committed;
                 nulls = 0;
                 orphans = 0;
                 occupancy = commit_done - block_start;
               })
      end;
      Stats.add sim.stats fstats;
      (* a wrong or absent prediction stalls the next fetch for the
         predictor latency; clocks always advance so pathological
         zero-latency machine descriptions still terminate *)
      let bubble =
        if mispredicted || predicted = None then m.Machine.predict_cycles else 0
      in
      sim.clock <- max (commit_done + bubble) (block_start + 1);
      match outcome.Functional.faulted with
      | Some f -> Faulted f
      | None -> ( match outcome.Functional.exit_taken with
          | None ->
              sim.stats.Stats.cycles <- commit_done;
              Halted
          | Some next -> Next next)

let run ?(machine = Machine.inorder_edge) ?(obs = Obs.null) program ~regs ~mem =
  let imgp = Bi.of_program program in
  let n_blocks = Array.length imgp.Bi.blocks in
  let m = machine in
  let sim =
    {
      imgp;
      machine;
      eng = Engine.make imgp;
      regs;
      mem;
      stats = Stats.create ();
      l1d =
        Cache.create ~size_bytes:m.Machine.l1d_size ~ways:m.Machine.l1d_ways
          ~line_bytes:m.Machine.line_bytes ~hit_latency:m.Machine.l1d_latency;
      l1i =
        Cache.create ~size_bytes:m.Machine.l1i_size ~ways:m.Machine.l1i_ways
          ~line_bytes:m.Machine.line_bytes ~hit_latency:m.Machine.l1i_latency;
      l2 =
        Cache.create ~size_bytes:m.Machine.l2_size ~ways:m.Machine.l2_ways
          ~line_bytes:m.Machine.line_bytes ~hit_latency:m.Machine.l2_latency;
      predictor =
        Predictor.create ~history_bits:m.Machine.predictor_history_bits
          ~table_bits:m.Machine.predictor_table_bits ();
      binfos = Array.make (max 1 n_blocks) None;
      comp = Array.make (max 1 imgp.Bi.max_n) 0;
      window = Array.make (max 1 m.Machine.window_size) 0;
      clock = 0;
      seq = 0;
      obs;
      otrace = Obs.tracing obs;
      ofull = obs.Obs.full;
      oactive = Obs.active obs;
      ometrics = obs.Obs.metrics;
    }
  in
  let rec go name =
    if sim.clock >= m.Machine.max_cycles then
      Error (Printf.sprintf "watchdog: %d cycles" sim.clock)
    else
      match Bi.find_index imgp name with
      | None -> Error (Printf.sprintf "malformed: no block %s" name)
      | Some idx -> (
          match run_block sim idx with
          | Malformed msg -> Error ("malformed: " ^ msg)
          | Faulted f -> Error ("fault: " ^ f)
          | Halted -> Ok sim.stats
          | Next next -> go next)
  in
  go program.Program.entry
