(** Decode-once block images.

    A block image is an immutable, flat, int-indexed view of a
    [Block.t] with every per-fetch derivation done ahead of time:
    operand arities, predication, latencies, target arrays, stat
    classes, register-write slots, LSID→store-slot tables, code
    footprint and seed instructions. Both simulators consume images so
    a block fetched a million times is decoded exactly once — the
    software analogue of the TRIPS pre-decoded block header and
    instruction store. *)

module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Program = Edge_isa.Program

(** Statistic class of an instruction, matching the cycle simulator's
    accounting ([Sand] deliberately counts as [Splain] there). *)
type stat_class = Smove | Snull | Stest | Splain

type inst = {
  op : Opcode.t;
  pred : Instr.predication;
  predicated : bool;
  arity : int;  (** [Opcode.num_operands op] *)
  imm : int64;
  lsid : int;
  exit_idx : int;
  latency : int;  (** [Opcode.latency op] *)
  targets : Target.t array;
  is_store : bool;
  pred_fanout : int;
      (** number of [To_instr Pred] targets — static predicate consumers *)
  cls : stat_class;
  mn : string;  (** [Opcode.mnemonic op] *)
}

type t = {
  block : Block.t;  (** the source block, for anything not pre-decoded *)
  index : int;  (** position in the enclosing program image; 0 standalone *)
  name : string;
  name_hash : int;  (** [Predictor.block_hash name], precomputed *)
  instrs : inst array;
  n : int;  (** number of instructions *)
  reads : Block.read array;
  rtargets : Target.t array array;  (** per read slot *)
  write_regs : int array;  (** write slot -> architectural register *)
  n_writes : int;
  wslot_of_reg : int array;
      (** register -> lowest write slot naming it, or -1; length 128 *)
  store_lsids : int array;  (** declaration order *)
  store_order : int array;  (** store slots sorted by ascending LSID *)
  n_stores : int;
  store_slot : int array;  (** lsid -> store slot, or -1; see {!store_slot_of} *)
  outputs : int;  (** register writes + declared stores + 1 branch *)
  size_words : int;  (** [Block.size_in_words block] *)
  seeds : int array;
      (** ids of 0-operand unpredicated instructions, ascending — the
          instructions dispatched eagerly at block start *)
  exits : string array;
}

type program = {
  source : Program.t;
  blocks : t array;  (** program order *)
  by_name : (string, int) Hashtbl.t;
  entry : int;  (** index of the entry block, -1 if missing *)
  max_n : int;  (** max instruction count across blocks *)
  max_writes : int;
  max_stores : int;
}

val of_block : ?index:int -> Block.t -> t
(** Decode a standalone block (used by [Functional.run_block]). *)

val build : Program.t -> program
(** Decode every block of a program, uncached. *)

val of_program : Program.t -> program
(** [build], memoised in a bounded content-addressed table keyed by
    [Program.digest]. Thread-safe; shared across domains. *)

val find_index : program -> string -> int option

val store_slot_of : t -> int -> int
(** Store slot declared for an LSID, or -1. O(1) for well-formed LSIDs
    with a linear-scan fallback preserving the old list-search
    semantics for out-of-range ones. *)
