(** Shared ALU semantics for both simulators.

    Division truncates toward zero and division by zero sets the
    exception bit; shift amounts are masked to 6 bits; [Fdtoi] truncates;
    sub-word memory semantics live in {!Edge_isa.Mem}. Results inherit
    null and exception tags from their operands (Sections 4.2 and 4.4). *)

val exec :
  Edge_isa.Opcode.t ->
  imm:int64 ->
  left:Edge_isa.Token.t option ->
  right:Edge_isa.Token.t option ->
  Edge_isa.Token.t
(** Pure result computation for non-memory, non-branch opcodes. Memory and
    branch opcodes must not be passed here ([Invalid_argument]). *)

val effective_address : base:Edge_isa.Token.t -> imm:int64 -> int64

val jit1 :
  Edge_isa.Opcode.t -> imm:int64 -> Edge_isa.Token.t -> Edge_isa.Token.t
(** Compile-time specialization of [exec] for 1-operand ALU opcodes
    ([Iopi]/[Tsti]/[Un]/[Mov4]): resolves the opcode and immediate once,
    returning the residual per-execution closure. Raises
    [Invalid_argument] when partially applied to any other opcode. *)

val jit2 : Edge_isa.Opcode.t -> Edge_isa.Token.t -> Edge_isa.Token.t -> Edge_isa.Token.t
(** Compile-time specialization of [exec] for 2-operand ALU opcodes
    ([Iop]/[Tst]/[Fop]/[Ftst]). Raises [Invalid_argument] on others. *)
