(** Backend dispatch: one entry point for every timing model.

    The machine description names the core ({!Machine.backend}); this
    module routes a run to {!Cycle_sim} (the tiled TRIPS grid) or
    {!Inorder_sim} (the scalar in-order EDGE core) so harness code can
    sweep a backend × configuration matrix without caring which
    simulator implements each point. *)

val revision : Machine.t -> string
(** The revision string of the backend the machine selects — fold it
    into cache keys alongside the machine itself. *)

val run :
  ?machine:Machine.t ->
  ?placement:Cycle_sim.placement_fn ->
  ?obs:Edge_obs.Obs.t ->
  ?arena:bool ->
  Edge_isa.Program.t ->
  regs:int64 array ->
  mem:Edge_isa.Mem.t ->
  (Stats.t, string) result
(** Same contract as {!Cycle_sim.run}. [placement] and [arena] are
    meaningful only for the grid backend; the in-order core is
    centralized and ignores them. [machine] defaults to
    {!Machine.default}. *)
