(* Decode-once block images.

   Both simulators used to re-derive per-instruction facts (operand
   arity, predication, latency, stat class, target fan-out) and
   per-block tables (register write slots, LSID store slots, code
   footprint) from [Block.t] on every fetch of every block instance —
   list walks and pattern matches repeated millions of times per run.
   A block image flattens all of it once per program into immutable
   int-indexed arrays, the software analogue of the TRIPS block header
   and pre-decoded instruction store feeding the issue window.

   Images are cached per program in a content-addressed table keyed by
   [Program.digest], so repeated runs of the same compiled artifact
   (the experiment sweep runs each program once per simulator, the
   fuzz oracle once per configuration) decode exactly once per
   process, across domains. *)

module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Program = Edge_isa.Program

type stat_class = Smove | Snull | Stest | Splain

type inst = {
  op : Opcode.t;
  pred : Instr.predication;
  predicated : bool;
  arity : int;
  imm : int64;
  lsid : int;
  exit_idx : int;
  latency : int;
  targets : Target.t array;
  is_store : bool;
  pred_fanout : int;  (* static consumers fed through predicate slots *)
  cls : stat_class;
  mn : string;  (* mnemonic, for trace events *)
}

type t = {
  block : Block.t;
  index : int;  (* position in the program image *)
  name : string;
  name_hash : int;  (* Predictor.block_hash of the name *)
  instrs : inst array;
  n : int;
  reads : Block.read array;
  rtargets : Target.t array array;  (* per read slot *)
  write_regs : int array;  (* wslot -> architectural register *)
  n_writes : int;
  wslot_of_reg : int array;  (* reg -> lowest wslot writing it, or -1 *)
  store_lsids : int array;  (* declaration order, as in [Block.t] *)
  store_order : int array;  (* store slots sorted by ascending LSID *)
  n_stores : int;
  store_slot : int array;  (* lsid -> store slot, -1 if undeclared *)
  outputs : int;  (* writes + declared stores + 1 branch *)
  size_words : int;
  seeds : int array;  (* 0-operand unpredicated instruction ids *)
  exits : string array;
}

type program = {
  source : Program.t;
  blocks : t array;  (* program order *)
  by_name : (string, int) Hashtbl.t;
  entry : int;
  max_n : int;
  max_writes : int;
  max_stores : int;
}

let stat_class_of = function
  | Opcode.Un Opcode.Mov | Opcode.Mov4 -> Smove
  | Opcode.Null -> Snull
  | Opcode.Tst _ | Opcode.Tsti _ | Opcode.Ftst _ -> Stest
  | _ -> Splain

let decode_inst (i : Instr.t) =
  let op = i.Instr.opcode in
  {
    op;
    pred = i.Instr.pred;
    predicated = Instr.is_predicated i;
    arity = Opcode.num_operands op;
    imm = i.Instr.imm;
    lsid = i.Instr.lsid;
    exit_idx = i.Instr.exit_idx;
    latency = Opcode.latency op;
    targets = Array.of_list i.Instr.targets;
    is_store = (match op with Opcode.St _ -> true | _ -> false);
    pred_fanout =
      List.fold_left
        (fun acc t ->
          match t with
          | Target.To_instr { slot = Target.Pred; _ } -> acc + 1
          | _ -> acc)
        0 i.Instr.targets;
    cls = stat_class_of op;
    mn = Opcode.mnemonic op;
  }

let of_block ?(index = 0) (b : Block.t) =
  let n = Array.length b.Block.instrs in
  let instrs = Array.map decode_inst b.Block.instrs in
  let n_writes = Array.length b.Block.writes in
  let write_regs =
    Array.map (fun (w : Block.write) -> w.Block.wreg) b.Block.writes
  in
  let wslot_of_reg = Array.make 128 (-1) in
  Array.iteri
    (fun wi (w : Block.write) ->
      let r = w.Block.wreg in
      if r >= 0 && r < 128 && wslot_of_reg.(r) < 0 then wslot_of_reg.(r) <- wi)
    b.Block.writes;
  let store_lsids = Array.of_list b.Block.store_lsids in
  let n_stores = Array.length store_lsids in
  let store_order =
    let idx = Array.init n_stores Fun.id in
    Array.sort (fun a b -> compare store_lsids.(a) store_lsids.(b)) idx;
    idx
  in
  let slot_cap =
    Array.fold_left (fun acc l -> max acc (l + 1)) Block.max_lsids store_lsids
  in
  let store_slot = Array.make slot_cap (-1) in
  Array.iteri
    (fun k l -> if l >= 0 && store_slot.(l) < 0 then store_slot.(l) <- k)
    store_lsids;
  let seeds = ref [] in
  Array.iteri
    (fun id inst ->
      if inst.arity = 0 && not inst.predicated then seeds := id :: !seeds)
    instrs;
  {
    block = b;
    index;
    name = b.Block.name;
    name_hash = Hashtbl.hash b.Block.name;
    instrs;
    n;
    reads = b.Block.reads;
    rtargets =
      Array.map (fun (r : Block.read) -> Array.of_list r.Block.rtargets)
        b.Block.reads;
    write_regs;
    n_writes;
    wslot_of_reg;
    store_lsids;
    store_order;
    n_stores;
    store_slot;
    outputs = n_writes + n_stores + 1;
    size_words = Block.size_in_words b;
    seeds = Array.of_list (List.rev !seeds);
    exits = b.Block.exits;
  }

(* [store_slot] answers in O(1) for in-range LSIDs; the scan fallback
   preserves the old behaviour (search the declaration list) for
   malformed negative LSIDs *)
let store_slot_of t lsid =
  if lsid >= 0 && lsid < Array.length t.store_slot then t.store_slot.(lsid)
  else
    let rec scan k =
      if k >= t.n_stores then -1
      else if t.store_lsids.(k) = lsid then k
      else scan (k + 1)
    in
    scan 0

let build (p : Program.t) =
  let blocks =
    Array.of_list
      (List.mapi (fun i (_, b) -> of_block ~index:i b) p.Program.blocks)
  in
  let by_name = Hashtbl.create (2 * max 1 (Array.length blocks)) in
  Array.iteri (fun i bi -> Hashtbl.replace by_name bi.name i) blocks;
  let entry =
    match Hashtbl.find_opt by_name p.Program.entry with Some i -> i | None -> -1
  in
  let maxf f = Array.fold_left (fun acc b -> max acc (f b)) 0 blocks in
  {
    source = p;
    blocks;
    by_name;
    entry;
    max_n = maxf (fun b -> b.n);
    max_writes = maxf (fun b -> b.n_writes);
    max_stores = maxf (fun b -> b.n_stores);
  }

let find_index p name = Hashtbl.find_opt p.by_name name

(* ---- content-addressed image cache ----

   Keyed by [Program.digest]; shared across domains (the experiment
   pool runs simulators concurrently), so lookups and inserts hold a
   mutex. Build cost is linear and tiny, so building under the lock is
   simpler than single-flight machinery. The table is bounded: a fuzz
   campaign pushes thousands of distinct programs through the
   simulators, and an unbounded table would grow without limit. *)

let cache : (string, program) Hashtbl.t = Hashtbl.create 64
let cache_mu = Mutex.create ()
let cache_cap = 256

let of_program p =
  let key = Program.digest p in
  Mutex.lock cache_mu;
  let img =
    match Hashtbl.find_opt cache key with
    | Some img -> img
    | None ->
        let img = build p in
        if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
        Hashtbl.replace cache key img;
        img
  in
  Mutex.unlock cache_mu;
  img
