(** Functional (untimed) dataflow executor.

    Runs TRIPS blocks by token pushing, implementing the execution
    semantics of Sections 3–4 — predicate matching, predicate-OR,
    null-token output resolution, LSID-ordered memory within a block,
    exception-bit propagation — without any timing model. It serves as
    the architectural oracle for the cycle simulator and as the
    correctness check for compiled code, and detects malformed blocks
    (double operand delivery, two matching predicates, double branch,
    missing outputs/deadlock). *)

type outcome = {
  exit_taken : string option;  (** [None] when the program halted *)
  faulted : string option;  (** block-boundary exception, if raised *)
}

val run_block :
  Edge_isa.Block.t ->
  regs:int64 array ->
  mem:Edge_isa.Mem.t ->
  stats:Stats.t ->
  (outcome, string) result
(** Executes one block to completion and commits its outputs. [Error]
    means the block is malformed (a compiler bug), not a program fault. *)

val run :
  ?fuel_blocks:int ->
  ?jit:bool ->
  Edge_isa.Program.t ->
  regs:int64 array ->
  mem:Edge_isa.Mem.t ->
  (Stats.t, string) result
(** Runs from the entry block until halt. Program faults (exception bit
    reaching a committed output) are reported as [Error] with a
    ["fault:"] prefix; malformed blocks with a ["malformed:"] prefix.

    By default execution goes through the {!Block_jit} threaded-code
    path; [~jit:false] (or {!set_jit}[ false], or [DFP_NO_JIT=1] in the
    environment) selects this interpreter, the reference
    implementation. Both paths are architecturally identical, including
    [Stats] accounting and malformed-block diagnostics. *)

val set_jit : bool -> unit
(** Sets the process-wide default for [run]'s [?jit] parameter
    (initialized from [DFP_NO_JIT]). *)

val jit_enabled : unit -> bool

(** The per-block execution engine behind [run_block]/[run], exposed so
    a timing backend can execute blocks with these exact architectural
    semantics and read back what happened. [Inorder_sim] is the
    consumer: it charges cycles for the firings this engine performs,
    which makes result divergence from the functional simulator
    impossible by construction. *)
module Engine : sig
  type state

  val make : Block_image.program -> state
  (** A capacity-sized state reusable across every block of the
      program. *)

  val prepare : state -> Block_image.t -> unit
  (** Point the state at a block image and clear the live prefix. *)

  val exec_block :
    state ->
    regs:int64 array ->
    mem:Edge_isa.Mem.t ->
    stats:Stats.t ->
    (outcome, string) result
  (** Execute the prepared block to completion and commit its outputs
      (stores in LSID order, then register writes, then the branch). *)

  val fired : state -> int -> bool
  (** Did instruction [id] fire during the last [exec_block]? *)

  val left_operand : state -> int -> Edge_isa.Token.t option
  val right_operand : state -> int -> Edge_isa.Token.t option
  (** The operands instruction [id] received (addresses for loads and
      stores live in the left operand). *)
end
