module Opcode = Edge_isa.Opcode
module Token = Edge_isa.Token

let mask63 v = Int64.to_int (Int64.logand v 63L)
let as_float = Int64.float_of_bits
let of_float = Int64.bits_of_float
let bool_val b = if b then 1L else 0L

let ibinop op a b =
  match op with
  | Opcode.Add -> Ok (Int64.add a b)
  | Opcode.Sub -> Ok (Int64.sub a b)
  | Opcode.Mul -> Ok (Int64.mul a b)
  | Opcode.Div -> if b = 0L then Error () else Ok (Int64.div a b)
  | Opcode.Rem -> if b = 0L then Error () else Ok (Int64.rem a b)
  | Opcode.And -> Ok (Int64.logand a b)
  | Opcode.Or -> Ok (Int64.logor a b)
  | Opcode.Xor -> Ok (Int64.logxor a b)
  | Opcode.Sll -> Ok (Int64.shift_left a (mask63 b))
  | Opcode.Srl -> Ok (Int64.shift_right_logical a (mask63 b))
  | Opcode.Sra -> Ok (Int64.shift_right a (mask63 b))

let icmp cond a b =
  let c = Int64.compare a b in
  match cond with
  | Opcode.Eq -> c = 0
  | Opcode.Ne -> c <> 0
  | Opcode.Lt -> c < 0
  | Opcode.Le -> c <= 0
  | Opcode.Gt -> c > 0
  | Opcode.Ge -> c >= 0

let fcmp cond a b =
  let x = as_float a and y = as_float b in
  match cond with
  | Opcode.Eq -> x = y
  | Opcode.Ne -> x <> y
  | Opcode.Lt -> x < y
  | Opcode.Le -> x <= y
  | Opcode.Gt -> x > y
  | Opcode.Ge -> x >= y

let fbinop op a b =
  let x = as_float a and y = as_float b in
  match op with
  | Opcode.Fadd -> of_float (x +. y)
  | Opcode.Fsub -> of_float (x -. y)
  | Opcode.Fmul -> of_float (x *. y)
  | Opcode.Fdiv -> of_float (x /. y)

let unop op a =
  match op with
  | Opcode.Mov -> a
  | Opcode.Not -> Int64.lognot a
  | Opcode.Neg -> Int64.neg a
  | Opcode.Fneg -> of_float (-.as_float a)
  | Opcode.Fitod -> of_float (Int64.to_float a)
  | Opcode.Fdtoi -> Int64.of_float (as_float a)

let need = function
  | Some (t : Token.t) -> t
  | None -> invalid_arg "Alu.exec: missing operand"

(* tainted result constructors, allocation-light: equivalent to
   [Token.taint]-folding the operands over [Token.of_int64 v] but
   without the intermediate records and taint list *)
let result1 (l : Token.t) v = { Token.payload = v; null = l.null; exc = l.exc }

let result2 (l : Token.t) (r : Token.t) v =
  { Token.payload = v; null = l.null || r.null; exc = l.exc || r.exc }

let exec opcode ~imm ~left ~right =
  match opcode with
  | Opcode.Iop op ->
      let l = need left and r = need right in
      (match ibinop op l.Token.payload r.Token.payload with
      | Ok v -> result2 l r v
      | Error () -> Token.with_exc (result2 l r 0L))
  | Opcode.Iopi op ->
      let l = need left in
      (match ibinop op l.Token.payload imm with
      | Ok v -> result1 l v
      | Error () -> Token.with_exc (result1 l 0L))
  | Opcode.Tst cond ->
      let l = need left and r = need right in
      result2 l r (bool_val (icmp cond l.Token.payload r.Token.payload))
  | Opcode.Tsti cond ->
      let l = need left in
      result1 l (bool_val (icmp cond l.Token.payload imm))
  | Opcode.Fop op ->
      let l = need left and r = need right in
      result2 l r (fbinop op l.Token.payload r.Token.payload)
  | Opcode.Ftst cond ->
      let l = need left and r = need right in
      result2 l r (bool_val (fcmp cond l.Token.payload r.Token.payload))
  | Opcode.Un op ->
      let l = need left in
      result1 l (unop op l.Token.payload)
  | Opcode.Movi | Opcode.Geni -> Token.of_int64 imm
  | Opcode.Mov4 ->
      let l = need left in
      result1 l l.Token.payload
  | Opcode.Null -> Token.null_token
  | Opcode.Sand ->
      (* both-operands path; the short-circuit (left false, right absent)
         path is handled by the simulators' firing rules *)
      let l = need left in
      if not (Token.as_predicate l) then
        Token.taint l (Token.of_int64 0L)
      else
        let r = need right in
        result2 l r (if Token.as_predicate r then 1L else 0L)
  | Opcode.Ld _ | Opcode.St _ | Opcode.Bro | Opcode.Halt ->
      invalid_arg "Alu.exec: memory/branch opcode"

let effective_address ~base ~imm = Int64.add base.Token.payload imm

(* ---- compile-time specializers for the block JIT ----

   [exec] re-dispatches on the opcode every execution. The block JIT
   resolves the dispatch once per static instruction at block-compile
   time; these return the residual closure. Semantics must stay
   byte-identical to [exec] (the JIT-vs-interpreter differential tests
   compare outcomes and stats across the fuzz corpus). *)

let ibinop_fn op : int64 -> int64 -> int64 =
  match op with
  | Opcode.Add -> Int64.add
  | Opcode.Sub -> Int64.sub
  | Opcode.Mul -> Int64.mul
  | Opcode.And -> Int64.logand
  | Opcode.Or -> Int64.logor
  | Opcode.Xor -> Int64.logxor
  | Opcode.Sll -> fun a b -> Int64.shift_left a (mask63 b)
  | Opcode.Srl -> fun a b -> Int64.shift_right_logical a (mask63 b)
  | Opcode.Sra -> fun a b -> Int64.shift_right a (mask63 b)
  | Opcode.Div | Opcode.Rem -> invalid_arg "Alu.ibinop_fn: trapping op"

let icmp_fn cond : int64 -> int64 -> bool =
  match cond with
  | Opcode.Eq -> fun a b -> Int64.compare a b = 0
  | Opcode.Ne -> fun a b -> Int64.compare a b <> 0
  | Opcode.Lt -> fun a b -> Int64.compare a b < 0
  | Opcode.Le -> fun a b -> Int64.compare a b <= 0
  | Opcode.Gt -> fun a b -> Int64.compare a b > 0
  | Opcode.Ge -> fun a b -> Int64.compare a b >= 0

let jit1 opcode ~imm : Token.t -> Token.t =
  match opcode with
  | Opcode.Iopi ((Opcode.Div | Opcode.Rem) as op) ->
      fun l ->
        (match ibinop op l.Token.payload imm with
        | Ok v -> result1 l v
        | Error () -> Token.with_exc (result1 l 0L))
  | Opcode.Iopi op ->
      let f = ibinop_fn op in
      fun l -> result1 l (f l.Token.payload imm)
  | Opcode.Tsti cond ->
      let f = icmp_fn cond in
      fun l -> result1 l (bool_val (f l.Token.payload imm))
  (* moves forward the operand token unchanged: [result1 l l.payload]
     is structurally [l], so no fresh record is needed *)
  | Opcode.Un Opcode.Mov | Opcode.Mov4 -> fun l -> l
  | Opcode.Un op -> fun l -> result1 l (unop op l.Token.payload)
  | _ -> invalid_arg "Alu.jit1: not a 1-operand ALU opcode"

let jit2 opcode : Token.t -> Token.t -> Token.t =
  match opcode with
  | Opcode.Iop ((Opcode.Div | Opcode.Rem) as op) ->
      fun l r ->
        (match ibinop op l.Token.payload r.Token.payload with
        | Ok v -> result2 l r v
        | Error () -> Token.with_exc (result2 l r 0L))
  | Opcode.Iop op ->
      let f = ibinop_fn op in
      fun l r -> result2 l r (f l.Token.payload r.Token.payload)
  | Opcode.Tst cond ->
      let f = icmp_fn cond in
      fun l r -> result2 l r (bool_val (f l.Token.payload r.Token.payload))
  | Opcode.Fop op -> fun l r -> result2 l r (fbinop op l.Token.payload r.Token.payload)
  | Opcode.Ftst cond -> fun l r -> result2 l r (bool_val (fcmp cond l.Token.payload r.Token.payload))
  | _ -> invalid_arg "Alu.jit2: not a 2-operand ALU opcode"
